// Extension — multiple faulty cores on the SOC (paper §5: "the effect of
// multiple faults can be viewed similarly with that of single fault").
//
// Two simultaneously defective cores produce two clusters on the meta scan
// chain (the paper's Fig. 2(a) non-overlapping-cones case, at core
// granularity). Interval partitions still confine each cluster to a few
// groups, so two-step's advantage persists — degraded relative to the
// single-core case because twice as many groups fail per partition.

#include "bench_util.hpp"
#include "core/scandiag.hpp"

using namespace scandiag;
using namespace scandiag::benchutil;

int main() {
  banner("Extension: two faulty cores on SOC-1 (single meta chain, 32 groups)",
         "two clusters; two-step still wins, by a smaller factor than single-core");

  BenchReport report("ext_multicore");
  const Soc soc = buildSoc1();
  WorkloadConfig workload = presets::socWorkload();
  workload.numFaults = 250;  // per core; pairs are formed index-wise
  report.context("soc", "SOC-1");
  report.context("faults_per_core", workload.numFaults);

  row("%-22s %12s %12s %8s", "failing cores", "rand", "two-step", "gain");
  const std::vector<std::pair<std::size_t, std::size_t>> pairs = {
      {0, 1}, {0, 5}, {2, 3}, {1, 4}, {3, 5}};
  for (const auto& [a, b] : pairs) {
    const auto responses = socResponsesForFailingCores(soc, {a, b}, workload);
    double dr[2];
    int i = 0;
    for (SchemeKind scheme : {SchemeKind::RandomSelection, SchemeKind::TwoStep}) {
      const DiagnosisPipeline pipeline(soc.topology(), presets::soc1Config(scheme, false));
      dr[i++] = pipeline.evaluate(responses).dr;
    }
    const std::string label = soc.core(a).name + "+" + soc.core(b).name;
    row("%-22s %12.2f %12.2f %7sx", label.c_str(), dr[0], dr[1],
        improvement(dr[0], dr[1]).c_str());
    report.row({{"failing_cores", label}, {"dr_random", dr[0]}, {"dr_two_step", dr[1]}});
  }

  // Single-core reference rows for the same budget.
  row("");
  row("single-core reference:");
  for (std::size_t k : {0u, 3u}) {
    const auto responses = socResponsesForFailingCore(soc, k, workload);
    double dr[2];
    int i = 0;
    for (SchemeKind scheme : {SchemeKind::RandomSelection, SchemeKind::TwoStep}) {
      const DiagnosisPipeline pipeline(soc.topology(), presets::soc1Config(scheme, false));
      dr[i++] = pipeline.evaluate(responses).dr;
    }
    row("%-22s %12.2f %12.2f %7sx", soc.core(k).name.c_str(), dr[0], dr[1],
        improvement(dr[0], dr[1]).c_str());
    report.row(
        {{"failing_cores", soc.core(k).name}, {"dr_random", dr[0]}, {"dr_two_step", dr[1]}});
  }
  report.write();
  return 0;
}
