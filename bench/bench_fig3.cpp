// Figure 3 — Candidate failing scan cells determined using a single
// partition, interval-based vs random-selection, on s953.
//
// Paper setup: one stuck-at fault in full-scan s953 (single chain), a
// randomly chosen detecting pattern set, one partition of 4 groups per
// scheme. The figure shows the interval partition confining the (clustered)
// failing cells to one group while random selection disperses them, so the
// interval candidate set is much smaller. This bench reproduces the figure
// statistically: over many single faults, the mean single-partition candidate
// count of interval-based partitioning is well below random selection's.

#include "bench_util.hpp"
#include "core/scandiag.hpp"

using namespace scandiag;
using namespace scandiag::benchutil;

int main() {
  banner("Figure 3: single-partition candidate sets, s953, 4 groups",
         "interval keeps clustered fails in one group -> far fewer suspects than random");

  BenchReport report("fig3");
  const Netlist nl = generateNamedCircuit("s953");
  const CircuitWorkload work = prepareWorkload(nl, presets::table1Workload());
  report.context("circuit", "s953");
  report.context("groups", 4);

  // Keep the figure's focus: faults with a small cluster of failing cells.
  std::vector<FaultResponse> clustered;
  for (const FaultResponse& r : work.responses) {
    if (r.failingCellCount() >= 2 && r.failingCellCount() <= 6)
      clustered.push_back(r);
  }
  row("%zu faults with 2-6 clustered failing cells (chain of %zu cells)", clustered.size(),
      work.topology.numCells());
  row("");

  const SessionEngine engine(work.topology, SessionConfig{SignatureMode::Exact, 200});
  const CandidateAnalyzer analyzer(work.topology);

  double sums[2] = {0, 0};
  int i = 0;
  for (SchemeKind scheme : {SchemeKind::IntervalBased, SchemeKind::RandomSelection}) {
    SchemeConfig cfg;
    auto gen = makeScheme(scheme, cfg, work.topology.maxChainLength(), 4);
    const std::vector<Partition> partitions{gen->next()};
    for (const FaultResponse& r : clustered) {
      const GroupVerdicts v = engine.run(partitions, r);
      sums[i] += static_cast<double>(analyzer.analyze(partitions, v).cellCount());
    }
    sums[i] /= static_cast<double>(clustered.size());
    ++i;
  }
  row("mean suspects, one interval-based partition : %6.2f cells", sums[0]);
  row("mean suspects, one random-selection partition: %6.2f cells", sums[1]);
  row("interval/random suspect ratio: %.2f (paper's example: 12 vs 39 suspects)",
      sums[0] / sums[1]);
  report.row({{"clustered_faults", clustered.size()},
              {"mean_suspects_interval", sums[0]},
              {"mean_suspects_random", sums[1]},
              {"suspect_ratio", sums[0] / sums[1]}});

  // And one concrete instance, exactly like the figure.
  const FaultResponse& r = clustered.front();
  row("");
  row("example fault %s, failing cells:", describeFault(nl, r.fault).c_str());
  std::string cells;
  for (std::size_t c : r.failingCells.toIndices()) cells += " " + std::to_string(c);
  row("  %s", cells.c_str());
  for (SchemeKind scheme : {SchemeKind::IntervalBased, SchemeKind::RandomSelection}) {
    SchemeConfig cfg;
    auto gen = makeScheme(scheme, cfg, work.topology.maxChainLength(), 4);
    const std::vector<Partition> partitions{gen->next()};
    const GroupVerdicts v = engine.run(partitions, r);
    const CandidateSet cand = analyzer.analyze(partitions, v);
    row("  %-17s -> %2zu suspect cells", schemeName(scheme).c_str(), cand.cellCount());
    report.row({{"example_scheme", schemeName(scheme)},
                {"example_suspects", cand.cellCount()}});
  }
  report.write();
  return 0;
}
