// Table 3 — SOC diagnostic resolution, single meta scan chain.
//
// Paper setup: SOC-1 is crafted by stitching the six largest ISCAS-89
// benchmarks behind a single TestRail meta scan chain. One core at a time is
// assumed faulty; 500 single stuck-at faults are injected into it; 8
// partitions of 32 groups each (more groups because the meta chain is long).
// Expected shape: two-step dramatically better than random selection on every
// failing core — the paper reports up to a 10x improvement — because the
// faulty core occupies a contiguous run of the meta chain.

#include "bench_util.hpp"
#include "core/scandiag.hpp"

using namespace scandiag;
using namespace scandiag::benchutil;

int main(int argc, char** argv) {
  banner("Table 3: SOC-1 (six largest ISCAS-89, single meta chain), DR per failing core",
         "two-step >> random selection (up to 10x); holds with and without pruning");

  BenchRun run(argc, argv);
  BenchReport report("table3");
  const Soc soc = buildSoc1();
  report.context("soc", "SOC-1");
  report.context("cores", soc.coreCount());
  report.context("cells", soc.totalCells());
  row("SOC-1: %zu cores, %zu cells on one meta scan chain", soc.coreCount(), soc.totalCells());
  row("");

  const WorkloadConfig workload = presets::socWorkload();
  row("%-9s | %9s %9s %6s | %9s %9s %6s", "failing", "rand", "two-step", "gain",
      "rand+pr", "two+pr", "gain");

  std::uint64_t digest = fnv1a64(std::string("bench_table3"));
  digest = setupDigestPiece("soc", "SOC-1", digest);
  digest = setupDigestPiece("cores", soc.coreCount(), digest);
  digest = setupDigestPiece("cells", soc.totalCells(), digest);
  digest = setupDigestPiece("patterns", workload.numPatterns, digest);
  digest = setupDigestPiece("faults", workload.numFaults, digest);
  digest = setupDigestPiece("fault_seed", workload.faultSeed, digest);
  digest = setupDigestPiece("schema", obs::kMetricsSchemaVersion, digest);
  SweepCheckpoint* ckpt = run.openCheckpoint(digest, "bench_table3 SOC-1 soc workload");

  // Evaluate per core so each workload is fault-simulated once for all four
  // configurations. The checkpoint keys each (core, config) pair separately:
  // the per-config sweepId is mixed with the core index, as in evaluateSocDr.
  try {
    for (std::size_t k = 0; k < soc.coreCount(); ++k) {
      const auto responses = socResponsesForFailingCore(soc, k, workload);
      double dr[4];
      int i = 0;
      for (bool pruning : {false, true}) {
        for (SchemeKind scheme : {SchemeKind::RandomSelection, SchemeKind::TwoStep}) {
          const DiagnosisConfig config = presets::soc1Config(scheme, pruning);
          const DiagnosisPipeline pipeline(soc.topology(), config);
          dr[i++] = evaluateWithCheckpoint(pipeline, responses, ckpt,
                                           socSweepIdFor(config, k), run.control())
                        .dr;
        }
      }
      row("%-9s | %9.2f %9.2f %5sx | %9.2f %9.2f %5sx", soc.core(k).name.c_str(), dr[0], dr[1],
          improvement(dr[0], dr[1]).c_str(), dr[2], dr[3], improvement(dr[2], dr[3]).c_str());
      report.row({{"failing_core", soc.core(k).name},
                  {"dr_random", dr[0]},
                  {"dr_two_step", dr[1]},
                  {"dr_random_pruned", dr[2]},
                  {"dr_two_step_pruned", dr[3]}});
    }
  } catch (const OperationCancelled& err) {
    return run.interrupted(report, err);
  }
  report.write();
  return 0;
}
