// Extension — why the paper applies the SAME pattern set in every session.
//
// Reseeding the PRPG per partition looks attractive (independent evidence
// per partition) but is UNSOUND for failing-cell identification: a cell that
// errs only under seed 3 captures nothing under seed 1, its seed-1 group
// passes, and the intersection exonerates a genuinely failing cell. The
// negative DR and the violation counts below measure exactly that loss on
// s9234 — the quantitative version of the paper's implicit protocol choice
// (and of why superposition pruning needs identical per-session patterns).

#include "bench_util.hpp"
#include "core/scandiag.hpp"

using namespace scandiag;
using namespace scandiag::benchutil;

int main() {
  banner("Extension: fresh PRPG seed per partition vs one shared pattern set",
         "reseeding is UNSOUND for failing-cell identification — the paper's protocol wins");

  BenchReport report("ext_multiseed");
  const Netlist nl = generateNamedCircuit("s9234");
  const std::size_t numPatterns = 128, numPartitions = 8, groups = 16;
  const ScanTopology topology = ScanTopology::singleChain(nl.dffs().size());
  report.context("circuit", "s9234");
  report.context("patterns", numPatterns);
  report.context("partitions", numPartitions);

  // One fault sample, simulated under each seed's pattern set.
  const FaultList universe = FaultList::enumerateCollapsed(nl);
  const auto faults = universe.sample(600, 0xFA17);
  std::vector<std::vector<FaultResponse>> perSeed;  // [partition][fault]
  for (std::size_t p = 0; p < numPartitions; ++p) {
    PrpgConfig prpg;
    prpg.seed = 0x5eed + p;
    const PatternSet pats = generatePatterns(nl, numPatterns, prpg);
    const FaultSimulator sim(nl, pats);
    std::vector<FaultResponse> responses;
    for (const FaultSite& f : faults) responses.push_back(sim.simulate(f));
    perSeed.push_back(std::move(responses));
  }

  row("%-24s %16s %16s %12s", "configuration", "DR(random-sel)", "DR(two-step)",
      "violations");
  for (const bool reseed : {false, true}) {
    double dr[2];
    std::size_t violations = 0, counted = 0;
    int i = 0;
    for (SchemeKind scheme : {SchemeKind::RandomSelection, SchemeKind::TwoStep}) {
      DiagnosisConfig config;
      config.scheme = scheme;
      config.numPartitions = numPartitions;
      config.groupsPerPartition = groups;
      config.numPatterns = numPatterns;
      const std::vector<Partition> partitions =
          buildPartitions(config, topology.maxChainLength());
      const SessionEngine engine(topology, SessionConfig{SignatureMode::Exact, numPatterns});
      const CandidateAnalyzer analyzer(topology);

      DrAccumulator acc;
      for (std::size_t f = 0; f < faults.size(); ++f) {
        // A fault must be detected under every seed it is diagnosed with;
        // restrict to faults detected under all seeds for a fair comparison.
        bool allDetected = true;
        for (std::size_t p = 0; p < numPartitions; ++p)
          allDetected &= perSeed[p][f].detected();
        if (!allDetected) continue;

        BitVector positions(topology.maxChainLength(), true);
        BitVector actual(topology.numCells());
        for (std::size_t p = 0; p < numPartitions; ++p) {
          const FaultResponse& r = perSeed[reseed ? p : 0][f];
          actual |= r.failingCells;
          const GroupVerdicts v = engine.run({partitions[p]}, r);
          BitVector failingUnion(topology.maxChainLength());
          for (std::size_t g = 0; g < partitions[p].groupCount(); ++g) {
            if (v.failing[0].test(g)) failingUnion |= partitions[p].groups[g];
          }
          positions &= failingUnion;
        }
        const BitVector candidates = topology.expandPositions(positions);
        acc.add(candidates.count(), actual.count());
        if (scheme == SchemeKind::TwoStep) {
          ++counted;
          violations += !actual.isSubsetOf(candidates);
        }
      }
      dr[i++] = acc.dr();
    }
    row("%-24s %16.3f %16.3f %6zu / %zu",
        reseed ? "fresh seed / partition" : "shared pattern set", dr[0], dr[1], violations,
        counted);
    report.row({{"configuration", reseed ? "reseed_per_partition" : "shared_pattern_set"},
                {"dr_random", dr[0]},
                {"dr_two_step", dr[1]},
                {"violations", violations},
                {"counted", counted}});
  }
  row("");
  row("'actual' = union of failing cells across all seeds; a violation is a fault");
  row("whose candidates lost a genuinely failing cell. Shared patterns: zero by");
  row("construction. Reseeded: unsound — the reason the paper reuses one set.");
  report.write();
  return 0;
}
