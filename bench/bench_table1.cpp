// Table 1 — Diagnostic resolution for s953 with a varying number of
// partitions (1..8) under the three partitioning schemes.
//
// Paper setup: s953 full-scan, single scan chain, 500 injected single
// stuck-at faults, 200 pseudorandom patterns per BIST session, 4 groups per
// partition. Expected shape: interval-based beats random selection when the
// partition budget is small; random selection wins for many partitions;
// two-step is the best of both at every budget (≈ half the DR of random
// selection at 8 partitions).
//
// Crash safety: with --checkpoint <file> every completed fault of every
// (scheme, partitions) sweep is journaled; a killed run restarts with
// --resume and produces bit-identical DR values, counters, and JSON (the CI
// kill-and-resume job gates on this). --deadline-ms bounds the whole run.

#include "bench_util.hpp"
#include "core/scandiag.hpp"

using namespace scandiag;
using namespace scandiag::benchutil;

int main(int argc, char** argv) {
  banner("Table 1: DR vs number of partitions, s953 (4 groups, 200 patterns)",
         "interval best at few partitions; random best at many; two-step best overall");

  BenchRun run(argc, argv);
  BenchReport report("table1");
  const Netlist nl = generateNamedCircuit("s953");
  const WorkloadConfig workload = presets::table1Workload();
  const CircuitWorkload work = prepareWorkload(nl, workload);
  report.context("circuit", "s953");
  report.context("cells", work.topology.numCells());
  report.context("faults", work.responses.size());
  row("circuit s953: %zu scan cells, %zu detected faults", work.topology.numCells(),
      work.responses.size());
  row("");
  row("%-12s %-16s %-18s %-10s", "#partitions", "DR(interval)", "DR(random-sel)", "DR(two-step)");

  // The setup digest binds the journal to this exact workload: same circuit,
  // pattern/fault budgets, seeds, and topology — not the thread count, which
  // a resume is free to change.
  std::uint64_t digest = fnv1a64(std::string("bench_table1"));
  digest = setupDigestPiece("circuit", "s953", digest);
  digest = setupDigestPiece("patterns", workload.numPatterns, digest);
  digest = setupDigestPiece("faults", workload.numFaults, digest);
  digest = setupDigestPiece("fault_seed", workload.faultSeed, digest);
  digest = setupDigestPiece("cells", work.topology.numCells(), digest);
  digest = setupDigestPiece("responses", work.responses.size(), digest);
  digest = setupDigestPiece("schema", obs::kMetricsSchemaVersion, digest);
  SweepCheckpoint* ckpt = run.openCheckpoint(digest, "bench_table1 s953 table1 workload");

  try {
    for (std::size_t partitions = 1; partitions <= 8; ++partitions) {
      double dr[3] = {0, 0, 0};
      int i = 0;
      for (SchemeKind scheme : {SchemeKind::IntervalBased, SchemeKind::RandomSelection,
                                SchemeKind::TwoStep}) {
        const DiagnosisConfig config = presets::table1(scheme, partitions);
        const DiagnosisPipeline pipeline(work.topology, config);
        dr[i++] = evaluateWithCheckpoint(pipeline, work.responses, ckpt,
                                         sweepIdFor(config), run.control())
                      .dr;
      }
      row("%-12zu %-16.3f %-18.3f %-10.3f", partitions, dr[0], dr[1], dr[2]);
      report.row({{"partitions", partitions},
                  {"dr_interval", dr[0]},
                  {"dr_random", dr[1]},
                  {"dr_two_step", dr[2]}});
    }
  } catch (const OperationCancelled& err) {
    return run.interrupted(report, err);
  }
  report.write();
  return 0;
}
