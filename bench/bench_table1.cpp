// Table 1 — Diagnostic resolution for s953 with a varying number of
// partitions (1..8) under the three partitioning schemes.
//
// Paper setup: s953 full-scan, single scan chain, 500 injected single
// stuck-at faults, 200 pseudorandom patterns per BIST session, 4 groups per
// partition. Expected shape: interval-based beats random selection when the
// partition budget is small; random selection wins for many partitions;
// two-step is the best of both at every budget (≈ half the DR of random
// selection at 8 partitions).

#include "bench_util.hpp"
#include "core/scandiag.hpp"

using namespace scandiag;
using namespace scandiag::benchutil;

int main() {
  banner("Table 1: DR vs number of partitions, s953 (4 groups, 200 patterns)",
         "interval best at few partitions; random best at many; two-step best overall");

  BenchReport report("table1");
  const Netlist nl = generateNamedCircuit("s953");
  const CircuitWorkload work = prepareWorkload(nl, presets::table1Workload());
  report.context("circuit", "s953");
  report.context("cells", work.topology.numCells());
  report.context("faults", work.responses.size());
  row("circuit s953: %zu scan cells, %zu detected faults", work.topology.numCells(),
      work.responses.size());
  row("");
  row("%-12s %-16s %-18s %-10s", "#partitions", "DR(interval)", "DR(random-sel)", "DR(two-step)");

  for (std::size_t partitions = 1; partitions <= 8; ++partitions) {
    double dr[3] = {0, 0, 0};
    int i = 0;
    for (SchemeKind scheme : {SchemeKind::IntervalBased, SchemeKind::RandomSelection,
                              SchemeKind::TwoStep}) {
      const DiagnosisPipeline pipeline(work.topology, presets::table1(scheme, partitions));
      dr[i++] = pipeline.evaluate(work.responses).dr;
    }
    row("%-12zu %-16.3f %-18.3f %-10.3f", partitions, dr[0], dr[1], dr[2]);
    report.row({{"partitions", partitions},
                {"dr_interval", dr[0]},
                {"dr_random", dr[1]},
                {"dr_two_step", dr[2]}});
  }
  report.write();
  return 0;
}
