// Ablation — scan-chain ordering vs diagnostic resolution.
//
// The paper observes that failing-cell locations "depend on the scan chain
// ordering" but that structure keeps them clustered under a layout-driven
// stitching. This bench makes that dependence explicit: the same fault
// responses are diagnosed under (a) the natural layout-like order, (b) the
// reversed order (clusters preserved, just mirrored), and (c) a random
// permutation (clusters destroyed). Interval-based / two-step partitioning
// should lose its edge exactly when the permutation destroys clustering;
// random selection should be insensitive to ordering.

#include "bench_util.hpp"
#include <algorithm>

#include "common/rng.hpp"
#include "core/scandiag.hpp"

using namespace scandiag;
using namespace scandiag::benchutil;

namespace {

ScanTopology orderedTopology(std::size_t cells, const std::string& kind) {
  std::vector<std::size_t> order(cells);
  for (std::size_t i = 0; i < cells; ++i) order[i] = i;
  if (kind == "reversed") {
    std::reverse(order.begin(), order.end());
  } else if (kind == "shuffled") {
    Xoroshiro128 rng(0xD1CE);
    for (std::size_t i = cells; i > 1; --i)
      std::swap(order[i - 1], order[rng.nextBelow(i)]);
  }
  return ScanTopology::fromChains({order});
}

}  // namespace

int main() {
  banner("Ablation: scan-chain ordering (s9234, 8 partitions x 16 groups)",
         "interval/two-step rely on clustering; random selection does not");

  BenchReport report("ablation_ordering");
  const Netlist nl = generateNamedCircuit("s9234");
  const CircuitWorkload work = prepareWorkload(nl, presets::table2Workload());
  report.context("circuit", "s9234");
  report.context("faults", work.responses.size());

  row("%-10s %16s %16s %12s", "ordering", "DR(random-sel)", "DR(two-step)", "two-step gain");
  for (const char* kind : {"natural", "reversed", "shuffled"}) {
    const ScanTopology topology = orderedTopology(work.topology.numCells(), kind);
    double dr[2];
    int i = 0;
    for (SchemeKind scheme : {SchemeKind::RandomSelection, SchemeKind::TwoStep}) {
      const DiagnosisPipeline pipeline(topology, presets::table2(scheme, false));
      dr[i++] = pipeline.evaluate(work.responses).dr;
    }
    row("%-10s %16.3f %16.3f %11sx", kind, dr[0], dr[1], improvement(dr[0], dr[1]).c_str());
    report.row({{"ordering", kind}, {"dr_random", dr[0]}, {"dr_two_step", dr[1]}});
  }
  report.write();
  return 0;
}
