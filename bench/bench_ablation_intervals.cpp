// Ablation — how many interval-based partitions should step 1 use?
//
// The paper uses one interval partition in its simulations but notes that "in
// some cases, the use of more interval-based partitions leads to higher
// diagnostic resolution". This bench sweeps the split: k interval partitions
// followed by (8 - k) random-selection partitions, k = 0..4, on a single
// circuit and on SOC-1. k = 0 is pure random selection; larger k trades
// fine-grained randomness for more coarse pruning rounds.

#include "bench_util.hpp"
#include "core/scandiag.hpp"

using namespace scandiag;
using namespace scandiag::benchutil;

namespace {

DiagnosisConfig withIntervalCount(DiagnosisConfig base, std::size_t k) {
  base.scheme = k == 0 ? SchemeKind::RandomSelection : SchemeKind::TwoStep;
  base.schemeConfig.intervalPartitions = k;
  return base;
}

}  // namespace

int main() {
  banner("Ablation: interval partitions in step 1 (k interval + (8-k) random)",
         "paper uses k=1; more interval partitions sometimes help");

  BenchReport report("ablation_intervals");
  row("%-12s %8s %8s %8s %8s %8s", "workload", "k=0", "k=1", "k=2", "k=3", "k=4");

  {
    const Netlist nl = generateNamedCircuit("s9234");
    const CircuitWorkload work = prepareWorkload(nl, presets::table2Workload());
    double dr[5];
    for (std::size_t k = 0; k <= 4; ++k) {
      const DiagnosisPipeline pipeline(
          work.topology, withIntervalCount(presets::table2(SchemeKind::TwoStep, false), k));
      dr[k] = pipeline.evaluate(work.responses).dr;
    }
    row("%-12s %8.3f %8.3f %8.3f %8.3f %8.3f", "s9234", dr[0], dr[1], dr[2], dr[3], dr[4]);
    report.row({{"workload", "s9234"},
                {"dr_k0", dr[0]},
                {"dr_k1", dr[1]},
                {"dr_k2", dr[2]},
                {"dr_k3", dr[3]},
                {"dr_k4", dr[4]}});
  }

  {
    const Soc soc = buildSoc1();
    const WorkloadConfig workload = presets::socWorkload();
    // Aggregate over all failing cores for a single summary row.
    double dr[5] = {0, 0, 0, 0, 0};
    for (std::size_t core = 0; core < soc.coreCount(); ++core) {
      const auto responses = socResponsesForFailingCore(soc, core, workload);
      for (std::size_t k = 0; k <= 4; ++k) {
        const DiagnosisPipeline pipeline(
            soc.topology(), withIntervalCount(presets::soc1Config(SchemeKind::TwoStep, false), k));
        dr[k] += pipeline.evaluate(responses).dr / static_cast<double>(soc.coreCount());
      }
    }
    row("%-12s %8.2f %8.2f %8.2f %8.2f %8.2f", "soc1 (mean)", dr[0], dr[1], dr[2], dr[3], dr[4]);
    report.row({{"workload", "soc1_mean"},
                {"dr_k0", dr[0]},
                {"dr_k1", dr[1]},
                {"dr_k2", dr[2]},
                {"dr_k3", dr[3]},
                {"dr_k4", dr[4]}});
  }
  report.write();
  return 0;
}
