// Extension — failing-vector identification (the time axis), after [4].
//
// Same partition machinery, selection axis = pattern index. Unlike failing
// cells, a fault's error-producing *patterns* are scattered pseudorandomly in
// pattern order (there is no "pattern locality"), so interval-based
// partitioning loses its structural advantage and random selection is the
// right tool — the mirror image of the cell-axis result, and the reason the
// two-step idea is specifically a *space*-axis contribution.

#include "bench_util.hpp"
#include "core/scandiag.hpp"

using namespace scandiag;
using namespace scandiag::benchutil;

int main() {
  banner("Extension: failing-vector identification (axis = pattern index)",
         "[4]-style; no pattern locality => random selection wins on the time axis");

  BenchReport report("ext_vectors");
  const Netlist nl = generateNamedCircuit("s9234");
  const CircuitWorkload work = prepareWorkload(nl, presets::table2Workload());
  report.context("circuit", "s9234");
  report.context("faults", work.responses.size());

  // Average failing vectors per fault (context for DR magnitudes).
  double avgFailing = 0;
  for (const FaultResponse& r : work.responses)
    avgFailing += static_cast<double>(
        VectorDiagnoser::failingVectors(r, presets::table2Workload().numPatterns).count());
  avgFailing /= static_cast<double>(work.responses.size());
  row("s9234: %zu detected faults, %.1f failing vectors/fault of %zu patterns",
      work.responses.size(), avgFailing, presets::table2Workload().numPatterns);
  row("");
  row("%-12s %16s %16s %16s", "#partitions", "DR(interval)", "DR(random-sel)", "DR(two-step)");

  for (std::size_t partitions : {1u, 2u, 4u, 8u}) {
    double dr[3];
    int i = 0;
    for (SchemeKind scheme : {SchemeKind::IntervalBased, SchemeKind::RandomSelection,
                              SchemeKind::TwoStep}) {
      DiagnosisConfig config = presets::table2(scheme, false);
      config.numPartitions = partitions;
      config.groupsPerPartition = 8;
      const VectorDiagnoser diagnoser(config);
      dr[i++] = diagnoser.evaluate(work.responses).dr;
    }
    row("%-12zu %16.3f %16.3f %16.3f", partitions, dr[0], dr[1], dr[2]);
    report.row({{"partitions", static_cast<std::size_t>(partitions)},
                {"dr_interval", dr[0]},
                {"dr_random", dr[1]},
                {"dr_two_step", dr[2]}});
  }
  report.write();
  return 0;
}
