// Serve-mode benchmark: what does keeping the diagnosis state warm buy, and
// what does the admission layer do under overload?
//
// Three phases:
//  1. Warm-vs-cold (s9234, timing only): per-request latency of a running
//     server over its socket vs. paying service construction (netlist,
//     patterns, fault-free sim, prepared partitions) per invocation — the
//     cost the one-shot CLI pays every time. Reported as warm_speedup.
//  2. Overload (s9234, timing only): concurrent one-shot clients against a
//     1-handler server with a 2-deep queue; reports the shed rate the
//     admission layer enforced instead of queueing unboundedly.
//  3. Golden (s953, counter-gated): a fixed request sequence — 24 diagnoses,
//     4 rejected frames (2 corrupt CRCs + 2 unknown types), 4 deterministic
//     sheds against a saturated 1-handler server — so serve_requests_ok,
//     serve_requests_shed, serve_frames_rejected, and serve_deadline_degraded
//     are exact across runs and thread counts. Warm-phase latency percentiles
//     (p50/p99/rps) land in the timing section, which CI ignores.
//
// Writes results/BENCH_serve.json.

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "core/scandiag.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"

using namespace scandiag;
using Clock = std::chrono::steady_clock;

namespace {

double millisSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

std::string socketPathFor(const char* tag) {
  return "/tmp/scandiag_bench_serve_" + std::to_string(::getpid()) + "_" + tag + ".sock";
}

/// A DiagnosisServer running on its own thread; stops + joins on destruction.
class RunningServer {
 public:
  RunningServer(const serve::DiagnosisService& service, serve::ServeOptions options)
      : server_(service, std::move(options)), thread_([this] { exitCode_ = server_.run(); }) {
    if (!server_.waitUntilListening(10000)) {
      throw std::runtime_error("bench_serve: server did not start listening");
    }
  }
  ~RunningServer() {
    server_.stop();
    thread_.join();
  }

  serve::DiagnosisServer& server() { return server_; }
  int exitCode() const { return exitCode_; }

 private:
  serve::DiagnosisServer server_;
  std::thread thread_;
  int exitCode_ = -1;
};

/// Raw connect for the malformed-frame sends (the typed client refuses to
/// speak garbage, which is exactly why the bench cannot use it here).
int rawConnect(const std::string& path) {
  struct sockaddr_un addr;
  std::memset(&addr, 0, sizeof addr);
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0 || ::connect(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof addr) != 0) {
    if (fd >= 0) ::close(fd);
    throw std::runtime_error("bench_serve: raw connect to " + path + " failed");
  }
  return fd;
}

void rawSend(const std::string& path, const std::string& bytes) {
  const int fd = rawConnect(path);
  std::size_t done = 0;
  while (done < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + done, bytes.size() - done, MSG_NOSIGNAL);
    if (n <= 0) break;
    done += static_cast<std::size_t>(n);
  }
  ::close(fd);
}

/// Spin until `ready` or ~5 s; the server books terminals asynchronously to
/// the client's reply, so counter assertions need a settle.
template <typename Pred>
bool settle(Pred ready) {
  for (int i = 0; i < 500; ++i) {
    if (ready()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return ready();
}

double percentile(std::vector<double> sorted, double p) {
  if (sorted.empty()) return 0.0;
  const std::size_t rank =
      std::min(sorted.size() - 1,
               static_cast<std::size_t>(p * static_cast<double>(sorted.size())));
  return sorted[rank];
}

serve::DiagnoseRequest injectRequest(const std::string& gate, bool sa) {
  serve::DiagnoseRequest request;
  request.kind = serve::DiagnoseRequest::Kind::InjectFault;
  request.gateName = gate;
  request.stuckAt1 = sa;
  return request;
}

}  // namespace

int main() {
  benchutil::banner(
      "Serve mode: warm-state speedup, overload shedding, request accounting",
      "no claim — service extension; the paper's flow is one-shot per diagnosis");

  // ---- Phase 1: warm vs cold on s9234 (timing only) ----------------------
  const Netlist s9234 = generateNamedCircuit("s9234");
  serve::ServiceConfig bigConfig;  // two-step, 8 partitions x 16 groups, 128 patterns
  const serve::DiagnosisService bigService(Netlist(s9234), bigConfig);

  // A fault the pattern set detects, so both sides do the full diagnosis.
  std::string gate;
  bool sa = true;
  for (const FaultSite& fault :
       FaultList::enumerateCollapsed(s9234).sample(32, /*seed=*/0xBE7C)) {
    if (!fault.isOutputFault()) continue;
    const serve::DiagnoseReply probe = bigService.handle(
        injectRequest(s9234.gateName(fault.gate), fault.stuckAt), 0,
        std::chrono::milliseconds(0), nullptr);
    if (probe.detected) {
      gate = s9234.gateName(fault.gate);
      sa = fault.stuckAt;
      break;
    }
  }
  if (gate.empty()) throw std::runtime_error("bench_serve: no detected s9234 fault found");

  constexpr std::size_t kColdRuns = 3;
  const Clock::time_point coldStart = Clock::now();
  for (std::size_t i = 0; i < kColdRuns; ++i) {
    const serve::DiagnosisService coldService(Netlist(s9234), bigConfig);
    (void)coldService.handle(injectRequest(gate, sa), 0, std::chrono::milliseconds(0),
                             nullptr);
  }
  const double coldPerRequestMs = millisSince(coldStart) / kColdRuns;

  constexpr std::size_t kWarmRuns = 20;
  double warmPerRequestMs = 0.0;
  {
    serve::ServeOptions options;
    options.socketPath = socketPathFor("warm");
    RunningServer running(bigService, options);
    serve::ClientOptions client;
    client.socketPath = options.socketPath;
    const Clock::time_point warmStart = Clock::now();
    for (std::size_t i = 0; i < kWarmRuns; ++i) {
      (void)serve::requestDiagnosis(client, injectRequest(gate, sa));
    }
    warmPerRequestMs = millisSince(warmStart) / kWarmRuns;
  }
  const double warmSpeedup = warmPerRequestMs > 0 ? coldPerRequestMs / warmPerRequestMs : 0;
  benchutil::row("warm vs cold (s9234, %s/SA%d): cold %.1f ms/req, warm %.2f ms/req "
                 "-> %.1fx",
                 gate.c_str(), sa ? 1 : 0, coldPerRequestMs, warmPerRequestMs, warmSpeedup);

  // ---- Phase 2: overload shedding on s9234 (timing only) -----------------
  double overloadShedRate = 0.0;
  {
    serve::ServeOptions options;
    options.socketPath = socketPathFor("overload");
    options.queueCapacity = 2;
    options.handlers = 1;
    RunningServer running(bigService, options);
    constexpr std::size_t kClients = 12;
    std::vector<std::thread> clients;
    clients.reserve(kClients);
    for (std::size_t i = 0; i < kClients; ++i) {
      clients.emplace_back([&options, &gate, sa] {
        serve::ClientOptions oneShot;
        oneShot.socketPath = options.socketPath;
        oneShot.maxAttempts = 1;  // no retry: count every shed exactly once
        try {
          (void)serve::requestDiagnosis(oneShot, injectRequest(gate, sa));
        } catch (const serve::ClientError&) {
          // shed — the point of the phase
        }
      });
    }
    for (std::thread& t : clients) t.join();
    const serve::StatsReply stats = running.server().stats().snapshot();
    overloadShedRate =
        stats.accepted > 0
            ? static_cast<double>(stats.shed) / static_cast<double>(stats.accepted)
            : 0.0;
    benchutil::row("overload (queue 2, 1 handler, %zu clients): accepted %llu, "
                   "shed %llu (rate %.2f)",
                   kClients, static_cast<unsigned long long>(stats.accepted),
                   static_cast<unsigned long long>(stats.shed), overloadShedRate);
  }

  // ---- Phase 3: golden counters on s953 (deterministic) ------------------
  // BenchReport construction resets the registry: everything after this line
  // is the counter delta CI gates on.
  benchutil::BenchReport report("serve");
  report.context("circuit", "s953");
  report.context("scheme", "two-step");
  report.context("requests", 24);

  const Netlist s953 = generateNamedCircuit("s953");
  serve::ServiceConfig config;
  const serve::DiagnosisService service(Netlist(s953), config);

  std::vector<serve::DiagnoseRequest> requests;
  for (const FaultSite& fault :
       FaultList::enumerateCollapsed(s953).sample(24, /*seed=*/0x5E4E)) {
    requests.push_back(injectRequest(s953.gateName(fault.gate), fault.stuckAt));
  }

  std::vector<double> latenciesMs;
  double requestsPerSec = 0.0;
  std::uint64_t okReplies = 0;
  {
    serve::ServeOptions options;
    options.socketPath = socketPathFor("golden");
    RunningServer running(service, options);
    serve::ClientOptions client;
    client.socketPath = options.socketPath;

    const Clock::time_point start = Clock::now();
    for (const serve::DiagnoseRequest& request : requests) {
      const Clock::time_point reqStart = Clock::now();
      const serve::DiagnoseReply reply = serve::requestDiagnosis(client, request);
      latenciesMs.push_back(millisSince(reqStart));
      if (reply.status == serve::ReplyStatus::Ok) ++okReplies;
    }
    const double elapsedMs = millisSince(start);
    requestsPerSec = elapsedMs > 0 ? 1000.0 * requests.size() / elapsedMs : 0.0;

    // Two CRC-corrupt frames (flip a payload byte) and two valid frames with
    // an unknown type tag: four deterministic rejections.
    std::string corrupt = serve::encodeFrame(serve::kPingRequestFrame, "payload");
    corrupt[serve::kFrameHeaderBytes] ^= 0x01;
    rawSend(options.socketPath, corrupt);
    rawSend(options.socketPath, corrupt);
    const std::string unknownType = serve::encodeFrame(0x7777, "");
    rawSend(options.socketPath, unknownType);
    rawSend(options.socketPath, unknownType);
    if (!settle([&] { return running.server().stats().snapshot().framesRejected >= 4; })) {
      throw std::runtime_error("bench_serve: frame rejections did not settle");
    }
  }

  std::uint64_t shedRequests = 0;
  {
    // Deterministic sheds: one connection pins the only handler (the ping
    // guarantees it has been picked up), a second fills the 1-deep queue,
    // so every request after that is shed at admission — no timing races.
    serve::ServeOptions options;
    options.socketPath = socketPathFor("shed");
    options.queueCapacity = 1;
    options.handlers = 1;
    RunningServer running(service, options);

    {
      const int held = rawConnect(options.socketPath);
      const std::string pingFrame = serve::encodeFrame(serve::kPingRequestFrame, "");
      std::size_t done = 0;
      while (done < pingFrame.size()) {
        const ssize_t n =
            ::send(held, pingFrame.data() + done, pingFrame.size() - done, MSG_NOSIGNAL);
        if (n <= 0) throw std::runtime_error("bench_serve: ping send failed");
        done += static_cast<std::size_t>(n);
      }
      char pong[64];
      if (::recv(held, pong, sizeof pong, 0) <= 0) {
        throw std::runtime_error("bench_serve: ping reply missing");
      }
      // Handler now owns `held` and blocks on its next frame. Fill the queue:
      const int filler = rawConnect(options.socketPath);
      // The filler is admitted in accept order, ahead of everything below.
      serve::ClientOptions oneShot;
      oneShot.socketPath = options.socketPath;
      oneShot.maxAttempts = 1;
      for (int i = 0; i < 4; ++i) {
        try {
          (void)serve::requestDiagnosis(oneShot, requests.front());
          throw std::runtime_error("bench_serve: expected a shed, got a reply");
        } catch (const serve::ClientError&) {
          ++shedRequests;
        }
      }
      ::close(filler);
      ::close(held);
    }
    if (!settle([&] { return running.server().stats().snapshot().shed >= 4; })) {
      throw std::runtime_error("bench_serve: shed accounting did not settle");
    }
  }

  std::sort(latenciesMs.begin(), latenciesMs.end());
  const double p50 = percentile(latenciesMs, 0.50);
  const double p99 = percentile(latenciesMs, 0.99);
  benchutil::row("golden (s953): %zu requests (%llu ok), p50 %.2f ms, p99 %.2f ms, "
                 "%.0f req/s, %llu deterministic sheds, 4 rejected frames",
                 requests.size(), static_cast<unsigned long long>(okReplies), p50, p99,
                 requestsPerSec, static_cast<unsigned long long>(shedRequests));

  report.row({{"phase", "warm_requests"},
              {"requests", static_cast<unsigned long long>(requests.size())},
              {"ok_replies", static_cast<unsigned long long>(okReplies)}});
  report.row({{"phase", "frame_rejects"}, {"frames", 4}});
  report.row({{"phase", "deterministic_shed"},
              {"requests", static_cast<unsigned long long>(shedRequests)}});

  report.timing("cold_ms_per_request", coldPerRequestMs);
  report.timing("warm_ms_per_request", warmPerRequestMs);
  report.timing("warm_speedup", warmSpeedup);
  report.timing("overload_shed_rate", overloadShedRate);
  report.timing("p50_ms", p50);
  report.timing("p99_ms", p99);
  report.timing("requests_per_sec", requestsPerSec);
  report.timing("hardware_concurrency",
                static_cast<unsigned long long>(std::thread::hardware_concurrency()));
  report.write();
  return 0;
}
