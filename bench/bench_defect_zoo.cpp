// Defect-zoo robustness sweep: misdiagnosis rate and DR as a function of the
// simultaneous-defect count k, over mixed stuck-at / bridge / stuck-open
// scenarios, plus the two degradation regimes (intermittent activation and a
// starved refinement budget that forces the PODEM stall breaker).
//
// The paper's tables assume one permanent stuck-at fault per device; this
// bench measures what multi-site defect scenarios do to the pipeline and
// enforces the degrade-never-lie contract as hard gates:
//   * superset soundness — no scenario, permanent or intermittent, may
//     exclude a true failing cell (misdiagnosis rate must be exactly 0);
//   * k=2 precision — union diagnosis must match or beat the single-fault
//     baseline (each component diagnosed alone) on >= 90% of scenarios;
//   * intermittent p=0.5 — every scenario degrades to a confidence-scored
//     superset (no errors, confidence strictly inside (0,1));
//   * a starved refinement budget must hand off to PODEM (nonzero
//     atpg_patterns_generated);
//   * every metric bit-identical at 1, 2, and 8 threads.
//
// Writes results/BENCH_defect_zoo.json. Set SCANDIAG_DEFECT_FULL=1 for the
// dense sweep (more scenarios per row).

#include <cstdlib>
#include <vector>

#include "bench_util.hpp"
#include "core/scandiag.hpp"

using namespace scandiag;

namespace {

bool sameReport(const DefectZooReport& a, const DefectZooReport& b) {
  return a.scenarios == b.scenarios && a.sumCandidates == b.sumCandidates &&
         a.sumActual == b.sumActual && a.misdiagnosisRate == b.misdiagnosisRate &&
         a.meanConfidence == b.meanConfidence && a.degraded == b.degraded &&
         a.totalInconsistencies == b.totalInconsistencies &&
         a.totalUnionSplits == b.totalUnionSplits &&
         a.totalAtpgPatterns == b.totalAtpgPatterns &&
         a.totalExtraSessions == b.totalExtraSessions;
}

/// generate() fault-simulates, so scenarios are drawn serially (the
/// FaultSimulator ownership rule); diagnosis afterwards runs in parallel.
std::vector<DefectScenario> drawScenarios(const DefectScenarioGenerator& generator,
                                          std::size_t count) {
  std::vector<DefectScenario> scenarios;
  scenarios.reserve(count);
  for (std::size_t i = 0; i < count; ++i) scenarios.push_back(generator.generate(i));
  return scenarios;
}

}  // namespace

int main() {
  const bool full = std::getenv("SCANDIAG_DEFECT_FULL") != nullptr;

  benchutil::BenchReport report("defect_zoo");
  struct CircuitSpec {
    const char* name;
    std::size_t scenarios;
  };
  const std::vector<CircuitSpec> circuits{{"s953", full ? std::size_t{60} : std::size_t{30}},
                                          {"s9234", full ? std::size_t{40} : std::size_t{20}}};
  const DiagnosisConfig config;  // two-step, 8 partitions x 16 groups, 128 patterns

  benchutil::banner(
      "Defect zoo: DR / misdiagnosis vs simultaneous-defect count k (mixed models)",
      "no claim — robustness extension; paper assumes a single permanent stuck-at fault");
  std::printf("%-8s %-22s %-8s %-9s %-9s %-7s %-6s %-7s %-6s %-8s\n", "circuit", "defects",
              "threads", "DR", "misdiag", "conf", "degr", "splits", "atpg", "extra");

  bool deterministic = true;
  bool sound = true;
  bool precisionOk = true;
  bool intermittentOk = true;
  bool atpgOk = true;

  for (const CircuitSpec& spec : circuits) {
    const Netlist nl = generateNamedCircuit(spec.name);
    const PatternSet patterns = generatePatterns(nl, config.numPatterns, PrpgConfig{});
    const FaultSimulator sim(nl, patterns);
    const ScanTopology topology = ScanTopology::singleChain(nl.dffs().size());

    for (std::size_t k = 1; k <= 4; ++k) {
      DefectMix mix;
      mix.k = k;
      mix.bridges = true;
      mix.opens = true;
      const DefectScenarioGenerator generator(sim, mix);
      const std::vector<DefectScenario> scenarios = drawScenarios(generator, spec.scenarios);
      const DefectZooPipeline zoo(sim, topology, config, DefectPolicy{});

      DefectZooReport reference;
      for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
        setGlobalThreadCount(threads);
        const DefectZooReport rep = zoo.evaluate(scenarios);
        if (threads == 1) {
          reference = rep;
        } else if (!sameReport(reference, rep)) {
          deterministic = false;
        }
        benchutil::row("%-8s %-22s %-8zu %-9.4f %-9.4f %-7.3f %-6zu %-7zu %-6zu %-8zu",
                       spec.name, describeDefectMix(mix).c_str(), threads, rep.dr,
                       rep.misdiagnosisRate, rep.meanConfidence, rep.degraded,
                       rep.totalUnionSplits, rep.totalAtpgPatterns, rep.totalExtraSessions);
        report.row({{"circuit", spec.name},
                    {"defects", describeDefectMix(mix)},
                    {"k", k},
                    {"threads", threads},
                    {"scenarios", rep.scenarios},
                    {"dr", rep.dr},
                    {"misdiagnosis_rate", rep.misdiagnosisRate},
                    {"mean_confidence", rep.meanConfidence},
                    {"sum_candidates", rep.sumCandidates},
                    {"sum_actual", rep.sumActual},
                    {"degraded", rep.degraded},
                    {"union_splits", rep.totalUnionSplits},
                    {"atpg_patterns", rep.totalAtpgPatterns},
                    {"extra_sessions", rep.totalExtraSessions}});
      }
      setGlobalThreadCount(1);
      // Gate: degrade-never-lie. A nonzero misdiagnosis rate means some true
      // failing cell was excluded from a candidate set.
      if (reference.misdiagnosisRate != 0.0) sound = false;

      if (k == 2) {
        // Gate: union diagnosis precision (actual/candidates, 1.0 = exact)
        // must match or beat the single-fault baseline — each component of
        // the same scenario diagnosed alone through the base pipeline — on
        // at least 90% of scenarios.
        std::size_t atLeastBaseline = 0;
        for (const DefectScenario& scenario : scenarios) {
          const DefectDiagnosis d = zoo.diagnose(scenario);
          if (d.misdiagnosed) sound = false;
          const double unionPrecision =
              d.candidateCount == 0 ? 1.0
                                    : static_cast<double>(d.actualCount) /
                                          static_cast<double>(d.candidateCount);
          std::size_t baseCandidates = 0;
          std::size_t baseActual = 0;
          for (const DefectComponent& component : scenario.components) {
            const FaultDiagnosis fd = zoo.base().diagnose(component.response);
            baseCandidates += fd.candidateCount;
            baseActual += fd.actualCount;
          }
          const double basePrecision =
              baseCandidates == 0 ? 1.0
                                  : static_cast<double>(baseActual) /
                                        static_cast<double>(baseCandidates);
          if (unionPrecision + 1e-12 >= basePrecision) ++atLeastBaseline;
        }
        const double fraction =
            static_cast<double>(atLeastBaseline) / static_cast<double>(scenarios.size());
        std::printf("  k=2 precision >= single-fault baseline: %zu/%zu scenarios (%.0f%%)\n",
                    atLeastBaseline, scenarios.size(), 100.0 * fraction);
        report.row({{"circuit", spec.name},
                    {"gate", "k2_precision_vs_baseline"},
                    {"scenarios", scenarios.size()},
                    {"at_least_baseline", atLeastBaseline}});
        if (fraction < 0.9) precisionOk = false;
      }
    }

    {
      // Intermittent regime: every scenario must degrade to a confidence-
      // scored superset — no errors, no excluded true cells, confidence
      // strictly between 0 and 1.
      DefectMix mix;
      mix.k = 2;
      mix.intermittentP = 0.5;
      const DefectScenarioGenerator generator(sim, mix);
      const std::vector<DefectScenario> scenarios =
          drawScenarios(generator, full ? std::size_t{24} : std::size_t{12});
      const DefectZooPipeline zoo(sim, topology, config, DefectPolicy{});
      DefectZooReport reference;
      for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
        setGlobalThreadCount(threads);
        const DefectZooReport rep = zoo.evaluate(scenarios);
        if (threads == 1) {
          reference = rep;
        } else if (!sameReport(reference, rep)) {
          deterministic = false;
        }
        benchutil::row("%-8s %-22s %-8zu %-9.4f %-9.4f %-7.3f %-6zu %-7zu %-6zu %-8zu",
                       spec.name, describeDefectMix(mix).c_str(), threads, rep.dr,
                       rep.misdiagnosisRate, rep.meanConfidence, rep.degraded,
                       rep.totalUnionSplits, rep.totalAtpgPatterns, rep.totalExtraSessions);
        report.row({{"circuit", spec.name},
                    {"defects", describeDefectMix(mix)},
                    {"k", std::size_t{2}},
                    {"threads", threads},
                    {"scenarios", rep.scenarios},
                    {"dr", rep.dr},
                    {"misdiagnosis_rate", rep.misdiagnosisRate},
                    {"mean_confidence", rep.meanConfidence},
                    {"sum_candidates", rep.sumCandidates},
                    {"sum_actual", rep.sumActual},
                    {"degraded", rep.degraded},
                    {"union_splits", rep.totalUnionSplits},
                    {"atpg_patterns", rep.totalAtpgPatterns},
                    {"extra_sessions", rep.totalExtraSessions}});
      }
      setGlobalThreadCount(1);
      if (reference.misdiagnosisRate != 0.0) sound = false;
      if (reference.degraded != reference.scenarios || reference.meanConfidence <= 0.0 ||
          reference.meanConfidence >= 1.0) {
        intermittentOk = false;
      }
    }
  }

  {
    // Starved refinement budget: with only 8 interval sessions the passive
    // refiner must stall on k=3 mixed scenarios and hand unresolved positions
    // to the PODEM stall breaker (confirm-only, so soundness still holds).
    const Netlist nl = generateNamedCircuit("s953");
    const PatternSet patterns = generatePatterns(nl, config.numPatterns, PrpgConfig{});
    const FaultSimulator sim(nl, patterns);
    const ScanTopology topology = ScanTopology::singleChain(nl.dffs().size());
    DefectMix mix;
    mix.k = 3;
    mix.bridges = true;
    mix.opens = true;
    const DefectScenarioGenerator generator(sim, mix);
    const std::vector<DefectScenario> scenarios =
        drawScenarios(generator, full ? std::size_t{30} : std::size_t{15});
    DefectPolicy starved;
    starved.refineSessionBudget = 8;
    const DefectZooPipeline zoo(sim, topology, config, starved);
    const DefectZooReport rep = zoo.evaluate(scenarios);
    benchutil::row("%-8s %-22s %-8s %-9.4f %-9.4f %-7.3f %-6zu %-7zu %-6zu %-8zu", "s953",
                   "k=3 (refine budget 8)", "1", rep.dr, rep.misdiagnosisRate,
                   rep.meanConfidence, rep.degraded, rep.totalUnionSplits,
                   rep.totalAtpgPatterns, rep.totalExtraSessions);
    report.row({{"circuit", "s953"},
                {"defects", "k=3,bridge,open,refine:8"},
                {"k", std::size_t{3}},
                {"threads", std::size_t{1}},
                {"scenarios", rep.scenarios},
                {"dr", rep.dr},
                {"misdiagnosis_rate", rep.misdiagnosisRate},
                {"mean_confidence", rep.meanConfidence},
                {"sum_candidates", rep.sumCandidates},
                {"sum_actual", rep.sumActual},
                {"degraded", rep.degraded},
                {"union_splits", rep.totalUnionSplits},
                {"atpg_patterns", rep.totalAtpgPatterns},
                {"extra_sessions", rep.totalExtraSessions}});
    if (rep.misdiagnosisRate != 0.0) sound = false;
    if (rep.totalAtpgPatterns == 0) atpgOk = false;
  }

  std::printf("\nthread determinism (1 vs 2 vs 8): %s\n", deterministic ? "OK" : "MISMATCH");
  std::printf("superset soundness (misdiagnosis == 0 everywhere): %s\n", sound ? "OK" : "FAIL");
  std::printf("k=2 precision >= baseline on >= 90%%: %s\n", precisionOk ? "OK" : "FAIL");
  std::printf("intermittent p=0.5 degrades to confidence-scored supersets: %s\n",
              intermittentOk ? "OK" : "FAIL");
  std::printf("starved refinement hands off to PODEM: %s\n", atpgOk ? "OK" : "FAIL");

  report.context("scheme", "two_step");
  report.context("partitions", config.numPartitions);
  report.context("groups", config.groupsPerPartition);
  report.context("patterns", config.numPatterns);
  report.context("thread_deterministic", deterministic);
  report.context("superset_sound", sound);
  report.write();

  if (!deterministic) std::fprintf(stderr, "FAIL: metrics drift across thread counts\n");
  if (!sound) std::fprintf(stderr, "FAIL: a true failing cell was excluded (misdiagnosis)\n");
  if (!precisionOk) std::fprintf(stderr, "FAIL: k=2 precision below single-fault baseline\n");
  if (!intermittentOk) std::fprintf(stderr, "FAIL: intermittent regime did not degrade cleanly\n");
  if (!atpgOk) std::fprintf(stderr, "FAIL: starved refinement generated no ATPG patterns\n");
  return (deterministic && sound && precisionOk && intermittentOk && atpgOk) ? 0 : 1;
}
