// Million-cell SOC scale bench: structural dedup speedup + streaming faults.
//
// Three sections:
//  1. Dedup ladder — rep:s5378xR for R in {8, 32}: the class sweep with
//     structural dedup against the no-dedup baseline (every instance
//     evaluated from scratch). The speedup must GROW with replication —
//     dedup's whole point is that work is per-class, not per-instance.
//  2. Million-cell sweep — rep:s38584x702:w8 (702 x 1426 = 1,001,052 cells,
//     >= 100x bench_table3's SOC-1 at 6,173 cells), class-deduped: one
//     representative evaluation stands for all 702 instances. Reports
//     cells/sec over the whole SOC.
//  3. Streaming fault enumeration over every core at meta scale: per-fault
//     memory must be flat (the enumerator is a scalar cursor; nothing per
//     fault is materialized). VmRSS growth across ~7M streamed sites is
//     reported as timing and gated in CI via stream_rss_flat.
//
// Counters are deterministic and golden-gated (results/golden/
// BENCH_soc_scale.json) by the workflow_dispatch big-sweep CI job — not by
// PR CI, which names its benches explicitly. Timing fields are wall-clock
// and never golden-compared.

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "bench_util.hpp"
#include "core/scandiag.hpp"

using namespace scandiag;
using namespace scandiag::benchutil;

namespace {

/// Resident set size in KiB from /proc/self/status (0 where unsupported).
std::size_t rssKb() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmRSS:", 0) == 0) {
      std::istringstream fields(line.substr(6));
      std::size_t kb = 0;
      fields >> kb;
      return kb;
    }
  }
  return 0;
}

double seconds(std::chrono::steady_clock::time_point from,
               std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

DiagnosisConfig sweepConfig() {
  DiagnosisConfig c;
  c.scheme = SchemeKind::TwoStep;
  c.numPartitions = 8;
  c.groupsPerPartition = 16;
  c.numPatterns = 64;
  return c;
}

/// One timed class sweep; returns wall seconds.
double timedSweep(const Soc& soc, const WorkloadConfig& workload, const DiagnosisConfig& config,
                  bool dedup, const RunControl& control) {
  SocSweepOptions options;
  options.dedupClasses = dedup;
  const auto start = std::chrono::steady_clock::now();
  runSocClassSweep(soc, workload, config, options, control);
  return seconds(start, std::chrono::steady_clock::now());
}

}  // namespace

int main(int argc, char** argv) {
  banner("SOC scale: structural core dedup + million-cell class sweeps",
         "dedup speedup grows with replication; per-fault memory stays flat");

  BenchRun run(argc, argv);
  BenchReport report("soc_scale");

  WorkloadConfig ladderWorkload;
  ladderWorkload.numPatterns = 64;
  ladderWorkload.numFaults = 48;
  const DiagnosisConfig config = sweepConfig();

  try {
    // --- 1. Dedup ladder -------------------------------------------------
    row("%-18s | %9s %9s %8s", "soc", "no-dedup", "dedup", "speedup");
    double speedups[2] = {0, 0};
    const std::size_t ladder[2] = {8, 32};
    for (int i = 0; i < 2; ++i) {
      const std::string spec =
          "rep:s5378x" + std::to_string(ladder[i]) + ":w8";
      const Soc soc = buildSocFromSpec(spec);
      const double cold = timedSweep(soc, ladderWorkload, config, false, run.control());
      const double warm = timedSweep(soc, ladderWorkload, config, true, run.control());
      speedups[i] = warm > 0 ? cold / warm : 0.0;
      row("%-18s | %8.2fs %8.2fs %7.2fx", spec.c_str(), cold, warm, speedups[i]);
      report.row({{"soc", spec},
                  {"seconds_no_dedup", cold},
                  {"seconds_dedup", warm},
                  {"dedup_speedup", speedups[i]}});
    }
    report.timing("dedup_speedup_r8", speedups[0]);
    report.timing("dedup_speedup_r32", speedups[1]);
    // Wall-clock ratios wobble on noisy runners; the CI gate uses the
    // coarser monotonicity signal (r32 must beat r8 by any margin).
    report.timing("dedup_speedup_growth", speedups[0] > 0 ? speedups[1] / speedups[0] : 0.0);

    // --- 2. Million-cell class sweep -------------------------------------
    const std::string bigSpec = "rep:s38584x702:w8";
    const auto buildStart = std::chrono::steady_clock::now();
    const Soc big = buildSocFromSpec(bigSpec);
    const double buildSecs = seconds(buildStart, std::chrono::steady_clock::now());
    row("");
    row("%s: %zu cores, %zu cells (built in %.2fs)", bigSpec.c_str(), big.coreCount(),
        big.totalCells(), buildSecs);

    WorkloadConfig bigWorkload;
    bigWorkload.numPatterns = 64;
    bigWorkload.numFaults = 96;
    const auto sweepStart = std::chrono::steady_clock::now();
    SocSweepOptions options;
    const SocSweepResult result = runSocClassSweep(big, bigWorkload, config, options,
                                                   run.control());
    const double sweepSecs = seconds(sweepStart, std::chrono::steady_clock::now());
    const double cellsPerSec = sweepSecs > 0 ? double(big.totalCells()) / sweepSecs : 0.0;
    for (const SocClassRow& r : result.classes) {
      row("  class %-10s x%-4zu DR = %7.3f (%zu faults) — %.2fs, %.0f cells/sec",
          r.className.c_str(), r.instanceCount, r.report.dr, r.report.faults, sweepSecs,
          cellsPerSec);
      report.row({{"soc", bigSpec},
                  {"class_name", r.className},
                  {"instances", r.instanceCount},
                  {"faults", r.report.faults},
                  {"dr", r.report.dr}});
    }
    report.context("soc", bigSpec);
    report.context("cores", big.coreCount());
    report.context("cells", big.totalCells());
    report.context("classes", result.classCount);
    report.timing("build_seconds", buildSecs);
    report.timing("sweep_seconds", sweepSecs);
    report.timing("cells_per_sec", cellsPerSec);

    // --- 3. Streaming fault enumeration, flat memory ----------------------
    // Warm every cache the stream touches (fanout index on the one shared
    // netlist), then measure RSS growth across the full meta-scale stream.
    {
      FaultEnumerator warmup(*big.core(0).netlist, true);
      while (warmup.next()) {
      }
    }
    const std::size_t rssBefore = rssKb();
    const auto streamStart = std::chrono::steady_clock::now();
    std::uint64_t streamed = 0;
    for (std::size_t k = 0; k < big.coreCount(); ++k) {
      FaultEnumerator en(*big.core(k).netlist, true);
      while (en.next()) {
      }
      streamed += en.yielded();
    }
    const double streamSecs = seconds(streamStart, std::chrono::steady_clock::now());
    const std::size_t rssAfter = rssKb();
    const std::size_t growthKb = rssAfter > rssBefore ? rssAfter - rssBefore : 0;
    // "Flat" allows allocator noise, not per-fault state: 7M+ sites at even
    // one byte each would blow straight through this bound.
    const bool flat = growthKb < 4096;
    row("");
    row("streamed %llu fault sites over %zu cores in %.2fs — RSS growth %zu KiB (%s)",
        static_cast<unsigned long long>(streamed), big.coreCount(), streamSecs, growthKb,
        flat ? "flat" : "NOT FLAT");
    report.timing("stream_sites", streamed);
    report.timing("stream_seconds", streamSecs);
    report.timing("stream_rss_growth_kb", growthKb);
    report.timing("stream_rss_flat", flat ? 1.0 : 0.0);
    report.timing("hardware_concurrency",
                  static_cast<std::uint64_t>(std::thread::hardware_concurrency()));
  } catch (const OperationCancelled& err) {
    return run.interrupted(report, err);
  }
  report.write();
  return 0;
}
