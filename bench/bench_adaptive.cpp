// Adaptive online planning — DR vs session budget against the fixed two-step.
//
// The tentpole claim: an entropy-greedy planner that chooses each next
// partition online (from a deterministic candidate pool, scored by expected
// log-reduction of the surviving candidate set) meets or beats the paper's
// fixed two-step schedule at EQUAL session budget, because it stops splitting
// faults that are already resolved and spends the remaining sessions where
// the model says they buy the most bits.
//
// Leg 1 sweeps the Table 1 workload (s953, 200 patterns, 500 faults, 4-group
// partitions) over session budgets 4..32 (1..8 partitions' worth); leg 2
// replays Table 3 (SOC-1, 8 partitions x 32 groups) per failing core. The
// bench FAILS (exit 1) if adaptive is worse at any s953 budget or on the
// SOC-1 aggregate, or not strictly better on at least two s953 budgets —
// this is the PR's acceptance gate, run in CI.

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/scandiag.hpp"

using namespace scandiag;
using namespace scandiag::benchutil;

int main(int argc, char** argv) {
  banner("Adaptive online planner: DR vs session budget, s953 + SOC-1",
         "extension — greedy entropy scheduling meets or beats the fixed two-step");

  BenchRun run(argc, argv);
  BenchReport report("adaptive");
  const Netlist nl = generateNamedCircuit("s953");
  const WorkloadConfig workload = presets::table1Workload();
  const CircuitWorkload work = prepareWorkload(nl, workload);
  report.context("circuit", "s953");
  report.context("cells", work.topology.numCells());
  report.context("faults", work.responses.size());
  row("circuit s953: %zu scan cells, %zu detected faults", work.topology.numCells(),
      work.responses.size());
  row("");
  row("%-10s %-14s %-14s %-10s", "#sessions", "DR(two-step)", "DR(adaptive)", "margin");

  std::uint64_t digest = fnv1a64(std::string("bench_adaptive"));
  digest = setupDigestPiece("circuit", "s953", digest);
  digest = setupDigestPiece("patterns", workload.numPatterns, digest);
  digest = setupDigestPiece("faults", workload.numFaults, digest);
  digest = setupDigestPiece("fault_seed", workload.faultSeed, digest);
  digest = setupDigestPiece("cells", work.topology.numCells(), digest);
  digest = setupDigestPiece("responses", work.responses.size(), digest);
  digest = setupDigestPiece("schema", obs::kMetricsSchemaVersion, digest);
  SweepCheckpoint* ckpt = run.openCheckpoint(digest, "bench_adaptive s953 + SOC-1");

  bool gateOk = true;
  std::size_t strictlyBetter = 0;
  try {
    for (std::size_t partitions = 1; partitions <= 8; ++partitions) {
      const DiagnosisConfig twoCfg = presets::table1(SchemeKind::TwoStep, partitions);
      DiagnosisConfig adCfg = twoCfg;
      adCfg.scheme = SchemeKind::Adaptive;
      const double drTwo =
          evaluateWithCheckpoint(DiagnosisPipeline(work.topology, twoCfg), work.responses,
                                 ckpt, sweepIdFor(twoCfg), run.control())
              .dr;
      const double drAd =
          evaluateWithCheckpoint(DiagnosisPipeline(work.topology, adCfg), work.responses,
                                 ckpt, sweepIdFor(adCfg), run.control())
              .dr;
      const std::size_t sessions = partitions * twoCfg.groupsPerPartition;
      row("%-10zu %-14.4f %-14.4f %+.4f", sessions, drTwo, drAd, drTwo - drAd);
      report.row({{"sessions", sessions},
                  {"dr_two_step", drTwo},
                  {"dr_adaptive", drAd},
                  {"margin", drTwo - drAd}});
      if (drAd > drTwo) {
        gateOk = false;
        std::fprintf(stderr, "GATE: adaptive worse than two-step at %zu sessions "
                             "(%.4f > %.4f)\n", sessions, drAd, drTwo);
      }
      if (drAd < drTwo) ++strictlyBetter;
    }

    // Leg 2: Table 3 protocol — SOC-1, one failing core at a time.
    const Soc soc = buildSoc1();
    const WorkloadConfig socWorkload = presets::socWorkload();
    row("");
    row("SOC-1: %zu cores, %zu cells on one meta scan chain", soc.coreCount(),
        soc.totalCells());
    row("%-9s | %12s %12s %10s", "failing", "two-step", "adaptive", "margin");
    const DiagnosisConfig socTwo = presets::soc1Config(SchemeKind::TwoStep, false);
    DiagnosisConfig socAd = socTwo;
    socAd.scheme = SchemeKind::Adaptive;
    const DiagnosisPipeline socTwoPipe(soc.topology(), socTwo);
    const DiagnosisPipeline socAdPipe(soc.topology(), socAd);
    double socSumTwo = 0.0;
    double socSumAd = 0.0;
    for (std::size_t k = 0; k < soc.coreCount(); ++k) {
      const auto responses = socResponsesForFailingCore(soc, k, socWorkload);
      const double drTwo = evaluateWithCheckpoint(socTwoPipe, responses, ckpt,
                                                  socSweepIdFor(socTwo, k), run.control())
                               .dr;
      const double drAd = evaluateWithCheckpoint(socAdPipe, responses, ckpt,
                                                 socSweepIdFor(socAd, k), run.control())
                              .dr;
      socSumTwo += drTwo;
      socSumAd += drAd;
      row("%-9s | %12.3f %12.3f %+10.3f", soc.core(k).name.c_str(), drTwo, drAd,
          drTwo - drAd);
      report.row({{"failing_core", soc.core(k).name},
                  {"dr_two_step", drTwo},
                  {"dr_adaptive", drAd},
                  {"margin", drTwo - drAd}});
    }
    row("%-9s | %12.3f %12.3f %+10.3f", "sum", socSumTwo, socSumAd, socSumTwo - socSumAd);
    report.row({{"failing_core", "sum"},
                {"dr_two_step", socSumTwo},
                {"dr_adaptive", socSumAd},
                {"margin", socSumTwo - socSumAd}});
    if (socSumAd > socSumTwo) {
      gateOk = false;
      std::fprintf(stderr, "GATE: adaptive worse than two-step on the SOC-1 aggregate "
                           "(%.4f > %.4f)\n", socSumAd, socSumTwo);
    }
  } catch (const OperationCancelled& err) {
    return run.interrupted(report, err);
  }

  if (strictlyBetter < 2) {
    gateOk = false;
    std::fprintf(stderr, "GATE: adaptive strictly better at only %zu of 8 s953 budgets "
                         "(need >= 2)\n", strictlyBetter);
  }
  report.write();
  if (!gateOk) {
    std::fprintf(stderr, "bench_adaptive: acceptance gate FAILED\n");
    return 1;
  }
  row("");
  row("acceptance gate passed: adaptive <= two-step at every budget, strictly better "
      "at %zu of 8", strictlyBetter);
  return 0;
}
