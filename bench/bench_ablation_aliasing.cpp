// Ablation — MISR aliasing vs the exact-compare assumption.
//
// The DR tables assume a group's pass/fail verdict is exact. Real compactors
// alias: a nonzero error stream can compact to signature 0, turning a failing
// group into a "passing" one and silently exonerating genuinely failing
// cells. This bench runs the same s9234 workload with true MISR verdicts at
// several register widths and reports (a) the DR shift and (b) how many
// faults lose soundness (an actual failing cell missing from the candidates).

#include "bench_util.hpp"
#include "core/scandiag.hpp"

using namespace scandiag;
using namespace scandiag::benchutil;

int main() {
  banner("Ablation: exact verdicts vs true MISR signatures (s9234, two-step)",
         "aliasing probability ~2^-degree per group; 16-bit MISRs are effectively exact");

  BenchReport report("ablation_aliasing");
  const Netlist nl = generateNamedCircuit("s9234");
  const CircuitWorkload work = prepareWorkload(nl, presets::table2Workload());
  report.context("circuit", "s9234");
  report.context("faults", work.responses.size());

  row("%-12s %10s %22s", "verdicts", "DR", "soundness violations");
  for (int degree : {0, 8, 12, 16, 24}) {
    DiagnosisConfig config = presets::table2(SchemeKind::TwoStep, false);
    if (degree > 0) {
      config.mode = SignatureMode::Misr;
      config.misrDegree = static_cast<unsigned>(degree);
    }
    const DiagnosisPipeline pipeline(work.topology, config);
    std::size_t violations = 0;
    DrAccumulator acc;
    for (const FaultResponse& r : work.responses) {
      const FaultDiagnosis d = pipeline.diagnose(r);
      acc.add(d.candidateCount, d.actualCount);
      if (!r.failingCells.isSubsetOf(d.candidates.cells)) ++violations;
    }
    const std::string label = degree == 0 ? "exact" : ("MISR-" + std::to_string(degree));
    row("%-12s %10.3f %15zu / %zu", label.c_str(), acc.dr(), violations,
        work.responses.size());
    report.row({{"verdicts", label}, {"dr", acc.dr()}, {"violations", violations}});
  }
  report.write();
  return 0;
}
