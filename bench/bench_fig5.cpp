// Figure 5 — Number of partitions required to reach DR <= 0.5 (without
// pruning) for each failing module of the single-chain SOC.
//
// Paper setup: SOC-1 (six largest ISCAS-89 stitched behind one meta scan
// chain), 32 groups per partition. Diagnosis time is dominated by the number
// of partitions (sessions = partitions x groups), so fewer partitions to a
// target DR means directly shorter diagnosis. Expected shape: two-step needs
// (often far) fewer partitions than random selection for every failing core.

#include "bench_util.hpp"
#include "core/scandiag.hpp"

using namespace scandiag;
using namespace scandiag::benchutil;

namespace {

constexpr std::size_t kMaxPartitions = 16;

/// First partition count (1-based) whose DR <= target, or 0 if never reached.
std::size_t partitionsToReach(const std::vector<double>& drByPrefix, double target) {
  for (std::size_t p = 0; p < drByPrefix.size(); ++p) {
    if (drByPrefix[p] <= target) return p + 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  banner("Figure 5: partitions needed for DR <= 0.5, SOC-1 single meta chain (32 groups)",
         "two-step reaches the target with fewer partitions => shorter diagnosis time");

  // evaluateSweep has no per-fault checkpointing (prefix DR needs all faults
  // in one pass), but it is cancellation-aware: --deadline-ms and Ctrl-C
  // degrade to a flushed partial report and exit code 6.
  BenchRun run(argc, argv);
  BenchReport report("fig5");
  const Soc soc = buildSoc1();
  const WorkloadConfig workload = presets::socWorkload();
  report.context("soc", "SOC-1");
  report.context("target_dr", 0.5);
  report.context("max_partitions", kMaxPartitions);

  row("%-9s %18s %18s", "failing", "random-selection", "two-step");
  try {
    for (std::size_t k = 0; k < soc.coreCount(); ++k) {
      const auto responses = socResponsesForFailingCore(soc, k, workload);
      std::size_t needed[2];
      int i = 0;
      for (SchemeKind scheme : {SchemeKind::RandomSelection, SchemeKind::TwoStep}) {
        const DiagnosisPipeline pipeline(soc.topology(),
                                         presets::fig5Config(scheme, kMaxPartitions));
        needed[i++] =
            partitionsToReach(pipeline.evaluateSweep(responses, run.control()), 0.5);
      }
      auto fmt = [](std::size_t n) {
        return n == 0 ? std::string(">16") : std::to_string(n);
      };
      row("%-9s %18s %18s", soc.core(k).name.c_str(), fmt(needed[0]).c_str(),
          fmt(needed[1]).c_str());
      report.row({{"failing_core", soc.core(k).name},
                  {"partitions_random", needed[0]},
                  {"partitions_two_step", needed[1]}});
    }
  } catch (const OperationCancelled& err) {
    return run.interrupted(report, err);
  }
  report.write();
  return 0;
}
