// Ablation — space compaction between scan-out and MISR.
//
// Folding W chains onto M < W MISR lines saves compactor pins and register
// width. In principle it merges evidence (cells of chains sharing a line can
// cancel and hide a failing group); in practice, for stuck-at workloads the
// measured cost is ~zero — the selection hardware already merges all chains
// at a shift position, and cancellation needs two failing cells at the SAME
// position with IDENTICAL error streams (engineered in the unit tests,
// essentially never produced by real faults). The dual-fault rows stress the
// cancellation path with two simultaneous faults per response.

#include "bench_util.hpp"
#include "core/scandiag.hpp"

using namespace scandiag;
using namespace scandiag::benchutil;

int main() {
  banner("Ablation: space compactor fold (8 chains -> M MISR lines, s38417)",
         "compaction merges chains' evidence and introduces cancellation aliasing");

  BenchReport report("ablation_compactor");
  const Netlist nl = generateNamedCircuit("s38417");
  const std::size_t chains = 8;
  WorkloadConfig wl = presets::table2Workload();
  const CircuitWorkload work = prepareWorkload(nl, wl, chains);
  report.context("circuit", "s38417");
  report.context("chains", chains);
  report.context("faults", work.responses.size());

  row("%zu chains of ~%zu cells, %zu detected faults", chains,
      work.topology.maxChainLength(), work.responses.size());
  row("");
  row("%-10s %12s %22s %12s %22s", "MISR lines", "DR single", "violations",
      "DR dual", "violations");

  // Dual-fault stress responses: pair fault i with fault i + n/2.
  std::vector<FaultResponse> dual;
  for (std::size_t i = 0; i + work.responses.size() / 2 < work.responses.size(); ++i) {
    FaultResponse merged = work.responses[i];
    const FaultResponse& other = work.responses[i + work.responses.size() / 2];
    merged.failingCells |= other.failingCells;
    for (std::size_t k = 0; k < other.failingCellOrdinals.size(); ++k) {
      if (merged.failingCells.test(other.failingCellOrdinals[k])) {
        // Skip duplicates (cell failing under both faults) to keep the
        // parallel arrays well-formed; the union bit is already set.
        bool dup = false;
        for (std::size_t ord : work.responses[i].failingCellOrdinals)
          dup |= ord == other.failingCellOrdinals[k];
        if (dup) continue;
      }
      merged.failingCellOrdinals.push_back(other.failingCellOrdinals[k]);
      merged.errorStreams.push_back(other.errorStreams[k]);
    }
    dual.push_back(std::move(merged));
  }

  for (std::size_t lines : {8u, 4u, 2u, 1u}) {
    const SpaceCompactor compactor = SpaceCompactor::moduloFanin(chains, lines);
    DiagnosisConfig config = presets::table2(SchemeKind::TwoStep, false);
    config.mode = SignatureMode::Misr;
    config.misrDegree = 16;

    // Assemble the pipeline by hand so the engine sees the compactor.
    const std::vector<Partition> partitions =
        buildPartitions(config, work.topology.maxChainLength());
    SessionConfig sc{SignatureMode::Misr, config.numPatterns};
    sc.misrDegree = config.misrDegree;
    sc.compactor = lines == chains ? nullptr : &compactor;
    const SessionEngine engine(work.topology, sc);
    const CandidateAnalyzer analyzer(work.topology);

    auto evaluate = [&](const std::vector<FaultResponse>& responses) {
      DrAccumulator acc;
      std::size_t violations = 0;
      for (const FaultResponse& r : responses) {
        const GroupVerdicts verdicts = engine.run(partitions, r);
        const CandidateSet cand = analyzer.analyze(partitions, verdicts);
        acc.add(cand.cellCount(), r.failingCellCount());
        violations += !r.failingCells.isSubsetOf(cand.cells);
      }
      return std::make_pair(acc.dr(), violations);
    };
    const auto [drSingle, vSingle] = evaluate(work.responses);
    const auto [drDual, vDual] = evaluate(dual);
    row("%-10zu %12.3f %15zu / %-6zu %12.3f %15zu / %zu", lines, drSingle, vSingle,
        work.responses.size(), drDual, vDual, dual.size());
    report.row({{"misr_lines", static_cast<std::size_t>(lines)},
                {"dr_single", drSingle},
                {"violations_single", vSingle},
                {"dr_dual", drDual},
                {"violations_dual", vDual}});
  }
  report.write();
  return 0;
}
