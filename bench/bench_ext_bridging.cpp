// Extension — diagnosis under two-line bridging faults.
//
// A bridge's failing cells come from the union of TWO fault cones: either
// two disjoint clusters (paper Fig. 2(a)) or one widened cluster (Fig. 2(b)).
// This is the hardest realistic stress of the clustering assumption behind
// interval-based partitioning, and the paper's own multiple-fault argument
// ("the fault cones may either be non-overlapping ... or overlapped") — here
// measured instead of argued.

#include "bench_util.hpp"
#include "core/scandiag.hpp"

using namespace scandiag;
using namespace scandiag::benchutil;

int main() {
  banner("Extension: bridging faults (wired-AND/OR + dominant, feedback-free pairs)",
         "two-cone failures = paper Fig. 2; two-step's edge persists, reduced vs stuck-at");

  BenchReport report("ext_bridging");
  const Netlist nl = generateNamedCircuit("s9234");
  const PatternSet pats = generatePatterns(nl, 128);
  const FaultSimulator sim(nl, pats);
  const ScanTopology topology = ScanTopology::singleChain(nl.dffs().size());
  report.context("circuit", "s9234");

  // Detected bridge responses (same 500-target protocol as the tables).
  std::vector<FaultResponse> responses;
  double meanFailing = 0, meanSpan = 0;
  for (const BridgeFault& bridge : enumerateBridgeCandidates(nl, 2500, 0xB71D)) {
    FaultResponse r = simulateBridge(sim, bridge);
    if (!r.detected()) continue;
    meanFailing += static_cast<double>(r.failingCellCount());
    const auto cells = r.failingCells.toIndices();
    meanSpan += static_cast<double>(cells.back() - cells.front() + 1) /
                static_cast<double>(nl.dffs().size());
    responses.push_back(std::move(r));
    if (responses.size() >= 500) break;
  }
  row("s9234: %zu detected bridges, mean %.1f failing cells, mean span %.2f of chain",
      responses.size(), meanFailing / static_cast<double>(responses.size()),
      meanSpan / static_cast<double>(responses.size()));
  row("");

  row("%-16s %16s %16s %8s", "fault model", "DR(random-sel)", "DR(two-step)", "gain");
  // Stuck-at reference row on the same circuit/budget.
  {
    const CircuitWorkload work = prepareWorkload(nl, presets::table2Workload());
    double dr[2];
    int i = 0;
    for (SchemeKind scheme : {SchemeKind::RandomSelection, SchemeKind::TwoStep}) {
      const DiagnosisPipeline pipeline(work.topology, presets::table2(scheme, false));
      dr[i++] = pipeline.evaluate(work.responses).dr;
    }
    row("%-16s %16.3f %16.3f %7sx", "stuck-at", dr[0], dr[1],
        improvement(dr[0], dr[1]).c_str());
    report.row({{"fault_model", "stuck-at"}, {"dr_random", dr[0]}, {"dr_two_step", dr[1]}});
  }
  {
    double dr[2];
    int i = 0;
    for (SchemeKind scheme : {SchemeKind::RandomSelection, SchemeKind::TwoStep}) {
      const DiagnosisPipeline pipeline(topology, presets::table2(scheme, false));
      dr[i++] = pipeline.evaluate(responses).dr;
    }
    row("%-16s %16.3f %16.3f %7sx", "bridging", dr[0], dr[1],
        improvement(dr[0], dr[1]).c_str());
    report.row({{"fault_model", "bridging"}, {"dr_random", dr[0]}, {"dr_two_step", dr[1]}});
  }
  report.write();
  return 0;
}
