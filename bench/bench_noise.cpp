// Noise-resilience sweep: DR and misdiagnosis rate as a function of tester
// noise rate, with and without bounded-retry recovery, at 1 and 8 threads.
//
// The paper's DR tables assume perfect session verdicts; this bench measures
// what a noisy tester does to them and how much the resilience layer
// (inconsistency detection + bounded session retry + graceful degradation)
// buys back. The 1- vs 8-thread rows double as a determinism check: every
// metric must be bit-identical across thread counts.
//
// Writes results/BENCH_noise.json. Set SCANDIAG_NOISE_FULL=1 for the dense
// sweep (more faults, more rates).

#include <cstdlib>
#include <vector>

#include "bench_util.hpp"
#include "core/scandiag.hpp"

using namespace scandiag;

namespace {

struct SweepPoint {
  double noiseRate = 0.0;
  bool recovery = false;
  std::size_t threads = 1;
  NoisyDrReport report;
};

bool sameReport(const NoisyDrReport& a, const NoisyDrReport& b) {
  return a.sumCandidates == b.sumCandidates && a.sumActual == b.sumActual &&
         a.faults == b.faults && a.totalInconsistencies == b.totalInconsistencies &&
         a.totalRetrySessions == b.totalRetrySessions && a.unresolved == b.unresolved &&
         a.misdiagnosisRate == b.misdiagnosisRate && a.meanConfidence == b.meanConfidence;
}

}  // namespace

int main() {
  const bool full = std::getenv("SCANDIAG_NOISE_FULL") != nullptr;

  benchutil::BenchReport report("noise");
  const Netlist nl = generateNamedCircuit("s953");
  WorkloadConfig wc;
  wc.numPatterns = 128;
  wc.numFaults = full ? 500 : 200;
  const CircuitWorkload work = prepareWorkload(nl, wc);

  DiagnosisConfig config;  // two-step, 8 partitions x 16 groups, 128 patterns
  RetryPolicy recovery;
  recovery.maxRetriesPerSession = 2;
  recovery.sessionBudget = 64;  // half a schedule's worth of extra sessions

  std::vector<double> rates{0.0, 0.005, 0.01, 0.02, 0.05};
  if (full) rates = {0.0, 0.002, 0.005, 0.01, 0.02, 0.05, 0.1};

  benchutil::banner(
      "Noise resilience: DR / misdiagnosis vs verdict-flip rate (s953, two-step)",
      "no claim — robustness extension; paper assumes noiseless session verdicts");
  std::printf("faults %zu, retry budget %zu sessions x %zu re-runs, seed 0x%llX\n\n",
              work.responses.size(), recovery.sessionBudget, recovery.maxRetriesPerSession,
              static_cast<unsigned long long>(NoiseConfig{}.seed));
  std::printf("%-8s %-9s %-8s %-9s %-9s %-7s %-7s %-8s %-7s %-6s\n", "noise", "recovery",
              "threads", "DR", "misdiag", "empty", "conf", "inconsis", "retry", "unres");

  std::vector<SweepPoint> points;
  bool deterministic = true;
  for (const double rate : rates) {
    NoiseConfig noise;
    noise.flipRate = rate;
    for (const bool withRecovery : {false, true}) {
      const RetryPolicy policy = withRecovery ? recovery : RetryPolicy{};
      const NoisyPipeline pipeline(work.topology, config, noise, policy);
      NoisyDrReport reference;
      for (const std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
        setGlobalThreadCount(threads);
        SweepPoint point;
        point.noiseRate = rate;
        point.recovery = withRecovery;
        point.threads = threads;
        point.report = pipeline.evaluate(work.responses);
        if (threads == 1) {
          reference = point.report;
        } else if (!sameReport(reference, point.report)) {
          deterministic = false;
        }
        benchutil::row("%-8.3f %-9s %-8zu %-9.4f %-9.4f %-7.4f %-7.3f %-8zu %-7zu %-6zu",
                       rate, withRecovery ? "on" : "off", threads, point.report.dr,
                       point.report.misdiagnosisRate, point.report.emptyRate,
                       point.report.meanConfidence, point.report.totalInconsistencies,
                       point.report.totalRetrySessions, point.report.unresolved);
        points.push_back(point);
      }
    }
  }
  setGlobalThreadCount(1);
  std::printf("\nthread determinism (1 vs 8): %s\n", deterministic ? "OK" : "MISMATCH");

  report.context("circuit", nl.name());
  report.context("scheme", "two_step");
  report.context("partitions", config.numPartitions);
  report.context("groups", config.groupsPerPartition);
  report.context("faults", work.responses.size());
  report.context("retry_budget", recovery.sessionBudget);
  report.context("max_retries_per_session", recovery.maxRetriesPerSession);
  report.context("thread_deterministic", deterministic);
  for (const SweepPoint& p : points) {
    report.row({{"noise_rate", p.noiseRate},
                {"recovery", p.recovery},
                {"threads", p.threads},
                {"dr", p.report.dr},
                {"misdiagnosis_rate", p.report.misdiagnosisRate},
                {"empty_rate", p.report.emptyRate},
                {"mean_confidence", p.report.meanConfidence},
                {"sum_candidates", p.report.sumCandidates},
                {"sum_actual", p.report.sumActual},
                {"inconsistencies", p.report.totalInconsistencies},
                {"retry_sessions", p.report.totalRetrySessions},
                {"unresolved", p.report.unresolved}});
  }
  report.write();
  return deterministic ? 0 : 1;
}
