// Extension — diagnosis under deterministic (ATPG) vs pseudorandom patterns.
//
// The paper's sessions apply PRPG patterns; production flows often apply a
// compact deterministic set instead. A compact set detects each fault with
// very few patterns, so each fault produces far fewer error bits and smaller
// failing-cell sets — which changes the diagnosis picture in both directions:
// less data per fault (harder to separate candidates), but also smaller
// actual failing sets (smaller DR denominator). This bench quantifies it on
// the same circuit with the same diagnosis budget, plus the raw test-length
// economics (cube count vs pattern count) that motivate deterministic BIST.

#include "bench_util.hpp"
#include "core/scandiag.hpp"

using namespace scandiag;
using namespace scandiag::benchutil;

int main() {
  banner("Extension: ATPG (PODEM) deterministic patterns vs PRPG pseudorandom",
         "compact sets shrink per-fault evidence; pseudorandom sessions aid diagnosis");

  BenchReport jsonReport("ext_atpg");
  const Netlist nl = generateNamedCircuit("s9234");
  const FaultList universe = FaultList::enumerateCollapsed(nl);
  const auto targetFaults = universe.sample(600, 0xA7B6);
  jsonReport.context("circuit", "s9234");
  jsonReport.context("target_faults", targetFaults.size());

  // Deterministic compact set via PODEM with fault dropping.
  const PodemAtpg atpg(nl);
  const std::vector<TestCube> cubes = atpg.generateCompactSet(targetFaults);
  const PatternSet detPatterns = patternsFromCubes(nl, cubes);
  row("PODEM compact set: %zu cubes for %zu target faults", cubes.size(),
      targetFaults.size());

  const ScanTopology topology = ScanTopology::singleChain(nl.dffs().size());
  struct Variant {
    const char* label;
    std::size_t patterns;
  };
  row("");
  row("%-26s %9s %10s %12s %12s", "pattern source", "patterns", "detected",
      "avg fail/flt", "DR(two-step)");

  auto report = [&](const char* label, const PatternSet& patterns) {
    const FaultSimulator sim(nl, patterns);
    const std::vector<FaultResponse> responses = sim.collectDetected(targetFaults, 500);
    double avgFail = 0;
    for (const FaultResponse& r : responses)
      avgFail += static_cast<double>(r.failingCellCount());
    avgFail /= static_cast<double>(responses.size());
    DiagnosisConfig config = presets::table2(SchemeKind::TwoStep, false);
    config.numPatterns = patterns.numPatterns();
    const DiagnosisPipeline pipeline(topology, config);
    const double dr = pipeline.evaluate(responses).dr;
    row("%-26s %9zu %10zu %12.2f %12.3f", label, patterns.numPatterns(), responses.size(),
        avgFail, dr);
    jsonReport.row({{"pattern_source", label},
                    {"patterns", patterns.numPatterns()},
                    {"detected", responses.size()},
                    {"avg_failing_cells", avgFail},
                    {"dr_two_step", dr}});
  };

  report("PODEM compact", detPatterns);
  report("PRPG pseudorandom (same N)",
         generatePatterns(nl, detPatterns.numPatterns()));
  report("PRPG pseudorandom (128)", generatePatterns(nl, 128));
  jsonReport.write();
  return 0;
}
