// Ablation — one shared compactor (the paper's Fig. 1) vs one MISR per chain.
//
// Table 4's DR is dominated by the shared compare logic: a failing group
// suspects its positions on EVERY meta chain (8 cells per position on d695).
// Spending W-1 extra signature registers restores per-cell granularity. The
// comparison is run on the d695 SOC with the paper's Table-4 parameters so
// the numbers slot directly next to that table.

#include "bench_util.hpp"
#include "core/scandiag.hpp"

using namespace scandiag;
using namespace scandiag::benchutil;

int main() {
  banner("Ablation: shared compactor vs per-chain MISRs (d695, 8 partitions x 8 groups)",
         "W MISRs restore (position x chain) granularity; Table 4's DR collapses");

  BenchReport report("ablation_perchain");
  const Soc soc = buildD695();
  const WorkloadConfig workload = presets::socWorkload();
  report.context("soc", "d695");
  report.context("chains", soc.topology().numChains());
  const DiagnosisConfig config = presets::d695Config(SchemeKind::TwoStep, false);
  const std::vector<Partition> partitions =
      buildPartitions(config, soc.topology().maxChainLength());

  const SessionEngine engine(soc.topology(), SessionConfig{SignatureMode::Exact, 128});
  const CandidateAnalyzer shared(soc.topology());
  const PerChainObservation perChain(soc.topology());

  row("%-9s | %14s %14s %8s", "failing", "shared MISR", "per-chain MISR", "gain");
  for (std::size_t k = 0; k < soc.coreCount(); ++k) {
    const auto responses = socResponsesForFailingCore(soc, k, workload);
    DrAccumulator accShared, accPerChain;
    for (const FaultResponse& r : responses) {
      const GroupVerdicts v = engine.run(partitions, r);
      accShared.add(shared.analyze(partitions, v).cellCount(), r.failingCellCount());
      accPerChain.add(perChain.diagnose(partitions, r).cellCount(), r.failingCellCount());
    }
    row("%-9s | %14.2f %14.2f %7sx", soc.core(k).name.c_str(), accShared.dr(),
        accPerChain.dr(), improvement(accShared.dr(), accPerChain.dr()).c_str());
    report.row({{"failing_core", soc.core(k).name},
                {"dr_shared", accShared.dr()},
                {"dr_per_chain", accPerChain.dr()}});
  }
  row("");
  row("hardware price: %zu MISRs instead of 1 (two-step's selection counters unchanged)",
      soc.topology().numChains());
  report.write();
  return 0;
}
