// Performance microbenchmarks (google-benchmark): throughput of the hot
// kernels — bit-parallel logic simulation, cone-restricted fault simulation,
// LFSR stepping, partition generation, and whole-fault diagnosis — plus the
// serial-vs-threaded DR experiment comparison, which is also written to
// results/BENCH_perf.json. The JSON report is opened (and the metrics
// registry reset) at the START of the speedup section, after the adaptive
// google-benchmark iterations, so its counters section is deterministic.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "core/scandiag.hpp"

using namespace scandiag;

namespace {

const Netlist& circuit() {
  static const Netlist nl = generateNamedCircuit("s9234");
  return nl;
}

const CircuitWorkload& workload() {
  static const CircuitWorkload work = prepareWorkload(circuit(), presets::table2Workload());
  return work;
}

void BM_LogicSimEvaluate(benchmark::State& state) {
  const Netlist& nl = circuit();
  const LogicSimulator sim(nl);
  const PatternSet pats = generatePatterns(nl, 64);
  std::vector<SimWord> values(nl.gateCount(), 0);
  for (GateId id = 0; id < nl.gateCount(); ++id)
    if (pats.isSource(id)) values[id] = pats.word(id, 0);
  for (auto _ : state) {
    sim.evaluate(values);
    benchmark::DoNotOptimize(values.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(nl.combGateCount()) * 64);
  state.SetLabel("gate-evaluations x 64 patterns");
}
BENCHMARK(BM_LogicSimEvaluate);

void BM_FaultSimulateOne(benchmark::State& state) {
  const Netlist& nl = circuit();
  const PatternSet pats = generatePatterns(nl, 128);
  const FaultSimulator sim(nl, pats);
  const auto faults = FaultList::enumerateCollapsed(nl).sample(64, 1);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.simulate(faults[i++ % faults.size()]));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_FaultSimulateOne);

void BM_FaultSimulateOneReference(benchmark::State& state) {
  // The pre-cache algorithm (fresh cone + full good-value copy per fault);
  // the gap to BM_FaultSimulateOne is the cone-cache + scratch-restore win.
  const Netlist& nl = circuit();
  const PatternSet pats = generatePatterns(nl, 128);
  const FaultSimulator sim(nl, pats);
  const auto faults = FaultList::enumerateCollapsed(nl).sample(64, 1);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.simulateReference(faults[i++ % faults.size()]));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_FaultSimulateOneReference);

void BM_ParallelFaultGrading(benchmark::State& state) {
  // 64-fault-per-pass grading vs one-fault-at-a-time (BM_FaultSimulateOne).
  const Netlist& nl = circuit();
  const PatternSet pats = generatePatterns(nl, 128);
  const ParallelFaultSimulator sim(nl, pats);
  const auto faults = FaultList::enumerateCollapsed(nl).sample(256, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.detectFaults(faults));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(faults.size()));
  state.SetLabel("faults graded");
}
BENCHMARK(BM_ParallelFaultGrading);

void BM_LfsrStep(benchmark::State& state) {
  Lfsr lfsr(LfsrConfig{16, 0}, 0xACE1);
  for (auto _ : state) benchmark::DoNotOptimize(lfsr.step());
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_LfsrStep);

void BM_GaloisLfsrStep(benchmark::State& state) {
  GaloisLfsr lfsr(LfsrConfig{16, 0}, 0xACE1);
  for (auto _ : state) benchmark::DoNotOptimize(lfsr.step());
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_GaloisLfsrStep);

void BM_MisrClock(benchmark::State& state) {
  Misr misr(16, primitiveTapMask(16), 8);
  std::uint64_t x = 0;
  for (auto _ : state) {
    misr.clock(++x);
    benchmark::DoNotOptimize(misr.signature());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_MisrClock);

void BM_RandomPartition(benchmark::State& state) {
  const std::size_t chain = static_cast<std::size_t>(state.range(0));
  RandomSelectionPartitioner partitioner(RandomSelectionConfig{}, chain, 16);
  for (auto _ : state) benchmark::DoNotOptimize(partitioner.next());
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(chain));
}
BENCHMARK(BM_RandomPartition)->Arg(211)->Arg(6173);

void BM_IntervalPartition(benchmark::State& state) {
  const std::size_t chain = static_cast<std::size_t>(state.range(0));
  IntervalPartitioner partitioner(IntervalPartitionerConfig{}, chain, 16);
  for (auto _ : state) benchmark::DoNotOptimize(partitioner.next());
}
BENCHMARK(BM_IntervalPartition)->Arg(211)->Arg(6173);

void BM_DiagnoseFault(benchmark::State& state) {
  const CircuitWorkload& work = workload();
  const DiagnosisPipeline pipeline(work.topology,
                                   presets::table2(SchemeKind::TwoStep, false));
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(pipeline.diagnose(work.responses[i++ % work.responses.size()]));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_DiagnoseFault);

void BM_DiagnoseFaultWithPruning(benchmark::State& state) {
  const CircuitWorkload& work = workload();
  const DiagnosisPipeline pipeline(work.topology,
                                   presets::table2(SchemeKind::TwoStep, true));
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(pipeline.diagnose(work.responses[i++ % work.responses.size()]));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_DiagnoseFaultWithPruning);

void BM_FullDrExperiment(benchmark::State& state) {
  const CircuitWorkload& work = workload();
  const DiagnosisPipeline pipeline(work.topology,
                                   presets::table2(SchemeKind::TwoStep, false));
  for (auto _ : state) benchmark::DoNotOptimize(pipeline.evaluate(work.responses));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(work.responses.size()));
}
BENCHMARK(BM_FullDrExperiment);

void BM_FullDrExperimentThreads(benchmark::State& state) {
  // Same experiment through the thread pool; DR output is bit-identical at
  // every arg (the determinism tests hold this), only wall time changes.
  setGlobalThreadCount(static_cast<std::size_t>(state.range(0)));
  const CircuitWorkload& work = workload();
  const DiagnosisPipeline pipeline(work.topology,
                                   presets::table2(SchemeKind::TwoStep, false));
  for (auto _ : state) benchmark::DoNotOptimize(pipeline.evaluate(work.responses));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(work.responses.size()));
  setGlobalThreadCount(1);
}
BENCHMARK(BM_FullDrExperimentThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

// ---------------------------------------------------------------------------
// Serial-vs-threaded speedup on the largest synthetic profile (s38584). Runs
// after the microbenchmarks and records throughput + speedup per thread
// count into results/BENCH_perf.json — the artifact the EXPERIMENTS.md
// threading row is checked against.

double bestEvaluateMillis(const DiagnosisPipeline& pipeline,
                          const std::vector<FaultResponse>& responses, int reps) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto start = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(pipeline.evaluate(responses));
    const std::chrono::duration<double, std::milli> elapsed =
        std::chrono::steady_clock::now() - start;
    best = std::min(best, elapsed.count());
  }
  return best;
}

/// Fixed-size per-fault simulation comparison on the table2-class workload:
/// the cone-cached scratch path (simulate) against the full-copy reference
/// (simulateReference). Runs BEFORE the BenchReport registry reset so its
/// counter increments are out of scope for the CI-gated counters section.
struct FaultSimComparison {
  double scratchMicros = 0.0;
  double referenceMicros = 0.0;
  double speedup = 0.0;
  std::size_t faults = 0;
};

FaultSimComparison measureFaultSimSpeedup() {
  const Netlist& nl = circuit();
  const PatternSet pats = generatePatterns(nl, presets::table2Workload().numPatterns);
  const FaultSimulator sim(nl, pats);
  const auto faults = FaultList::enumerateCollapsed(nl).sample(500, 0xFA17);

  const auto sweepMillis = [&](auto&& simulateOne) {
    double best = 1e300;
    for (int rep = 0; rep < 5; ++rep) {
      const auto start = std::chrono::steady_clock::now();
      for (const FaultSite& f : faults) benchmark::DoNotOptimize(simulateOne(f));
      const std::chrono::duration<double, std::milli> elapsed =
          std::chrono::steady_clock::now() - start;
      best = std::min(best, elapsed.count());
    }
    return best;
  };

  FaultSimComparison cmp;
  cmp.faults = faults.size();
  // Warm-up builds every cone once; steady state (a DR experiment revisits
  // each fault's gate many times) is what the hot path is optimized for.
  sweepMillis([&](const FaultSite& f) { return sim.simulate(f); });
  const double scratchMillis = sweepMillis([&](const FaultSite& f) { return sim.simulate(f); });
  const double referenceMillis =
      sweepMillis([&](const FaultSite& f) { return sim.simulateReference(f); });
  cmp.scratchMicros = 1000.0 * scratchMillis / static_cast<double>(faults.size());
  cmp.referenceMicros = 1000.0 * referenceMillis / static_cast<double>(faults.size());
  cmp.speedup = cmp.scratchMicros > 0.0 ? cmp.referenceMicros / cmp.scratchMicros : 0.0;
  std::printf("\nPer-fault simulation, %s (%zu faults, %zu patterns):\n", nl.name().c_str(),
              faults.size(), pats.numPatterns());
  std::printf("  reference (full-copy): %.2f us/fault\n", cmp.referenceMicros);
  std::printf("  scratch (cone-cached): %.2f us/fault  -> %.2fx\n", cmp.scratchMicros,
              cmp.speedup);
  return cmp;
}

/// Counter-increment cost, single shared atomic vs the registry's striped
/// lanes, hammered from min(8, hardware_concurrency) threads. Must run BEFORE
/// the BenchReport registry reset: the striped side hammers a real counter,
/// and the number of adds depends on the machine's core count — keeping it
/// out of the CI-gated (machine-independent) counters section.
struct ContentionComparison {
  double sharedNsPerAdd = 0.0;
  double stripedNsPerAdd = 0.0;
  double ratio = 0.0;
  std::size_t threads = 0;
};

ContentionComparison measureCounterContention() {
  ContentionComparison cmp;
  cmp.threads = std::max<std::size_t>(1, std::min<std::size_t>(8, std::thread::hardware_concurrency()));
  constexpr std::uint64_t kAddsPerThread = 1'000'000;

  const auto hammer = [&](auto&& addOne) {
    double best = 1e300;
    for (int rep = 0; rep < 3; ++rep) {
      std::vector<std::thread> threads;
      const auto start = std::chrono::steady_clock::now();
      for (std::size_t t = 0; t < cmp.threads; ++t) {
        threads.emplace_back([&] {
          for (std::uint64_t i = 0; i < kAddsPerThread; ++i) addOne();
        });
      }
      for (std::thread& t : threads) t.join();
      const std::chrono::duration<double, std::nano> elapsed =
          std::chrono::steady_clock::now() - start;
      best = std::min(best, elapsed.count() /
                                static_cast<double>(cmp.threads * kAddsPerThread));
    }
    return best;
  };

  std::atomic<std::uint64_t> shared{0};
  cmp.sharedNsPerAdd = hammer([&] { shared.fetch_add(1, std::memory_order_relaxed); });
  benchmark::DoNotOptimize(shared.load());
  obs::MetricsRegistry& registry = obs::MetricsRegistry::instance();
  cmp.stripedNsPerAdd = hammer([&] { registry.add(obs::Counter::BatchedGroupScores); });
  cmp.ratio = cmp.stripedNsPerAdd > 0.0 ? cmp.sharedNsPerAdd / cmp.stripedNsPerAdd : 0.0;
  std::printf("\nCounter add contention (%zu threads, %llu adds each):\n", cmp.threads,
              static_cast<unsigned long long>(kAddsPerThread));
  std::printf("  shared atomic:  %.2f ns/add\n", cmp.sharedNsPerAdd);
  std::printf("  striped lanes:  %.2f ns/add  -> %.2fx\n", cmp.stripedNsPerAdd, cmp.ratio);
  return cmp;
}

/// Batched vs per-session scorer over the full s38584 workload, single
/// thread, engine-level (no analyzer) so the ratio isolates session scoring.
/// Runs after the BenchReport reset on purpose: every sweep is fixed-size and
/// single-threaded, so its counter increments are deterministic and belong in
/// the gated section (they are what make batched_group_scores nonzero here).
struct SessionScorerComparison {
  double referenceMillis = 0.0;
  double batchedMillis = 0.0;
  double referenceSessionsPerSec = 0.0;
  double batchedSessionsPerSec = 0.0;
  double speedup = 0.0;
  std::size_t sessionsPerSweep = 0;
};

SessionScorerComparison measureSessionScorerSpeedup(
    const DiagnosisPipeline& pipeline, const std::vector<FaultResponse>& responses) {
  const SessionEngine& engine = pipeline.engine();
  const PreparedPartitionSet& prepared = pipeline.prepared();
  const auto sweepMillis = [&](auto&& runOne) {
    double best = 1e300;
    for (int rep = 0; rep < 5; ++rep) {
      const auto start = std::chrono::steady_clock::now();
      for (const FaultResponse& r : responses) benchmark::DoNotOptimize(runOne(r));
      const std::chrono::duration<double, std::milli> elapsed =
          std::chrono::steady_clock::now() - start;
      best = std::min(best, elapsed.count());
    }
    return best;
  };

  SessionScorerComparison cmp;
  cmp.sessionsPerSweep = responses.size() * prepared.totalGroups();
  SessionBatchScratch scratch;
  // Warm-up both paths once (prepared tables are already built; this warms
  // caches and, in signature configs, the lazy model/contribution tables).
  sweepMillis([&](const FaultResponse& r) { return engine.runReference(prepared, r); });
  cmp.referenceMillis =
      sweepMillis([&](const FaultResponse& r) { return engine.runReference(prepared, r); });
  sweepMillis([&](const FaultResponse& r) { return engine.runBatched(prepared, r, &scratch); });
  cmp.batchedMillis =
      sweepMillis([&](const FaultResponse& r) { return engine.runBatched(prepared, r, &scratch); });
  cmp.referenceSessionsPerSec =
      1000.0 * static_cast<double>(cmp.sessionsPerSweep) / cmp.referenceMillis;
  cmp.batchedSessionsPerSec =
      1000.0 * static_cast<double>(cmp.sessionsPerSweep) / cmp.batchedMillis;
  cmp.speedup = cmp.batchedMillis > 0.0 ? cmp.referenceMillis / cmp.batchedMillis : 0.0;
  std::printf("\nSession scoring, single thread (%zu faults x %zu sessions):\n",
              responses.size(), prepared.totalGroups());
  std::printf("  per-session reference: %8.2f ms  %12.0f sessions/s\n", cmp.referenceMillis,
              cmp.referenceSessionsPerSec);
  std::printf("  batched scorer:        %8.2f ms  %12.0f sessions/s  -> %.2fx\n",
              cmp.batchedMillis, cmp.batchedSessionsPerSec, cmp.speedup);
  return cmp;
}

void reportParallelSpeedup() {
  // Measured before the report exists: see FaultSimComparison /
  // ContentionComparison.
  const FaultSimComparison faultSim = measureFaultSimSpeedup();
  const ContentionComparison contention = measureCounterContention();

  // Constructed here — the registry reset puts the adaptive-iteration
  // microbenchmark counters out of scope, leaving only the fixed-size
  // speedup experiment (deterministic, CI-gated).
  benchutil::BenchReport report("perf");
  const Netlist nl = generateNamedCircuit("s38584");
  const CircuitWorkload work = prepareWorkload(nl, presets::table2Workload());
  const DiagnosisPipeline pipeline(work.topology,
                                   presets::table2(SchemeKind::TwoStep, false));
  report.context("circuit", nl.name());
  report.context("scheme", "two_step");
  report.context("faults", work.responses.size());
  report.context("patterns", work.patternsApplied);

  // Before/after rows for the copy-free fault-sim hot path (timing rows are
  // informational; the counter gate lives in the counters section).
  report.row({{"kind", "fault_sim_reference"},
              {"per_fault_micros", faultSim.referenceMicros},
              {"faults", faultSim.faults}});
  report.row({{"kind", "fault_sim_scratch"},
              {"per_fault_micros", faultSim.scratchMicros},
              {"faults", faultSim.faults},
              {"speedup", faultSim.speedup}});
  report.row({{"kind", "counter_shared_atomic"},
              {"ns_per_add", contention.sharedNsPerAdd},
              {"hammer_threads", contention.threads}});
  report.row({{"kind", "counter_striped"},
              {"ns_per_add", contention.stripedNsPerAdd},
              {"hammer_threads", contention.threads},
              {"speedup", contention.ratio}});

  // Batched vs per-session scorer (the ARCHITECTURE §11 headline number),
  // measured on a sweep-scale schedule (fig5 preset: 16 partitions x 32
  // groups = 512 sessions per fault) — the workload class the batched scorer
  // exists for. The table2 pipeline above keeps driving the DR-scaling rows.
  setGlobalThreadCount(1);
  const DiagnosisPipeline scoringPipeline(
      work.topology, presets::fig5Config(SchemeKind::TwoStep, /*maxPartitions=*/16));
  const SessionScorerComparison scorer =
      measureSessionScorerSpeedup(scoringPipeline, work.responses);
  report.row({{"kind", "session_reference"},
              {"millis", scorer.referenceMillis},
              {"sessions_per_second", scorer.referenceSessionsPerSec},
              {"sessions", scorer.sessionsPerSweep}});
  report.row({{"kind", "session_batched"},
              {"millis", scorer.batchedMillis},
              {"sessions_per_second", scorer.batchedSessionsPerSec},
              {"sessions", scorer.sessionsPerSweep},
              {"speedup", scorer.speedup}});
  report.timing("session_scorer_speedup", scorer.speedup);

  std::printf("\nDR experiment scaling, s38584 (%zu detected faults, two-step):\n",
              work.responses.size());
  std::printf("%-8s %-12s %-16s %-8s\n", "threads", "best ms", "faults/s", "speedup");

  double serialMillis = 0.0;
  double speedup8 = 0.0;
  for (const std::size_t threads : {1, 2, 4, 8}) {
    setGlobalThreadCount(threads);
    bestEvaluateMillis(pipeline, work.responses, 1);  // warm-up (pool + caches)
    const double millis = bestEvaluateMillis(pipeline, work.responses, 5);
    if (threads == 1) serialMillis = millis;
    const double faultsPerSec = 1000.0 * static_cast<double>(work.responses.size()) / millis;
    const double speedup = serialMillis / millis;
    if (threads == 8) speedup8 = speedup;
    std::printf("%-8zu %-12.2f %-16.0f %-8.2f\n", threads, millis, faultsPerSec, speedup);
    report.row({{"threads", threads},
                {"millis", millis},
                {"faults_per_second", faultsPerSec},
                {"speedup", speedup}});
  }
  setGlobalThreadCount(1);
  // Scaling-gate inputs (timing section: wall-clock, machine-dependent —
  // check_bench_counters.py --min-ratio reads them from the CURRENT report,
  // never from goldens, and its escape hatch keys on hardware_concurrency).
  report.timing("threads_speedup_8", speedup8);
  report.timing("hardware_concurrency",
                static_cast<std::uint64_t>(std::thread::hardware_concurrency()));
  report.write();
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  reportParallelSpeedup();
  return 0;
}
