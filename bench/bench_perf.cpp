// Performance microbenchmarks (google-benchmark): throughput of the hot
// kernels — bit-parallel logic simulation, cone-restricted fault simulation,
// LFSR stepping, partition generation, and whole-fault diagnosis — plus the
// serial-vs-threaded DR experiment comparison, which is also written to
// results/BENCH_perf.json. The JSON report is opened (and the metrics
// registry reset) at the START of the speedup section, after the adaptive
// google-benchmark iterations, so its counters section is deterministic.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "bench_util.hpp"
#include "core/scandiag.hpp"

using namespace scandiag;

namespace {

const Netlist& circuit() {
  static const Netlist nl = generateNamedCircuit("s9234");
  return nl;
}

const CircuitWorkload& workload() {
  static const CircuitWorkload work = prepareWorkload(circuit(), presets::table2Workload());
  return work;
}

void BM_LogicSimEvaluate(benchmark::State& state) {
  const Netlist& nl = circuit();
  const LogicSimulator sim(nl);
  const PatternSet pats = generatePatterns(nl, 64);
  std::vector<SimWord> values(nl.gateCount(), 0);
  for (GateId id = 0; id < nl.gateCount(); ++id)
    if (pats.isSource(id)) values[id] = pats.word(id, 0);
  for (auto _ : state) {
    sim.evaluate(values);
    benchmark::DoNotOptimize(values.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(nl.combGateCount()) * 64);
  state.SetLabel("gate-evaluations x 64 patterns");
}
BENCHMARK(BM_LogicSimEvaluate);

void BM_FaultSimulateOne(benchmark::State& state) {
  const Netlist& nl = circuit();
  const PatternSet pats = generatePatterns(nl, 128);
  const FaultSimulator sim(nl, pats);
  const auto faults = FaultList::enumerateCollapsed(nl).sample(64, 1);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.simulate(faults[i++ % faults.size()]));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_FaultSimulateOne);

void BM_FaultSimulateOneReference(benchmark::State& state) {
  // The pre-cache algorithm (fresh cone + full good-value copy per fault);
  // the gap to BM_FaultSimulateOne is the cone-cache + scratch-restore win.
  const Netlist& nl = circuit();
  const PatternSet pats = generatePatterns(nl, 128);
  const FaultSimulator sim(nl, pats);
  const auto faults = FaultList::enumerateCollapsed(nl).sample(64, 1);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.simulateReference(faults[i++ % faults.size()]));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_FaultSimulateOneReference);

void BM_ParallelFaultGrading(benchmark::State& state) {
  // 64-fault-per-pass grading vs one-fault-at-a-time (BM_FaultSimulateOne).
  const Netlist& nl = circuit();
  const PatternSet pats = generatePatterns(nl, 128);
  const ParallelFaultSimulator sim(nl, pats);
  const auto faults = FaultList::enumerateCollapsed(nl).sample(256, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.detectFaults(faults));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(faults.size()));
  state.SetLabel("faults graded");
}
BENCHMARK(BM_ParallelFaultGrading);

void BM_LfsrStep(benchmark::State& state) {
  Lfsr lfsr(LfsrConfig{16, 0}, 0xACE1);
  for (auto _ : state) benchmark::DoNotOptimize(lfsr.step());
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_LfsrStep);

void BM_GaloisLfsrStep(benchmark::State& state) {
  GaloisLfsr lfsr(LfsrConfig{16, 0}, 0xACE1);
  for (auto _ : state) benchmark::DoNotOptimize(lfsr.step());
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_GaloisLfsrStep);

void BM_MisrClock(benchmark::State& state) {
  Misr misr(16, primitiveTapMask(16), 8);
  std::uint64_t x = 0;
  for (auto _ : state) {
    misr.clock(++x);
    benchmark::DoNotOptimize(misr.signature());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_MisrClock);

void BM_RandomPartition(benchmark::State& state) {
  const std::size_t chain = static_cast<std::size_t>(state.range(0));
  RandomSelectionPartitioner partitioner(RandomSelectionConfig{}, chain, 16);
  for (auto _ : state) benchmark::DoNotOptimize(partitioner.next());
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(chain));
}
BENCHMARK(BM_RandomPartition)->Arg(211)->Arg(6173);

void BM_IntervalPartition(benchmark::State& state) {
  const std::size_t chain = static_cast<std::size_t>(state.range(0));
  IntervalPartitioner partitioner(IntervalPartitionerConfig{}, chain, 16);
  for (auto _ : state) benchmark::DoNotOptimize(partitioner.next());
}
BENCHMARK(BM_IntervalPartition)->Arg(211)->Arg(6173);

void BM_DiagnoseFault(benchmark::State& state) {
  const CircuitWorkload& work = workload();
  const DiagnosisPipeline pipeline(work.topology,
                                   presets::table2(SchemeKind::TwoStep, false));
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(pipeline.diagnose(work.responses[i++ % work.responses.size()]));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_DiagnoseFault);

void BM_DiagnoseFaultWithPruning(benchmark::State& state) {
  const CircuitWorkload& work = workload();
  const DiagnosisPipeline pipeline(work.topology,
                                   presets::table2(SchemeKind::TwoStep, true));
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(pipeline.diagnose(work.responses[i++ % work.responses.size()]));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_DiagnoseFaultWithPruning);

void BM_FullDrExperiment(benchmark::State& state) {
  const CircuitWorkload& work = workload();
  const DiagnosisPipeline pipeline(work.topology,
                                   presets::table2(SchemeKind::TwoStep, false));
  for (auto _ : state) benchmark::DoNotOptimize(pipeline.evaluate(work.responses));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(work.responses.size()));
}
BENCHMARK(BM_FullDrExperiment);

void BM_FullDrExperimentThreads(benchmark::State& state) {
  // Same experiment through the thread pool; DR output is bit-identical at
  // every arg (the determinism tests hold this), only wall time changes.
  setGlobalThreadCount(static_cast<std::size_t>(state.range(0)));
  const CircuitWorkload& work = workload();
  const DiagnosisPipeline pipeline(work.topology,
                                   presets::table2(SchemeKind::TwoStep, false));
  for (auto _ : state) benchmark::DoNotOptimize(pipeline.evaluate(work.responses));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(work.responses.size()));
  setGlobalThreadCount(1);
}
BENCHMARK(BM_FullDrExperimentThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

// ---------------------------------------------------------------------------
// Serial-vs-threaded speedup on the largest synthetic profile (s38584). Runs
// after the microbenchmarks and records throughput + speedup per thread
// count into results/BENCH_perf.json — the artifact the EXPERIMENTS.md
// threading row is checked against.

double bestEvaluateMillis(const DiagnosisPipeline& pipeline,
                          const std::vector<FaultResponse>& responses, int reps) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto start = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(pipeline.evaluate(responses));
    const std::chrono::duration<double, std::milli> elapsed =
        std::chrono::steady_clock::now() - start;
    best = std::min(best, elapsed.count());
  }
  return best;
}

/// Fixed-size per-fault simulation comparison on the table2-class workload:
/// the cone-cached scratch path (simulate) against the full-copy reference
/// (simulateReference). Runs BEFORE the BenchReport registry reset so its
/// counter increments are out of scope for the CI-gated counters section.
struct FaultSimComparison {
  double scratchMicros = 0.0;
  double referenceMicros = 0.0;
  double speedup = 0.0;
  std::size_t faults = 0;
};

FaultSimComparison measureFaultSimSpeedup() {
  const Netlist& nl = circuit();
  const PatternSet pats = generatePatterns(nl, presets::table2Workload().numPatterns);
  const FaultSimulator sim(nl, pats);
  const auto faults = FaultList::enumerateCollapsed(nl).sample(500, 0xFA17);

  const auto sweepMillis = [&](auto&& simulateOne) {
    double best = 1e300;
    for (int rep = 0; rep < 5; ++rep) {
      const auto start = std::chrono::steady_clock::now();
      for (const FaultSite& f : faults) benchmark::DoNotOptimize(simulateOne(f));
      const std::chrono::duration<double, std::milli> elapsed =
          std::chrono::steady_clock::now() - start;
      best = std::min(best, elapsed.count());
    }
    return best;
  };

  FaultSimComparison cmp;
  cmp.faults = faults.size();
  // Warm-up builds every cone once; steady state (a DR experiment revisits
  // each fault's gate many times) is what the hot path is optimized for.
  sweepMillis([&](const FaultSite& f) { return sim.simulate(f); });
  const double scratchMillis = sweepMillis([&](const FaultSite& f) { return sim.simulate(f); });
  const double referenceMillis =
      sweepMillis([&](const FaultSite& f) { return sim.simulateReference(f); });
  cmp.scratchMicros = 1000.0 * scratchMillis / static_cast<double>(faults.size());
  cmp.referenceMicros = 1000.0 * referenceMillis / static_cast<double>(faults.size());
  cmp.speedup = cmp.scratchMicros > 0.0 ? cmp.referenceMicros / cmp.scratchMicros : 0.0;
  std::printf("\nPer-fault simulation, %s (%zu faults, %zu patterns):\n", nl.name().c_str(),
              faults.size(), pats.numPatterns());
  std::printf("  reference (full-copy): %.2f us/fault\n", cmp.referenceMicros);
  std::printf("  scratch (cone-cached): %.2f us/fault  -> %.2fx\n", cmp.scratchMicros,
              cmp.speedup);
  return cmp;
}

void reportParallelSpeedup() {
  // Measured before the report exists: see FaultSimComparison.
  const FaultSimComparison faultSim = measureFaultSimSpeedup();

  // Constructed here — the registry reset puts the adaptive-iteration
  // microbenchmark counters out of scope, leaving only the fixed-size
  // speedup experiment (deterministic, CI-gated).
  benchutil::BenchReport report("perf");
  const Netlist nl = generateNamedCircuit("s38584");
  const CircuitWorkload work = prepareWorkload(nl, presets::table2Workload());
  const DiagnosisPipeline pipeline(work.topology,
                                   presets::table2(SchemeKind::TwoStep, false));
  report.context("circuit", nl.name());
  report.context("scheme", "two_step");
  report.context("faults", work.responses.size());
  report.context("patterns", work.patternsApplied);

  // Before/after rows for the copy-free fault-sim hot path (timing rows are
  // informational; the counter gate lives in the counters section).
  report.row({{"kind", "fault_sim_reference"},
              {"per_fault_micros", faultSim.referenceMicros},
              {"faults", faultSim.faults}});
  report.row({{"kind", "fault_sim_scratch"},
              {"per_fault_micros", faultSim.scratchMicros},
              {"faults", faultSim.faults},
              {"speedup", faultSim.speedup}});

  std::printf("\nDR experiment scaling, s38584 (%zu detected faults, two-step):\n",
              work.responses.size());
  std::printf("%-8s %-12s %-16s %-8s\n", "threads", "best ms", "faults/s", "speedup");

  double serialMillis = 0.0;
  for (const std::size_t threads : {1, 2, 4, 8}) {
    setGlobalThreadCount(threads);
    bestEvaluateMillis(pipeline, work.responses, 1);  // warm-up (pool + caches)
    const double millis = bestEvaluateMillis(pipeline, work.responses, 5);
    if (threads == 1) serialMillis = millis;
    const double faultsPerSec = 1000.0 * static_cast<double>(work.responses.size()) / millis;
    const double speedup = serialMillis / millis;
    std::printf("%-8zu %-12.2f %-16.0f %-8.2f\n", threads, millis, faultsPerSec, speedup);
    report.row({{"threads", threads},
                {"millis", millis},
                {"faults_per_second", faultsPerSec},
                {"speedup", speedup}});
  }
  setGlobalThreadCount(1);
  report.write();
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  reportParallelSpeedup();
  return 0;
}
