// Performance microbenchmarks (google-benchmark): throughput of the hot
// kernels — bit-parallel logic simulation, cone-restricted fault simulation,
// LFSR stepping, partition generation, and whole-fault diagnosis.

#include <benchmark/benchmark.h>

#include "core/scandiag.hpp"

using namespace scandiag;

namespace {

const Netlist& circuit() {
  static const Netlist nl = generateNamedCircuit("s9234");
  return nl;
}

const CircuitWorkload& workload() {
  static const CircuitWorkload work = prepareWorkload(circuit(), presets::table2Workload());
  return work;
}

void BM_LogicSimEvaluate(benchmark::State& state) {
  const Netlist& nl = circuit();
  const LogicSimulator sim(nl);
  const PatternSet pats = generatePatterns(nl, 64);
  std::vector<SimWord> values(nl.gateCount(), 0);
  for (GateId id = 0; id < nl.gateCount(); ++id)
    if (pats.isSource(id)) values[id] = pats.word(id, 0);
  for (auto _ : state) {
    sim.evaluate(values);
    benchmark::DoNotOptimize(values.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(nl.combGateCount()) * 64);
  state.SetLabel("gate-evaluations x 64 patterns");
}
BENCHMARK(BM_LogicSimEvaluate);

void BM_FaultSimulateOne(benchmark::State& state) {
  const Netlist& nl = circuit();
  const PatternSet pats = generatePatterns(nl, 128);
  const FaultSimulator sim(nl, pats);
  const auto faults = FaultList::enumerateCollapsed(nl).sample(64, 1);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.simulate(faults[i++ % faults.size()]));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_FaultSimulateOne);

void BM_ParallelFaultGrading(benchmark::State& state) {
  // 64-fault-per-pass grading vs one-fault-at-a-time (BM_FaultSimulateOne).
  const Netlist& nl = circuit();
  const PatternSet pats = generatePatterns(nl, 128);
  const ParallelFaultSimulator sim(nl, pats);
  const auto faults = FaultList::enumerateCollapsed(nl).sample(256, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.detectFaults(faults));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(faults.size()));
  state.SetLabel("faults graded");
}
BENCHMARK(BM_ParallelFaultGrading);

void BM_LfsrStep(benchmark::State& state) {
  Lfsr lfsr(LfsrConfig{16, 0}, 0xACE1);
  for (auto _ : state) benchmark::DoNotOptimize(lfsr.step());
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_LfsrStep);

void BM_GaloisLfsrStep(benchmark::State& state) {
  GaloisLfsr lfsr(LfsrConfig{16, 0}, 0xACE1);
  for (auto _ : state) benchmark::DoNotOptimize(lfsr.step());
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_GaloisLfsrStep);

void BM_MisrClock(benchmark::State& state) {
  Misr misr(16, primitiveTapMask(16), 8);
  std::uint64_t x = 0;
  for (auto _ : state) {
    misr.clock(++x);
    benchmark::DoNotOptimize(misr.signature());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_MisrClock);

void BM_RandomPartition(benchmark::State& state) {
  const std::size_t chain = static_cast<std::size_t>(state.range(0));
  RandomSelectionPartitioner partitioner(RandomSelectionConfig{}, chain, 16);
  for (auto _ : state) benchmark::DoNotOptimize(partitioner.next());
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(chain));
}
BENCHMARK(BM_RandomPartition)->Arg(211)->Arg(6173);

void BM_IntervalPartition(benchmark::State& state) {
  const std::size_t chain = static_cast<std::size_t>(state.range(0));
  IntervalPartitioner partitioner(IntervalPartitionerConfig{}, chain, 16);
  for (auto _ : state) benchmark::DoNotOptimize(partitioner.next());
}
BENCHMARK(BM_IntervalPartition)->Arg(211)->Arg(6173);

void BM_DiagnoseFault(benchmark::State& state) {
  const CircuitWorkload& work = workload();
  const DiagnosisPipeline pipeline(work.topology,
                                   presets::table2(SchemeKind::TwoStep, false));
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(pipeline.diagnose(work.responses[i++ % work.responses.size()]));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_DiagnoseFault);

void BM_DiagnoseFaultWithPruning(benchmark::State& state) {
  const CircuitWorkload& work = workload();
  const DiagnosisPipeline pipeline(work.topology,
                                   presets::table2(SchemeKind::TwoStep, true));
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(pipeline.diagnose(work.responses[i++ % work.responses.size()]));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_DiagnoseFaultWithPruning);

void BM_FullDrExperiment(benchmark::State& state) {
  const CircuitWorkload& work = workload();
  const DiagnosisPipeline pipeline(work.topology,
                                   presets::table2(SchemeKind::TwoStep, false));
  for (auto _ : state) benchmark::DoNotOptimize(pipeline.evaluate(work.responses));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(work.responses.size()));
}
BENCHMARK(BM_FullDrExperiment);

}  // namespace
