// Baseline comparison — the prior-work schemes the paper positions itself
// against, on one table:
//
//  * random-selection partitioning (Rajski & Tyszer [5]) — the paper's main
//    comparison, fixed schedule;
//  * deterministic fixed-length intervals ([8]) — fixed schedule, equal
//    intervals rotated per partition ("expensive control logic" per the
//    paper, but a useful software reference point);
//  * adaptive binary search ([6]) — exact positional resolution at a
//    data-dependent session cost, requiring tester interaction;
//  * two-step (the paper).
//
// Columns: DR at an 8-partition budget plus the session/clock-cycle cost of
// reaching it, so resolution and diagnosis time are visible together.

#include "bench_util.hpp"
#include "core/scandiag.hpp"

using namespace scandiag;
using namespace scandiag::benchutil;

int main() {
  banner("Baselines: two-step vs [5] random, [8] deterministic, [6] binary search",
         "two-step dominates the fixed-schedule baselines; binary search trades "
         "exactness for adaptivity");

  BenchReport report("baselines");
  for (const char* name : {"s9234", "s38417"}) {
    const Netlist nl = generateNamedCircuit(name);
    const CircuitWorkload work = prepareWorkload(nl, presets::table2Workload());
    const std::size_t chain = work.topology.maxChainLength();
    row("");
    row("%s: %zu cells, %zu detected faults", name, chain, work.responses.size());
    row("%-24s %10s %10s %14s", "scheme", "DR", "sessions", "clock cycles");

    for (SchemeKind scheme :
         {SchemeKind::RandomSelection, SchemeKind::DeterministicInterval,
          SchemeKind::IntervalBased, SchemeKind::TwoStep}) {
      const DiagnosisConfig config = presets::table2(scheme, false);
      const DiagnosisPipeline pipeline(work.topology, config);
      const DrReport rep = pipeline.evaluate(work.responses);
      const DiagnosisCost cost = partitionRunCost(config.numPartitions,
                                                  config.groupsPerPartition,
                                                  config.numPatterns, chain);
      row("%-24s %10.3f %10zu %14llu", schemeName(scheme).c_str(), rep.dr, cost.sessions,
          static_cast<unsigned long long>(cost.clockCycles));
      report.row({{"circuit", name},
                  {"scheme", schemeName(scheme)},
                  {"dr", rep.dr},
                  {"sessions", cost.sessions},
                  {"clock_cycles", cost.clockCycles}});
    }

    // Binary search: DR is positionally exact by construction (0 on a single
    // chain); its cost is the data-dependent session count.
    const BinarySearchDiagnoser binary(work.topology, presets::table2Workload().numPatterns);
    DrAccumulator acc;
    double sessions = 0;
    std::uint64_t cycles = 0;
    for (const FaultResponse& r : work.responses) {
      const BinarySearchResult b = binary.diagnose(r);
      acc.add(b.candidates.cellCount(), r.failingCellCount());
      sessions += static_cast<double>(b.sessions);
      cycles += b.cost.clockCycles;
    }
    row("%-24s %10.3f %10.0f %14llu", "binary-search [6]", acc.dr(),
        sessions / static_cast<double>(work.responses.size()),
        static_cast<unsigned long long>(cycles / work.responses.size()));
    row("(binary-search rows are per-fault means; schedule is adaptive)");
    report.row({{"circuit", name},
                {"scheme", "binary-search"},
                {"dr", acc.dr()},
                {"mean_sessions", sessions / static_cast<double>(work.responses.size())},
                {"mean_clock_cycles", cycles / work.responses.size()}});
  }
  report.write();
  return 0;
}
