// Shared helpers for the reproduction benches: fixed-width table printing,
// the standard experiment banner, and the structured JSON reporter. Every
// bench prints a human-readable table to stdout AND emits the same rows as
// schema-versioned JSON to results/BENCH_<name>.json via BenchReport, so the
// perf/DR trajectory accumulates machine-readably and CI can gate on the
// deterministic counter section (scripts/check_bench_counters.py).
#pragma once

#include <cstdarg>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "common/json.hpp"
#include "common/thread_pool.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"

namespace scandiag::benchutil {

inline void banner(const char* experiment, const char* paperClaim) {
  std::printf("==================================================================\n");
  std::printf("%s\n", experiment);
  std::printf("paper: %s\n", paperClaim);
  std::printf("==================================================================\n");
}

inline void row(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  std::vprintf(fmt, args);
  va_end(args);
  std::printf("\n");
}

/// Ratio formatted as "x.xx" or "inf" guard.
inline std::string improvement(double baseline, double improved) {
  if (improved <= 0) return baseline > 0 ? std::string("inf") : std::string("1.00");
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", baseline / improved);
  return buf;
}

/// Loosely-typed cell value for BenchReport rows/context (JSON scalar).
class Value {
 public:
  Value(bool v) : kind_(Kind::Bool), bool_(v) {}
  Value(int v) : kind_(Kind::Int), int_(v) {}
  Value(long v) : kind_(Kind::Int), int_(v) {}
  Value(long long v) : kind_(Kind::Int), int_(v) {}
  Value(unsigned v) : kind_(Kind::Uint), uint_(v) {}
  Value(unsigned long v) : kind_(Kind::Uint), uint_(v) {}
  Value(unsigned long long v) : kind_(Kind::Uint), uint_(v) {}
  Value(double v) : kind_(Kind::Double), double_(v) {}
  Value(const char* v) : kind_(Kind::String), string_(v) {}
  Value(std::string v) : kind_(Kind::String), string_(std::move(v)) {}

  void writeTo(JsonWriter& writer) const {
    switch (kind_) {
      case Kind::Bool: writer.value(bool_); break;
      case Kind::Int: writer.value(int_); break;
      case Kind::Uint: writer.value(uint_); break;
      case Kind::Double: writer.value(double_); break;
      case Kind::String: writer.value(string_); break;
    }
  }

 private:
  enum class Kind { Bool, Int, Uint, Double, String };
  Kind kind_;
  bool bool_ = false;
  std::int64_t int_ = 0;
  std::uint64_t uint_ = 0;
  double double_ = 0.0;
  std::string string_;
};

using Fields = std::vector<std::pair<std::string, Value>>;

/// Structured JSON output for one bench run. Construction resets the global
/// metrics registry, so the emitted "counters" section is the *delta* covered
/// by this report — benches with a nondeterministic warm-up (google-benchmark
/// adaptive iterations) construct the report after it, keeping the counters
/// section bit-identical run to run and thread count to thread count (the CI
/// golden contract). Timings land in "timing"/"phases"/"workers", which CI
/// ignores.
///
///   benchutil::BenchReport report("table1");
///   report.context("circuit", "s5378");
///   ... run experiment, print human table ...
///   report.row({{"scheme", "interval"}, {"dr", 0.98}});
///   report.timing("wall_millis", elapsed);
///   report.write();   // -> results/BENCH_table1.json
class BenchReport {
 public:
  explicit BenchReport(std::string name) : name_(std::move(name)) {
    obs::MetricsRegistry::instance().reset();
  }

  /// Run-level metadata (circuit, scheme, pattern counts, ...).
  void context(const std::string& key, Value value) {
    context_.emplace_back(key, std::move(value));
  }

  /// One result row, mirroring one printed table row.
  void row(Fields fields) { rows_.push_back(std::move(fields)); }

  /// Wall-clock (non-deterministic) measurement, e.g. speedup numbers.
  void timing(const std::string& key, Value value) {
    timing_.emplace_back(key, std::move(value));
  }

  std::string path() const { return "results/BENCH_" + name_ + ".json"; }

  /// Writes results/BENCH_<name>.json (creating results/ if needed) and
  /// prints the path so reproduce.sh logs show where artifacts went.
  void write() const {
    std::filesystem::create_directories("results");
    const std::string file = path();
    std::ofstream out(file);
    if (!out) throw std::runtime_error("cannot open bench report file: " + file);
    JsonWriter writer(out);
    writer.beginObject();
    writer.field("schema_version", obs::kMetricsSchemaVersion);
    writer.field("bench", name_);
    writer.key("context");
    writer.beginObject();
    for (const auto& [key, value] : context_) {
      writer.key(key);
      value.writeTo(writer);
    }
    writer.endObject();
    writer.key("rows");
    writer.beginArray();
    for (const Fields& fields : rows_) {
      writer.beginObject();
      for (const auto& [key, value] : fields) {
        writer.key(key);
        value.writeTo(writer);
      }
      writer.endObject();
    }
    writer.endArray();
    const obs::MetricsSnapshot snap = obs::MetricsRegistry::instance().snapshot();
    writer.key("counters");
    obs::writeCountersObject(writer, snap);
    writer.key("timing");
    writer.beginObject();
    for (const auto& [key, value] : timing_) {
      writer.key(key);
      value.writeTo(writer);
    }
    writer.field("threads", static_cast<std::uint64_t>(globalPool().threadCount()));
    writer.key("phases");
    obs::writePhasesObject(writer, snap);
    writer.key("workers");
    obs::writeWorkersArray(writer, snap);
    writer.endObject();
    writer.endObject();
    out << '\n';
    std::printf("wrote %s\n", file.c_str());
  }

 private:
  std::string name_;
  Fields context_;
  std::vector<Fields> rows_;
  Fields timing_;
};

}  // namespace scandiag::benchutil
