// Shared helpers for the reproduction benches: fixed-width table printing,
// the standard experiment banner, and the structured JSON reporter. Every
// bench prints a human-readable table to stdout AND emits the same rows as
// schema-versioned JSON to results/BENCH_<name>.json via BenchReport, so the
// perf/DR trajectory accumulates machine-readably and CI can gate on the
// deterministic counter section (scripts/check_bench_counters.py).
#pragma once

#include <cstdarg>
#include <cstdint>
#include <cstdio>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include <chrono>
#include <cstdlib>
#include <memory>

#include "common/journal.hpp"
#include "common/json.hpp"
#include "common/thread_pool.hpp"
#include "common/watchdog.hpp"
#include "diagnosis/checkpoint.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"

namespace scandiag::benchutil {

inline void banner(const char* experiment, const char* paperClaim) {
  std::printf("==================================================================\n");
  std::printf("%s\n", experiment);
  std::printf("paper: %s\n", paperClaim);
  std::printf("==================================================================\n");
}

inline void row(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  std::vprintf(fmt, args);
  va_end(args);
  std::printf("\n");
}

/// Ratio formatted as "x.xx" or "inf" guard.
inline std::string improvement(double baseline, double improved) {
  if (improved <= 0) return baseline > 0 ? std::string("inf") : std::string("1.00");
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", baseline / improved);
  return buf;
}

/// Loosely-typed cell value for BenchReport rows/context (JSON scalar).
class Value {
 public:
  Value(bool v) : kind_(Kind::Bool), bool_(v) {}
  Value(int v) : kind_(Kind::Int), int_(v) {}
  Value(long v) : kind_(Kind::Int), int_(v) {}
  Value(long long v) : kind_(Kind::Int), int_(v) {}
  Value(unsigned v) : kind_(Kind::Uint), uint_(v) {}
  Value(unsigned long v) : kind_(Kind::Uint), uint_(v) {}
  Value(unsigned long long v) : kind_(Kind::Uint), uint_(v) {}
  Value(double v) : kind_(Kind::Double), double_(v) {}
  Value(const char* v) : kind_(Kind::String), string_(v) {}
  Value(std::string v) : kind_(Kind::String), string_(std::move(v)) {}

  void writeTo(JsonWriter& writer) const {
    switch (kind_) {
      case Kind::Bool: writer.value(bool_); break;
      case Kind::Int: writer.value(int_); break;
      case Kind::Uint: writer.value(uint_); break;
      case Kind::Double: writer.value(double_); break;
      case Kind::String: writer.value(string_); break;
    }
  }

 private:
  enum class Kind { Bool, Int, Uint, Double, String };
  Kind kind_;
  bool bool_ = false;
  std::int64_t int_ = 0;
  std::uint64_t uint_ = 0;
  double double_ = 0.0;
  std::string string_;
};

using Fields = std::vector<std::pair<std::string, Value>>;

/// Structured JSON output for one bench run. Construction resets the global
/// metrics registry, so the emitted "counters" section is the *delta* covered
/// by this report — benches with a nondeterministic warm-up (google-benchmark
/// adaptive iterations) construct the report after it, keeping the counters
/// section bit-identical run to run and thread count to thread count (the CI
/// golden contract). Timings land in "timing"/"phases"/"workers", which CI
/// ignores.
///
///   benchutil::BenchReport report("table1");
///   report.context("circuit", "s5378");
///   ... run experiment, print human table ...
///   report.row({{"scheme", "interval"}, {"dr", 0.98}});
///   report.timing("wall_millis", elapsed);
///   report.write();   // -> results/BENCH_table1.json
class BenchReport {
 public:
  explicit BenchReport(std::string name) : name_(std::move(name)) {
    obs::MetricsRegistry::instance().reset();
  }

  /// Run-level metadata (circuit, scheme, pattern counts, ...).
  void context(const std::string& key, Value value) {
    context_.emplace_back(key, std::move(value));
  }

  /// One result row, mirroring one printed table row.
  void row(Fields fields) { rows_.push_back(std::move(fields)); }

  /// Wall-clock (non-deterministic) measurement, e.g. speedup numbers.
  void timing(const std::string& key, Value value) {
    timing_.emplace_back(key, std::move(value));
  }

  std::string path() const { return "results/BENCH_" + name_ + ".json"; }

  /// Writes results/BENCH_<name>.json (creating results/ if needed) and
  /// prints the path so reproduce.sh logs show where artifacts went. The
  /// write is atomic (temp + rename): an interrupted bench never leaves a
  /// torn report for CI to choke on.
  void write() const {
    const std::string file = path();
    std::ostringstream out;
    JsonWriter writer(out);
    writer.beginObject();
    writer.field("schema_version", obs::kMetricsSchemaVersion);
    writer.field("bench", name_);
    writer.key("context");
    writer.beginObject();
    for (const auto& [key, value] : context_) {
      writer.key(key);
      value.writeTo(writer);
    }
    writer.endObject();
    writer.key("rows");
    writer.beginArray();
    for (const Fields& fields : rows_) {
      writer.beginObject();
      for (const auto& [key, value] : fields) {
        writer.key(key);
        value.writeTo(writer);
      }
      writer.endObject();
    }
    writer.endArray();
    const obs::MetricsSnapshot snap = obs::MetricsRegistry::instance().snapshot();
    writer.key("counters");
    obs::writeCountersObject(writer, snap);
    writer.key("timing");
    writer.beginObject();
    for (const auto& [key, value] : timing_) {
      writer.key(key);
      value.writeTo(writer);
    }
    writer.field("threads", static_cast<std::uint64_t>(globalPool().threadCount()));
    writer.key("phases");
    obs::writePhasesObject(writer, snap);
    writer.key("workers");
    obs::writeWorkersArray(writer, snap);
    writer.endObject();
    writer.endObject();
    out << '\n';
    atomicWriteFile(file, out.str());
    std::printf("wrote %s\n", file.c_str());
  }

 private:
  std::string name_;
  Fields context_;
  std::vector<Fields> rows_;
  Fields timing_;
};

/// Exit code for "interrupted by a signal or the watchdog; the checkpoint
/// journal and any flushed artifacts are valid". Shared with scandiag_cli.
inline constexpr int kExitInterrupted = 6;

/// Crash-safety harness for the long-running benches: parses
/// `--checkpoint <file>`, `--resume`, and `--deadline-ms <n>`, installs the
/// SIGINT/SIGTERM cancellation handlers, and hands the bench a RunControl to
/// thread through its sweeps. With none of the flags given everything stays
/// inert and the bench's counters/output are bit-identical to a harness-free
/// run (signal handlers aside). Unknown arguments are ignored so
/// google-benchmark flags pass through untouched.
///
///   int main(int argc, char** argv) {
///     BenchRun run(argc, argv);
///     BenchReport report("table1");
///     ...
///     SweepCheckpoint* ckpt = run.openCheckpoint(setupDigest, "table1 s953");
///     try {
///       ... evaluateWithCheckpoint(pipeline, responses, ckpt, sweepId,
///                                  run.control()) ...
///     } catch (const OperationCancelled& err) {
///       return run.interrupted(report, err);
///     }
///     report.write();
///     return 0;
///   }
class BenchRun {
 public:
  BenchRun(int argc, char* const* argv) {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--checkpoint" && i + 1 < argc) {
        checkpointPath_ = argv[++i];
      } else if (arg == "--resume") {
        resume_ = true;
      } else if (arg == "--deadline-ms" && i + 1 < argc) {
        deadlineMs_ = std::strtoll(argv[++i], nullptr, 10);
      }
    }
    if (resume_ && checkpointPath_.empty()) {
      throw std::invalid_argument("--resume requires --checkpoint <file>");
    }
    installCancellationSignalHandlers();
    if (deadlineMs_ > 0) {
      watchdog_ = std::make_unique<Watchdog>(globalCancelToken(),
                                             std::chrono::milliseconds(deadlineMs_));
    }
  }

  bool checkpointEnabled() const { return !checkpointPath_.empty(); }
  bool resuming() const { return resume_; }

  /// Opens (or creates) the sweep checkpoint; null when --checkpoint was not
  /// given. `setupDigest` must cover everything a resumed run needs to match
  /// (circuit, workload seeds/sizes — not the thread count).
  SweepCheckpoint* openCheckpoint(std::uint64_t setupDigest, const std::string& setupInfo) {
    if (checkpointPath_.empty()) return nullptr;
    checkpoint_ = std::make_unique<SweepCheckpoint>(checkpointPath_, setupDigest,
                                                    setupInfo, resume_);
    if (resume_) {
      std::fprintf(stderr, "resuming from %s: %zu journaled fault records%s\n",
                   checkpointPath_.c_str(), checkpoint_->loadedRecords(),
                   checkpoint_->hadTruncatedTail() ? " (torn tail truncated)" : "");
    }
    return checkpoint_.get();
  }

  /// The cancellation context to pass into every evaluate call.
  RunControl control() { return RunControl{&globalCancelToken(), watchdog_.get()}; }

  /// Standard interrupted exit: flushes the partial report (atomic write, CI
  /// ignores its timing-section marker), explains, and returns the exit code
  /// for main() to return. The checkpoint journal is already durable — every
  /// append was fsync'd before the corresponding fault was published.
  int interrupted(BenchReport& report, const OperationCancelled& err) {
    report.timing("interrupted", true);
    report.write();
    std::fprintf(stderr, "interrupted: %s\n", err.what());
    if (!checkpointPath_.empty()) {
      std::fprintf(stderr, "checkpoint journal flushed: %s (rerun with --resume)\n",
                   checkpointPath_.c_str());
    }
    return kExitInterrupted;
  }

 private:
  std::string checkpointPath_;
  bool resume_ = false;
  long long deadlineMs_ = 0;
  std::unique_ptr<Watchdog> watchdog_;
  std::unique_ptr<SweepCheckpoint> checkpoint_;
};

}  // namespace scandiag::benchutil
