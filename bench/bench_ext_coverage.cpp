// Extension — pseudorandom fault-coverage curves.
//
// Context for the paper's session lengths: coverage of random-pattern-
// testable logic saturates within the first few dozen patterns, so the 128-
// and 200-pattern sessions of Tables 1-4 are not about *detection* — they
// exist to give every fault many error bits, which is what partition-based
// diagnosis consumes. The curve also separates the pattern sources: PODEM
// compact sets front-load their coverage completely.

#include "bench_util.hpp"
#include "core/scandiag.hpp"

using namespace scandiag;
using namespace scandiag::benchutil;

int main() {
  banner("Extension: scan fault-coverage vs patterns applied",
         "coverage saturates early; long sessions buy diagnosis data, not detection");

  BenchReport report("ext_coverage");
  const std::vector<std::size_t> checkpoints = {1, 2, 4, 8, 16, 32, 64, 128, 256};
  std::string header = "circuit      faults ";
  for (std::size_t cp : checkpoints) header += "  @" + std::to_string(cp);
  row("%s", header.c_str());

  for (const char* name : {"s953", "s9234", "s38417"}) {
    const Netlist nl = generateNamedCircuit(name);
    const PatternSet pats = generatePatterns(nl, 256);
    const FaultSimulator sim(nl, pats);
    const auto faults = FaultList::enumerateCollapsed(nl).sample(500, 0xC0FE);
    const auto curve = coverageCurve(sim, faults, checkpoints);
    std::string line = name;
    line.resize(13, ' ');
    line += std::to_string(faults.size()) + "    ";
    for (std::size_t c : curve) {
      char buf[16];
      std::snprintf(buf, sizeof(buf), "%4zu", c);
      line += buf;
    }
    row("%s", line.c_str());
    Fields fields{{"circuit", name}, {"faults", faults.size()}};
    for (std::size_t i = 0; i < checkpoints.size(); ++i) {
      fields.emplace_back("detected_at_" + std::to_string(checkpoints[i]), curve[i]);
    }
    report.row(std::move(fields));
  }
  row("");
  row("(entries: faults first detected before the checkpoint, of the 500 sampled)");
  report.write();
  return 0;
}
