// Table 2 — Diagnostic resolution of the six largest ISCAS-89 benchmarks
// under random-selection vs two-step partitioning, with and without the
// superposition pruning post-pass.
//
// Paper setup: 500 single stuck-at faults per circuit, 128 pseudorandom
// patterns per session (simulation-time bound), degree-16 primitive-
// polynomial selection LFSR, equal partition budget for both methods.
// Expected shape: two-step < random-selection on every circuit (up to ~80%
// lower on the larger ones); pruning tightens both.

#include "bench_util.hpp"
#include "core/scandiag.hpp"

using namespace scandiag;
using namespace scandiag::benchutil;

int main() {
  banner("Table 2: DR on the six largest ISCAS-89 (8 partitions x 16 groups, 128 patterns)",
         "two-step < random everywhere; pruning tightens both; large circuits up to 80% lower");

  BenchReport report("table2");
  row("%-9s %6s %7s | %9s %9s %6s | %9s %9s %6s", "circuit", "cells", "faults",
      "rand", "two-step", "gain", "rand+pr", "two+pr", "gain");

  for (const std::string& name : sixLargestIscas89()) {
    const Netlist nl = generateNamedCircuit(name);
    const CircuitWorkload work = prepareWorkload(nl, presets::table2Workload());

    double dr[4];
    int i = 0;
    for (bool pruning : {false, true}) {
      for (SchemeKind scheme : {SchemeKind::RandomSelection, SchemeKind::TwoStep}) {
        const DiagnosisPipeline pipeline(work.topology, presets::table2(scheme, pruning));
        dr[i++] = pipeline.evaluate(work.responses).dr;
      }
    }
    row("%-9s %6zu %7zu | %9.3f %9.3f %5sx | %9.3f %9.3f %5sx", name.c_str(),
        work.topology.numCells(), work.responses.size(), dr[0], dr[1],
        improvement(dr[0], dr[1]).c_str(), dr[2], dr[3], improvement(dr[2], dr[3]).c_str());
    report.row({{"circuit", name},
                {"cells", work.topology.numCells()},
                {"faults", work.responses.size()},
                {"dr_random", dr[0]},
                {"dr_two_step", dr[1]},
                {"dr_random_pruned", dr[2]},
                {"dr_two_step_pruned", dr[3]}});
  }
  report.write();
  return 0;
}
