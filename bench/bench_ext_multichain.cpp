// Paper §4 — extending the method to multiple scan chains on one circuit.
//
// The selector hardware has one compare logic driven by the shift clock, so
// selection is by shift position and a group at position p covers the cells
// of ALL chains at p. More chains shorten the selection axis (fewer positions
// to partition) while each position carries more cells — diagnosis resolution
// degrades gracefully as W grows, and two-step's advantage persists because
// block-stitched chains preserve structural locality per chain.

#include "bench_util.hpp"
#include "core/scandiag.hpp"

using namespace scandiag;
using namespace scandiag::benchutil;

int main() {
  banner("Paper §4: multiple scan chains per circuit (s38417, 8 partitions x 16 groups)",
         "position-shared selection: DR grows with W; two-step keeps its edge");

  BenchReport report("ext_multichain");
  const Netlist nl = generateNamedCircuit("s38417");
  report.context("circuit", "s38417");
  row("%-8s %10s %16s %16s %8s", "chains", "axis len", "DR(random-sel)", "DR(two-step)",
      "gain");
  for (std::size_t chains : {1u, 2u, 4u, 8u, 16u}) {
    const CircuitWorkload work = prepareWorkload(nl, presets::table2Workload(), chains);
    double dr[2];
    int i = 0;
    for (SchemeKind scheme : {SchemeKind::RandomSelection, SchemeKind::TwoStep}) {
      const DiagnosisPipeline pipeline(work.topology, presets::table2(scheme, false));
      dr[i++] = pipeline.evaluate(work.responses).dr;
    }
    row("%-8zu %10zu %16.3f %16.3f %7sx", chains, work.topology.maxChainLength(), dr[0],
        dr[1], improvement(dr[0], dr[1]).c_str());
    report.row({{"chains", static_cast<std::size_t>(chains)},
                {"axis_length", work.topology.maxChainLength()},
                {"dr_random", dr[0]},
                {"dr_two_step", dr[1]}});
  }
  report.write();
  return 0;
}
