// Ablation — groups per partition vs resolution vs diagnosis time.
//
// More groups per partition buy resolution but cost sessions: a full run is
// (partitions x groups) BIST sessions, each re-applying the whole pattern
// set. The paper picks 4/16/32/8 groups for its four experiments by chain
// length; this sweep shows the trade-off curve that motivates those choices.

#include "bench_util.hpp"
#include "core/scandiag.hpp"

using namespace scandiag;
using namespace scandiag::benchutil;

int main() {
  banner("Ablation: groups per partition (s9234, 8 partitions, 128 patterns)",
         "groups buy DR at linear session cost; paper sizes groups to chain length");

  BenchReport report("ablation_groups");
  const Netlist nl = generateNamedCircuit("s9234");
  const CircuitWorkload work = prepareWorkload(nl, presets::table2Workload());
  report.context("circuit", "s9234");
  report.context("partitions", 8);
  report.context("faults", work.responses.size());
  row("chain length %zu, %zu detected faults", work.topology.maxChainLength(),
      work.responses.size());
  row("");
  row("%-8s %10s %16s %16s", "groups", "sessions", "DR(random-sel)", "DR(two-step)");

  for (std::size_t groups : {2, 4, 8, 16, 32, 64}) {
    double dr[2];
    int i = 0;
    for (SchemeKind scheme : {SchemeKind::RandomSelection, SchemeKind::TwoStep}) {
      DiagnosisConfig config = presets::table2(scheme, false);
      config.groupsPerPartition = groups;
      const DiagnosisPipeline pipeline(work.topology, config);
      dr[i++] = pipeline.evaluate(work.responses).dr;
    }
    row("%-8zu %10zu %16.3f %16.3f", groups, 8 * groups, dr[0], dr[1]);
    report.row({{"groups", groups},
                {"sessions", 8 * groups},
                {"dr_random", dr[0]},
                {"dr_two_step", dr[1]}});
  }
  report.write();
  return 0;
}
