// Table 4 — SOC diagnostic resolution, multiple meta scan chains.
//
// Paper setup: a variant of the ITC'02 d695 SOC restricted to its eight
// full-scan ISCAS-89 modules, daisy-chained on an 8-bit TAM; the cores' scan
// cells are reorganized into 8 balanced meta scan chains (paper Fig. 4). One
// faulty core at a time, 500 stuck-at faults, 8 partitions x 8 groups.
// Expected shape: two-step significantly better than random selection on
// every failing module, also after pruning.

#include "bench_util.hpp"
#include "core/scandiag.hpp"

using namespace scandiag;
using namespace scandiag::benchutil;

int main() {
  banner("Table 4: d695 variant (8 meta chains, 8-bit TAM), DR per failing core",
         "two-step significantly better than random selection for every failing module");

  BenchReport report("table4");
  const Soc soc = buildD695();
  report.context("soc", "d695");
  report.context("cores", soc.coreCount());
  report.context("cells", soc.totalCells());
  report.context("meta_chains", soc.topology().numChains());
  row("d695: %zu cores, %zu cells, %zu meta chains (max length %zu)", soc.coreCount(),
      soc.totalCells(), soc.topology().numChains(), soc.topology().maxChainLength());
  row("");

  const WorkloadConfig workload = presets::socWorkload();
  row("%-9s | %9s %9s %6s | %9s %9s %6s", "failing", "rand", "two-step", "gain",
      "rand+pr", "two+pr", "gain");

  for (std::size_t k = 0; k < soc.coreCount(); ++k) {
    const auto responses = socResponsesForFailingCore(soc, k, workload);
    double dr[4];
    int i = 0;
    for (bool pruning : {false, true}) {
      for (SchemeKind scheme : {SchemeKind::RandomSelection, SchemeKind::TwoStep}) {
        const DiagnosisPipeline pipeline(soc.topology(), presets::d695Config(scheme, pruning));
        dr[i++] = pipeline.evaluate(responses).dr;
      }
    }
    row("%-9s | %9.2f %9.2f %5sx | %9.2f %9.2f %5sx", soc.core(k).name.c_str(), dr[0], dr[1],
        improvement(dr[0], dr[1]).c_str(), dr[2], dr[3], improvement(dr[2], dr[3]).c_str());
    report.row({{"failing_core", soc.core(k).name},
                {"dr_random", dr[0]},
                {"dr_two_step", dr[1]},
                {"dr_random_pruned", dr[2]},
                {"dr_two_step_pruned", dr[3]}});
  }
  report.write();
  return 0;
}
