#!/usr/bin/env bash
# Full reproduction run: build, test, regenerate every table/figure/ablation.
# Outputs land in results/ (and test_output.txt / bench_output.txt at the
# repository root, the canonical artifacts EXPERIMENTS.md is checked against).
#
# THREADS=N sets the worker-thread count for the parallel per-fault loops
# (exported as SCANDIAG_THREADS; default: all hardware threads). Results are
# bit-identical for every value — the final step proves it by diffing a
# 1-thread against an N-thread bench_table1 run.
#
# NOISE=1 runs the dense noise-resilience sweep (exported as
# SCANDIAG_NOISE_FULL; bench_noise then uses 500 faults and 7 noise rates
# instead of the 200-fault / 5-rate smoke sweep).
set -euo pipefail
cd "$(dirname "$0")/.."

if [ -n "${THREADS:-}" ]; then
  export SCANDIAG_THREADS="${THREADS}"
fi

if [ "${NOISE:-0}" = "1" ]; then
  export SCANDIAG_NOISE_FULL=1
fi

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build -j"$(nproc)" 2>&1 | tee test_output.txt

mkdir -p results
: > bench_output.txt
for b in build/bench/*; do
  if [ -f "$b" ] && [ -x "$b" ]; then
    name="$(basename "$b")"
    echo "### ${name}" | tee -a bench_output.txt
    "$b" | tee "results/${name}.txt" | tee -a bench_output.txt
    echo | tee -a bench_output.txt
  fi
done

echo "### thread-count determinism check (bench_table1, 1 vs ${SCANDIAG_THREADS:-auto} threads)"
SCANDIAG_THREADS=1 build/bench/bench_table1 > results/bench_table1.1thread.txt
diff results/bench_table1.1thread.txt results/bench_table1.txt
echo "ok: tables identical at every thread count"

echo "done: test_output.txt, bench_output.txt, results/*.txt"
