#!/usr/bin/env bash
# Full reproduction run: build, test, regenerate every table/figure/ablation.
#
# Each bench prints its human-readable table to stdout (aggregated into
# bench_output.txt) and writes a structured, schema-versioned JSON report to
# results/BENCH_<name>.json: context + rows + deterministic pipeline counters
# + wall-clock phase/worker timings (see src/obs/export.hpp for the schema
# and docs/EXPERIMENTS.md for how to read them). The "counters" sections are
# bit-identical across thread counts and runs; the final steps prove that by
# re-running bench_table1 single-threaded and diffing counters, then gating
# the table1/perf/noise reports against the checked-in goldens in
# results/golden/ via scripts/check_bench_counters.py.
#
# THREADS=N sets the worker-thread count for the parallel per-fault loops
# (exported as SCANDIAG_THREADS; default: all hardware threads). Results are
# bit-identical for every value.
#
# NOISE=1 runs the dense noise-resilience sweep (exported as
# SCANDIAG_NOISE_FULL; bench_noise then uses 500 faults and 7 noise rates
# instead of the 200-fault / 5-rate smoke sweep). Note: the dense sweep does
# different work, so its counters intentionally differ from the goldens and
# the noise gate is skipped.
#
# RESUME=1 runs the checkpointed benches (table1, table3) through the
# crash-safe journal path: each sweep journals every completed fault to
# results/checkpoints/ and, when a journal from an interrupted previous run
# exists, resumes from it instead of starting over. Results are bit-identical
# either way; an aborted reproduce run just restarts faster.
set -euo pipefail
cd "$(dirname "$0")/.."

# Partially-written artifacts from an interrupted or failed run are worse
# than none (a later run could gate against a stale/truncated JSON), so
# clear the per-run outputs on any non-success exit. Checkpoint journals
# under results/checkpoints/ are deliberately kept — they are the resume
# state, valid by construction at every instant (fsync'd frame appends).
cleanup_partial() {
  rm -f bench_output.txt test_output.txt
  echo "reproduce.sh: interrupted — partial bench_output/test_output removed;" \
       "checkpoint journals kept (re-run with RESUME=1 to continue)" >&2
}
trap 'cleanup_partial' ERR
trap 'cleanup_partial; exit 130' INT TERM

if [ -n "${THREADS:-}" ]; then
  export SCANDIAG_THREADS="${THREADS}"
fi

if [ "${NOISE:-0}" = "1" ]; then
  export SCANDIAG_NOISE_FULL=1
fi

# Extra flags for the benches that support checkpoint/resume.
ckpt_args() {  # $1 = bench name
  if [ "${RESUME:-0}" = "1" ]; then
    mkdir -p results/checkpoints
    local journal="results/checkpoints/$1.journal"
    if [ -f "${journal}" ]; then
      echo "--checkpoint ${journal} --resume"
    else
      echo "--checkpoint ${journal}"
    fi
  fi
}

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build -j"$(nproc)" 2>&1 | tee test_output.txt

mkdir -p results
# Benches used to write per-bench results/<name>.txt goldens; those are
# superseded by the JSON reports — clear any stale ones out.
rm -f results/bench_*.txt results/BENCH_noise_resilience.json \
      results/BENCH_perf_parallel.json

: > bench_output.txt
for b in build/bench/*; do
  if [ -f "$b" ] && [ -x "$b" ]; then
    name="$(basename "$b")"
    echo "### ${name}" | tee -a bench_output.txt
    case "${name}" in
      bench_table1|bench_table3)
        # shellcheck disable=SC2046  # word splitting of the flags is intended
        "$b" $(ckpt_args "${name}") | tee -a bench_output.txt ;;
      *)
        "$b" | tee -a bench_output.txt ;;
    esac
    echo | tee -a bench_output.txt
  fi
done

# A sweep that ran to completion leaves a fully-replayable journal; drop it
# so the next RESUME=1 run starts a fresh one instead of replaying 100%.
if [ "${RESUME:-0}" = "1" ]; then
  rm -f results/checkpoints/bench_table1.journal results/checkpoints/bench_table3.journal
fi

echo "### thread-count determinism check (bench_table1 counters, 1 vs ${SCANDIAG_THREADS:-auto} threads)"
tmpdir="$(mktemp -d)"
trap 'rm -rf "${tmpdir}"' EXIT
(cd "${tmpdir}" && SCANDIAG_THREADS=1 "${OLDPWD}/build/bench/bench_table1" > /dev/null)
python3 scripts/check_bench_counters.py \
  --diff results/BENCH_table1.json "${tmpdir}/results/BENCH_table1.json"

echo "### counter regression gate (results/golden/)"
if [ "${NOISE:-0}" = "1" ]; then
  python3 scripts/check_bench_counters.py table1 perf
else
  python3 scripts/check_bench_counters.py
fi

echo "done: test_output.txt, bench_output.txt, results/BENCH_*.json"
