#!/usr/bin/env bash
# Full reproduction run: build, test, regenerate every table/figure/ablation.
# Outputs land in results/ (and test_output.txt / bench_output.txt at the
# repository root, the canonical artifacts EXPERIMENTS.md is checked against).
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build -j"$(nproc)" 2>&1 | tee test_output.txt

mkdir -p results
: > bench_output.txt
for b in build/bench/*; do
  if [ -f "$b" ] && [ -x "$b" ]; then
    name="$(basename "$b")"
    echo "### ${name}" | tee -a bench_output.txt
    "$b" | tee "results/${name}.txt" | tee -a bench_output.txt
    echo | tee -a bench_output.txt
  fi
done

echo "done: test_output.txt, bench_output.txt, results/*.txt"
