#!/usr/bin/env python3
"""Counter-exact bench regression gate.

Bench executables emit results/BENCH_<name>.json with a "counters" section
(see src/obs/export.hpp) whose values tally pipeline work items and are
bit-identical across thread counts and runs. This script diffs that section —
and nothing else; timings ("phases", "workers", "timing") are wall-clock and
explicitly excluded — against checked-in goldens in results/golden/.

Usage:
  check_bench_counters.py [options] [NAME ...]
      Compare results/BENCH_<NAME>.json against results/golden/BENCH_<NAME>.json.
      Default NAMEs: every golden present in the golden directory.
  check_bench_counters.py --update [NAME ...]
      Regenerate goldens from the current results (minimal documents:
      schema_version + bench + counters).
  check_bench_counters.py --diff A.json B.json
      Compare the counters sections of two arbitrary report files.
  check_bench_counters.py --require-nonzero COUNTER [NAME ...]
      Additionally fail if COUNTER is missing or zero in any compared result
      (e.g. cone_cache_hits: a zero means the fault-simulator cone cache never
      served a hit, i.e. the hot path silently fell off). Repeatable.
  check_bench_counters.py --ignore COUNTER ...
      Exclude COUNTER from the comparison (repeatable). Used by the CI
      kill-and-resume job: journal_records_written/journal_records_replayed
      legitimately differ between an uninterrupted run and a killed+resumed
      one (their *sum* is invariant, which the job asserts separately).
  check_bench_counters.py --min-ratio FIELD:MIN [NAME ...]
      Additionally fail if the CURRENT result's "timing" section has FIELD
      below MIN (repeatable). Timing fields are wall-clock and machine-
      dependent, so they are never golden-compared — this gate reads the
      fresh report only. Used by CI as --min-ratio threads_speedup_8:2.0 on
      the perf bench.

      Escape hatch (documented, deliberate): thread-scaling ratios are
      meaningless on small or noisy runners. The gate SKIPS a --min-ratio
      check, with a loud warning, when the environment sets
      SCANDIAG_SKIP_SCALING_GATE=1 (for runners that have the cores but not
      the isolation), or — for "threads_*" fields ONLY — when the report's
      timing section says hardware_concurrency < 8 (the bench records it).
      Ratios that do not depend on core count (dedup_speedup_growth,
      stream_rss_flat) are gated everywhere: a 1-core box can still prove
      dedup speeds sweeps up and streaming holds memory flat. Counter
      comparison always runs — only wall-clock ratio gates are waived.

Exit status: 0 = counters identical, 1 = drift or missing file, 2 = usage.
"""

import argparse
import json
import os
import sys
import tempfile
from pathlib import Path

GOLDEN_KEYS = ("schema_version", "bench", "counters")


class LoadError(Exception):
    """An unusable result/golden file. Raised (not SystemExit) so the per-name
    comparison loop can report it and keep going — one missing bench result
    must not hide every other bench's drift."""


def load(path: Path) -> dict:
    try:
        with open(path) as f:
            return json.load(f)
    except FileNotFoundError:
        raise LoadError(f"{path} not found (run the bench first?)")
    except json.JSONDecodeError as e:
        raise LoadError(f"{path} is not valid JSON: {e}")


def counters_of(doc: dict, path: Path) -> dict:
    counters = doc.get("counters")
    if not isinstance(counters, dict):
        raise LoadError(f"{path} has no counters object")
    return counters


def diff_counters(name: str, expected: dict, actual: dict,
                  ignore: frozenset = frozenset()) -> bool:
    """Prints per-counter drift; returns True when the sections are identical."""
    ok = True
    for key in sorted(set(expected) | set(actual)):
        if key in ignore:
            continue
        want, got = expected.get(key), actual.get(key)
        if want == got:
            continue
        ok = False
        if want is None:
            print(f"  {name}: new counter {key} = {got} (not in golden)")
        elif got is None:
            print(f"  {name}: counter {key} missing (golden has {want})")
        elif isinstance(want, int) and isinstance(got, int):
            print(f"  {name}: {key} drifted: golden {want} -> actual {got} "
                  f"({got - want:+d})")
        else:
            print(f"  {name}: {key} drifted: golden {want!r} -> actual {got!r}")
    return ok


def compare(name: str, result_path: Path, golden_path: Path,
            ignore: frozenset = frozenset()) -> bool:
    result, golden = load(result_path), load(golden_path)
    ok = True
    if result.get("schema_version") != golden.get("schema_version"):
        print(f"  {name}: schema_version {golden.get('schema_version')} -> "
              f"{result.get('schema_version')}")
        ok = False
    ok &= diff_counters(name, counters_of(golden, golden_path),
                        counters_of(result, result_path), ignore)
    return ok


def write_atomic(path: Path, doc: dict) -> None:
    """Serialize then temp+rename so a crash never leaves a torn golden."""
    fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=path.name, suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as f:
            json.dump(doc, f, indent=2)
            f.write("\n")
            f.flush()
            os.fsync(f.fileno())
        os.replace(tmp, path)
    except BaseException:
        os.unlink(tmp)
        raise


def parse_min_ratio(spec: str) -> tuple:
    field, sep, minimum = spec.partition(":")
    if not sep or not field:
        raise SystemExit(f"error: --min-ratio wants FIELD:MIN, got {spec!r}")
    try:
        return field, float(minimum)
    except ValueError:
        raise SystemExit(f"error: --min-ratio minimum {minimum!r} is not a number")


def check_min_ratios(name: str, doc: dict, specs: list) -> bool:
    """Gates machine-dependent timing ratios of the CURRENT report (never the
    golden). Returns True when every spec passes or is legitimately skipped."""
    if not specs:
        return True
    timing = doc.get("timing") or {}
    if os.environ.get("SCANDIAG_SKIP_SCALING_GATE") == "1":
        print(f"  {name}: WARNING: SCANDIAG_SKIP_SCALING_GATE=1 — skipping "
              f"{len(specs)} --min-ratio check(s)", file=sys.stderr)
        return True
    hw = timing.get("hardware_concurrency")
    if isinstance(hw, (int, float)) and hw < 8:
        # Only "threads_*" ratios need cores to materialize; core-count-
        # independent ratios (dedup speedup growth, RSS flatness) stay gated.
        scaling = [s for s in specs if s[0].startswith("threads_")]
        if scaling:
            print(f"  {name}: WARNING: runner has hardware_concurrency="
                  f"{int(hw)} (< 8) — thread-scaling ratios cannot "
                  f"materialize here; skipping "
                  f"{', '.join(s[0] for s in scaling)}", file=sys.stderr)
        specs = [s for s in specs if not s[0].startswith("threads_")]
    ok = True
    for field, minimum in specs:
        value = timing.get(field)
        if not isinstance(value, (int, float)):
            print(f"  {name}: timing field {field} is "
                  f"{'missing' if value is None else value!r} "
                  f"(need a number >= {minimum})")
            ok = False
        elif value < minimum:
            print(f"  {name}: timing ratio {field} = {value:.2f} below the "
                  f"required minimum {minimum:.2f}")
            ok = False
        else:
            print(f"  {name}: timing ratio {field} = {value:.2f} "
                  f">= {minimum:.2f}")
    return ok


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("names", nargs="*", help="bench names (e.g. table1 perf noise)")
    parser.add_argument("--results", type=Path, default=Path("results"))
    parser.add_argument("--golden", type=Path, default=Path("results/golden"))
    parser.add_argument("--update", action="store_true",
                        help="write goldens from the current results")
    parser.add_argument("--diff", nargs=2, type=Path, metavar=("A", "B"),
                        help="compare the counters of two report files")
    parser.add_argument("--require-nonzero", action="append", default=[],
                        metavar="COUNTER",
                        help="fail unless COUNTER is present and > 0 in every "
                             "compared result (repeatable)")
    parser.add_argument("--ignore", action="append", default=[], metavar="COUNTER",
                        help="exclude COUNTER from the comparison (repeatable)")
    parser.add_argument("--min-ratio", action="append", default=[],
                        metavar="FIELD:MIN",
                        help="fail unless the current result's timing FIELD is "
                             ">= MIN; skipped with a warning when "
                             "hardware_concurrency < 8 or "
                             "SCANDIAG_SKIP_SCALING_GATE=1 (repeatable)")
    args = parser.parse_args()
    ignore = frozenset(args.ignore)
    min_ratios = [parse_min_ratio(spec) for spec in args.min_ratio]

    if args.diff:
        a, b = args.diff
        try:
            identical = diff_counters(f"{a} vs {b}", counters_of(load(a), a),
                                      counters_of(load(b), b), ignore)
        except LoadError as e:
            print(f"error: {e}", file=sys.stderr)
            return 1
        if identical:
            print("counters identical")
            return 0
        return 1

    names = args.names
    if not names:
        names = sorted(p.stem[len("BENCH_"):]
                       for p in args.golden.glob("BENCH_*.json"))
        if not names:
            print(f"error: no goldens under {args.golden} and no names given",
                  file=sys.stderr)
            return 2

    if args.update:
        args.golden.mkdir(parents=True, exist_ok=True)
        update_failed = []
        for name in names:
            try:
                doc = load(args.results / f"BENCH_{name}.json")
                golden = {k: doc[k] for k in GOLDEN_KEYS if k in doc}
                counters_of(golden, args.results / f"BENCH_{name}.json")
            except LoadError as e:
                print(f"  {name}: {e}")
                update_failed.append(name)
                continue
            out = args.golden / f"BENCH_{name}.json"
            write_atomic(out, golden)
            print(f"wrote {out}")
        if update_failed:
            print(f"FAIL: could not regenerate: {', '.join(update_failed)}",
                  file=sys.stderr)
            return 1
        return 0

    failed = []
    for name in names:
        result_path = args.results / f"BENCH_{name}.json"
        try:
            ok = compare(name, result_path, args.golden / f"BENCH_{name}.json",
                         ignore)
            result_doc = load(result_path)
            ok &= check_min_ratios(name, result_doc, min_ratios)
            counters = counters_of(result_doc, result_path)
        except LoadError as e:
            print(f"  {name}: {e}")
            failed.append(name)
            continue
        for counter in args.require_nonzero:
            value = counters.get(counter)
            if not isinstance(value, int) or value <= 0:
                print(f"  {name}: required counter {counter} is "
                      f"{'missing' if value is None else value} (must be > 0)")
                ok = False
        if ok:
            print(f"ok: {name} counters match golden")
        else:
            failed.append(name)
    if failed:
        print(f"FAIL: counter drift in: {', '.join(failed)}\n"
              "If the change is intentional (new instrumentation site, workload "
              "change), regenerate with scripts/check_bench_counters.py --update "
              "and commit the goldens.", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
