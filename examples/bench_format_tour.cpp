// ISCAS-89 .bench interchange tour.
//
// Shows the drop-in path for users who have the original benchmark files:
// parse a .bench netlist (data/s27.bench by default, or any file given on
// the command line), report its statistics and fault universe, run a quick
// diagnosis, and write the netlist back out in .bench syntax.
//
// Usage: bench_format_tour [file.bench]

#include <cstdio>
#include <string>

#include "core/scandiag.hpp"

using namespace scandiag;

int main(int argc, char** argv) {
  const std::string path = argc > 1 ? argv[1] : "data/s27.bench";
  Netlist circuit;
  try {
    circuit = parseBenchFile(path);
  } catch (const std::exception& e) {
    std::printf("cannot parse %s: %s\n", path.c_str(), e.what());
    std::printf("(run from the repository root, or pass a .bench file)\n");
    return 1;
  }

  std::printf("parsed %s: %zu inputs, %zu outputs, %zu DFFs, %zu gates, depth %zu\n",
              circuit.name().c_str(), circuit.inputs().size(), circuit.outputs().size(),
              circuit.dffs().size(), circuit.combGateCount(), levelize(circuit).maxLevel);

  const FaultList universe = FaultList::enumerateCollapsed(circuit);
  std::printf("collapsed stuck-at fault universe: %zu faults\n", universe.size());

  if (!circuit.dffs().empty()) {
    DiagnoserOptions options;
    options.diagnosis.numPartitions = 4;
    options.diagnosis.groupsPerPartition = 2;
    options.diagnosis.numPatterns = 64;
    const Diagnoser diagnoser(circuit, options);
    const DrReport report = diagnoser.evaluateResolution(50);
    std::printf("two-step DR over %zu detected faults: %.3f\n", report.faults, report.dr);
  }

  const std::string out = std::string("/tmp/") + circuit.name() + "_roundtrip.bench";
  writeBenchFile(circuit, out);
  std::printf("re-emitted netlist: %s\n", out.c_str());
  return 0;
}
