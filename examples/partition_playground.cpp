// Partition playground — the paper's Figure 3 scenario, interactively.
//
// Injects one stuck-at fault into s953, runs ONE partition of each kind
// (interval-based vs random-selection, 4 groups) and prints the group
// contents, which groups failed, and the resulting candidate sets. The point
// the figure makes: the fault's failing cells are *clustered*, so the
// interval partition confines them to one or two groups while the random
// partition scatters them — and every scattered group drags all its innocent
// cells into the candidate set.
//
// Usage: partition_playground [fault-index]

#include <cstdio>
#include <cstdlib>

#include "core/scandiag.hpp"

using namespace scandiag;

namespace {

void showPartition(const char* title, const Partition& partition,
                   const GroupVerdicts& verdicts, const CandidateSet& candidates,
                   const FaultResponse& response) {
  std::printf("%s\n", title);
  for (std::size_t g = 0; g < partition.groupCount(); ++g) {
    std::printf("  group %zu [%s]:", g, verdicts.failing[0].test(g) ? "FAIL" : "pass");
    for (std::size_t pos : partition.groups[g].toIndices()) std::printf(" %zu", pos);
    std::printf("\n");
  }
  std::printf("  -> %zu candidate failing cells (actual: %zu)\n\n",
              candidates.cellCount(), response.failingCellCount());
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t faultIndex = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 4;

  const Netlist nl = generateNamedCircuit("s953");
  const ScanTopology topology = ScanTopology::singleChain(nl.dffs().size());
  const PatternSet patterns = generatePatterns(nl, 200);
  const FaultSimulator sim(nl, patterns);

  // Pick the faultIndex-th detected multi-cell fault, like the figure's
  // "single stuck-at fault ... two failing scan cells".
  const FaultList universe = FaultList::enumerateCollapsed(nl);
  FaultResponse response;
  std::size_t seen = 0;
  for (const FaultSite& f : universe.sample(universe.size(), 0xFA17)) {
    FaultResponse r = sim.simulate(f);
    if (r.failingCellCount() >= 2 && seen++ == faultIndex) {
      response = std::move(r);
      break;
    }
  }
  if (!response.detected()) {
    std::printf("no suitable fault found\n");
    return 1;
  }

  std::printf("fault: %s\n", describeFault(nl, response.fault).c_str());
  std::printf("true failing scan cells:");
  for (std::size_t c : response.failingCells.toIndices()) std::printf(" %zu", c);
  std::printf("  (chain of %zu cells)\n\n", topology.numCells());

  const SessionConfig sessionConfig{SignatureMode::Exact, 200};
  const SessionEngine engine(topology, sessionConfig);
  const CandidateAnalyzer analyzer(topology);

  // One interval-based partition.
  IntervalPartitioner interval(IntervalPartitionerConfig{LfsrConfig{16, 0}, 0, 0xBEEF},
                               topology.maxChainLength(), 4);
  const std::vector<Partition> ip{interval.next()};
  const GroupVerdicts iv = engine.run(ip, response);
  showPartition("interval-based partitioning (4 groups):", ip[0], iv,
                analyzer.analyze(ip, iv), response);

  // One random-selection partition.
  RandomSelectionPartitioner random(RandomSelectionConfig{LfsrConfig{16, 0}, 0xACE1},
                                    topology.maxChainLength(), 4);
  const std::vector<Partition> rp{random.next()};
  const GroupVerdicts rv = engine.run(rp, response);
  showPartition("random-selection partitioning (4 groups):", rp[0], rv,
                analyzer.analyze(rp, rv), response);

  return 0;
}
