// SOC diagnosis walkthrough (paper §5).
//
// Builds the d695 variant (8 full-scan ISCAS-89 cores on an 8-bit TAM with 8
// balanced meta scan chains in daisy-chain order), injects faults into one
// core, and diagnoses failing scan cells over the meta chains. Shows how the
// candidate set localizes to the faulty core — the clustering effect that
// makes two-step partitioning the right tool for TestRail-based SOCs.
//
// Usage: soc_diagnosis [core-name]   (default s9234)

#include <cstdio>
#include <string>

#include "core/scandiag.hpp"

using namespace scandiag;

int main(int argc, char** argv) {
  const std::string failingCore = argc > 1 ? argv[1] : "s9234";

  const Soc soc = buildD695();
  std::printf("SOC %s: %zu cores, %zu scan cells, %zu meta chains of up to %zu cells\n",
              soc.name().c_str(), soc.coreCount(), soc.totalCells(),
              soc.topology().numChains(), soc.topology().maxChainLength());
  for (const CoreInstance& core : soc.cores()) {
    std::printf("  core %-8s cells [%6zu, %6zu)\n", core.name.c_str(), core.cellOffset,
                core.cellOffset + core.numCells());
  }

  const std::size_t coreIdx = soc.coreIndex(failingCore);
  WorkloadConfig workload = presets::socWorkload();
  workload.numFaults = 50;  // a quick demonstration sample
  const auto responses = socResponsesForFailingCore(soc, coreIdx, workload);
  std::printf("\ninjected %zu detected faults into core %s\n", responses.size(),
              failingCore.c_str());

  for (SchemeKind scheme : {SchemeKind::RandomSelection, SchemeKind::TwoStep}) {
    const DiagnosisPipeline pipeline(soc.topology(), presets::d695Config(scheme, false));
    const DrReport report = pipeline.evaluate(responses);

    // How well do candidates localize to the faulty core?
    std::size_t inCore = 0, outOfCore = 0;
    for (const FaultResponse& r : responses) {
      const FaultDiagnosis d = pipeline.diagnose(r);
      for (std::size_t cell : d.candidates.cells.toIndices()) {
        (soc.coreOfCell(cell) == coreIdx ? inCore : outOfCore) += 1;
      }
    }
    std::printf("\n%s:\n", schemeName(scheme).c_str());
    std::printf("  DR = %.2f\n", report.dr);
    std::printf("  candidate cells inside faulty core: %zu, outside: %zu (%.1f%% localized)\n",
                inCore, outOfCore,
                100.0 * static_cast<double>(inCore) / static_cast<double>(inCore + outOfCore));
  }

  std::printf("\nInterval groups align with core boundaries; random groups straddle all "
              "cores,\nwhich is why two-step wins on TestRail SOCs (paper Tables 3-4).\n");
  return 0;
}
