// Diagnosis planning walkthrough: how a test engineer would size the
// partition budget before committing it to the BIST controller.
//
// Flow: pick a representative fault sample, calibrate with planDiagnosis()
// across group counts and partition budgets, and compare the cheapest plans
// for several DR targets against the rule-of-thumb group count (the paper's
// "more groups on longer chains" strategy).
//
// Usage: plan_diagnosis [circuit] [chains]

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/scandiag.hpp"

using namespace scandiag;

int main(int argc, char** argv) {
  const std::string circuit = argc > 1 ? argv[1] : "s13207";
  const std::size_t chains = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 1;

  const Netlist nl = generateNamedCircuit(circuit);
  WorkloadConfig wc;
  wc.numPatterns = 128;
  wc.numFaults = 200;  // calibration sample
  const CircuitWorkload work = prepareWorkload(nl, wc, chains);

  std::printf("%s: %zu scan cells on %zu chain(s), selection axis %zu positions\n",
              circuit.c_str(), work.topology.numCells(), work.topology.numChains(),
              work.topology.maxChainLength());
  std::printf("rule-of-thumb groups (paper §5 strategy): %zu\n\n",
              recommendGroupCount(work.topology.maxChainLength()));

  std::printf("%-10s %12s %10s %10s %12s %14s\n", "target DR", "feasible", "partitions",
              "groups", "achieved", "sessions");
  for (double target : {2.0, 1.0, 0.5, 0.2, 0.05, 0.0}) {
    PlanRequest request;
    request.targetDr = target;
    request.maxPartitions = 16;
    request.numPatterns = wc.numPatterns;
    const PlanResult plan = planDiagnosis(work.topology, work.responses, request);
    if (!plan.feasible) {
      std::printf("%-10.2f %12s\n", target, "no");
      continue;
    }
    std::printf("%-10.2f %12s %10zu %10zu %12.3f %14zu\n", target, "yes",
                plan.config.numPartitions, plan.config.groupsPerPartition, plan.achievedDr,
                plan.cost.sessions);
  }

  std::printf("\nEach session re-applies all %zu patterns; one session costs %llu clock "
              "cycles here.\n",
              wc.numPatterns,
              static_cast<unsigned long long>(
                  sessionCost(wc.numPatterns, work.topology.maxChainLength()).clockCycles));
  return 0;
}
