// Scan-chain integrity checking and chain-fault localization.
//
// Before capture-error diagnosis (the paper's topic) can run, the scan
// chains themselves must shift correctly. This example walks the companion
// flow: a flush test detects a broken chain and the stuck polarity, then
// hypothesis-based capture tests localize the faulty cell — writing cells
// downstream of the break through their D inputs, the one path a shift
// defect cannot corrupt.
//
// Usage: chain_integrity [position] [stuck(0|1)]

#include <cstdio>
#include <algorithm>
#include <cstdlib>

#include "core/scandiag.hpp"

using namespace scandiag;

int main(int argc, char** argv) {
  const std::size_t faultPos = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 17;
  const bool stuck = argc > 2 ? std::strtoul(argv[2], nullptr, 10) != 0 : true;

  const Netlist nl = generateNamedCircuit("s953");
  const ScanTopology topo = ScanTopology::singleChain(nl.dffs().size());
  const ChainIntegrityModel model(nl, topo);
  const PatternSet patterns = generatePatterns(nl, 8);

  const ChainFault fault{0, faultPos, stuck};
  std::printf("injected shift-path fault: chain 0, position %zu, stuck-at-%d\n", faultPos,
              stuck ? 1 : 0);

  // Step 1: flush test.
  const auto verdict = model.judgeFlush(model.flushObservation(0, fault));
  if (verdict.pass) {
    std::printf("flush test PASSED — chain healthy, no localization needed\n");
    return 0;
  }
  std::printf("flush test FAILED: chain 0 stuck-at-%d somewhere\n",
              verdict.stuckValue ? 1 : 0);

  // Step 2: hypothesis-based localization; capture tests intersect.
  std::vector<std::size_t> surviving;
  for (std::size_t p = 0; p < topo.chainLength(0); ++p) surviving.push_back(p);
  for (std::size_t t = 0; t < patterns.numPatterns(); ++t) {
    const auto observed = model.captureObservation(patterns, t, fault);
    const auto candidates = model.locateFault(patterns, t, observed, 0, verdict.stuckValue);
    std::vector<std::size_t> next;
    for (std::size_t c : surviving) {
      if (std::find(candidates.begin(), candidates.end(), c) != candidates.end())
        next.push_back(c);
    }
    surviving = std::move(next);
    std::printf("after capture test %zu: %zu candidate position(s)\n", t + 1,
                surviving.size());
    if (surviving.size() <= 1) break;
  }

  std::printf("\nlocalized faulty cell position(s):");
  for (std::size_t p : surviving) std::printf(" %zu", p);
  std::printf("   (injected: %zu)\n", faultPos);
  return 0;
}
