// Quickstart: diagnose the failing scan cells of a faulty full-scan circuit.
//
// Flow: build (or parse) a circuit, construct a Diagnoser with the default
// two-step configuration, inject a stuck-at fault into the simulated DUT and
// ask which scan cells captured errors. In a silicon deployment the fault is
// in the device, not injected — everything from the partition seeds to the
// session schedule is unchanged.
//
// Usage: quickstart [circuit-name] [gate-name]
//   circuit-name: ISCAS-89 profile (default s953)
//   gate-name:    fault site (default: a mid-circuit gate)

#include <cstdio>
#include <string>

#include "core/scandiag.hpp"

using namespace scandiag;

int main(int argc, char** argv) {
  const std::string circuitName = argc > 1 ? argv[1] : "s953";
  Netlist circuit = generateNamedCircuit(circuitName);
  std::printf("circuit %s: %zu gates, %zu scan cells, %zu PIs, %zu POs\n",
              circuit.name().c_str(), circuit.combGateCount(), circuit.dffs().size(),
              circuit.inputs().size(), circuit.outputs().size());

  // Two-step diagnosis, 8 partitions x 4 groups, 200 BIST patterns.
  DiagnoserOptions options;
  options.diagnosis = presets::table1(SchemeKind::TwoStep, /*numPartitions=*/8);
  const Diagnoser diagnoser(std::move(circuit), options);
  std::printf("BIST sessions per diagnosis run: %zu (%zu partitions x %zu groups)\n\n",
              diagnoser.sessionCount(), options.diagnosis.numPartitions,
              options.diagnosis.groupsPerPartition);

  // Pick a fault site: a named gate, or a default mid-circuit gate.
  const Netlist& nl = diagnoser.netlist();
  GateId site = argc > 2 ? nl.findByName(argv[2]) : nl.findByName("g100");
  if (site == kInvalidGate) site = nl.dffs().front();
  const FaultSite fault{site, FaultSite::kOutputPin, true};
  std::printf("injected fault: %s\n", describeFault(nl, fault).c_str());

  const Diagnoser::Result result = diagnoser.diagnoseInjectedFault(fault);
  if (!result.detected) {
    std::printf("fault not detected by the pseudorandom pattern set\n");
    return 0;
  }

  std::printf("actual failing cells (%zu):", result.actualFailingCells.size());
  for (std::size_t c : result.actualFailingCells)
    std::printf(" %s", diagnoser.cellName(c).c_str());
  std::printf("\ncandidate cells     (%zu):", result.candidateCells.size());
  for (std::size_t c : result.candidateCells)
    std::printf(" %s", diagnoser.cellName(c).c_str());
  std::printf("\ndiagnosis %s\n",
              result.exact() ? "is exact (candidates == actual)"
                             : "over-approximates (all actual cells contained)");

  // Resolution over a 100-fault sample, the paper's DR metric.
  const DrReport report = diagnoser.evaluateResolution(100);
  std::printf("\nDR over %zu detected faults: %.3f (0 = perfect)\n", report.faults, report.dr);
  return 0;
}
