// scandiag — command-line front end.
//
// Subcommands:
//   info <circuit>                       circuit statistics and fault universe
//   emit <circuit> -o <file.bench>       write a synthetic circuit as .bench
//   diagnose <circuit> --fault <site>    diagnose one injected stuck-at fault
//   dr <circuit>                         DR experiment on one circuit
//   soc-dr (soc1|d695)                   DR per failing core on a built-in SOC
//   plan <circuit>                       calibrate (groups, partitions) for a DR target
//   offline --log <file> --cells N       diagnose from a tester session log
//   partitions <length>                  print a partition sequence
//
// <circuit> is either a .bench file path (contains '.' or '/') or a built-in
// ISCAS-89 profile name (s27, s953, ..., s38584).
//
// Common options:
//   --scheme interval|random|two-step|deterministic   (default two-step)
//   --partitions N    (default 8)      --groups N      (default 16)
//   --patterns N      (default 128)    --faults N      (default 500)
//   --chains N        (default 1)      --prune         (off by default)
//   --seed N          (fault-sample seed, default 0xFA17)
//   --threads N       (worker threads for the per-fault loops; default
//                      SCANDIAG_THREADS, else all hardware threads; results
//                      are bit-identical for every value)
//   --json            machine-readable output (diagnose, dr, plan)
//   --target X        DR target for plan (default 0.5)

#include <cstdio>
#include <iostream>
#include <cstdlib>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/scandiag.hpp"

using namespace scandiag;

namespace {

struct Args {
  std::vector<std::string> positional;
  std::map<std::string, std::string> options;
  std::map<std::string, bool> flags;

  static Args parse(int argc, char** argv) {
    Args args;
    for (int i = 1; i < argc; ++i) {
      std::string a = argv[i];
      if (a.rfind("--", 0) == 0) {
        const std::string key = a.substr(2);
        if (key == "prune" || key == "json") {
          args.flags[key] = true;
        } else if (i + 1 < argc) {
          args.options[key] = argv[++i];
        } else {
          throw std::invalid_argument("option --" + key + " needs a value");
        }
      } else {
        args.positional.push_back(a);
      }
    }
    return args;
  }

  std::string get(const std::string& key, const std::string& def) const {
    const auto it = options.find(key);
    return it == options.end() ? def : it->second;
  }
  std::size_t getN(const std::string& key, std::size_t def) const {
    const auto it = options.find(key);
    return it == options.end() ? def : std::strtoull(it->second.c_str(), nullptr, 0);
  }
  bool getFlag(const std::string& key) const {
    const auto it = flags.find(key);
    return it != flags.end() && it->second;
  }
};

SchemeKind parseScheme(const std::string& name) {
  if (name == "interval") return SchemeKind::IntervalBased;
  if (name == "random") return SchemeKind::RandomSelection;
  if (name == "two-step") return SchemeKind::TwoStep;
  if (name == "deterministic") return SchemeKind::DeterministicInterval;
  throw std::invalid_argument("unknown scheme '" + name +
                              "' (interval|random|two-step|deterministic)");
}

Netlist loadCircuit(const std::string& spec) {
  if (spec.find('/') != std::string::npos || spec.find('.') != std::string::npos)
    return parseBenchFile(spec);
  return generateNamedCircuit(spec);
}

DiagnosisConfig configFrom(const Args& args) {
  DiagnosisConfig c;
  c.scheme = parseScheme(args.get("scheme", "two-step"));
  c.numPartitions = args.getN("partitions", 8);
  c.groupsPerPartition = args.getN("groups", 16);
  c.numPatterns = args.getN("patterns", 128);
  c.pruning = args.getFlag("prune");
  return c;
}

int cmdInfo(const Args& args) {
  const Netlist nl = loadCircuit(args.positional.at(1));
  const Levelization lev = levelize(nl);
  std::printf("circuit   %s\n", nl.name().c_str());
  std::printf("inputs    %zu\n", nl.inputs().size());
  std::printf("outputs   %zu\n", nl.outputs().size());
  std::printf("scancells %zu\n", nl.dffs().size());
  std::printf("gates     %zu (depth %zu)\n", nl.combGateCount(), lev.maxLevel);
  std::printf("faults    %zu collapsed / %zu uncollapsed\n",
              FaultList::enumerateCollapsed(nl).size(), FaultList::enumerateAll(nl).size());
  return 0;
}

int cmdEmit(const Args& args) {
  const Netlist nl = loadCircuit(args.positional.at(1));
  const std::string out = args.get("o", nl.name() + ".bench");
  writeBenchFile(nl, out);
  std::printf("wrote %s (%zu gates)\n", out.c_str(), nl.gateCount());
  return 0;
}

int cmdDiagnose(const Args& args) {
  Netlist nl = loadCircuit(args.positional.at(1));
  const std::string faultSpec = args.get("fault", "");
  if (faultSpec.empty()) throw std::invalid_argument("diagnose needs --fault <gate-name>");
  const GateId site = nl.findByName(faultSpec);
  if (site == kInvalidGate) throw std::invalid_argument("no gate named '" + faultSpec + "'");
  const bool sa = args.getN("sa", 1) != 0;

  DiagnoserOptions opts;
  opts.diagnosis = configFrom(args);
  opts.numChains = args.getN("chains", 1);
  const Diagnoser diag(std::move(nl), opts);
  const Diagnoser::Result r = diag.diagnoseInjectedFault({site, FaultSite::kOutputPin, sa});
  if (!r.detected) {
    std::printf("fault %s/SA%d not detected by %zu patterns\n", faultSpec.c_str(), sa ? 1 : 0,
                opts.diagnosis.numPatterns);
    return 0;
  }
  if (args.getFlag("json")) {
    JsonWriter json(std::cout);
    json.beginObject()
        .field("circuit", diag.netlist().name())
        .field("fault", faultSpec + "/SA" + (sa ? "1" : "0"))
        .field("detected", true)
        .field("exact", r.exact());
    json.key("actualFailingCells").beginArray();
    for (std::size_t c : r.actualFailingCells) json.value(diag.cellName(c));
    json.endArray();
    json.key("candidateCells").beginArray();
    for (std::size_t c : r.candidateCells) json.value(diag.cellName(c));
    json.endArray();
    json.endObject();
    std::printf("\n");
    return 0;
  }
  std::printf("fault %s/SA%d: %zu failing cells, %zu candidates (%s)\n", faultSpec.c_str(),
              sa ? 1 : 0, r.actualFailingCells.size(), r.candidateCells.size(),
              r.exact() ? "exact" : "superset");
  std::printf("candidates:");
  for (std::size_t c : r.candidateCells) std::printf(" %s", diag.cellName(c).c_str());
  std::printf("\n");
  const DiagnosisCost cost = partitionRunCost(opts.diagnosis.numPartitions,
                                              opts.diagnosis.groupsPerPartition,
                                              opts.diagnosis.numPatterns,
                                              diag.topology().maxChainLength());
  std::printf("cost: %zu sessions, %llu clock cycles\n", cost.sessions,
              static_cast<unsigned long long>(cost.clockCycles));
  return 0;
}

int cmdDr(const Args& args) {
  Netlist nl = loadCircuit(args.positional.at(1));
  DiagnoserOptions opts;
  opts.diagnosis = configFrom(args);
  opts.numChains = args.getN("chains", 1);
  const Diagnoser diag(std::move(nl), opts);
  const DrReport rep =
      diag.evaluateResolution(args.getN("faults", 500), args.getN("seed", 0xFA17));
  if (args.getFlag("json")) {
    JsonWriter json(std::cout);
    json.beginObject()
        .field("circuit", diag.netlist().name())
        .field("scheme", schemeName(opts.diagnosis.scheme))
        .field("partitions", opts.diagnosis.numPartitions)
        .field("groups", opts.diagnosis.groupsPerPartition)
        .field("pruning", opts.diagnosis.pruning)
        .field("faults", rep.faults)
        .field("sumCandidates", rep.sumCandidates)
        .field("sumActual", rep.sumActual)
        .field("dr", rep.dr)
        .endObject();
    std::printf("\n");
    return 0;
  }
  std::printf("%s %s: DR = %.4f over %zu detected faults "
              "(candidates %llu, actual %llu)\n",
              diag.netlist().name().c_str(), schemeName(opts.diagnosis.scheme).c_str(), rep.dr,
              rep.faults, static_cast<unsigned long long>(rep.sumCandidates),
              static_cast<unsigned long long>(rep.sumActual));
  return 0;
}

int cmdSocDr(const Args& args) {
  const std::string which = args.positional.at(1);
  const Soc soc = which == "soc1"   ? buildSoc1()
                  : which == "d695" ? buildD695()
                                    : throw std::invalid_argument("soc-dr takes soc1|d695");
  WorkloadConfig workload = presets::socWorkload();
  workload.numFaults = args.getN("faults", 500);
  workload.numPatterns = args.getN("patterns", 128);
  DiagnosisConfig config = which == "soc1"
                               ? presets::soc1Config(parseScheme(args.get("scheme", "two-step")),
                                                     args.getFlag("prune"))
                               : presets::d695Config(parseScheme(args.get("scheme", "two-step")),
                                                     args.getFlag("prune"));
  config.numPartitions = args.getN("partitions", config.numPartitions);
  config.groupsPerPartition = args.getN("groups", config.groupsPerPartition);
  std::printf("%s: %zu cores, %zu cells, %zu meta chains — %s%s\n", soc.name().c_str(),
              soc.coreCount(), soc.totalCells(), soc.topology().numChains(),
              schemeName(config.scheme).c_str(), config.pruning ? " + pruning" : "");
  for (const SocDrRow& row : evaluateSocDr(soc, workload, config)) {
    std::printf("  failing %-9s DR = %8.3f (%zu faults)\n", row.failingCore.c_str(),
                row.report.dr, row.report.faults);
  }
  return 0;
}

int cmdPlan(const Args& args) {
  const Netlist nl = loadCircuit(args.positional.at(1));
  WorkloadConfig wc;
  wc.numPatterns = args.getN("patterns", 128);
  wc.numFaults = args.getN("faults", 200);
  const CircuitWorkload work = prepareWorkload(nl, wc, args.getN("chains", 1));

  PlanRequest request;
  request.targetDr = std::strtod(args.get("target", "0.5").c_str(), nullptr);
  request.maxPartitions = args.getN("partitions", 16);
  request.scheme = parseScheme(args.get("scheme", "two-step"));
  request.numPatterns = wc.numPatterns;
  const PlanResult plan = planDiagnosis(work.topology, work.responses, request);

  if (args.getFlag("json")) {
    JsonWriter json(std::cout);
    json.beginObject()
        .field("circuit", nl.name())
        .field("targetDr", request.targetDr)
        .field("feasible", plan.feasible);
    if (plan.feasible) {
      json.field("partitions", plan.config.numPartitions)
          .field("groups", plan.config.groupsPerPartition)
          .field("achievedDr", plan.achievedDr)
          .field("sessions", plan.cost.sessions)
          .field("clockCycles", plan.cost.clockCycles);
    }
    json.endObject();
    std::printf("\n");
    return 0;
  }
  std::printf("rule-of-thumb group count for %zu positions: %zu\n",
              work.topology.maxChainLength(),
              recommendGroupCount(work.topology.maxChainLength()));
  if (!plan.feasible) {
    std::printf("no candidate configuration reaches DR <= %.3f within %zu partitions\n",
                request.targetDr, request.maxPartitions);
    return 1;
  }
  std::printf("cheapest plan for DR <= %.3f (%s): %zu partitions x %zu groups\n",
              request.targetDr, schemeName(request.scheme).c_str(),
              plan.config.numPartitions, plan.config.groupsPerPartition);
  std::printf("achieved DR %.3f at %zu sessions (%llu clock cycles)\n", plan.achievedDr,
              plan.cost.sessions, static_cast<unsigned long long>(plan.cost.clockCycles));
  return 0;
}

int cmdOffline(const Args& args) {
  const std::string logPath = args.get("log", "");
  if (logPath.empty()) throw std::invalid_argument("offline needs --log <file>");
  const std::size_t cells = args.getN("cells", 0);
  if (cells == 0) throw std::invalid_argument("offline needs --cells <scan cell count>");
  const std::size_t chains = args.getN("chains", 1);
  const ScanTopology topology = chains <= 1 ? ScanTopology::singleChain(cells)
                                            : ScanTopology::blockChains(cells, chains);
  const TesterLog log = parseTesterLogFile(logPath);
  DiagnosisConfig config = configFrom(args);
  config.numPartitions = args.getN("partitions", log.numPartitions);
  config.groupsPerPartition = args.getN("groups", log.groupsPerPartition);
  const CandidateSet candidates = diagnoseFromLog(topology, config, log);

  if (args.getFlag("json")) {
    JsonWriter json(std::cout);
    json.beginObject()
        .field("log", logPath)
        .field("cells", cells)
        .field("candidateCount", candidates.cellCount());
    json.key("candidateCells").beginArray();
    for (std::size_t c : candidates.cells.toIndices()) json.value(c);
    json.endArray().endObject();
    std::printf("\n");
    return 0;
  }
  std::printf("%zu candidate failing cell(s):", candidates.cellCount());
  for (std::size_t c : candidates.cells.toIndices()) std::printf(" %zu", c);
  std::printf("\n");
  return 0;
}

int cmdPartitions(const Args& args) {
  const std::size_t length = std::strtoull(args.positional.at(1).c_str(), nullptr, 0);
  DiagnosisConfig config = configFrom(args);
  const auto partitions = buildPartitions(config, length);
  for (std::size_t p = 0; p < partitions.size(); ++p) {
    std::printf("partition %zu (%s):\n", p, schemeName(config.scheme).c_str());
    for (std::size_t g = 0; g < partitions[p].groupCount(); ++g) {
      std::printf("  group %2zu (%4zu cells):", g, partitions[p].groups[g].count());
      const auto idx = partitions[p].groups[g].toIndices();
      for (std::size_t i = 0; i < idx.size() && i < 16; ++i) std::printf(" %zu", idx[i]);
      if (idx.size() > 16) std::printf(" ...");
      std::printf("\n");
    }
  }
  return 0;
}

int usage() {
  std::printf("usage: scandiag <info|emit|diagnose|dr|soc-dr|plan|offline|partitions> ... (see header)\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Args args = Args::parse(argc, argv);
    if (args.positional.empty()) return usage();
    if (args.options.count("threads")) setGlobalThreadCount(args.getN("threads", 0));
    const std::string& cmd = args.positional[0];
    if (cmd == "info") return cmdInfo(args);
    if (cmd == "emit") return cmdEmit(args);
    if (cmd == "diagnose") return cmdDiagnose(args);
    if (cmd == "dr") return cmdDr(args);
    if (cmd == "soc-dr") return cmdSocDr(args);
    if (cmd == "plan") return cmdPlan(args);
    if (cmd == "offline") return cmdOffline(args);
    if (cmd == "partitions") return cmdPartitions(args);
    return usage();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
