// scandiag — command-line front end.
//
// Subcommands:
//   info <circuit>                       circuit statistics and fault universe
//   emit <circuit> --o <file.bench>      write a synthetic circuit as .bench
//   diagnose <circuit> --fault <site>    diagnose one injected stuck-at fault
//   dr <circuit>                         DR experiment on one circuit
//   soc-dr <soc-spec>                    DR per failing core on a built-in SOC
//                                        (soc1|d695|rep:<module>x<R>[:w<W>]);
//                                        --shard/--report/--class-sweep (or a
//                                        rep: spec) switch to the class-sweep
//                                        protocol: each structural core class
//                                        is diagnosed once on its core-local
//                                        topology and the result transfers to
//                                        every sibling instance
//   merge-journals <j0> <j1> ... [--out F]  merge the N journals of a sharded
//                                        class sweep into one report,
//                                        byte-identical to the unsharded
//                                        `soc-dr --report` output
//   plan <circuit>                       calibrate (groups, partitions) for a DR target
//   offline --log <file> --cells N       diagnose from a tester session log
//   partitions <length>                  print a partition sequence
//   serve <circuit> --socket <path>      diagnosis-as-a-service daemon
//   serve-ledger --journal <file>        replay a serve request ledger
//
// <circuit> is either a .bench file path (contains '.' or '/') or a built-in
// ISCAS-89 profile name (s27, s953, ..., s38584).
//
// Common options:
//   --scheme interval|random|two-step|deterministic|adaptive  (default
//                     two-step; adaptive picks each next partition online per
//                     fault — dr/soc-dr/diagnose/plan only, and incompatible
//                     with --prune and the `partitions` command)
//   --partitions N    (default 8)      --groups N      (default 16)
//   --patterns N      (default 128)    --faults N      (default 500)
//   --chains N        (default 1)      --prune         (off by default)
//   --seed N          (fault-sample seed, default 0xFA17)
//   --threads N       (worker threads for the per-fault loops; default
//                      SCANDIAG_THREADS, else all hardware threads; results
//                      are bit-identical for every value)
//   --json            machine-readable output (diagnose, dr, plan)
//   --target X        DR target for plan (default 0.5)
//   --metrics F       write a pipeline metrics snapshot (counters, phase
//                     timers, worker utilization) to F as JSON after the
//                     command finishes (any command; also flushed when the
//                     command is interrupted and exits with code 6)
//
// Class-sweep / shard options (soc-dr, merge-journals):
//   --class-sweep     force the class-sweep protocol for soc1/d695 (rep:
//                     specs always use it)
//   --shard i/N       run fault-range shard i of N (0-based); requires
//                     --checkpoint (each shard owns its own journal)
//   --report F        write the class-sweep report JSON to F (atomic);
//                     unsharded runs only — shards publish via their journal
//   --no-dedup        disable structural dedup (every instance evaluated
//                     from scratch; the A/B baseline for dedup speedup)
//   --out F           merge-journals: write the merged report to F instead
//                     of stdout
//
// Crash safety / long-run options (dr, soc-dr):
//   --deadline-ms N   watchdog: cancel the run after N milliseconds of wall
//                     clock and exit 6 with whatever was journaled/flushed
//   --checkpoint F    journal every completed fault to F (fsync'd, CRC-framed)
//   --resume          continue from F instead of starting over; refuses a
//                     journal written for a different circuit/workload setup;
//                     final DR/counters are bit-identical to an uninterrupted
//                     run at any thread count
//
// Serve options (serve):
//   --socket PATH     unix-domain socket to listen on (required)
//   --queue N         admission queue depth; one more connection is shed BUSY
//                     (default 16)
//   --handlers N      handler threads for framing I/O (default 2; compute runs
//                     on the --threads pool)
//   --sims N          FaultSimulator lease pool size (default 1)
//   --request-deadline-ms N   per-request watchdog; exceeding it degrades the
//                     reply to DEADLINE with a partial superset (default 0 = off)
//   --io-timeout-ms N whole-frame read/write deadline (slowloris bound,
//                     default 5000)
//   --drain-ms N      stage-one drain budget after SIGINT/SIGTERM; requests
//                     still running past it are cancelled ABORTED (default 5000)
//   --journal F       crash-safe request-accounting ledger (fsync'd, CRC-framed)
//   --metrics F       metrics snapshot written atomically at drain
//
// Defect-zoo options (dr, soc-dr):
//   --defects SPEC    diagnose k-fault union scenarios instead of single
//                     stuck-at faults. SPEC = k[,bridge][,open][,intermittent:p]
//                     [,seed:n] — e.g. "2,bridge,open" or "3,intermittent:0.5".
//                     dr: --faults N scenarios through the full
//                     detection -> union analysis -> refinement -> degradation
//                     ladder; soc-dr: k simultaneous failing cores (stuck-at
//                     only; bridge/open/intermittent are core-local models).
//                     Takes precedence over the noise flags. Incompatible with
//                     --scheme adaptive and (dr) with --checkpoint/--resume.
//   --refine-budget N extra interval sessions per scenario for active union
//                     refinement (default 96; 0 = passive superset only)
//   --atpg-budget N   PODEM mini-sessions per scenario when refinement stalls
//                     (default 16; 0 disables the stall breaker)
//   --samples N       full-schedule observations for intermittent scenarios
//                     (default 3)
//
// Noise / resilience options (diagnose, dr):
//   --noise R         raw verdict-flip rate per session (both directions)
//   --intermittent R  intermittent fail->pass rate per failing session
//   --xmask R         per-position X-masking rate
//   --alias R         forced MISR aliasing rate per failing session
//   --noise-seed N    noise stream seed (default 0x7E57ED)
//   --retry-budget N  max extra sessions spent re-running suspect partitions
//   --max-retries N   re-runs per suspect partition (default 2)
//
// Exit codes:
//   0  success
//   1  internal/runtime failure
//   2  usage error (bad flag, unknown scheme, missing argument)
//   3  input file not found
//   4  input file failed to parse
//   5  diagnosis still inconsistent after the retry budget was exhausted
//      (a widened candidate superset was still printed)
//   6  interrupted (SIGINT/SIGTERM or watchdog deadline); the checkpoint
//      journal and any --metrics snapshot were flushed and are valid; for
//      serve: the drain completed, the request ledger balances
//   7  server fatal (serve could not bind/listen or open its journal)
//   8  defect diagnosis resolved only to a guaranteed superset under the
//      defect budget (--defects: k exceeded the resolvable cluster budget,
//      the refinement/ATPG budget ran out, or intermittency degraded the
//      answer; the printed candidates are a sound superset with calibrated
//      confidence — degrade, never lie)

#include <chrono>
#include <cstdio>
#include <iostream>
#include <cstdlib>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/watchdog.hpp"
#include "core/scandiag.hpp"
#include "diagnosis/checkpoint.hpp"
#include "serve/accounting.hpp"
#include "serve/server.hpp"

using namespace scandiag;

namespace {

enum ExitCode {
  kExitOk = 0,
  kExitFailure = 1,
  kExitUsage = 2,
  kExitFileNotFound = 3,
  kExitParseError = 4,
  kExitInconsistent = 5,
  kExitInterrupted = 6,
  kExitServerFatal = 7,
  kExitDefectSuperset = 8,
};

/// Diagnosis stayed inconsistent after recovery; the CLI maps this to exit 5.
struct InconsistentDiagnosisError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

struct Args {
  std::vector<std::string> positional;
  std::map<std::string, std::string> options;
  std::map<std::string, bool> flags;

  static Args parse(int argc, char** argv) {
    Args args;
    for (int i = 1; i < argc; ++i) {
      std::string a = argv[i];
      if (a.rfind("--", 0) == 0) {
        const std::string key = a.substr(2);
        if (key == "prune" || key == "json" || key == "resume" || key == "class-sweep" ||
            key == "no-dedup") {
          args.flags[key] = true;
        } else if (i + 1 < argc) {
          args.options[key] = argv[++i];
        } else {
          throw std::invalid_argument("option --" + key + " needs a value");
        }
      } else {
        args.positional.push_back(a);
      }
    }
    return args;
  }

  const std::string& positionalAt(std::size_t i, const std::string& what) const {
    if (i >= positional.size()) throw std::invalid_argument("missing " + what + " argument");
    return positional[i];
  }
  std::string get(const std::string& key, const std::string& def) const {
    const auto it = options.find(key);
    return it == options.end() ? def : it->second;
  }
  std::size_t getN(const std::string& key, std::size_t def) const {
    const auto it = options.find(key);
    return it == options.end() ? def : std::strtoull(it->second.c_str(), nullptr, 0);
  }
  double getD(const std::string& key, double def) const {
    const auto it = options.find(key);
    if (it == options.end()) return def;
    char* end = nullptr;
    const double v = std::strtod(it->second.c_str(), &end);
    if (end == it->second.c_str() || *end != '\0')
      throw std::invalid_argument("option --" + key + " needs a number, got '" + it->second +
                                  "'");
    return v;
  }
  bool getFlag(const std::string& key) const {
    const auto it = flags.find(key);
    return it != flags.end() && it->second;
  }
};

Netlist loadCircuit(const std::string& spec) {
  if (spec.find('/') != std::string::npos || spec.find('.') != std::string::npos)
    return parseBenchFile(spec);
  return generateNamedCircuit(spec);
}

DiagnosisConfig configFrom(const Args& args) {
  DiagnosisConfig c;
  c.scheme = parseSchemeKind(args.get("scheme", "two-step"));
  c.numPartitions = args.getN("partitions", 8);
  c.groupsPerPartition = args.getN("groups", 16);
  c.numPatterns = args.getN("patterns", 128);
  c.pruning = args.getFlag("prune");
  return c;
}

/// Noise model requested on the command line; nullopt when no noise flag given.
std::optional<NoiseConfig> noiseFrom(const Args& args) {
  const bool any = args.options.count("noise") || args.options.count("intermittent") ||
                   args.options.count("xmask") || args.options.count("alias");
  if (!any) return std::nullopt;
  NoiseConfig noise;
  noise.flipRate = args.getD("noise", 0.0);
  noise.intermittentRate = args.getD("intermittent", 0.0);
  noise.xMaskRate = args.getD("xmask", 0.0);
  noise.aliasRate = args.getD("alias", 0.0);
  noise.seed = args.getN("noise-seed", 0x7E57ED);
  return noise;
}

RetryPolicy retryFrom(const Args& args) {
  RetryPolicy retry;
  retry.sessionBudget = args.getN("retry-budget", 0);
  retry.maxRetriesPerSession = args.getN("max-retries", 2);
  return retry;
}

/// Watchdog + checkpoint state for the long-running commands (dr, soc-dr).
/// Everything stays null/inert when the flags are absent.
struct CliRunState {
  std::unique_ptr<Watchdog> watchdog;
  std::unique_ptr<SweepCheckpoint> checkpoint;
  RunControl control() const { return RunControl{&globalCancelToken(), watchdog.get()}; }
};

/// Builds the run state from --deadline-ms / --checkpoint / --resume.
/// `setupDigest` must cover the circuit + workload (not the thread count) so
/// a journal can only be resumed against the setup that produced it.
CliRunState cliRunFrom(const Args& args, std::uint64_t setupDigest,
                       const std::string& setupInfo) {
  CliRunState state;
  const std::size_t deadlineMs = args.getN("deadline-ms", 0);
  if (deadlineMs > 0) {
    state.watchdog = std::make_unique<Watchdog>(
        globalCancelToken(),
        std::chrono::milliseconds(static_cast<long long>(deadlineMs)));
  }
  const std::string path = args.get("checkpoint", "");
  if (path.empty()) {
    if (args.getFlag("resume"))
      throw std::invalid_argument("--resume requires --checkpoint <file>");
    return state;
  }
  state.checkpoint = std::make_unique<SweepCheckpoint>(path, setupDigest, setupInfo,
                                                       args.getFlag("resume"));
  if (args.getFlag("resume")) {
    std::fprintf(stderr, "resuming from %s: %zu journaled fault records%s\n", path.c_str(),
                 state.checkpoint->loadedRecords(),
                 state.checkpoint->hadTruncatedTail() ? " (torn tail truncated)" : "");
  }
  return state;
}

int cmdInfo(const Args& args) {
  const Netlist nl = loadCircuit(args.positionalAt(1, "circuit"));
  const Levelization lev = levelize(nl);
  std::printf("circuit   %s\n", nl.name().c_str());
  std::printf("inputs    %zu\n", nl.inputs().size());
  std::printf("outputs   %zu\n", nl.outputs().size());
  std::printf("scancells %zu\n", nl.dffs().size());
  std::printf("gates     %zu (depth %zu)\n", nl.combGateCount(), lev.maxLevel);
  std::printf("faults    %zu collapsed / %zu uncollapsed\n",
              FaultList::enumerateCollapsed(nl).size(), FaultList::enumerateAll(nl).size());
  return kExitOk;
}

int cmdEmit(const Args& args) {
  const Netlist nl = loadCircuit(args.positionalAt(1, "circuit"));
  const std::string out = args.get("o", nl.name() + ".bench");
  writeBenchFile(nl, out);
  std::printf("wrote %s (%zu gates)\n", out.c_str(), nl.gateCount());
  return kExitOk;
}

int diagnoseNoisy(const Netlist& nl, const Args& args, const FaultSite& fault,
                  const std::string& faultSpec, const NoiseConfig& noise) {
  const DiagnosisConfig config = configFrom(args);
  const std::size_t chains = args.getN("chains", 1);
  const ScanTopology topology = chains <= 1 ? ScanTopology::singleChain(nl.dffs().size())
                                            : ScanTopology::blockChains(nl.dffs().size(), chains);
  const PatternSet patterns = generatePatterns(nl, config.numPatterns, PrpgConfig{});
  const FaultSimulator sim(nl, patterns);
  const FaultResponse response = sim.simulate(fault);
  if (!response.detected()) {
    std::printf("fault %s not detected by %zu patterns\n", faultSpec.c_str(),
                config.numPatterns);
    return kExitOk;
  }
  const NoisyPipeline noisy(topology, config, noise, retryFrom(args));
  const ResilientDiagnosis d = noisy.diagnose(response, /*faultKey=*/0);

  if (args.getFlag("json")) {
    JsonWriter json(std::cout);
    json.beginObject()
        .field("circuit", nl.name())
        .field("fault", faultSpec)
        .field("detected", true)
        .field("candidateCount", d.candidateCount)
        .field("actualCount", d.actualCount)
        .field("misdiagnosed", d.misdiagnosed)
        .field("confidence", d.confidence)
        .field("resolved", d.resolved)
        .field("inconsistencies", d.inconsistencies)
        .field("retrySessions", d.retrySessions)
        .field("injectedEvents", d.injected.count());
    json.key("candidateCells").beginArray();
    for (std::size_t c : d.candidates.cells.toIndices()) json.value(c);
    json.endArray().endObject();
    std::printf("\n");
  } else {
    std::printf("fault %s under noise: %zu failing cells, %zu candidates "
                "(confidence %.3f, %zu injected events, %zu inconsistencies, "
                "%zu retry sessions)\n",
                faultSpec.c_str(), d.actualCount, d.candidateCount, d.confidence,
                d.injected.count(), d.inconsistencies, d.retrySessions);
    std::printf("candidates:");
    for (std::size_t c : d.candidates.cells.toIndices()) std::printf(" %zu", c);
    std::printf("\n");
  }
  if (!d.resolved)
    throw InconsistentDiagnosisError(
        "diagnosis of " + faultSpec + " is still inconsistent after the retry budget (" +
        std::to_string(d.retrySessions) + " retry sessions spent); candidates were widened");
  return kExitOk;
}

int cmdDiagnose(const Args& args) {
  Netlist nl = loadCircuit(args.positionalAt(1, "circuit"));
  const std::string faultSpec = args.get("fault", "");
  if (faultSpec.empty()) throw std::invalid_argument("diagnose needs --fault <gate-name>");
  const GateId site = nl.findByName(faultSpec);
  if (site == kInvalidGate) throw std::invalid_argument("no gate named '" + faultSpec + "'");
  const bool sa = args.getN("sa", 1) != 0;
  const FaultSite fault{site, FaultSite::kOutputPin, sa};

  if (const std::optional<NoiseConfig> noise = noiseFrom(args))
    return diagnoseNoisy(nl, args, fault, faultSpec + "/SA" + (sa ? "1" : "0"), *noise);

  DiagnoserOptions opts;
  opts.diagnosis = configFrom(args);
  opts.numChains = args.getN("chains", 1);
  const Diagnoser diag(std::move(nl), opts);
  const Diagnoser::Result r = diag.diagnoseInjectedFault(fault);
  if (!r.detected) {
    std::printf("fault %s/SA%d not detected by %zu patterns\n", faultSpec.c_str(), sa ? 1 : 0,
                opts.diagnosis.numPatterns);
    return kExitOk;
  }
  if (args.getFlag("json")) {
    JsonWriter json(std::cout);
    json.beginObject()
        .field("circuit", diag.netlist().name())
        .field("fault", faultSpec + "/SA" + (sa ? "1" : "0"))
        .field("detected", true)
        .field("exact", r.exact());
    json.key("actualFailingCells").beginArray();
    for (std::size_t c : r.actualFailingCells) json.value(diag.cellName(c));
    json.endArray();
    json.key("candidateCells").beginArray();
    for (std::size_t c : r.candidateCells) json.value(diag.cellName(c));
    json.endArray();
    json.endObject();
    std::printf("\n");
    return kExitOk;
  }
  std::printf("fault %s/SA%d: %zu failing cells, %zu candidates (%s)\n", faultSpec.c_str(),
              sa ? 1 : 0, r.actualFailingCells.size(), r.candidateCells.size(),
              r.exact() ? "exact" : "superset");
  std::printf("candidates:");
  for (std::size_t c : r.candidateCells) std::printf(" %s", diag.cellName(c).c_str());
  std::printf("\n");
  const DiagnosisCost cost = partitionRunCost(opts.diagnosis.numPartitions,
                                              opts.diagnosis.groupsPerPartition,
                                              opts.diagnosis.numPatterns,
                                              diag.topology().maxChainLength());
  std::printf("cost: %zu sessions, %llu clock cycles\n", cost.sessions,
              static_cast<unsigned long long>(cost.clockCycles));
  return kExitOk;
}

int drNoisy(const Netlist& nl, const Args& args, const NoiseConfig& noise) {
  const DiagnosisConfig config = configFrom(args);
  WorkloadConfig wc;
  wc.numPatterns = config.numPatterns;
  wc.numFaults = args.getN("faults", 500);
  wc.faultSeed = args.getN("seed", 0xFA17);
  const CircuitWorkload work = prepareWorkload(nl, wc, args.getN("chains", 1));
  const NoisyPipeline noisy(work.topology, config, noise, retryFrom(args));
  const NoisyDrReport rep = noisy.evaluate(work.responses);

  if (args.getFlag("json")) {
    JsonWriter json(std::cout);
    json.beginObject()
        .field("circuit", nl.name())
        .field("scheme", schemeName(config.scheme))
        .field("partitions", config.numPartitions)
        .field("groups", config.groupsPerPartition)
        .field("noiseFlipRate", noise.flipRate)
        .field("retryBudget", retryFrom(args).sessionBudget)
        .field("faults", rep.faults)
        .field("dr", rep.dr)
        .field("misdiagnosisRate", rep.misdiagnosisRate)
        .field("emptyRate", rep.emptyRate)
        .field("meanConfidence", rep.meanConfidence)
        .field("inconsistencies", rep.totalInconsistencies)
        .field("retrySessions", rep.totalRetrySessions)
        .field("unresolved", rep.unresolved)
        .endObject();
    std::printf("\n");
    return kExitOk;
  }
  std::printf("%s %s under noise: DR = %.4f over %zu faults "
              "(misdiagnosis %.4f, empty %.4f, confidence %.3f, "
              "%zu inconsistencies, %zu retry sessions, %zu unresolved)\n",
              nl.name().c_str(), schemeName(config.scheme).c_str(), rep.dr, rep.faults,
              rep.misdiagnosisRate, rep.emptyRate, rep.meanConfidence,
              rep.totalInconsistencies, rep.totalRetrySessions, rep.unresolved);
  return kExitOk;
}

/// `scandiag dr --defects`: k-fault union scenarios through the defect-zoo
/// pipeline. No checkpoint support (scenarios are cheap to regenerate and the
/// journal schema is per-single-fault); degraded scenarios map to exit 8.
int drDefects(const Netlist& nl, const Args& args) {
  const DefectMix mix = parseDefectSpec(args.get("defects", ""));
  if (!args.get("checkpoint", "").empty() || args.getFlag("resume"))
    throw std::invalid_argument("--defects does not support --checkpoint/--resume");
  const DiagnosisConfig config = configFrom(args);
  if (config.scheme == SchemeKind::Adaptive)
    throw std::invalid_argument("--defects is incompatible with --scheme adaptive");
  const std::size_t chains = args.getN("chains", 1);
  const ScanTopology topology = chains <= 1 ? ScanTopology::singleChain(nl.dffs().size())
                                            : ScanTopology::blockChains(nl.dffs().size(), chains);
  const PatternSet patterns = generatePatterns(nl, config.numPatterns, PrpgConfig{});
  const FaultSimulator sim(nl, patterns);
  const DefectScenarioGenerator generator(sim, mix);

  const std::size_t count = args.getN("faults", 100);
  std::vector<DefectScenario> scenarios;
  scenarios.reserve(count);
  // Serial: generation fault-simulates on the shared simulator (diagnosis
  // below is the parallel part).
  for (std::size_t i = 0; i < count; ++i) scenarios.push_back(generator.generate(i));

  DefectPolicy policy;
  policy.retry.sessionBudget = args.getN("retry-budget", policy.retry.sessionBudget);
  policy.retry.maxRetriesPerSession = args.getN("max-retries", policy.retry.maxRetriesPerSession);
  policy.refineSessionBudget = args.getN("refine-budget", policy.refineSessionBudget);
  policy.atpgSessionBudget = args.getN("atpg-budget", policy.atpgSessionBudget);
  policy.intermittentSamples = args.getN("samples", policy.intermittentSamples);
  const DefectZooPipeline zoo(sim, topology, config, policy);
  const DefectZooReport rep = zoo.evaluate(scenarios);

  if (args.getFlag("json")) {
    JsonWriter json(std::cout);
    json.beginObject()
        .field("circuit", nl.name())
        .field("scheme", schemeName(config.scheme))
        .field("defects", describeDefectMix(mix))
        .field("scenarios", rep.scenarios)
        .field("dr", rep.dr)
        .field("sumCandidates", rep.sumCandidates)
        .field("sumActual", rep.sumActual)
        .field("misdiagnosisRate", rep.misdiagnosisRate)
        .field("meanConfidence", rep.meanConfidence)
        .field("degraded", rep.degraded)
        .field("inconsistencies", rep.totalInconsistencies)
        .field("unionSplits", rep.totalUnionSplits)
        .field("atpgPatterns", rep.totalAtpgPatterns)
        .field("extraSessions", rep.totalExtraSessions)
        .endObject();
    std::printf("\n");
  } else {
    std::printf("%s %s defects %s: DR = %.4f over %zu scenarios "
                "(misdiagnosis %.4f, confidence %.3f, %zu degraded, "
                "%zu union splits, %zu ATPG patterns, %zu extra sessions)\n",
                nl.name().c_str(), schemeName(config.scheme).c_str(),
                describeDefectMix(mix).c_str(), rep.dr, rep.scenarios, rep.misdiagnosisRate,
                rep.meanConfidence, rep.degraded, rep.totalUnionSplits, rep.totalAtpgPatterns,
                rep.totalExtraSessions);
  }
  if (rep.degraded > 0) {
    std::fprintf(stderr,
                 "%zu of %zu scenario(s) resolved only to a guaranteed superset under the "
                 "defect budget (candidates are sound; confidence is calibrated)\n",
                 rep.degraded, rep.scenarios);
    return kExitDefectSuperset;
  }
  return kExitOk;
}

int cmdDr(const Args& args) {
  Netlist nl = loadCircuit(args.positionalAt(1, "circuit"));
  if (args.options.count("defects")) return drDefects(nl, args);
  if (const std::optional<NoiseConfig> noise = noiseFrom(args)) return drNoisy(nl, args, *noise);

  DiagnoserOptions opts;
  opts.diagnosis = configFrom(args);
  opts.numChains = args.getN("chains", 1);
  const Diagnoser diag(std::move(nl), opts);
  std::uint64_t digest = fnv1a64(std::string("scandiag dr"));
  digest = setupDigestPiece("circuit", diag.netlist().name(), digest);
  digest = setupDigestPiece("cells", diag.netlist().dffs().size(), digest);
  digest = setupDigestPiece("chains", opts.numChains, digest);
  digest = setupDigestPiece("patterns", opts.diagnosis.numPatterns, digest);
  digest = setupDigestPiece("faults", args.getN("faults", 500), digest);
  digest = setupDigestPiece("seed", args.getN("seed", 0xFA17), digest);
  digest = setupDigestPiece("schema", obs::kMetricsSchemaVersion, digest);
  CliRunState run =
      cliRunFrom(args, digest, "scandiag dr " + diag.netlist().name());
  const DrReport rep =
      diag.evaluateResolution(args.getN("faults", 500), args.getN("seed", 0xFA17),
                              run.control(), run.checkpoint.get());
  if (args.getFlag("json")) {
    JsonWriter json(std::cout);
    json.beginObject()
        .field("circuit", diag.netlist().name())
        .field("scheme", schemeName(opts.diagnosis.scheme))
        .field("partitions", opts.diagnosis.numPartitions)
        .field("groups", opts.diagnosis.groupsPerPartition)
        .field("pruning", opts.diagnosis.pruning)
        .field("faults", rep.faults)
        .field("sumCandidates", rep.sumCandidates)
        .field("sumActual", rep.sumActual)
        .field("dr", rep.dr)
        .endObject();
    std::printf("\n");
    return kExitOk;
  }
  std::printf("%s %s: DR = %.4f over %zu detected faults "
              "(candidates %llu, actual %llu)\n",
              diag.netlist().name().c_str(), schemeName(opts.diagnosis.scheme).c_str(), rep.dr,
              rep.faults, static_cast<unsigned long long>(rep.sumCandidates),
              static_cast<unsigned long long>(rep.sumActual));
  return kExitOk;
}

/// The class-sweep leg of soc-dr: structural dedup, optional --shard i/N,
/// optional --report. The journal's own digest mixes the shard spec (wrong
/// shard → refused resume); the unsharded base digest travels in the shard
/// meta record so merge-journals can match sibling journals.
int socClassSweepCmd(const Args& args, const std::string& spec, const Soc& soc,
                     const WorkloadConfig& workload, const DiagnosisConfig& config) {
  SocSweepOptions options;
  options.socSpec = spec;
  options.dedupClasses = !args.getFlag("no-dedup");
  const std::string shardText = args.get("shard", "");
  if (!shardText.empty()) options.shard = parseShardSpec(shardText);
  if (!shardText.empty() && args.get("checkpoint", "").empty())
    throw std::invalid_argument("--shard requires --checkpoint <file> (one journal per shard)");
  if (options.shard.count != 1 && args.options.count("report"))
    throw std::invalid_argument(
        "--report needs the full sweep; run unsharded, or merge the shard journals with "
        "merge-journals");

  std::uint64_t base = fnv1a64(std::string("scandiag soc-class-sweep"));
  base = setupDigestPiece("soc", spec, base);
  base = setupDigestPiece("cores", soc.coreCount(), base);
  base = setupDigestPiece("cells", soc.totalCells(), base);
  base = setupDigestPiece("patterns", workload.numPatterns, base);
  base = setupDigestPiece("faults", workload.numFaults, base);
  base = setupDigestPiece("fault_seed", workload.faultSeed, base);
  base = setupDigestPiece("config", sweepIdFor(config), base);
  base = setupDigestPiece("dedup", options.dedupClasses ? 1 : 0, base);
  base = setupDigestPiece("schema", obs::kMetricsSchemaVersion, base);
  options.baseDigest = base;
  std::uint64_t digest = setupDigestPiece("shard_index", options.shard.index, base);
  digest = setupDigestPiece("shard_count", options.shard.count, digest);

  CliRunState run = cliRunFrom(args, digest,
                               "scandiag soc-dr " + spec + " --shard " +
                                   std::to_string(options.shard.index) + "/" +
                                   std::to_string(options.shard.count));
  MemoryRecordSink collector;
  const SocSweepResult result = runSocClassSweep(soc, workload, config, options, run.control(),
                                                 run.checkpoint.get(), &collector);

  std::printf("%s: %zu cores, %zu cells, %zu classes — %s%s, shard %u/%u%s\n",
              soc.name().c_str(), result.coreCount, result.totalCells, result.classCount,
              schemeName(config.scheme).c_str(), config.pruning ? " + pruning" : "",
              options.shard.index, options.shard.count,
              options.dedupClasses ? "" : ", no dedup");
  for (const SocClassRow& row : result.classes) {
    std::printf("  class %-9s x%-4zu DR = %8.3f (%zu of %zu faults)\n", row.className.c_str(),
                row.instanceCount, row.report.dr, row.report.faults, row.responseCount);
  }

  const std::string reportPath = args.get("report", "");
  if (!reportPath.empty()) {
    SocReportMeta meta;
    meta.soc = spec;
    meta.baseDigest = base;
    atomicWriteFile(reportPath, renderSocReport(meta, result.manifests, collector.records()));
    std::printf("report: %s\n", reportPath.c_str());
  }
  return kExitOk;
}

/// `scandiag soc-dr --defects k`: k simultaneous failing cores (the paper's
/// multiple-spot-defect view). Responses are unions of per-core responses on
/// the meta topology; diagnosis runs detection + recovery (the union
/// short-circuit included), and any unresolved scenario maps to exit 8.
/// Bridge/open/intermittent components are core-local models — rejected here;
/// use `scandiag dr --defects` on a single circuit for those.
int socDrDefects(const Args& args, const Soc& soc, const WorkloadConfig& workload,
                 const DiagnosisConfig& config) {
  const DefectMix mix = parseDefectSpec(args.get("defects", ""));
  if (mix.bridges || mix.opens || mix.intermittentP > 0.0)
    throw std::invalid_argument(
        "soc-dr --defects models k simultaneous failing cores (stuck-at only); "
        "bridge/open/intermittent are core-local — use `scandiag dr --defects`");
  if (mix.k > soc.coreCount())
    throw std::invalid_argument("soc-dr --defects: k=" + std::to_string(mix.k) + " exceeds " +
                                std::to_string(soc.coreCount()) + " cores");
  if (config.scheme == SchemeKind::Adaptive)
    throw std::invalid_argument("--defects is incompatible with --scheme adaptive");

  std::vector<std::size_t> failingCores(mix.k);
  for (std::size_t i = 0; i < mix.k; ++i) failingCores[i] = i;
  const std::vector<FaultResponse> responses =
      socResponsesForFailingCores(soc, failingCores, workload);

  const ScanTopology& topology = soc.topology();
  const DiagnosisPipeline pipeline(topology, config);
  RetryPolicy retry;
  retry.sessionBudget = args.getN("retry-budget", 256);
  retry.maxRetriesPerSession = args.getN("max-retries", 2);
  const DiagnosisRecovery recovery(topology, retry);
  const PreparedPartitionSet& prepared = pipeline.prepared();

  struct Slot {
    std::size_t candidates = 0;
    std::size_t actual = 0;
    bool misdiagnosed = false;
    bool resolved = true;
    double confidence = 1.0;
    std::size_t unionClusters = 0;
  };
  std::vector<Slot> slots(responses.size());
  globalPool().parallelFor(responses.size(), [&](std::size_t i) {
    obs::count(obs::Counter::DefectScenariosRun);
    const FaultResponse& response = responses[i];
    const GroupVerdicts verdicts = pipeline.engine().run(prepared, response);
    const PartitionRerun rerun = [&](std::size_t p, std::size_t) {
      return pipeline.engine().runPartition(prepared, p, response);
    };
    const RecoveredDiagnosis recovered = recovery.recover(prepared, verdicts, rerun);
    slots[i].candidates = recovered.candidates.cellCount();
    slots[i].actual = response.failingCellCount();
    slots[i].misdiagnosed = !response.failingCells.isSubsetOf(recovered.candidates.cells);
    slots[i].resolved = recovered.resolved;
    slots[i].confidence = recovered.confidence;
    slots[i].unionClusters = recovered.unionClusters;
  });

  DrAccumulator acc;
  std::size_t unresolved = 0;
  std::size_t misdiagnosed = 0;
  double confidenceSum = 0.0;
  for (const Slot& s : slots) {
    acc.add(s.candidates, s.actual);
    if (!s.resolved) ++unresolved;
    if (s.misdiagnosed) ++misdiagnosed;
    confidenceSum += s.confidence;
  }
  const double dr = acc.sumActual() > 0 ? acc.dr() : 0.0;
  const double meanConfidence =
      slots.empty() ? 1.0 : confidenceSum / static_cast<double>(slots.size());

  if (args.getFlag("json")) {
    JsonWriter json(std::cout);
    json.beginObject()
        .field("soc", soc.name())
        .field("scheme", schemeName(config.scheme))
        .field("failingCores", mix.k)
        .field("scenarios", slots.size())
        .field("dr", dr)
        .field("sumCandidates", acc.sumCandidates())
        .field("sumActual", acc.sumActual())
        .field("misdiagnosed", misdiagnosed)
        .field("meanConfidence", meanConfidence)
        .field("unresolved", unresolved)
        .endObject();
    std::printf("\n");
  } else {
    std::printf("%s with %zu failing cores: DR = %.4f over %zu union scenarios "
                "(misdiagnosed %zu, confidence %.3f, %zu unresolved)\n",
                soc.name().c_str(), mix.k, dr, slots.size(), misdiagnosed, meanConfidence,
                unresolved);
  }
  if (unresolved > 0) {
    std::fprintf(stderr,
                 "%zu of %zu union scenario(s) resolved only to a guaranteed superset\n",
                 unresolved, slots.size());
    return kExitDefectSuperset;
  }
  return kExitOk;
}

int cmdSocDr(const Args& args) {
  const std::string which = args.positionalAt(1, "soc spec");
  const Soc soc = buildSocFromSpec(which);
  WorkloadConfig workload = presets::socWorkload();
  workload.numFaults = args.getN("faults", 500);
  workload.numPatterns = args.getN("patterns", 128);
  const bool preset = which == "soc1" || which == "d695";
  DiagnosisConfig config =
      which == "soc1"   ? presets::soc1Config(parseSchemeKind(args.get("scheme", "two-step")),
                                              args.getFlag("prune"))
      : which == "d695" ? presets::d695Config(parseSchemeKind(args.get("scheme", "two-step")),
                                              args.getFlag("prune"))
                        : configFrom(args);
  config.numPartitions = args.getN("partitions", config.numPartitions);
  config.groupsPerPartition = args.getN("groups", config.groupsPerPartition);

  if (args.options.count("defects")) return socDrDefects(args, soc, workload, config);

  // rep: SOCs only make sense class-deduped; for the presets the legacy
  // per-failing-core protocol (paper Tables 3-4) stays the default.
  const bool classSweep = !preset || args.getFlag("class-sweep") || args.getFlag("no-dedup") ||
                          args.options.count("shard") || args.options.count("report");
  if (classSweep) return socClassSweepCmd(args, which, soc, workload, config);

  std::uint64_t digest = fnv1a64(std::string("scandiag soc-dr"));
  digest = setupDigestPiece("soc", which, digest);
  digest = setupDigestPiece("cores", soc.coreCount(), digest);
  digest = setupDigestPiece("cells", soc.totalCells(), digest);
  digest = setupDigestPiece("patterns", workload.numPatterns, digest);
  digest = setupDigestPiece("faults", workload.numFaults, digest);
  digest = setupDigestPiece("fault_seed", workload.faultSeed, digest);
  digest = setupDigestPiece("schema", obs::kMetricsSchemaVersion, digest);
  CliRunState run = cliRunFrom(args, digest, "scandiag soc-dr " + which);
  std::printf("%s: %zu cores, %zu cells, %zu meta chains — %s%s\n", soc.name().c_str(),
              soc.coreCount(), soc.totalCells(), soc.topology().numChains(),
              schemeName(config.scheme).c_str(), config.pruning ? " + pruning" : "");
  for (const SocDrRow& row :
       evaluateSocDr(soc, workload, config, run.control(), run.checkpoint.get())) {
    std::printf("  failing %-9s DR = %8.3f (%zu faults)\n", row.failingCore.c_str(),
                row.report.dr, row.report.faults);
  }
  return kExitOk;
}

int cmdMergeJournals(const Args& args) {
  if (args.positional.size() < 2)
    throw std::invalid_argument("merge-journals needs at least one journal path");
  const std::vector<std::string> paths(args.positional.begin() + 1, args.positional.end());
  const MergedJournals merged = mergeShardJournals(paths);
  SocReportMeta meta;
  meta.soc = merged.socSpec;
  meta.baseDigest = merged.baseDigest;
  const std::string report = renderSocReport(meta, merged.manifests, merged.records);
  const std::string out = args.get("out", "");
  if (out.empty()) {
    std::fputs(report.c_str(), stdout);
  } else {
    atomicWriteFile(out, report);
    std::printf("merged %zu journals (%llu fault records, %u shards) -> %s\n", paths.size(),
                static_cast<unsigned long long>(merged.faultRecordsMerged), merged.shardCount,
                out.c_str());
  }
  return kExitOk;
}

int cmdPlan(const Args& args) {
  const Netlist nl = loadCircuit(args.positionalAt(1, "circuit"));
  WorkloadConfig wc;
  wc.numPatterns = args.getN("patterns", 128);
  wc.numFaults = args.getN("faults", 200);
  const CircuitWorkload work = prepareWorkload(nl, wc, args.getN("chains", 1));

  PlanRequest request;
  request.targetDr = args.getD("target", 0.5);
  request.maxPartitions = args.getN("partitions", 16);
  request.scheme = parseSchemeKind(args.get("scheme", "two-step"));
  request.numPatterns = wc.numPatterns;
  const PlanResult plan = planDiagnosis(work.topology, work.responses, request);

  if (args.getFlag("json")) {
    JsonWriter json(std::cout);
    json.beginObject()
        .field("circuit", nl.name())
        .field("targetDr", request.targetDr)
        .field("feasible", plan.feasible);
    if (plan.feasible) {
      json.field("partitions", plan.config.numPartitions)
          .field("groups", plan.config.groupsPerPartition)
          .field("achievedDr", plan.achievedDr)
          .field("sessions", plan.cost.sessions)
          .field("clockCycles", plan.cost.clockCycles);
    }
    json.endObject();
    std::printf("\n");
    return kExitOk;
  }
  std::printf("rule-of-thumb group count for %zu positions: %zu\n",
              work.topology.maxChainLength(),
              recommendGroupCount(work.topology.maxChainLength()));
  if (!plan.feasible) {
    std::printf("no candidate configuration reaches DR <= %.3f within %zu partitions\n",
                request.targetDr, request.maxPartitions);
    return kExitFailure;
  }
  std::printf("cheapest plan for DR <= %.3f (%s): %zu partitions x %zu groups\n",
              request.targetDr, schemeName(request.scheme).c_str(),
              plan.config.numPartitions, plan.config.groupsPerPartition);
  std::printf("achieved DR %.3f at %zu sessions (%llu clock cycles)\n", plan.achievedDr,
              plan.cost.sessions, static_cast<unsigned long long>(plan.cost.clockCycles));
  return kExitOk;
}

int cmdOffline(const Args& args) {
  const std::string logPath = args.get("log", "");
  if (logPath.empty()) throw std::invalid_argument("offline needs --log <file>");
  const std::size_t cells = args.getN("cells", 0);
  if (cells == 0) throw std::invalid_argument("offline needs --cells <scan cell count>");
  const std::size_t chains = args.getN("chains", 1);
  const ScanTopology topology = chains <= 1 ? ScanTopology::singleChain(cells)
                                            : ScanTopology::blockChains(cells, chains);
  const TesterLog log = parseTesterLogFile(logPath);
  DiagnosisConfig config = configFrom(args);
  config.numPartitions = args.getN("partitions", log.numPartitions);
  config.groupsPerPartition = args.getN("groups", log.groupsPerPartition);

  // A recorded log cannot be re-run, so an inconsistent session set can only
  // be degraded — DiagnosisRecovery with a null re-run callback drops the
  // offending partitions and applies leave-one-out widening, so corrupted
  // logs are reported instead of silently intersected away.
  const std::vector<Partition> partitions = buildPartitions(config, topology.maxChainLength());
  const DiagnosisRecovery recovery(topology, RetryPolicy{});
  const RecoveredDiagnosis recovered = recovery.recover(partitions, log.verdicts, nullptr);

  CandidateSet candidates;
  if (recovered.consistent()) {
    candidates = diagnoseFromLog(topology, config, log);
  } else {
    for (const InconsistencyReport& report : recovered.inconsistencies)
      std::fprintf(stderr, "inconsistency: %s\n", report.describe().c_str());
    candidates = recovered.candidates;
  }

  if (args.getFlag("json")) {
    JsonWriter json(std::cout);
    json.beginObject()
        .field("log", logPath)
        .field("cells", cells)
        .field("consistent", recovered.consistent())
        .field("inconsistencies", recovered.inconsistencies.size())
        .field("confidence", recovered.confidence)
        .field("candidateCount", candidates.cellCount());
    json.key("candidateCells").beginArray();
    for (std::size_t c : candidates.cells.toIndices()) json.value(c);
    json.endArray().endObject();
    std::printf("\n");
  } else {
    std::printf("%zu candidate failing cell(s):", candidates.cellCount());
    for (std::size_t c : candidates.cells.toIndices()) std::printf(" %zu", c);
    std::printf("\n");
  }
  if (!recovered.consistent())
    throw InconsistentDiagnosisError(
        "session log " + logPath + " is inconsistent (" +
        std::to_string(recovered.inconsistencies.size()) +
        " inconsistency report(s)); a widened candidate superset was printed");
  return kExitOk;
}

int cmdPartitions(const Args& args) {
  const std::size_t length =
      std::strtoull(args.positionalAt(1, "chain length").c_str(), nullptr, 0);
  if (length == 0) throw std::invalid_argument("partitions needs a positive chain length");
  DiagnosisConfig config = configFrom(args);
  const auto partitions = buildPartitions(config, length);
  for (std::size_t p = 0; p < partitions.size(); ++p) {
    std::printf("partition %zu (%s):\n", p, schemeName(config.scheme).c_str());
    for (std::size_t g = 0; g < partitions[p].groupCount(); ++g) {
      std::printf("  group %2zu (%4zu cells):", g, partitions[p].groups[g].count());
      const auto idx = partitions[p].groups[g].toIndices();
      for (std::size_t i = 0; i < idx.size() && i < 16; ++i) std::printf(" %zu", idx[i]);
      if (idx.size() > 16) std::printf(" ...");
      std::printf("\n");
    }
  }
  return kExitOk;
}

int cmdServe(const Args& args) {
  const std::string socketPath = args.get("socket", "");
  if (socketPath.empty()) throw std::invalid_argument("serve needs --socket <path>");
  Netlist nl = loadCircuit(args.positionalAt(1, "circuit"));

  serve::ServiceConfig serviceConfig;
  serviceConfig.diagnosis = configFrom(args);
  serviceConfig.numChains = args.getN("chains", 1);
  serviceConfig.simulators = args.getN("sims", 1);

  serve::ServeOptions options;
  options.socketPath = socketPath;
  options.queueCapacity = args.getN("queue", 16);
  options.handlers = args.getN("handlers", 2);
  options.requestDeadlineMs = args.getN("request-deadline-ms", 0);
  options.ioTimeoutMs = args.getN("io-timeout-ms", 5000);
  options.drainBudgetMs = args.getN("drain-ms", 5000);
  options.journalPath = args.get("journal", "");
  options.metricsPath = args.get("metrics", "");
  options.metricsCircuit = args.positionalAt(1, "circuit");
  options.stopToken = &globalCancelToken();

  std::fprintf(stderr,
               "scandiag serve: warming %s (%zu cells, %zu partitions x %zu groups)...\n",
               nl.name().c_str(), nl.dffs().size(), serviceConfig.diagnosis.numPartitions,
               serviceConfig.diagnosis.groupsPerPartition);
  const serve::DiagnosisService service(std::move(nl), serviceConfig);
  serve::DiagnosisServer server(service, options);
  std::fprintf(stderr, "scandiag serve: listening on %s (queue %zu, %zu handlers)\n",
               socketPath.c_str(), options.queueCapacity, options.handlers);
  return server.run();
}

int cmdServeLedger(const Args& args) {
  const std::string path = args.get("journal", "");
  if (path.empty()) throw std::invalid_argument("serve-ledger needs --journal <file>");
  const serve::ServeLedger ledger = serve::replayLedger(path);
  if (args.getFlag("json")) {
    JsonWriter json(std::cout);
    json.beginObject()
        .field("journal", path)
        .field("accepted", ledger.accepted)
        .field("ok", ledger.ok)
        .field("shed", ledger.shed)
        .field("degraded", ledger.degraded)
        .field("aborted", ledger.aborted)
        .field("abortedInFlight", ledger.abortedInFlight)
        .field("truncatedTail", ledger.truncatedTail)
        .field("balanced", ledger.balanced())
        .endObject();
    std::printf("\n");
  } else {
    std::printf("ledger %s:%s\n", path.c_str(),
                ledger.truncatedTail ? " (torn tail truncated)" : "");
    std::printf("  accepted  %llu\n", static_cast<unsigned long long>(ledger.accepted));
    std::printf("  ok        %llu\n", static_cast<unsigned long long>(ledger.ok));
    std::printf("  shed      %llu\n", static_cast<unsigned long long>(ledger.shed));
    std::printf("  degraded  %llu\n", static_cast<unsigned long long>(ledger.degraded));
    std::printf("  aborted   %llu (%llu in flight at exit)\n",
                static_cast<unsigned long long>(ledger.aborted),
                static_cast<unsigned long long>(ledger.abortedInFlight));
    std::printf("  balance   %s\n", ledger.balanced() ? "exact" : "BROKEN");
  }
  // Replay books crash survivors as aborted, so an unbalanced ledger can only
  // mean the journal lied — surface it as a hard failure for the chaos CI job.
  return ledger.balanced() ? kExitOk : kExitFailure;
}

int usage() {
  std::fprintf(stderr,
               "usage: scandiag <info|emit|diagnose|dr|soc-dr|merge-journals|plan|offline|"
               "partitions|serve|serve-ledger> ... (see header)\n");
  return kExitUsage;
}

int dispatch(const Args& args) {
  const std::string& cmd = args.positional[0];
  if (cmd == "info") return cmdInfo(args);
  if (cmd == "emit") return cmdEmit(args);
  if (cmd == "diagnose") return cmdDiagnose(args);
  if (cmd == "dr") return cmdDr(args);
  if (cmd == "soc-dr") return cmdSocDr(args);
  if (cmd == "merge-journals") return cmdMergeJournals(args);
  if (cmd == "plan") return cmdPlan(args);
  if (cmd == "offline") return cmdOffline(args);
  if (cmd == "partitions") return cmdPartitions(args);
  if (cmd == "serve") return cmdServe(args);
  if (cmd == "serve-ledger") return cmdServeLedger(args);
  std::fprintf(stderr, "error: unknown command '%s'\n", cmd.c_str());
  return usage();
}

void writeMetricsIfRequested(const Args& args) {
  const auto it = args.options.find("metrics");
  if (it == args.options.end()) return;
  obs::MetricsContext context;
  context.circuit = args.positional.size() > 1 ? args.positional[1] : "";
  context.scheme = args.get("scheme", "two-step");
  context.threads = globalPool().threadCount();
  obs::writeMetricsFile(it->second, context);
  std::fprintf(stderr, "wrote metrics to %s\n", it->second.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::optional<Args> parsed;
  try {
    installCancellationSignalHandlers();
    parsed = Args::parse(argc, argv);
    const Args& args = *parsed;
    if (args.positional.empty()) return usage();
    if (args.options.count("threads")) setGlobalThreadCount(args.getN("threads", 0));
    const int rc = dispatch(args);
    // A failed or unknown command did no meaningful work; don't let its
    // metrics snapshot clobber a previous valid one at the same path.
    if (rc == kExitOk) writeMetricsIfRequested(args);
    return rc;
  } catch (const OperationCancelled& e) {
    // The journal (if any) holds every completed fault; the counters reflect
    // the work actually done, so the snapshot is still worth flushing.
    std::fprintf(stderr, "interrupted: %s\n", e.what());
    if (parsed) {
      try {
        writeMetricsIfRequested(*parsed);
      } catch (const std::exception& flush) {
        std::fprintf(stderr, "error: metrics flush failed: %s\n", flush.what());
      }
    }
    return kExitInterrupted;
  } catch (const FileNotFoundError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return kExitFileNotFound;
  } catch (const ParseError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return kExitParseError;
  } catch (const InconsistentDiagnosisError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return kExitInconsistent;
  } catch (const serve::ServerFatalError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return kExitServerFatal;
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return kExitUsage;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return kExitFailure;
  }
}
