// scandiag_client — talks to a running `scandiag serve` daemon.
//
// Modes (exactly one):
//   --fault <gate> [--sa 0|1]   diagnose an injected stuck-at fault by name
//   --log <file>                diagnose a recorded tester session log
//   --defects SPEC              diagnose a generated defect-zoo scenario
//                               (k[,bridge][,open][,intermittent:p][,seed:n]);
//                               [--defect-index N] picks the scenario,
//                               [--defect-seed N] overrides the spec seed
//   --ping                      liveness probe (one round trip, no retry)
//   --stats                     fetch the server's live request totals
//
// Common options:
//   --socket PATH      unix-domain socket the server listens on (required)
//   --retries N        total attempts incl. the first (default 5); connect
//                      failures, BUSY replies, and dropped connections retry
//                      with capped exponential backoff + jitter
//   --timeout-ms N     whole-frame I/O deadline per read/write (default 5000)
//   --jitter-seed N    backoff jitter seed (default 0xC11E57; fix for tests)
//   --json             machine-readable output
//
// Exit codes:
//   0  terminal reply received (Ok, or Deadline with a usable superset)
//   1  request failed (server Error reply, retry budget exhausted, protocol
//      garbage)
//   2  usage error
//   3  --log file not found
//   5  reply unresolved (deadline degraded or widened superset) — the
//      candidates printed are a sound superset, same meaning as scandiag's
//      exit 5
//   8  --defects reply resolved only to a guaranteed superset under the
//      defect budget (deadline pressure or union beyond the fault budget) —
//      same meaning as scandiag's exit 8
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>

#include "common/json.hpp"
#include "serve/client.hpp"

using namespace scandiag;

namespace {

enum ExitCode {
  kExitOk = 0,
  kExitFailure = 1,
  kExitUsage = 2,
  kExitFileNotFound = 3,
  kExitUnresolved = 5,
  kExitDefectSuperset = 8,
};

struct Args {
  std::map<std::string, std::string> options;
  std::map<std::string, bool> flags;

  static Args parse(int argc, char** argv) {
    Args args;
    for (int i = 1; i < argc; ++i) {
      const std::string a = argv[i];
      if (a.rfind("--", 0) != 0)
        throw std::invalid_argument("unexpected positional argument '" + a + "'");
      const std::string key = a.substr(2);
      if (key == "ping" || key == "stats" || key == "json") {
        args.flags[key] = true;
      } else if (i + 1 < argc) {
        args.options[key] = argv[++i];
      } else {
        throw std::invalid_argument("option --" + key + " needs a value");
      }
    }
    return args;
  }

  std::string get(const std::string& key, const std::string& def) const {
    const auto it = options.find(key);
    return it == options.end() ? def : it->second;
  }
  std::size_t getN(const std::string& key, std::size_t def) const {
    const auto it = options.find(key);
    return it == options.end() ? def : std::strtoull(it->second.c_str(), nullptr, 0);
  }
  bool getFlag(const std::string& key) const {
    const auto it = flags.find(key);
    return it != flags.end() && it->second;
  }
};

serve::ClientOptions clientOptionsFrom(const Args& args) {
  serve::ClientOptions options;
  options.socketPath = args.get("socket", "");
  if (options.socketPath.empty())
    throw std::invalid_argument("scandiag_client needs --socket <path>");
  options.maxAttempts = args.getN("retries", 5);
  options.ioTimeoutMs = args.getN("timeout-ms", 5000);
  options.jitterSeed = args.getN("jitter-seed", 0xC11E57);
  return options;
}

int printReply(const serve::DiagnoseReply& reply, bool json, bool defectRequest) {
  if (json) {
    JsonWriter out(std::cout);
    out.beginObject()
        .field("status", serve::replyStatusName(reply.status))
        .field("requestId", reply.requestId)
        .field("detected", reply.detected)
        .field("resolved", reply.resolved)
        .field("confidence", reply.confidence)
        .field("partitionsUsed", static_cast<std::uint64_t>(reply.partitionsUsed))
        .field("partitionsTotal", static_cast<std::uint64_t>(reply.partitionsTotal))
        .field("message", reply.message);
    out.key("candidateCells").beginArray();
    for (std::uint32_t c : reply.candidateCells) out.value(static_cast<std::uint64_t>(c));
    out.endArray().endObject();
    std::printf("\n");
  } else if (reply.status == serve::ReplyStatus::Error) {
    std::fprintf(stderr, "error: request %llu failed: %s\n",
                 static_cast<unsigned long long>(reply.requestId), reply.message.c_str());
  } else if (!reply.detected) {
    std::printf("request %llu: fault not detected under the server's patterns\n",
                static_cast<unsigned long long>(reply.requestId));
  } else {
    std::printf("request %llu [%s]: %zu candidate(s), confidence %.3f, "
                "partitions %u/%u%s\n",
                static_cast<unsigned long long>(reply.requestId),
                serve::replyStatusName(reply.status), reply.candidateCells.size(),
                reply.confidence, reply.partitionsUsed, reply.partitionsTotal,
                reply.resolved ? "" : " (unresolved superset)");
    std::printf("candidates:");
    for (std::uint32_t c : reply.candidateCells) std::printf(" %u", c);
    std::printf("\n");
  }
  if (reply.status == serve::ReplyStatus::Error) return kExitFailure;
  if (reply.resolved) return kExitOk;
  // Same degradation, distinct ladder rung: a defect-scenario superset gets
  // its own exit code so harnesses can tell "defect budget hit" from a plain
  // unresolved single-fault reply.
  return defectRequest ? kExitDefectSuperset : kExitUnresolved;
}

int run(const Args& args) {
  const serve::ClientOptions options = clientOptionsFrom(args);

  if (args.getFlag("ping")) {
    serve::ping(options);
    std::printf("pong\n");
    return kExitOk;
  }

  if (args.getFlag("stats")) {
    const serve::StatsReply stats = serve::fetchStats(options);
    if (args.getFlag("json")) {
      JsonWriter out(std::cout);
      out.beginObject()
          .field("accepted", stats.accepted)
          .field("ok", stats.ok)
          .field("shed", stats.shed)
          .field("degraded", stats.degraded)
          .field("aborted", stats.aborted)
          .field("framesRejected", stats.framesRejected)
          .endObject();
      std::printf("\n");
    } else {
      std::printf("accepted %llu  ok %llu  shed %llu  degraded %llu  aborted %llu  "
                  "frames-rejected %llu\n",
                  static_cast<unsigned long long>(stats.accepted),
                  static_cast<unsigned long long>(stats.ok),
                  static_cast<unsigned long long>(stats.shed),
                  static_cast<unsigned long long>(stats.degraded),
                  static_cast<unsigned long long>(stats.aborted),
                  static_cast<unsigned long long>(stats.framesRejected));
    }
    return kExitOk;
  }

  serve::DiagnoseRequest request;
  const std::string gate = args.get("fault", "");
  const std::string logPath = args.get("log", "");
  const std::string defects = args.get("defects", "");
  const int modes = (gate.empty() ? 0 : 1) + (logPath.empty() ? 0 : 1) + (defects.empty() ? 0 : 1);
  if (modes != 1) {
    throw std::invalid_argument(
        "pick exactly one mode: --fault <gate>, --log <file>, --defects <spec>, --ping, or "
        "--stats");
  }
  if (!gate.empty()) {
    request.kind = serve::DiagnoseRequest::Kind::InjectFault;
    request.gateName = gate;
    request.stuckAt1 = args.getN("sa", 1) != 0;
  } else if (!logPath.empty()) {
    std::ifstream in(logPath);
    if (!in) {
      std::fprintf(stderr, "error: cannot open log file '%s'\n", logPath.c_str());
      return kExitFileNotFound;
    }
    std::ostringstream text;
    text << in.rdbuf();
    request.kind = serve::DiagnoseRequest::Kind::TesterLog;
    request.logText = text.str();
  } else {
    request.kind = serve::DiagnoseRequest::Kind::DefectScenario;
    request.defectSpec = defects;
    request.defectSeed = args.getN("defect-seed", 0);
    request.defectIndex = static_cast<std::uint32_t>(args.getN("defect-index", 0));
  }

  return printReply(serve::requestDiagnosis(options, request), args.getFlag("json"),
                    /*defectRequest=*/!defects.empty());
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(Args::parse(argc, argv));
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    std::fprintf(stderr,
                 "usage: scandiag_client --socket PATH "
                 "(--fault GATE [--sa 0|1] | --log FILE | "
                 "--defects SPEC [--defect-index N] [--defect-seed N] | --ping | --stats) "
                 "[--retries N] [--timeout-ms N] [--json]\n");
    return kExitUsage;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return kExitFailure;
  }
}
