#include <gtest/gtest.h>

#include "diagnosis/interval_partitioner.hpp"
#include "diagnosis/random_selection_partitioner.hpp"
#include "diagnosis/two_step_scheme.hpp"

namespace scandiag {
namespace {

bool groupIsContiguousInterval(const BitVector& group) {
  const std::size_t first = group.findFirst();
  if (first == BitVector::npos) return true;  // empty
  std::size_t expected = first;
  for (std::size_t pos = first; pos != BitVector::npos; pos = group.findNext(pos)) {
    if (pos != expected) return false;
    ++expected;
  }
  return true;
}

// ---- RandomSelectionPartitioner -------------------------------------------

TEST(RandomSelectionPartitioner, PartitionsAreValidAndDistinct) {
  RandomSelectionPartitioner gen(RandomSelectionConfig{}, 211, 16);
  Partition a = gen.next();
  Partition b = gen.next();
  EXPECT_NO_THROW(a.validate());
  EXPECT_NO_THROW(b.validate());
  EXPECT_EQ(a.groupCount(), 16u);
  bool anyDiff = false;
  for (std::size_t g = 0; g < 16; ++g) anyDiff |= (a.groups[g] != b.groups[g]);
  EXPECT_TRUE(anyDiff);
}

TEST(RandomSelectionPartitioner, RequiresPowerOfTwoGroups) {
  EXPECT_THROW(RandomSelectionPartitioner(RandomSelectionConfig{}, 100, 3),
               std::invalid_argument);
  EXPECT_THROW(RandomSelectionPartitioner(RandomSelectionConfig{}, 100, 1),
               std::invalid_argument);
  EXPECT_NO_THROW(RandomSelectionPartitioner(RandomSelectionConfig{}, 100, 4));
}

TEST(RandomSelectionPartitioner, Deterministic) {
  RandomSelectionPartitioner g1(RandomSelectionConfig{}, 100, 8);
  RandomSelectionPartitioner g2(RandomSelectionConfig{}, 100, 8);
  for (int i = 0; i < 3; ++i) {
    const Partition a = g1.next(), b = g2.next();
    for (std::size_t g = 0; g < 8; ++g) EXPECT_EQ(a.groups[g], b.groups[g]);
  }
}

TEST(RandomSelectionPartitioner, GroupsAreScattered) {
  RandomSelectionPartitioner gen(RandomSelectionConfig{}, 512, 4);
  const Partition p = gen.next();
  // With 512 positions and 4 groups, at least one group must be non-contiguous
  // (the probability of all being intervals is astronomically small).
  bool anyScattered = false;
  for (const BitVector& g : p.groups) anyScattered |= !groupIsContiguousInterval(g);
  EXPECT_TRUE(anyScattered);
}

TEST(RandomSelectionPartitioner, GroupSizesRoughlyBalanced) {
  RandomSelectionPartitioner gen(RandomSelectionConfig{}, 4096, 4);
  const Partition p = gen.next();
  for (const BitVector& g : p.groups) {
    EXPECT_GT(g.count(), 4096u / 4 / 2);
    EXPECT_LT(g.count(), 4096u / 4 * 2);
  }
}

// ---- IntervalPartitioner ---------------------------------------------------

TEST(IntervalPartitioner, GroupsAreContiguousIntervals) {
  IntervalPartitioner gen(IntervalPartitionerConfig{}, 211, 8);
  for (int i = 0; i < 3; ++i) {
    const Partition p = gen.next();
    EXPECT_NO_THROW(p.validate());
    EXPECT_EQ(p.groupCount(), 8u);
    for (const BitVector& g : p.groups) {
      EXPECT_TRUE(groupIsContiguousInterval(g));
      EXPECT_GE(g.count(), 1u);  // seed search guarantees nonempty groups
    }
  }
}

TEST(IntervalPartitioner, SuccessivePartitionsUseFreshSeeds) {
  IntervalPartitioner gen(IntervalPartitionerConfig{}, 211, 8);
  const Partition a = gen.next();
  const Partition b = gen.next();
  ASSERT_EQ(gen.usedSeeds().size(), 2u);
  EXPECT_NE(gen.usedSeeds()[0].seed, gen.usedSeeds()[1].seed);
  bool anyDiff = false;
  for (std::size_t g = 0; g < 8; ++g) anyDiff |= (a.groups[g] != b.groups[g]);
  EXPECT_TRUE(anyDiff);
}

TEST(IntervalPartitioner, FromLengthsBuildsExactIntervals) {
  const Partition p = IntervalPartitioner::fromLengths({2, 3, 1}, 6);
  EXPECT_EQ(p.groups[0].toIndices(), (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(p.groups[1].toIndices(), (std::vector<std::size_t>{2, 3, 4}));
  EXPECT_EQ(p.groups[2].toIndices(), (std::vector<std::size_t>{5}));
  EXPECT_THROW(IntervalPartitioner::fromLengths({2, 3}, 6), std::invalid_argument);
  EXPECT_THROW(IntervalPartitioner::fromLengths({4, 3}, 6), std::invalid_argument);
}

TEST(IntervalPartitioner, ParameterValidation) {
  EXPECT_THROW(IntervalPartitioner(IntervalPartitionerConfig{}, 0, 4), std::invalid_argument);
  EXPECT_THROW(IntervalPartitioner(IntervalPartitionerConfig{}, 3, 4), std::invalid_argument);
}

// ---- TwoStepScheme ---------------------------------------------------------

TEST(TwoStepScheme, FirstPartitionIsIntervalRestAreRandom) {
  SchemeConfig config;  // intervalPartitions = 1
  TwoStepScheme gen(config, 211, 8);
  const Partition first = gen.next();
  for (const BitVector& g : first.groups) EXPECT_TRUE(groupIsContiguousInterval(g));
  const Partition second = gen.next();
  bool anyScattered = false;
  for (const BitVector& g : second.groups) anyScattered |= !groupIsContiguousInterval(g);
  EXPECT_TRUE(anyScattered);
}

TEST(TwoStepScheme, IntervalCountRespected) {
  SchemeConfig config;
  config.intervalPartitions = 3;
  TwoStepScheme gen(config, 211, 8);
  for (int i = 0; i < 3; ++i) {
    const Partition p = gen.next();
    for (const BitVector& g : p.groups) EXPECT_TRUE(groupIsContiguousInterval(g));
  }
  const Partition p = gen.next();
  bool anyScattered = false;
  for (const BitVector& g : p.groups) anyScattered |= !groupIsContiguousInterval(g);
  EXPECT_TRUE(anyScattered);
}

TEST(TwoStepScheme, MatchesComponentGenerators) {
  // Two-step's partitions must equal those of standalone interval/random
  // generators configured identically (the schemes share seeds).
  SchemeConfig config;
  TwoStepScheme twoStep(config, 100, 4);
  IntervalPartitioner interval(
      IntervalPartitionerConfig{config.lfsr, config.rlen, config.intervalStartSeed}, 100, 4);
  RandomSelectionPartitioner random(RandomSelectionConfig{config.lfsr, config.randomSeed}, 100,
                                    4);
  const Partition t1 = twoStep.next();
  const Partition i1 = interval.next();
  for (std::size_t g = 0; g < 4; ++g) EXPECT_EQ(t1.groups[g], i1.groups[g]);
  const Partition t2 = twoStep.next();
  const Partition r1 = random.next();
  for (std::size_t g = 0; g < 4; ++g) EXPECT_EQ(t2.groups[g], r1.groups[g]);
}

TEST(MakeScheme, FactoryCoversAllKinds) {
  SchemeConfig config;
  for (SchemeKind kind : {SchemeKind::IntervalBased, SchemeKind::RandomSelection,
                          SchemeKind::TwoStep}) {
    auto scheme = makeScheme(kind, config, 64, 4);
    ASSERT_NE(scheme, nullptr);
    EXPECT_EQ(scheme->name(), schemeName(kind));
    EXPECT_NO_THROW(scheme->next().validate());
  }
}

TEST(TakePartitions, TakesExactly) {
  SchemeConfig config;
  auto scheme = makeScheme(SchemeKind::RandomSelection, config, 64, 4);
  const auto partitions = takePartitions(*scheme, 5);
  EXPECT_EQ(partitions.size(), 5u);
}

}  // namespace
}  // namespace scandiag
