// SweepCheckpoint / evaluateWithCheckpoint contract tests (test_diagnosis).
//
// The load-bearing claim: a run killed after K faults and resumed — at ANY
// thread count — produces a DrReport and deterministic counter totals
// bit-identical to an uninterrupted run. The kill is simulated exactly the
// way a real one manifests: a journal holding only the first K records (built
// by copying a prefix of a complete run's journal), optionally with a torn
// tail.

#include "diagnosis/checkpoint.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "common/thread_pool.hpp"
#include "netlist/synthetic_generator.hpp"
#include "obs/metrics.hpp"

namespace scandiag {
namespace {

std::string tempPath(const std::string& name) {
  const std::string path = ::testing::TempDir() + "/" + name;
  std::filesystem::remove(path);
  return path;
}

DiagnosisConfig smallConfig() {
  DiagnosisConfig c;
  c.scheme = SchemeKind::TwoStep;
  c.numPartitions = 4;
  c.groupsPerPartition = 4;
  c.numPatterns = 64;
  return c;
}

/// Workload + pipeline shared by the tests; built once (fault simulation is
/// the slow part, and determinism makes sharing safe).
struct Fixture {
  CircuitWorkload work;
  DiagnosisPipeline pipeline;

  Fixture()
      : work([] {
          WorkloadConfig wc;
          wc.numPatterns = 64;
          wc.numFaults = 40;
          return prepareWorkload(generateNamedCircuit("s526"), wc);
        }()),
        pipeline(work.topology, smallConfig()) {}
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

class CheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::MetricsRegistry::instance().setEnabled(true);
    obs::MetricsRegistry::instance().reset();
    globalCancelToken().reset();
  }
  void TearDown() override {
    obs::MetricsRegistry::instance().reset();
    globalCancelToken().reset();
    setGlobalThreadCount(0);
  }
};

TEST_F(CheckpointTest, FaultRecordEncodeDecodeRoundTrip) {
  FaultRecord record;
  record.sweepId = 0x0123456789ABCDEFULL;
  record.faultIndex = 41;
  record.candidateCount = 7;
  record.actualCount = 3;
  record.verdictDigest = 0xFEEDFACECAFEBEEFULL;
  record.counterDeltas = {{0, 12}, {5, 1}, {static_cast<std::uint16_t>(obs::kNumCounters - 1), 9}};
  const FaultRecord back = decodeFaultRecord(encodeFaultRecord(record));
  EXPECT_EQ(back.sweepId, record.sweepId);
  EXPECT_EQ(back.faultIndex, record.faultIndex);
  EXPECT_EQ(back.candidateCount, record.candidateCount);
  EXPECT_EQ(back.actualCount, record.actualCount);
  EXPECT_EQ(back.verdictDigest, record.verdictDigest);
  EXPECT_EQ(back.counterDeltas, record.counterDeltas);
}

TEST_F(CheckpointTest, DecodeRejectsMalformedPayloads) {
  const std::string good = encodeFaultRecord(FaultRecord{1, 2, 3, 4, 5, {{0, 6}}});
  EXPECT_NO_THROW(decodeFaultRecord(good));
  EXPECT_THROW(decodeFaultRecord(good.substr(0, good.size() - 1)), JournalCorruptError);
  EXPECT_THROW(decodeFaultRecord(good + "x"), JournalCorruptError);
  // A counter index past the registry cannot be replayed.
  FaultRecord wild{1, 2, 3, 4, 5, {{static_cast<std::uint16_t>(obs::kNumCounters), 6}}};
  EXPECT_THROW(decodeFaultRecord(encodeFaultRecord(wild)), JournalCorruptError);
}

TEST_F(CheckpointTest, SweepIdSeparatesConfigs) {
  DiagnosisConfig a = smallConfig();
  DiagnosisConfig b = smallConfig();
  b.pruning = true;
  DiagnosisConfig c = smallConfig();
  c.numPartitions = 8;
  EXPECT_NE(sweepIdFor(a), sweepIdFor(b));
  EXPECT_NE(sweepIdFor(a), sweepIdFor(c));
  EXPECT_EQ(sweepIdFor(a), sweepIdFor(smallConfig()));
}

TEST_F(CheckpointTest, FreshCheckpointMatchesPlainEvaluate) {
  Fixture& f = fixture();
  const DrReport plain = f.pipeline.evaluate(f.work.responses);

  const std::string path = tempPath("fresh.journal");
  SweepCheckpoint checkpoint(path, 0xD16, "fresh test", /*resume=*/false);
  const std::uint64_t sweepId = sweepIdFor(smallConfig());
  const DrReport ckpt =
      evaluateWithCheckpoint(f.pipeline, f.work.responses, &checkpoint, sweepId);

  EXPECT_EQ(ckpt.dr, plain.dr);
  EXPECT_EQ(ckpt.faults, plain.faults);
  EXPECT_EQ(ckpt.sumCandidates, plain.sumCandidates);
  EXPECT_EQ(ckpt.sumActual, plain.sumActual);
  // Every detected fault became one durable record.
  EXPECT_EQ(readJournal(path).records.size(), plain.faults);
}

TEST_F(CheckpointTest, ResumeAfterPrefixIsBitIdenticalAtAnyThreadCount) {
  Fixture& f = fixture();
  const std::uint64_t sweepId = sweepIdFor(smallConfig());
  const std::uint64_t digest = 0xABCD;

  // Uninterrupted reference run (and its counter totals). Reset after the
  // fixture is (possibly) built so workload-prep counters don't pollute the
  // reference snapshot.
  obs::MetricsRegistry::instance().reset();
  const std::string fullPath = tempPath("full.journal");
  DrReport full;
  {
    SweepCheckpoint checkpoint(fullPath, digest, "resume test", false);
    full = evaluateWithCheckpoint(f.pipeline, f.work.responses, &checkpoint, sweepId);
  }
  obs::MetricsSnapshot fullCounters = obs::MetricsRegistry::instance().snapshot();
  const JournalContents complete = readJournal(fullPath);
  ASSERT_GT(complete.records.size(), 4u);

  for (std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
    for (bool tornTail : {false, true}) {
      // "Kill" after K faults: a journal holding a prefix of the records,
      // optionally with a torn frame at EOF (the mid-append kill artifact).
      const std::size_t keep = complete.records.size() / 2;
      const std::string path = tempPath("resume.journal");
      {
        JournalWriter writer = JournalWriter::create(path, digest, "resume test");
        for (std::size_t r = 0; r < keep; ++r) {
          writer.append(complete.records[r].type, complete.records[r].payload);
        }
      }
      if (tornTail) {
        // The tear eats record keep-1; resume must truncate and re-run it.
        std::filesystem::resize_file(path, std::filesystem::file_size(path) - 3);
      }

      setGlobalThreadCount(threads);
      obs::MetricsRegistry::instance().reset();
      SweepCheckpoint checkpoint(path, digest, "resume test", /*resume=*/true);
      EXPECT_EQ(checkpoint.hadTruncatedTail(), tornTail);
      const DrReport resumed =
          evaluateWithCheckpoint(f.pipeline, f.work.responses, &checkpoint, sweepId);

      EXPECT_EQ(resumed.dr, full.dr) << threads << " threads, torn=" << tornTail;
      EXPECT_EQ(resumed.faults, full.faults);
      EXPECT_EQ(resumed.sumCandidates, full.sumCandidates);
      EXPECT_EQ(resumed.sumActual, full.sumActual);

      const obs::MetricsSnapshot counters = obs::MetricsRegistry::instance().snapshot();
#if SCANDIAG_METRICS_ENABLED
      // written + replayed is invariant; everything else matches the
      // uninterrupted run exactly (the replayed faults' deltas re-applied).
      EXPECT_EQ(counters.counter(obs::Counter::JournalRecordsWritten) +
                    counters.counter(obs::Counter::JournalRecordsReplayed),
                fullCounters.counter(obs::Counter::JournalRecordsWritten));
      EXPECT_EQ(counters.counter(obs::Counter::JournalRecordsReplayed),
                tornTail ? keep - 1 : keep);
#endif
      for (std::size_t c = 0; c < obs::kNumCounters; ++c) {
        const auto counter = static_cast<obs::Counter>(c);
        if (counter == obs::Counter::JournalRecordsWritten ||
            counter == obs::Counter::JournalRecordsReplayed) {
          continue;
        }
        EXPECT_EQ(counters.counters[c], fullCounters.counters[c])
            << obs::counterName(counter) << " at " << threads << " threads";
      }

      // The resumed journal now covers the full sweep and replays completely.
      obs::MetricsRegistry::instance().reset();
      SweepCheckpoint reopened(path, digest, "resume test", true);
      EXPECT_EQ(reopened.loadedRecords(), complete.records.size());
    }
  }
}

TEST_F(CheckpointTest, DuplicateRecordsResolveLastWriteWins) {
  const std::uint64_t digest = 0x99;
  const std::string path = tempPath("dupes.journal");
  {
    JournalWriter writer = JournalWriter::create(path, digest, "dupes");
    writer.append(1, encodeFaultRecord(FaultRecord{7, 3, /*candidates=*/100, 1, 0xA, {}}));
    writer.append(1, encodeFaultRecord(FaultRecord{7, 4, 50, 2, 0xB, {}}));
    // Re-run after a crash between append and observation: same fault again.
    writer.append(1, encodeFaultRecord(FaultRecord{7, 3, /*candidates=*/200, 1, 0xC, {}}));
  }
  SweepCheckpoint checkpoint(path, digest, "dupes", /*resume=*/true);
  EXPECT_EQ(checkpoint.loadedRecords(), 2u);
  const FaultRecord* rec = checkpoint.find(7, 3);
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->candidateCount, 200u);
  EXPECT_EQ(rec->verdictDigest, 0xCu);
  EXPECT_EQ(checkpoint.find(7, 99), nullptr);
  EXPECT_EQ(checkpoint.find(8, 3), nullptr);
}

TEST_F(CheckpointTest, ResumeRefusesMismatchedSetupDigest) {
  const std::string path = tempPath("mismatch.journal");
  { SweepCheckpoint checkpoint(path, 0x111, "run A", false); }
  EXPECT_THROW(SweepCheckpoint(path, 0x222, "run B", true), JournalDigestMismatchError);
  // And a fresh create refuses to clobber the existing journal.
  EXPECT_THROW(SweepCheckpoint(path, 0x111, "run A", false), JournalError);
}

TEST_F(CheckpointTest, CancellationUnwindsBetweenFaultsLeavingValidJournal) {
  Fixture& f = fixture();
  const std::string path = tempPath("cancel.journal");
  SweepCheckpoint checkpoint(path, 0x5, "cancel test", false);
  CancellationToken token;
  token.cancel("test cancel");
  const RunControl control{&token, nullptr};
  EXPECT_THROW(evaluateWithCheckpoint(f.pipeline, f.work.responses, &checkpoint,
                                      sweepIdFor(smallConfig()), control),
               OperationCancelled);
  // Pre-cancelled ⇒ no fault ran, and the journal is valid (header only).
  const JournalContents contents = readJournal(path);
  EXPECT_EQ(contents.records.size(), 0u);
  EXPECT_FALSE(contents.truncatedTail);
}

TEST_F(CheckpointTest, VerdictDigestIsStableAcrossRuns) {
  Fixture& f = fixture();
  const FaultResponse& response = f.work.responses.front();
  std::uint64_t a = 0, b = 0;
  const FaultDiagnosis da = f.pipeline.diagnoseDigested(response, &a);
  const FaultDiagnosis db = f.pipeline.diagnoseDigested(response, &b);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, 0u);
  EXPECT_EQ(da.candidateCount, db.candidateCount);
  // And matches the undigested path's numbers.
  const FaultDiagnosis plain = f.pipeline.diagnose(response);
  EXPECT_EQ(da.candidateCount, plain.candidateCount);
  EXPECT_EQ(da.actualCount, plain.actualCount);
}

}  // namespace
}  // namespace scandiag
