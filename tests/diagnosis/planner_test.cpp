#include "diagnosis/planner.hpp"

#include <gtest/gtest.h>

#include "netlist/synthetic_generator.hpp"

namespace scandiag {
namespace {

TEST(Planner, RecommendGroupCountMatchesPaperChoices) {
  EXPECT_EQ(recommendGroupCount(29), 4u);     // s953: paper uses 4
  EXPECT_EQ(recommendGroupCount(211), 16u);   // Table 2 chains: paper uses 16
  EXPECT_EQ(recommendGroupCount(6173), 64u);  // SOC-1 (paper uses 32; same decade)
  EXPECT_EQ(recommendGroupCount(2), 2u);
  EXPECT_THROW(recommendGroupCount(0), std::invalid_argument);
}

TEST(Planner, RecommendGroupCountTinyChains) {
  // Regression: chainLength 1 used to hit std::clamp(pow2, 2, 1) — lo > hi is
  // UB. The chain-length cap must win: a one-cell chain admits exactly one
  // (degenerate) group, and chains of 2-4 cells get the 2-group floor.
  EXPECT_EQ(recommendGroupCount(1), 1u);
  EXPECT_EQ(recommendGroupCount(2), 2u);
  EXPECT_EQ(recommendGroupCount(3), 2u);
  EXPECT_EQ(recommendGroupCount(4), 2u);
}

TEST(Planner, RecommendationIsPowerOfTwoAndBounded) {
  for (std::size_t len : {2u, 3u, 17u, 100u, 999u, 12345u}) {
    const std::size_t g = recommendGroupCount(len);
    EXPECT_EQ(g & (g - 1), 0u) << len;
    EXPECT_GE(g, 2u);
    EXPECT_LE(g, 64u);
    EXPECT_LE(g, len);
  }
}

class PlannerFixture : public ::testing::Test {
 protected:
  static const CircuitWorkload& work() {
    static const CircuitWorkload w = [] {
      WorkloadConfig wc;
      wc.numPatterns = 128;
      wc.numFaults = 150;
      return prepareWorkload(generateNamedCircuit("s9234"), wc);
    }();
    return w;
  }
};

TEST_F(PlannerFixture, PlanMeetsTargetAtMinimalSessions) {
  PlanRequest request;
  request.targetDr = 0.5;
  request.maxPartitions = 12;
  const PlanResult plan = planDiagnosis(work().topology, work().responses, request);
  ASSERT_TRUE(plan.feasible);
  EXPECT_LE(plan.achievedDr, 0.5);
  EXPECT_EQ(plan.cost.sessions, plan.config.numPartitions * plan.config.groupsPerPartition);

  // No candidate configuration meets the target with fewer sessions.
  for (std::size_t g : {4u, 8u, 16u, 32u, 64u}) {
    DiagnosisConfig config = plan.config;
    config.groupsPerPartition = g;
    config.numPartitions = 12;
    const auto sweep = DiagnosisPipeline(work().topology, config).evaluateSweep(work().responses);
    for (std::size_t p = 0; p < sweep.size(); ++p) {
      if (sweep[p] <= 0.5) {
        EXPECT_GE((p + 1) * g, plan.cost.sessions) << "groups=" << g;
        break;
      }
    }
  }
}

TEST_F(PlannerFixture, TighterTargetCostsMoreSessions) {
  PlanRequest loose, tight;
  loose.targetDr = 1.0;
  tight.targetDr = 0.05;
  const PlanResult a = planDiagnosis(work().topology, work().responses, loose);
  const PlanResult b = planDiagnosis(work().topology, work().responses, tight);
  ASSERT_TRUE(a.feasible);
  ASSERT_TRUE(b.feasible);
  EXPECT_LE(a.cost.sessions, b.cost.sessions);
}

TEST_F(PlannerFixture, InfeasibleTargetReported) {
  PlanRequest request;
  request.targetDr = -1.0;  // DR >= 0 in exact mode: unreachable
  request.maxPartitions = 4;
  const PlanResult plan = planDiagnosis(work().topology, work().responses, request);
  EXPECT_FALSE(plan.feasible);
}

TEST_F(PlannerFixture, CustomCandidateListRespected) {
  PlanRequest request;
  request.targetDr = 0.8;
  request.groupCandidates = {8};
  const PlanResult plan = planDiagnosis(work().topology, work().responses, request);
  if (plan.feasible) EXPECT_EQ(plan.config.groupsPerPartition, 8u);
}

TEST(Planner, EmptySampleRejected) {
  const ScanTopology topo = ScanTopology::singleChain(16);
  EXPECT_THROW(planDiagnosis(topo, {}, PlanRequest{}), std::invalid_argument);
}

FaultResponse tinyResponse(std::size_t numCells, std::size_t failing) {
  FaultResponse r;
  r.failingCells = BitVector(numCells);
  r.failingCells.set(failing);
  r.failingCellOrdinals.push_back(failing);
  BitVector stream(4);
  stream.set(0);
  r.errorStreams.push_back(stream);
  return r;
}

TEST(Planner, TinyChainExplicitCandidatesClampedToFeasibleGroups) {
  // Regression: explicit candidates larger than the chain used to reach
  // buildPartitions unclamped (8 groups on a 3-cell chain), which the
  // random-selection partitioner rejects. The clamp must both cap at the
  // chain length and round down to a power of two.
  const ScanTopology topo = ScanTopology::singleChain(3);
  PlanRequest request;
  request.targetDr = 10.0;  // trivially reachable: exercise every candidate
  request.maxPartitions = 2;
  request.numPatterns = 4;
  request.groupCandidates = {8, 16};
  PlanResult plan;
  ASSERT_NO_THROW(plan = planDiagnosis(topo, {tinyResponse(3, 1)}, request));
  ASSERT_TRUE(plan.feasible);
  EXPECT_EQ(plan.config.groupsPerPartition, 2u);
}

TEST(Planner, TinyChainFallbackProposesFeasibleGroups) {
  // Same regression for the default candidate list: on a 2-cell chain every
  // default candidate (4..64) exceeds the chain, so the fallback must offer
  // the 2-group floor rather than an empty (or infeasible) candidate set.
  const ScanTopology topo = ScanTopology::singleChain(2);
  PlanRequest request;
  request.targetDr = 10.0;
  request.maxPartitions = 2;
  request.numPatterns = 4;
  PlanResult plan;
  ASSERT_NO_THROW(plan = planDiagnosis(topo, {tinyResponse(2, 0)}, request));
  ASSERT_TRUE(plan.feasible);
  EXPECT_EQ(plan.config.groupsPerPartition, 2u);
}

TEST_F(PlannerFixture, ReportedCostMatchesChosenConfigExactly) {
  // Regression: the reported cost used to be computed from the chosen p + 1
  // while best.config still carried the maxPartitions sweep budget, so cost
  // and config could diverge. Pin the invariant and the exact cycle count.
  PlanRequest request;
  request.targetDr = 0.5;
  request.maxPartitions = 12;
  const PlanResult plan = planDiagnosis(work().topology, work().responses, request);
  ASSERT_TRUE(plan.feasible);
  EXPECT_EQ(plan.cost.sessions, plan.config.numPartitions * plan.config.groupsPerPartition);
  const DiagnosisCost recomputed =
      partitionRunCost(plan.config.numPartitions, plan.config.groupsPerPartition,
                       plan.config.numPatterns, work().topology.maxChainLength());
  EXPECT_EQ(plan.cost.sessions, recomputed.sessions);
  EXPECT_EQ(plan.cost.clockCycles, recomputed.clockCycles);
  // The chosen partition count is what the sweep found, never the budget.
  EXPECT_LE(plan.config.numPartitions, request.maxPartitions);
}

}  // namespace
}  // namespace scandiag
