// Detection invariants: analyzeChecked must flag physically impossible
// verdict patterns (a real permanent fault is seen by every partition) and
// must degrade to a candidate superset instead of an empty intersection.

#include <gtest/gtest.h>

#include "diagnosis/candidate_analyzer.hpp"
#include "diagnosis/experiment_driver.hpp"
#include "diagnosis/interval_partitioner.hpp"
#include "diagnosis/session_engine.hpp"

namespace scandiag {
namespace {

FaultResponse makeResponse(std::size_t numCells, const std::vector<std::size_t>& failing) {
  FaultResponse r;
  r.failingCells = BitVector(numCells);
  for (std::size_t c : failing) {
    r.failingCells.set(c);
    r.failingCellOrdinals.push_back(c);
    BitVector stream(4);
    stream.set(0);
    r.errorStreams.push_back(stream);
  }
  return r;
}

struct Fixture {
  ScanTopology topo = ScanTopology::singleChain(12);
  SessionEngine engine{topo, SessionConfig{SignatureMode::Exact, 4}};
  CandidateAnalyzer analyzer{topo};
  // Partition A: thirds; B: halves. Fault at 5 -> A fails group 1 [4..7],
  // B fails group 0 [0..5], intersection {4, 5}.
  std::vector<Partition> parts{IntervalPartitioner::fromLengths({4, 4, 4}, 12),
                               IntervalPartitioner::fromLengths({6, 6}, 12)};
  FaultResponse response = makeResponse(12, {5});
};

TEST(AnalyzeChecked, CleanVerdictsMatchAnalyze) {
  Fixture f;
  const GroupVerdicts verdicts = f.engine.run(f.parts, f.response);
  const CheckedAnalysis checked = f.analyzer.analyzeChecked(f.parts, verdicts);
  EXPECT_TRUE(checked.consistent());
  EXPECT_EQ(checked.candidates.cells.toIndices(),
            f.analyzer.analyze(f.parts, verdicts).cells.toIndices());
  EXPECT_EQ(checked.usedPartitions, (std::vector<std::size_t>{0, 1}));
}

TEST(AnalyzeChecked, AllPassingScheduleIsConsistentlyEmpty) {
  Fixture f;
  GroupVerdicts verdicts = f.engine.run(f.parts, f.response);
  for (BitVector& row : verdicts.failing) row.resetAll();
  const CheckedAnalysis checked = f.analyzer.analyzeChecked(f.parts, verdicts);
  EXPECT_TRUE(checked.consistent());
  EXPECT_EQ(checked.candidates.cellCount(), 0u);
}

TEST(AnalyzeChecked, LostFailVerdictFlagsAllGroupsPassing) {
  Fixture f;
  GroupVerdicts verdicts = f.engine.run(f.parts, f.response);
  verdicts.failing[1].reset(0);  // B's only failing group reads pass
  const CheckedAnalysis checked = f.analyzer.analyzeChecked(f.parts, verdicts);
  ASSERT_EQ(checked.inconsistencies.size(), 1u);
  EXPECT_EQ(checked.inconsistencies[0].kind, InconsistencyKind::AllGroupsPassing);
  EXPECT_EQ(checked.inconsistencies[0].partition, 1u);
  // B is excluded; the superset is A's failing union, which keeps cell 5.
  EXPECT_EQ(checked.candidates.cells.toIndices(), (std::vector<std::size_t>{4, 5, 6, 7}));
  EXPECT_EQ(checked.usedPartitions, (std::vector<std::size_t>{0}));
}

TEST(AnalyzeChecked, SpuriousFailFlagsPhantomGroup) {
  Fixture f;
  GroupVerdicts verdicts = f.engine.run(f.parts, f.response);
  verdicts.failing[0].set(2);  // pass->fail on A group 2 [8..11], disjoint from {4,5}
  const CheckedAnalysis checked = f.analyzer.analyzeChecked(f.parts, verdicts);
  ASSERT_EQ(checked.inconsistencies.size(), 1u);
  EXPECT_EQ(checked.inconsistencies[0].kind, InconsistencyKind::PhantomFailingGroup);
  EXPECT_EQ(checked.inconsistencies[0].partition, 0u);
  EXPECT_EQ(checked.inconsistencies[0].group, 2u);
  // The phantom widens a union but cannot shrink the intersection.
  EXPECT_EQ(checked.candidates.cells.toIndices(), (std::vector<std::size_t>{4, 5}));
}

TEST(AnalyzeChecked, DisjointUnionIsSkippedNotIntersected) {
  // Third partition in pairs; move its fail verdict from the true group [4,5]
  // to the unrelated group [0,1] — its union is now disjoint from {4..7}.
  Fixture f;
  f.parts.push_back(IntervalPartitioner::fromLengths({2, 2, 2, 2, 2, 2}, 12));
  GroupVerdicts verdicts = f.engine.run(f.parts, f.response);
  verdicts.failing[2].reset(2);
  verdicts.failing[2].set(0);
  const CheckedAnalysis checked = f.analyzer.analyzeChecked(f.parts, verdicts);
  ASSERT_FALSE(checked.consistent());
  EXPECT_EQ(checked.inconsistencies[0].kind, InconsistencyKind::DisjointFailingUnion);
  EXPECT_EQ(checked.inconsistencies[0].partition, 2u);
  // Partitions A and B still intersect to {4, 5}; cell 5 survives.
  EXPECT_TRUE(checked.candidates.cells.test(5));
  EXPECT_EQ(checked.usedPartitions, (std::vector<std::size_t>{0, 1}));
}

TEST(AnalyzeChecked, ReportsDescribeThemselves) {
  Fixture f;
  GroupVerdicts verdicts = f.engine.run(f.parts, f.response);
  verdicts.failing[1].reset(0);
  const CheckedAnalysis checked = f.analyzer.analyzeChecked(f.parts, verdicts);
  ASSERT_FALSE(checked.inconsistencies.empty());
  const std::string text = checked.inconsistencies[0].describe();
  EXPECT_NE(text.find("partition 1"), std::string::npos) << text;
  EXPECT_NE(text.find(inconsistencyKindName(InconsistencyKind::AllGroupsPassing)),
            std::string::npos)
      << text;
}

// Exhaustive single-flip sweep: for a single-failing-cell fault, a flip at
// ANY (partition, group) must leave analyzeChecked with a nonempty candidate
// set that still contains the true cell — detection plus degradation alone,
// no retries.
TEST(AnalyzeChecked, SingleFlipAnywhereKeepsTrueCell) {
  for (const SchemeKind scheme :
       {SchemeKind::IntervalBased, SchemeKind::RandomSelection, SchemeKind::TwoStep}) {
    const ScanTopology topo = ScanTopology::singleChain(24);
    DiagnosisConfig config;
    config.scheme = scheme;
    config.numPartitions = 4;
    config.groupsPerPartition = 4;
    config.numPatterns = 4;
    const std::vector<Partition> parts = buildPartitions(config, topo.maxChainLength());
    const SessionEngine engine(topo, SessionConfig{SignatureMode::Exact, 4});
    const CandidateAnalyzer analyzer(topo);
    for (const std::size_t cell : {std::size_t{0}, std::size_t{11}, std::size_t{23}}) {
      const FaultResponse response = makeResponse(24, {cell});
      const GroupVerdicts clean = engine.run(parts, response);
      for (std::size_t p = 0; p < parts.size(); ++p) {
        for (std::size_t g = 0; g < parts[p].groupCount(); ++g) {
          GroupVerdicts noisy = clean;
          noisy.failing[p].flip(g);
          const CheckedAnalysis checked = analyzer.analyzeChecked(parts, noisy);
          EXPECT_GT(checked.candidates.cellCount(), 0u)
              << schemeName(scheme) << " cell " << cell << " flip p" << p << " g" << g;
          EXPECT_TRUE(checked.candidates.cells.test(cell))
              << schemeName(scheme) << " cell " << cell << " flip p" << p << " g" << g;
        }
      }
    }
  }
}

}  // namespace
}  // namespace scandiag
