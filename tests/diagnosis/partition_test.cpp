#include "diagnosis/partition.hpp"

#include <gtest/gtest.h>

namespace scandiag {
namespace {

Partition makePartition(std::size_t length, const std::vector<std::vector<std::size_t>>& groups) {
  Partition p;
  for (const auto& g : groups) {
    BitVector mask(length);
    for (std::size_t pos : g) mask.set(pos);
    p.groups.push_back(mask);
  }
  return p;
}

TEST(Partition, ValidPartitionPasses) {
  const Partition p = makePartition(6, {{0, 1}, {2, 3, 4}, {5}});
  EXPECT_NO_THROW(p.validate());
  EXPECT_EQ(p.groupCount(), 3u);
  EXPECT_EQ(p.length(), 6u);
}

TEST(Partition, GroupOfFindsContainingGroup) {
  const Partition p = makePartition(6, {{0, 1}, {2, 3, 4}, {5}});
  EXPECT_EQ(p.groupOf(0), 0u);
  EXPECT_EQ(p.groupOf(3), 1u);
  EXPECT_EQ(p.groupOf(5), 2u);
}

TEST(Partition, GroupTableMatchesGroupOf) {
  const Partition p = makePartition(8, {{0, 7}, {1, 2, 3}, {4, 5, 6}});
  const auto table = p.groupTable();
  for (std::size_t pos = 0; pos < 8; ++pos) EXPECT_EQ(table[pos], p.groupOf(pos));
}

TEST(Partition, OverlapDetected) {
  const Partition p = makePartition(4, {{0, 1}, {1, 2, 3}});
  EXPECT_THROW(p.validate(), std::logic_error);
}

TEST(Partition, GapDetected) {
  const Partition p = makePartition(4, {{0, 1}, {3}});
  EXPECT_THROW(p.validate(), std::logic_error);
  EXPECT_THROW(p.groupOf(2), std::logic_error);
}

TEST(Partition, EmptyPartitionInvalid) {
  Partition p;
  EXPECT_THROW(p.validate(), std::logic_error);
}

TEST(Partition, EmptyGroupIsAllowed) {
  // An empty group is legal (e.g. a truncated interval tail); it just never
  // selects anything.
  const Partition p = makePartition(3, {{0, 1, 2}, {}});
  EXPECT_NO_THROW(p.validate());
}

}  // namespace
}  // namespace scandiag
