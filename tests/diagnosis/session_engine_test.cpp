#include "diagnosis/session_engine.hpp"

#include <gtest/gtest.h>

#include "bist/primitive_polys.hpp"
#include "diagnosis/interval_partitioner.hpp"

namespace scandiag {
namespace {

/// Hand-built response: failing cells at the given cell ids, each erring on
/// pattern `t = cell % patterns` (arbitrary but deterministic).
FaultResponse makeResponse(std::size_t numCells, std::size_t patterns,
                           const std::vector<std::size_t>& failing) {
  FaultResponse r;
  r.failingCells = BitVector(numCells);
  for (std::size_t c : failing) {
    r.failingCells.set(c);
    r.failingCellOrdinals.push_back(c);
    BitVector stream(patterns);
    stream.set(c % patterns);
    r.errorStreams.push_back(stream);
  }
  return r;
}

TEST(SessionEngine, ExactVerdictsMatchGroupMembership) {
  const ScanTopology topo = ScanTopology::singleChain(12);
  const SessionEngine engine(topo, SessionConfig{SignatureMode::Exact, 8});
  // Partition: [0..3], [4..7], [8..11].
  const std::vector<Partition> parts{IntervalPartitioner::fromLengths({4, 4, 4}, 12)};
  const FaultResponse r = makeResponse(12, 8, {1, 9});
  const GroupVerdicts v = engine.run(parts, r);
  EXPECT_TRUE(v.failing[0].test(0));
  EXPECT_FALSE(v.failing[0].test(1));
  EXPECT_TRUE(v.failing[0].test(2));
  EXPECT_FALSE(v.hasSignatures);
}

TEST(SessionEngine, NoFailingCellsMeansAllGroupsPass) {
  const ScanTopology topo = ScanTopology::singleChain(12);
  const SessionEngine engine(topo, SessionConfig{SignatureMode::Exact, 8});
  const std::vector<Partition> parts{IntervalPartitioner::fromLengths({6, 6}, 12)};
  const FaultResponse r = makeResponse(12, 8, {});
  const GroupVerdicts v = engine.run(parts, r);
  EXPECT_TRUE(v.failing[0].none());
}

TEST(SessionEngine, MultiChainVerdictsUseShiftPositions) {
  // Two chains of 6; failing cell 7 sits on chain 1 at position 1, so the
  // group containing position 1 fails even though cell 1 (chain 0) is fine.
  const ScanTopology topo = ScanTopology::blockChains(12, 2);
  const SessionEngine engine(topo, SessionConfig{SignatureMode::Exact, 8});
  const std::vector<Partition> parts{IntervalPartitioner::fromLengths({2, 2, 2}, 6)};
  const FaultResponse r = makeResponse(12, 8, {7});
  const GroupVerdicts v = engine.run(parts, r);
  EXPECT_TRUE(v.failing[0].test(0));   // positions 0-1
  EXPECT_FALSE(v.failing[0].test(1));
  EXPECT_FALSE(v.failing[0].test(2));
}

TEST(SessionEngine, MisrModeFlagsNonzeroSignatures) {
  const ScanTopology topo = ScanTopology::singleChain(12);
  SessionConfig config{SignatureMode::Misr, 8};
  config.misrDegree = 16;
  const SessionEngine engine(topo, config);
  const std::vector<Partition> parts{IntervalPartitioner::fromLengths({4, 4, 4}, 12)};
  const FaultResponse r = makeResponse(12, 8, {5});
  const GroupVerdicts v = engine.run(parts, r);
  EXPECT_TRUE(v.hasSignatures);
  EXPECT_EQ(v.signatureDegree, 16u);
  EXPECT_FALSE(v.failing[0].test(0));
  EXPECT_TRUE(v.failing[0].test(1));
  EXPECT_NE(v.errorSig[0][1], 0u);
  EXPECT_EQ(v.errorSig[0][0], 0u);
}

TEST(SessionEngine, GroupSignatureIsXorOfCellSignatures) {
  const ScanTopology topo = ScanTopology::singleChain(12);
  SessionConfig config{SignatureMode::Misr, 8};
  const SessionEngine engine(topo, config);
  const std::vector<Partition> parts{IntervalPartitioner::fromLengths({12}, 12)};

  const FaultResponse both = makeResponse(12, 8, {2, 9});
  const FaultResponse only2 = makeResponse(12, 8, {2});
  const FaultResponse only9 = makeResponse(12, 8, {9});
  const std::uint64_t sBoth = engine.run(parts, both).errorSig[0][0];
  const std::uint64_t s2 = engine.run(parts, only2).errorSig[0][0];
  const std::uint64_t s9 = engine.run(parts, only9).errorSig[0][0];
  EXPECT_EQ(sBoth, s2 ^ s9);
}

TEST(SessionEngine, CellErrorSignatureMatchesFullMisrRun) {
  // End-to-end consistency: engine's per-cell signature equals clocking a
  // real MISR over the cell's masked scan-out stream.
  const std::size_t L = 9, patterns = 5, cell = 4;
  const ScanTopology topo = ScanTopology::singleChain(L);
  SessionConfig config{SignatureMode::Misr, patterns};
  const SessionEngine engine(topo, config);

  BitVector stream(patterns);
  stream.set(0);
  stream.set(3);
  const std::uint64_t viaEngine = engine.cellErrorSignature(cell, stream);

  Misr misr(config.misrDegree, primitiveTapMask(config.misrDegree), 1);
  for (std::size_t t = 0; t < patterns; ++t)
    for (std::size_t p = 0; p < L; ++p)
      misr.clock((p == cell && stream.test(t)) ? 1 : 0);
  EXPECT_EQ(viaEngine, misr.signature());
}

TEST(SessionEngine, ExactModeComputesPruneSignaturesOnRequest) {
  const ScanTopology topo = ScanTopology::singleChain(12);
  SessionConfig config{SignatureMode::Exact, 8};
  config.computeSignatures = true;
  config.pruneDegree = 32;
  const SessionEngine engine(topo, config);
  const std::vector<Partition> parts{IntervalPartitioner::fromLengths({6, 6}, 12)};
  const GroupVerdicts v = engine.run(parts, makeResponse(12, 8, {3}));
  EXPECT_TRUE(v.hasSignatures);
  EXPECT_EQ(v.signatureDegree, 32u);
  EXPECT_NE(v.errorSig[0][0], 0u);
}

TEST(SessionEngine, PartitionLengthMismatchRejected) {
  const ScanTopology topo = ScanTopology::singleChain(12);
  const SessionEngine engine(topo, SessionConfig{SignatureMode::Exact, 8});
  const std::vector<Partition> parts{IntervalPartitioner::fromLengths({5, 5}, 10)};
  EXPECT_THROW(engine.run(parts, makeResponse(12, 8, {3})), std::invalid_argument);
}

}  // namespace
}  // namespace scandiag
