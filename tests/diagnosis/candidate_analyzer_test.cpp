#include "diagnosis/candidate_analyzer.hpp"

#include <gtest/gtest.h>

#include "diagnosis/experiment_driver.hpp"
#include "diagnosis/interval_partitioner.hpp"
#include "netlist/synthetic_generator.hpp"

namespace scandiag {
namespace {

FaultResponse makeResponse(std::size_t numCells, const std::vector<std::size_t>& failing) {
  FaultResponse r;
  r.failingCells = BitVector(numCells);
  for (std::size_t c : failing) {
    r.failingCells.set(c);
    r.failingCellOrdinals.push_back(c);
    BitVector stream(4);
    stream.set(0);
    r.errorStreams.push_back(stream);
  }
  return r;
}

TEST(CandidateAnalyzer, SinglePartitionKeepsFailingGroups) {
  const ScanTopology topo = ScanTopology::singleChain(12);
  const SessionEngine engine(topo, SessionConfig{SignatureMode::Exact, 4});
  const CandidateAnalyzer analyzer(topo);
  const std::vector<Partition> parts{IntervalPartitioner::fromLengths({4, 4, 4}, 12)};
  const FaultResponse r = makeResponse(12, {5});
  const CandidateSet c = analyzer.analyze(parts, engine.run(parts, r));
  EXPECT_EQ(c.cells.toIndices(), (std::vector<std::size_t>{4, 5, 6, 7}));
}

TEST(CandidateAnalyzer, IntersectionAcrossPartitions) {
  const ScanTopology topo = ScanTopology::singleChain(12);
  const SessionEngine engine(topo, SessionConfig{SignatureMode::Exact, 4});
  const CandidateAnalyzer analyzer(topo);
  // Partition A: thirds; partition B: halves. Fail at 5: A keeps [4..7],
  // B keeps [0..5]; intersection [4,5].
  const std::vector<Partition> parts{IntervalPartitioner::fromLengths({4, 4, 4}, 12),
                                     IntervalPartitioner::fromLengths({6, 6}, 12)};
  const FaultResponse r = makeResponse(12, {5});
  const CandidateSet c = analyzer.analyze(parts, engine.run(parts, r));
  EXPECT_EQ(c.cells.toIndices(), (std::vector<std::size_t>{4, 5}));
}

TEST(CandidateAnalyzer, MultiChainExpandsAcrossChains) {
  const ScanTopology topo = ScanTopology::blockChains(8, 2);  // two chains of 4
  const SessionEngine engine(topo, SessionConfig{SignatureMode::Exact, 4});
  const CandidateAnalyzer analyzer(topo);
  const std::vector<Partition> parts{IntervalPartitioner::fromLengths({2, 2}, 4)};
  const FaultResponse r = makeResponse(8, {1});  // chain 0, position 1
  const CandidateSet c = analyzer.analyze(parts, engine.run(parts, r));
  // Positions 0-1 suspect -> cells 0,1 (chain 0) and 4,5 (chain 1).
  EXPECT_EQ(c.cells.toIndices(), (std::vector<std::size_t>{0, 1, 4, 5}));
}

TEST(CandidateAnalyzer, MismatchedVerdictsRejected) {
  const ScanTopology topo = ScanTopology::singleChain(12);
  const CandidateAnalyzer analyzer(topo);
  const std::vector<Partition> parts{IntervalPartitioner::fromLengths({12}, 12)};
  GroupVerdicts verdicts;  // empty
  EXPECT_THROW(analyzer.analyze(parts, verdicts), std::invalid_argument);
}

// The soundness invariant on real workloads: in exact mode, every actually
// failing cell is a candidate, for every scheme and partition budget.
struct SoundnessParam {
  const char* circuit;
  SchemeKind scheme;
  std::size_t chains;
};

class SoundnessSweep : public ::testing::TestWithParam<SoundnessParam> {};

TEST_P(SoundnessSweep, FailingCellsAlwaysCandidates) {
  const SoundnessParam param = GetParam();
  const Netlist nl = generateNamedCircuit(param.circuit);
  WorkloadConfig wc;
  wc.numPatterns = 64;
  wc.numFaults = 60;
  const CircuitWorkload work = prepareWorkload(nl, wc, param.chains);
  DiagnosisConfig config;
  config.scheme = param.scheme;
  config.numPartitions = 6;
  config.groupsPerPartition = 4;
  config.numPatterns = 64;
  const DiagnosisPipeline pipeline(work.topology, config);
  for (const FaultResponse& r : work.responses) {
    const FaultDiagnosis d = pipeline.diagnose(r);
    EXPECT_TRUE(r.failingCells.isSubsetOf(d.candidates.cells))
        << param.circuit << " " << schemeName(param.scheme)
        << " fault " << describeFault(nl, r.fault);
    EXPECT_GE(d.candidateCount, d.actualCount);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, SoundnessSweep,
    ::testing::Values(SoundnessParam{"s298", SchemeKind::IntervalBased, 1},
                      SoundnessParam{"s298", SchemeKind::RandomSelection, 1},
                      SoundnessParam{"s298", SchemeKind::TwoStep, 1},
                      SoundnessParam{"s953", SchemeKind::TwoStep, 1},
                      SoundnessParam{"s953", SchemeKind::TwoStep, 4},
                      SoundnessParam{"s1423", SchemeKind::RandomSelection, 2},
                      SoundnessParam{"s1423", SchemeKind::TwoStep, 8}));

TEST(CandidateAnalyzer, MorePartitionsNeverIncreaseCandidates) {
  const Netlist nl = generateNamedCircuit("s953");
  WorkloadConfig wc;
  wc.numPatterns = 64;
  wc.numFaults = 40;
  const CircuitWorkload work = prepareWorkload(nl, wc);
  DiagnosisConfig config;
  config.scheme = SchemeKind::TwoStep;
  config.numPartitions = 8;
  config.groupsPerPartition = 4;
  config.numPatterns = 64;
  const DiagnosisPipeline pipeline(work.topology, config);
  const auto sweep = pipeline.evaluateSweep(work.responses);
  for (std::size_t p = 1; p < sweep.size(); ++p) {
    EXPECT_LE(sweep[p], sweep[p - 1] + 1e-12) << "DR increased at partition " << p + 1;
  }
}

}  // namespace
}  // namespace scandiag
