#include "diagnosis/metrics.hpp"

#include <gtest/gtest.h>

namespace scandiag {
namespace {

TEST(DrAccumulator, PerfectDiagnosisIsZero) {
  DrAccumulator acc;
  acc.add(3, 3);
  acc.add(7, 7);
  EXPECT_DOUBLE_EQ(acc.dr(), 0.0);
  EXPECT_EQ(acc.faults(), 2u);
}

TEST(DrAccumulator, MatchesPaperFormula) {
  // DR = (sum candidates - sum actual) / sum actual.
  DrAccumulator acc;
  acc.add(10, 2);  // candidates 10, actual 2
  acc.add(6, 2);
  // (16 - 4) / 4 = 3.0
  EXPECT_DOUBLE_EQ(acc.dr(), 3.0);
  EXPECT_EQ(acc.sumCandidates(), 16u);
  EXPECT_EQ(acc.sumActual(), 4u);
}

TEST(DrAccumulator, NegativeDrPossibleUnderAliasing) {
  // Candidates can fall below actual if MISR aliasing hides failing cells.
  DrAccumulator acc;
  acc.add(1, 3);
  EXPECT_LT(acc.dr(), 0.0);
}

TEST(DrAccumulator, RejectsUndetectedFaults) {
  DrAccumulator acc;
  EXPECT_THROW(acc.add(5, 0), std::invalid_argument);
}

TEST(DrAccumulator, DrBeforeAnyFaultThrows) {
  DrAccumulator acc;
  EXPECT_THROW(acc.dr(), std::logic_error);
}

}  // namespace
}  // namespace scandiag
