#include "diagnosis/metrics.hpp"

#include <gtest/gtest.h>

#include <limits>

namespace scandiag {
namespace {

TEST(DrAccumulator, PerfectDiagnosisIsZero) {
  DrAccumulator acc;
  acc.add(3, 3);
  acc.add(7, 7);
  EXPECT_DOUBLE_EQ(acc.dr(), 0.0);
  EXPECT_EQ(acc.faults(), 2u);
}

TEST(DrAccumulator, MatchesPaperFormula) {
  // DR = (sum candidates - sum actual) / sum actual.
  DrAccumulator acc;
  acc.add(10, 2);  // candidates 10, actual 2
  acc.add(6, 2);
  // (16 - 4) / 4 = 3.0
  EXPECT_DOUBLE_EQ(acc.dr(), 3.0);
  EXPECT_EQ(acc.sumCandidates(), 16u);
  EXPECT_EQ(acc.sumActual(), 4u);
}

TEST(DrAccumulator, NegativeDrPossibleUnderAliasing) {
  // Candidates can fall below actual if MISR aliasing hides failing cells.
  DrAccumulator acc;
  acc.add(1, 3);
  EXPECT_LT(acc.dr(), 0.0);
}

TEST(DrAccumulator, RejectsUndetectedFaults) {
  DrAccumulator acc;
  EXPECT_THROW(acc.add(5, 0), std::invalid_argument);
}

TEST(DrAccumulator, DrBeforeAnyFaultThrows) {
  DrAccumulator acc;
  EXPECT_THROW(acc.dr(), std::logic_error);
}

TEST(DrAccumulator, MergeCombinesPartialSums) {
  // The parallel sum path: per-chunk accumulators folded together must equal
  // one accumulator fed everything in order.
  DrAccumulator whole, left, right;
  whole.add(10, 2);
  whole.add(6, 2);
  whole.add(9, 3);
  left.add(10, 2);
  left.add(6, 2);
  right.add(9, 3);
  left.merge(right);
  EXPECT_EQ(left.faults(), whole.faults());
  EXPECT_EQ(left.sumCandidates(), whole.sumCandidates());
  EXPECT_EQ(left.sumActual(), whole.sumActual());
  EXPECT_DOUBLE_EQ(left.dr(), whole.dr());
}

TEST(DrAccumulator, MergeWithEmptyIsIdentity) {
  DrAccumulator acc, empty;
  acc.add(5, 2);
  acc.merge(empty);
  EXPECT_EQ(acc.faults(), 1u);
  EXPECT_EQ(acc.sumCandidates(), 5u);
  EXPECT_EQ(acc.sumActual(), 2u);
}

TEST(DrAccumulator, CandidateSumOverflowThrowsInsteadOfWrapping) {
  constexpr std::uint64_t kHuge = std::numeric_limits<std::uint64_t>::max() - 1;
  DrAccumulator acc;
  acc.add(kHuge, 1);
  EXPECT_EQ(acc.sumCandidates(), kHuge);
  EXPECT_THROW(acc.add(2, 1), std::logic_error);
}

TEST(DrAccumulator, ActualSumOverflowThrowsInsteadOfWrapping) {
  constexpr std::uint64_t kHuge = std::numeric_limits<std::uint64_t>::max() - 1;
  DrAccumulator acc;
  acc.add(1, kHuge);
  EXPECT_THROW(acc.add(1, 2), std::logic_error);
}

TEST(DrAccumulator, MergeOverflowThrowsInsteadOfWrapping) {
  constexpr std::uint64_t kHuge = std::numeric_limits<std::uint64_t>::max() - 1;
  DrAccumulator a, b;
  a.add(kHuge, 1);
  b.add(kHuge, 1);
  EXPECT_THROW(a.merge(b), std::logic_error);
}

}  // namespace
}  // namespace scandiag
