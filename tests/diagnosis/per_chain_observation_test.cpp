#include "diagnosis/per_chain_observation.hpp"

#include <gtest/gtest.h>

#include "diagnosis/experiment_driver.hpp"
#include "diagnosis/interval_partitioner.hpp"
#include "netlist/synthetic_generator.hpp"

namespace scandiag {
namespace {

FaultResponse makeResponse(std::size_t numCells, const std::vector<std::size_t>& failing) {
  FaultResponse r;
  r.failingCells = BitVector(numCells);
  for (std::size_t c : failing) {
    r.failingCells.set(c);
    r.failingCellOrdinals.push_back(c);
    BitVector stream(4);
    stream.set(0);
    r.errorStreams.push_back(stream);
  }
  return r;
}

TEST(PerChainObservation, VerdictsAreChainLocal) {
  // 2 chains of 4; failing cell 5 = chain 1, position 1.
  const ScanTopology topo = ScanTopology::blockChains(8, 2);
  const PerChainObservation obs(topo);
  const std::vector<Partition> parts{IntervalPartitioner::fromLengths({2, 2}, 4)};
  const PerChainVerdicts v = obs.run(parts, makeResponse(8, {5}));
  EXPECT_FALSE(v.failing[0][0].test(0));  // chain 0 clean
  EXPECT_TRUE(v.failing[0][1].test(0));   // chain 1, group of positions 0-1
  EXPECT_FALSE(v.failing[0][1].test(1));
}

TEST(PerChainObservation, CandidatesStayOnTheFailingChain) {
  const ScanTopology topo = ScanTopology::blockChains(8, 2);
  const PerChainObservation obs(topo);
  const std::vector<Partition> parts{IntervalPartitioner::fromLengths({2, 2}, 4)};
  const CandidateSet cand = obs.diagnose(parts, makeResponse(8, {5}));
  // Shared observation would give {0,1,4,5}; per-chain confines to chain 1.
  EXPECT_EQ(cand.cells.toIndices(), (std::vector<std::size_t>{4, 5}));
}

TEST(PerChainObservation, SubsetOfSharedObservation) {
  const Netlist nl = generateNamedCircuit("s953");
  WorkloadConfig wc;
  wc.numPatterns = 64;
  wc.numFaults = 80;
  const CircuitWorkload work = prepareWorkload(nl, wc, 4);
  DiagnosisConfig config;
  config.scheme = SchemeKind::TwoStep;
  config.numPartitions = 4;
  config.groupsPerPartition = 4;
  config.numPatterns = 64;
  const std::vector<Partition> partitions =
      buildPartitions(config, work.topology.maxChainLength());
  const SessionEngine engine(work.topology, SessionConfig{SignatureMode::Exact, 64});
  const CandidateAnalyzer shared(work.topology);
  const PerChainObservation perChain(work.topology);
  bool strictlySmaller = false;
  for (const FaultResponse& r : work.responses) {
    const CandidateSet a = shared.analyze(partitions, engine.run(partitions, r));
    const CandidateSet b = perChain.diagnose(partitions, r);
    EXPECT_TRUE(b.cells.isSubsetOf(a.cells));
    EXPECT_TRUE(r.failingCells.isSubsetOf(b.cells));  // still sound
    strictlySmaller |= b.cellCount() < a.cellCount();
  }
  EXPECT_TRUE(strictlySmaller);
}

TEST(PerChainObservation, SingleChainEqualsSharedObservation) {
  const Netlist nl = generateNamedCircuit("s526");
  WorkloadConfig wc;
  wc.numPatterns = 64;
  wc.numFaults = 40;
  const CircuitWorkload work = prepareWorkload(nl, wc, 1);
  DiagnosisConfig config;
  config.scheme = SchemeKind::RandomSelection;
  config.numPartitions = 4;
  config.groupsPerPartition = 4;
  config.numPatterns = 64;
  const std::vector<Partition> partitions =
      buildPartitions(config, work.topology.maxChainLength());
  const SessionEngine engine(work.topology, SessionConfig{SignatureMode::Exact, 64});
  const CandidateAnalyzer shared(work.topology);
  const PerChainObservation perChain(work.topology);
  for (const FaultResponse& r : work.responses) {
    EXPECT_EQ(perChain.diagnose(partitions, r).cells,
              shared.analyze(partitions, engine.run(partitions, r)).cells);
  }
}

TEST(PerChainObservation, MismatchedInputsRejected) {
  const ScanTopology topo = ScanTopology::blockChains(8, 2);
  const PerChainObservation obs(topo);
  const std::vector<Partition> parts{IntervalPartitioner::fromLengths({2, 2}, 4)};
  PerChainVerdicts empty;
  EXPECT_THROW(obs.analyze(parts, empty), std::invalid_argument);
  const std::vector<Partition> wrong{IntervalPartitioner::fromLengths({3, 3}, 6)};
  EXPECT_THROW(obs.run(wrong, makeResponse(8, {1})), std::invalid_argument);
}

}  // namespace
}  // namespace scandiag
