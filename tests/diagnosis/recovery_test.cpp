// Bounded-budget recovery: suspect partitions are re-run and majority-voted;
// when the budget runs out, the offending partitions are dropped and the
// candidate set widens instead of emptying.

#include <gtest/gtest.h>

#include "diagnosis/binary_search_diagnoser.hpp"
#include "diagnosis/experiment_driver.hpp"
#include "diagnosis/interval_partitioner.hpp"
#include "diagnosis/recovery.hpp"

namespace scandiag {
namespace {

FaultResponse makeResponse(std::size_t numCells, const std::vector<std::size_t>& failing) {
  FaultResponse r;
  r.failingCells = BitVector(numCells);
  for (std::size_t c : failing) {
    r.failingCells.set(c);
    r.failingCellOrdinals.push_back(c);
    BitVector stream(4);
    stream.set(0);
    r.errorStreams.push_back(stream);
  }
  return r;
}

struct SchemeFixture {
  explicit SchemeFixture(SchemeKind scheme) : topo(ScanTopology::singleChain(24)) {
    config.scheme = scheme;
    config.numPartitions = 4;
    config.groupsPerPartition = 4;
    config.numPatterns = 4;
    parts = buildPartitions(config, topo.maxChainLength());
  }

  ScanTopology topo;
  DiagnosisConfig config;
  std::vector<Partition> parts;
  SessionEngine engine{topo, SessionConfig{SignatureMode::Exact, 4}};
};

/// Re-run that returns the clean (noiseless) row — models a transient glitch.
PartitionRerun cleanRerun(const SessionEngine& engine, const std::vector<Partition>& parts,
                          const FaultResponse& response) {
  return [&engine, &parts, &response](std::size_t p, std::size_t) {
    return engine.runPartition(parts[p], response);
  };
}

// The headline satellite guarantee: a single verdict flip at EVERY
// (partition, group) position, in either direction, across all three
// partition schemes, is either repaired by retry (fail->pass flips, which
// trigger detection) or yields a candidate superset containing the true
// failing cell — never an empty set.
TEST(DiagnosisRecovery, SingleFlipEveryPositionRepairedOrSuperset) {
  RetryPolicy policy;
  policy.maxRetriesPerSession = 2;
  policy.sessionBudget = 64;
  for (const SchemeKind scheme :
       {SchemeKind::IntervalBased, SchemeKind::RandomSelection, SchemeKind::TwoStep}) {
    const SchemeFixture f(scheme);
    const DiagnosisRecovery recovery(f.topo, policy);
    const CandidateAnalyzer analyzer(f.topo);
    for (const std::size_t cell : {std::size_t{0}, std::size_t{13}, std::size_t{23}}) {
      const FaultResponse response = makeResponse(24, {cell});
      const GroupVerdicts clean = f.engine.run(f.parts, response);
      const CandidateSet cleanCandidates = analyzer.analyze(f.parts, clean);
      for (std::size_t p = 0; p < f.parts.size(); ++p) {
        for (std::size_t g = 0; g < f.parts[p].groupCount(); ++g) {
          GroupVerdicts noisy = clean;
          const bool wasFailing = noisy.failing[p].test(g);
          noisy.failing[p].flip(g);
          const RecoveredDiagnosis d =
              recovery.recover(f.parts, noisy, cleanRerun(f.engine, f.parts, response));
          const std::string where = std::string(schemeName(scheme)) + " cell " +
                                    std::to_string(cell) + " flip p" + std::to_string(p) +
                                    " g" + std::to_string(g);
          EXPECT_GT(d.candidates.cellCount(), 0u) << where;
          EXPECT_TRUE(d.candidates.cells.test(cell)) << where;
          if (wasFailing) {
            // fail->pass always trips AllGroupsPassing on a single-cell fault
            // (each partition has exactly one failing group), and two clean
            // re-runs outvote the flip: full repair, exact clean candidates.
            EXPECT_TRUE(d.resolved) << where;
            EXPECT_EQ(d.candidates.cells.toIndices(), cleanCandidates.cells.toIndices())
                << where;
            EXPECT_EQ(d.retrySessions, 2 * f.parts[p].groupCount()) << where;
          }
        }
      }
    }
  }
}

TEST(DiagnosisRecovery, ConsistentVerdictsSpendNothing) {
  const SchemeFixture f(SchemeKind::TwoStep);
  RetryPolicy policy;
  policy.sessionBudget = 100;
  const DiagnosisRecovery recovery(f.topo, policy);
  const FaultResponse response = makeResponse(24, {7});
  const GroupVerdicts clean = f.engine.run(f.parts, response);
  std::size_t reruns = 0;
  const RecoveredDiagnosis d = recovery.recover(
      f.parts, clean, [&](std::size_t p, std::size_t) {
        ++reruns;
        return f.engine.runPartition(f.parts[p], response);
      });
  EXPECT_EQ(reruns, 0u);
  EXPECT_EQ(d.retrySessions, 0u);
  EXPECT_TRUE(d.resolved);
  EXPECT_DOUBLE_EQ(d.confidence, 1.0);
}

TEST(DiagnosisRecovery, BudgetIsNeverExceeded) {
  const SchemeFixture f(SchemeKind::TwoStep);
  RetryPolicy policy;
  policy.maxRetriesPerSession = 5;
  policy.sessionBudget = 6;  // groupCount is 4: one re-run fits, a second does not
  const DiagnosisRecovery recovery(f.topo, policy);
  const FaultResponse response = makeResponse(24, {7});
  GroupVerdicts noisy = f.engine.run(f.parts, response);
  noisy.failing[1].resetAll();  // lost fail verdict -> partition 1 suspect
  const RecoveredDiagnosis d =
      recovery.recover(f.parts, noisy, cleanRerun(f.engine, f.parts, response));
  EXPECT_LE(d.retrySessions, policy.sessionBudget);
  EXPECT_EQ(d.retrySessions, 4u);
  EXPECT_TRUE(d.candidates.cells.test(7));
}

TEST(DiagnosisRecovery, NoRerunDegradesToDroppedPartition) {
  const SchemeFixture f(SchemeKind::TwoStep);
  RetryPolicy policy;
  policy.sessionBudget = 100;
  const DiagnosisRecovery recovery(f.topo, policy);
  const FaultResponse response = makeResponse(24, {7});
  GroupVerdicts noisy = f.engine.run(f.parts, response);
  noisy.failing[1].resetAll();
  // Offline logs cannot be re-run: null rerun goes straight to degradation.
  const RecoveredDiagnosis d = recovery.recover(f.parts, noisy, nullptr);
  EXPECT_FALSE(d.resolved);
  EXPECT_EQ(d.droppedPartitions, (std::vector<std::size_t>{1}));
  EXPECT_EQ(d.retrySessions, 0u);
  EXPECT_TRUE(d.candidates.cells.test(7));
  EXPECT_LT(d.confidence, 1.0);
}

TEST(DiagnosisRecovery, PersistentLieFallsBackToDegradation) {
  const SchemeFixture f(SchemeKind::TwoStep);
  RetryPolicy policy;
  policy.maxRetriesPerSession = 2;
  policy.sessionBudget = 64;
  const DiagnosisRecovery recovery(f.topo, policy);
  const FaultResponse response = makeResponse(24, {7});
  GroupVerdicts noisy = f.engine.run(f.parts, response);
  noisy.failing[1].resetAll();
  // The tester keeps lying: every re-run of partition 1 reads all-pass too.
  const RecoveredDiagnosis d = recovery.recover(
      f.parts, noisy, [&](std::size_t p, std::size_t) {
        PartitionVerdictRow row = f.engine.runPartition(f.parts[p], response);
        if (p == 1) row.failing.resetAll();
        return row;
      });
  EXPECT_FALSE(d.resolved);
  EXPECT_EQ(d.droppedPartitions, (std::vector<std::size_t>{1}));
  EXPECT_TRUE(d.candidates.cells.test(7));
  EXPECT_GT(d.candidates.cellCount(), 0u);
}

// Multi-cell faults fail several groups per partition, so a single lost fail
// verdict leaves that partition self-consistent while its shrunken union
// silently removes true cells from the intersection — the phantom reports
// then land on the *honest* partitions. Whenever that is detected,
// degradation must widen (leave-one-out) to a superset of every true failing
// cell; flips whose shrunken union stays consistent with every other
// partition are undetectable from verdicts alone (the documented residual)
// but must still never empty the candidate set.
TEST(DiagnosisRecovery, MultiCellLostFailVerdictWidensWhenDetected) {
  for (const SchemeKind scheme :
       {SchemeKind::IntervalBased, SchemeKind::RandomSelection, SchemeKind::TwoStep}) {
    const SchemeFixture f(scheme);
    const DiagnosisRecovery recovery(f.topo, RetryPolicy{});
    const FaultResponse response = makeResponse(24, {3, 4, 10, 17, 18, 22});
    const GroupVerdicts clean = f.engine.run(f.parts, response);
    std::size_t detected = 0;
    for (std::size_t p = 0; p < f.parts.size(); ++p) {
      for (std::size_t g = 0; g < f.parts[p].groupCount(); ++g) {
        if (!clean.failing[p].test(g)) continue;
        GroupVerdicts noisy = clean;
        noisy.failing[p].reset(g);
        const RecoveredDiagnosis d = recovery.recover(f.parts, noisy, nullptr);
        const std::string where = std::string(schemeName(scheme)) + " flip p" +
                                  std::to_string(p) + " g" + std::to_string(g);
        EXPECT_GT(d.candidates.cellCount(), 0u) << where;
        if (!d.consistent()) {
          ++detected;
          EXPECT_TRUE(response.failingCells.isSubsetOf(d.candidates.cells)) << where;
        }
      }
    }
    EXPECT_GT(detected, 0u) << schemeName(scheme);
  }
}

TEST(DiagnosisRecovery, ManyRepairsNeverUnderflowConfidenceBelowFloor) {
  // The degradation penalties are multiplicative; a long schedule where every
  // partition carries a persistent phantom fail would drive the product to
  // 0.0 and make a maximally degraded (but still superset-sound) diagnosis
  // indistinguishable from "no diagnosis". kConfidenceFloor is the lower
  // bound: the confidence must land exactly on it here, never at 0.
  const ScanTopology topo = ScanTopology::singleChain(24);
  DiagnosisConfig config;
  config.scheme = SchemeKind::TwoStep;
  config.numPartitions = 160;  // 0.9^160 alone is ~5e-8, far below the floor
  config.groupsPerPartition = 4;
  config.numPatterns = 4;
  const std::vector<Partition> parts = buildPartitions(config, topo.maxChainLength());
  const SessionEngine engine(topo, SessionConfig{SignatureMode::Exact, 4});
  const FaultResponse response = makeResponse(24, {7});

  GroupVerdicts noisy = engine.run(parts, response);
  for (std::size_t p = 0; p < parts.size(); ++p) {
    // One extra (phantom) failing group per partition, never the true one.
    const std::size_t truthful = noisy.failing[p].findFirst();
    noisy.failing[p].set((truthful + 1) % parts[p].groupCount());
  }

  RetryPolicy policy;
  policy.maxRetriesPerSession = 2;
  policy.sessionBudget = 4000;
  const DiagnosisRecovery recovery(topo, policy);
  // Persistent lie: re-runs reproduce the corrupted rows, so majority voting
  // repairs nothing and every phantom survives to the degradation pass.
  const RecoveredDiagnosis d = recovery.recover(
      parts, noisy, [&](std::size_t p, std::size_t) {
        PartitionVerdictRow row = engine.runPartition(parts[p], response);
        row.failing = noisy.failing[p];
        return row;
      });
  EXPECT_GE(d.confidence, kConfidenceFloor);
  EXPECT_GT(d.confidence, 0.0);
  EXPECT_DOUBLE_EQ(d.confidence, kConfidenceFloor);
  // Degraded, not destroyed: the result still covers the true failing cell.
  EXPECT_TRUE(d.candidates.cells.test(7));
  EXPECT_FALSE(d.resolved);
}

// Regression for the defect-zoo short-circuit: deterministic compactor
// aliasing on a two-fault union loses one fail verdict per fault in
// *different* partitions, which surfaces as a DisjointFailingUnion that
// replays bit-identically — a model violation, not tester noise. Recovery
// used to burn the whole retry budget majority-voting rows that never
// change; it must now stop after the single confirming re-run and re-analyze
// the schedule in the checked union mode, keeping both true cells.
TEST(DiagnosisRecovery, ReplayStableDisjointUnionShortCircuitsToUnionAnalysis) {
  const ScanTopology topo = ScanTopology::singleChain(12);
  const SessionEngine engine{topo, SessionConfig{SignatureMode::Exact, 4}};
  // Thirds, halves, pairs — faults at cells 2 and 9.
  const std::vector<Partition> parts{IntervalPartitioner::fromLengths({4, 4, 4}, 12),
                                     IntervalPartitioner::fromLengths({6, 6}, 12),
                                     IntervalPartitioner::fromLengths({2, 2, 2, 2, 2, 2}, 12)};
  const FaultResponse response = makeResponse(12, {2, 9});
  GroupVerdicts aliased = engine.run(parts, response);
  // Deterministic aliasing: cell 2's verdict is lost in the thirds partition
  // (union collapses to [8..11]) and cell 9's in the pairs partition (union
  // collapses to [2,3]). Running intersection: {8..11} ∩ all ∩ {2,3} = ∅ —
  // DisjointFailingUnion at the pairs partition.
  aliased.failing[0].reset(0);
  aliased.failing[2].reset(4);

  RetryPolicy policy;
  policy.maxRetriesPerSession = 2;
  policy.sessionBudget = 64;
  const DiagnosisRecovery recovery(topo, policy);
  std::size_t reruns = 0;
  // Aliasing is deterministic: every re-run reproduces the corrupted row.
  const RecoveredDiagnosis d = recovery.recover(
      parts, aliased, [&](std::size_t p, std::size_t) {
        ++reruns;
        PartitionVerdictRow row;
        row.failing = aliased.failing[p];
        return row;
      });

  ASSERT_TRUE(d.unionDiagnosis);
  EXPECT_EQ(d.deterministicPartitions, 1u);
  EXPECT_TRUE(d.resolved);
  // Greedy clustering splits the unions into {8..11} and {2,3}.
  EXPECT_EQ(d.unionClusters, 2u);
  EXPECT_TRUE(d.candidates.cells.test(2));
  EXPECT_TRUE(d.candidates.cells.test(9));
  EXPECT_TRUE(d.droppedPartitions.empty());
  // The disjoint partition stops after ONE confirming re-run (6 sessions),
  // not the full majority vote; other suspects may still vote within budget.
  EXPECT_GE(d.retrySessions, 6u);
  EXPECT_LE(d.retrySessions, policy.sessionBudget);
  // One extra cluster costs a single 0.9 penalty; nothing was repaired.
  EXPECT_DOUBLE_EQ(d.confidence, 0.9);
  EXPECT_GT(reruns, 0u);
}

// Adaptive baseline: a lying interval session is caught by the parent-fails/
// both-halves-pass check and repaired by majority re-query.
TEST(BinarySearchDiagnoser, OracleFlipRepairedByRequery) {
  const ScanTopology topo = ScanTopology::singleChain(16);
  const BinarySearchDiagnoser diagnoser(topo, 4);
  const std::size_t failingPos = 7;
  RetryPolicy policy;
  policy.maxRetriesPerSession = 2;
  policy.sessionBudget = 16;
  std::size_t lies = 0;
  const IntervalOracle oracle = [&](std::size_t lo, std::size_t hi, std::size_t attempt) {
    const bool truth = lo <= failingPos && failingPos < hi;
    if (lo == 0 && hi == 8 && attempt == 0) {
      ++lies;
      return false;  // one-shot fail->pass flip on the left half
    }
    return truth;
  };
  const BinarySearchResult r = diagnoser.diagnoseWithOracle(oracle, policy);
  EXPECT_EQ(lies, 1u);
  EXPECT_GE(r.inconsistencies, 1u);
  EXPECT_GT(r.retrySessions, 0u);
  EXPECT_TRUE(r.resolved);
  EXPECT_EQ(r.candidates.positions.toIndices(), (std::vector<std::size_t>{failingPos}));
}

TEST(BinarySearchDiagnoser, OracleLieWithoutBudgetWidensInterval) {
  const ScanTopology topo = ScanTopology::singleChain(16);
  const BinarySearchDiagnoser diagnoser(topo, 4);
  const std::size_t failingPos = 7;
  const RetryPolicy noBudget;  // sessionBudget 0: no re-queries possible
  const IntervalOracle oracle = [&](std::size_t lo, std::size_t hi, std::size_t attempt) {
    if (lo == 0 && hi == 8 && attempt == 0) return false;
    return lo <= failingPos && failingPos < hi;
  };
  const BinarySearchResult r = diagnoser.diagnoseWithOracle(oracle, noBudget);
  EXPECT_FALSE(r.resolved);
  EXPECT_GE(r.inconsistencies, 1u);
  // The unrepairable parent interval is kept whole: superset, never empty.
  EXPECT_TRUE(r.candidates.positions.test(failingPos));
  EXPECT_GT(r.candidates.positions.count(), 1u);
}

}  // namespace
}  // namespace scandiag
