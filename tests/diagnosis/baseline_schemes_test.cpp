// Tests for the prior-work baseline schemes: deterministic fixed-length
// intervals [8] and adaptive binary search [6], plus the cost model.

#include <gtest/gtest.h>

#include "diagnosis/binary_search_diagnoser.hpp"
#include "diagnosis/cost_model.hpp"
#include "diagnosis/deterministic_partitioner.hpp"
#include "diagnosis/experiment_driver.hpp"
#include "netlist/synthetic_generator.hpp"

namespace scandiag {
namespace {

// ---- DeterministicIntervalPartitioner --------------------------------------

TEST(DeterministicPartitioner, EqualLengthIntervalsCoverChain) {
  DeterministicIntervalPartitioner gen(DeterministicIntervalConfig{}, 100, 8);
  const Partition p = gen.next();
  EXPECT_NO_THROW(p.validate());
  EXPECT_EQ(gen.intervalLength(), 13u);  // ceil(100/8)
  for (const BitVector& g : p.groups) {
    EXPECT_GE(g.count(), 1u);
    EXPECT_LE(g.count(), 13u);
  }
}

TEST(DeterministicPartitioner, SuccessivePartitionsRotateBoundaries) {
  DeterministicIntervalPartitioner gen(DeterministicIntervalConfig{}, 100, 4);
  const Partition a = gen.next();
  const Partition b = gen.next();
  bool anyDiff = false;
  for (std::size_t g = 0; g < 4; ++g) anyDiff |= (a.groups[g] != b.groups[g]);
  EXPECT_TRUE(anyDiff);
}

TEST(DeterministicPartitioner, GoldenRotationVisitsManyPhases) {
  // Eight successive partitions must have eight distinct group-0 masks (a
  // half-length rotation would only produce ~2).
  DeterministicIntervalPartitioner gen(DeterministicIntervalConfig{}, 211, 16);
  std::vector<BitVector> firstGroups;
  for (int i = 0; i < 8; ++i) firstGroups.push_back(gen.next().groups[0]);
  for (std::size_t i = 0; i < firstGroups.size(); ++i)
    for (std::size_t j = i + 1; j < firstGroups.size(); ++j)
      EXPECT_NE(firstGroups[i], firstGroups[j]) << i << " vs " << j;
}

TEST(DeterministicPartitioner, ParameterValidation) {
  EXPECT_THROW(DeterministicIntervalPartitioner(DeterministicIntervalConfig{}, 0, 4),
               std::invalid_argument);
  EXPECT_THROW(DeterministicIntervalPartitioner(DeterministicIntervalConfig{}, 3, 4),
               std::invalid_argument);
  DeterministicIntervalConfig bad;
  bad.rotationFraction = 1.0;
  EXPECT_THROW(DeterministicIntervalPartitioner(bad, 10, 2), std::invalid_argument);
}

TEST(DeterministicPartitioner, AvailableThroughFactory) {
  auto scheme = makeScheme(SchemeKind::DeterministicInterval, SchemeConfig{}, 64, 4);
  EXPECT_EQ(scheme->name(), "deterministic-interval");
  EXPECT_NO_THROW(scheme->next().validate());
}

// ---- BinarySearchDiagnoser --------------------------------------------------

FaultResponse responseWithCells(std::size_t numCells, const std::vector<std::size_t>& failing) {
  FaultResponse r;
  r.failingCells = BitVector(numCells);
  for (std::size_t c : failing) {
    r.failingCells.set(c);
    r.failingCellOrdinals.push_back(c);
    BitVector stream(4);
    stream.set(0);
    r.errorStreams.push_back(stream);
  }
  return r;
}

TEST(BinarySearch, FindsExactFailingPositions) {
  const ScanTopology topo = ScanTopology::singleChain(64);
  const BinarySearchDiagnoser diag(topo, 16);
  const FaultResponse r = responseWithCells(64, {3, 40, 41});
  const BinarySearchResult result = diag.diagnose(r);
  EXPECT_EQ(result.candidates.cells, r.failingCells);
}

TEST(BinarySearch, NoFailuresOneSession) {
  const ScanTopology topo = ScanTopology::singleChain(64);
  const BinarySearchDiagnoser diag(topo, 16);
  const BinarySearchResult result = diag.diagnose(responseWithCells(64, {}));
  EXPECT_TRUE(result.candidates.cells.none());
  EXPECT_EQ(result.sessions, 1u);
}

TEST(BinarySearch, SessionCountLogarithmicForSingleFailure) {
  const ScanTopology topo = ScanTopology::singleChain(1024);
  const BinarySearchDiagnoser diag(topo, 16);
  const BinarySearchResult result = diag.diagnose(responseWithCells(1024, {513}));
  // Single failing cell: ~2 sessions per level (failing half + sibling),
  // 10 levels deep, plus the root. Comfortably below 2*log2(n)+2.
  EXPECT_LE(result.sessions, 2u * 10u + 2u);
  EXPECT_GE(result.sessions, 10u);
}

TEST(BinarySearch, SessionCountGrowsWithFailureCount) {
  const ScanTopology topo = ScanTopology::singleChain(256);
  const BinarySearchDiagnoser diag(topo, 16);
  const std::size_t few = diag.diagnose(responseWithCells(256, {7})).sessions;
  std::vector<std::size_t> many;
  for (std::size_t i = 0; i < 32; ++i) many.push_back(i * 8);
  const std::size_t lots = diag.diagnose(responseWithCells(256, many)).sessions;
  EXPECT_GT(lots, few * 4);
}

TEST(BinarySearch, MultiChainResolvesPositionsNotCells) {
  // 2 chains of 4: a failing cell at chain 1 position 2 can only be resolved
  // to "position 2", i.e. cells {2, 6}.
  const ScanTopology topo = ScanTopology::blockChains(8, 2);
  const BinarySearchDiagnoser diag(topo, 16);
  const BinarySearchResult result = diag.diagnose(responseWithCells(8, {6}));
  EXPECT_EQ(result.candidates.cells.toIndices(), (std::vector<std::size_t>{2, 6}));
}

TEST(BinarySearch, SoundOnRealWorkload) {
  const Netlist nl = generateNamedCircuit("s953");
  WorkloadConfig wc;
  wc.numPatterns = 64;
  wc.numFaults = 60;
  const CircuitWorkload work = prepareWorkload(nl, wc);
  const BinarySearchDiagnoser diag(work.topology, 64);
  for (const FaultResponse& r : work.responses) {
    const BinarySearchResult result = diag.diagnose(r);
    EXPECT_EQ(result.candidates.cells, r.failingCells);  // exact on single chain
    EXPECT_GE(result.sessions, 1u);
  }
  EXPECT_GT(diag.meanSessions(work.responses), 1.0);
}

// ---- Cost model --------------------------------------------------------------

TEST(CostModel, SessionCycles) {
  const DiagnosisCost one = sessionCost(/*patterns=*/100, /*chain=*/50);
  EXPECT_EQ(one.sessions, 1u);
  EXPECT_EQ(one.clockCycles, 100u * 51u + 50u);
}

TEST(CostModel, PartitionRunScalesWithSessions) {
  const DiagnosisCost run = partitionRunCost(8, 16, 100, 50);
  EXPECT_EQ(run.sessions, 128u);
  EXPECT_EQ(run.clockCycles, sessionCost(100, 50).clockCycles * 128u);
}

TEST(CostModel, Accumulation) {
  DiagnosisCost a = sessionCost(10, 10);
  const DiagnosisCost b = sessionCost(10, 10);
  a += b;
  EXPECT_EQ(a.sessions, 2u);
  EXPECT_EQ(a.clockCycles, 2u * b.clockCycles);
}

}  // namespace
}  // namespace scandiag
