#include "diagnosis/fault_localization.hpp"

#include <gtest/gtest.h>

#include "bist/prpg.hpp"
#include "netlist/cone_analysis.hpp"
#include "netlist/synthetic_generator.hpp"
#include "sim/fault_list.hpp"
#include "sim/fault_simulator.hpp"

namespace scandiag {
namespace {

TEST(ConeDatabase, MatchesPerGateConeComputation) {
  const Netlist nl = generateNamedCircuit("s344");
  const ConeDatabase db(nl);
  const Levelization lev = levelize(nl);
  for (GateId id = 0; id < nl.gateCount(); id += 5) {
    const FaultCone cone = computeCone(nl, lev, id);
    EXPECT_EQ(db.reachableDffs(id), cone.reachableDffs) << nl.gateName(id);
  }
}

TEST(ConeDatabase, OutOfRangeRejected) {
  const Netlist nl = generateNamedCircuit("s27");
  const ConeDatabase db(nl);
  EXPECT_THROW(db.reachableDffs(static_cast<GateId>(nl.gateCount())), std::invalid_argument);
}

TEST(Localization, TrueSiteAlwaysSuspected) {
  const Netlist nl = generateNamedCircuit("s526");
  const ConeDatabase db(nl);
  const PatternSet pats = generatePatterns(nl, 64);
  const FaultSimulator sim(nl, pats);
  for (const FaultSite& f : FaultList::enumerateCollapsed(nl).sample(80, 0x10CA)) {
    const FaultResponse r = sim.simulate(f);
    if (!r.detected()) continue;
    const std::vector<GateId> suspects = localizeSingleFault(db, r.failingCells);
    // For branch faults the "site" on the suspect-gate axis is the driver
    // (the fault lies on the wire between driver and owner).
    const GateId site = f.isOutputFault() ? f.gate
                        : nl.gate(f.gate).type == GateType::Dff
                            ? nl.gate(f.gate).fanins[0]
                            : f.gate;
    EXPECT_NE(std::find(suspects.begin(), suspects.end(), site), suspects.end())
        << describeFault(nl, f);
  }
}

TEST(Localization, MoreFailingCellsNarrowSuspects) {
  // A superset of failing cells can only shrink (or keep) the suspect list.
  const Netlist nl = generateNamedCircuit("s526");
  const ConeDatabase db(nl);
  BitVector one(nl.dffs().size());
  one.set(5);
  BitVector two = one;
  two.set(11);
  const auto s1 = localizeSingleFault(db, one);
  const auto s2 = localizeSingleFault(db, two);
  EXPECT_LE(s2.size(), s1.size());
  for (GateId g : s2) {
    EXPECT_NE(std::find(s1.begin(), s1.end(), g), s1.end());
  }
}

TEST(Localization, RequiresAtLeastOneFailingCell) {
  const Netlist nl = generateNamedCircuit("s27");
  const ConeDatabase db(nl);
  EXPECT_THROW(localizeSingleFault(db, BitVector(nl.dffs().size())), std::invalid_argument);
}

TEST(Localization, ImpossibleCellComboHasNoSuspects) {
  // Cells chosen so no single cone covers both: take two cells and verify
  // the suspect list is exactly the gates covering both (possibly empty).
  const Netlist nl = generateNamedCircuit("s298");
  const ConeDatabase db(nl);
  BitVector cells(nl.dffs().size());
  cells.set(0);
  cells.set(nl.dffs().size() - 1);
  const auto suspects = localizeSingleFault(db, cells);
  for (GateId g : suspects) {
    EXPECT_TRUE(cells.isSubsetOf(db.reachableDffs(g)));
  }
}

}  // namespace
}  // namespace scandiag
