#include "diagnosis/tester_log.hpp"

#include <gtest/gtest.h>

#include "bist/prpg.hpp"
#include "netlist/synthetic_generator.hpp"
#include "sim/fault_list.hpp"

namespace scandiag {
namespace {

TEST(TesterLog, ParsesVerdictsAndSignatures) {
  const TesterLog log = parseTesterLogString(R"(# demo
sessions 2 4
verdict 0 1 fail sig 1a2b
verdict 0 2 pass
verdict 1 3 fail sig ff
)");
  EXPECT_EQ(log.numPartitions, 2u);
  EXPECT_EQ(log.groupsPerPartition, 4u);
  EXPECT_TRUE(log.verdicts.failing[0].test(1));
  EXPECT_FALSE(log.verdicts.failing[0].test(2));
  EXPECT_TRUE(log.verdicts.failing[1].test(3));
  EXPECT_EQ(log.verdicts.errorSig[0][1], 0x1a2bu);
  EXPECT_EQ(log.verdicts.errorSig[1][3], 0xffu);
  EXPECT_TRUE(log.verdicts.hasSignatures);  // every failing session has a sig
}

TEST(TesterLog, UnlistedSessionsDefaultToPass) {
  const TesterLog log = parseTesterLogString("sessions 3 8\nverdict 2 7 fail\n");
  std::size_t failing = 0;
  for (const BitVector& p : log.verdicts.failing) failing += p.count();
  EXPECT_EQ(failing, 1u);
  EXPECT_FALSE(log.verdicts.hasSignatures);
}

TEST(TesterLog, MixedSignatureCoverageDisablesPruning) {
  const TesterLog log = parseTesterLogString(
      "sessions 1 4\nverdict 0 0 fail sig 12\nverdict 0 1 fail\n");
  EXPECT_FALSE(log.verdicts.hasSignatures);
}

TEST(TesterLog, ParseErrorsCarryLineNumbers) {
  for (const char* bad : {"verdict 0 0 fail\n",                  // before header
                          "sessions 0 4\n",                      // zero partitions
                          "sessions 2 4\nverdict 5 0 fail\n",    // out of range
                          "sessions 2 4\nverdict 0 0 maybe\n",   // bad result
                          "sessions 2 4\nverdict 0 0 fail sig zz\n",
                          "sessions 2 4\nbogus\n", ""}) {
    EXPECT_THROW(parseTesterLogString(bad), std::invalid_argument) << bad;
  }
  try {
    parseTesterLogString("sessions 2 4\nverdict 9 9 fail\n");
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(TesterLog, WriteParseRoundTrip) {
  GroupVerdicts v;
  v.failing = {BitVector(4), BitVector(4)};
  v.errorSig = {{0, 0, 0, 0}, {0, 0, 0, 0}};
  v.failing[0].set(2);
  v.failing[1].set(0);
  v.errorSig[0][2] = 0xdead;
  v.errorSig[1][0] = 0xbeef;
  v.hasSignatures = true;
  v.signatureDegree = 16;
  const TesterLog back = parseTesterLogString(writeTesterLog(v));
  EXPECT_EQ(back.verdicts.failing[0], v.failing[0]);
  EXPECT_EQ(back.verdicts.failing[1], v.failing[1]);
  EXPECT_EQ(back.verdicts.errorSig[0][2], 0xdeadu);
  EXPECT_TRUE(back.verdicts.hasSignatures);
}

// The adoption path end-to-end: tester produces per-session verdicts (here:
// simulated), logs them, and the offline flow recovers exactly the candidate
// set the integrated pipeline computes.
TEST(TesterLog, OfflineDiagnosisMatchesIntegratedPipeline) {
  const Netlist nl = generateNamedCircuit("s953");
  const ScanTopology topology = ScanTopology::singleChain(nl.dffs().size());
  DiagnosisConfig config;
  config.scheme = SchemeKind::TwoStep;
  config.numPartitions = 6;
  config.groupsPerPartition = 4;
  config.numPatterns = 64;
  config.mode = SignatureMode::Misr;

  const PatternSet pats = generatePatterns(nl, 64);
  const FaultSimulator sim(nl, pats);
  const std::vector<Partition> partitions = buildPartitions(config, topology.maxChainLength());
  SessionConfig sc{SignatureMode::Misr, 64};
  const SessionEngine engine(topology, sc);
  const CandidateAnalyzer analyzer(topology);

  std::size_t checked = 0;
  for (const FaultSite& f : FaultList::enumerateCollapsed(nl).sample(40, 0x106)) {
    const FaultResponse r = sim.simulate(f);
    if (!r.detected()) continue;
    ++checked;
    const GroupVerdicts verdicts = engine.run(partitions, r);
    const CandidateSet direct = analyzer.analyze(partitions, verdicts);

    // Through the log.
    const TesterLog log = parseTesterLogString(writeTesterLog(verdicts));
    const CandidateSet offline = diagnoseFromLog(topology, config, log);
    EXPECT_EQ(offline.cells, direct.cells) << describeFault(nl, f);
  }
  EXPECT_GT(checked, 15u);
}

TEST(TesterLog, OfflinePruningFromLoggedSignatures) {
  const Netlist nl = generateNamedCircuit("s953");
  const ScanTopology topology = ScanTopology::singleChain(nl.dffs().size());
  DiagnosisConfig config;
  config.scheme = SchemeKind::TwoStep;
  config.numPartitions = 3;
  config.groupsPerPartition = 4;
  config.numPatterns = 64;
  config.mode = SignatureMode::Misr;
  config.pruning = true;

  const PatternSet pats = generatePatterns(nl, 64);
  const FaultSimulator sim(nl, pats);
  const std::vector<Partition> partitions = buildPartitions(config, topology.maxChainLength());
  SessionConfig sc{SignatureMode::Misr, 64};
  const SessionEngine engine(topology, sc);
  const CandidateAnalyzer analyzer(topology);

  bool anyPruned = false;
  for (const FaultSite& f : FaultList::enumerateCollapsed(nl).sample(60, 0x107)) {
    const FaultResponse r = sim.simulate(f);
    if (!r.detected()) continue;
    const GroupVerdicts verdicts = engine.run(partitions, r);
    const CandidateSet unpruned = analyzer.analyze(partitions, verdicts);
    const TesterLog log = parseTesterLogString(writeTesterLog(verdicts));
    const CandidateSet offline = diagnoseFromLog(topology, config, log);
    EXPECT_TRUE(offline.cells.isSubsetOf(unpruned.cells));
    anyPruned |= (offline.cellCount() < unpruned.cellCount());
  }
  EXPECT_TRUE(anyPruned) << "logged signatures never enabled pruning";
}

TEST(TesterLog, ShapeMismatchRejected) {
  const ScanTopology topology = ScanTopology::singleChain(29);
  DiagnosisConfig config;
  config.numPartitions = 6;
  config.groupsPerPartition = 4;
  const TesterLog log = parseTesterLogString("sessions 2 4\nverdict 0 0 fail\n");
  EXPECT_THROW(diagnoseFromLog(topology, config, log), std::invalid_argument);
}

}  // namespace
}  // namespace scandiag
