// Parity oracle for the batched MISR scorer (docs/ARCHITECTURE.md §11): the
// per-session reference path (SessionScorer::PerSession) and the batched path
// (SessionScorer::Batched) must be BIT-IDENTICAL in everything observable —
// group verdicts, error signatures, diagnosis reports, and the deterministic
// counter section — across all three partitioning schemes, five circuits,
// thread counts {1, 2, 8}, with and without superposition pruning, and with
// and without injected tester noise. The CI sanitizer matrix (TSan and
// ASan+UBSan) runs this suite too, so scorer parity is also checked under
// race and UB detection.

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/thread_pool.hpp"
#include "core/scandiag.hpp"
#include "inject/noisy_pipeline.hpp"
#include "obs/metrics.hpp"

namespace scandiag {
namespace {

constexpr const char* kCircuits[] = {"s298", "s344", "s526", "s953", "s9234"};
constexpr SchemeKind kSchemes[] = {SchemeKind::IntervalBased, SchemeKind::RandomSelection,
                                   SchemeKind::TwoStep};
constexpr std::size_t kThreadCounts[] = {1, 2, 8};

/// Batch-only counters are the two the reference scorer never increments; the
/// parity contract is exact equality on every OTHER counter's delta.
bool isBatchOnly(std::size_t counterIndex) {
  return counterIndex == static_cast<std::size_t>(obs::Counter::BatchedGroupScores) ||
         counterIndex == static_cast<std::size_t>(obs::Counter::BatchContribCells);
}

void expectCounterParity(const std::array<std::uint64_t, obs::kNumCounters>& batched,
                         const std::array<std::uint64_t, obs::kNumCounters>& reference,
                         const std::string& what) {
  for (std::size_t i = 0; i < obs::kNumCounters; ++i) {
    if (isBatchOnly(i)) continue;
    EXPECT_EQ(batched[i], reference[i])
        << what << ": counter " << obs::counterName(static_cast<obs::Counter>(i));
  }
}

void expectSameVerdicts(const GroupVerdicts& a, const GroupVerdicts& b,
                        const std::string& what) {
  ASSERT_EQ(a.failing.size(), b.failing.size()) << what;
  for (std::size_t p = 0; p < a.failing.size(); ++p) {
    EXPECT_EQ(a.failing[p], b.failing[p]) << what << ": partition " << p;
  }
  EXPECT_EQ(a.hasSignatures, b.hasSignatures) << what;
  EXPECT_EQ(a.signatureDegree, b.signatureDegree) << what;
  ASSERT_EQ(a.errorSig.size(), b.errorSig.size()) << what;
  for (std::size_t p = 0; p < a.errorSig.size(); ++p) {
    EXPECT_EQ(a.errorSig[p], b.errorSig[p]) << what << ": signatures of partition " << p;
  }
}

/// Workloads are the expensive part (pattern generation + fault simulation);
/// build each circuit's once and share it across every parity dimension.
const CircuitWorkload& workloadFor(const std::string& name) {
  static std::map<std::string, CircuitWorkload>* cache =
      new std::map<std::string, CircuitWorkload>();
  auto it = cache->find(name);
  if (it == cache->end()) {
    const Netlist nl = generateNamedCircuit(name);
    WorkloadConfig wc;
    wc.numPatterns = 64;
    wc.numFaults = name == "s9234" ? 60 : 120;
    it = cache->emplace(name, prepareWorkload(nl, wc)).first;
  }
  return it->second;
}

DiagnosisConfig configFor(SchemeKind scheme, bool pruning, bool batched,
                          SignatureMode mode = SignatureMode::Exact) {
  DiagnosisConfig config;
  config.scheme = scheme;
  config.numPartitions = 6;
  config.groupsPerPartition = 8;
  config.numPatterns = 64;
  config.mode = mode;
  config.pruning = pruning;
  config.batchedScoring = batched;
  return config;
}

std::string caseName(const std::string& circuit, SchemeKind scheme, bool pruning) {
  return circuit + "/" + schemeName(scheme) + (pruning ? "+prune" : "");
}

class BatchedParity : public ::testing::Test {
 protected:
  void TearDown() override {
    setGlobalThreadCount(0);
    obs::MetricsRegistry::instance().reset();
  }
};

TEST_F(BatchedParity, VerdictsSignaturesAndCountersMatchPerFault) {
  // Engine-level oracle: for every fault, runBatched() vs runReference() on
  // the same engine — verdict rows, signatures, and the per-fault counter
  // deltas (via DeltaCapture) must match exactly. Covers both signature
  // modes; Exact runs with pruning signatures on so errorSig is exercised.
  for (const char* circuit : kCircuits) {
    const CircuitWorkload& work = workloadFor(circuit);
    for (SchemeKind scheme : kSchemes) {
      for (SignatureMode mode : {SignatureMode::Exact, SignatureMode::Misr}) {
        const DiagnosisPipeline pipeline(
            work.topology,
            configFor(scheme, /*pruning=*/mode == SignatureMode::Exact, true, mode));
        ASSERT_TRUE(pipeline.prepared().batchReady());
        const SessionEngine& engine = pipeline.engine();
        std::size_t checked = 0;
        for (const FaultResponse& r : work.responses) {
          if (!r.detected()) continue;
          if (++checked > 40) break;  // per-config cap; circuits x schemes x modes cover
          const std::string what = caseName(circuit, scheme, false) +
                                   (mode == SignatureMode::Misr ? "/misr" : "/exact");
          GroupVerdicts batched, reference;
          std::array<std::uint64_t, obs::kNumCounters> batchedDeltas{}, referenceDeltas{};
          {
            obs::DeltaCapture capture;
            batched = engine.runBatched(pipeline.prepared(), r);
            batchedDeltas = capture.deltas();
          }
          {
            obs::DeltaCapture capture;
            reference = engine.runReference(pipeline.prepared(), r);
            referenceDeltas = capture.deltas();
          }
          expectSameVerdicts(batched, reference, what);
          expectCounterParity(batchedDeltas, referenceDeltas, what);
          // The batched scorer must also account its own work: one score per
          // session of the schedule.
          EXPECT_EQ(batchedDeltas[static_cast<std::size_t>(obs::Counter::BatchedGroupScores)],
                    pipeline.prepared().totalGroups())
              << what;
        }
        ASSERT_GT(checked, 0u) << circuit;
      }
    }
  }
}

TEST_F(BatchedParity, DrReportsBitIdenticalAcrossScorersThreadsAndPruning) {
  // Pipeline-level oracle: full DR evaluation with batchedScoring on vs off,
  // at 1/2/8 threads, with and without pruning. Double-precision DR values
  // compare bitwise (==), not approximately.
  for (const char* circuit : kCircuits) {
    const CircuitWorkload& work = workloadFor(circuit);
    for (SchemeKind scheme : kSchemes) {
      for (bool pruning : {false, true}) {
        const DiagnosisPipeline reference(work.topology,
                                          configFor(scheme, pruning, /*batched=*/false));
        const DiagnosisPipeline batched(work.topology,
                                        configFor(scheme, pruning, /*batched=*/true));
        setGlobalThreadCount(1);
        const auto before = obs::MetricsRegistry::instance().snapshot();
        const DrReport expected = reference.evaluate(work.responses);
        const auto mid = obs::MetricsRegistry::instance().snapshot();
        for (std::size_t threads : kThreadCounts) {
          setGlobalThreadCount(threads);
          const std::string what = caseName(circuit, scheme, pruning) + " @" +
                                   std::to_string(threads) + " threads";
          const DrReport actual = batched.evaluate(work.responses);
          EXPECT_EQ(expected.faults, actual.faults) << what;
          EXPECT_EQ(expected.sumCandidates, actual.sumCandidates) << what;
          EXPECT_EQ(expected.sumActual, actual.sumActual) << what;
          EXPECT_EQ(expected.dr, actual.dr) << what;
        }
        setGlobalThreadCount(1);
        // Counter deltas of one batched evaluate (at 1 thread, taken last so
        // the snapshots bracket it exactly) vs the reference evaluate.
        const auto preBatch = obs::MetricsRegistry::instance().snapshot();
        (void)batched.evaluate(work.responses);
        const auto postBatch = obs::MetricsRegistry::instance().snapshot();
        std::array<std::uint64_t, obs::kNumCounters> refDeltas{}, batDeltas{};
        for (std::size_t i = 0; i < obs::kNumCounters; ++i) {
          refDeltas[i] = mid.counters[i] - before.counters[i];
          batDeltas[i] = postBatch.counters[i] - preBatch.counters[i];
        }
        expectCounterParity(batDeltas, refDeltas, caseName(circuit, scheme, pruning));
      }
    }
  }
}

TEST_F(BatchedParity, NoisyPipelineBitIdenticalAcrossScorers) {
  // The ±noise dimension: the corruptor perturbs *verdicts* (which the two
  // scorers produce identically) and the retry path re-runs partitions via
  // the shared per-session engine, so the whole resilient report — DR,
  // misdiagnosis rate, retry accounting — must be bit-identical too.
  NoiseConfig noise;
  noise.flipRate = 0.02;
  noise.intermittentRate = 0.01;
  noise.seed = 0xBA7C;
  RetryPolicy retry;
  retry.maxRetriesPerSession = 2;
  retry.sessionBudget = 64;
  for (const std::string circuit : {"s344", "s953"}) {
    const CircuitWorkload& work = workloadFor(circuit);
    for (SchemeKind scheme : kSchemes) {
      const NoisyPipeline reference(work.topology,
                                    configFor(scheme, false, /*batched=*/false), noise, retry);
      const NoisyPipeline batched(work.topology, configFor(scheme, false, /*batched=*/true),
                                  noise, retry);
      setGlobalThreadCount(1);
      const NoisyDrReport expected = reference.evaluate(work.responses);
      for (std::size_t threads : kThreadCounts) {
        setGlobalThreadCount(threads);
        const std::string what =
            circuit + "/" + schemeName(scheme) + "+noise @" + std::to_string(threads);
        const NoisyDrReport actual = batched.evaluate(work.responses);
        EXPECT_EQ(expected.dr, actual.dr) << what;
        EXPECT_EQ(expected.faults, actual.faults) << what;
        EXPECT_EQ(expected.sumCandidates, actual.sumCandidates) << what;
        EXPECT_EQ(expected.sumActual, actual.sumActual) << what;
        EXPECT_EQ(expected.misdiagnosisRate, actual.misdiagnosisRate) << what;
        EXPECT_EQ(expected.emptyRate, actual.emptyRate) << what;
        EXPECT_EQ(expected.meanConfidence, actual.meanConfidence) << what;
        EXPECT_EQ(expected.totalInconsistencies, actual.totalInconsistencies) << what;
        EXPECT_EQ(expected.totalRetrySessions, actual.totalRetrySessions) << what;
        EXPECT_EQ(expected.unresolved, actual.unresolved) << what;
      }
    }
  }
}

TEST_F(BatchedParity, ScratchReuseMatchesFreshScratch) {
  // A worker reuses one SessionBatchScratch across its whole fault chunk;
  // stale buffer contents from fault i must never leak into fault i+1.
  const CircuitWorkload& work = workloadFor("s526");
  const DiagnosisPipeline pipeline(work.topology,
                                   configFor(SchemeKind::TwoStep, true, true));
  const SessionEngine& engine = pipeline.engine();
  SessionBatchScratch reused;
  std::size_t checked = 0;
  for (const FaultResponse& r : work.responses) {
    if (!r.detected()) continue;
    if (++checked > 60) break;
    const GroupVerdicts withReuse = engine.runBatched(pipeline.prepared(), r, &reused);
    const GroupVerdicts fresh = engine.runBatched(pipeline.prepared(), r);
    expectSameVerdicts(withReuse, fresh, "scratch reuse fault " + std::to_string(checked));
  }
  ASSERT_GT(checked, 2u);
}

}  // namespace
}  // namespace scandiag
