#include "diagnosis/vector_identification.hpp"

#include <gtest/gtest.h>

#include "netlist/synthetic_generator.hpp"

namespace scandiag {
namespace {

DiagnosisConfig vectorConfig(SchemeKind scheme, std::size_t partitions = 4,
                             std::size_t groups = 4, std::size_t patterns = 64) {
  DiagnosisConfig c;
  c.scheme = scheme;
  c.numPartitions = partitions;
  c.groupsPerPartition = groups;
  c.numPatterns = patterns;
  return c;
}

FaultResponse responseWithStreams(std::size_t patterns,
                                  const std::vector<std::vector<std::size_t>>& errs) {
  FaultResponse r;
  r.failingCells = BitVector(errs.size());
  for (std::size_t i = 0; i < errs.size(); ++i) {
    r.failingCells.set(i);
    r.failingCellOrdinals.push_back(i);
    BitVector stream(patterns);
    for (std::size_t t : errs[i]) stream.set(t);
    r.errorStreams.push_back(stream);
  }
  return r;
}

TEST(VectorDiagnoser, FailingVectorsIsUnionOfStreams) {
  const FaultResponse r = responseWithStreams(16, {{1, 5}, {5, 9}});
  const BitVector v = VectorDiagnoser::failingVectors(r, 16);
  EXPECT_EQ(v.toIndices(), (std::vector<std::size_t>{1, 5, 9}));
}

TEST(VectorDiagnoser, CandidatesContainTruth) {
  const VectorDiagnoser diag(vectorConfig(SchemeKind::TwoStep));
  const FaultResponse r = responseWithStreams(64, {{3, 17, 40}});
  const BitVector truth = VectorDiagnoser::failingVectors(r, 64);
  const BitVector cand = diag.diagnose(r);
  EXPECT_TRUE(truth.isSubsetOf(cand));
}

TEST(VectorDiagnoser, MorePartitionsTightenCandidates) {
  const FaultResponse r = responseWithStreams(64, {{10}, {33}});
  std::size_t prev = 64;
  for (std::size_t p : {1u, 2u, 4u, 8u}) {
    const VectorDiagnoser diag(vectorConfig(SchemeKind::RandomSelection, p));
    const std::size_t count = diag.diagnose(r).count();
    EXPECT_LE(count, prev);
    prev = count;
  }
  EXPECT_LE(prev, 8u);
}

TEST(VectorDiagnoser, SoundOnRealWorkload) {
  const Netlist nl = generateNamedCircuit("s526");
  WorkloadConfig wc;
  wc.numPatterns = 64;
  wc.numFaults = 60;
  const CircuitWorkload work = prepareWorkload(nl, wc);
  const VectorDiagnoser diag(vectorConfig(SchemeKind::TwoStep));
  for (const FaultResponse& r : work.responses) {
    const BitVector truth = VectorDiagnoser::failingVectors(r, 64);
    EXPECT_TRUE(truth.isSubsetOf(diag.diagnose(r)));
  }
  const DrReport rep = diag.evaluate(work.responses);
  EXPECT_GE(rep.dr, 0.0);
  EXPECT_EQ(rep.faults, work.responses.size());
}

TEST(VectorDiagnoser, RejectsMisrMode) {
  DiagnosisConfig c = vectorConfig(SchemeKind::TwoStep);
  c.mode = SignatureMode::Misr;
  EXPECT_THROW(VectorDiagnoser{c}, std::invalid_argument);
}

TEST(VectorDiagnoser, StreamLengthMismatchRejected) {
  const VectorDiagnoser diag(vectorConfig(SchemeKind::TwoStep, 2, 4, 32));
  const FaultResponse r = responseWithStreams(64, {{3}});
  EXPECT_THROW(diag.diagnose(r), std::invalid_argument);
}

}  // namespace
}  // namespace scandiag
