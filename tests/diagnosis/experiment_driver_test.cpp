#include "diagnosis/experiment_driver.hpp"

#include <gtest/gtest.h>

#include "netlist/synthetic_generator.hpp"

namespace scandiag {
namespace {

WorkloadConfig smallWorkload() {
  WorkloadConfig wc;
  wc.numPatterns = 64;
  wc.numFaults = 50;
  return wc;
}

DiagnosisConfig smallConfig(SchemeKind scheme) {
  DiagnosisConfig c;
  c.scheme = scheme;
  c.numPartitions = 4;
  c.groupsPerPartition = 4;
  c.numPatterns = 64;
  return c;
}

TEST(PrepareWorkload, ProducesDetectedResponses) {
  const Netlist nl = generateNamedCircuit("s526");
  const CircuitWorkload work = prepareWorkload(nl, smallWorkload());
  EXPECT_EQ(work.topology.numCells(), nl.dffs().size());
  EXPECT_EQ(work.patternsApplied, 64u);
  EXPECT_GT(work.responses.size(), 10u);
  for (const FaultResponse& r : work.responses) EXPECT_TRUE(r.detected());
}

TEST(PrepareWorkload, MultiChainTopology) {
  const Netlist nl = generateNamedCircuit("s953");
  const CircuitWorkload work = prepareWorkload(nl, smallWorkload(), 4);
  EXPECT_EQ(work.topology.numChains(), 4u);
  EXPECT_EQ(work.topology.numCells(), nl.dffs().size());
}

TEST(PrepareWorkload, Deterministic) {
  const Netlist nl = generateNamedCircuit("s526");
  const CircuitWorkload a = prepareWorkload(nl, smallWorkload());
  const CircuitWorkload b = prepareWorkload(nl, smallWorkload());
  ASSERT_EQ(a.responses.size(), b.responses.size());
  for (std::size_t i = 0; i < a.responses.size(); ++i) {
    EXPECT_EQ(a.responses[i].failingCells, b.responses[i].failingCells);
  }
}

TEST(BuildPartitions, CountAndValidity) {
  const auto partitions = buildPartitions(smallConfig(SchemeKind::TwoStep), 100);
  ASSERT_EQ(partitions.size(), 4u);
  for (const Partition& p : partitions) {
    EXPECT_NO_THROW(p.validate());
    EXPECT_EQ(p.groupCount(), 4u);
  }
}

TEST(DiagnosisPipeline, EvaluateAggregatesDr) {
  const Netlist nl = generateNamedCircuit("s526");
  const CircuitWorkload work = prepareWorkload(nl, smallWorkload());
  const DiagnosisPipeline pipeline(work.topology, smallConfig(SchemeKind::TwoStep));
  const DrReport report = pipeline.evaluate(work.responses);
  EXPECT_EQ(report.faults, work.responses.size());
  EXPECT_GE(report.dr, 0.0);  // exact mode: candidates >= actual
  EXPECT_GE(report.sumCandidates, report.sumActual);
}

TEST(DiagnosisPipeline, SweepLastEntryMatchesEvaluate) {
  const Netlist nl = generateNamedCircuit("s526");
  const CircuitWorkload work = prepareWorkload(nl, smallWorkload());
  const DiagnosisPipeline pipeline(work.topology, smallConfig(SchemeKind::RandomSelection));
  const auto sweep = pipeline.evaluateSweep(work.responses);
  ASSERT_EQ(sweep.size(), 4u);
  EXPECT_NEAR(sweep.back(), pipeline.evaluate(work.responses).dr, 1e-12);
}

TEST(DiagnosisPipeline, SchemesShareWorkloadButDiffer) {
  const Netlist nl = generateNamedCircuit("s953");
  const CircuitWorkload work = prepareWorkload(nl, smallWorkload());
  const DiagnosisPipeline a(work.topology, smallConfig(SchemeKind::RandomSelection));
  const DiagnosisPipeline b(work.topology, smallConfig(SchemeKind::IntervalBased));
  EXPECT_NE(a.evaluate(work.responses).dr, b.evaluate(work.responses).dr);
}

TEST(DiagnosisPipeline, UndetectedResponsesSkipped) {
  const Netlist nl = generateNamedCircuit("s526");
  const CircuitWorkload work = prepareWorkload(nl, smallWorkload());
  std::vector<FaultResponse> padded = work.responses;
  FaultResponse undetected;
  undetected.failingCells = BitVector(work.topology.numCells());
  padded.push_back(undetected);
  const DiagnosisPipeline pipeline(work.topology, smallConfig(SchemeKind::TwoStep));
  EXPECT_EQ(pipeline.evaluate(padded).faults, work.responses.size());
}

TEST(DiagnosisPipeline, PipelineIsDeterministic) {
  const Netlist nl = generateNamedCircuit("s526");
  const CircuitWorkload work = prepareWorkload(nl, smallWorkload());
  const DiagnosisPipeline a(work.topology, smallConfig(SchemeKind::TwoStep));
  const DiagnosisPipeline b(work.topology, smallConfig(SchemeKind::TwoStep));
  EXPECT_EQ(a.evaluate(work.responses).sumCandidates,
            b.evaluate(work.responses).sumCandidates);
}

}  // namespace
}  // namespace scandiag
