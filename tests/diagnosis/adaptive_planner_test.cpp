// The adaptive online planner's contracts: parity with the fixed two-step
// schedule when forced into its order, meets-or-beats DR at equal session
// budget when free to choose, budget accounting, determinism, and the
// rejections (no fixed schedule, no superposition pruning).

#include <gtest/gtest.h>

#include <stdexcept>

#include "diagnosis/adaptive_planner.hpp"
#include "diagnosis/cost_model.hpp"
#include "diagnosis/experiment_driver.hpp"
#include "netlist/synthetic_generator.hpp"

namespace scandiag {
namespace {

class AdaptiveFixture : public ::testing::Test {
 protected:
  static const CircuitWorkload& work() {
    static const CircuitWorkload w = [] {
      WorkloadConfig wc;
      wc.numPatterns = 128;
      wc.numFaults = 150;
      return prepareWorkload(generateNamedCircuit("s953"), wc);
    }();
    return w;
  }

  static DiagnosisConfig adaptiveConfig() {
    DiagnosisConfig config;
    config.scheme = SchemeKind::Adaptive;
    config.numPartitions = 8;
    config.groupsPerPartition = 4;
    config.numPatterns = 128;
    return config;
  }
};

// ---- Parity: forced into the fixed order, adaptive IS two-step -------------

TEST_F(AdaptiveFixture, ForcedFixedOrderReproducesTwoStepExactly) {
  DiagnosisConfig twoCfg = adaptiveConfig();
  twoCfg.scheme = SchemeKind::TwoStep;
  const DiagnosisPipeline twoStep(work().topology, twoCfg);

  DiagnosisConfig forced = adaptiveConfig();
  forced.schemeConfig.adaptive.forceFixedOrder = true;
  const DiagnosisPipeline adaptive(work().topology, forced);
  ASSERT_NE(adaptive.adaptive(), nullptr);

  for (const FaultResponse& r : work().responses) {
    const FaultDiagnosis fixed = twoStep.diagnose(r);
    const FaultDiagnosis online = adaptive.diagnose(r);
    ASSERT_EQ(fixed.candidates.cells, online.candidates.cells);
    EXPECT_EQ(online.sessionsSpent,
              forced.numPartitions * forced.groupsPerPartition);
  }

  // The aggregate paths agree too — bitwise, since the sums are identical.
  const DrReport a = twoStep.evaluate(work().responses);
  const DrReport b = adaptive.evaluate(work().responses);
  EXPECT_EQ(a.sumCandidates, b.sumCandidates);
  EXPECT_EQ(a.sumActual, b.sumActual);
  EXPECT_EQ(a.dr, b.dr);

  const std::vector<double> sweepFixed = twoStep.evaluateSweep(work().responses);
  const std::vector<double> sweepOnline = adaptive.evaluateSweep(work().responses);
  ASSERT_EQ(sweepFixed.size(), sweepOnline.size());
  for (std::size_t p = 0; p < sweepFixed.size(); ++p) {
    EXPECT_EQ(sweepFixed[p], sweepOnline[p]) << "prefix " << p + 1;
  }
}

// ---- The tentpole claim: meets-or-beats at equal session budget ------------

TEST_F(AdaptiveFixture, MeetsOrBeatsTwoStepAtEqualBudget) {
  DiagnosisConfig twoCfg = adaptiveConfig();
  twoCfg.scheme = SchemeKind::TwoStep;
  const DrReport fixed =
      DiagnosisPipeline(work().topology, twoCfg).evaluate(work().responses);
  const DrReport online =
      DiagnosisPipeline(work().topology, adaptiveConfig()).evaluate(work().responses);
  EXPECT_EQ(fixed.sumActual, online.sumActual);
  EXPECT_LE(online.sumCandidates, fixed.sumCandidates);
  EXPECT_LE(online.dr, fixed.dr);
}

TEST_F(AdaptiveFixture, SweepIsMonotoneNonIncreasing) {
  // Per fault the survivor set only ever shrinks, so the anytime curve read
  // at growing budgets must be non-increasing.
  const DiagnosisPipeline pipeline(work().topology, adaptiveConfig());
  const std::vector<double> sweep = pipeline.evaluateSweep(work().responses);
  ASSERT_EQ(sweep.size(), adaptiveConfig().numPartitions);
  for (std::size_t p = 1; p < sweep.size(); ++p) {
    EXPECT_LE(sweep[p], sweep[p - 1]) << "prefix " << p + 1;
  }
}

// ---- Budget accounting ------------------------------------------------------

TEST_F(AdaptiveFixture, BudgetIsRespectedAndSoundnessHolds) {
  const DiagnosisPipeline pipeline(work().topology, adaptiveConfig());
  const AdaptivePlanner* planner = pipeline.adaptive();
  ASSERT_NE(planner, nullptr);
  const std::size_t budget =
      adaptiveConfig().numPartitions * adaptiveConfig().groupsPerPartition;
  EXPECT_EQ(planner->sessionBudget(), budget);
  for (const FaultResponse& r : work().responses) {
    const AdaptiveOutcome o = planner->run(r);
    EXPECT_LE(o.sessionsUsed, budget);
    EXPECT_EQ(o.sessionBudget, budget);
    EXPECT_EQ(o.chosen.size(), o.steps.size());
    ASSERT_EQ(o.verdicts.failing.size(), o.chosen.size());
    // Soundness: the surviving candidates always cover the true failing cells.
    EXPECT_TRUE(r.failingCells.isSubsetOf(o.candidates.cells));
    // The step traces are cumulative and consistent with the final spend.
    if (!o.steps.empty()) {
      EXPECT_EQ(o.steps.back().cumulativeSessions, o.sessionsUsed);
    }
  }
}

TEST_F(AdaptiveFixture, StopsEarlyOnceResolvedAndSavesSessions) {
  // At a generous budget the greedy loop stops as soon as one survivor is
  // left — at least one fault must resolve before the budget runs out.
  DiagnosisConfig config = adaptiveConfig();
  config.schemeConfig.adaptive.sessionBudget = 64;
  const DiagnosisPipeline pipeline(work().topology, config);
  std::size_t savedSomewhere = 0;
  for (const FaultResponse& r : work().responses) {
    const AdaptiveOutcome o = pipeline.adaptive()->run(r);
    if (o.sessionsUsed < o.sessionBudget) ++savedSomewhere;
    if (o.candidates.positions.count() <= 1) {
      EXPECT_LE(o.sessionsUsed, o.sessionBudget);
    }
  }
  EXPECT_GT(savedSomewhere, 0u);
}

TEST_F(AdaptiveFixture, SessionsSpentFeedsCostModel) {
  const DiagnosisPipeline pipeline(work().topology, adaptiveConfig());
  const FaultDiagnosis d = pipeline.diagnose(work().responses.front());
  EXPECT_GT(d.sessionsSpent, 0u);
  const DiagnosisCost cost =
      adaptiveRunCost(d.sessionsSpent, 128, work().topology.maxChainLength());
  EXPECT_EQ(cost.sessions, d.sessionsSpent);
  EXPECT_EQ(cost.clockCycles,
            sessionCost(128, work().topology.maxChainLength()).clockCycles * d.sessionsSpent);
}

// ---- Determinism ------------------------------------------------------------

TEST_F(AdaptiveFixture, TwoPlannersChooseIdenticalSchedules) {
  const DiagnosisPipeline a(work().topology, adaptiveConfig());
  const DiagnosisPipeline b(work().topology, adaptiveConfig());
  for (const FaultResponse& r : work().responses) {
    const AdaptiveOutcome oa = a.adaptive()->run(r);
    const AdaptiveOutcome ob = b.adaptive()->run(r);
    ASSERT_EQ(oa.chosen, ob.chosen);
    EXPECT_EQ(oa.candidates.cells, ob.candidates.cells);
    EXPECT_EQ(oa.sessionsUsed, ob.sessionsUsed);
  }
}

// ---- Pool construction ------------------------------------------------------

TEST_F(AdaptiveFixture, PoolGroupCountsAreClampedToChainPowersOfTwo) {
  // A 3-position chain cannot host the requested 8-group partitions: the pool
  // must clamp to the largest feasible power of two (2), not throw.
  const ScanTopology topo = ScanTopology::singleChain(3);
  DiagnosisConfig config = adaptiveConfig();
  config.groupsPerPartition = 8;
  const AdaptivePlanner planner(topo, config);
  ASSERT_GT(planner.pool().size(), 0u);
  for (std::size_t i = 0; i < planner.pool().size(); ++i) {
    EXPECT_EQ(planner.pool().partition(i).groupCount(), 2u);
  }
}

TEST_F(AdaptiveFixture, ScheduleReturnsChosenPartitionsInOrder) {
  const DiagnosisPipeline pipeline(work().topology, adaptiveConfig());
  const AdaptivePlanner* planner = pipeline.adaptive();
  const AdaptiveOutcome o = planner->run(work().responses.front());
  const std::vector<Partition> schedule = planner->schedule(o);
  ASSERT_EQ(schedule.size(), o.chosen.size());
  for (std::size_t p = 0; p < schedule.size(); ++p) {
    EXPECT_EQ(schedule[p].groups, planner->pool().partition(o.chosen[p]).groups);
  }
}

// ---- Rejections -------------------------------------------------------------

TEST(AdaptiveScheme, HasNoFixedScheduleFactory) {
  EXPECT_THROW(makeScheme(SchemeKind::Adaptive, SchemeConfig{}, 64, 4),
               std::invalid_argument);
  DiagnosisConfig config;
  config.scheme = SchemeKind::Adaptive;
  EXPECT_THROW(buildPartitions(config, 64), std::invalid_argument);
}

TEST_F(AdaptiveFixture, PruningIsRejected) {
  DiagnosisConfig config = adaptiveConfig();
  config.pruning = true;
  EXPECT_THROW(DiagnosisPipeline(work().topology, config), std::invalid_argument);
}

TEST(AdaptiveScheme, EmptyPoolRejected) {
  DiagnosisConfig config;
  config.scheme = SchemeKind::Adaptive;
  config.schemeConfig.adaptive.seedPool = 0;
  config.schemeConfig.adaptive.intervalCandidates = 0;
  const ScanTopology topo = ScanTopology::singleChain(64);
  EXPECT_THROW(AdaptivePlanner(topo, config), std::invalid_argument);
}

TEST(AdaptiveScheme, NameParsesAndPrints) {
  EXPECT_EQ(parseSchemeKind("adaptive"), SchemeKind::Adaptive);
  EXPECT_EQ(std::string(schemeName(SchemeKind::Adaptive)), "adaptive");
}

}  // namespace
}  // namespace scandiag
