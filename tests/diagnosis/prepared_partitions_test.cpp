#include "diagnosis/prepared_partitions.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>

#include "diagnosis/experiment_driver.hpp"
#include "diagnosis/superposition_pruner.hpp"
#include "netlist/synthetic_generator.hpp"

namespace scandiag {
namespace {

// Parity contract of the prepared-schedule hot path: everything computed
// through a PreparedPartitionSet must be bit-identical to the per-call
// groupTable() fallback, for every scheme the pipeline can build.

const SchemeKind kSchemes[] = {SchemeKind::IntervalBased, SchemeKind::RandomSelection,
                               SchemeKind::TwoStep};

DiagnosisConfig configFor(SchemeKind scheme, std::size_t numPatterns) {
  DiagnosisConfig config;
  config.scheme = scheme;
  config.numPartitions = 6;
  config.groupsPerPartition = 8;
  config.numPatterns = numPatterns;
  config.pruning = true;  // forces signature computation, the table-using path
  return config;
}

TEST(PreparedPartitionSet, TablesMatchPerCallGroupTable) {
  for (const std::size_t chainLength : {2u, 7u, 29u, 211u}) {
    for (const SchemeKind scheme : kSchemes) {
      DiagnosisConfig config = configFor(scheme, 32);
      // Random selection requires a power-of-two group count <= chainLength.
      config.groupsPerPartition =
          std::min(config.groupsPerPartition, std::bit_floor(chainLength));
      const std::vector<Partition> partitions = buildPartitions(config, chainLength);
      const PreparedPartitionSet prepared(partitions);
      ASSERT_EQ(prepared.size(), partitions.size());
      for (std::size_t p = 0; p < partitions.size(); ++p) {
        EXPECT_EQ(prepared.groupTable(p), partitions[p].groupTable())
            << schemeName(scheme) << " length " << chainLength << " partition " << p;
        EXPECT_EQ(&prepared.partition(p), &prepared.partitions()[p]);
      }
    }
  }
}

TEST(PreparedPartitionSet, EmptySet) {
  const PreparedPartitionSet prepared;
  EXPECT_TRUE(prepared.empty());
  EXPECT_EQ(prepared.size(), 0u);
}

class PreparedParityFixture : public ::testing::Test {
 protected:
  // s953 profile, the paper's Table 1 circuit: 29-cell single chain, enough
  // faults to exercise multi-cell responses.
  static const CircuitWorkload& work() {
    static const CircuitWorkload w = [] {
      WorkloadConfig wc;
      wc.numPatterns = 96;
      wc.numFaults = 60;
      return prepareWorkload(generateNamedCircuit("s953"), wc);
    }();
    return w;
  }
};

TEST_F(PreparedParityFixture, EngineRunMatchesVectorOverload) {
  for (const SchemeKind scheme : kSchemes) {
    const DiagnosisConfig config = configFor(scheme, work().patternsApplied);
    const std::vector<Partition> partitions =
        buildPartitions(config, work().topology.maxChainLength());
    const PreparedPartitionSet prepared(partitions);

    SessionConfig sc{SignatureMode::Exact, config.numPatterns};
    sc.computeSignatures = true;
    const SessionEngine engine(work().topology, sc);
    for (const FaultResponse& r : work().responses) {
      const GroupVerdicts viaPrepared = engine.run(prepared, r);
      const GroupVerdicts viaVector = engine.run(partitions, r);
      ASSERT_EQ(viaPrepared.failing, viaVector.failing) << schemeName(scheme);
      ASSERT_EQ(viaPrepared.errorSig, viaVector.errorSig) << schemeName(scheme);
      EXPECT_EQ(viaPrepared.hasSignatures, viaVector.hasSignatures);
      EXPECT_EQ(viaPrepared.signatureDegree, viaVector.signatureDegree);
    }
  }
}

TEST_F(PreparedParityFixture, MisrModeRunMatchesVectorOverload) {
  const DiagnosisConfig config = configFor(SchemeKind::TwoStep, work().patternsApplied);
  const std::vector<Partition> partitions =
      buildPartitions(config, work().topology.maxChainLength());
  const PreparedPartitionSet prepared(partitions);

  const SessionConfig sc{SignatureMode::Misr, config.numPatterns};
  const SessionEngine engine(work().topology, sc);
  for (const FaultResponse& r : work().responses) {
    const GroupVerdicts viaPrepared = engine.run(prepared, r);
    const GroupVerdicts viaVector = engine.run(partitions, r);
    ASSERT_EQ(viaPrepared.failing, viaVector.failing);
    ASSERT_EQ(viaPrepared.errorSig, viaVector.errorSig);
  }
}

TEST_F(PreparedParityFixture, RunPartitionMatchesVectorOverload) {
  const DiagnosisConfig config = configFor(SchemeKind::RandomSelection, work().patternsApplied);
  const std::vector<Partition> partitions =
      buildPartitions(config, work().topology.maxChainLength());
  const PreparedPartitionSet prepared(partitions);

  SessionConfig sc{SignatureMode::Exact, config.numPatterns};
  sc.computeSignatures = true;
  const SessionEngine engine(work().topology, sc);
  const FaultResponse& r = work().responses.front();
  for (std::size_t p = 0; p < partitions.size(); ++p) {
    const PartitionVerdictRow viaPrepared = engine.runPartition(prepared, p, r);
    const PartitionVerdictRow viaVector = engine.runPartition(partitions[p], r);
    EXPECT_EQ(viaPrepared.failing, viaVector.failing) << "partition " << p;
    EXPECT_EQ(viaPrepared.errorSig, viaVector.errorSig) << "partition " << p;
  }
}

TEST_F(PreparedParityFixture, PrunerMatchesVectorOverload) {
  for (const SchemeKind scheme : kSchemes) {
    const DiagnosisConfig config = configFor(scheme, work().patternsApplied);
    const std::vector<Partition> partitions =
        buildPartitions(config, work().topology.maxChainLength());
    const PreparedPartitionSet prepared(partitions);

    SessionConfig sc{SignatureMode::Exact, config.numPatterns};
    sc.computeSignatures = true;
    const SessionEngine engine(work().topology, sc);
    const CandidateAnalyzer analyzer(work().topology);
    const SuperpositionPruner pruner(work().topology);
    for (const FaultResponse& r : work().responses) {
      const GroupVerdicts verdicts = engine.run(prepared, r);
      const CandidateSet candidates = analyzer.analyze(partitions, verdicts);
      PruneStats statsPrepared, statsVector;
      const CandidateSet viaPrepared =
          pruner.prune(prepared, verdicts, candidates, &statsPrepared);
      const CandidateSet viaVector =
          pruner.prune(partitions, verdicts, candidates, &statsVector);
      ASSERT_EQ(viaPrepared.positions, viaVector.positions) << schemeName(scheme);
      ASSERT_EQ(viaPrepared.cells, viaVector.cells) << schemeName(scheme);
      EXPECT_EQ(statsPrepared.atoms, statsVector.atoms);
      EXPECT_EQ(statsPrepared.prunedAtoms, statsVector.prunedAtoms);
      EXPECT_EQ(statsPrepared.prunedPositions, statsVector.prunedPositions);
      EXPECT_EQ(statsPrepared.consistent, statsVector.consistent);
    }
  }
}

TEST(PreparedPartitionSetPipeline, PipelineExposesPreparedSchedule) {
  // The pipeline's prepared() view and partitions() accessor stay consistent,
  // on a synthetic circuit small enough for an exhaustive table check.
  const Netlist nl = generateNamedCircuit("s344");
  WorkloadConfig wc;
  wc.numPatterns = 64;
  wc.numFaults = 20;
  const CircuitWorkload work = prepareWorkload(nl, wc);
  for (const SchemeKind scheme : kSchemes) {
    const DiagnosisConfig config = configFor(scheme, wc.numPatterns);
    const DiagnosisPipeline pipeline(work.topology, config);
    ASSERT_EQ(pipeline.prepared().size(), pipeline.partitions().size());
    for (std::size_t p = 0; p < pipeline.partitions().size(); ++p) {
      EXPECT_EQ(pipeline.prepared().groupTable(p), pipeline.partitions()[p].groupTable());
    }
    // End-to-end: the prepared-path diagnose matches a hand-rolled run over
    // the bare partition vector.
    SessionConfig sc{SignatureMode::Exact, config.numPatterns};
    sc.computeSignatures = true;
    const SessionEngine engine(work.topology, sc);
    const CandidateAnalyzer analyzer(work.topology);
    const SuperpositionPruner pruner(work.topology);
    for (const FaultResponse& r : work.responses) {
      const FaultDiagnosis d = pipeline.diagnose(r);
      const GroupVerdicts verdicts = engine.run(pipeline.partitions(), r);
      CandidateSet expected = analyzer.analyze(pipeline.partitions(), verdicts);
      expected = pruner.prune(pipeline.partitions(), verdicts, expected);
      EXPECT_EQ(d.candidates.positions, expected.positions) << schemeName(scheme);
      EXPECT_EQ(d.candidates.cells, expected.cells) << schemeName(scheme);
    }
  }
}

}  // namespace
}  // namespace scandiag
