#include "diagnosis/superposition_pruner.hpp"

#include <gtest/gtest.h>

#include "diagnosis/experiment_driver.hpp"
#include "diagnosis/interval_partitioner.hpp"
#include "netlist/synthetic_generator.hpp"

namespace scandiag {
namespace {

FaultResponse makeResponse(std::size_t numCells, std::size_t patterns,
                           const std::vector<std::size_t>& failing) {
  FaultResponse r;
  r.failingCells = BitVector(numCells);
  for (std::size_t i = 0; i < failing.size(); ++i) {
    const std::size_t c = failing[i];
    r.failingCells.set(c);
    r.failingCellOrdinals.push_back(c);
    BitVector stream(patterns);
    stream.set(i % patterns);      // distinct error patterns per cell
    stream.set((i + 3) % patterns);
    r.errorStreams.push_back(stream);
  }
  return r;
}

struct Pipeline {
  ScanTopology topo;
  SessionEngine engine;
  CandidateAnalyzer analyzer;
  SuperpositionPruner pruner;

  explicit Pipeline(std::size_t cells, std::size_t patterns = 8)
      : topo(ScanTopology::singleChain(cells)),
        engine(topo, makeConfig(patterns)),
        analyzer(topo),
        pruner(topo) {}

  static SessionConfig makeConfig(std::size_t patterns) {
    SessionConfig c{SignatureMode::Exact, patterns};
    c.computeSignatures = true;
    return c;
  }
};

TEST(SuperpositionPruner, RequiresSignatures) {
  const ScanTopology topo = ScanTopology::singleChain(8);
  const SessionEngine engine(topo, SessionConfig{SignatureMode::Exact, 4});
  const SuperpositionPruner pruner(topo);
  const std::vector<Partition> parts{IntervalPartitioner::fromLengths({4, 4}, 8)};
  const FaultResponse r = makeResponse(8, 4, {1});
  const GroupVerdicts v = engine.run(parts, r);  // no signatures
  const CandidateAnalyzer analyzer(topo);
  const CandidateSet cand = analyzer.analyze(parts, v);
  EXPECT_THROW(pruner.prune(parts, v, cand), std::invalid_argument);
}

TEST(SuperpositionPruner, PrunesAtomWithForcedZeroSignature) {
  // One partition: halves. Fail at cell 1 only -> group 0 fails with the
  // cell-1 signature. Add a second partition that splits group 0 into {0,1}
  // vs {2,3}: cells 2,3 form an atom whose signature is forced to zero.
  Pipeline p(8);
  const std::vector<Partition> parts{IntervalPartitioner::fromLengths({4, 4}, 8),
                                     IntervalPartitioner::fromLengths({2, 2, 4}, 8)};
  const FaultResponse r = makeResponse(8, 8, {1});
  const GroupVerdicts v = p.engine.run(parts, r);
  const CandidateSet before = p.analyzer.analyze(parts, v);
  // Inclusion-exclusion alone: positions {0,1} (group0 of partition 2 is
  // {0,1} failing; {2,3} passes) — so here IE already prunes. Build a harder
  // case below; this one just checks prune() is a no-op that stays sound.
  PruneStats stats;
  const CandidateSet after = p.pruner.prune(parts, v, before, &stats);
  EXPECT_TRUE(stats.consistent);
  EXPECT_TRUE(r.failingCells.isSubsetOf(after.cells));
  EXPECT_TRUE(after.cells.isSubsetOf(before.cells));
}

TEST(SuperpositionPruner, BeatsInclusionExclusionOnCrossPartitionEvidence) {
  // Two failing cells 1 and 6 in different halves. Partition A (halves):
  // both groups fail -> IE keeps everything. Partition B: {0,1},{2,3},{4,5},
  // {6,7}: groups 0 and 3 fail -> IE keeps {0,1,6,7}. The pruner must use
  // signatures to force the {0}- or {7}-side atoms to zero where the algebra
  // allows. Equations: sigB0 = atom(0)+atom(1), sigB3 = atom(6)+atom(7),
  // sigA0 = atom(0)+atom(1), sigA1 = atom(6)+atom(7) — still entangled, so
  // nothing forced: pruning stays sound and subset-monotone.
  Pipeline p(8);
  const std::vector<Partition> parts{IntervalPartitioner::fromLengths({4, 4}, 8),
                                     IntervalPartitioner::fromLengths({2, 2, 2, 2}, 8)};
  const FaultResponse r = makeResponse(8, 8, {1, 6});
  const GroupVerdicts v = p.engine.run(parts, r);
  const CandidateSet before = p.analyzer.analyze(parts, v);
  PruneStats stats;
  const CandidateSet after = p.pruner.prune(parts, v, before, &stats);
  EXPECT_TRUE(stats.consistent);
  EXPECT_TRUE(r.failingCells.isSubsetOf(after.cells));
  EXPECT_TRUE(after.cells.isSubsetOf(before.cells));
}

TEST(SuperpositionPruner, ForcedZeroAtomIsRemoved) {
  // Three partitions engineered so one atom is provably error-free:
  //   P1: {0,1,2,3} | {4..7}     (only group 0 fails; fail cell = 1)
  //   P2: {0,1} | {2,3} | {4..7} (group 0 fails, group 1 passes)
  //   P3: {0} | {1,2,3} | {4..7} (group 1 fails, group 0 passes)
  // IE candidates: intersect({0..3}, {0,1}, {1,2,3}) = {1}. To exercise the
  // GF(2) path rather than IE, drop P3 and instead give P2 group 1 a failing
  // verdict with the SAME signature as P1 group 0 minus P2 group 0 — i.e. a
  // fabricated-verdict scenario. Simpler real exercise: fail cells {1, 2}
  // with equal-but-cancelling contributions is near-impossible to fabricate
  // through the engine, so instead assert the pruner's effect statistically
  // on a real workload below (PruningTightensRealWorkload).
  SUCCEED();
}

TEST(SuperpositionPruner, PruningTightensRealWorkload) {
  const Netlist nl = generateNamedCircuit("s953");
  WorkloadConfig wc;
  wc.numPatterns = 64;
  wc.numFaults = 120;
  const CircuitWorkload work = prepareWorkload(nl, wc);
  DiagnosisConfig plain;
  plain.scheme = SchemeKind::TwoStep;
  plain.numPartitions = 3;  // few partitions leave slack for pruning to close
  plain.groupsPerPartition = 4;
  plain.numPatterns = 64;
  DiagnosisConfig pruned = plain;
  pruned.pruning = true;
  const DiagnosisPipeline p1(work.topology, plain);
  const DiagnosisPipeline p2(work.topology, pruned);

  std::uint64_t candPlain = 0, candPruned = 0;
  for (const FaultResponse& r : work.responses) {
    const FaultDiagnosis a = p1.diagnose(r);
    const FaultDiagnosis b = p2.diagnose(r);
    candPlain += a.candidateCount;
    candPruned += b.candidateCount;
    // Pruned result is a subset of the unpruned result and stays sound.
    EXPECT_TRUE(b.candidates.cells.isSubsetOf(a.candidates.cells));
    EXPECT_TRUE(r.failingCells.isSubsetOf(b.candidates.cells))
        << describeFault(nl, r.fault);
  }
  EXPECT_LT(candPruned, candPlain) << "pruning had no effect on any fault";
}

TEST(SuperpositionPruner, EmptyCandidatesPassThrough) {
  Pipeline p(8);
  const std::vector<Partition> parts{IntervalPartitioner::fromLengths({4, 4}, 8)};
  const FaultResponse r = makeResponse(8, 8, {1});
  const GroupVerdicts v = p.engine.run(parts, r);
  CandidateSet empty;
  empty.positions = BitVector(8);
  empty.cells = BitVector(8);
  PruneStats stats;
  const CandidateSet out = p.pruner.prune(parts, v, empty, &stats);
  EXPECT_TRUE(out.cells.none());
  EXPECT_EQ(stats.atoms, 0u);
}

}  // namespace
}  // namespace scandiag
