// Active union refinement: the set-cover / binary-search hybrid must collapse
// a candidate superset onto the true failing positions with an exact oracle,
// stay a sound superset at ANY session budget (unqueried intervals remain
// candidates — degrade-never-lie), spend its budget highest-ADI-first, and
// flag cluster counts beyond the simultaneous-fault budget as degraded.

#include "diagnosis/union_diagnoser.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace scandiag {
namespace {

BitVector positionsOf(std::size_t length, const std::vector<std::size_t>& set) {
  BitVector bits(length);
  for (std::size_t p : set) bits.set(p);
  return bits;
}

/// Exact permanent-union oracle: a session over [lo, hi) fails iff it covers
/// a true failing position.
IntervalOracle exactOracle(const BitVector& truePositions, std::size_t* sessions = nullptr) {
  return [&truePositions, sessions](std::size_t lo, std::size_t hi, std::size_t) {
    if (sessions != nullptr) ++*sessions;
    for (std::size_t p = lo; p < hi; ++p) {
      if (truePositions.test(p)) return true;
    }
    return false;
  };
}

TEST(UnionDiagnoser, ExactOracleCollapsesToTruePositions) {
  const ScanTopology topo = ScanTopology::singleChain(32);
  const UnionDiagnoser refiner(topo, UnionRefineConfig{}, 8);
  const BitVector truth = positionsOf(32, {5, 6, 20});
  // Accidental survivors around each true cluster plus a fully-accidental
  // segment at [27, 29).
  const BitVector candidates = positionsOf(32, {4, 5, 6, 7, 19, 20, 21, 27, 28});

  const UnionRefinement r = refiner.refine(candidates, {}, exactOracle(truth));

  EXPECT_TRUE(r.complete);
  EXPECT_TRUE(r.withinFaultBudget);
  EXPECT_FALSE(r.degraded());
  EXPECT_EQ(r.confirmed.toIndices(), truth.toIndices());
  EXPECT_EQ(r.candidates.positions.toIndices(), truth.toIndices());
  EXPECT_EQ(r.candidates.cells.toIndices(), truth.toIndices());  // single chain
  EXPECT_EQ(r.failingClusters, 2u);
  EXPECT_TRUE(r.unresolved.none());
  EXPECT_GT(r.sessions, 0u);
  EXPECT_GT(r.splits, 0u);
}

TEST(UnionDiagnoser, ZeroBudgetKeepsEveryCandidateUnresolved) {
  const ScanTopology topo = ScanTopology::singleChain(16);
  UnionRefineConfig config;
  config.sessionBudget = 0;
  const UnionDiagnoser refiner(topo, config, 8);
  const BitVector truth = positionsOf(16, {3});
  const BitVector candidates = positionsOf(16, {2, 3, 4, 9, 10});

  const UnionRefinement r = refiner.refine(candidates, {}, exactOracle(truth));

  EXPECT_EQ(r.sessions, 0u);
  EXPECT_FALSE(r.complete);
  EXPECT_TRUE(r.degraded());
  EXPECT_EQ(r.unresolved.toIndices(), candidates.toIndices());
  // Passive result unchanged: still the sound superset it was handed.
  EXPECT_EQ(r.candidates.positions.toIndices(), candidates.toIndices());
}

TEST(UnionDiagnoser, AnyBudgetStaysASoundSuperset) {
  const ScanTopology topo = ScanTopology::singleChain(48);
  const BitVector truth = positionsOf(48, {7, 30, 31});
  const BitVector candidates = positionsOf(48, {5, 6, 7, 8, 14, 15, 29, 30, 31, 40, 41, 42});
  for (std::size_t budget = 0; budget <= 24; ++budget) {
    UnionRefineConfig config;
    config.sessionBudget = budget;
    const UnionDiagnoser refiner(topo, config, 8);
    const UnionRefinement r = refiner.refine(candidates, {}, exactOracle(truth));
    EXPECT_LE(r.sessions, budget) << "budget " << budget;
    EXPECT_TRUE(truth.isSubsetOf(r.candidates.positions)) << "budget " << budget;
    EXPECT_TRUE(r.candidates.positions.isSubsetOf(candidates)) << "budget " << budget;
  }
}

TEST(UnionDiagnoser, AdiOrderingSpendsBudgetOnHighWeightSegmentsFirst) {
  const ScanTopology topo = ScanTopology::singleChain(16);
  UnionRefineConfig config;
  config.sessionBudget = 1;  // exactly one whole-segment query
  const UnionDiagnoser refiner(topo, config, 8);
  const BitVector truth(16);  // both segments are accidental
  const BitVector candidates = positionsOf(16, {2, 3, 10, 11});
  std::vector<double> prior(16, 0.0);
  prior[10] = prior[11] = 5.0;  // [10,12) is the likelier accidental survivor

  const UnionRefinement r = refiner.refine(candidates, prior, exactOracle(truth));

  EXPECT_EQ(r.sessions, 1u);
  EXPECT_EQ(r.exonerated.toIndices(), positionsOf(16, {10, 11}).toIndices());
  EXPECT_EQ(r.unresolved.toIndices(), positionsOf(16, {2, 3}).toIndices());
  EXPECT_FALSE(r.complete);
}

TEST(UnionDiagnoser, ClusterCountBeyondMaxFaultsIsDegraded) {
  const ScanTopology topo = ScanTopology::singleChain(20);
  UnionRefineConfig config;
  config.maxFaults = 4;
  const UnionDiagnoser refiner(topo, config, 8);
  // Five isolated width-1 true segments: refinement confirms all of them
  // (complete), but the cluster count exceeds the simultaneous-fault budget.
  const BitVector truth = positionsOf(20, {1, 5, 9, 13, 17});
  const UnionRefinement r = refiner.refine(truth, {}, exactOracle(truth));

  EXPECT_TRUE(r.complete);
  EXPECT_EQ(r.failingClusters, 5u);
  EXPECT_FALSE(r.withinFaultBudget);
  EXPECT_TRUE(r.degraded());
  EXPECT_EQ(r.candidates.positions.toIndices(), truth.toIndices());
}

TEST(UnionDiagnoser, MismatchedAxisSizesAreRejected) {
  const ScanTopology topo = ScanTopology::singleChain(8);
  const UnionDiagnoser refiner(topo, UnionRefineConfig{}, 4);
  const BitVector truth = positionsOf(8, {1});
  EXPECT_THROW(refiner.refine(BitVector(9), {}, exactOracle(truth)), std::logic_error);
  EXPECT_THROW(refiner.refine(BitVector(8), std::vector<double>(3, 1.0), exactOracle(truth)),
               std::logic_error);
}

TEST(UnionDiagnoser, AdiPriorSumsTransitionDensityPerPosition) {
  const ScanTopology topo = ScanTopology::singleChain(3);
  std::vector<BitVector> captures(3, BitVector(4));
  // cell 0: 0101 -> 3 transitions / 3 = 1.0
  captures[0].set(1);
  captures[0].set(3);
  // cell 1: 0011 -> 1 transition / 3
  captures[1].set(2);
  captures[1].set(3);
  // cell 2: 0000 -> 0
  const std::vector<double> prior = adiPriorFromGoodCaptures(topo, captures);
  ASSERT_EQ(prior.size(), 3u);
  EXPECT_DOUBLE_EQ(prior[0], 1.0);
  EXPECT_NEAR(prior[1], 1.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(prior[2], 0.0);

  EXPECT_THROW(adiPriorFromGoodCaptures(topo, std::vector<BitVector>(2, BitVector(4))),
               std::logic_error);
}

}  // namespace
}  // namespace scandiag
