// MetricsRegistry / shim / JSON-export contract tests (test_obs).
//
// The registry API (add/addPhase/recordWorker/reset/snapshot) compiles in
// every build, so most of these run under SCANDIAG_METRICS=OFF too; only the
// shim behaviour tests are split on SCANDIAG_METRICS_ENABLED — under OFF the
// shims must record *nothing*, and that is asserted rather than skipped.

#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/json.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"

namespace scandiag::obs {
namespace {

/// Leaves the registry zeroed and enabled for the next test in this process.
class MetricsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MetricsRegistry::instance().setEnabled(true);
    MetricsRegistry::instance().reset();
  }
  void TearDown() override {
    MetricsRegistry::instance().setEnabled(true);
    MetricsRegistry::instance().reset();
  }
};

TEST_F(MetricsTest, NamesAreUniqueAndStable) {
  std::vector<std::string> names;
  for (std::size_t i = 0; i < kNumCounters; ++i)
    names.push_back(counterName(static_cast<Counter>(i)));
  for (std::size_t i = 0; i < kNumPhases; ++i)
    names.push_back(phaseName(static_cast<Phase>(i)));
  for (std::size_t a = 0; a < names.size(); ++a) {
    EXPECT_NE(names[a].find_first_not_of("abcdefghijklmnopqrstuvwxyz_"), 0u) << names[a];
    EXPECT_EQ(names[a].rfind("unknown", 0), std::string::npos) << names[a];
    for (std::size_t b = a + 1; b < names.size(); ++b) EXPECT_NE(names[a], names[b]);
  }
  // These names are the JSON schema; renaming one is a schema_version bump.
  EXPECT_STREQ(counterName(Counter::SessionsRun), "sessions_run");
  EXPECT_STREQ(phaseName(Phase::GoodMachineSim), "good_machine_sim");
}

TEST_F(MetricsTest, AddIsVisibleInSnapshot) {
  MetricsRegistry& registry = MetricsRegistry::instance();
  registry.add(Counter::SessionsRun, 7);
  registry.add(Counter::SessionsRun);
  registry.add(Counter::FaultsSimulated, 3);
  const MetricsSnapshot snap = registry.snapshot();
  EXPECT_EQ(snap.counter(Counter::SessionsRun), 8u);
  EXPECT_EQ(snap.counter(Counter::FaultsSimulated), 3u);
  EXPECT_EQ(snap.counter(Counter::RetrySessionsSpent), 0u);
}

TEST_F(MetricsTest, ResetZeroesEverything) {
  MetricsRegistry& registry = MetricsRegistry::instance();
  registry.add(Counter::SessionsRun, 5);
  registry.addPhase(Phase::Recovery, 100);
  registry.recordWorker(2, 50);
  registry.reset();
  EXPECT_EQ(registry.snapshot(), MetricsSnapshot{});
}

TEST_F(MetricsTest, CounterSaturatesInsteadOfWrapping) {
  MetricsRegistry& registry = MetricsRegistry::instance();
  registry.add(Counter::SessionsRun, UINT64_MAX - 5);
  registry.add(Counter::SessionsRun, 3);  // still exact below the cap
  EXPECT_EQ(registry.snapshot().counter(Counter::SessionsRun), UINT64_MAX - 2);
  registry.add(Counter::SessionsRun, 10);  // would wrap: clamps
  EXPECT_EQ(registry.snapshot().counter(Counter::SessionsRun), UINT64_MAX);
  registry.add(Counter::SessionsRun, 1);  // sticks at the cap
  EXPECT_EQ(registry.snapshot().counter(Counter::SessionsRun), UINT64_MAX);
}

TEST_F(MetricsTest, ConcurrentAddsAreExact) {
  // 8 threads hammering the same counters; totals must be exact (the CAS loop
  // never drops an increment). Run under TSan in CI for race-freedom.
  MetricsRegistry& registry = MetricsRegistry::instance();
  constexpr std::size_t kThreads = 8, kIters = 20000;
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      for (std::size_t i = 0; i < kIters; ++i) {
        registry.add(Counter::SessionsRun);
        registry.add(Counter::SignatureWordsHashed, 3);
        registry.addPhase(Phase::FaultySim, 1);
        registry.recordWorker(1, 1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const MetricsSnapshot snap = registry.snapshot();
  EXPECT_EQ(snap.counter(Counter::SessionsRun), kThreads * kIters);
  EXPECT_EQ(snap.counter(Counter::SignatureWordsHashed), 3u * kThreads * kIters);
  EXPECT_EQ(snap.phase(Phase::FaultySim).calls, kThreads * kIters);
  EXPECT_EQ(snap.phase(Phase::FaultySim).nanos, kThreads * kIters);
  ASSERT_EQ(snap.workers.size(), 1u);
  EXPECT_EQ(snap.workers[0].worker, 1u);
  EXPECT_EQ(snap.workers[0].tasks, kThreads * kIters);
}

TEST_F(MetricsTest, WorkerLanesBeyondTrackingLimitAreDropped) {
  MetricsRegistry& registry = MetricsRegistry::instance();
  registry.recordWorker(kMaxTrackedWorkers, 10);
  registry.recordWorker(kMaxTrackedWorkers + 7, 10);
  EXPECT_TRUE(registry.snapshot().workers.empty());
  registry.recordWorker(kMaxTrackedWorkers - 1, 10);
  ASSERT_EQ(registry.snapshot().workers.size(), 1u);
  EXPECT_EQ(registry.snapshot().workers[0].worker, kMaxTrackedWorkers - 1);
}

TEST_F(MetricsTest, ShimRespectsCompileTimeAndRuntimeSwitches) {
  MetricsRegistry& registry = MetricsRegistry::instance();
  count(Counter::FaultsDiagnosed);
  if constexpr (kMetricsCompiled) {
    EXPECT_EQ(registry.snapshot().counter(Counter::FaultsDiagnosed), 1u);
    registry.setEnabled(false);
    count(Counter::FaultsDiagnosed);  // runtime-off: one branch, no record
    EXPECT_EQ(registry.snapshot().counter(Counter::FaultsDiagnosed), 1u);
    registry.setEnabled(true);
    count(Counter::FaultsDiagnosed);
    EXPECT_EQ(registry.snapshot().counter(Counter::FaultsDiagnosed), 2u);
  } else {
    // OFF build: the shim is a no-op even with the registry enabled.
    EXPECT_EQ(registry.snapshot().counter(Counter::FaultsDiagnosed), 0u);
  }
}

TEST_F(MetricsTest, PhaseScopeAccumulatesIntoItsPhase) {
  MetricsRegistry& registry = MetricsRegistry::instance();
  {
    PhaseScope outer(Phase::SignatureCompare);
    PhaseScope inner(Phase::SignatureCompare);
  }
  { WorkerScope lane(3); }
  const MetricsSnapshot snap = registry.snapshot();
  if constexpr (kMetricsCompiled) {
    EXPECT_EQ(snap.phase(Phase::SignatureCompare).calls, 2u);
    EXPECT_EQ(snap.phase(Phase::CandidateIntersection).calls, 0u);
    ASSERT_EQ(snap.workers.size(), 1u);
    EXPECT_EQ(snap.workers[0].worker, 3u);
    EXPECT_EQ(snap.workers[0].tasks, 1u);
  } else {
    EXPECT_EQ(snap, MetricsSnapshot{});
  }
}

MetricsSnapshot populatedSnapshot() {
  MetricsRegistry& registry = MetricsRegistry::instance();
  registry.reset();
  for (std::size_t i = 0; i < kNumCounters; ++i)
    registry.add(static_cast<Counter>(i), 11 * (i + 1));
  // Values above 2^53 and the saturation cap must survive the JSON round trip
  // exactly — doubles cannot represent them.
  registry.add(Counter::SignatureWordsHashed, (std::uint64_t{1} << 60) + 1);
  registry.add(Counter::SessionsRun, UINT64_MAX);  // saturates
  for (std::size_t i = 0; i < kNumPhases; ++i)
    registry.addPhase(static_cast<Phase>(i), 1000 * (i + 1));
  registry.recordWorker(0, 123);
  registry.recordWorker(5, 456);
  return registry.snapshot();
}

TEST_F(MetricsTest, JsonExportRoundTripsExactly) {
  const MetricsSnapshot snap = populatedSnapshot();
  MetricsContext context;
  context.circuit = "s9234";
  context.scheme = "two-step";
  context.threads = 4;

  std::ostringstream out;
  {
    JsonWriter writer(out);
    writeMetricsObject(writer, snap, context);
  }
  const JsonValue root = parseJson(out.str());
  EXPECT_EQ(root.at("schema_version").asUint(), kMetricsSchemaVersion);
  EXPECT_EQ(root.at("circuit").asString(), "s9234");
  EXPECT_EQ(root.at("scheme").asString(), "two-step");
  EXPECT_EQ(root.at("threads").asUint(), 4u);
  EXPECT_EQ(root.at("counters").at("sessions_run").asUint(), UINT64_MAX);

  const MetricsSnapshot parsed = snapshotFromJson(root);
  EXPECT_EQ(parsed, snap);
}

TEST_F(MetricsTest, WriteMetricsFileRoundTrips) {
  const MetricsSnapshot snap = populatedSnapshot();
  const std::string path = ::testing::TempDir() + "scandiag_metrics_test.json";
  writeMetricsFile(path, MetricsContext{"s953", "interval", 2});

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  const JsonValue root = parseJson(buffer.str());
  EXPECT_EQ(root.at("circuit").asString(), "s953");
  EXPECT_EQ(snapshotFromJson(root), snap);
}

TEST_F(MetricsTest, SnapshotFromJsonIsLoudOnUnknownNames) {
  EXPECT_THROW(snapshotFromJson(parseJson(R"({"counters": {"bogus_counter": 1}})")),
               std::invalid_argument);
  EXPECT_THROW(
      snapshotFromJson(parseJson(R"({"phases": {"bogus": {"nanos": 1, "calls": 1}}})")),
      std::invalid_argument);
  // Missing sections are fine: all-zero snapshot.
  EXPECT_EQ(snapshotFromJson(parseJson("{}")), MetricsSnapshot{});
}

}  // namespace
}  // namespace scandiag::obs
