#include "netlist/levelizer.hpp"

#include <gtest/gtest.h>

#include "netlist/synthetic_generator.hpp"

namespace scandiag {
namespace {

Netlist chainCircuit() {
  Netlist nl("chain");
  const GateId a = nl.addInput("a");
  const GateId g1 = nl.addGate(GateType::Not, "g1", {a});
  const GateId g2 = nl.addGate(GateType::Not, "g2", {g1});
  const GateId g3 = nl.addGate(GateType::Not, "g3", {g2});
  nl.markOutput(g3);
  return nl;
}

TEST(Levelizer, ChainLevelsAreSequential) {
  Netlist nl = chainCircuit();
  const Levelization lev = levelize(nl);
  EXPECT_EQ(lev.order.size(), 3u);
  EXPECT_EQ(lev.level[nl.findByName("a")], 0u);
  EXPECT_EQ(lev.level[nl.findByName("g1")], 1u);
  EXPECT_EQ(lev.level[nl.findByName("g2")], 2u);
  EXPECT_EQ(lev.level[nl.findByName("g3")], 3u);
  EXPECT_EQ(lev.maxLevel, 3u);
}

TEST(Levelizer, FaninsPrecedeUsers) {
  Netlist nl = generateNamedCircuit("s953");
  const Levelization lev = levelize(nl);
  std::vector<std::size_t> rank(nl.gateCount(), 0);
  for (std::size_t i = 0; i < lev.order.size(); ++i) rank[lev.order[i]] = i + 1;
  for (GateId id : lev.order) {
    for (GateId f : nl.gate(id).fanins) {
      if (!isSourceType(nl.gate(f).type)) {
        EXPECT_LT(rank[f], rank[id]) << "gate " << nl.gateName(id);
      }
    }
  }
}

TEST(Levelizer, OrderIsSortedByLevel) {
  Netlist nl = generateNamedCircuit("s298");
  const Levelization lev = levelize(nl);
  for (std::size_t i = 1; i < lev.order.size(); ++i)
    EXPECT_LE(lev.level[lev.order[i - 1]], lev.level[lev.order[i]]);
}

TEST(Levelizer, SequentialLoopThroughDffIsFine) {
  Netlist nl;
  const GateId ff = nl.addDff("ff");
  const GateId inv = nl.addGate(GateType::Not, "inv", {ff});
  nl.setDffInput(ff, inv);  // classic toggle flop
  nl.markOutput(ff);
  EXPECT_NO_THROW(nl.validate());
  const Levelization lev = levelize(nl);
  EXPECT_EQ(lev.order.size(), 1u);
}

TEST(Levelizer, CombinationalCycleDetected) {
  Netlist nl;
  const GateId a = nl.addInput("a");
  // Build g1 -> g2 -> g1 via appendFanin.
  const GateId g1 = nl.addGate(GateType::And, "g1", {a});
  const GateId g2 = nl.addGate(GateType::And, "g2", {g1});
  nl.appendFanin(g1, g2);
  EXPECT_THROW(levelize(nl), std::invalid_argument);
}

TEST(Levelizer, CoversAllCombinationalGates) {
  Netlist nl = generateNamedCircuit("s526");
  const Levelization lev = levelize(nl);
  EXPECT_EQ(lev.order.size(), nl.combGateCount());
}

}  // namespace
}  // namespace scandiag
