#include "netlist/netlist.hpp"

#include <gtest/gtest.h>

namespace scandiag {
namespace {

TEST(GateType, NamesRoundTrip) {
  for (GateType t : {GateType::Input, GateType::Dff, GateType::Buf, GateType::Not,
                     GateType::And, GateType::Nand, GateType::Or, GateType::Nor,
                     GateType::Xor, GateType::Xnor, GateType::Const0, GateType::Const1}) {
    const auto back = gateTypeFromName(gateTypeName(t));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, t);
  }
}

TEST(GateType, ParsingIsCaseInsensitiveAndKnowsBuff) {
  EXPECT_EQ(gateTypeFromName("nand"), GateType::Nand);
  EXPECT_EQ(gateTypeFromName("Dff"), GateType::Dff);
  EXPECT_EQ(gateTypeFromName("BUFF"), GateType::Buf);
  EXPECT_FALSE(gateTypeFromName("MUX").has_value());
}

TEST(Netlist, BuildSmallCircuit) {
  Netlist nl("t");
  const GateId a = nl.addInput("a");
  const GateId b = nl.addInput("b");
  const GateId ff = nl.addDff("ff");
  const GateId g = nl.addGate(GateType::Nand, "g", {a, b, ff});
  nl.setDffInput(ff, g);
  nl.markOutput(g);
  nl.validate();

  EXPECT_EQ(nl.gateCount(), 4u);
  EXPECT_EQ(nl.combGateCount(), 1u);
  EXPECT_EQ(nl.inputs().size(), 2u);
  EXPECT_EQ(nl.dffs().size(), 1u);
  EXPECT_EQ(nl.outputs().size(), 1u);
  EXPECT_EQ(nl.findByName("g"), g);
  EXPECT_EQ(nl.findByName("nope"), kInvalidGate);
  EXPECT_EQ(nl.gateName(ff), "ff");
}

TEST(Netlist, DuplicateNameRejected) {
  Netlist nl;
  nl.addInput("x");
  EXPECT_THROW(nl.addInput("x"), std::invalid_argument);
  EXPECT_THROW(nl.addDff("x"), std::invalid_argument);
}

TEST(Netlist, ArityChecked) {
  Netlist nl;
  const GateId a = nl.addInput("a");
  const GateId b = nl.addInput("b");
  EXPECT_THROW(nl.addGate(GateType::Not, "n", {a, b}), std::invalid_argument);
  EXPECT_THROW(nl.addGate(GateType::And, "g", {}), std::invalid_argument);
  EXPECT_NO_THROW(nl.addGate(GateType::And, "g4", {a, b, a, b}));
}

TEST(Netlist, DffMustUseAddDff) {
  Netlist nl;
  const GateId a = nl.addInput("a");
  EXPECT_THROW(nl.addGate(GateType::Dff, "ff", {a}), std::invalid_argument);
}

TEST(Netlist, UnconnectedDffFailsValidation) {
  Netlist nl;
  nl.addInput("a");
  nl.addDff("ff");
  EXPECT_THROW(nl.validate(), std::invalid_argument);
}

TEST(Netlist, UnresolvedFaninRejected) {
  Netlist nl;
  const GateId a = nl.addInput("a");
  EXPECT_THROW(nl.addGate(GateType::Buf, "b", {a + 10}), std::invalid_argument);
}

TEST(Netlist, FanoutsComputedAndRefreshedAfterMutation) {
  Netlist nl;
  const GateId a = nl.addInput("a");
  const GateId g1 = nl.addGate(GateType::Not, "g1", {a});
  EXPECT_EQ(nl.fanoutCount(a), 1u);
  const GateId g2 = nl.addGate(GateType::Buf, "g2", {a});
  EXPECT_EQ(nl.fanoutCount(a), 2u);
  (void)g1;
  (void)g2;
}

TEST(Netlist, AppendFaninOnlyOnVariableArityGates) {
  Netlist nl;
  const GateId a = nl.addInput("a");
  const GateId b = nl.addInput("b");
  const GateId n = nl.addGate(GateType::Not, "n", {a});
  const GateId g = nl.addGate(GateType::And, "g", {a, b});
  EXPECT_THROW(nl.appendFanin(n, b), std::invalid_argument);
  nl.appendFanin(g, n);
  EXPECT_EQ(nl.gate(g).fanins.size(), 3u);
  EXPECT_EQ(nl.fanoutCount(n), 1u);
}

TEST(Netlist, MarkOutputDeduplicates) {
  Netlist nl;
  const GateId a = nl.addInput("a");
  nl.markOutput(a);
  nl.markOutput(a);
  EXPECT_EQ(nl.outputs().size(), 1u);
}

TEST(Netlist, ConstantGates) {
  Netlist nl;
  const GateId c0 = nl.addGate(GateType::Const0, "zero", {});
  const GateId c1 = nl.addGate(GateType::Const1, "one", {});
  const GateId g = nl.addGate(GateType::Or, "g", {c0, c1});
  nl.markOutput(g);
  nl.validate();
  EXPECT_TRUE(isSourceType(nl.gate(c0).type));
  EXPECT_TRUE(isSourceType(nl.gate(c1).type));
}

}  // namespace
}  // namespace scandiag
