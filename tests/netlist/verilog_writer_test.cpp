#include "netlist/verilog_writer.hpp"

#include <gtest/gtest.h>

#include <fstream>

#include "netlist/synthetic_generator.hpp"

namespace scandiag {
namespace {

TEST(VerilogWriter, EmitsWellFormedModule) {
  Netlist nl("demo");
  const GateId a = nl.addInput("a");
  const GateId b = nl.addInput("b");
  const GateId ff = nl.addDff("state");
  const GateId g = nl.addGate(GateType::Nand, "g", {a, b, ff});
  nl.setDffInput(ff, g);
  nl.markOutput(g);
  nl.validate();

  const std::string v = writeVerilogString(nl);
  EXPECT_NE(v.find("module demo ("), std::string::npos);
  EXPECT_NE(v.find("endmodule"), std::string::npos);
  EXPECT_NE(v.find("input a;"), std::string::npos);
  EXPECT_NE(v.find("output po_g;"), std::string::npos);
  EXPECT_NE(v.find("nand u_g (g, a, b, state);"), std::string::npos);
  EXPECT_NE(v.find("state <= g;"), std::string::npos);
  EXPECT_NE(v.find("assign po_g = g;"), std::string::npos);
  EXPECT_NE(v.find("always @(posedge clk)"), std::string::npos);
}

TEST(VerilogWriter, SanitizesAwkwardNames) {
  Netlist nl("x");
  const GateId a = nl.addInput("a[3]");
  const GateId g = nl.addGate(GateType::Not, "1bad.name", {a});
  const GateId k = nl.addGate(GateType::Buf, "module", {g});
  nl.markOutput(k);
  const std::string v = writeVerilogString(nl);
  EXPECT_EQ(v.find('['), std::string::npos);
  EXPECT_EQ(v.find(" 1bad"), std::string::npos);  // no identifier starts with a digit
  EXPECT_NE(v.find("n_1bad_name"), std::string::npos);
  EXPECT_NE(v.find("n_module"), std::string::npos);
}

TEST(VerilogWriter, CollisionAfterSanitizationRejected) {
  Netlist nl("x");
  const GateId a = nl.addInput("sig.a");
  nl.addGate(GateType::Not, "sig_a", {a});
  EXPECT_THROW(writeVerilogString(nl), std::invalid_argument);
}

TEST(VerilogWriter, ConstantsBecomeAssigns) {
  Netlist nl("c");
  const GateId c0 = nl.addGate(GateType::Const0, "zero", {});
  const GateId c1 = nl.addGate(GateType::Const1, "one", {});
  const GateId g = nl.addGate(GateType::Or, "g", {c0, c1});
  nl.markOutput(g);
  const std::string v = writeVerilogString(nl);
  EXPECT_NE(v.find("assign zero = 1'b0;"), std::string::npos);
  EXPECT_NE(v.find("assign one = 1'b1;"), std::string::npos);
}

TEST(VerilogWriter, HandlesFullGeneratedCircuit) {
  const Netlist nl = generateNamedCircuit("s953");
  const std::string v = writeVerilogString(nl);
  // One primitive instance per combinational gate.
  std::size_t instances = 0;
  for (std::size_t pos = v.find(" u_"); pos != std::string::npos; pos = v.find(" u_", pos + 1))
    ++instances;
  EXPECT_EQ(instances, nl.combGateCount());
  // One nonblocking assignment per DFF (reset + data).
  std::size_t nba = 0;
  for (std::size_t pos = v.find("<="); pos != std::string::npos; pos = v.find("<=", pos + 1))
    ++nba;
  EXPECT_EQ(nba, 2 * nl.dffs().size());
}

TEST(VerilogWriter, FileWriting) {
  const Netlist nl = generateNamedCircuit("s27");
  const std::string path = ::testing::TempDir() + "/s27.v";
  writeVerilogFile(nl, path);
  std::ifstream in(path);
  EXPECT_TRUE(in.good());
  EXPECT_THROW(writeVerilogFile(nl, "/nonexistent-dir/x.v"), std::invalid_argument);
}

}  // namespace
}  // namespace scandiag
