#include "netlist/synthetic_generator.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "netlist/bench_writer.hpp"
#include "netlist/cone_analysis.hpp"
#include "netlist/levelizer.hpp"
#include "bist/prpg.hpp"
#include "sim/fault_list.hpp"
#include "sim/fault_simulator.hpp"

namespace scandiag {
namespace {

class ProfileSweep : public ::testing::TestWithParam<const char*> {};

TEST_P(ProfileSweep, CountsMatchProfileExactly) {
  const Iscas89Profile& profile = iscas89Profile(GetParam());
  const Netlist nl = generateCircuit(profile);
  EXPECT_EQ(nl.inputs().size(), profile.numInputs);
  EXPECT_EQ(nl.dffs().size(), profile.numDffs);
  EXPECT_EQ(nl.combGateCount(), profile.numGates);
  EXPECT_EQ(nl.outputs().size(), profile.numOutputs);
  EXPECT_NO_THROW(nl.validate());
}

TEST_P(ProfileSweep, EveryGateIsObserved) {
  const Netlist nl = generateNamedCircuit(GetParam());
  const auto& fanouts = nl.fanouts();
  for (GateId id = 0; id < nl.gateCount(); ++id) {
    if (isSourceType(nl.gate(id).type)) continue;
    const bool isPo = std::find(nl.outputs().begin(), nl.outputs().end(), id) !=
                      nl.outputs().end();
    EXPECT_TRUE(isPo || !fanouts[id].empty())
        << "dangling gate " << nl.gateName(id) << " in " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Profiles, ProfileSweep,
                         ::testing::Values("s27", "s208", "s298", "s344", "s349", "s382",
                                           "s386", "s400", "s420", "s444", "s510", "s526",
                                           "s641", "s713", "s820", "s832", "s838", "s953",
                                           "s1196", "s1238", "s1423", "s1488", "s1494",
                                           "s5378", "s9234"));

TEST(SyntheticGenerator, DeterministicForSameSeed) {
  const Netlist a = generateNamedCircuit("s953");
  const Netlist b = generateNamedCircuit("s953");
  EXPECT_EQ(writeBenchString(a), writeBenchString(b));
}

TEST(SyntheticGenerator, SeedChangesNetlist) {
  GeneratorOptions o1, o2;
  o2.seed = 2;
  const Netlist a = generateCircuit(iscas89Profile("s953"), o1);
  const Netlist b = generateCircuit(iscas89Profile("s953"), o2);
  EXPECT_NE(writeBenchString(a), writeBenchString(b));
}

TEST(SyntheticGenerator, DifferentNamesProduceDifferentStructure) {
  // Equal-size custom profiles with different names must differ (the seed is
  // mixed with the circuit name).
  Iscas89Profile p1{"alpha", 8, 4, 12, 100};
  Iscas89Profile p2{"beta", 8, 4, 12, 100};
  EXPECT_NE(writeBenchString(generateCircuit(p1)), writeBenchString(generateCircuit(p2)));
}

TEST(SyntheticGenerator, UnknownProfileNameThrows) {
  EXPECT_THROW(generateNamedCircuit("s99999"), std::invalid_argument);
}

TEST(SyntheticGenerator, RespectsLevelBound) {
  GeneratorOptions o;
  o.levels = 6;
  const Netlist nl = generateCircuit(iscas89Profile("s1423"), o);
  const Levelization lev = levelize(nl);
  EXPECT_LE(lev.maxLevel, 6u + 1);  // +1 slack for observability-sweep fanins
}

TEST(SyntheticGenerator, FailingCellsAreClustered) {
  // The property the whole paper rests on: a fault's *error-capturing* cells
  // occupy a small span of the (ordinal-ordered) scan chain. Structural cones
  // are wider (hubs/global wires create the heavy tail), so the test measures
  // the spans of actually failing cells under fault simulation and judges the
  // median.
  const Netlist nl = generateNamedCircuit("s9234");
  const PatternSet pats = generatePatterns(nl, 128);
  const FaultSimulator sim(nl, pats);
  const FaultList universe = FaultList::enumerateCollapsed(nl);
  std::vector<double> spans;
  for (const FaultSite& f : universe.sample(600, 0xC10C)) {
    const FaultResponse r = sim.simulate(f);
    if (r.failingCellCount() < 2) continue;
    const auto cells = r.failingCells.toIndices();
    spans.push_back(static_cast<double>(cells.back() - cells.front() + 1) /
                    static_cast<double>(nl.dffs().size()));
  }
  ASSERT_GT(spans.size(), 50u);
  std::nth_element(spans.begin(), spans.begin() + spans.size() / 2, spans.end());
  EXPECT_LT(spans[spans.size() / 2], 0.30)
      << "typical failing-cell sets span most of the chain — clustering is broken";
}

TEST(SyntheticGenerator, TinyCustomProfileWorks) {
  Iscas89Profile tiny{"tiny", 2, 1, 1, 3};
  const Netlist nl = generateCircuit(tiny);
  EXPECT_EQ(nl.combGateCount(), 3u);
  EXPECT_NO_THROW(nl.validate());
}

TEST(SyntheticGenerator, InvalidProfileRejected) {
  EXPECT_THROW(generateCircuit(Iscas89Profile{"x", 0, 1, 1, 3}), std::invalid_argument);
  EXPECT_THROW(generateCircuit(Iscas89Profile{"x", 1, 0, 1, 3}), std::invalid_argument);
  EXPECT_THROW(generateCircuit(Iscas89Profile{"x", 1, 1, 0, 3}), std::invalid_argument);
  EXPECT_THROW(generateCircuit(Iscas89Profile{"x", 1, 1, 1, 0}), std::invalid_argument);
}

TEST(Iscas89Profiles, TableContainsTheSixLargest) {
  for (const std::string& name : sixLargestIscas89()) {
    EXPECT_NO_THROW(iscas89Profile(name));
  }
  EXPECT_EQ(sixLargestIscas89().size(), 6u);
  EXPECT_EQ(d695Iscas89Modules().size(), 8u);
}

}  // namespace
}  // namespace scandiag
