#include <gtest/gtest.h>

#include "common/errors.hpp"
#include "netlist/bench_parser.hpp"
#include "netlist/bench_writer.hpp"
#include "netlist/synthetic_generator.hpp"

namespace scandiag {
namespace {

const char* kS27 = R"(# s27
INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)
G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)
G14 = NOT(G0)
G17 = NOT(G11)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9 = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = NOR(G5, G9)
G12 = NOR(G1, G7)
G13 = NOR(G2, G12)
)";

TEST(BenchParser, ParsesS27) {
  const Netlist nl = parseBenchString(kS27, "s27");
  EXPECT_EQ(nl.inputs().size(), 4u);
  EXPECT_EQ(nl.outputs().size(), 1u);
  EXPECT_EQ(nl.dffs().size(), 3u);
  EXPECT_EQ(nl.combGateCount(), 10u);
  // Connectivity spot checks.
  const GateId g8 = nl.findByName("G8");
  ASSERT_NE(g8, kInvalidGate);
  EXPECT_EQ(nl.gate(g8).type, GateType::And);
  ASSERT_EQ(nl.gate(g8).fanins.size(), 2u);
  EXPECT_EQ(nl.gate(g8).fanins[0], nl.findByName("G14"));
  EXPECT_EQ(nl.gate(g8).fanins[1], nl.findByName("G6"));
  // DFF D connections (which appear *before* their drivers in the file).
  const GateId g5 = nl.findByName("G5");
  EXPECT_EQ(nl.gate(g5).fanins[0], nl.findByName("G10"));
}

TEST(BenchParser, ForwardReferencesResolve) {
  // G2 defined after its user.
  const Netlist nl = parseBenchString(
      "INPUT(a)\nOUTPUT(g1)\ng1 = NOT(g2)\ng2 = BUF(a)\n", "fwd");
  EXPECT_EQ(nl.combGateCount(), 2u);
}

TEST(BenchParser, CommentsAndBlankLinesIgnored) {
  const Netlist nl = parseBenchString(
      "# header\n\nINPUT(a)  # trailing comment\nOUTPUT(b)\nb = NOT(a)\n", "c");
  EXPECT_EQ(nl.combGateCount(), 1u);
}

TEST(BenchParser, UndefinedSignalReported) {
  try {
    parseBenchString("INPUT(a)\nOUTPUT(b)\nb = AND(a, ghost)\n", "bad");
    FAIL() << "expected parse error";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("ghost"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
  }
}

TEST(BenchParser, DuplicateDefinitionReported) {
  EXPECT_THROW(parseBenchString("INPUT(a)\na = NOT(a)\n", "dup"), std::invalid_argument);
}

TEST(BenchParser, UnknownGateReported) {
  EXPECT_THROW(parseBenchString("INPUT(a)\nb = MUX(a)\n", "bad"), std::invalid_argument);
}

TEST(BenchParser, MalformedLineReported) {
  EXPECT_THROW(parseBenchString("INPUT a\n", "bad"), std::invalid_argument);
  EXPECT_THROW(parseBenchString("b = AND(a\n", "bad"), std::invalid_argument);
  EXPECT_THROW(parseBenchString("b = AND(a) junk\n", "bad"), std::invalid_argument);
}

TEST(BenchParser, CombinationalCycleReported) {
  try {
    parseBenchString("INPUT(a)\nOUTPUT(x)\nx = AND(a, y)\ny = NOT(x)\n", "cyc");
    FAIL() << "expected cycle error";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("cycle"), std::string::npos);
  }
}

TEST(BenchParser, OutputOfUndefinedSignalReported) {
  EXPECT_THROW(parseBenchString("INPUT(a)\nOUTPUT(ghost)\n", "bad"), std::invalid_argument);
}

TEST(BenchIo, WriterParserRoundTripIsStructurallyIdentical) {
  for (const char* name : {"s27", "s298", "s953"}) {
    const Netlist original = generateNamedCircuit(name);
    const Netlist reparsed = parseBenchString(writeBenchString(original), original.name());
    ASSERT_EQ(reparsed.gateCount(), original.gateCount()) << name;
    EXPECT_EQ(reparsed.inputs().size(), original.inputs().size());
    EXPECT_EQ(reparsed.dffs().size(), original.dffs().size());
    EXPECT_EQ(reparsed.outputs().size(), original.outputs().size());
    for (GateId id = 0; id < original.gateCount(); ++id) {
      const GateId rid = reparsed.findByName(original.gateName(id));
      ASSERT_NE(rid, kInvalidGate) << original.gateName(id);
      EXPECT_EQ(reparsed.gate(rid).type, original.gate(id).type);
      ASSERT_EQ(reparsed.gate(rid).fanins.size(), original.gate(id).fanins.size());
      for (std::size_t k = 0; k < original.gate(id).fanins.size(); ++k) {
        EXPECT_EQ(reparsed.gateName(reparsed.gate(rid).fanins[k]),
                  original.gateName(original.gate(id).fanins[k]));
      }
    }
  }
}

TEST(BenchIo, FileRoundTrip) {
  const Netlist original = generateNamedCircuit("s344");
  const std::string path = ::testing::TempDir() + "/s344.bench";
  writeBenchFile(original, path);
  const Netlist back = parseBenchFile(path);
  EXPECT_EQ(back.name(), "s344");
  EXPECT_EQ(back.gateCount(), original.gateCount());
}

TEST(BenchIo, ConstantGatesRoundTrip) {
  Netlist nl("consts");
  const GateId c0 = nl.addGate(GateType::Const0, "tie0", {});
  const GateId c1 = nl.addGate(GateType::Const1, "tie1", {});
  const GateId g = nl.addGate(GateType::Nor, "g", {c0, c1});
  nl.markOutput(g);
  const Netlist back = parseBenchString(writeBenchString(nl), "consts");
  EXPECT_EQ(back.gate(back.findByName("tie0")).type, GateType::Const0);
  EXPECT_EQ(back.gate(back.findByName("tie1")).type, GateType::Const1);
  EXPECT_EQ(back.combGateCount(), nl.combGateCount());
}

TEST(BenchIo, MissingFileThrows) {
  EXPECT_THROW(parseBenchFile("/nonexistent/file.bench"), FileNotFoundError);
}

}  // namespace
}  // namespace scandiag
