// Robustness sweep over mutated inputs: whatever garbage the parsers see,
// they must either parse it or throw std::invalid_argument — never crash,
// never loop, never return a half-built netlist that fails validate().

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "netlist/bench_parser.hpp"
#include "netlist/bench_writer.hpp"
#include "netlist/synthetic_generator.hpp"
#include "soc/soc_description.hpp"

namespace scandiag {
namespace {

std::string mutate(const std::string& base, Xoroshiro128& rng) {
  std::string s = base;
  const std::size_t edits = 1 + rng.nextBelow(6);
  for (std::size_t e = 0; e < edits && !s.empty(); ++e) {
    const std::size_t pos = rng.nextBelow(s.size());
    switch (rng.nextBelow(4)) {
      case 0:  // flip a character
        s[pos] = static_cast<char>(' ' + rng.nextBelow(95));
        break;
      case 1:  // delete a span
        s.erase(pos, 1 + rng.nextBelow(8));
        break;
      case 2:  // duplicate a span
        s.insert(pos, s.substr(pos, 1 + rng.nextBelow(8)));
        break;
      default:  // insert noise
        s.insert(pos, "()=,#\nDFF");
        break;
    }
  }
  return s;
}

TEST(ParserRobustness, MutatedBenchNeverCrashes) {
  const std::string base = writeBenchString(generateNamedCircuit("s298"));
  Xoroshiro128 rng(0xF022);
  std::size_t parsed = 0, rejected = 0;
  for (int trial = 0; trial < 300; ++trial) {
    const std::string text = mutate(base, rng);
    try {
      const Netlist nl = parseBenchString(text, "fuzz");
      nl.validate();  // anything accepted must be structurally sound
      ++parsed;
    } catch (const std::invalid_argument&) {
      ++rejected;
    }
  }
  EXPECT_EQ(parsed + rejected, 300u);
  EXPECT_GT(rejected, 50u);  // mutations usually break something
}

TEST(ParserRobustness, MutatedSocNeverCrashes) {
  const std::string base =
      "soc mini\ntam 4\ncore a profile s298\ncore b inputs 4 outputs 2 dffs 8 gates 40\n";
  Xoroshiro128 rng(0xF0CC);
  std::size_t parsed = 0, rejected = 0;
  for (int trial = 0; trial < 300; ++trial) {
    try {
      const SocDescription d = parseSocDescriptionString(mutate(base, rng));
      EXPECT_FALSE(d.cores.empty());
      ++parsed;
    } catch (const std::invalid_argument&) {
      ++rejected;
    }
  }
  EXPECT_EQ(parsed + rejected, 300u);
}

TEST(ParserRobustness, TruncatedBenchPrefixes) {
  const std::string base = writeBenchString(generateNamedCircuit("s344"));
  for (std::size_t cut = 0; cut < base.size(); cut += 97) {
    try {
      (void)parseBenchString(base.substr(0, cut), "prefix");
    } catch (const std::invalid_argument&) {
    }
  }
  SUCCEED();
}

TEST(ParserRobustness, PathologicalInputs) {
  for (const char* text : {"", "\n\n\n", "####", "a=b", "INPUT()", "OUTPUT(,)",
                           "x = AND(", "= AND(a)", "INPUT(a) OUTPUT(a)",
                           "x = DFF(x)"}) {
    try {
      (void)parseBenchString(text, "p");
    } catch (const std::invalid_argument&) {
    }
  }
  SUCCEED();
}

TEST(ParserRobustness, SelfLoopDffIsLegal) {
  // x = DFF(x): a flop feeding itself through no logic is sequential, legal.
  const Netlist nl = parseBenchString("OUTPUT(x)\nx = DFF(x)\n", "loop");
  EXPECT_EQ(nl.dffs().size(), 1u);
  EXPECT_NO_THROW(nl.validate());
}

}  // namespace
}  // namespace scandiag
