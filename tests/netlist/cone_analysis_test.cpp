#include "netlist/cone_analysis.hpp"

#include <gtest/gtest.h>

#include "netlist/synthetic_generator.hpp"

namespace scandiag {
namespace {

// a ── g1 ──┬── ff0
//           └── g2 ── ff1
// b ── g3 ───── ff2
struct Fixture {
  Netlist nl{"cone"};
  GateId a, b, g1, g2, g3, ff0, ff1, ff2;

  Fixture() {
    a = nl.addInput("a");
    b = nl.addInput("b");
    ff0 = nl.addDff("ff0");
    ff1 = nl.addDff("ff1");
    ff2 = nl.addDff("ff2");
    g1 = nl.addGate(GateType::Not, "g1", {a});
    g2 = nl.addGate(GateType::Buf, "g2", {g1});
    g3 = nl.addGate(GateType::Not, "g3", {b});
    nl.setDffInput(ff0, g1);
    nl.setDffInput(ff1, g2);
    nl.setDffInput(ff2, g3);
    nl.markOutput(g3);
    nl.validate();
  }
};

TEST(ConeAnalysis, ReachesOnlyDownstreamDffs) {
  Fixture f;
  const Levelization lev = levelize(f.nl);
  const FaultCone cone = computeCone(f.nl, lev, f.a);
  EXPECT_TRUE(cone.reachableDffs.test(0));
  EXPECT_TRUE(cone.reachableDffs.test(1));
  EXPECT_FALSE(cone.reachableDffs.test(2));
  // Cone gates: g1 and g2, in level order.
  ASSERT_EQ(cone.gates.size(), 2u);
  EXPECT_EQ(cone.gates[0], f.g1);
  EXPECT_EQ(cone.gates[1], f.g2);
  EXPECT_TRUE(cone.reachableOutputs.empty());
}

TEST(ConeAnalysis, MidConeSite) {
  Fixture f;
  const Levelization lev = levelize(f.nl);
  const FaultCone cone = computeCone(f.nl, lev, f.g2);
  EXPECT_FALSE(cone.reachableDffs.test(0));  // g2 only feeds ff1
  EXPECT_TRUE(cone.reachableDffs.test(1));
  ASSERT_EQ(cone.gates.size(), 1u);
  EXPECT_EQ(cone.gates[0], f.g2);
}

TEST(ConeAnalysis, PrimaryOutputRecorded) {
  Fixture f;
  const Levelization lev = levelize(f.nl);
  const FaultCone cone = computeCone(f.nl, lev, f.b);
  EXPECT_TRUE(cone.reachableDffs.test(2));
  ASSERT_EQ(cone.reachableOutputs.size(), 1u);
  EXPECT_EQ(cone.reachableOutputs[0], f.g3);
}

TEST(ConeAnalysis, PropagationStopsAtDff) {
  // ff0's Q feeds g; a fault on g's driver must not "wrap around" through the
  // sequential edge back into ff0's cone.
  Netlist nl;
  const GateId ff0 = nl.addDff("ff0");
  const GateId ff1 = nl.addDff("ff1");
  const GateId g = nl.addGate(GateType::Not, "g", {ff0});
  nl.setDffInput(ff0, g);  // self-loop through the flop
  nl.setDffInput(ff1, g);
  nl.markOutput(ff1);
  nl.validate();
  const Levelization lev = levelize(nl);
  const FaultCone cone = computeCone(nl, lev, g);
  EXPECT_TRUE(cone.reachableDffs.test(0));
  EXPECT_TRUE(cone.reachableDffs.test(1));
  EXPECT_EQ(cone.gates.size(), 1u);  // g itself only — no transitive walk via ff0
}

TEST(ConeAnalysis, MatchesBruteForceOnGeneratedCircuit) {
  const Netlist nl = generateNamedCircuit("s344");
  const Levelization lev = levelize(nl);
  const auto& fanouts = nl.fanouts();
  for (GateId site = 0; site < nl.gateCount(); site += 7) {
    const FaultCone cone = computeCone(nl, lev, site);
    // Brute-force BFS.
    std::vector<bool> visited(nl.gateCount(), false);
    std::vector<GateId> queue{site};
    visited[site] = true;
    BitVector dffs(nl.dffs().size());
    while (!queue.empty()) {
      const GateId g = queue.back();
      queue.pop_back();
      for (GateId u : fanouts[g]) {
        if (nl.gate(u).type == GateType::Dff) {
          // Recorded even when u == site (self-capture via feedback).
          for (std::size_t k = 0; k < nl.dffs().size(); ++k)
            if (nl.dffs()[k] == u) dffs.set(k);
          visited[u] = true;
          continue;
        }
        if (visited[u]) continue;
        visited[u] = true;
        queue.push_back(u);
      }
    }
    EXPECT_EQ(cone.reachableDffs, dffs) << "site " << nl.gateName(site);
  }
}

TEST(ConeAnalysis, ConeSpanStatistics) {
  Fixture f;
  const Levelization lev = levelize(f.nl);
  const FaultCone cone = computeCone(f.nl, lev, f.a);
  const std::vector<std::size_t> order = {0, 1, 2};  // identity ordering
  const ConeSpan span = coneSpan(cone, order, 3);
  EXPECT_EQ(span.cells, 2u);
  EXPECT_EQ(span.firstPos, 0u);
  EXPECT_EQ(span.lastPos, 1u);
  EXPECT_NEAR(span.spanFraction, 2.0 / 3.0, 1e-12);
}

TEST(ConeAnalysis, EmptyConeSpanIsZero) {
  Fixture f;
  const Levelization lev = levelize(f.nl);
  FaultCone cone = computeCone(f.nl, lev, f.g3);
  cone.reachableDffs.resetAll();
  const ConeSpan span = coneSpan(cone, {0, 1, 2}, 3);
  EXPECT_EQ(span.cells, 0u);
  EXPECT_EQ(span.spanFraction, 0.0);
}

}  // namespace
}  // namespace scandiag
