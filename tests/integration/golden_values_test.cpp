// Golden regression values: the full pipeline is deterministic (explicit
// seeds everywhere, integer arithmetic up to the final division), so these
// exact candidate/actual sums must reproduce on any platform. A change here
// means the *behaviour* of some stage changed — generator, PRPG, fault
// simulator, partitioners, session engine, or pruner — and EXPERIMENTS.md
// needs regeneration. Update the constants only after confirming the change
// is intentional.

#include <gtest/gtest.h>

#include "core/scandiag.hpp"

namespace scandiag {
namespace {

TEST(GoldenValues, S953Table1StyleSums) {
  const Netlist nl = generateNamedCircuit("s953");
  WorkloadConfig wc = presets::table1Workload();
  wc.numFaults = 200;
  const CircuitWorkload work = prepareWorkload(nl, wc);
  ASSERT_EQ(work.responses.size(), 200u);

  struct Expect {
    SchemeKind scheme;
    std::uint64_t candidates;
  };
  const Expect expectations[] = {
      {SchemeKind::IntervalBased, 1421},
      {SchemeKind::RandomSelection, 1018},
      {SchemeKind::TwoStep, 896},
  };
  for (const Expect& e : expectations) {
    const DiagnosisPipeline pipeline(work.topology, presets::table1(e.scheme, 8));
    const DrReport r = pipeline.evaluate(work.responses);
    EXPECT_EQ(r.sumCandidates, e.candidates) << schemeName(e.scheme);
    EXPECT_EQ(r.sumActual, 632u) << schemeName(e.scheme);
    EXPECT_EQ(r.faults, 200u);
  }
}

TEST(GoldenValues, S9234TwoStepWithAndWithoutPruning) {
  const Netlist nl = generateNamedCircuit("s9234");
  WorkloadConfig wc = presets::table2Workload();
  wc.numFaults = 200;
  const CircuitWorkload work = prepareWorkload(nl, wc);

  const DiagnosisPipeline plain(work.topology, presets::table2(SchemeKind::TwoStep, false));
  const DrReport a = plain.evaluate(work.responses);
  EXPECT_EQ(a.sumCandidates, 490u);
  EXPECT_EQ(a.sumActual, 474u);

  const DiagnosisPipeline pruned(work.topology, presets::table2(SchemeKind::TwoStep, true));
  const DrReport b = pruned.evaluate(work.responses);
  EXPECT_EQ(b.sumCandidates, 474u);  // pruning reaches perfect resolution here
  EXPECT_EQ(b.sumActual, 474u);
}

TEST(GoldenValues, GeneratedNetlistFingerprint) {
  // Cheap structural fingerprint of the s953 reconstruction: any generator
  // change shows up here before it confuses a DR comparison downstream.
  const Netlist nl = generateNamedCircuit("s953");
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (GateId id = 0; id < nl.gateCount(); ++id) {
    hash ^= static_cast<std::uint64_t>(nl.gate(id).type);
    hash *= 0x100000001b3ULL;
    for (GateId f : nl.gate(id).fanins) {
      hash ^= f;
      hash *= 0x100000001b3ULL;
    }
  }
  EXPECT_EQ(hash, [] {
    // Self-calibrating on first failure: print the new value in the message.
    return 0xb6cd5024a69d89c8ULL;
  }()) << "netlist generator output changed; new fingerprint = 0x" << std::hex << hash;
}

}  // namespace
}  // namespace scandiag
