// The threading determinism contract (docs/ARCHITECTURE.md §"Threading"):
// every parallelized experiment driver must produce bit-identical output for
// any thread count. These tests run the same workloads at 1, 2, and 8
// threads — 1 thread being the exact serial code path — and require exact
// equality of every integer sum and every double, for all three partitioning
// schemes, with and without superposition pruning (pruning also exercises
// the lazily built MISR linear model under concurrency).

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <future>
#include <string>
#include <vector>

#include "common/thread_pool.hpp"
#include "core/scandiag.hpp"
#include "obs/metrics.hpp"
#include "soc/soc_builder.hpp"

namespace scandiag {
namespace {

/// Restores the global pool to the environment default even if a test fails.
class ParallelDeterminism : public ::testing::Test {
 protected:
  void TearDown() override {
    setGlobalThreadCount(0);
    obs::MetricsRegistry::instance().reset();
  }

  static constexpr std::size_t kThreadCounts[] = {1, 2, 8};
};

const CircuitWorkload& s953Workload() {
  static const CircuitWorkload work = [] {
    const Netlist nl = generateNamedCircuit("s953");
    WorkloadConfig wc;
    wc.numPatterns = 96;
    wc.numFaults = 150;
    return prepareWorkload(nl, wc);
  }();
  return work;
}

DiagnosisConfig configFor(SchemeKind scheme, bool pruning) {
  DiagnosisConfig config;
  config.scheme = scheme;
  config.numPartitions = 6;
  config.groupsPerPartition = 8;
  config.numPatterns = 96;
  config.pruning = pruning;
  return config;
}

void expectSameReport(const DrReport& expected, const DrReport& actual,
                      const std::string& what) {
  EXPECT_EQ(expected.faults, actual.faults) << what;
  EXPECT_EQ(expected.sumCandidates, actual.sumCandidates) << what;
  EXPECT_EQ(expected.sumActual, actual.sumActual) << what;
  EXPECT_EQ(expected.dr, actual.dr) << what;  // bitwise: same sums, same divide
}

TEST_F(ParallelDeterminism, EvaluateIsBitIdenticalAcrossThreadCounts) {
  const CircuitWorkload& work = s953Workload();
  for (SchemeKind scheme :
       {SchemeKind::IntervalBased, SchemeKind::RandomSelection, SchemeKind::TwoStep}) {
    for (bool pruning : {false, true}) {
      const DiagnosisPipeline pipeline(work.topology, configFor(scheme, pruning));
      setGlobalThreadCount(1);
      const DrReport serial = pipeline.evaluate(work.responses);
      for (std::size_t threads : kThreadCounts) {
        setGlobalThreadCount(threads);
        const std::string what = schemeName(scheme) + (pruning ? "+prune" : "") + " @" +
                                 std::to_string(threads) + " threads";
        expectSameReport(serial, pipeline.evaluate(work.responses), what);
      }
    }
  }
}

TEST_F(ParallelDeterminism, EvaluateSweepIsBitIdenticalAcrossThreadCounts) {
  const CircuitWorkload& work = s953Workload();
  for (SchemeKind scheme :
       {SchemeKind::IntervalBased, SchemeKind::RandomSelection, SchemeKind::TwoStep}) {
    const DiagnosisPipeline pipeline(work.topology, configFor(scheme, false));
    setGlobalThreadCount(1);
    const std::vector<double> serial = pipeline.evaluateSweep(work.responses);
    ASSERT_EQ(serial.size(), pipeline.partitions().size());
    for (std::size_t threads : kThreadCounts) {
      setGlobalThreadCount(threads);
      const std::vector<double> parallel = pipeline.evaluateSweep(work.responses);
      ASSERT_EQ(parallel.size(), serial.size());
      for (std::size_t p = 0; p < serial.size(); ++p) {
        EXPECT_EQ(serial[p], parallel[p])
            << schemeName(scheme) << " prefix " << p + 1 << " @" << threads << " threads";
      }
    }
  }
}

TEST_F(ParallelDeterminism, SocDriverIsBitIdenticalAcrossThreadCounts) {
  const Soc soc = buildSocFromModules("mini", {"s298", "s344", "s526"}, 1);
  WorkloadConfig workload;
  workload.numPatterns = 64;
  workload.numFaults = 40;
  for (SchemeKind scheme :
       {SchemeKind::IntervalBased, SchemeKind::RandomSelection, SchemeKind::TwoStep}) {
    DiagnosisConfig config = configFor(scheme, false);
    config.numPatterns = workload.numPatterns;
    setGlobalThreadCount(1);
    const std::vector<SocDrRow> serial = evaluateSocDr(soc, workload, config);
    ASSERT_EQ(serial.size(), soc.coreCount());
    for (std::size_t threads : kThreadCounts) {
      setGlobalThreadCount(threads);
      const std::vector<SocDrRow> parallel = evaluateSocDr(soc, workload, config);
      ASSERT_EQ(parallel.size(), serial.size());
      for (std::size_t k = 0; k < serial.size(); ++k) {
        EXPECT_EQ(serial[k].failingCore, parallel[k].failingCore);
        expectSameReport(serial[k].report, parallel[k].report,
                         schemeName(scheme) + " core " + serial[k].failingCore + " @" +
                             std::to_string(threads) + " threads");
      }
    }
  }
}

/// Runs `body` once per thread count and requires the *metrics counters* it
/// produced (registry reset just before each run) to match the 1-thread run
/// exactly. This is the counter-determinism contract the CI bench-regression
/// gate relies on: counters tally work items, never scheduling decisions.
using MetricsCounters = std::array<std::uint64_t, obs::kNumCounters>;

template <typename Body>
void expectCountersThreadInvariant(const std::size_t (&threadCounts)[3], Body&& body,
                                   const std::string& what) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::instance();
  setGlobalThreadCount(1);
  registry.reset();
  body();
  const MetricsCounters serial = registry.snapshot().counters;
  EXPECT_GT(serial[static_cast<std::size_t>(obs::Counter::FaultsDiagnosed)], 0u)
      << what << " (instrumentation compiled out?)";
  for (std::size_t threads : threadCounts) {
    setGlobalThreadCount(threads);
    registry.reset();
    body();
    const MetricsCounters parallel = registry.snapshot().counters;
    for (std::size_t i = 0; i < obs::kNumCounters; ++i) {
      EXPECT_EQ(serial[i], parallel[i])
          << what << " counter " << obs::counterName(static_cast<obs::Counter>(i)) << " @"
          << threads << " threads";
    }
  }
}

TEST_F(ParallelDeterminism, MetricsCountersAreBitIdenticalAcrossThreadCounts) {
  if (!obs::kMetricsCompiled) GTEST_SKIP() << "instrumentation compiled out";
  const CircuitWorkload& work = s953Workload();
  for (SchemeKind scheme :
       {SchemeKind::IntervalBased, SchemeKind::RandomSelection, SchemeKind::TwoStep}) {
    const DiagnosisPipeline pipeline(work.topology, configFor(scheme, false));
    expectCountersThreadInvariant(
        kThreadCounts, [&] { pipeline.evaluate(work.responses); }, schemeName(scheme));
  }
}

TEST_F(ParallelDeterminism, NoisyMetricsCountersAreBitIdenticalAcrossThreadCounts) {
  // Noise + recovery is the hardest case: retries, inconsistency detection,
  // and injected-event counts must all be scheduling-independent.
  if (!obs::kMetricsCompiled) GTEST_SKIP() << "instrumentation compiled out";
  const CircuitWorkload& work = s953Workload();
  NoiseConfig noise;
  noise.flipRate = 0.02;
  RetryPolicy retry;
  retry.sessionBudget = 24;
  const NoisyPipeline pipeline(work.topology, configFor(SchemeKind::TwoStep, false), noise,
                               retry);
  expectCountersThreadInvariant(
      kThreadCounts, [&] { pipeline.evaluate(work.responses); }, "noisy two-step");
}

TEST_F(ParallelDeterminism, DiagnoseStaysSoundUnderConcurrency) {
  // Soundness (candidates ⊇ actual) per fault, diagnosed concurrently via
  // submit() — the per-fault entry point users may drive from their own
  // threads.
  const CircuitWorkload& work = s953Workload();
  const DiagnosisPipeline pipeline(work.topology, configFor(SchemeKind::TwoStep, true));
  setGlobalThreadCount(8);
  std::vector<std::future<bool>> sound;
  sound.reserve(work.responses.size());
  for (const FaultResponse& r : work.responses) {
    sound.push_back(globalPool().submit([&pipeline, &r] {
      const FaultDiagnosis d = pipeline.diagnose(r);
      return r.failingCells.isSubsetOf(d.candidates.cells);
    }));
  }
  for (std::size_t i = 0; i < sound.size(); ++i) {
    EXPECT_TRUE(sound[i].get()) << "fault " << i;
  }
}

}  // namespace
}  // namespace scandiag
