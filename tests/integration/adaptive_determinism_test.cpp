// Threading determinism for the adaptive scheme (docs/ARCHITECTURE.md §14):
// the online planner makes data-dependent scheduling decisions per fault, so
// this suite pins the contract that those decisions — and everything computed
// from them — are identical at 1, 2, and 8 threads, with and without injected
// noise, down to every counter. It also pins the cross-scheme parity anchor:
// adaptive forced into the fixed order IS two-step, bit for bit.

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/thread_pool.hpp"
#include "core/scandiag.hpp"
#include "inject/noisy_pipeline.hpp"
#include "obs/metrics.hpp"

namespace scandiag {
namespace {

class AdaptiveDeterminism : public ::testing::Test {
 protected:
  void TearDown() override {
    setGlobalThreadCount(0);
    obs::MetricsRegistry::instance().reset();
  }

  static constexpr std::size_t kThreadCounts[] = {1, 2, 8};

  static const CircuitWorkload& work() {
    static const CircuitWorkload w = [] {
      const Netlist nl = generateNamedCircuit("s953");
      WorkloadConfig wc;
      wc.numPatterns = 96;
      wc.numFaults = 150;
      return prepareWorkload(nl, wc);
    }();
    return w;
  }

  static DiagnosisConfig adaptiveConfig() {
    DiagnosisConfig config;
    config.scheme = SchemeKind::Adaptive;
    config.numPartitions = 6;
    config.groupsPerPartition = 8;
    config.numPatterns = 96;
    return config;
  }
};

void expectSameReport(const DrReport& expected, const DrReport& actual,
                      const std::string& what) {
  EXPECT_EQ(expected.faults, actual.faults) << what;
  EXPECT_EQ(expected.sumCandidates, actual.sumCandidates) << what;
  EXPECT_EQ(expected.sumActual, actual.sumActual) << what;
  EXPECT_EQ(expected.dr, actual.dr) << what;
}

TEST_F(AdaptiveDeterminism, EvaluateIsBitIdenticalAcrossThreadCounts) {
  const DiagnosisPipeline pipeline(work().topology, adaptiveConfig());
  setGlobalThreadCount(1);
  const DrReport serial = pipeline.evaluate(work().responses);
  for (std::size_t threads : kThreadCounts) {
    setGlobalThreadCount(threads);
    expectSameReport(serial, pipeline.evaluate(work().responses),
                     "adaptive @" + std::to_string(threads) + " threads");
  }
}

TEST_F(AdaptiveDeterminism, EvaluateSweepIsBitIdenticalAcrossThreadCounts) {
  const DiagnosisPipeline pipeline(work().topology, adaptiveConfig());
  setGlobalThreadCount(1);
  const std::vector<double> serial = pipeline.evaluateSweep(work().responses);
  ASSERT_EQ(serial.size(), adaptiveConfig().numPartitions);
  for (std::size_t threads : kThreadCounts) {
    setGlobalThreadCount(threads);
    const std::vector<double> parallel = pipeline.evaluateSweep(work().responses);
    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t p = 0; p < serial.size(); ++p) {
      EXPECT_EQ(serial[p], parallel[p])
          << "prefix " << p + 1 << " @" << threads << " threads";
    }
  }
}

TEST_F(AdaptiveDeterminism, NoisyEvaluateIsBitIdenticalAcrossThreadCounts) {
  NoiseConfig noise;
  noise.flipRate = 0.02;
  RetryPolicy retry;
  retry.sessionBudget = 24;
  const NoisyPipeline pipeline(work().topology, adaptiveConfig(), noise, retry);
  setGlobalThreadCount(1);
  const NoisyDrReport serial = pipeline.evaluate(work().responses);
  for (std::size_t threads : kThreadCounts) {
    setGlobalThreadCount(threads);
    const NoisyDrReport parallel = pipeline.evaluate(work().responses);
    const std::string what = "noisy adaptive @" + std::to_string(threads) + " threads";
    EXPECT_EQ(serial.faults, parallel.faults) << what;
    EXPECT_EQ(serial.sumCandidates, parallel.sumCandidates) << what;
    EXPECT_EQ(serial.sumActual, parallel.sumActual) << what;
    EXPECT_EQ(serial.dr, parallel.dr) << what;
    EXPECT_EQ(serial.misdiagnosisRate, parallel.misdiagnosisRate) << what;
    EXPECT_EQ(serial.emptyRate, parallel.emptyRate) << what;
    EXPECT_EQ(serial.meanConfidence, parallel.meanConfidence) << what;
    EXPECT_EQ(serial.totalInconsistencies, parallel.totalInconsistencies) << what;
    EXPECT_EQ(serial.totalRetrySessions, parallel.totalRetrySessions) << what;
    EXPECT_EQ(serial.unresolved, parallel.unresolved) << what;
  }
}

using MetricsCounters = std::array<std::uint64_t, obs::kNumCounters>;

template <typename Body>
void expectCountersThreadInvariant(const std::size_t (&threadCounts)[3], Body&& body,
                                   const std::string& what) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::instance();
  setGlobalThreadCount(1);
  registry.reset();
  body();
  const MetricsCounters serial = registry.snapshot().counters;
  EXPECT_GT(serial[static_cast<std::size_t>(obs::Counter::FaultsDiagnosed)], 0u)
      << what << " (instrumentation compiled out?)";
  // The adaptive loop must actually be exercised for this gate to mean much.
  EXPECT_GT(serial[static_cast<std::size_t>(obs::Counter::AdaptiveCandidatesPruned)], 0u)
      << what;
  for (std::size_t threads : threadCounts) {
    setGlobalThreadCount(threads);
    registry.reset();
    body();
    const MetricsCounters parallel = registry.snapshot().counters;
    for (std::size_t i = 0; i < obs::kNumCounters; ++i) {
      EXPECT_EQ(serial[i], parallel[i])
          << what << " counter " << obs::counterName(static_cast<obs::Counter>(i)) << " @"
          << threads << " threads";
    }
  }
}

TEST_F(AdaptiveDeterminism, MetricsCountersAreBitIdenticalAcrossThreadCounts) {
  if (!obs::kMetricsCompiled) GTEST_SKIP() << "instrumentation compiled out";
  const DiagnosisPipeline pipeline(work().topology, adaptiveConfig());
  expectCountersThreadInvariant(
      kThreadCounts, [&] { pipeline.evaluate(work().responses); }, "adaptive");
}

TEST_F(AdaptiveDeterminism, NoisyMetricsCountersAreBitIdenticalAcrossThreadCounts) {
  if (!obs::kMetricsCompiled) GTEST_SKIP() << "instrumentation compiled out";
  NoiseConfig noise;
  noise.flipRate = 0.02;
  RetryPolicy retry;
  retry.sessionBudget = 24;
  const NoisyPipeline pipeline(work().topology, adaptiveConfig(), noise, retry);
  expectCountersThreadInvariant(
      kThreadCounts, [&] { pipeline.evaluate(work().responses); }, "noisy adaptive");
}

TEST_F(AdaptiveDeterminism, ForcedFixedOrderMatchesTwoStepAtEveryThreadCount) {
  DiagnosisConfig twoCfg = adaptiveConfig();
  twoCfg.scheme = SchemeKind::TwoStep;
  const DiagnosisPipeline twoStep(work().topology, twoCfg);
  DiagnosisConfig forced = adaptiveConfig();
  forced.schemeConfig.adaptive.forceFixedOrder = true;
  const DiagnosisPipeline adaptive(work().topology, forced);
  for (std::size_t threads : kThreadCounts) {
    setGlobalThreadCount(threads);
    expectSameReport(twoStep.evaluate(work().responses), adaptive.evaluate(work().responses),
                     "parity @" + std::to_string(threads) + " threads");
  }
}

}  // namespace
}  // namespace scandiag
