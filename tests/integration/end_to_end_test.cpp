// End-to-end flows exercising the full stack exactly as the examples and
// benches do: generation/parsing -> scan stitching -> PRPG -> fault sim ->
// sessions -> candidates -> pruning -> DR.

#include <gtest/gtest.h>

#include "core/scandiag.hpp"

namespace scandiag {
namespace {

TEST(EndToEnd, BenchFileToDiagnosis) {
  // Round-trip a generated circuit through the .bench format, then diagnose
  // the reparsed netlist: results must match the original exactly.
  const Netlist original = generateNamedCircuit("s953");
  const Netlist reparsed = parseBenchString(writeBenchString(original), "s953");

  DiagnoserOptions o;
  o.diagnosis.numPartitions = 6;
  o.diagnosis.groupsPerPartition = 4;
  o.diagnosis.numPatterns = 64;
  const Diagnoser d1(original, o);
  const Diagnoser d2(reparsed, o);
  const DrReport r1 = d1.evaluateResolution(60, 3);
  const DrReport r2 = d2.evaluateResolution(60, 3);
  EXPECT_EQ(r1.sumCandidates, r2.sumCandidates);
  EXPECT_EQ(r1.sumActual, r2.sumActual);
}

TEST(EndToEnd, MisrModeCloseToExactAt16Bits) {
  // With a 16-bit MISR, aliasing shifts DR only marginally versus exact
  // verdicts on a 500-session workload.
  const Netlist nl = generateNamedCircuit("s953");
  WorkloadConfig wc;
  wc.numPatterns = 64;
  wc.numFaults = 150;
  const CircuitWorkload work = prepareWorkload(nl, wc);

  DiagnosisConfig exact;
  exact.scheme = SchemeKind::TwoStep;
  exact.numPartitions = 6;
  exact.groupsPerPartition = 4;
  exact.numPatterns = 64;
  DiagnosisConfig misr = exact;
  misr.mode = SignatureMode::Misr;
  misr.misrDegree = 16;

  const double drExact = DiagnosisPipeline(work.topology, exact).evaluate(work.responses).dr;
  const double drMisr = DiagnosisPipeline(work.topology, misr).evaluate(work.responses).dr;
  EXPECT_NEAR(drMisr, drExact, 0.15 * (drExact + 1.0));
}

TEST(EndToEnd, TinyMisrAliasesVisibly) {
  // A 4-bit MISR aliases often enough to break soundness on some faults —
  // the phenomenon bench_ablation_aliasing quantifies.
  const Netlist nl = generateNamedCircuit("s953");
  WorkloadConfig wc;
  wc.numPatterns = 64;
  wc.numFaults = 200;
  const CircuitWorkload work = prepareWorkload(nl, wc);
  DiagnosisConfig config;
  config.scheme = SchemeKind::RandomSelection;
  config.numPartitions = 8;
  config.groupsPerPartition = 4;
  config.numPatterns = 64;
  config.mode = SignatureMode::Misr;
  config.misrDegree = 4;
  const DiagnosisPipeline pipeline(work.topology, config);
  std::size_t violations = 0;
  for (const FaultResponse& r : work.responses) {
    const FaultDiagnosis d = pipeline.diagnose(r);
    violations += !r.failingCells.isSubsetOf(d.candidates.cells);
  }
  EXPECT_GT(violations, 0u);
}

TEST(EndToEnd, SocPipelineMatchesManualAssembly) {
  // evaluateSocDr == manual socResponsesForFailingCore + pipeline.evaluate.
  const Soc soc = buildSocFromModules("mini", {"s298", "s526"}, 2);
  WorkloadConfig wc;
  wc.numPatterns = 64;
  wc.numFaults = 30;
  DiagnosisConfig config;
  config.scheme = SchemeKind::TwoStep;
  config.numPartitions = 4;
  config.groupsPerPartition = 4;
  config.numPatterns = 64;

  const auto rows = evaluateSocDr(soc, wc, config);
  const DiagnosisPipeline pipeline(soc.topology(), config);
  for (std::size_t k = 0; k < soc.coreCount(); ++k) {
    const auto responses = socResponsesForFailingCore(soc, k, wc);
    EXPECT_DOUBLE_EQ(rows[k].report.dr, pipeline.evaluate(responses).dr);
  }
}

TEST(EndToEnd, FullRunIsDeterministicAcrossProcessRestarts) {
  // Everything from netlist generation to DR must be a pure function of the
  // configured seeds — this is what makes EXPERIMENTS.md reproducible.
  auto runOnce = [] {
    const Netlist nl = generateNamedCircuit("s1423");
    WorkloadConfig wc;
    wc.numPatterns = 64;
    wc.numFaults = 80;
    const CircuitWorkload work = prepareWorkload(nl, wc);
    DiagnosisConfig config;
    config.scheme = SchemeKind::TwoStep;
    config.numPartitions = 6;
    config.groupsPerPartition = 8;
    config.numPatterns = 64;
    config.pruning = true;
    return DiagnosisPipeline(work.topology, config).evaluate(work.responses);
  };
  const DrReport a = runOnce();
  const DrReport b = runOnce();
  EXPECT_EQ(a.sumCandidates, b.sumCandidates);
  EXPECT_EQ(a.sumActual, b.sumActual);
  EXPECT_EQ(a.faults, b.faults);
}

}  // namespace
}  // namespace scandiag
