// Integration tests pinning the paper's qualitative claims. These use the
// exact workloads of the reproduction benches (scaled down where the full
// 500-fault runs would dominate test time) and assert the *shape* of the
// results: who wins, and where the crossovers fall.

#include <gtest/gtest.h>

#include "core/scandiag.hpp"

namespace scandiag {
namespace {

class S953Workload : public ::testing::Test {
 protected:
  static const CircuitWorkload& work() {
    static const CircuitWorkload w = [] {
      const Netlist nl = generateNamedCircuit("s953");
      WorkloadConfig wc = presets::table1Workload();
      wc.numFaults = 300;
      return prepareWorkload(nl, wc);
    }();
    return w;
  }

  static double dr(SchemeKind scheme, std::size_t partitions, bool pruning = false) {
    DiagnosisConfig c = presets::table1(scheme, partitions);
    c.pruning = pruning;
    return DiagnosisPipeline(work().topology, c).evaluate(work().responses).dr;
  }
};

// Paper §3/Table 1: with one partition, interval-based beats random selection
// because clustered failing cells stay in one interval.
TEST_F(S953Workload, IntervalBeatsRandomAtOnePartition) {
  EXPECT_LT(dr(SchemeKind::IntervalBased, 1), dr(SchemeKind::RandomSelection, 1));
}

// Paper §3/Table 1: with many partitions random selection's fine-grained
// randomness wins over interval-only.
TEST_F(S953Workload, RandomBeatsIntervalAtEightPartitions) {
  EXPECT_LT(dr(SchemeKind::RandomSelection, 8), dr(SchemeKind::IntervalBased, 8));
}

// Paper Table 1: "In all the cases, the two-step method shows the best
// resolution."
TEST_F(S953Workload, TwoStepBestAtEveryBudget) {
  for (std::size_t p : {2u, 4u, 6u, 8u}) {
    const double twoStep = dr(SchemeKind::TwoStep, p);
    EXPECT_LE(twoStep, dr(SchemeKind::RandomSelection, p) + 1e-9) << p << " partitions";
    EXPECT_LE(twoStep, dr(SchemeKind::IntervalBased, p) + 1e-9) << p << " partitions";
  }
}

// DR falls (weakly) as partitions are added, for every scheme.
TEST_F(S953Workload, DrMonotoneInPartitions) {
  for (SchemeKind scheme : {SchemeKind::IntervalBased, SchemeKind::RandomSelection,
                            SchemeKind::TwoStep}) {
    double prev = 1e18;
    for (std::size_t p = 1; p <= 8; ++p) {
      const double cur = dr(scheme, p);
      EXPECT_LE(cur, prev + 1e-9) << schemeName(scheme) << " at " << p;
      prev = cur;
    }
  }
}

// Paper Table 2: superposition pruning only improves resolution.
TEST_F(S953Workload, PruningNeverHurts) {
  for (SchemeKind scheme : {SchemeKind::RandomSelection, SchemeKind::TwoStep}) {
    EXPECT_LE(dr(scheme, 4, true), dr(scheme, 4, false) + 1e-9);
    EXPECT_LE(dr(scheme, 8, true), dr(scheme, 8, false) + 1e-9);
  }
}

// Paper §5 / Tables 3-4: on an SOC with a daisy-chain TestRail and a single
// faulty core, two-step beats random selection decisively.
TEST(SocClaims, TwoStepWinsOnDaisyChainSoc) {
  const Soc soc = buildSocFromModules("mini", {"s1423", "s5378", "s9234"}, 1);
  WorkloadConfig wc = presets::socWorkload();
  wc.numFaults = 150;
  DiagnosisConfig random;
  random.scheme = SchemeKind::RandomSelection;
  random.numPartitions = 8;
  random.groupsPerPartition = 16;
  random.numPatterns = 128;
  DiagnosisConfig twoStep = random;
  twoStep.scheme = SchemeKind::TwoStep;

  const DiagnosisPipeline pr(soc.topology(), random);
  const DiagnosisPipeline pt(soc.topology(), twoStep);
  for (std::size_t core = 0; core < soc.coreCount(); ++core) {
    const auto responses = socResponsesForFailingCore(soc, core, wc);
    const double drRandom = pr.evaluate(responses).dr;
    const double drTwoStep = pt.evaluate(responses).dr;
    EXPECT_LT(drTwoStep, drRandom) << "failing core " << soc.core(core).name;
    EXPECT_LT(drTwoStep, drRandom * 0.8)
        << "two-step should win clearly on SOC workloads, core "
        << soc.core(core).name;
  }
}

// Paper Fig. 5: two-step reaches a target DR with no more partitions than
// random selection.
TEST(SocClaims, TwoStepNeedsFewerPartitionsForTargetDr) {
  const Soc soc = buildSocFromModules("mini", {"s1423", "s5378", "s9234"}, 1);
  WorkloadConfig wc = presets::socWorkload();
  wc.numFaults = 100;
  auto partitionsTo = [&](SchemeKind scheme, const std::vector<FaultResponse>& responses) {
    DiagnosisConfig c;
    c.scheme = scheme;
    c.numPartitions = 12;
    c.groupsPerPartition = 16;
    c.numPatterns = 128;
    const auto sweep = DiagnosisPipeline(soc.topology(), c).evaluateSweep(responses);
    for (std::size_t p = 0; p < sweep.size(); ++p)
      if (sweep[p] <= 0.5) return p + 1;
    return sweep.size() + 1;
  };
  const auto responses = socResponsesForFailingCore(soc, 1, wc);
  EXPECT_LE(partitionsTo(SchemeKind::TwoStep, responses),
            partitionsTo(SchemeKind::RandomSelection, responses));
}

// Paper §4: "the DR values here are larger than those obtained by random
// error injection using a small number of errors" — real faults produce
// failing-cell multisets with a heavy tail. Check the tail exists.
TEST(WorkloadRealism, FailingCellCountsHaveHeavyTail) {
  const Netlist nl = generateNamedCircuit("s9234");
  const CircuitWorkload work = prepareWorkload(nl, presets::table2Workload());
  std::size_t multi = 0, large = 0;
  for (const FaultResponse& r : work.responses) {
    multi += r.failingCellCount() >= 2;
    large += r.failingCellCount() >= 8;
  }
  EXPECT_GT(multi, work.responses.size() / 3) << "most faults should fail multiple cells";
  EXPECT_GT(large, work.responses.size() / 50) << "a tail of wide-failure faults must exist";
}

}  // namespace
}  // namespace scandiag
