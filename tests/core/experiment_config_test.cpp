#include "core/experiment_config.hpp"

#include <gtest/gtest.h>

namespace scandiag {
namespace {

TEST(Presets, Table1MatchesPaperParameters) {
  const WorkloadConfig w = presets::table1Workload();
  EXPECT_EQ(w.numPatterns, 200u);
  EXPECT_EQ(w.numFaults, 500u);
  const DiagnosisConfig c = presets::table1(SchemeKind::TwoStep, 5);
  EXPECT_EQ(c.numPartitions, 5u);
  EXPECT_EQ(c.groupsPerPartition, 4u);
  EXPECT_EQ(c.numPatterns, 200u);
  EXPECT_FALSE(c.pruning);
  EXPECT_EQ(c.scheme, SchemeKind::TwoStep);
}

TEST(Presets, Table2MatchesPaperParameters) {
  const WorkloadConfig w = presets::table2Workload();
  EXPECT_EQ(w.numPatterns, 128u);
  const DiagnosisConfig c = presets::table2(SchemeKind::RandomSelection, true);
  EXPECT_EQ(c.numPartitions, 8u);
  EXPECT_EQ(c.groupsPerPartition, 16u);
  EXPECT_TRUE(c.pruning);
  EXPECT_EQ(c.schemeConfig.lfsr.degree, 16u);  // paper: degree-16 primitive LFSR
}

TEST(Presets, SocConfigsUsePaperGroupCounts) {
  EXPECT_EQ(presets::soc1Config(SchemeKind::TwoStep, false).groupsPerPartition, 32u);
  EXPECT_EQ(presets::d695Config(SchemeKind::TwoStep, false).groupsPerPartition, 8u);
  EXPECT_EQ(presets::soc1Config(SchemeKind::TwoStep, false).numPartitions, 8u);
}

TEST(Presets, Fig5SweepsPartitions) {
  const DiagnosisConfig c = presets::fig5Config(SchemeKind::RandomSelection, 16);
  EXPECT_EQ(c.numPartitions, 16u);
  EXPECT_EQ(c.groupsPerPartition, 32u);
  EXPECT_FALSE(c.pruning);
}

TEST(Presets, ConfigsAreUsableEndToEnd) {
  // Every preset must build valid partitions for a representative chain.
  for (const DiagnosisConfig& c :
       {presets::table1(SchemeKind::IntervalBased, 3), presets::table2(SchemeKind::TwoStep, false),
        presets::soc1Config(SchemeKind::RandomSelection, false),
        presets::d695Config(SchemeKind::TwoStep, true)}) {
    const auto partitions = buildPartitions(c, 512);
    EXPECT_EQ(partitions.size(), c.numPartitions);
    for (const Partition& p : partitions) EXPECT_NO_THROW(p.validate());
  }
}

}  // namespace
}  // namespace scandiag
