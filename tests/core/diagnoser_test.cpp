#include "core/diagnoser.hpp"

#include <gtest/gtest.h>

#include "netlist/synthetic_generator.hpp"
#include "sim/fault_list.hpp"

namespace scandiag {
namespace {

DiagnoserOptions quickOptions() {
  DiagnoserOptions o;
  o.diagnosis.numPartitions = 6;
  o.diagnosis.groupsPerPartition = 4;
  o.diagnosis.numPatterns = 64;
  return o;
}

TEST(Diagnoser, DiagnoseInjectedFaultIsSound) {
  const Netlist nl = generateNamedCircuit("s953");
  const Diagnoser diagnoser(nl, quickOptions());
  const FaultList universe = FaultList::enumerateCollapsed(nl);
  std::size_t detected = 0;
  for (const FaultSite& f : universe.sample(60, 0xD1A6)) {
    const Diagnoser::Result r = diagnoser.diagnoseInjectedFault(f);
    if (!r.detected) continue;
    ++detected;
    // Every actual failing cell appears among the candidates.
    for (std::size_t actual : r.actualFailingCells) {
      EXPECT_NE(std::find(r.candidateCells.begin(), r.candidateCells.end(), actual),
                r.candidateCells.end())
          << describeFault(nl, f);
    }
    EXPECT_GE(r.candidateCells.size(), r.actualFailingCells.size());
  }
  EXPECT_GT(detected, 20u);
}

TEST(Diagnoser, SomeDiagnosesAreExact) {
  const Netlist nl = generateNamedCircuit("s953");
  DiagnoserOptions o = quickOptions();
  o.diagnosis.numPartitions = 8;
  o.diagnosis.pruning = true;
  const Diagnoser diagnoser(nl, o);
  const FaultList universe = FaultList::enumerateCollapsed(nl);
  std::size_t exact = 0, detected = 0;
  for (const FaultSite& f : universe.sample(80, 0xD1A6)) {
    const Diagnoser::Result r = diagnoser.diagnoseInjectedFault(f);
    if (!r.detected) continue;
    ++detected;
    exact += r.exact();
  }
  EXPECT_GT(exact, detected / 4) << "expected a sizable fraction of exact diagnoses";
}

TEST(Diagnoser, UndetectedFaultReported) {
  // Build a circuit with a PO-only gate: its faults are scan-undetectable.
  Netlist nl;
  const GateId a = nl.addInput("a");
  const GateId b = nl.addInput("b");
  const GateId ff0 = nl.addDff("ff0");
  const GateId ff1 = nl.addDff("ff1");
  const GateId po = nl.addGate(GateType::Not, "po", {a});
  nl.setDffInput(ff0, a);
  nl.setDffInput(ff1, b);
  nl.markOutput(po);
  nl.validate();
  DiagnoserOptions o = quickOptions();
  o.diagnosis.groupsPerPartition = 2;
  o.diagnosis.numPartitions = 1;
  const Diagnoser diagnoser(nl, o);
  const Diagnoser::Result r =
      diagnoser.diagnoseInjectedFault({po, FaultSite::kOutputPin, true});
  EXPECT_FALSE(r.detected);
  EXPECT_TRUE(r.candidateCells.empty());
}

TEST(Diagnoser, SessionCountIsPartitionsTimesGroups) {
  const Netlist nl = generateNamedCircuit("s298");
  const Diagnoser diagnoser(nl, quickOptions());
  EXPECT_EQ(diagnoser.sessionCount(), 6u * 4u);
  EXPECT_EQ(diagnoser.partitions().size(), 6u);
}

TEST(Diagnoser, CellNamesResolve) {
  const Netlist nl = generateNamedCircuit("s298");
  const Diagnoser diagnoser(nl, quickOptions());
  EXPECT_EQ(diagnoser.cellName(0), "ff0");
  EXPECT_THROW(diagnoser.cellName(999), std::invalid_argument);
}

TEST(Diagnoser, EvaluateResolutionDeterministic) {
  const Netlist nl = generateNamedCircuit("s526");
  const Diagnoser diagnoser(nl, quickOptions());
  const DrReport a = diagnoser.evaluateResolution(40, 7);
  const DrReport b = diagnoser.evaluateResolution(40, 7);
  EXPECT_EQ(a.sumCandidates, b.sumCandidates);
  EXPECT_EQ(a.faults, b.faults);
  EXPECT_GT(a.faults, 10u);
}

TEST(Diagnoser, MultiChainOption) {
  const Netlist nl = generateNamedCircuit("s953");
  DiagnoserOptions o = quickOptions();
  o.numChains = 4;
  const Diagnoser diagnoser(nl, o);
  EXPECT_EQ(diagnoser.topology().numChains(), 4u);
  EXPECT_GT(diagnoser.evaluateResolution(30).faults, 0u);
}

TEST(Diagnoser, RejectsCircuitWithoutScanCells) {
  Netlist nl;
  const GateId a = nl.addInput("a");
  nl.markOutput(nl.addGate(GateType::Not, "g", {a}));
  EXPECT_THROW(Diagnoser(nl, quickOptions()), std::invalid_argument);
}

}  // namespace
}  // namespace scandiag
