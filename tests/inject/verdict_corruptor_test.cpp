// VerdictCorruptor: seeded, replayable noise on session verdicts. The core
// contract is determinism — corruption of (fault, attempt, partition) is a
// pure function of the seed — plus the per-model semantics.

#include <gtest/gtest.h>

#include <cmath>

#include "diagnosis/interval_partitioner.hpp"
#include "inject/verdict_corruptor.hpp"

namespace scandiag {
namespace {

FaultResponse makeResponse(std::size_t numCells, const std::vector<std::size_t>& failing) {
  FaultResponse r;
  r.failingCells = BitVector(numCells);
  for (std::size_t c : failing) {
    r.failingCells.set(c);
    r.failingCellOrdinals.push_back(c);
    BitVector stream(4);
    stream.set(0);
    r.errorStreams.push_back(stream);
  }
  return r;
}

struct Fixture {
  ScanTopology topo = ScanTopology::singleChain(16);
  SessionEngine engine{topo, SessionConfig{SignatureMode::Exact, 4}};
  std::vector<Partition> parts{IntervalPartitioner::fromLengths({4, 4, 4, 4}, 16),
                               IntervalPartitioner::fromLengths({8, 8}, 16)};
  FaultResponse response = makeResponse(16, {5});
  BitVector failingPositions = topo.collapseCells(response.failingCells);

  GroupVerdicts clean() const { return engine.run(parts, response); }
};

TEST(VerdictCorruptor, RatesOutsideUnitIntervalRejected) {
  NoiseConfig bad;
  bad.flipRate = -0.1;
  EXPECT_THROW(VerdictCorruptor{bad}, std::invalid_argument);
  bad.flipRate = 0.0;
  bad.aliasRate = 1.5;
  EXPECT_THROW(VerdictCorruptor{bad}, std::invalid_argument);
}

TEST(VerdictCorruptor, ZeroNoiseIsANoOp) {
  Fixture f;
  GroupVerdicts verdicts = f.clean();
  const GroupVerdicts before = verdicts;
  const VerdictCorruptor corruptor{NoiseConfig{}};
  const CorruptionTrace trace =
      corruptor.corrupt(verdicts, f.parts, f.failingPositions, 42);
  EXPECT_FALSE(trace.any());
  for (std::size_t p = 0; p < f.parts.size(); ++p) {
    EXPECT_EQ(verdicts.failing[p].toIndices(), before.failing[p].toIndices());
  }
}

TEST(VerdictCorruptor, SameSeedSameFaultReplaysExactly) {
  Fixture f;
  NoiseConfig noise;
  noise.flipRate = 0.3;
  noise.intermittentRate = 0.2;
  noise.seed = 0xABCD;
  const VerdictCorruptor corruptor{noise};

  GroupVerdicts a = f.clean(), b = f.clean();
  const CorruptionTrace ta = corruptor.corrupt(a, f.parts, f.failingPositions, 7);
  const CorruptionTrace tb = corruptor.corrupt(b, f.parts, f.failingPositions, 7);
  ASSERT_EQ(ta.count(), tb.count());
  for (std::size_t i = 0; i < ta.count(); ++i) {
    EXPECT_EQ(ta.events[i].kind, tb.events[i].kind);
    EXPECT_EQ(ta.events[i].partition, tb.events[i].partition);
    EXPECT_EQ(ta.events[i].group, tb.events[i].group);
  }
  for (std::size_t p = 0; p < f.parts.size(); ++p) {
    EXPECT_EQ(a.failing[p].toIndices(), b.failing[p].toIndices());
  }
}

TEST(VerdictCorruptor, DistinctFaultsAndAttemptsDrawIndependentStreams) {
  Fixture f;
  NoiseConfig noise;
  noise.flipRate = 0.5;
  const VerdictCorruptor corruptor{noise};
  // With flip rate 0.5 over 24 sessions x several keys, two streams agreeing
  // everywhere would mean the key is being ignored.
  bool faultKeyMatters = false, attemptMatters = false;
  for (std::uint64_t key = 0; key < 8 && !(faultKeyMatters && attemptMatters); ++key) {
    GroupVerdicts a = f.clean(), b = f.clean(), c = f.clean();
    corruptor.corrupt(a, f.parts, f.failingPositions, key, 0);
    corruptor.corrupt(b, f.parts, f.failingPositions, key + 100, 0);
    corruptor.corrupt(c, f.parts, f.failingPositions, key, 1);
    for (std::size_t p = 0; p < f.parts.size(); ++p) {
      if (a.failing[p].toIndices() != b.failing[p].toIndices()) faultKeyMatters = true;
      if (a.failing[p].toIndices() != c.failing[p].toIndices()) attemptMatters = true;
    }
  }
  EXPECT_TRUE(faultKeyMatters);
  EXPECT_TRUE(attemptMatters);
}

TEST(VerdictCorruptor, CorruptRowMatchesWholeScheduleStream) {
  Fixture f;
  NoiseConfig noise;
  noise.flipRate = 0.4;
  noise.xMaskRate = 0.2;
  const VerdictCorruptor corruptor{noise};
  GroupVerdicts whole = f.clean();
  corruptor.corrupt(whole, f.parts, f.failingPositions, 9, 0);
  for (std::size_t p = 0; p < f.parts.size(); ++p) {
    PartitionVerdictRow row;
    row.failing = f.clean().failing[p];
    corruptor.corruptRow(row, f.parts[p], p, f.failingPositions, 9, 0);
    EXPECT_EQ(row.failing.toIndices(), whole.failing[p].toIndices()) << "partition " << p;
  }
}

TEST(VerdictCorruptor, FlipRateOneFlipsEverySession) {
  Fixture f;
  NoiseConfig noise;
  noise.flipRate = 1.0;
  const VerdictCorruptor corruptor{noise};
  const GroupVerdicts before = f.clean();
  GroupVerdicts after = before;
  const CorruptionTrace trace = corruptor.corrupt(after, f.parts, f.failingPositions, 1);
  std::size_t sessions = 0;
  for (std::size_t p = 0; p < f.parts.size(); ++p) {
    sessions += f.parts[p].groupCount();
    for (std::size_t g = 0; g < f.parts[p].groupCount(); ++g) {
      EXPECT_NE(after.failing[p].test(g), before.failing[p].test(g));
    }
  }
  EXPECT_EQ(trace.count(), sessions);
}

TEST(VerdictCorruptor, IntermittencyOnlySilencesFailingSessions) {
  Fixture f;
  NoiseConfig noise;
  noise.intermittentRate = 1.0;
  const VerdictCorruptor corruptor{noise};
  GroupVerdicts verdicts = f.clean();
  const CorruptionTrace trace = corruptor.corrupt(verdicts, f.parts, f.failingPositions, 2);
  for (const BitVector& row : verdicts.failing) EXPECT_TRUE(row.none());
  for (const CorruptionEvent& e : trace.events) {
    EXPECT_EQ(e.kind, CorruptionEvent::Kind::Intermittent);
    EXPECT_FALSE(e.nowFailing);
  }
}

TEST(VerdictCorruptor, FullXMaskSilencesEveryFailingSession) {
  Fixture f;
  NoiseConfig noise;
  noise.xMaskRate = 1.0;  // every position masked: nothing observable remains
  const VerdictCorruptor corruptor{noise};
  GroupVerdicts verdicts = f.clean();
  const CorruptionTrace trace = corruptor.corrupt(verdicts, f.parts, f.failingPositions, 3);
  for (const BitVector& row : verdicts.failing) EXPECT_TRUE(row.none());
  EXPECT_TRUE(trace.any());
}

TEST(VerdictCorruptor, AliasingZeroesTheSignature) {
  Fixture f;
  SessionConfig sessionConfig{SignatureMode::Exact, 4};
  sessionConfig.computeSignatures = true;
  const SessionEngine sigEngine(f.topo, sessionConfig);
  GroupVerdicts verdicts = sigEngine.run(f.parts, f.response);
  ASSERT_TRUE(verdicts.hasSignatures);

  NoiseConfig noise;
  noise.aliasRate = 1.0;
  const VerdictCorruptor corruptor{noise};
  const CorruptionTrace trace = corruptor.corrupt(verdicts, f.parts, f.failingPositions, 4);
  EXPECT_TRUE(trace.any());
  for (std::size_t p = 0; p < f.parts.size(); ++p) {
    for (std::size_t g = 0; g < f.parts[p].groupCount(); ++g) {
      EXPECT_FALSE(verdicts.failing[p].test(g));
      EXPECT_EQ(verdicts.errorSig[p][g], 0u);
    }
  }
  for (const CorruptionEvent& e : trace.events) {
    EXPECT_EQ(e.kind, CorruptionEvent::Kind::Aliasing);
  }
}

TEST(VerdictCorruptor, AliasingProbabilityMatchesDegree) {
  EXPECT_DOUBLE_EQ(misrAliasingProbability(1), 1.0);
  EXPECT_DOUBLE_EQ(misrAliasingProbability(2), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(misrAliasingProbability(16), 1.0 / 65535.0);
  EXPECT_NEAR(misrAliasingProbability(64), std::ldexp(1.0, -64), 1e-30);
  EXPECT_GT(misrAliasingProbability(64), 0.0);
}

}  // namespace
}  // namespace scandiag
