// NoisyPipeline: end-to-end resilience. Zero noise must be bit-identical to
// the base pipeline; with noise the report must be thread-count deterministic
// and single-cell faults must never be exonerated or left with an empty
// candidate set.

#include <gtest/gtest.h>

#include "common/thread_pool.hpp"
#include "inject/noisy_pipeline.hpp"
#include "netlist/synthetic_generator.hpp"

namespace scandiag {
namespace {

FaultResponse makeResponse(std::size_t numCells, const std::vector<std::size_t>& failing) {
  FaultResponse r;
  r.failingCells = BitVector(numCells);
  for (std::size_t c : failing) {
    r.failingCells.set(c);
    r.failingCellOrdinals.push_back(c);
    BitVector stream(4);
    stream.set(0);
    r.errorStreams.push_back(stream);
  }
  return r;
}

DiagnosisConfig smallConfig() {
  DiagnosisConfig config;
  config.scheme = SchemeKind::TwoStep;
  config.numPartitions = 4;
  config.groupsPerPartition = 4;
  config.numPatterns = 4;
  return config;
}

std::vector<FaultResponse> singleCellResponses(std::size_t numCells) {
  std::vector<FaultResponse> responses;
  for (std::size_t c = 0; c < numCells; ++c) responses.push_back(makeResponse(numCells, {c}));
  return responses;
}

TEST(NoisyPipeline, ZeroNoiseBitIdenticalToBasePipeline) {
  const Netlist nl = generateNamedCircuit("s298");
  WorkloadConfig wc;
  wc.numPatterns = 64;
  wc.numFaults = 40;
  const CircuitWorkload work = prepareWorkload(nl, wc);
  DiagnosisConfig config;
  config.numPatterns = 64;
  config.numPartitions = 6;
  config.groupsPerPartition = 4;

  const DiagnosisPipeline base(work.topology, config);
  const NoisyPipeline noisy(work.topology, config, NoiseConfig{}, RetryPolicy{});

  for (std::size_t i = 0; i < work.responses.size(); ++i) {
    const FaultDiagnosis clean = base.diagnose(work.responses[i]);
    const ResilientDiagnosis resilient = noisy.diagnose(work.responses[i], i);
    EXPECT_EQ(resilient.candidates.cells.toIndices(), clean.candidates.cells.toIndices());
    EXPECT_EQ(resilient.candidateCount, clean.candidateCount);
    EXPECT_EQ(resilient.inconsistencies, 0u);
    EXPECT_EQ(resilient.retrySessions, 0u);
    EXPECT_DOUBLE_EQ(resilient.confidence, 1.0);
    EXPECT_FALSE(resilient.injected.any());
  }

  const DrReport cleanReport = base.evaluate(work.responses);
  const NoisyDrReport noisyReport = noisy.evaluate(work.responses);
  EXPECT_EQ(noisyReport.sumCandidates, cleanReport.sumCandidates);
  EXPECT_EQ(noisyReport.sumActual, cleanReport.sumActual);
  EXPECT_DOUBLE_EQ(noisyReport.dr, cleanReport.dr);
  EXPECT_EQ(noisyReport.faults, cleanReport.faults);
}

TEST(NoisyPipeline, ReportIsThreadCountInvariant) {
  const ScanTopology topo = ScanTopology::singleChain(32);
  NoiseConfig noise;
  noise.flipRate = 0.1;
  noise.intermittentRate = 0.05;
  RetryPolicy retry;
  retry.sessionBudget = 32;
  const NoisyPipeline pipeline(topo, smallConfig(), noise, retry);
  const std::vector<FaultResponse> responses = singleCellResponses(32);

  setGlobalThreadCount(1);
  const NoisyDrReport one = pipeline.evaluate(responses);
  setGlobalThreadCount(8);
  const NoisyDrReport eight = pipeline.evaluate(responses);
  setGlobalThreadCount(0);  // restore default

  EXPECT_EQ(one.sumCandidates, eight.sumCandidates);
  EXPECT_EQ(one.sumActual, eight.sumActual);
  EXPECT_DOUBLE_EQ(one.dr, eight.dr);
  EXPECT_DOUBLE_EQ(one.misdiagnosisRate, eight.misdiagnosisRate);
  EXPECT_DOUBLE_EQ(one.meanConfidence, eight.meanConfidence);
  EXPECT_EQ(one.totalInconsistencies, eight.totalInconsistencies);
  EXPECT_EQ(one.totalRetrySessions, eight.totalRetrySessions);
  EXPECT_EQ(one.unresolved, eight.unresolved);
}

// Silencing noise (fail->pass only — intermittency, X-masking, aliasing)
// can never exonerate a single-cell fault: a silenced partition reads
// all-pass, trips AllGroupsPassing, and is retried or dropped; the surviving
// partitions' unions all contain the true cell. The only way candidates can
// come back empty is the schedule where EVERY partition was silenced, which
// reads as a consistent fault-free device (zero inconsistencies).
TEST(NoisyPipeline, SilencingNoiseNeverExoneratesSingleCellFaults) {
  const ScanTopology topo = ScanTopology::singleChain(32);
  NoiseConfig noise;
  noise.intermittentRate = 0.25;
  noise.seed = 0xBEEF;
  const std::vector<FaultResponse> responses = singleCellResponses(32);

  for (const std::size_t budget : {std::size_t{0}, std::size_t{32}}) {
    RetryPolicy retry;
    retry.sessionBudget = budget;
    const NoisyPipeline pipeline(topo, smallConfig(), noise, retry);
    std::size_t detections = 0;
    for (std::size_t i = 0; i < responses.size(); ++i) {
      const ResilientDiagnosis d = pipeline.diagnose(responses[i], i);
      EXPECT_FALSE(d.misdiagnosed) << "budget " << budget << " fault " << i;
      if (d.emptyCandidates) {
        EXPECT_EQ(d.inconsistencies, 0u)
            << "budget " << budget << " fault " << i
            << ": empty candidates despite a detected inconsistency";
      } else {
        EXPECT_TRUE(responses[i].failingCells.isSubsetOf(d.candidates.cells));
      }
      detections += d.inconsistencies > 0 ? 1 : 0;
    }
    EXPECT_GT(detections, 0u) << "noise rate too low to exercise detection";
    const NoisyDrReport report = pipeline.evaluate(responses);
    EXPECT_DOUBLE_EQ(report.misdiagnosisRate, 0.0);
  }
}

// Raw flips can also fabricate fail verdicts. A misdiagnosis then requires at
// least two injected events in one diagnosis (the true group silenced AND a
// spurious group failing in the same partition — the documented undetectable
// residual); any single-event corruption must be caught or stay a superset.
TEST(NoisyPipeline, FlipMisdiagnosisNeedsCompoundCorruption) {
  const ScanTopology topo = ScanTopology::singleChain(32);
  NoiseConfig noise;
  noise.flipRate = 0.1;
  noise.seed = 0xBEEF;
  const std::vector<FaultResponse> responses = singleCellResponses(32);

  for (const std::size_t budget : {std::size_t{0}, std::size_t{64}}) {
    RetryPolicy retry;
    retry.sessionBudget = budget;
    const NoisyPipeline pipeline(topo, smallConfig(), noise, retry);
    for (std::size_t i = 0; i < responses.size(); ++i) {
      const ResilientDiagnosis d = pipeline.diagnose(responses[i], i);
      if (d.injected.count() <= 1) {
        EXPECT_FALSE(d.misdiagnosed) << "budget " << budget << " fault " << i;
        EXPECT_FALSE(d.emptyCandidates) << "budget " << budget << " fault " << i;
      } else if (d.misdiagnosed) {
        EXPECT_GE(d.injected.count(), 2u);
      }
    }
  }
}

TEST(NoisyPipeline, RecoveryRepairsWhatDegradationCannot) {
  const ScanTopology topo = ScanTopology::singleChain(32);
  NoiseConfig noise;
  noise.flipRate = 0.1;
  const std::vector<FaultResponse> responses = singleCellResponses(32);

  RetryPolicy without;  // budget 0
  RetryPolicy with;
  with.sessionBudget = 64;
  const NoisyPipeline degraded(topo, smallConfig(), noise, without);
  const NoisyPipeline recovered(topo, smallConfig(), noise, with);
  const NoisyDrReport d = degraded.evaluate(responses);
  const NoisyDrReport r = recovered.evaluate(responses);

  // Identical noise streams hit both pipelines (same seed, same fault keys).
  EXPECT_EQ(d.totalInconsistencies, r.totalInconsistencies);
  ASSERT_GT(d.totalInconsistencies, 0u) << "noise rate too low to exercise recovery";
  // Retrying spends sessions but repairs partitions that degradation drops:
  // candidates shrink (or stay equal) and fewer diagnoses stay unresolved.
  EXPECT_GT(r.totalRetrySessions, 0u);
  EXPECT_EQ(d.totalRetrySessions, 0u);
  EXPECT_LE(r.sumCandidates, d.sumCandidates);
  EXPECT_LE(r.unresolved, d.unresolved);
  EXPECT_GE(r.meanConfidence, d.meanConfidence);
}

TEST(NoisyPipeline, CostAccountsForRetrySessions) {
  const ScanTopology topo = ScanTopology::singleChain(32);
  NoiseConfig noise;
  noise.flipRate = 0.2;
  RetryPolicy retry;
  retry.sessionBudget = 64;
  const NoisyPipeline pipeline(topo, smallConfig(), noise, retry);
  const NoisyPipeline quiet(topo, smallConfig(), NoiseConfig{}, RetryPolicy{});

  bool sawRetry = false;
  for (std::size_t i = 0; i < 32; ++i) {
    const FaultResponse response = makeResponse(32, {i});
    const ResilientDiagnosis noisy = pipeline.diagnose(response, i);
    const ResilientDiagnosis clean = quiet.diagnose(response, i);
    EXPECT_EQ(noisy.cost.sessions, clean.cost.sessions + noisy.retrySessions);
    if (noisy.retrySessions > 0) {
      sawRetry = true;
      EXPECT_GT(noisy.cost.clockCycles, clean.cost.clockCycles);
    }
  }
  EXPECT_TRUE(sawRetry) << "flip rate produced no suspect partitions at this seed";
}

}  // namespace
}  // namespace scandiag
