// Defect-zoo scenarios and the robust multi-defect pipeline: spec parsing,
// the union overlay composition, the replayable intermittent activation
// contract, deterministic scenario generation, and the degrade-never-lie
// guarantees of DefectZooPipeline (no true failing cell is ever excluded;
// intermittency degrades to a calibrated superset instead of erroring;
// evaluation is bit-identical at every thread count).

#include "inject/defect_zoo.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "common/thread_pool.hpp"
#include "netlist/synthetic_generator.hpp"

namespace scandiag {
namespace {

FaultResponse makeResponse(std::size_t numCells, std::size_t numPatterns,
                           const std::vector<std::pair<std::size_t, std::vector<std::size_t>>>&
                               cellsWithFailingPatterns) {
  FaultResponse r;
  r.failingCells = BitVector(numCells);
  for (const auto& [cell, fails] : cellsWithFailingPatterns) {
    r.failingCells.set(cell);
    r.failingCellOrdinals.push_back(cell);
    BitVector stream(numPatterns);
    for (std::size_t t : fails) stream.set(t);
    r.errorStreams.push_back(stream);
  }
  return r;
}

TEST(DefectSpec, ParsesEveryField) {
  const DefectMix plain = parseDefectSpec("3");
  EXPECT_EQ(plain.k, 3u);
  EXPECT_FALSE(plain.bridges);
  EXPECT_FALSE(plain.opens);
  EXPECT_DOUBLE_EQ(plain.intermittentP, 0.0);

  const DefectMix mixed = parseDefectSpec("2,bridge,open,intermittent:0.5,seed:0x123");
  EXPECT_EQ(mixed.k, 2u);
  EXPECT_TRUE(mixed.bridges);
  EXPECT_TRUE(mixed.opens);
  EXPECT_DOUBLE_EQ(mixed.intermittentP, 0.5);
  EXPECT_EQ(mixed.seed, 0x123u);
}

TEST(DefectSpec, DescribeRoundTrips) {
  for (const char* spec : {"1", "2,bridge", "3,bridge,open", "2,intermittent:0.25"}) {
    const DefectMix mix = parseDefectSpec(spec);
    const DefectMix again = parseDefectSpec(describeDefectMix(mix));
    EXPECT_EQ(again.k, mix.k) << spec;
    EXPECT_EQ(again.bridges, mix.bridges) << spec;
    EXPECT_EQ(again.opens, mix.opens) << spec;
    EXPECT_DOUBLE_EQ(again.intermittentP, mix.intermittentP) << spec;
  }
}

TEST(DefectSpec, RejectsMalformedInput) {
  for (const char* bad : {"", "0", "x", "2,bogus", "2,intermittent:0", "2,intermittent:1",
                          "2,intermittent:-0.5", "2,intermittent:abc", "2,seed:zz"}) {
    EXPECT_THROW(parseDefectSpec(bad), std::invalid_argument) << "spec '" << bad << "'";
  }
}

TEST(UnionOverlay, ComposeOrsStreamsAndUnionsCells) {
  const FaultResponse a = makeResponse(8, 4, {{1, {0, 2}}, {5, {1}}});
  const FaultResponse b = makeResponse(8, 4, {{1, {2, 3}}, {6, {0}}});
  const FaultResponse u = composeUnionResponse({&a, &b});

  EXPECT_EQ(u.failingCellOrdinals, (std::vector<std::size_t>{1, 5, 6}));
  EXPECT_TRUE(u.failingCells.test(1));
  EXPECT_TRUE(u.failingCells.test(5));
  EXPECT_TRUE(u.failingCells.test(6));
  EXPECT_EQ(u.failingCellCount(), 3u);
  // Cell 1 appears in both: its stream is the OR {0, 2} | {2, 3}.
  EXPECT_EQ(u.errorStreams[0].toIndices(), (std::vector<std::size_t>{0, 2, 3}));
  EXPECT_EQ(u.errorStreams[1].toIndices(), (std::vector<std::size_t>{1}));
  EXPECT_EQ(u.errorStreams[2].toIndices(), (std::vector<std::size_t>{0}));
}

TEST(UnionOverlay, MaskResponseDropsFullySilencedCells) {
  const FaultResponse r = makeResponse(8, 4, {{2, {0, 1}}, {4, {3}}});
  BitVector active(4);
  active.set(0);
  active.set(1);
  const FaultResponse masked = maskResponse(r, active);
  // Cell 4 only failed at pattern 3, which the mask silences — dropped.
  EXPECT_EQ(masked.failingCellOrdinals, (std::vector<std::size_t>{2}));
  EXPECT_FALSE(masked.failingCells.test(4));
  EXPECT_EQ(masked.errorStreams[0].toIndices(), (std::vector<std::size_t>{0, 1}));
}

TEST(IntermittentMask, IsAPureFunctionOfItsArguments) {
  const BitVector m1 = intermittentActivationMask(0xABC, 3, 1, 2, 5, 0.5, 128);
  const BitVector m2 = intermittentActivationMask(0xABC, 3, 1, 2, 5, 0.5, 128);
  EXPECT_EQ(m1.toIndices(), m2.toIndices());
  EXPECT_GT(m1.count(), 0u);
  EXPECT_LT(m1.count(), 128u);

  // Every identity coordinate draws an independent stream: varying any one
  // of (scenario, component, attempt, partition) changes the mask.
  EXPECT_NE(m1.toIndices(), intermittentActivationMask(0xABC, 4, 1, 2, 5, 0.5, 128).toIndices());
  EXPECT_NE(m1.toIndices(), intermittentActivationMask(0xABC, 3, 0, 2, 5, 0.5, 128).toIndices());
  EXPECT_NE(m1.toIndices(), intermittentActivationMask(0xABC, 3, 1, 3, 5, 0.5, 128).toIndices());
  EXPECT_NE(m1.toIndices(), intermittentActivationMask(0xABC, 3, 1, 2, 6, 0.5, 128).toIndices());
}

struct ZooFixture {
  ZooFixture()
      : nl(generateNamedCircuit("s953")),
        patterns(generatePatterns(nl, config.numPatterns, PrpgConfig{})),
        sim(nl, patterns),
        topology(ScanTopology::singleChain(nl.dffs().size())) {}

  DiagnosisConfig config;  // two-step, 8 partitions x 16 groups, 128 patterns
  Netlist nl;
  PatternSet patterns;
  FaultSimulator sim;
  ScanTopology topology;
};

TEST(DefectScenarioGeneratorTest, DeterministicDetectedAndMixed) {
  const ZooFixture f;
  DefectMix mix;
  mix.k = 3;
  mix.bridges = true;
  mix.opens = true;
  const DefectScenarioGenerator generator(f.sim, mix);

  const DefectScenario once = generator.generate(4);
  const DefectScenario again = generator.generate(4);
  ASSERT_EQ(once.k(), 3u);
  EXPECT_EQ(once.seed, again.seed);
  EXPECT_EQ(once.composed.failingCells.toIndices(), again.composed.failingCells.toIndices());
  for (std::size_t c = 0; c < once.components.size(); ++c) {
    EXPECT_EQ(once.components[c].kind, again.components[c].kind) << c;
    EXPECT_EQ(once.components[c].response.failingCellOrdinals,
              again.components[c].response.failingCellOrdinals)
        << c;
    // Every drawn component is detected (nonempty permanent response).
    EXPECT_TRUE(once.components[c].response.detected()) << c;
  }
  // Distinct indices draw distinct scenarios.
  EXPECT_NE(once.seed, generator.generate(5).seed);
}

TEST(DefectZooPipelineTest, PermanentUnionsNeverExcludeTrueFailingCells) {
  const ZooFixture f;
  DefectMix mix;
  mix.k = 2;
  mix.bridges = true;
  mix.opens = true;
  const DefectScenarioGenerator generator(f.sim, mix);
  const DefectZooPipeline zoo(f.sim, f.topology, f.config, DefectPolicy{});
  for (std::size_t i = 0; i < 8; ++i) {
    const DefectScenario scenario = generator.generate(i);
    const DefectDiagnosis d = zoo.diagnose(scenario);
    EXPECT_FALSE(d.misdiagnosed) << "scenario " << i;
    EXPECT_TRUE(scenario.composed.failingCells.isSubsetOf(d.candidates.cells))
        << "scenario " << i;
    EXPECT_GT(d.confidence, 0.0) << "scenario " << i;
  }
}

TEST(DefectZooPipelineTest, IntermittencyDegradesToCalibratedSuperset) {
  const ZooFixture f;
  DefectMix mix;
  mix.k = 2;
  mix.intermittentP = 0.5;
  const DefectScenarioGenerator generator(f.sim, mix);
  const DefectZooPipeline zoo(f.sim, f.topology, f.config, DefectPolicy{});
  for (std::size_t i = 0; i < 4; ++i) {
    const DefectScenario scenario = generator.generate(i);
    ASSERT_TRUE(scenario.intermittent()) << i;
    const DefectDiagnosis d = zoo.diagnose(scenario);
    EXPECT_FALSE(d.resolved) << i;
    EXPECT_TRUE(d.degraded) << i;
    EXPECT_FALSE(d.misdiagnosed) << i;
    EXPECT_GT(d.confidence, 0.0) << i;
    EXPECT_LT(d.confidence, 1.0) << i;
    EXPECT_GT(d.extraSessions, 0u) << i;
  }
}

TEST(DefectZooPipelineTest, EvaluateIsBitIdenticalAcrossThreadCounts) {
  const ZooFixture f;
  DefectMix mix;
  mix.k = 2;
  mix.bridges = true;
  const DefectScenarioGenerator generator(f.sim, mix);
  std::vector<DefectScenario> scenarios;
  for (std::size_t i = 0; i < 6; ++i) scenarios.push_back(generator.generate(i));
  const DefectZooPipeline zoo(f.sim, f.topology, f.config, DefectPolicy{});

  setGlobalThreadCount(1);
  const DefectZooReport one = zoo.evaluate(scenarios);
  setGlobalThreadCount(4);
  const DefectZooReport four = zoo.evaluate(scenarios);
  setGlobalThreadCount(1);

  EXPECT_EQ(one.sumCandidates, four.sumCandidates);
  EXPECT_EQ(one.sumActual, four.sumActual);
  EXPECT_EQ(one.degraded, four.degraded);
  EXPECT_EQ(one.totalInconsistencies, four.totalInconsistencies);
  EXPECT_EQ(one.totalUnionSplits, four.totalUnionSplits);
  EXPECT_EQ(one.totalAtpgPatterns, four.totalAtpgPatterns);
  EXPECT_EQ(one.totalExtraSessions, four.totalExtraSessions);
  EXPECT_DOUBLE_EQ(one.dr, four.dr);
  EXPECT_DOUBLE_EQ(one.misdiagnosisRate, four.misdiagnosisRate);
  EXPECT_DOUBLE_EQ(one.meanConfidence, four.meanConfidence);
}

TEST(DefectZooPipelineTest, AdaptiveSchemeIsRejected) {
  const ZooFixture f;
  DiagnosisConfig adaptive = f.config;
  adaptive.scheme = SchemeKind::Adaptive;
  EXPECT_THROW(DefectZooPipeline(f.sim, f.topology, adaptive, DefectPolicy{}),
               std::logic_error);
}

}  // namespace
}  // namespace scandiag
