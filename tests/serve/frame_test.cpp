// Frame codec contract: CRC-framed length-prefixed messages where every
// malformation maps to a typed error — FrameFormatError for structural lies
// (wild lengths, truncation mid-frame), FrameCorruptError for CRC mismatches
// — and an incomplete prefix is "wait for more bytes", never an error.

#include "serve/frame.hpp"

#include <gtest/gtest.h>

#include <string>

#include "serve/wire.hpp"

namespace scandiag::serve {
namespace {

TEST(Frame, EncodeDecodeRoundTrip) {
  const std::string encoded = encodeFrame(0x20, "hello frame");
  std::size_t consumed = 0;
  const auto frame = decodeFrame(encoded, &consumed);
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->type, 0x20);
  EXPECT_EQ(frame->payload, "hello frame");
  EXPECT_EQ(consumed, encoded.size());
}

TEST(Frame, EmptyPayloadRoundTrips) {
  const std::string encoded = encodeFrame(0x10, "");
  std::size_t consumed = 0;
  const auto frame = decodeFrame(encoded, &consumed);
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->type, 0x10);
  EXPECT_TRUE(frame->payload.empty());
}

TEST(Frame, IncompletePrefixIsNotAnError) {
  const std::string encoded = encodeFrame(0x20, "partial");
  for (std::size_t cut = 0; cut < encoded.size(); ++cut) {
    std::size_t consumed = 0;
    const auto frame = decodeFrame(encoded.substr(0, cut), &consumed);
    EXPECT_FALSE(frame.has_value()) << "cut at " << cut;
  }
}

TEST(Frame, FlippedPayloadByteIsCorrupt) {
  std::string encoded = encodeFrame(0x20, "payload bytes");
  for (std::size_t pos = kFrameHeaderBytes; pos < encoded.size(); ++pos) {
    std::string bad = encoded;
    bad[pos] = static_cast<char>(bad[pos] ^ 0x40);
    std::size_t consumed = 0;
    EXPECT_THROW((void)decodeFrame(bad, &consumed), FrameCorruptError) << "pos " << pos;
  }
}

TEST(Frame, FlippedCrcByteIsCorrupt) {
  std::string encoded = encodeFrame(0x20, "x");
  encoded[5] = static_cast<char>(encoded[5] ^ 0x01);  // inside the CRC field
  std::size_t consumed = 0;
  EXPECT_THROW((void)decodeFrame(encoded, &consumed), FrameCorruptError);
}

TEST(Frame, OversizedLengthIsFormatErrorBeforeAllocation) {
  // Header claims 512 MiB; the decoder must reject it from the 8 header
  // bytes alone instead of waiting for (or allocating) that much.
  std::string bytes;
  const std::uint32_t huge = 512u * 1024 * 1024;
  wire::putU32(bytes, huge);
  wire::putU32(bytes, 0);  // CRC never checked: length fails first
  std::size_t consumed = 0;
  EXPECT_THROW((void)decodeFrame(bytes, &consumed), FrameFormatError);
}

TEST(Frame, UndersizedLengthIsFormatError) {
  // A frame body must hold at least the u16 type tag.
  std::string bytes;
  wire::putU32(bytes, 1);
  wire::putU32(bytes, 0);
  bytes.push_back('x');
  std::size_t consumed = 0;
  EXPECT_THROW((void)decodeFrame(bytes, &consumed), FrameFormatError);
}

TEST(Frame, EncodeRejectsOversizedPayload) {
  EXPECT_THROW((void)encodeFrame(0x20, std::string(kMaxFramePayload, 'a')),
               FrameFormatError);
}

TEST(Frame, BackToBackFramesDecodeSequentially) {
  const std::string a = encodeFrame(1, "first");
  const std::string b = encodeFrame(2, "second");
  std::string stream = a + b;
  std::size_t consumed = 0;
  const auto first = decodeFrame(stream, &consumed);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->payload, "first");
  stream.erase(0, consumed);
  const auto second = decodeFrame(stream, &consumed);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->payload, "second");
}

TEST(WireCursor, ReadsBackWhatHelpersWrote) {
  std::string bytes;
  wire::putU16(bytes, 0xBEEF);
  wire::putU32(bytes, 0xDEADBEEF);
  wire::putU64(bytes, 0x0123456789ABCDEFull);
  wire::putDouble(bytes, 0.734375);
  wire::putString(bytes, "cells");
  wire::Cursor cur{std::string_view(bytes)};
  EXPECT_EQ(cur.u16(), 0xBEEF);
  EXPECT_EQ(cur.u32(), 0xDEADBEEFu);
  EXPECT_EQ(cur.u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(cur.f64(), 0.734375);
  EXPECT_EQ(cur.str(16), "cells");
  EXPECT_TRUE(cur.exhausted());
}

TEST(WireCursor, TruncatedIntegerThrowsFormatError) {
  std::string bytes;
  wire::putU32(bytes, 7);
  wire::Cursor cur{std::string_view(bytes)};
  (void)cur.u16();
  (void)cur.u16();
  EXPECT_THROW((void)cur.u16(), FrameFormatError);
}

TEST(WireCursor, StringLengthBeyondCapThrowsBeforeAllocating) {
  std::string bytes;
  wire::putU32(bytes, 0x40000000u);  // claims a 1 GiB string
  wire::Cursor cur{std::string_view(bytes)};
  EXPECT_THROW((void)cur.str(1024), FrameFormatError);
}

TEST(WireCursor, StringLengthBeyondRemainingThrows) {
  std::string bytes;
  wire::putString(bytes, "abc");
  bytes.pop_back();  // length says 3, two bytes present
  wire::Cursor cur{std::string_view(bytes)};
  EXPECT_THROW((void)cur.str(16), FrameFormatError);
}

TEST(WireCursor, ExpectExhaustedRejectsTrailingBytes) {
  std::string bytes;
  wire::putU16(bytes, 1);
  bytes.push_back('\0');
  wire::Cursor cur{std::string_view(bytes)};
  (void)cur.u16();
  EXPECT_THROW(cur.expectExhausted("test message"), FrameFormatError);
}

}  // namespace
}  // namespace scandiag::serve
