// Request-accounting ledger: the crash-exact invariant under test is
// accepted == ok + shed + degraded + aborted after ANY prefix of appends —
// replay books an ACCEPTED with no terminal as aborted-in-flight, a torn
// tail truncates cleanly, and anything else (foreign journals, double
// terminals, reused ids) is a typed error.

#include "serve/accounting.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "common/journal.hpp"

namespace scandiag::serve {
namespace {

std::string tempPath(const std::string& name) {
  const std::string path = ::testing::TempDir() + "/" + name;
  std::filesystem::remove(path);
  return path;
}

TEST(Accounting, LifecycleReplaysToBalancedLedger) {
  const std::string path = tempPath("ledger_lifecycle.journal");
  {
    RequestAccounting accounting(path);
    accounting.accepted(1);
    accounting.terminal(1, RequestOutcome::Ok);
    accounting.accepted(2);
    accounting.terminal(2, RequestOutcome::Shed);
    accounting.accepted(3);
    accounting.terminal(3, RequestOutcome::Degraded);
    accounting.accepted(4);
    accounting.terminal(4, RequestOutcome::Aborted);
  }
  const ServeLedger ledger = replayLedger(path);
  EXPECT_EQ(ledger.accepted, 4u);
  EXPECT_EQ(ledger.ok, 1u);
  EXPECT_EQ(ledger.shed, 1u);
  EXPECT_EQ(ledger.degraded, 1u);
  EXPECT_EQ(ledger.aborted, 1u);
  EXPECT_EQ(ledger.abortedInFlight, 0u);
  EXPECT_TRUE(ledger.balanced());
  EXPECT_FALSE(ledger.truncatedTail);
}

TEST(Accounting, InFlightAtCrashReplaysAsAborted) {
  const std::string path = tempPath("ledger_crash.journal");
  {
    RequestAccounting accounting(path);
    accounting.accepted(1);
    accounting.terminal(1, RequestOutcome::Ok);
    accounting.accepted(2);  // the process "dies" here: no terminal record
    accounting.accepted(3);
  }
  const ServeLedger ledger = replayLedger(path);
  EXPECT_EQ(ledger.accepted, 3u);
  EXPECT_EQ(ledger.ok, 1u);
  EXPECT_EQ(ledger.aborted, 2u);
  EXPECT_EQ(ledger.abortedInFlight, 2u);
  EXPECT_TRUE(ledger.balanced());
}

TEST(Accounting, TornTailIsTruncatedAndStillBalances) {
  const std::string path = tempPath("ledger_torn.journal");
  {
    RequestAccounting accounting(path);
    accounting.accepted(1);
    accounting.terminal(1, RequestOutcome::Ok);
    accounting.accepted(2);
  }
  // SIGKILL mid-append: chop bytes off the last record.
  const auto size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, size - 3);
  const ServeLedger ledger = replayLedger(path);
  EXPECT_TRUE(ledger.truncatedTail);
  EXPECT_TRUE(ledger.balanced());
  EXPECT_EQ(ledger.accepted, 1u);  // request 2's ACCEPTED was the torn frame
  EXPECT_EQ(ledger.ok, 1u);
}

TEST(Accounting, ReopenContinuesRequestIdsPastTheJournal) {
  const std::string path = tempPath("ledger_reopen.journal");
  {
    RequestAccounting accounting(path);
    EXPECT_EQ(accounting.nextRequestId(), 1u);
    accounting.accepted(1);
    accounting.terminal(1, RequestOutcome::Ok);
    accounting.accepted(7);  // in flight at the "crash"
  }
  {
    // A restarted server must never reuse id 1 or 7 — replay treats a reused
    // id as corruption.
    RequestAccounting accounting(path);
    EXPECT_EQ(accounting.nextRequestId(), 8u);
    accounting.accepted(8);
    accounting.terminal(8, RequestOutcome::Ok);
  }
  const ServeLedger ledger = replayLedger(path);
  EXPECT_EQ(ledger.accepted, 3u);
  EXPECT_EQ(ledger.ok, 2u);
  EXPECT_EQ(ledger.abortedInFlight, 1u);
  EXPECT_TRUE(ledger.balanced());
}

TEST(Accounting, TerminalWithoutAcceptedIsCorruption) {
  const std::string path = tempPath("ledger_orphan.journal");
  {
    RequestAccounting accounting(path);
    accounting.terminal(9, RequestOutcome::Ok);
  }
  EXPECT_THROW((void)replayLedger(path), JournalFormatError);
}

TEST(Accounting, DoubleTerminalIsCorruption) {
  const std::string path = tempPath("ledger_double.journal");
  {
    RequestAccounting accounting(path);
    accounting.accepted(1);
    accounting.terminal(1, RequestOutcome::Ok);
    accounting.terminal(1, RequestOutcome::Aborted);
  }
  EXPECT_THROW((void)replayLedger(path), JournalFormatError);
}

TEST(Accounting, ForeignJournalIsDigestMismatch) {
  const std::string path = tempPath("ledger_foreign.journal");
  {
    JournalWriter writer = JournalWriter::create(path, /*setupDigest=*/0x1234,
                                                 "some other subsystem");
    writer.append(1, std::string(8, '\0'));
  }
  EXPECT_THROW((void)replayLedger(path), JournalDigestMismatchError);
  EXPECT_THROW((void)RequestAccounting(path), JournalError);
}

TEST(Accounting, FlippedRecordByteIsCorruption) {
  const std::string path = tempPath("ledger_flip.journal");
  {
    RequestAccounting accounting(path);
    accounting.accepted(1);
    accounting.terminal(1, RequestOutcome::Ok);
  }
  // Flip a byte in the interior (inside the first record after the header) —
  // the CRC must catch it.
  std::fstream file(path, std::ios::in | std::ios::out | std::ios::binary);
  file.seekg(0, std::ios::end);
  const std::streamoff size = file.tellg();
  file.seekp(size - 5);
  char byte = 0;
  file.seekg(size - 5);
  file.get(byte);
  file.seekp(size - 5);
  file.put(static_cast<char>(byte ^ 0x20));
  file.close();
  EXPECT_THROW((void)replayLedger(path), JournalError);
}

TEST(Accounting, RequestOutcomeNamesAreStable) {
  EXPECT_STREQ(requestOutcomeName(RequestOutcome::Ok), "ok");
  EXPECT_STREQ(requestOutcomeName(RequestOutcome::Shed), "shed");
  EXPECT_STREQ(requestOutcomeName(RequestOutcome::Degraded), "degraded");
  EXPECT_STREQ(requestOutcomeName(RequestOutcome::Aborted), "aborted");
}

}  // namespace
}  // namespace scandiag::serve
