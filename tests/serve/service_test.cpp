// DiagnosisService request semantics: warm state answers inject and
// tester-log requests to terminal replies (Ok / Deadline / Error — never
// Busy), bad inputs come back as Error replies instead of exceptions, and
// the drain token unwinds as OperationCancelled because a partial answer the
// server chose to abandon has no client value.

#include "serve/service.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <string>
#include <vector>

#include "bist/prpg.hpp"
#include "diagnosis/tester_log.hpp"
#include "netlist/synthetic_generator.hpp"
#include "sim/fault_list.hpp"

namespace scandiag::serve {
namespace {

DiagnoseRequest injectRequest(const std::string& gate, bool sa) {
  DiagnoseRequest request;
  request.kind = DiagnoseRequest::Kind::InjectFault;
  request.gateName = gate;
  request.stuckAt1 = sa;
  return request;
}

constexpr std::chrono::milliseconds kNoDeadline{0};

/// One warm service + one reference simulator shared across tests (service
/// construction is the expensive part; tests only read it).
class ServiceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    netlist_ = new Netlist(generateNamedCircuit("s953"));
    service_ = new DiagnosisService(Netlist(*netlist_), ServiceConfig{});
    patterns_ = new PatternSet(
        generatePatterns(*netlist_, ServiceConfig{}.diagnosis.numPatterns, PrpgConfig{}));
    simulator_ = new FaultSimulator(*netlist_, *patterns_);
  }
  static void TearDownTestSuite() {
    delete simulator_;
    delete patterns_;
    delete service_;
    delete netlist_;
    simulator_ = nullptr;
    patterns_ = nullptr;
    service_ = nullptr;
    netlist_ = nullptr;
  }

  /// First sampled output fault the pattern set detects, plus its response.
  static std::pair<FaultSite, FaultResponse> detectedFault() {
    for (const FaultSite& fault : FaultList::enumerateCollapsed(*netlist_).sample(64, 0xD1A6)) {
      if (!fault.isOutputFault()) continue;
      FaultResponse response = simulator_->simulate(fault);
      if (response.detected()) return {fault, std::move(response)};
    }
    throw std::runtime_error("service_test: no detected s953 fault in sample");
  }

  static Netlist* netlist_;
  static DiagnosisService* service_;
  static PatternSet* patterns_;
  static FaultSimulator* simulator_;
};

Netlist* ServiceTest::netlist_ = nullptr;
DiagnosisService* ServiceTest::service_ = nullptr;
PatternSet* ServiceTest::patterns_ = nullptr;
FaultSimulator* ServiceTest::simulator_ = nullptr;

TEST_F(ServiceTest, InjectDetectedFaultCandidatesCoverTrueCells) {
  const auto [fault, response] = detectedFault();
  const DiagnoseReply reply =
      service_->handle(injectRequest(netlist_->gateName(fault.gate), fault.stuckAt),
                       /*requestId=*/7, kNoDeadline, nullptr);
  EXPECT_EQ(reply.status, ReplyStatus::Ok);
  EXPECT_EQ(reply.requestId, 7u);
  EXPECT_TRUE(reply.detected);
  EXPECT_EQ(reply.partitionsUsed, reply.partitionsTotal);
  EXPECT_GT(reply.confidence, 0.0);
  // The diagnosis contract: candidates are a superset of the cells that
  // actually failed.
  for (const std::size_t cell : response.failingCellOrdinals) {
    EXPECT_NE(std::find(reply.candidateCells.begin(), reply.candidateCells.end(),
                        static_cast<std::uint32_t>(cell)),
              reply.candidateCells.end())
        << "true failing cell " << cell << " missing from candidates";
  }
}

TEST_F(ServiceTest, UnknownGateIsErrorReplyNotException) {
  const DiagnoseReply reply =
      service_->handle(injectRequest("no_such_gate", false), 1, kNoDeadline, nullptr);
  EXPECT_EQ(reply.status, ReplyStatus::Error);
  EXPECT_FALSE(reply.resolved);
  EXPECT_NE(reply.message.find("no_such_gate"), std::string::npos);
}

TEST_F(ServiceTest, TesterLogMatchesInjectDiagnosis) {
  // A log recorded from the same fault response must diagnose to the same
  // candidate set the inject path produces — the server's schedule and the
  // log's schedule are the same partitions.
  const auto [fault, response] = detectedFault();
  const GroupVerdicts verdicts =
      service_->pipeline().engine().run(service_->pipeline().partitions(), response);

  DiagnoseRequest logRequest;
  logRequest.kind = DiagnoseRequest::Kind::TesterLog;
  logRequest.logText = writeTesterLog(verdicts);
  const DiagnoseReply fromLog = service_->handle(logRequest, 2, kNoDeadline, nullptr);
  const DiagnoseReply fromInject =
      service_->handle(injectRequest(netlist_->gateName(fault.gate), fault.stuckAt), 3,
                       kNoDeadline, nullptr);

  EXPECT_EQ(fromLog.status, ReplyStatus::Ok);
  EXPECT_TRUE(fromLog.detected);
  EXPECT_EQ(fromLog.candidateCells, fromInject.candidateCells);
  EXPECT_EQ(fromLog.resolved, fromInject.resolved);
}

TEST_F(ServiceTest, MalformedLogIsErrorReply) {
  DiagnoseRequest request;
  request.kind = DiagnoseRequest::Kind::TesterLog;
  request.logText = "this is not a tester log";
  const DiagnoseReply reply = service_->handle(request, 4, kNoDeadline, nullptr);
  EXPECT_EQ(reply.status, ReplyStatus::Error);
  EXPECT_NE(reply.message.find("tester log"), std::string::npos);
}

TEST_F(ServiceTest, MismatchedLogScheduleIsErrorReply) {
  // A structurally valid log recorded against a 2x4 schedule, sent to a
  // server burned in at 8x16: silently mis-intersecting it would produce a
  // wrong diagnosis, so it must be a hard request error.
  DiagnoseRequest request;
  request.kind = DiagnoseRequest::Kind::TesterLog;
  request.logText = "sessions 2 4\nverdict 0 0 fail\n";
  const DiagnoseReply reply = service_->handle(request, 5, kNoDeadline, nullptr);
  EXPECT_EQ(reply.status, ReplyStatus::Error);
  EXPECT_NE(reply.message.find("does not match"), std::string::npos);
}

TEST_F(ServiceTest, PreCancelledDrainTokenUnwindsAsCancellation) {
  const auto [fault, response] = detectedFault();
  CancellationToken drain;
  drain.cancel("drain-test");
  EXPECT_THROW(
      (void)service_->handle(injectRequest(netlist_->gateName(fault.gate), fault.stuckAt), 6,
                             kNoDeadline, &drain),
      OperationCancelled);
}

TEST_F(ServiceTest, DeadlineReplyIsAlwaysASoundSuperset) {
  // The watchdog trips on wall-clock, so whether a 1 ms deadline fires on a
  // small circuit is machine-dependent. The contract is not: the reply is
  // either a full Ok answer or a Deadline degradation whose candidates are a
  // superset of the full run's, self-reporting reduced confidence.
  const auto [fault, response] = detectedFault();
  const DiagnoseRequest request =
      injectRequest(netlist_->gateName(fault.gate), fault.stuckAt);
  const DiagnoseReply full = service_->handle(request, 8, kNoDeadline, nullptr);
  const DiagnoseReply reply =
      service_->handle(request, 9, std::chrono::milliseconds(1), nullptr);
  ASSERT_TRUE(reply.status == ReplyStatus::Ok || reply.status == ReplyStatus::Deadline);
  if (reply.status == ReplyStatus::Deadline) {
    EXPECT_FALSE(reply.resolved);
    EXPECT_LT(reply.confidence, full.confidence);
    EXPECT_LT(reply.partitionsUsed, reply.partitionsTotal);
    for (const std::uint32_t cell : full.candidateCells) {
      EXPECT_NE(std::find(reply.candidateCells.begin(), reply.candidateCells.end(), cell),
                reply.candidateCells.end())
          << "degraded answer dropped candidate cell " << cell;
    }
  } else {
    EXPECT_EQ(reply.candidateCells, full.candidateCells);
  }
}

TEST_F(ServiceTest, UndetectedFaultRepliesOkNotDetected) {
  // Find a sampled fault the pattern set does NOT detect, if one exists in
  // the sample; undetected is a normal Ok reply with detected=false.
  for (const FaultSite& fault : FaultList::enumerateCollapsed(*netlist_).sample(64, 0xD1A6)) {
    if (!fault.isOutputFault()) continue;
    if (simulator_->simulate(fault).detected()) continue;
    const DiagnoseReply reply = service_->handle(
        injectRequest(netlist_->gateName(fault.gate), fault.stuckAt), 10, kNoDeadline, nullptr);
    EXPECT_EQ(reply.status, ReplyStatus::Ok);
    EXPECT_FALSE(reply.detected);
    EXPECT_TRUE(reply.candidateCells.empty());
    return;
  }
  GTEST_SKIP() << "every sampled s953 fault is detected by the pattern set";
}

}  // namespace
}  // namespace scandiag::serve
