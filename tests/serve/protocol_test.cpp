// Protocol message codecs: every message round-trips losslessly, and every
// decoder rejects content that lies about itself (bad enums, candidate
// counts beyond the payload, trailing bytes) with FrameFormatError — a frame
// that passed its CRC is still untrusted.

#include "serve/protocol.hpp"

#include <gtest/gtest.h>

#include <string>

#include "serve/wire.hpp"

namespace scandiag::serve {
namespace {

TEST(Protocol, DiagnoseRequestInjectRoundTrip) {
  DiagnoseRequest request;
  request.kind = DiagnoseRequest::Kind::InjectFault;
  request.gateName = "g1375";
  request.stuckAt1 = false;
  const DiagnoseRequest back = decodeDiagnoseRequest(encodeDiagnoseRequest(request));
  EXPECT_EQ(back.kind, DiagnoseRequest::Kind::InjectFault);
  EXPECT_EQ(back.gateName, "g1375");
  EXPECT_FALSE(back.stuckAt1);
  EXPECT_TRUE(back.logText.empty());
}

TEST(Protocol, DiagnoseRequestLogRoundTrip) {
  DiagnoseRequest request;
  request.kind = DiagnoseRequest::Kind::TesterLog;
  request.logText = "sessions 8 16\nverdict 0 0 pass\nverdict 0 1 fail\n";
  const DiagnoseRequest back = decodeDiagnoseRequest(encodeDiagnoseRequest(request));
  EXPECT_EQ(back.kind, DiagnoseRequest::Kind::TesterLog);
  EXPECT_EQ(back.logText, request.logText);
}

TEST(Protocol, DiagnoseRequestUnknownKindRejected) {
  DiagnoseRequest request;
  std::string payload = encodeDiagnoseRequest(request);
  payload[0] = 0x7F;  // kind is the first u16
  EXPECT_THROW((void)decodeDiagnoseRequest(payload), FrameFormatError);
}

TEST(Protocol, DiagnoseRequestTrailingBytesRejected) {
  std::string payload = encodeDiagnoseRequest(DiagnoseRequest{});
  payload.push_back('\0');
  EXPECT_THROW((void)decodeDiagnoseRequest(payload), FrameFormatError);
}

TEST(Protocol, DiagnoseReplyRoundTrip) {
  DiagnoseReply reply;
  reply.status = ReplyStatus::Deadline;
  reply.requestId = 42;
  reply.detected = true;
  reply.resolved = false;
  reply.confidence = 0.375;
  reply.partitionsUsed = 3;
  reply.partitionsTotal = 8;
  reply.candidateCells = {1, 5, 200, 4096};
  reply.message = "deadline hit";
  const DiagnoseReply back = decodeDiagnoseReply(encodeDiagnoseReply(reply));
  EXPECT_EQ(back.status, ReplyStatus::Deadline);
  EXPECT_EQ(back.requestId, 42u);
  EXPECT_TRUE(back.detected);
  EXPECT_FALSE(back.resolved);
  EXPECT_EQ(back.confidence, 0.375);
  EXPECT_EQ(back.partitionsUsed, 3u);
  EXPECT_EQ(back.partitionsTotal, 8u);
  EXPECT_EQ(back.candidateCells, (std::vector<std::uint32_t>{1, 5, 200, 4096}));
  EXPECT_EQ(back.message, "deadline hit");
}

TEST(Protocol, DiagnoseReplyBadStatusRejected) {
  std::string payload = encodeDiagnoseReply(DiagnoseReply{});
  payload[0] = 0x44;  // status is the first u16
  EXPECT_THROW((void)decodeDiagnoseReply(payload), FrameFormatError);
}

TEST(Protocol, DiagnoseReplyCandidateCountLieRejectedBeforeReserve) {
  // Build a syntactically valid reply, then splice in a candidate count the
  // remaining payload cannot hold: the decoder must reject it from the count
  // alone, not reserve a multi-gigabyte vector.
  DiagnoseReply reply;
  reply.candidateCells = {1, 2, 3};
  std::string payload = encodeDiagnoseReply(reply);
  // The payload ends with [u32 count][3 x u32 cells]; the count starts 16
  // bytes from the end.
  const std::size_t countPos = payload.size() - 12 - 4;
  payload[countPos] = static_cast<char>(0xFF);
  payload[countPos + 1] = static_cast<char>(0xFF);
  payload[countPos + 2] = static_cast<char>(0xFF);
  payload[countPos + 3] = static_cast<char>(0x7F);
  EXPECT_THROW((void)decodeDiagnoseReply(payload), FrameFormatError);
}

TEST(Protocol, StatsReplyRoundTrip) {
  StatsReply stats;
  stats.accepted = 100;
  stats.ok = 90;
  stats.shed = 5;
  stats.degraded = 3;
  stats.aborted = 2;
  stats.framesRejected = 7;
  const StatsReply back = decodeStatsReply(encodeStatsReply(stats));
  EXPECT_EQ(back.accepted, 100u);
  EXPECT_EQ(back.ok, 90u);
  EXPECT_EQ(back.shed, 5u);
  EXPECT_EQ(back.degraded, 3u);
  EXPECT_EQ(back.aborted, 2u);
  EXPECT_EQ(back.framesRejected, 7u);
}

TEST(Protocol, StatsReplyTruncationRejected) {
  const std::string payload = encodeStatsReply(StatsReply{});
  EXPECT_THROW((void)decodeStatsReply(payload.substr(0, payload.size() - 1)),
               FrameFormatError);
}

TEST(Protocol, ReplyStatusNamesAreStable) {
  EXPECT_STREQ(replyStatusName(ReplyStatus::Ok), "ok");
  EXPECT_STREQ(replyStatusName(ReplyStatus::Busy), "busy");
  EXPECT_STREQ(replyStatusName(ReplyStatus::Deadline), "deadline");
  EXPECT_STREQ(replyStatusName(ReplyStatus::Error), "error");
}

}  // namespace
}  // namespace scandiag::serve
