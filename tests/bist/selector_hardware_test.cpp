// The hardware-equivalence tests: the cycle-accurate register model of the
// paper's Figure 1 must generate exactly the partitions the algorithmic
// generators in src/diagnosis produce. This pins the software to the silicon.
#include "bist/selector_hardware.hpp"

#include <gtest/gtest.h>

#include "bist/interval_seed_search.hpp"
#include "diagnosis/interval_partitioner.hpp"
#include "diagnosis/random_selection_partitioner.hpp"

namespace scandiag {
namespace {

const LfsrConfig kCfg{16, 0};

TEST(SelectorHardware, RandomSelectionMasksArePartition) {
  const std::size_t L = 97;
  const unsigned r = 3;  // 8 groups
  SelectorHardware hw(kCfg, L);
  hw.loadIvr(0xACE1);
  BitVector uni(L);
  for (std::uint64_t g = 0; g < 8; ++g) {
    const BitVector mask = hw.unloadRandomSelection(r, g);
    EXPECT_FALSE(mask.intersects(uni)) << "group " << g << " overlaps";
    uni |= mask;
  }
  EXPECT_TRUE(uni.all());
}

TEST(SelectorHardware, RandomSelectionMatchesPartitioner) {
  const std::size_t L = 211, groups = 16;
  RandomSelectionPartitioner partitioner(RandomSelectionConfig{kCfg, 0xACE1}, L, groups);
  SelectorHardware hw(kCfg, L);
  hw.loadIvr(0xACE1);
  for (int p = 0; p < 4; ++p) {
    const Partition part = partitioner.next();
    for (std::uint64_t g = 0; g < groups; ++g) {
      EXPECT_EQ(hw.unloadRandomSelection(4, g), part.groups[g])
          << "partition " << p << " group " << g;
    }
    hw.advancePartition();
  }
}

TEST(SelectorHardware, RepeatedUnloadsOfSameGroupIdentical) {
  // Within one partition every BIST pattern unload reloads the LFSR from the
  // IVR, so the mask is the same for all patterns of a session.
  SelectorHardware hw(kCfg, 64);
  hw.loadIvr(0x1234);
  const BitVector first = hw.unloadRandomSelection(2, 1);
  const BitVector second = hw.unloadRandomSelection(2, 1);
  EXPECT_EQ(first, second);
}

TEST(SelectorHardware, AdvancePartitionChangesMasks) {
  SelectorHardware hw(kCfg, 64);
  hw.loadIvr(0x1234);
  const BitVector before = hw.unloadRandomSelection(2, 0);
  hw.advancePartition();
  const BitVector after = hw.unloadRandomSelection(2, 0);
  EXPECT_NE(before, after);
}

TEST(SelectorHardware, IntervalMasksMatchSeedSearchLengths) {
  const std::size_t L = 211, groups = 8;
  const unsigned rlen = defaultIntervalBits(L, groups, kCfg.degree);
  const auto seed = findIntervalSeed(kCfg, rlen, groups, L, 0xBEEF);
  ASSERT_TRUE(seed.has_value());

  SelectorHardware hw(kCfg, L);
  hw.loadIvr(seed->seed);
  const Partition expected = IntervalPartitioner::fromLengths(seed->lengths, L);
  for (std::uint64_t g = 0; g < groups; ++g) {
    hw.loadIvr(seed->seed);  // each session reloads the same partition seed
    EXPECT_EQ(hw.unloadInterval(rlen, g), expected.groups[g]) << "group " << g;
  }
}

TEST(SelectorHardware, IntervalMatchesIntervalPartitioner) {
  const std::size_t L = 113, groups = 4;
  IntervalPartitionerConfig cfg{kCfg, 0, 0xBEEF};
  IntervalPartitioner partitioner(cfg, L, groups);
  const unsigned rlen = partitioner.intervalBits();
  for (int p = 0; p < 3; ++p) {
    const Partition part = partitioner.next();
    SelectorHardware hw(kCfg, L);
    for (std::uint64_t g = 0; g < groups; ++g) {
      hw.loadIvr(partitioner.usedSeeds()[p].seed);
      EXPECT_EQ(hw.unloadInterval(rlen, g), part.groups[g])
          << "partition " << p << " group " << g;
    }
  }
}

TEST(SelectorHardware, GroupNumberBounds) {
  SelectorHardware hw(kCfg, 10);
  hw.loadIvr(1);
  EXPECT_THROW(hw.unloadRandomSelection(2, 4), std::invalid_argument);
}

TEST(SelectorHardware, InvalidIvrRejected) {
  SelectorHardware hw(kCfg, 10);
  EXPECT_THROW(hw.loadIvr(0), std::invalid_argument);
}

}  // namespace
}  // namespace scandiag
