#include "bist/phase_shifter.hpp"

#include <gtest/gtest.h>

#include <set>

#include "netlist/synthetic_generator.hpp"
#include "sim/fault_list.hpp"

namespace scandiag {
namespace {

TEST(PhaseShifter, ChannelsGetDistinctTapSets) {
  const PhaseShifter ps(24, 40);
  std::set<std::uint64_t> masks;
  for (std::size_t c = 0; c < ps.channels(); ++c) {
    EXPECT_EQ(__builtin_popcountll(ps.channelMask(c)), 3);
    masks.insert(ps.channelMask(c));
  }
  EXPECT_EQ(masks.size(), 40u);
}

TEST(PhaseShifter, ChannelBitIsTapParity) {
  const PhaseShifter ps(16, 4, 1, 2);
  for (std::size_t c = 0; c < 4; ++c) {
    const std::uint64_t mask = ps.channelMask(c);
    EXPECT_FALSE(ps.channelBit(c, 0));
    // A state equal to the mask itself has even parity iff popcount even.
    EXPECT_EQ(ps.channelBit(c, mask), (__builtin_popcountll(mask) & 1) != 0);
  }
}

TEST(PhaseShifter, Deterministic) {
  const PhaseShifter a(24, 16, 7);
  const PhaseShifter b(24, 16, 7);
  for (std::size_t c = 0; c < 16; ++c) EXPECT_EQ(a.channelMask(c), b.channelMask(c));
}

TEST(PhaseShifter, InvalidConfigRejected) {
  EXPECT_THROW(PhaseShifter(24, 0), std::invalid_argument);
  EXPECT_THROW(PhaseShifter(24, 4, 1, 0), std::invalid_argument);
  EXPECT_THROW(PhaseShifter(24, 4, 1, 25), std::invalid_argument);
  // More channels than distinct 1-tap sets.
  EXPECT_THROW(PhaseShifter(4, 5, 1, 1), std::invalid_argument);
}

TEST(StumpsPatterns, FillsAllSourcesAndIsDeterministic) {
  const Netlist nl = generateNamedCircuit("s953");
  const ScanTopology topo = ScanTopology::blockChains(nl.dffs().size(), 4);
  const PatternSet a = generateStumpsPatterns(nl, topo, 64);
  const PatternSet b = generateStumpsPatterns(nl, topo, 64);
  for (GateId id : nl.dffs()) {
    EXPECT_EQ(a.stream(id).size(), 64u);
    EXPECT_EQ(a.stream(id), b.stream(id));
  }
  for (GateId id : nl.inputs()) EXPECT_EQ(a.stream(id), b.stream(id));
}

TEST(StumpsPatterns, ParallelChannelsAreDecorrelated) {
  // Without a phase shifter, chains fed from adjacent LFSR stages would be
  // one-cycle-shifted copies; with it, no chain's stream is a small shift of
  // another's. Cheap proxy: streams at the same positions across chains
  // differ, and their agreement rate stays near 1/2.
  const Netlist nl = generateNamedCircuit("s1423");  // 74 cells
  const ScanTopology topo = ScanTopology::blockChains(nl.dffs().size(), 2);
  const PatternSet pats = generateStumpsPatterns(nl, topo, 256);
  const GateId cellA = nl.dffs()[topo.chain(0)[5]];
  const GateId cellB = nl.dffs()[topo.chain(1)[5]];
  const BitVector& sa = pats.stream(cellA);
  const BitVector& sb = pats.stream(cellB);
  std::size_t agree = 0;
  for (std::size_t t = 0; t < 256; ++t) agree += (sa.test(t) == sb.test(t));
  EXPECT_GT(agree, 256 * 3 / 10);
  EXPECT_LT(agree, 256 * 7 / 10);
}

TEST(StumpsPatterns, BitsRoughlyBalanced) {
  const Netlist nl = generateNamedCircuit("s953");
  const ScanTopology topo = ScanTopology::singleChain(nl.dffs().size());
  const PatternSet pats = generateStumpsPatterns(nl, topo, 512);
  std::size_t ones = 0, total = 0;
  for (GateId id : nl.dffs()) {
    ones += pats.stream(id).count();
    total += 512;
  }
  EXPECT_NEAR(static_cast<double>(ones) / static_cast<double>(total), 0.5, 0.03);
}

TEST(StumpsPatterns, DriveFaultSimulationEndToEnd) {
  const Netlist nl = generateNamedCircuit("s953");
  const ScanTopology topo = ScanTopology::blockChains(nl.dffs().size(), 4);
  const PatternSet pats = generateStumpsPatterns(nl, topo, 128);
  const FaultSimulator sim(nl, pats);
  const auto responses =
      sim.collectDetected(FaultList::enumerateCollapsed(nl).sample(200, 2), 100);
  EXPECT_GT(responses.size(), 60u);  // STUMPS patterns detect like serial PRPG
}

}  // namespace
}  // namespace scandiag
