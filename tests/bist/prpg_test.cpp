#include "bist/prpg.hpp"

#include <gtest/gtest.h>

#include "netlist/synthetic_generator.hpp"

namespace scandiag {
namespace {

TEST(Prpg, FillsEverySourceStream) {
  const Netlist nl = generateNamedCircuit("s298");
  const PatternSet pats = generatePatterns(nl, 100);
  EXPECT_EQ(pats.numPatterns(), 100u);
  for (GateId id : nl.inputs()) EXPECT_EQ(pats.stream(id).size(), 100u);
  for (GateId id : nl.dffs()) EXPECT_EQ(pats.stream(id).size(), 100u);
}

TEST(Prpg, Deterministic) {
  const Netlist nl = generateNamedCircuit("s298");
  const PatternSet a = generatePatterns(nl, 64);
  const PatternSet b = generatePatterns(nl, 64);
  for (GateId id : nl.dffs()) EXPECT_EQ(a.stream(id), b.stream(id));
}

TEST(Prpg, SeedChangesPatterns) {
  const Netlist nl = generateNamedCircuit("s298");
  PrpgConfig c1, c2;
  c2.seed = c1.seed + 1;
  const PatternSet a = generatePatterns(nl, 64, c1);
  const PatternSet b = generatePatterns(nl, 64, c2);
  bool anyDiff = false;
  for (GateId id : nl.dffs()) anyDiff |= (a.stream(id) != b.stream(id));
  EXPECT_TRUE(anyDiff);
}

TEST(Prpg, BitsRoughlyBalanced) {
  const Netlist nl = generateNamedCircuit("s953");
  const PatternSet pats = generatePatterns(nl, 512);
  std::size_t ones = 0, total = 0;
  for (GateId id : nl.dffs()) {
    ones += pats.stream(id).count();
    total += 512;
  }
  const double density = static_cast<double>(ones) / static_cast<double>(total);
  EXPECT_NEAR(density, 0.5, 0.02);
}

TEST(Prpg, DistinctCellsGetDistinctStreams) {
  const Netlist nl = generateNamedCircuit("s953");
  const PatternSet pats = generatePatterns(nl, 128);
  const auto& dffs = nl.dffs();
  for (std::size_t i = 1; i < dffs.size(); ++i) {
    EXPECT_NE(pats.stream(dffs[0]), pats.stream(dffs[i]));
  }
}

}  // namespace
}  // namespace scandiag
