#include "bist/lfsr.hpp"

#include <gtest/gtest.h>

#include <array>
#include <vector>

namespace scandiag {
namespace {

TEST(PrimitivePolys, TableBounds) {
  EXPECT_THROW(primitiveTaps(2), std::invalid_argument);
  EXPECT_THROW(primitiveTaps(33), std::invalid_argument);
  for (unsigned d = 3; d <= 32; ++d) {
    const auto& taps = primitiveTaps(d);
    ASSERT_FALSE(taps.empty());
    EXPECT_EQ(taps.front(), d);  // leading exponent == degree
    EXPECT_NE(primitiveTapMask(d) & (1ull << (d - 1)), 0u);
  }
}

class LfsrMaximalPeriod : public ::testing::TestWithParam<unsigned> {};

TEST_P(LfsrMaximalPeriod, PrimitivePolynomialGivesFullPeriod) {
  const unsigned degree = GetParam();
  Lfsr lfsr(LfsrConfig{degree, 0}, 1);
  const std::uint64_t period = (1ull << degree) - 1;
  const std::uint64_t start = lfsr.state();
  std::uint64_t steps = 0;
  do {
    lfsr.step();
    ++steps;
    ASSERT_NE(lfsr.state(), 0u);
    ASSERT_LE(steps, period);
  } while (lfsr.state() != start);
  EXPECT_EQ(steps, period);
}

INSTANTIATE_TEST_SUITE_P(Degrees, LfsrMaximalPeriod,
                         ::testing::Values(3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16));

TEST(Lfsr, LargerDegreesStayNonzeroAndAperiodicShortTerm) {
  for (unsigned d : {17u, 20u, 24u, 31u, 32u}) {
    Lfsr lfsr(LfsrConfig{d, 0}, 0xBEEF);
    const std::uint64_t start = lfsr.state();
    for (int i = 0; i < 100000; ++i) {
      lfsr.step();
      ASSERT_NE(lfsr.state(), 0u);
      ASSERT_NE(lfsr.state(), start) << "short cycle at degree " << d;
    }
  }
}

TEST(Lfsr, ZeroSeedRejected) {
  EXPECT_THROW(Lfsr(LfsrConfig{16, 0}, 0), std::invalid_argument);
  // Seed with bits only above the degree reduces to zero.
  EXPECT_THROW(Lfsr(LfsrConfig{8, 0}, 0xF00), std::invalid_argument);
}

TEST(Lfsr, SeedMaskedToDegree) {
  Lfsr lfsr(LfsrConfig{8, 0}, 0x1FF);
  EXPECT_EQ(lfsr.state(), 0xFFu);
}

TEST(Lfsr, StepOutputsTopStage) {
  Lfsr lfsr(LfsrConfig{8, 0}, 0b10110101);
  EXPECT_TRUE(lfsr.step());   // bit 7 was 1
  EXPECT_FALSE(lfsr.step());  // old bit 6 (0) has shifted into the top stage
}

TEST(Lfsr, StepBitsPacksLsbFirst) {
  Lfsr a(LfsrConfig{16, 0}, 0xACE1);
  Lfsr b(LfsrConfig{16, 0}, 0xACE1);
  std::uint64_t packed = a.stepBits(16);
  for (unsigned i = 0; i < 16; ++i) {
    EXPECT_EQ((packed >> i) & 1, static_cast<std::uint64_t>(b.step()));
  }
  EXPECT_THROW(a.stepBits(65), std::invalid_argument);
}

TEST(Lfsr, LowBitsReadsStateWithoutStepping) {
  Lfsr lfsr(LfsrConfig{16, 0}, 0xACE1);
  const std::uint64_t before = lfsr.state();
  EXPECT_EQ(lfsr.lowBits(4), before & 0xF);
  EXPECT_EQ(lfsr.state(), before);
  EXPECT_THROW(lfsr.lowBits(0), std::invalid_argument);
  EXPECT_THROW(lfsr.lowBits(17), std::invalid_argument);
}

TEST(Lfsr, DeterministicSequence) {
  Lfsr a(LfsrConfig{16, 0}, 0x1234);
  Lfsr b(LfsrConfig{16, 0}, 0x1234);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.step(), b.step());
}

TEST(Lfsr, LabelDistributionRoughlyUniform) {
  // 2-bit labels over a full period: each label occurs ~2^14 times.
  Lfsr lfsr(LfsrConfig{16, 0}, 1);
  std::array<std::size_t, 4> histogram{};
  for (std::uint64_t i = 0; i < (1ull << 16) - 1; ++i) {
    ++histogram[lfsr.lowBits(2)];
    lfsr.step();
  }
  for (std::size_t count : histogram) {
    EXPECT_NEAR(static_cast<double>(count), 16384.0, 64.0);
  }
}

class GaloisMaximalPeriod : public ::testing::TestWithParam<unsigned> {};

TEST_P(GaloisMaximalPeriod, FullPeriodForPrimitivePolynomials) {
  const unsigned degree = GetParam();
  GaloisLfsr lfsr(LfsrConfig{degree, 0}, 1);
  const std::uint64_t period = (1ull << degree) - 1;
  const std::uint64_t start = lfsr.state();
  std::uint64_t steps = 0;
  do {
    lfsr.step();
    ++steps;
    ASSERT_NE(lfsr.state(), 0u);
    ASSERT_LE(steps, period);
  } while (lfsr.state() != start);
  EXPECT_EQ(steps, period);
}

INSTANTIATE_TEST_SUITE_P(Degrees, GaloisMaximalPeriod,
                         ::testing::Values(3, 4, 6, 8, 10, 12, 14, 16));

TEST(GaloisLfsr, OutputIsCyclicShiftOfFibonacciSequence) {
  // Same primitive polynomial => same m-sequence, possibly phase-shifted.
  const unsigned degree = 8;
  const std::uint64_t period = (1ull << degree) - 1;
  Lfsr fib(LfsrConfig{degree, 0}, 1);
  GaloisLfsr gal(LfsrConfig{degree, 0}, 1);
  std::vector<bool> f(period), g(period);
  for (std::uint64_t i = 0; i < period; ++i) {
    f[i] = fib.step();
    g[i] = gal.step();
  }
  bool matched = false;
  for (std::uint64_t shift = 0; shift < period && !matched; ++shift) {
    bool same = true;
    for (std::uint64_t i = 0; i < period && same; ++i)
      same = (g[i] == f[(i + shift) % period]);
    matched = same;
  }
  EXPECT_TRUE(matched) << "Galois output is not a shift of the Fibonacci m-sequence";
}

TEST(GaloisLfsr, StepBitsAndValidation) {
  GaloisLfsr a(LfsrConfig{16, 0}, 0xACE1);
  GaloisLfsr b(LfsrConfig{16, 0}, 0xACE1);
  const std::uint64_t packed = a.stepBits(16);
  for (unsigned i = 0; i < 16; ++i)
    EXPECT_EQ((packed >> i) & 1, static_cast<std::uint64_t>(b.step()));
  EXPECT_THROW(GaloisLfsr(LfsrConfig{16, 0}, 0), std::invalid_argument);
  EXPECT_THROW(a.stepBits(65), std::invalid_argument);
}

TEST(Lfsr, InvalidConfigRejected) {
  EXPECT_THROW(Lfsr(LfsrConfig{1, 0}, 1), std::invalid_argument);
  EXPECT_THROW(Lfsr(LfsrConfig{64, 0}, 1), std::invalid_argument);
  // Tap mask missing the top stage.
  EXPECT_THROW(Lfsr(LfsrConfig{8, 0x0F}, 1), std::invalid_argument);
  // Tap mask exceeding the degree.
  EXPECT_THROW(Lfsr(LfsrConfig{8, 0x1FF}, 1), std::invalid_argument);
}

}  // namespace
}  // namespace scandiag
