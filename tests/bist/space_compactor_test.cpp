#include "bist/space_compactor.hpp"

#include <gtest/gtest.h>

#include "bist/bist_controller.hpp"
#include "bist/prpg.hpp"
#include "diagnosis/interval_partitioner.hpp"
#include "diagnosis/session_engine.hpp"
#include "netlist/synthetic_generator.hpp"
#include "sim/fault_list.hpp"

namespace scandiag {
namespace {

TEST(SpaceCompactor, ModuloFaninStructure) {
  const SpaceCompactor sc = SpaceCompactor::moduloFanin(8, 3);
  EXPECT_EQ(sc.inputChains(), 8u);
  EXPECT_EQ(sc.outputLines(), 3u);
  EXPECT_EQ(sc.lineMask(0), 0b01001001u);  // chains 0, 3, 6
  EXPECT_EQ(sc.lineMask(1), 0b10010010u);  // chains 1, 4, 7
  EXPECT_EQ(sc.lineMask(2), 0b00100100u);  // chains 2, 5
  EXPECT_EQ(sc.columnMask(3), 0b001u);
  EXPECT_EQ(sc.columnMask(5), 0b100u);
}

TEST(SpaceCompactor, ApplyComputesXorPerLine) {
  const SpaceCompactor sc = SpaceCompactor::moduloFanin(4, 2);
  // line0 = c0^c2, line1 = c1^c3.
  EXPECT_EQ(sc.apply(0b0000), 0b00u);
  EXPECT_EQ(sc.apply(0b0001), 0b01u);
  EXPECT_EQ(sc.apply(0b0101), 0b00u);  // c0^c2 cancels
  EXPECT_EQ(sc.apply(0b1010), 0b00u);
  EXPECT_EQ(sc.apply(0b0011), 0b11u);
}

TEST(SpaceCompactor, IsLinear) {
  const SpaceCompactor sc = SpaceCompactor::moduloFanin(8, 3);
  for (std::uint64_t a = 0; a < 256; a += 13) {
    for (std::uint64_t b = 0; b < 256; b += 29) {
      EXPECT_EQ(sc.apply(a ^ b), sc.apply(a) ^ sc.apply(b));
    }
  }
}

TEST(SpaceCompactor, ValidatesFullObservation) {
  EXPECT_THROW(SpaceCompactor({0b011}, 3), std::invalid_argument);  // chain 2 unobserved
  EXPECT_THROW(SpaceCompactor({0b1000}, 3), std::invalid_argument); // missing chain bit
  EXPECT_THROW(SpaceCompactor({}, 3), std::invalid_argument);
  EXPECT_THROW(SpaceCompactor::moduloFanin(4, 0), std::invalid_argument);
  EXPECT_THROW(SpaceCompactor::moduloFanin(4, 5), std::invalid_argument);
  EXPECT_NO_THROW(SpaceCompactor({0b111}, 3));
}

TEST(SpaceCompactor, ControllerMatchesAnalyticEngineThroughCompactor) {
  // The strongest check: clock-by-clock sessions through a real XOR network
  // must equal the analytic per-cell-signature computation via compactor
  // columns, for every group and fault.
  const Netlist nl = generateNamedCircuit("s526");
  const ScanTopology topo = ScanTopology::blockChains(nl.dffs().size(), 4);
  const SpaceCompactor compactor = SpaceCompactor::moduloFanin(4, 2);
  const std::size_t numPatterns = 8;
  const PatternSet pats = generatePatterns(nl, numPatterns);

  BistControllerConfig cc;
  cc.numPatterns = numPatterns;
  cc.compactor = &compactor;
  const BistController ctrl(nl, topo, cc);

  SessionConfig sc{SignatureMode::Misr, numPatterns};
  sc.compactor = &compactor;
  const SessionEngine engine(topo, sc);

  IntervalPartitioner gen(IntervalPartitionerConfig{}, topo.maxChainLength(), 3);
  const std::vector<Partition> partitions{gen.next()};

  const FaultSimulator fsim(nl, pats);
  std::size_t checked = 0;
  for (const FaultSite& fault : FaultList::enumerateCollapsed(nl).sample(20, 0xC0)) {
    const FaultResponse resp = fsim.simulate(fault);
    if (!resp.detected()) continue;
    ++checked;
    const GroupVerdicts verdicts = engine.run(partitions, resp);
    for (std::size_t g = 0; g < partitions[0].groupCount(); ++g) {
      EXPECT_EQ(ctrl.sessionErrorSignature(pats, partitions[0].groups[g], fault),
                verdicts.errorSig[0][g])
          << describeFault(nl, fault) << " group " << g;
    }
  }
  EXPECT_GT(checked, 5u);
}

TEST(SpaceCompactor, CompactionCanAliasSimultaneousErrors) {
  // Two failing cells on different chains at the same position, same error
  // pattern, chains folded onto one line: contributions cancel and the group
  // signature reads zero.
  const ScanTopology topo = ScanTopology::blockChains(8, 2);  // chains of 4
  const SpaceCompactor compactor = SpaceCompactor::moduloFanin(2, 1);
  SessionConfig sc{SignatureMode::Misr, 4};
  sc.compactor = &compactor;
  const SessionEngine engine(topo, sc);

  FaultResponse r;
  r.failingCells = BitVector(8);
  for (std::size_t cell : {1u, 5u}) {  // position 1 on chain 0 and chain 1
    r.failingCells.set(cell);
    r.failingCellOrdinals.push_back(cell);
    BitVector stream(4);
    stream.set(2);
    r.errorStreams.push_back(stream);
  }
  const std::vector<Partition> parts{IntervalPartitioner::fromLengths({4}, 4)};
  const GroupVerdicts v = engine.run(parts, r);
  EXPECT_EQ(v.errorSig[0][0], 0u);       // perfect cancellation
  EXPECT_FALSE(v.failing[0].test(0));    // ...which hides the failure entirely
}

}  // namespace
}  // namespace scandiag
