#include "bist/scan_topology.hpp"

#include <gtest/gtest.h>

namespace scandiag {
namespace {

TEST(ScanTopology, SingleChainIdentityLayout) {
  const ScanTopology t = ScanTopology::singleChain(10);
  EXPECT_EQ(t.numCells(), 10u);
  EXPECT_EQ(t.numChains(), 1u);
  EXPECT_EQ(t.maxChainLength(), 10u);
  for (std::size_t c = 0; c < 10; ++c) {
    EXPECT_EQ(t.location(c).chain, 0u);
    EXPECT_EQ(t.location(c).position, c);
  }
}

TEST(ScanTopology, BlockChainsBalancedContiguous) {
  const ScanTopology t = ScanTopology::blockChains(10, 3);
  EXPECT_EQ(t.numChains(), 3u);
  EXPECT_EQ(t.chainLength(0), 4u);
  EXPECT_EQ(t.chainLength(1), 3u);
  EXPECT_EQ(t.chainLength(2), 3u);
  EXPECT_EQ(t.maxChainLength(), 4u);
  // Cells 0..3 on chain 0, 4..6 on chain 1, 7..9 on chain 2.
  EXPECT_EQ(t.location(3).chain, 0u);
  EXPECT_EQ(t.location(4).chain, 1u);
  EXPECT_EQ(t.location(4).position, 0u);
  EXPECT_EQ(t.location(9).chain, 2u);
  EXPECT_EQ(t.location(9).position, 2u);
}

TEST(ScanTopology, FromChainsCustomStitching) {
  const ScanTopology t = ScanTopology::fromChains({{2, 0}, {1, 3, 4}});
  EXPECT_EQ(t.numCells(), 5u);
  EXPECT_EQ(t.location(2).chain, 0u);
  EXPECT_EQ(t.location(2).position, 0u);
  EXPECT_EQ(t.location(0).position, 1u);
  EXPECT_EQ(t.location(4).position, 2u);
}

TEST(ScanTopology, FromChainsValidation) {
  EXPECT_THROW(ScanTopology::fromChains({}), std::invalid_argument);
  EXPECT_THROW(ScanTopology::fromChains({{}}), std::invalid_argument);
  EXPECT_THROW(ScanTopology::fromChains({{0, 0}}), std::invalid_argument);   // repeated
  EXPECT_THROW(ScanTopology::fromChains({{0, 5}}), std::invalid_argument);   // out of range
  EXPECT_THROW(ScanTopology::fromChains({{0}, {0}}), std::invalid_argument); // cross-chain dup
}

TEST(ScanTopology, BlockChainsEdgeCases) {
  EXPECT_THROW(ScanTopology::blockChains(5, 0), std::invalid_argument);
  EXPECT_THROW(ScanTopology::blockChains(3, 4), std::invalid_argument);
  const ScanTopology t = ScanTopology::blockChains(4, 4);
  EXPECT_EQ(t.maxChainLength(), 1u);
}

TEST(ScanTopology, ExpandCollapseSingleChainAreInverse) {
  const ScanTopology t = ScanTopology::singleChain(20);
  BitVector pos(20);
  pos.set(3);
  pos.set(17);
  const BitVector cells = t.expandPositions(pos);
  EXPECT_EQ(cells.toIndices(), (std::vector<std::size_t>{3, 17}));
  EXPECT_EQ(t.collapseCells(cells), pos);
}

TEST(ScanTopology, ExpandCoversAllChainsAtPosition) {
  // 2 chains of 3: position 1 selects cells 1 and 4.
  const ScanTopology t = ScanTopology::blockChains(6, 2);
  BitVector pos(3);
  pos.set(1);
  const BitVector cells = t.expandPositions(pos);
  EXPECT_EQ(cells.toIndices(), (std::vector<std::size_t>{1, 4}));
}

TEST(ScanTopology, CollapseMapsCellToItsPosition) {
  const ScanTopology t = ScanTopology::blockChains(7, 2);  // chains: 4 + 3
  BitVector cells(7);
  cells.set(6);  // chain 1, position 2
  const BitVector pos = t.collapseCells(cells);
  EXPECT_EQ(pos.toIndices(), (std::vector<std::size_t>{2}));
}

TEST(ScanTopology, UnevenChainsPadAtTail) {
  const ScanTopology t = ScanTopology::fromChains({{0, 1, 2}, {3}});
  EXPECT_EQ(t.maxChainLength(), 3u);
  BitVector pos(3);
  pos.set(2);  // only chain 0 has a cell at position 2
  EXPECT_EQ(t.expandPositions(pos).toIndices(), (std::vector<std::size_t>{2}));
}

TEST(ScanTopology, SizeMismatchesRejected) {
  const ScanTopology t = ScanTopology::singleChain(5);
  EXPECT_THROW(t.expandPositions(BitVector(4)), std::invalid_argument);
  EXPECT_THROW(t.collapseCells(BitVector(6)), std::invalid_argument);
  EXPECT_THROW(t.location(5), std::invalid_argument);
}

}  // namespace
}  // namespace scandiag
