// Hardware-in-the-loop validation: the clock-by-clock BIST session model and
// the analytic GF(2) session engine must agree on signatures. This pins every
// ordering convention — scan-out direction, chain-to-MISR-line mapping, the
// cycle index of each (pattern, position) bit, and the masking model — to
// physically simulated behaviour.

#include "bist/bist_controller.hpp"

#include <gtest/gtest.h>

#include "bist/phase_shifter.hpp"
#include "diagnosis/interval_partitioner.hpp"
#include "diagnosis/session_engine.hpp"
#include "netlist/synthetic_generator.hpp"
#include "sim/fault_list.hpp"

namespace scandiag {
namespace {

struct Harness {
  Netlist nl;
  ScanTopology topo;
  PatternSet patterns;
  BistControllerConfig config;

  Harness(const char* circuit, std::size_t chains, std::size_t numPatterns)
      : nl(generateNamedCircuit(circuit)),
        topo(chains <= 1 ? ScanTopology::singleChain(nl.dffs().size())
                         : ScanTopology::blockChains(nl.dffs().size(), chains)),
        patterns(generatePatterns(nl, numPatterns)) {
    config.numPatterns = numPatterns;
  }
};

TEST(BistController, FaultFreeSessionIsDeterministic) {
  Harness s("s298", 1, 8);
  const BistController ctrl(s.nl, s.topo, s.config);
  const BitVector all(s.topo.maxChainLength(), true);
  EXPECT_EQ(ctrl.runSession(s.patterns, all), ctrl.runSession(s.patterns, all));
}

TEST(BistController, MaskedOutCellsDoNotAffectSignature) {
  Harness s("s298", 1, 8);
  const BistController ctrl(s.nl, s.topo, s.config);
  const BitVector none(s.topo.maxChainLength());
  EXPECT_EQ(ctrl.runSession(s.patterns, none), 0u);  // nothing enters the MISR
}

TEST(BistController, UndetectedFaultGivesZeroErrorSignature) {
  Harness s("s298", 1, 8);
  const BistController ctrl(s.nl, s.topo, s.config);
  const BitVector all(s.topo.maxChainLength(), true);
  // Find a fault with no failing cells under these patterns.
  const FaultSimulator fsim(s.nl, s.patterns);
  const FaultList universe = FaultList::enumerateCollapsed(s.nl);
  for (const FaultSite& f : universe.faults()) {
    if (!fsim.simulate(f).detected()) {
      EXPECT_EQ(ctrl.sessionErrorSignature(s.patterns, all, f), 0u)
          << describeFault(s.nl, f);
      return;
    }
  }
  GTEST_SKIP() << "all faults detected; nothing to check";
}

class ControllerVsEngine
    : public ::testing::TestWithParam<std::tuple<const char*, std::size_t>> {};

TEST_P(ControllerVsEngine, ErrorSignaturesMatchAnalyticModel) {
  const auto [circuit, chains] = GetParam();
  const std::size_t numPatterns = 8;
  Harness s(circuit, chains, numPatterns);
  const BistController ctrl(s.nl, s.topo, s.config);

  SessionConfig sessionConfig{SignatureMode::Misr, numPatterns};
  sessionConfig.misrDegree = s.config.misrDegree;
  const SessionEngine engine(s.topo, sessionConfig);

  // An interval partition supplies representative masks (fewer groups for
  // tiny chains like s27's 3 cells).
  const std::size_t groups = std::min<std::size_t>(4, s.topo.maxChainLength());
  IntervalPartitioner gen(IntervalPartitionerConfig{}, s.topo.maxChainLength(), groups);
  const std::vector<Partition> partitions{gen.next()};

  const FaultSimulator fsim(s.nl, s.patterns);
  const auto faults = FaultList::enumerateCollapsed(s.nl).sample(25, 0xC7A1);
  std::size_t checked = 0;
  for (const FaultSite& fault : faults) {
    const FaultResponse resp = fsim.simulate(fault);
    if (!resp.detected()) continue;
    ++checked;
    const GroupVerdicts verdicts = engine.run(partitions, resp);
    for (std::size_t g = 0; g < partitions[0].groupCount(); ++g) {
      const std::uint64_t physical =
          ctrl.sessionErrorSignature(s.patterns, partitions[0].groups[g], fault);
      EXPECT_EQ(physical, verdicts.errorSig[0][g])
          << describeFault(s.nl, fault) << " group " << g << " on " << circuit;
    }
  }
  EXPECT_GT(checked, 5u);
}

INSTANTIATE_TEST_SUITE_P(Configs, ControllerVsEngine,
                         ::testing::Values(std::make_tuple("s27", std::size_t{1}),
                                           std::make_tuple("s298", std::size_t{1}),
                                           std::make_tuple("s298", std::size_t{3}),
                                           std::make_tuple("s344", std::size_t{2}),
                                           std::make_tuple("s526", std::size_t{4})));

TEST(BistController, WorksWithStumpsParallelPatterns) {
  // The controller is pattern-source agnostic: STUMPS phase-shifter patterns
  // must drive it and agree with the analytic engine just like serial PRPG.
  Harness s("s344", 2, 8);
  const PatternSet stumps = generateStumpsPatterns(s.nl, s.topo, 8);
  const BistController ctrl(s.nl, s.topo, s.config);

  SessionConfig sessionConfig{SignatureMode::Misr, 8};
  const SessionEngine engine(s.topo, sessionConfig);
  IntervalPartitioner gen(IntervalPartitionerConfig{}, s.topo.maxChainLength(), 3);
  const std::vector<Partition> partitions{gen.next()};

  const FaultSimulator fsim(s.nl, stumps);
  std::size_t checked = 0;
  for (const FaultSite& fault : FaultList::enumerateCollapsed(s.nl).sample(15, 0x57)) {
    const FaultResponse resp = fsim.simulate(fault);
    if (!resp.detected()) continue;
    ++checked;
    const GroupVerdicts verdicts = engine.run(partitions, resp);
    for (std::size_t g = 0; g < partitions[0].groupCount(); ++g) {
      EXPECT_EQ(ctrl.sessionErrorSignature(stumps, partitions[0].groups[g], fault),
                verdicts.errorSig[0][g]);
    }
  }
  EXPECT_GT(checked, 3u);
}

TEST(BistController, ConfigValidation) {
  Harness s("s298", 1, 8);
  BistControllerConfig bad = s.config;
  bad.numPatterns = 0;
  EXPECT_THROW(BistController(s.nl, s.topo, bad), std::invalid_argument);
  const ScanTopology wrong = ScanTopology::singleChain(3);
  EXPECT_THROW(BistController(s.nl, wrong, s.config), std::invalid_argument);
}

}  // namespace
}  // namespace scandiag
