// Property harness for the GF(2) linearity the batched MISR scorer rests on
// (docs/ARCHITECTURE.md §11). Three properties, each swept over seeded random
// cases across primitive polynomials, input widths, and chain lengths:
//
//   1. Superposition: sig(a ^ b) == sig(a) ^ sig(b) for the clocked register.
//   2. Per-cell contributions reconstruct the full session: XOR-ing each
//      cell's model-computed error signature equals one clocked MISR run over
//      the combined multi-chain error stream.
//   3. The model's contiguous weight rows (lineWeights) agree with weight().
//
// These are the *algebraic* preconditions of runBatched(); the end-to-end
// scorer parity lives in tests/diagnosis/batched_parity_test.cpp.

#include "bist/misr.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "bist/primitive_polys.hpp"
#include "bist/scan_topology.hpp"
#include "common/rng.hpp"

namespace scandiag {
namespace {

TEST(MisrLinearity, SuperpositionAcrossPolysWidthsAndLengths) {
  // sig(a ^ b) == sig(a) ^ sig(b), the identity that lets the batched scorer
  // build any group's signature from per-cell pieces. 3 degrees x 5 seeds x
  // 3 stream lengths x widths = 135+ independent random cases.
  int cases = 0;
  for (unsigned degree : {4u, 16u, 31u}) {
    const std::uint64_t taps = primitiveTapMask(degree);
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      for (std::size_t length : {7u, 64u, 301u}) {
        const unsigned maxWidth = degree < 8 ? degree : 8;
        for (unsigned width = 1; width <= maxWidth; width += 3) {
          Xoroshiro128 rng(seed * 1000 + degree * 10 + width);
          std::vector<std::uint64_t> a(length), b(length);
          for (auto& x : a) x = rng.nextBelow(std::uint64_t{1} << width);
          for (auto& x : b) x = rng.nextBelow(std::uint64_t{1} << width);
          Misr ma(degree, taps, width), mb(degree, taps, width), mab(degree, taps, width);
          for (std::size_t i = 0; i < length; ++i) {
            ma.clock(a[i]);
            mb.clock(b[i]);
            mab.clock(a[i] ^ b[i]);
          }
          ASSERT_EQ(mab.signature(), ma.signature() ^ mb.signature())
              << "degree " << degree << " width " << width << " length " << length
              << " seed " << seed;
          ++cases;
        }
      }
    }
  }
  EXPECT_GE(cases, 100);
}

TEST(MisrLinearity, CellContributionsReconstructFullSessionSignature) {
  // Random multi-chain sessions: per-cell error streams, one clocked MISR run
  // over the combined stream vs the XOR of each cell's model signature. This
  // is exactly the decomposition runBatched() exploits — if it holds for the
  // whole topology it holds for every subset (every session of every group).
  int cases = 0;
  for (unsigned degree : {8u, 16u, 24u}) {
    const std::uint64_t taps = primitiveTapMask(degree);
    for (std::uint64_t seed = 11; seed <= 110; seed += 11) {  // 10 seeds
      Xoroshiro128 rng(seed * 31 + degree);
      const std::size_t numChains = 1 + rng.nextBelow(degree);  // width <= degree
      const std::size_t numCells = numChains * (2 + rng.nextBelow(9));
      const std::size_t patterns = 1 + rng.nextBelow(24);
      const ScanTopology topo = ScanTopology::blockChains(numCells, numChains);
      const std::size_t chainLen = topo.maxChainLength();
      const MisrLinearModel model(degree, taps, static_cast<unsigned>(topo.numChains()),
                                  patterns * chainLen);

      // Sparse random error streams, one per cell (most cells clean).
      std::vector<BitVector> errors(numCells, BitVector(patterns));
      for (std::size_t cell = 0; cell < numCells; ++cell) {
        for (std::size_t t = 0; t < patterns; ++t) {
          if (rng.nextBelow(4) == 0) errors[cell].set(t);
        }
      }

      // Clocked reference: pattern-major unload, position p of every chain
      // enters the register together at cycle t*chainLen + p.
      Misr m(degree, taps, static_cast<unsigned>(topo.numChains()));
      for (std::size_t t = 0; t < patterns; ++t) {
        for (std::size_t p = 0; p < chainLen; ++p) {
          std::uint64_t inputs = 0;
          for (std::size_t c = 0; c < topo.numChains(); ++c) {
            if (p >= topo.chainLength(c)) continue;
            const std::size_t cell = topo.chain(c)[p];
            if (errors[cell].test(t)) inputs |= std::uint64_t{1} << c;
          }
          m.clock(inputs);
        }
      }

      // Model: XOR of per-cell contributions.
      std::uint64_t sum = 0;
      for (std::size_t cell = 0; cell < numCells; ++cell) {
        const ScanTopology::CellLoc loc = topo.location(cell);
        sum ^= model.cellSignature(
            static_cast<unsigned>(loc.chain), errors[cell],
            [&](std::size_t t) { return t * chainLen + loc.position; });
      }
      ASSERT_EQ(sum, m.signature())
          << "degree " << degree << " seed " << seed << " chains " << numChains
          << " cells " << numCells << " patterns " << patterns;
      ++cases;
    }
  }
  EXPECT_GE(cases, 30);
}

TEST(MisrLinearity, LineWeightRowsMatchWeightLookups) {
  const unsigned degree = 16, width = 5;
  const std::size_t cycles = 97;
  const MisrLinearModel model(degree, primitiveTapMask(degree), width, cycles);
  for (unsigned line = 0; line < width; ++line) {
    const std::uint64_t* row = model.lineWeights(line);
    for (std::size_t k = 0; k < cycles; ++k) {
      ASSERT_EQ(row[k], model.weight(line, k)) << "line " << line << " cycle " << k;
    }
  }
  EXPECT_THROW(model.lineWeights(width), std::invalid_argument);
}

TEST(MisrLinearity, UnionOfCellDisjointFaultsIsXorOfComponentSignatures) {
  // The defect-zoo guarantee at the compactor level: a k-fault union whose
  // components fail *disjoint* cell sets has OR == XOR on the combined error
  // stream, so sig(union) == XOR of the per-fault signatures. Two verdict
  // consequences, checked per random case:
  //   * no phantom fail: sig(union) != 0 implies some component sig != 0;
  //   * a union can only read PASS despite failing components by aliasing
  //     (the component signatures XOR to zero) — counted, and required to be
  //     rare at degree >= 16 — never by any other mechanism.
  int cases = 0, aliased = 0, detectedUnions = 0;
  for (unsigned degree : {8u, 16u, 31u}) {
    const std::uint64_t taps = primitiveTapMask(degree);
    for (std::uint64_t seed = 7; seed <= 70; seed += 7) {  // 10 seeds
      Xoroshiro128 rng(seed * 131 + degree);
      const std::size_t numChains = 1 + rng.nextBelow(degree < 8 ? degree : 8);
      const std::size_t numCells = numChains * (2 + rng.nextBelow(7));
      const std::size_t patterns = 1 + rng.nextBelow(16);
      const std::size_t k = 2 + rng.nextBelow(3);  // 2..4 simultaneous faults
      const ScanTopology topo = ScanTopology::blockChains(numCells, numChains);
      const std::size_t chainLen = topo.maxChainLength();

      // Partition the cells among the k faults, then draw sparse streams.
      std::vector<std::size_t> owner(numCells);
      for (std::size_t cell = 0; cell < numCells; ++cell) owner[cell] = rng.nextBelow(k);
      std::vector<BitVector> errors(numCells, BitVector(patterns));
      for (std::size_t cell = 0; cell < numCells; ++cell) {
        for (std::size_t t = 0; t < patterns; ++t) {
          if (rng.nextBelow(3) == 0) errors[cell].set(t);
        }
      }

      // One clocked run per fault (only its cells drive the register) plus
      // one over the union stream.
      const auto clockedSignature = [&](std::size_t fault) {
        Misr m(degree, taps, static_cast<unsigned>(topo.numChains()));
        for (std::size_t t = 0; t < patterns; ++t) {
          for (std::size_t p = 0; p < chainLen; ++p) {
            std::uint64_t inputs = 0;
            for (std::size_t c = 0; c < topo.numChains(); ++c) {
              if (p >= topo.chainLength(c)) continue;
              const std::size_t cell = topo.chain(c)[p];
              if (fault != k && owner[cell] != fault) continue;
              if (errors[cell].test(t)) inputs |= std::uint64_t{1} << c;
            }
            m.clock(inputs);
          }
        }
        return m.signature();
      };

      std::uint64_t xorOfComponents = 0;
      bool anyComponentDetected = false;
      for (std::size_t fault = 0; fault < k; ++fault) {
        const std::uint64_t sig = clockedSignature(fault);
        xorOfComponents ^= sig;
        anyComponentDetected = anyComponentDetected || sig != 0;
      }
      const std::uint64_t unionSig = clockedSignature(k);  // k = all faults

      ASSERT_EQ(unionSig, xorOfComponents)
          << "degree " << degree << " seed " << seed << " k " << k;
      if (unionSig != 0) {
        ASSERT_TRUE(anyComponentDetected)
            << "phantom union fail: degree " << degree << " seed " << seed;
        ++detectedUnions;
      } else if (anyComponentDetected) {
        ++aliased;  // components cancelled in GF(2) — the only escape hatch
      }
      ++cases;
    }
  }
  EXPECT_GE(cases, 30);
  EXPECT_GT(detectedUnions, 0);
  // Aliasing odds are ~2^-degree per case; across 30 cases at degree >= 8 a
  // handful is conceivable, a majority is a harness bug.
  EXPECT_LT(aliased, cases / 4);
}

TEST(MisrLinearity, EmptyErrorStreamContributesZero) {
  // The additive identity: a clean cell must not perturb any batched sum.
  const MisrLinearModel model(16, primitiveTapMask(16), 2, 40);
  const BitVector empty(10);
  EXPECT_EQ(model.cellSignature(0, empty, [](std::size_t t) { return t * 4; }), 0u);
  EXPECT_EQ(model.cellSignature(1, empty, [](std::size_t t) { return t * 4 + 3; }), 0u);
}

}  // namespace
}  // namespace scandiag
