#include "bist/interval_seed_search.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <set>

namespace scandiag {
namespace {

const LfsrConfig kCfg{16, 0};

TEST(IntervalLengthFromBits, ZeroMapsToFullRange) {
  EXPECT_EQ(intervalLengthFromBits(0, 4), 16u);
  EXPECT_EQ(intervalLengthFromBits(5, 4), 5u);
  EXPECT_EQ(intervalLengthFromBits(0b10101, 4), 5u);  // upper bits masked
}

TEST(IntervalLengths, ExactCoverAlwaysReturned) {
  for (std::uint64_t seed : {1ull, 0xACE1ull, 0x1234ull}) {
    const auto lengths = intervalLengths(kCfg, seed, 5, 8, 100);
    EXPECT_LE(lengths.size(), 8u);
    EXPECT_EQ(std::accumulate(lengths.begin(), lengths.end(), std::size_t{0}), 100u);
    for (std::size_t l : lengths) EXPECT_GE(l, 1u);
  }
}

TEST(IntervalLengths, ParameterValidation) {
  EXPECT_THROW(intervalLengths(kCfg, 1, 0, 4, 100), std::invalid_argument);
  EXPECT_THROW(intervalLengths(kCfg, 1, 17, 4, 100), std::invalid_argument);
  EXPECT_THROW(intervalLengths(kCfg, 1, 5, 0, 100), std::invalid_argument);
  EXPECT_THROW(intervalLengths(kCfg, 1, 5, 101, 100), std::invalid_argument);
}

TEST(DefaultIntervalBits, ScalesWithChainOverGroups) {
  const unsigned small = defaultIntervalBits(64, 16, 16);
  const unsigned large = defaultIntervalBits(6173, 32, 16);
  EXPECT_LT(small, large);
  EXPECT_GE(small, 1u);
  EXPECT_LE(large, 16u);
}

TEST(FindIntervalSeed, ResultCoversWithAllGroupsNonempty) {
  for (std::size_t groups : {4u, 8u, 16u}) {
    const std::size_t chain = 211;
    const unsigned rlen = defaultIntervalBits(chain, groups, 16);
    const auto result = findIntervalSeed(kCfg, rlen, groups, chain, 0xBEEF);
    ASSERT_TRUE(result.has_value()) << "groups=" << groups;
    EXPECT_EQ(result->lengths.size(), groups);
    EXPECT_EQ(std::accumulate(result->lengths.begin(), result->lengths.end(), std::size_t{0}),
              chain);
    for (std::size_t l : result->lengths) EXPECT_GE(l, 1u);
  }
}

TEST(FindIntervalSeed, PrefersSeedsWithAllGroupsNonempty) {
  // With a sensibly sized rlen, nonempty-group seeds exist and must be chosen.
  const std::size_t chain = 211, groups = 8;
  const unsigned rlen = defaultIntervalBits(chain, groups, 16);
  const auto result = findIntervalSeed(kCfg, rlen, groups, chain, 1);
  ASSERT_TRUE(result.has_value());
  for (std::size_t l : result->lengths) EXPECT_GE(l, 1u);
}

TEST(FindIntervalSeed, FallsBackToEarlyCoverWhenStrictInfeasible) {
  // 64 groups with 3-bit lengths on a 211-cell chain: the expected interval
  // sum overshoots the chain, so no seed keeps all 64 groups nonempty. The
  // search must still return a covering seed with trailing empty groups.
  const std::size_t chain = 211, groups = 64;
  const auto result = findIntervalSeed(kCfg, /*rlen=*/3, groups, chain, 1);
  ASSERT_TRUE(result.has_value());
  ASSERT_EQ(result->lengths.size(), groups);
  std::size_t sum = 0;
  for (std::size_t l : result->lengths) sum += l;
  EXPECT_EQ(sum, chain);
  EXPECT_EQ(result->lengths.back(), 0u);  // early cover => empty tail groups
}

TEST(FindIntervalSeed, ReturnsNulloptWhenImpossible) {
  // 4 groups of at most 2^1 = 2 cells can never cover 100 cells.
  EXPECT_FALSE(findIntervalSeed(kCfg, 1, 4, 100, 1, 1000).has_value());
}

TEST(FindIntervalSeeds, DistinctSeedsInOrder) {
  const std::size_t chain = 211, groups = 8;
  const unsigned rlen = defaultIntervalBits(chain, groups, 16);
  const auto results = findIntervalSeeds(kCfg, rlen, groups, chain, 0xBEEF, 5);
  ASSERT_EQ(results.size(), 5u);
  std::set<std::uint64_t> seeds;
  for (const auto& r : results) seeds.insert(r.seed);
  EXPECT_EQ(seeds.size(), 5u);
}

TEST(FindIntervalSeed, DeterministicForSameStart) {
  const auto a = findIntervalSeed(kCfg, 5, 8, 211, 7);
  const auto b = findIntervalSeed(kCfg, 5, 8, 211, 7);
  ASSERT_TRUE(a && b);
  EXPECT_EQ(a->seed, b->seed);
  EXPECT_EQ(a->lengths, b->lengths);
}

}  // namespace
}  // namespace scandiag
