#include "bist/misr.hpp"

#include <gtest/gtest.h>

#include "bist/primitive_polys.hpp"
#include "common/rng.hpp"

namespace scandiag {
namespace {

Misr makeMisr(unsigned degree = 16, unsigned width = 1) {
  return Misr(degree, primitiveTapMask(degree), width);
}

TEST(Misr, ZeroInputFromZeroStateStaysZero) {
  Misr m = makeMisr();
  for (int i = 0; i < 100; ++i) m.clock(0);
  EXPECT_EQ(m.signature(), 0u);
}

TEST(Misr, SingleImpulseProducesNonzeroSignature) {
  Misr m = makeMisr();
  m.clock(1);
  for (int i = 0; i < 50; ++i) m.clock(0);
  EXPECT_NE(m.signature(), 0u);  // a 16-bit maximal register never wraps to 0
}

TEST(Misr, LinearityOverInputStreams) {
  // sig(a ^ b) == sig(a) ^ sig(b) from the zero state — the superposition
  // property the whole pruning machinery depends on.
  Xoroshiro128 rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    const unsigned width = 1 + trial % 8;
    std::vector<std::uint64_t> a(200), b(200);
    for (auto& x : a) x = rng.nextBelow(1ull << width);
    for (auto& x : b) x = rng.nextBelow(1ull << width);
    Misr ma = makeMisr(16, width), mb = makeMisr(16, width), mab = makeMisr(16, width);
    for (std::size_t i = 0; i < a.size(); ++i) {
      ma.clock(a[i]);
      mb.clock(b[i]);
      mab.clock(a[i] ^ b[i]);
    }
    EXPECT_EQ(mab.signature(), ma.signature() ^ mb.signature());
  }
}

TEST(Misr, ErrorSignatureIndependentOfGoodData) {
  // sig(good ^ err) ^ sig(good) == sig(err) for any good stream.
  Xoroshiro128 rng(123);
  std::vector<std::uint64_t> good(100), err(100);
  for (auto& x : good) x = rng.nextBelow(2);
  for (auto& x : err) x = rng.nextBelow(2);
  Misr mGood = makeMisr(), mBoth = makeMisr(), mErr = makeMisr();
  for (std::size_t i = 0; i < good.size(); ++i) {
    mGood.clock(good[i]);
    mBoth.clock(good[i] ^ err[i]);
    mErr.clock(err[i]);
  }
  EXPECT_EQ(mBoth.signature() ^ mGood.signature(), mErr.signature());
}

TEST(Misr, TransitionMatchesClockWithZeroInput) {
  Misr m = makeMisr();
  m.reset(0x1234);
  const std::uint64_t expected = m.transition(0x1234);
  m.clock(0);
  EXPECT_EQ(m.signature(), expected);
}

TEST(Misr, InputWidthMasked) {
  Misr m = makeMisr(16, 2);
  Misr n = makeMisr(16, 2);
  m.clock(0b11);
  n.clock(0b1111);  // upper bits must be ignored
  EXPECT_EQ(m.signature(), n.signature());
}

TEST(Misr, InvalidConfigRejected) {
  EXPECT_THROW(Misr(16, primitiveTapMask(16), 0), std::invalid_argument);
  EXPECT_THROW(Misr(16, primitiveTapMask(16), 17), std::invalid_argument);
  EXPECT_THROW(Misr(1, 1, 1), std::invalid_argument);
}

TEST(MisrLinearModel, WeightsMatchImpulseInjection) {
  const unsigned degree = 12, width = 4;
  const std::uint64_t taps = primitiveTapMask(degree);
  const std::size_t K = 37;
  const MisrLinearModel model(degree, taps, width, K);
  for (unsigned line = 0; line < width; ++line) {
    for (std::size_t cycle = 0; cycle < K; cycle += 5) {
      Misr m(degree, taps, width);
      for (std::size_t k = 0; k < K; ++k) m.clock(k == cycle ? (1ull << line) : 0);
      EXPECT_EQ(model.weight(line, cycle), m.signature())
          << "line " << line << " cycle " << cycle;
    }
  }
}

TEST(MisrLinearModel, CellSignatureMatchesFullRun) {
  // A cell at chain position p of an L-cell chain contributes its pattern-t
  // bit at cycle t*L + p; the linear model must agree with a real MISR run
  // over the full masked stream.
  const unsigned degree = 16;
  const std::uint64_t taps = primitiveTapMask(degree);
  const std::size_t L = 10, patterns = 8, pos = 3;
  const MisrLinearModel model(degree, taps, 1, L * patterns);

  Xoroshiro128 rng(5);
  BitVector errorStream(patterns);
  for (std::size_t t = 0; t < patterns; ++t)
    if (rng.nextBool()) errorStream.set(t);

  Misr m(degree, taps, 1);
  for (std::size_t t = 0; t < patterns; ++t) {
    for (std::size_t p = 0; p < L; ++p) {
      m.clock((p == pos && errorStream.test(t)) ? 1 : 0);
    }
  }
  const std::uint64_t viaModel =
      model.cellSignature(0, errorStream, [&](std::size_t t) { return t * L + pos; });
  EXPECT_EQ(viaModel, m.signature());
}

TEST(MisrLinearModel, BoundsChecked) {
  const MisrLinearModel model(8, primitiveTapMask(8), 2, 10);
  EXPECT_THROW(model.weight(2, 0), std::invalid_argument);
  EXPECT_THROW(model.weight(0, 10), std::invalid_argument);
}

TEST(Misr, AliasingIsPossibleButRare) {
  // Find one aliasing stream (nonzero error, zero signature) to document the
  // phenomenon: inject the same impulse twice 2^degree-1 cycles apart — the
  // state transformer has that period, so the contributions cancel only for
  // carefully aligned pairs. Instead, verify statistically: random nonzero
  // 4-bit-register streams alias at roughly 1/15.
  const unsigned degree = 4;
  const std::uint64_t taps = primitiveTapMask(degree);
  Xoroshiro128 rng(7);
  int aliased = 0;
  const int trials = 3000;
  for (int i = 0; i < trials; ++i) {
    Misr m(degree, taps, 1);
    bool any = false;
    for (int k = 0; k < 64; ++k) {
      const bool bit = rng.nextBool();
      any |= bit;
      m.clock(bit);
    }
    if (any && m.signature() == 0) ++aliased;
  }
  const double rate = static_cast<double>(aliased) / trials;
  EXPECT_GT(rate, 0.02);
  EXPECT_LT(rate, 0.15);
}

}  // namespace
}  // namespace scandiag
