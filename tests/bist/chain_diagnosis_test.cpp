#include "bist/chain_diagnosis.hpp"

#include <gtest/gtest.h>

#include "bist/prpg.hpp"
#include "netlist/synthetic_generator.hpp"

namespace scandiag {
namespace {

struct Rig {
  Netlist nl;
  ScanTopology topo;
  ChainIntegrityModel model;
  PatternSet patterns;

  explicit Rig(std::size_t chains = 1)
      : nl(generateNamedCircuit("s953")),
        topo(chains <= 1 ? ScanTopology::singleChain(nl.dffs().size())
                         : ScanTopology::blockChains(nl.dffs().size(), chains)),
        model(nl, topo),
        patterns(generatePatterns(nl, 8)) {}
};

TEST(ChainDiagnosis, HealthyChainPassesFlush) {
  Rig rig;
  const BitVector obs = rig.model.flushObservation(0);
  const auto verdict = rig.model.judgeFlush(obs);
  EXPECT_TRUE(verdict.pass);
  // The second half of the observation is the toggle sequence delayed by L.
  const std::size_t len = rig.topo.chainLength(0);
  for (std::size_t j = 0; j < len; ++j) {
    EXPECT_EQ(obs.test(len + j), static_cast<bool>(j & 1)) << "cycle " << len + j;
  }
}

TEST(ChainDiagnosis, FlushDetectsStuckChainAndPolarity) {
  Rig rig;
  for (bool stuck : {false, true}) {
    for (std::size_t pos : {0u, 7u, 28u}) {
      const ChainFault fault{0, pos, stuck};
      const auto verdict = rig.model.judgeFlush(rig.model.flushObservation(0, fault));
      EXPECT_FALSE(verdict.pass) << "pos " << pos;
      EXPECT_EQ(verdict.stuckValue, stuck) << "pos " << pos;
    }
  }
}

TEST(ChainDiagnosis, FlushOnHealthyChainIgnoresOtherChainsFault) {
  Rig rig(4);
  const ChainFault fault{2, 1, true};
  EXPECT_TRUE(rig.model.judgeFlush(rig.model.flushObservation(0, fault)).pass);
  EXPECT_FALSE(rig.model.judgeFlush(rig.model.flushObservation(2, fault)).pass);
}

TEST(ChainDiagnosis, CaptureObservationMatchesFaultSemantics) {
  Rig rig;
  const ChainFault fault{0, 10, true};
  const auto good = rig.model.captureObservation(rig.patterns, 0, std::nullopt);
  const auto bad = rig.model.captureObservation(rig.patterns, 0, fault);
  // Downstream of the fault (positions >= 10) reads back stuck-at-1.
  for (std::size_t p = 10; p < rig.topo.chainLength(0); ++p)
    EXPECT_TRUE(bad[0].test(p)) << p;
  // Upstream positions hold real captures (of a corrupted load) — at least
  // one position should differ from the healthy capture, and none is forced.
  (void)good;
}

TEST(ChainDiagnosis, LocalizesInjectedFaults) {
  Rig rig;
  for (const ChainFault fault : {ChainFault{0, 3, true}, ChainFault{0, 14, false},
                                 ChainFault{0, 27, true}}) {
    const auto observed = rig.model.captureObservation(rig.patterns, 1, fault);
    const auto candidates =
        rig.model.locateFault(rig.patterns, 1, observed, fault.chain, fault.stuckAt);
    EXPECT_NE(std::find(candidates.begin(), candidates.end(), fault.position),
              candidates.end())
        << "position " << fault.position << " not in candidate set";
    EXPECT_LE(candidates.size(), 8u) << "localization too loose";
  }
}

TEST(ChainDiagnosis, MultiplePatternsDisambiguate) {
  Rig rig;
  const ChainFault fault{0, 12, false};
  // Intersect candidates over several capture tests.
  std::vector<std::size_t> surviving;
  for (std::size_t p = 0; p < rig.topo.chainLength(0); ++p) surviving.push_back(p);
  for (std::size_t t = 0; t < 6; ++t) {
    const auto observed = rig.model.captureObservation(rig.patterns, t, fault);
    const auto candidates =
        rig.model.locateFault(rig.patterns, t, observed, fault.chain, fault.stuckAt);
    std::vector<std::size_t> next;
    for (std::size_t c : surviving) {
      if (std::find(candidates.begin(), candidates.end(), c) != candidates.end())
        next.push_back(c);
    }
    surviving = std::move(next);
  }
  ASSERT_FALSE(surviving.empty());
  EXPECT_NE(std::find(surviving.begin(), surviving.end(), fault.position), surviving.end());
  EXPECT_LE(surviving.size(), 3u);
}

TEST(ChainDiagnosis, MultiChainLocalization) {
  Rig rig(4);
  const ChainFault fault{1, 2, true};
  const auto observed = rig.model.captureObservation(rig.patterns, 0, fault);
  const auto candidates =
      rig.model.locateFault(rig.patterns, 0, observed, fault.chain, fault.stuckAt);
  EXPECT_NE(std::find(candidates.begin(), candidates.end(), fault.position),
            candidates.end());
}

TEST(ChainDiagnosis, ParameterValidation) {
  Rig rig;
  EXPECT_THROW(rig.model.flushObservation(5), std::invalid_argument);
  EXPECT_THROW(rig.model.captureObservation(rig.patterns, 99, std::nullopt),
               std::invalid_argument);
  const ChainFault bad{0, 999, true};
  EXPECT_THROW(rig.model.captureObservation(rig.patterns, 0, bad), std::invalid_argument);
}

}  // namespace
}  // namespace scandiag
