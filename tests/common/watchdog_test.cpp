// CancellationToken / Watchdog / RunControl contract tests (test_common).
//
// Deadline trips are made deterministic with zero budgets (trip on first
// poll) and generous budgets (never trip inside a test) — no sleeps, no
// wall-clock races. The watchdog_cancels counter assertions are split on
// SCANDIAG_METRICS_ENABLED, same as the obs shim tests.

#include "common/watchdog.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>

#include "obs/metrics.hpp"

namespace scandiag {
namespace {

using std::chrono::milliseconds;

class WatchdogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::MetricsRegistry::instance().setEnabled(true);
    obs::MetricsRegistry::instance().reset();
  }
  void TearDown() override { obs::MetricsRegistry::instance().reset(); }

  std::uint64_t cancels() const {
    return obs::MetricsRegistry::instance().snapshot().counter(obs::Counter::WatchdogCancels);
  }
};

TEST_F(WatchdogTest, TokenFirstCancelReasonWins) {
  CancellationToken token;
  EXPECT_FALSE(token.cancelled());
  EXPECT_STREQ(token.reason(), "");
  token.cancel("first");
  token.cancel("second");
  EXPECT_TRUE(token.cancelled());
  EXPECT_STREQ(token.reason(), "first");
  token.reset();
  EXPECT_FALSE(token.cancelled());
  EXPECT_STREQ(token.reason(), "");
}

TEST_F(WatchdogTest, DefaultRunControlIsInert) {
  const RunControl control;
  EXPECT_FALSE(control.shouldStop());
  EXPECT_NO_THROW(control.throwIfStopped());
}

TEST_F(WatchdogTest, PreCancelledTokenUnwindsWithReason) {
  CancellationToken token;
  token.cancel("signal");
  const RunControl control{&token, nullptr};
  EXPECT_TRUE(control.shouldStop());
  try {
    control.throwIfStopped();
    FAIL() << "expected OperationCancelled";
  } catch (const OperationCancelled& e) {
    EXPECT_NE(std::string(e.what()).find("signal"), std::string::npos) << e.what();
  }
}

TEST_F(WatchdogTest, ZeroTotalBudgetTripsOnFirstPoll) {
  CancellationToken token;
  Watchdog watchdog(token, milliseconds(0));
  EXPECT_FALSE(watchdog.tripped());
  EXPECT_TRUE(watchdog.poll());
  EXPECT_TRUE(watchdog.tripped());
  EXPECT_TRUE(token.cancelled());
  EXPECT_NE(std::string(token.reason()).find("watchdog"), std::string::npos)
      << token.reason();
#if SCANDIAG_METRICS_ENABLED
  EXPECT_EQ(cancels(), 1u);
#else
  EXPECT_EQ(cancels(), 0u);
#endif
}

TEST_F(WatchdogTest, GenerousBudgetDoesNotTrip) {
  CancellationToken token;
  Watchdog watchdog(token, std::chrono::hours(24));
  const RunControl control{&token, &watchdog};
  for (int i = 0; i < 1000; ++i) EXPECT_FALSE(control.shouldStop());
  EXPECT_FALSE(watchdog.tripped());
  EXPECT_EQ(cancels(), 0u);
}

TEST_F(WatchdogTest, TripCountsExactlyOnceAcrossRepeatedPolls) {
  CancellationToken token;
  Watchdog watchdog(token, milliseconds(0));
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(watchdog.poll());
#if SCANDIAG_METRICS_ENABLED
  EXPECT_EQ(cancels(), 1u);
#endif
}

TEST_F(WatchdogTest, PhaseBudgetTripsOnlyWhileThatPhaseIsActive) {
  CancellationToken token;
  Watchdog watchdog(token, std::chrono::hours(24));
  watchdog.setPhaseBudget(WatchdogPhase::FaultSim, milliseconds(1));
  // The budget alone does nothing; the phase clock starts at beginPhase().
  EXPECT_FALSE(watchdog.poll());
  watchdog.beginPhase(WatchdogPhase::SessionEval);  // unbudgeted phase
  std::this_thread::sleep_for(milliseconds(2));
  EXPECT_FALSE(watchdog.poll());
  watchdog.endPhase();
  watchdog.beginPhase(WatchdogPhase::FaultSim);
  std::this_thread::sleep_for(milliseconds(2));
  EXPECT_TRUE(watchdog.poll());
  EXPECT_TRUE(token.cancelled());
  EXPECT_NE(std::string(token.reason()).find("fault-sim"), std::string::npos)
      << token.reason();
}

TEST_F(WatchdogTest, ExternalCancellationReportedThroughPoll) {
  CancellationToken token;
  Watchdog watchdog(token, std::chrono::hours(24));
  EXPECT_FALSE(watchdog.poll());
  token.cancel("external");
  // poll() relays an externally-cancelled token without counting a trip.
  EXPECT_TRUE(watchdog.poll());
  EXPECT_FALSE(watchdog.tripped());
  EXPECT_EQ(cancels(), 0u);
}

TEST_F(WatchdogTest, GlobalTokenIsProcessWideAndResettable) {
  CancellationToken& token = globalCancelToken();
  token.reset();
  EXPECT_FALSE(token.cancelled());
  token.cancel("test");
  EXPECT_TRUE(globalCancelToken().cancelled());
  token.reset();
  EXPECT_FALSE(globalCancelToken().cancelled());
}

}  // namespace
}  // namespace scandiag
