#include "common/gf2.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace scandiag {
namespace {

BitVector bits(const std::string& s) { return BitVector::fromString(s); }

TEST(Gf2System, SingleVariableForced) {
  Gf2System sys(1, 4);
  sys.addEquation(bits("1"), bits("1010"));
  ASSERT_TRUE(sys.reduce());
  const auto v = sys.forcedValue(0);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->toString(), "1010");
  EXPECT_FALSE(sys.forcedZero(0));
}

TEST(Gf2System, ForcedZeroVariable) {
  Gf2System sys(2, 4);
  // x0 ^ x1 = 0110 ; x1 = 0110  =>  x0 forced to 0.
  sys.addEquation(bits("11"), bits("0110"));
  sys.addEquation(bits("01"), bits("0110"));
  ASSERT_TRUE(sys.reduce());
  EXPECT_TRUE(sys.forcedZero(0));
  EXPECT_FALSE(sys.forcedZero(1));
  EXPECT_EQ(sys.forcedValue(1)->toString(), "0110");
}

TEST(Gf2System, FreeVariableNotForced) {
  Gf2System sys(2, 3);
  sys.addEquation(bits("11"), bits("101"));  // x0 ^ x1 = 101, both free-ish
  ASSERT_TRUE(sys.reduce());
  EXPECT_FALSE(sys.forcedValue(0).has_value());
  EXPECT_FALSE(sys.forcedValue(1).has_value());
  EXPECT_FALSE(sys.forcedZero(0));
}

TEST(Gf2System, InconsistentSystemDetected) {
  Gf2System sys(2, 2);
  sys.addEquation(bits("11"), bits("10"));
  sys.addEquation(bits("11"), bits("01"));  // same LHS, different RHS
  EXPECT_FALSE(sys.reduce());
}

TEST(Gf2System, RedundantEquationsConsistent) {
  Gf2System sys(3, 2);
  sys.addEquation(bits("110"), bits("11"));
  sys.addEquation(bits("011"), bits("01"));
  sys.addEquation(bits("101"), bits("10"));  // sum of the first two
  ASSERT_TRUE(sys.reduce());
  EXPECT_EQ(sys.rank(), 2u);
}

TEST(Gf2System, DimensionMismatchThrows) {
  Gf2System sys(3, 2);
  EXPECT_THROW(sys.addEquation(bits("11"), bits("01")), std::invalid_argument);
  EXPECT_THROW(sys.addEquation(bits("111"), bits("011")), std::invalid_argument);
}

TEST(Gf2System, UseBeforeReduceThrows) {
  Gf2System sys(1, 1);
  sys.addEquation(bits("1"), bits("1"));
  EXPECT_THROW(sys.forcedValue(0), std::invalid_argument);
}

TEST(Gf2System, AddAfterReduceThrows) {
  Gf2System sys(1, 1);
  sys.addEquation(bits("1"), bits("1"));
  ASSERT_TRUE(sys.reduce());
  EXPECT_THROW(sys.addEquation(bits("1"), bits("0")), std::invalid_argument);
  EXPECT_THROW(sys.reduce(), std::invalid_argument);
}

// Property check against brute force: enumerate all assignments of k-bit
// unknowns over small systems; a variable is "forced" iff it takes a single
// value across all satisfying assignments.
class Gf2BruteForce : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Gf2BruteForce, ForcedValuesMatchExhaustiveEnumeration) {
  Xoroshiro128 rng(GetParam());
  const std::size_t vars = 4, rhsBits = 2, eqs = 1 + rng.nextBelow(5);
  std::vector<std::uint64_t> lhs(eqs), rhs(eqs);
  Gf2System sys(vars, rhsBits);
  for (std::size_t e = 0; e < eqs; ++e) {
    lhs[e] = rng.nextBelow(1u << vars);
    rhs[e] = rng.nextBelow(1u << rhsBits);
    BitVector coeffs(vars), r(rhsBits);
    for (std::size_t v = 0; v < vars; ++v)
      if ((lhs[e] >> v) & 1) coeffs.set(v);
    for (std::size_t b = 0; b < rhsBits; ++b)
      if ((rhs[e] >> b) & 1) r.set(b);
    sys.addEquation(coeffs, r);
  }

  // Brute force over all (2^rhsBits)^vars assignments.
  std::vector<std::vector<std::uint64_t>> solutions;
  const std::uint64_t valueSpace = 1u << rhsBits;
  for (std::uint64_t a0 = 0; a0 < valueSpace; ++a0)
    for (std::uint64_t a1 = 0; a1 < valueSpace; ++a1)
      for (std::uint64_t a2 = 0; a2 < valueSpace; ++a2)
        for (std::uint64_t a3 = 0; a3 < valueSpace; ++a3) {
          const std::uint64_t x[4] = {a0, a1, a2, a3};
          bool ok = true;
          for (std::size_t e = 0; e < eqs && ok; ++e) {
            std::uint64_t acc = 0;
            for (std::size_t v = 0; v < vars; ++v)
              if ((lhs[e] >> v) & 1) acc ^= x[v];
            ok = (acc == rhs[e]);
          }
          if (ok) solutions.push_back({a0, a1, a2, a3});
        }

  const bool consistent = sys.reduce();
  EXPECT_EQ(consistent, !solutions.empty());
  if (!consistent) return;
  for (std::size_t v = 0; v < vars; ++v) {
    bool unique = true;
    for (const auto& s : solutions)
      if (s[v] != solutions[0][v]) unique = false;
    const auto forced = sys.forcedValue(v);
    EXPECT_EQ(forced.has_value(), unique) << "var " << v;
    if (forced && unique) {
      std::uint64_t val = 0;
      for (std::size_t b = 0; b < rhsBits; ++b)
        if (forced->test(b)) val |= 1u << b;
      EXPECT_EQ(val, solutions[0][v]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Gf2BruteForce, ::testing::Range<std::uint64_t>(1, 33));

}  // namespace
}  // namespace scandiag
