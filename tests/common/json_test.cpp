#include "common/json.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <limits>
#include <sstream>
#include <string>

#include "common/errors.hpp"

namespace scandiag {
namespace {

std::string compact(const std::function<void(JsonWriter&)>& build) {
  std::ostringstream os;
  JsonWriter json(os, /*pretty=*/false);
  build(json);
  return os.str();
}

TEST(JsonWriter, EmptyContainers) {
  EXPECT_EQ(compact([](JsonWriter& j) { j.beginObject().endObject(); }), "{}");
  EXPECT_EQ(compact([](JsonWriter& j) { j.beginArray().endArray(); }), "[]");
}

TEST(JsonWriter, ObjectFields) {
  const std::string out = compact([](JsonWriter& j) {
    j.beginObject()
        .field("name", "scandiag")
        .field("dr", 0.5)
        .field("faults", std::uint64_t{500})
        .field("pruning", true)
        .endObject();
  });
  EXPECT_EQ(out, R"({"name":"scandiag","dr":0.5,"faults":500,"pruning":true})");
}

TEST(JsonWriter, NestedStructures) {
  const std::string out = compact([](JsonWriter& j) {
    j.beginObject().key("rows").beginArray();
    j.beginObject().field("x", 1).endObject();
    j.beginObject().field("x", 2).endObject();
    j.endArray().key("none").null();
    j.endObject();
  });
  EXPECT_EQ(out, R"({"rows":[{"x":1},{"x":2}],"none":null})");
}

TEST(JsonWriter, ArraysSeparateWithCommas) {
  const std::string out = compact([](JsonWriter& j) {
    j.beginArray().value(1).value(2).value(3).endArray();
  });
  EXPECT_EQ(out, "[1,2,3]");
}

TEST(JsonWriter, EscapesStrings) {
  const std::string out = compact([](JsonWriter& j) {
    j.beginArray().value("a\"b\\c\nd\te").endArray();
  });
  EXPECT_EQ(out, "[\"a\\\"b\\\\c\\nd\\te\"]");
}

TEST(JsonWriter, MisuseThrows) {
  std::ostringstream os;
  {
    JsonWriter j(os, false);
    j.beginObject();
    EXPECT_THROW(j.value(1), std::invalid_argument);  // member without key
    EXPECT_THROW(j.endArray(), std::invalid_argument);
    j.key("k");
    EXPECT_THROW(j.key("k2"), std::invalid_argument);  // two keys in a row
    EXPECT_THROW(j.endObject(), std::invalid_argument);  // dangling key
  }
  {
    std::ostringstream os2;
    JsonWriter j(os2, false);
    j.beginArray();
    EXPECT_THROW(j.key("k"), std::invalid_argument);  // key inside array
  }
}

TEST(JsonWriter, RejectsNonFiniteNumbers) {
  std::ostringstream os;
  JsonWriter j(os, false);
  j.beginArray();
  EXPECT_THROW(j.value(std::numeric_limits<double>::infinity()), std::invalid_argument);
}

TEST(JsonWriter, PrettyPrintingIndents) {
  std::ostringstream os;
  JsonWriter j(os, true);
  j.beginObject().field("a", 1).endObject();
  EXPECT_EQ(os.str(), "{\n  \"a\": 1\n}");
}

TEST(JsonParser, ParsesScalars) {
  EXPECT_TRUE(parseJson("null").isNull());
  EXPECT_EQ(parseJson("true").asBool(), true);
  EXPECT_EQ(parseJson("false").asBool(), false);
  EXPECT_EQ(parseJson("42").asUint(), 42u);
  EXPECT_EQ(parseJson("-7").asInt(), -7);
  EXPECT_DOUBLE_EQ(parseJson("2.5e1").asDouble(), 25.0);
  EXPECT_EQ(parseJson("\"hi\"").asString(), "hi");
}

TEST(JsonParser, PreservesExactUint64) {
  // Counters can exceed 2^53 (and saturate at UINT64_MAX); the parser must
  // keep unsigned integrals exact rather than routing them through double.
  EXPECT_EQ(parseJson("18446744073709551615").asUint(), UINT64_MAX);
  EXPECT_EQ(parseJson("9007199254740993").asUint(), 9007199254740993ull);
  // asDouble still works for integrals (lossy is fine there).
  EXPECT_DOUBLE_EQ(parseJson("42").asDouble(), 42.0);
  // But a fractional number is not an integer.
  EXPECT_THROW(parseJson("1.5").asUint(), std::invalid_argument);
  EXPECT_THROW(parseJson("-3").asUint(), std::invalid_argument);
}

TEST(JsonParser, ParsesContainers) {
  const JsonValue v = parseJson(R"({"a": [1, 2, 3], "b": {"c": "d"}, "e": null})");
  ASSERT_TRUE(v.isObject());
  EXPECT_EQ(v.size(), 3u);
  EXPECT_TRUE(v.has("a"));
  EXPECT_FALSE(v.has("z"));
  ASSERT_TRUE(v.at("a").isArray());
  EXPECT_EQ(v.at("a").size(), 3u);
  EXPECT_EQ(v.at("a").at(1).asUint(), 2u);
  EXPECT_EQ(v.at("b").at("c").asString(), "d");
  EXPECT_TRUE(v.at("e").isNull());
  EXPECT_THROW(v.at("z"), std::invalid_argument);
  EXPECT_THROW(v.at("a").at(3), std::invalid_argument);
}

TEST(JsonParser, DecodesEscapesAndUnicode) {
  EXPECT_EQ(parseJson(R"("a\"b\\c\nd\te")").asString(), "a\"b\\c\nd\te");
  EXPECT_EQ(parseJson(R"("Aé")").asString(), "A\xc3\xa9");
  EXPECT_EQ(parseJson(R"("é")").asString(), "\xc3\xa9");
  EXPECT_EQ(parseJson(R"("€")").asString(), "\xe2\x82\xac");
}

TEST(JsonParser, CombinesSurrogatePairsAndRejectsLoneSurrogates) {
  // U+1F600 as an escaped surrogate pair decodes to the 4-byte UTF-8 sequence.
  EXPECT_EQ(parseJson(R"("\uD83D\uDE00")").asString(), "\xf0\x9f\x98\x80");
  for (const char* bad : {R"("\ud800")", R"("\udc00")", R"("\ud800x")",
                          R"("\ud800A")", R"("\ud800\ud800")"}) {
    EXPECT_THROW(parseJson(bad), ParseError) << "input: " << bad;
  }
}

TEST(JsonParser, RoundTripsThroughJsonWriter) {
  std::ostringstream os;
  {
    JsonWriter j(os);
    j.beginObject()
        .field("name", std::string("x"))
        .field("big", UINT64_MAX)
        .field("ratio", 0.5)
        .field("ok", true);
    j.key("list").beginArray().value(1).value(2).endArray();
    j.endObject();
  }
  const JsonValue v = parseJson(os.str());
  EXPECT_EQ(v.at("name").asString(), "x");
  EXPECT_EQ(v.at("big").asUint(), UINT64_MAX);
  EXPECT_DOUBLE_EQ(v.at("ratio").asDouble(), 0.5);
  EXPECT_EQ(v.at("ok").asBool(), true);
  EXPECT_EQ(v.at("list").size(), 2u);
}

TEST(JsonParser, RejectsMalformedDocuments) {
  for (const char* bad : {"", "{", "[1,]", "{\"a\":}", "{\"a\" 1}", "01", "1 2", "nul",
                          "\"unterminated", "{\"a\":1}x", "+1", "[1"}) {
    EXPECT_THROW(parseJson(bad), ParseError) << "input: " << bad;
  }
}

TEST(JsonParser, RejectsRunawayNesting) {
  std::string deep;
  for (int i = 0; i < 100; ++i) deep += "[";
  EXPECT_THROW(parseJson(deep), ParseError);
}

TEST(JsonParser, TypeMismatchesAreLoud) {
  const JsonValue v = parseJson(R"({"s": "x", "n": 1})");
  EXPECT_THROW(v.at("s").asUint(), std::invalid_argument);
  EXPECT_THROW(v.at("n").asString(), std::invalid_argument);
  EXPECT_THROW(v.at(0), std::invalid_argument);  // index into an object
}

}  // namespace
}  // namespace scandiag
