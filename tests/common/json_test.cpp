#include "common/json.hpp"

#include <gtest/gtest.h>

#include <functional>
#include <limits>
#include <sstream>

namespace scandiag {
namespace {

std::string compact(const std::function<void(JsonWriter&)>& build) {
  std::ostringstream os;
  JsonWriter json(os, /*pretty=*/false);
  build(json);
  return os.str();
}

TEST(JsonWriter, EmptyContainers) {
  EXPECT_EQ(compact([](JsonWriter& j) { j.beginObject().endObject(); }), "{}");
  EXPECT_EQ(compact([](JsonWriter& j) { j.beginArray().endArray(); }), "[]");
}

TEST(JsonWriter, ObjectFields) {
  const std::string out = compact([](JsonWriter& j) {
    j.beginObject()
        .field("name", "scandiag")
        .field("dr", 0.5)
        .field("faults", std::uint64_t{500})
        .field("pruning", true)
        .endObject();
  });
  EXPECT_EQ(out, R"({"name":"scandiag","dr":0.5,"faults":500,"pruning":true})");
}

TEST(JsonWriter, NestedStructures) {
  const std::string out = compact([](JsonWriter& j) {
    j.beginObject().key("rows").beginArray();
    j.beginObject().field("x", 1).endObject();
    j.beginObject().field("x", 2).endObject();
    j.endArray().key("none").null();
    j.endObject();
  });
  EXPECT_EQ(out, R"({"rows":[{"x":1},{"x":2}],"none":null})");
}

TEST(JsonWriter, ArraysSeparateWithCommas) {
  const std::string out = compact([](JsonWriter& j) {
    j.beginArray().value(1).value(2).value(3).endArray();
  });
  EXPECT_EQ(out, "[1,2,3]");
}

TEST(JsonWriter, EscapesStrings) {
  const std::string out = compact([](JsonWriter& j) {
    j.beginArray().value("a\"b\\c\nd\te").endArray();
  });
  EXPECT_EQ(out, "[\"a\\\"b\\\\c\\nd\\te\"]");
}

TEST(JsonWriter, MisuseThrows) {
  std::ostringstream os;
  {
    JsonWriter j(os, false);
    j.beginObject();
    EXPECT_THROW(j.value(1), std::invalid_argument);  // member without key
    EXPECT_THROW(j.endArray(), std::invalid_argument);
    j.key("k");
    EXPECT_THROW(j.key("k2"), std::invalid_argument);  // two keys in a row
    EXPECT_THROW(j.endObject(), std::invalid_argument);  // dangling key
  }
  {
    std::ostringstream os2;
    JsonWriter j(os2, false);
    j.beginArray();
    EXPECT_THROW(j.key("k"), std::invalid_argument);  // key inside array
  }
}

TEST(JsonWriter, RejectsNonFiniteNumbers) {
  std::ostringstream os;
  JsonWriter j(os, false);
  j.beginArray();
  EXPECT_THROW(j.value(std::numeric_limits<double>::infinity()), std::invalid_argument);
}

TEST(JsonWriter, PrettyPrintingIndents) {
  std::ostringstream os;
  JsonWriter j(os, true);
  j.beginObject().field("a", 1).endObject();
  EXPECT_EQ(os.str(), "{\n  \"a\": 1\n}");
}

}  // namespace
}  // namespace scandiag
