#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <set>

namespace scandiag {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Xoroshiro128 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Xoroshiro128 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next() == b.next());
  EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowInRange) {
  Xoroshiro128 rng(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.nextBelow(17), 17u);
  EXPECT_THROW(rng.nextBelow(0), std::invalid_argument);
}

TEST(Rng, NextBelowCoversAllResidues) {
  Xoroshiro128 rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.nextBelow(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, NextInRangeInclusive) {
  Xoroshiro128 rng(11);
  bool sawLo = false, sawHi = false;
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t v = rng.nextInRange(3, 6);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 6u);
    sawLo |= (v == 3);
    sawHi |= (v == 6);
  }
  EXPECT_TRUE(sawLo);
  EXPECT_TRUE(sawHi);
  EXPECT_THROW(rng.nextInRange(5, 4), std::invalid_argument);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Xoroshiro128 rng(13);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.nextDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);  // crude uniformity check
}

TEST(Rng, BoolRoughlyBalanced) {
  Xoroshiro128 rng(17);
  int ones = 0;
  for (int i = 0; i < 10000; ++i) ones += rng.nextBool();
  EXPECT_NEAR(ones / 10000.0, 0.5, 0.03);
}

}  // namespace
}  // namespace scandiag
