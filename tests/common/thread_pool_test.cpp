#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <mutex>
#include <numeric>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace scandiag {
namespace {

TEST(ThreadPool, SubmitReturnsValueThroughFuture) {
  ThreadPool pool(4);
  auto future = pool.submit([] { return 6 * 7; });
  EXPECT_EQ(future.get(), 42);
}

TEST(ThreadPool, SubmitManyTasksAllComplete) {
  ThreadPool pool(4);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.submit([i] { return i * i; }));
  }
  for (int i = 0; i < 100; ++i) EXPECT_EQ(futures[i].get(), i * i);
}

TEST(ThreadPool, SubmitPropagatesException) {
  ThreadPool pool(2);
  auto future = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(8);
  const std::size_t n = 10'000;
  std::vector<std::atomic<int>> hits(n);
  pool.parallelFor(n, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPool, ParallelForHandlesZeroAndFewerItemsThanThreads) {
  ThreadPool pool(8);
  pool.parallelFor(0, [](std::size_t) { FAIL() << "body called for n == 0"; });
  std::vector<std::atomic<int>> hits(3);
  pool.parallelFor(3, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < 3; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ThreadPool, ParallelForRangeChunksAreContiguousAndFixed) {
  ThreadPool pool(4);
  std::mutex mutex;
  std::vector<std::pair<std::size_t, std::size_t>> ranges;
  pool.parallelForRange(1000, [&](std::size_t begin, std::size_t end) {
    std::lock_guard<std::mutex> lock(mutex);
    ranges.push_back({begin, end});
  });
  // Sorted by begin, the chunks must exactly tile [0, 1000) — the fixed
  // partition that makes indexed results scheduling-independent.
  std::sort(ranges.begin(), ranges.end());
  ASSERT_EQ(ranges.size(), 4u);
  EXPECT_EQ(ranges.front().first, 0u);
  EXPECT_EQ(ranges.back().second, 1000u);
  for (std::size_t c = 1; c < ranges.size(); ++c) {
    EXPECT_EQ(ranges[c].first, ranges[c - 1].second);
  }
}

TEST(ThreadPool, ParallelForPropagatesLowestIndexException) {
  ThreadPool pool(4);
  // Both chunk 0 (caller) and a worker chunk throw; the lowest-index chunk's
  // exception must win so the observed error is scheduling-independent.
  try {
    pool.parallelFor(1000, [](std::size_t i) {
      if (i == 10) throw std::runtime_error("low");
      if (i == 990) throw std::invalid_argument("high");
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "low");
  }
}

TEST(ThreadPool, OneThreadRunsInlineOnCaller) {
  ThreadPool pool(1);
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<std::thread::id> seen(64);
  pool.parallelFor(seen.size(), [&](std::size_t i) { seen[i] = std::this_thread::get_id(); });
  for (const std::thread::id& id : seen) EXPECT_EQ(id, caller);
  auto future = pool.submit([] { return std::this_thread::get_id(); });
  EXPECT_EQ(future.get(), caller);
}

TEST(ThreadPool, MultiThreadUsesWorkers) {
  ThreadPool pool(4);
  std::mutex mutex;
  std::set<std::thread::id> threads;
  pool.parallelFor(10'000, [&](std::size_t) {
    std::lock_guard<std::mutex> lock(mutex);
    threads.insert(std::this_thread::get_id());
  });
  EXPECT_GT(threads.size(), 1u);
}

TEST(ThreadPool, NestedParallelForRunsInlineWithoutDeadlock) {
  ThreadPool pool(4);
  const std::size_t outer = 16, inner = 100;
  std::vector<std::vector<int>> sums(outer);
  pool.parallelFor(outer, [&](std::size_t o) {
    EXPECT_TRUE(insideParallelRegion());
    const std::thread::id worker = std::this_thread::get_id();
    std::vector<int>& out = sums[o];
    out.assign(inner, 0);
    // The nested loop must complete on this worker thread (inline), never
    // re-enter the queue — re-entering could deadlock with every worker
    // blocked waiting for the others' nested loops.
    pool.parallelFor(inner, [&](std::size_t i) {
      EXPECT_EQ(std::this_thread::get_id(), worker);
      out[i] = static_cast<int>(o * inner + i);
    });
  });
  for (std::size_t o = 0; o < outer; ++o) {
    for (std::size_t i = 0; i < inner; ++i) {
      EXPECT_EQ(sums[o][i], static_cast<int>(o * inner + i));
    }
  }
}

TEST(ThreadPool, DefaultThreadCountReadsEnvironment) {
  const char* saved = std::getenv("SCANDIAG_THREADS");
  const std::string restore = saved ? saved : "";

  ::setenv("SCANDIAG_THREADS", "3", 1);
  EXPECT_EQ(defaultThreadCount(), 3u);
  ThreadPool pool(0);
  EXPECT_EQ(pool.threadCount(), 3u);

  // Unset / zero / garbage fall back to hardware concurrency (>= 1).
  ::setenv("SCANDIAG_THREADS", "0", 1);
  EXPECT_GE(defaultThreadCount(), 1u);
  ::setenv("SCANDIAG_THREADS", "banana", 1);
  EXPECT_GE(defaultThreadCount(), 1u);
  ::unsetenv("SCANDIAG_THREADS");
  EXPECT_GE(defaultThreadCount(), 1u);

  if (saved) ::setenv("SCANDIAG_THREADS", restore.c_str(), 1);
}

TEST(ThreadPool, GlobalPoolThreadCountIsConfigurable) {
  setGlobalThreadCount(2);
  EXPECT_EQ(globalPool().threadCount(), 2u);
  setGlobalThreadCount(1);
  EXPECT_EQ(globalPool().threadCount(), 1u);
  setGlobalThreadCount(0);  // back to the environment default
  EXPECT_EQ(globalPool().threadCount(), defaultThreadCount());
}

TEST(ThreadPool, ThrowingChunkDoesNotStrandBatchOrKillWorkers) {
  ThreadPool pool(4);
  // Only a high index throws, so the failing chunk runs on a *worker*, not
  // the calling thread. The batch must still complete (RAII decrement), the
  // exception must reach the caller, and every worker must stay alive.
  for (int round = 0; round < 3; ++round) {
    EXPECT_THROW(pool.parallelFor(1000,
                                  [](std::size_t i) {
                                    if (i == 999) throw std::runtime_error("worker chunk");
                                  }),
                 std::runtime_error);
    // The pool is fully usable after the failed batch — a dead or wedged
    // worker would hang or under-cover this follow-up batch.
    std::vector<std::atomic<int>> hits(1000);
    pool.parallelFor(hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < hits.size(); ++i) ASSERT_EQ(hits[i].load(), 1);
  }
}

TEST(ThreadPool, EveryChunkThrowingStillRethrowsLowestIndex) {
  ThreadPool pool(8);
  try {
    pool.parallelFor(800, [](std::size_t i) {
      throw std::out_of_range("chunk of " + std::to_string(i));
    });
    FAIL() << "expected an exception";
  } catch (const std::out_of_range& e) {
    EXPECT_STREQ(e.what(), "chunk of 0");
  }
  auto future = pool.submit([] { return 1; });
  EXPECT_EQ(future.get(), 1);
}

TEST(ThreadPool, SubmitExceptionLeavesWorkersServing) {
  ThreadPool pool(2);
  for (int i = 0; i < 10; ++i) {
    auto bad = pool.submit([]() -> int { throw std::runtime_error("task"); });
    EXPECT_THROW(bad.get(), std::runtime_error);
    auto good = pool.submit([i] { return i; });
    EXPECT_EQ(good.get(), i);
  }
}

TEST(ThreadPool, DestructionAfterFailedBatchJoinsCleanly) {
  // A pool whose last act was a throwing batch must still join all workers
  // (no std::terminate from an exception escaping a worker thread).
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallelFor(100, [](std::size_t i) { if (i % 7 == 0) throw std::runtime_error("x"); }),
      std::runtime_error);
}

TEST(ThreadPool, ParallelForSumMatchesSerial) {
  const std::size_t n = 4096;
  std::vector<std::uint64_t> values(n);
  std::iota(values.begin(), values.end(), 1);
  const std::uint64_t expected = std::accumulate(values.begin(), values.end(), std::uint64_t{0});
  for (std::size_t threads : {1u, 2u, 8u}) {
    ThreadPool pool(threads);
    std::vector<std::uint64_t> squaredSlots(n);
    pool.parallelFor(n, [&](std::size_t i) { squaredSlots[i] = values[i]; });
    // Ordered reduction: identical result regardless of thread count.
    EXPECT_EQ(std::accumulate(squaredSlots.begin(), squaredSlots.end(), std::uint64_t{0}),
              expected)
        << threads << " threads";
  }
}

TEST(ThreadPoolSaturation, ManyProducersPostingAtCapacityAllComplete) {
  // `scandiag serve` posts every request's compute to the pool from handler
  // threads, so N external producers hammering submit() concurrently is the
  // production shape. Every future must resolve — a lost wakeup or a queue
  // race would deadlock the whole service under load.
  ThreadPool pool(4);
  constexpr std::size_t kProducers = 8;
  constexpr std::size_t kTasksEach = 200;
  std::atomic<std::uint64_t> total{0};
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&pool, &total, p] {
      std::vector<std::future<std::size_t>> futures;
      futures.reserve(kTasksEach);
      for (std::size_t t = 0; t < kTasksEach; ++t) {
        futures.push_back(pool.submit([p, t] { return p * kTasksEach + t; }));
      }
      std::uint64_t mine = 0;
      for (auto& f : futures) mine += f.get();
      total.fetch_add(mine);
    });
  }
  for (std::thread& t : producers) t.join();
  const std::uint64_t n = kProducers * kTasksEach;
  EXPECT_EQ(total.load(), n * (n - 1) / 2);
}

TEST(ThreadPoolSaturation, ProducersMixingFailuresDoNotWedgeThePool) {
  // Saturating producers where half the tasks throw: exceptions must ride
  // each future without killing workers or stranding the other producers.
  ThreadPool pool(2);
  constexpr std::size_t kProducers = 6;
  std::atomic<std::size_t> ok{0};
  std::atomic<std::size_t> failed{0};
  std::vector<std::thread> producers;
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&pool, &ok, &failed] {
      for (int t = 0; t < 100; ++t) {
        auto f = pool.submit([t]() -> int {
          if (t % 2 == 0) throw std::runtime_error("even task");
          return t;
        });
        try {
          f.get();
          ok.fetch_add(1);
        } catch (const std::runtime_error&) {
          failed.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : producers) t.join();
  EXPECT_EQ(ok.load(), kProducers * 50);
  EXPECT_EQ(failed.load(), kProducers * 50);
  auto alive = pool.submit([] { return 7; });
  EXPECT_EQ(alive.get(), 7);
}

TEST(ThreadPoolSaturation, ChunkExceptionPriorityHoldsUnderConcurrentSubmits) {
  // The lowest-index-chunk rethrow contract must not depend on the pool
  // being otherwise idle: background producers keep the queue hot while a
  // parallelFor with several throwing chunks runs. The caller must still see
  // chunk 0's exception, every round.
  ThreadPool pool(4);
  std::atomic<bool> stop{false};
  std::vector<std::thread> noise;
  for (int p = 0; p < 4; ++p) {
    noise.emplace_back([&pool, &stop] {
      while (!stop.load()) {
        auto f = pool.submit([] { return 1; });
        f.get();
      }
    });
  }
  for (int round = 0; round < 20; ++round) {
    try {
      pool.parallelFor(400, [](std::size_t i) {
        if (i % 100 == 0) throw std::out_of_range("chunk at " + std::to_string(i));
      });
      FAIL() << "expected an exception";
    } catch (const std::out_of_range& e) {
      EXPECT_STREQ(e.what(), "chunk at 0") << "round " << round;
    }
  }
  stop.store(true);
  for (std::thread& t : noise) t.join();
}

}  // namespace
}  // namespace scandiag
