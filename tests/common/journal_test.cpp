// Journal framing / durability-contract tests (test_common).
//
// The contract under test (common/journal.hpp): a torn tail — the one
// artifact a SIGKILL mid-append can produce — is tolerated and *reported*;
// every other malformation (flipped bytes, wild lengths, foreign files,
// digest mismatches) raises a typed JournalError subtype, never silent
// acceptance and never UB. The fuzz test drives that distinction through 100
// random truncation points.

#include "common/journal.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/errors.hpp"
#include "common/rng.hpp"

namespace scandiag {
namespace {

std::string tempPath(const std::string& name) {
  const std::string path = ::testing::TempDir() + "/" + name;
  std::filesystem::remove(path);
  return path;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  return bytes;
}

void dump(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TEST(Journal, Crc32MatchesKnownVector) {
  const std::string check = "123456789";
  EXPECT_EQ(crc32(check.data(), check.size()), 0xCBF43926u);
  // Chained partial buffers equal one pass.
  const std::uint32_t part = crc32(check.data(), 4);
  EXPECT_EQ(crc32(check.data() + 4, 5, part), 0xCBF43926u);
}

TEST(Journal, Fnv1a64MatchesKnownVectors) {
  EXPECT_EQ(fnv1a64(std::string("")), 0xcbf29ce484222325ULL);
  EXPECT_EQ(fnv1a64(std::string("a")), 0xaf63dc4c8601ec8cULL);
  // The u64 overload hashes the value's 8 little-endian bytes.
  const std::string bytes("\x2a\x00\x00\x00\x00\x00\x00\x00", 8);
  EXPECT_EQ(fnv1a64(std::uint64_t{42}, 0xcbf29ce484222325ULL), fnv1a64(bytes));
}

TEST(Journal, CreateAppendReadRoundTrip) {
  const std::string path = tempPath("roundtrip.journal");
  {
    JournalWriter writer = JournalWriter::create(path, 0xD16E57u, "unit test setup");
    writer.append(1, "first");
    writer.append(2, std::string("\x00\xFF""binary", 8));
    writer.append(1, "");
    EXPECT_EQ(writer.appendedRecords(), 3u);
  }
  const JournalContents contents = readJournal(path);
  EXPECT_EQ(contents.setupDigest, 0xD16E57u);
  EXPECT_EQ(contents.setupInfo, "unit test setup");
  EXPECT_FALSE(contents.truncatedTail);
  ASSERT_EQ(contents.records.size(), 3u);
  EXPECT_EQ(contents.records[0].type, 1u);
  EXPECT_EQ(contents.records[0].payload, "first");
  EXPECT_EQ(contents.records[1].type, 2u);
  EXPECT_EQ(contents.records[1].payload, std::string("\x00\xFF""binary", 8));
  EXPECT_EQ(contents.records[2].payload, "");
}

TEST(Journal, CreateRefusesExistingFile) {
  const std::string path = tempPath("exists.journal");
  { JournalWriter::create(path, 1, "a"); }
  EXPECT_THROW(JournalWriter::create(path, 1, "a"), JournalError);
  // The refused create must not have clobbered the original.
  EXPECT_EQ(readJournal(path).setupDigest, 1u);
}

TEST(Journal, MissingFileThrowsFileNotFound) {
  EXPECT_THROW(readJournal("/nonexistent/dir/x.journal"), FileNotFoundError);
}

TEST(Journal, TornTailIsToleratedAndReported) {
  const std::string path = tempPath("torn.journal");
  {
    JournalWriter writer = JournalWriter::create(path, 7, "torn");
    writer.append(1, "complete record one");
    writer.append(1, "complete record two");
    writer.append(1, "the record a crash tears");
  }
  const std::string full = slurp(path);
  // Cut mid-way through the last frame — the canonical kill-mid-append state.
  const std::uint64_t cut = full.size() - 5;
  std::filesystem::resize_file(path, cut);

  const JournalContents contents = readJournal(path);
  ASSERT_EQ(contents.records.size(), 2u);
  EXPECT_TRUE(contents.truncatedTail);
  EXPECT_LT(contents.truncatedAtOffset, cut);
  EXPECT_EQ(contents.records[1].payload, "complete record two");
}

TEST(Journal, AppendAfterTornTailLandsOnFrameBoundary) {
  const std::string path = tempPath("torn_append.journal");
  {
    JournalWriter writer = JournalWriter::create(path, 7, "torn");
    writer.append(1, "kept");
    writer.append(1, "torn away");
  }
  std::filesystem::resize_file(path, std::filesystem::file_size(path) - 3);

  JournalContents seen;
  {
    JournalWriter writer = JournalWriter::openForAppend(path, 7, &seen);
    EXPECT_TRUE(seen.truncatedTail);
    ASSERT_EQ(seen.records.size(), 1u);
    writer.append(2, "after resume");
  }
  // The tear was truncated away, so the reopened file reads back clean.
  const JournalContents contents = readJournal(path);
  EXPECT_FALSE(contents.truncatedTail);
  ASSERT_EQ(contents.records.size(), 2u);
  EXPECT_EQ(contents.records[0].payload, "kept");
  EXPECT_EQ(contents.records[1].payload, "after resume");
}

TEST(Journal, FlippedPayloadByteThrowsCorruptError) {
  const std::string path = tempPath("flipped.journal");
  {
    JournalWriter writer = JournalWriter::create(path, 7, "flip");
    writer.append(1, "record whose bytes will rot");
    writer.append(1, "trailing record");
  }
  std::string bytes = slurp(path);
  // Flip one byte inside the first record's payload (well past the header
  // frame, well before EOF — unambiguously mid-file corruption, not a tear).
  const std::size_t headerEnd = bytes.find("flip") + 4;
  bytes[headerEnd + 12] ^= 0x40;
  dump(path, bytes);
  EXPECT_THROW(readJournal(path), JournalCorruptError);
}

TEST(Journal, GarbageFileThrowsFormatError) {
  const std::string path = tempPath("garbage.journal");
  dump(path, "This is a perfectly ordinary text file, not a journal.\n");
  EXPECT_THROW(readJournal(path), JournalFormatError);
  EXPECT_THROW(JournalWriter::openForAppend(path, 7, nullptr), JournalFormatError);
}

TEST(Journal, EmptyFileThrowsFormatError) {
  const std::string path = tempPath("empty.journal");
  dump(path, "");
  EXPECT_THROW(readJournal(path), JournalFormatError);
}

TEST(Journal, DigestMismatchRefusesAppend) {
  const std::string path = tempPath("digest.journal");
  { JournalWriter::create(path, 0xAAAA, "setup A"); }
  try {
    JournalWriter::openForAppend(path, 0xBBBB, nullptr);
    FAIL() << "expected JournalDigestMismatchError";
  } catch (const JournalDigestMismatchError& e) {
    // The message must identify both setups so the operator can tell which
    // run the journal belongs to.
    EXPECT_NE(std::string(e.what()).find("aaaa"), std::string::npos) << e.what();
    EXPECT_NE(std::string(e.what()).find("setup A"), std::string::npos) << e.what();
  }
}

TEST(Journal, RandomTruncationIsAlwaysTornTailOrTypedError) {
  const std::string path = tempPath("fuzz_base.journal");
  {
    JournalWriter writer = JournalWriter::create(path, 99, "fuzz");
    for (int i = 0; i < 8; ++i) {
      writer.append(1, std::string(static_cast<std::size_t>(3 + i * 7), char('a' + i)));
    }
  }
  const std::string full = slurp(path);
  const std::string cutPath = tempPath("fuzz_cut.journal");
  Xoroshiro128 rng(0x7259C473u);
  for (int seed = 0; seed < 100; ++seed) {
    const std::size_t cut = static_cast<std::size_t>(rng.nextBelow(full.size() + 1));
    dump(cutPath, full.substr(0, cut));
    try {
      const JournalContents contents = readJournal(cutPath);
      // Any successful read is a prefix of the written records, in order.
      ASSERT_LE(contents.records.size(), 8u);
      for (std::size_t r = 0; r < contents.records.size(); ++r) {
        EXPECT_EQ(contents.records[r].payload,
                  std::string(static_cast<std::size_t>(3 + r * 7),
                              char('a' + static_cast<char>(r))));
      }
      if (cut < full.size()) {
        EXPECT_TRUE(contents.truncatedTail || contents.records.size() < 8u);
      }
    } catch (const JournalError&) {
      // A cut inside the header frame legitimately reads as "not a journal" —
      // typed, catchable, and exactly what the CLI reports. Anything else
      // (std::bad_alloc from a wild length, a crash) fails the test.
    }
  }
}

TEST(Journal, AtomicWriteFileReplacesWholeFile) {
  const std::string path = tempPath("atomic.json");
  atomicWriteFile(path, "{\"v\": 1}\n");
  EXPECT_EQ(slurp(path), "{\"v\": 1}\n");
  atomicWriteFile(path, "{\"v\": 2, \"longer\": true}\n");
  EXPECT_EQ(slurp(path), "{\"v\": 2, \"longer\": true}\n");
  // No temp litter on the success path.
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp." + std::to_string(::getpid())));
}

TEST(Journal, AtomicWriteFileCreatesParentDirectories) {
  const std::string dir = ::testing::TempDir() + "/atomic_sub";
  std::filesystem::remove_all(dir);
  const std::string path = dir + "/nested/out.json";
  atomicWriteFile(path, "nested");
  EXPECT_EQ(slurp(path), "nested");
}

}  // namespace
}  // namespace scandiag
