#include "common/bitvector.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "common/rng.hpp"

namespace scandiag {
namespace {

TEST(BitVector, DefaultIsEmpty) {
  BitVector v;
  EXPECT_EQ(v.size(), 0u);
  EXPECT_TRUE(v.empty());
  EXPECT_TRUE(v.none());
  EXPECT_EQ(v.count(), 0u);
  EXPECT_EQ(v.findFirst(), BitVector::npos);
}

TEST(BitVector, ConstructAllZero) {
  BitVector v(100);
  EXPECT_EQ(v.size(), 100u);
  EXPECT_EQ(v.count(), 0u);
  EXPECT_TRUE(v.none());
  for (std::size_t i = 0; i < 100; ++i) EXPECT_FALSE(v.test(i));
}

TEST(BitVector, ConstructAllOnesMasksTail) {
  BitVector v(70, true);
  EXPECT_EQ(v.count(), 70u);
  EXPECT_TRUE(v.all());
  // The tail word must not carry bits past size().
  EXPECT_EQ(v.word(1), (BitVector::Word{1} << 6) - 1);
}

TEST(BitVector, SetResetFlipTest) {
  BitVector v(130);
  v.set(0);
  v.set(64);
  v.set(129);
  EXPECT_TRUE(v.test(0));
  EXPECT_TRUE(v.test(64));
  EXPECT_TRUE(v.test(129));
  EXPECT_EQ(v.count(), 3u);
  v.reset(64);
  EXPECT_FALSE(v.test(64));
  v.flip(64);
  EXPECT_TRUE(v.test(64));
  v.flip(64);
  EXPECT_EQ(v.count(), 2u);
}

TEST(BitVector, OutOfRangeAccessThrows) {
  BitVector v(10);
  EXPECT_THROW(v.test(10), std::invalid_argument);
  EXPECT_THROW(v.set(10), std::invalid_argument);
  EXPECT_THROW(v.flip(10), std::invalid_argument);
}

TEST(BitVector, FindFirstAndNext) {
  BitVector v(200);
  v.set(5);
  v.set(64);
  v.set(199);
  EXPECT_EQ(v.findFirst(), 5u);
  EXPECT_EQ(v.findNext(5), 64u);
  EXPECT_EQ(v.findNext(64), 199u);
  EXPECT_EQ(v.findNext(199), BitVector::npos);
}

TEST(BitVector, FindNextFromUnsetPosition) {
  BitVector v(100);
  v.set(50);
  EXPECT_EQ(v.findNext(0), 50u);
  EXPECT_EQ(v.findNext(49), 50u);
  EXPECT_EQ(v.findNext(50), BitVector::npos);
}

TEST(BitVector, FindNextPastTheEndStaysNpos) {
  // Regression: findNext(npos) used to compute npos + 1 == 0 and wrap around
  // to the first set bit, turning `i = findNext(i)` loops infinite.
  BitVector v(100);
  v.set(0);
  v.set(99);
  EXPECT_EQ(v.findNext(BitVector::npos), BitVector::npos);
  EXPECT_EQ(v.findNext(99), BitVector::npos);   // last valid index
  EXPECT_EQ(v.findNext(100), BitVector::npos);  // one past the end
  EXPECT_EQ(v.findNext(12345), BitVector::npos);
}

TEST(BitVector, FindNextOnEmptyVector) {
  const BitVector v;
  EXPECT_EQ(v.findFirst(), BitVector::npos);
  EXPECT_EQ(v.findNext(0), BitVector::npos);
  EXPECT_EQ(v.findNext(BitVector::npos), BitVector::npos);
}

TEST(BitVector, IterationMatchesToIndices) {
  BitVector v(300);
  const std::vector<std::size_t> expected = {0, 63, 64, 65, 128, 250, 299};
  for (std::size_t i : expected) v.set(i);
  EXPECT_EQ(v.toIndices(), expected);
  std::vector<std::size_t> walked;
  for (std::size_t i = v.findFirst(); i != BitVector::npos; i = v.findNext(i))
    walked.push_back(i);
  EXPECT_EQ(walked, expected);
}

TEST(BitVector, BitwiseOps) {
  BitVector a = BitVector::fromString("110010");
  BitVector b = BitVector::fromString("011011");
  EXPECT_EQ((a & b).toString(), "010010");
  EXPECT_EQ((a | b).toString(), "111011");
  EXPECT_EQ((a ^ b).toString(), "101001");
  BitVector c = a;
  c.andNot(b);
  EXPECT_EQ(c.toString(), "100000");
}

TEST(BitVector, SizeMismatchThrows) {
  BitVector a(10), b(11);
  EXPECT_THROW(a &= b, std::invalid_argument);
  EXPECT_THROW(a |= b, std::invalid_argument);
  EXPECT_THROW(a ^= b, std::invalid_argument);
  EXPECT_THROW(a.intersects(b), std::invalid_argument);
  EXPECT_THROW(a.isSubsetOf(b), std::invalid_argument);
}

TEST(BitVector, IntersectsAndSubset) {
  BitVector a(128), b(128);
  a.set(3);
  a.set(100);
  b.set(100);
  EXPECT_TRUE(a.intersects(b));
  EXPECT_TRUE(b.isSubsetOf(a));
  EXPECT_FALSE(a.isSubsetOf(b));
  b.reset(100);
  EXPECT_FALSE(a.intersects(b));
  EXPECT_TRUE(b.isSubsetOf(a));  // empty set is a subset of everything
}

TEST(BitVector, SetAllResetAll) {
  BitVector v(77);
  v.setAll();
  EXPECT_EQ(v.count(), 77u);
  v.resetAll();
  EXPECT_TRUE(v.none());
}

TEST(BitVector, ResizeGrowZeroAndOne) {
  BitVector v(10);
  v.set(9);
  v.resize(100);
  EXPECT_EQ(v.count(), 1u);
  EXPECT_TRUE(v.test(9));
  BitVector w(10, true);
  w.resize(100, true);
  EXPECT_EQ(w.count(), 100u);
}

TEST(BitVector, ResizeShrinkMasksTail) {
  BitVector v(100, true);
  v.resize(65);
  EXPECT_EQ(v.count(), 65u);
  v.resize(100);
  EXPECT_EQ(v.count(), 65u);  // regrown bits are zero
}

TEST(BitVector, SetWordMasksLastWord) {
  BitVector v(66);
  v.setWord(1, ~BitVector::Word{0});
  EXPECT_EQ(v.count(), 2u);  // only bits 64, 65 exist in word 1
}

TEST(BitVector, StringRoundTrip) {
  const std::string s = "1010011101";
  EXPECT_EQ(BitVector::fromString(s).toString(), s);
  EXPECT_THROW(BitVector::fromString("10x1"), std::invalid_argument);
}

TEST(BitVector, EqualityRequiresSizeAndBits) {
  BitVector a(10), b(10), c(11);
  a.set(3);
  EXPECT_NE(a, b);
  b.set(3);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

class BitVectorSizeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BitVectorSizeSweep, RandomOpsAgainstReference) {
  const std::size_t n = GetParam();
  Xoroshiro128 rng(n * 7919 + 1);
  BitVector v(n);
  std::vector<bool> ref(n, false);
  for (int step = 0; step < 500; ++step) {
    const std::size_t i = rng.nextBelow(n);
    switch (rng.nextBelow(3)) {
      case 0:
        v.set(i);
        ref[i] = true;
        break;
      case 1:
        v.reset(i);
        ref[i] = false;
        break;
      default:
        v.flip(i);
        ref[i] = !ref[i];
        break;
    }
  }
  std::size_t expectedCount = 0;
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(v.test(i), ref[i]) << "bit " << i;
    expectedCount += ref[i];
  }
  EXPECT_EQ(v.count(), expectedCount);
}

INSTANTIATE_TEST_SUITE_P(Sizes, BitVectorSizeSweep,
                         ::testing::Values(1, 2, 63, 64, 65, 127, 128, 129, 1000, 4096));

}  // namespace
}  // namespace scandiag
