// Structural hashing + core-class index tests (test_soc).
//
// The dedup machinery is only sound if the hash discriminates structure
// (changing one gate type changes the class) while ignoring names (two
// renamed copies share a class) — both directions are tested here, plus the
// determinism, permutation-invariance, and counter contracts the sweep
// protocol leans on.

#include "soc/core_class.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "netlist/synthetic_generator.hpp"
#include "obs/metrics.hpp"
#include "soc/meta_scan_builder.hpp"
#include "soc/soc_builder.hpp"

namespace scandiag {
namespace {

/// Two-input mux-ish block; `mid` lets the near-miss test flip one gate type
/// while keeping the wiring byte-for-byte identical.
Netlist tinyNetlist(const std::string& prefix, GateType mid) {
  Netlist nl;
  nl.setName(prefix);
  const GateId a = nl.addInput(prefix + "_a");
  const GateId b = nl.addInput(prefix + "_b");
  const GateId ff = nl.addDff(prefix + "_ff");
  const GateId g = nl.addGate(mid, prefix + "_g", {a, b});
  const GateId h = nl.addGate(GateType::Nand, prefix + "_h", {g, ff});
  nl.setDffInput(ff, h);
  nl.markOutput(h);
  nl.validate();
  return nl;
}

TEST(StructuralNetlistHash, DeterministicAcrossGenerations) {
  const Netlist first = generateNamedCircuit("s298");
  const Netlist second = generateNamedCircuit("s298");
  EXPECT_EQ(structuralNetlistHash(first), structuralNetlistHash(second));
}

TEST(StructuralNetlistHash, DifferentModulesDiffer) {
  EXPECT_NE(structuralNetlistHash(generateNamedCircuit("s298")),
            structuralNetlistHash(generateNamedCircuit("s344")));
}

TEST(StructuralNetlistHash, NamesDoNotEnterTheHash) {
  const Netlist left = tinyNetlist("left", GateType::And);
  const Netlist right = tinyNetlist("completely_different", GateType::And);
  EXPECT_EQ(structuralNetlistHash(left), structuralNetlistHash(right));
}

TEST(StructuralNetlistHash, NearMissOneGateTypeChangesTheHash) {
  // Same wiring, same names, same counts — only gate g's type differs.
  const Netlist andVariant = tinyNetlist("m", GateType::And);
  const Netlist orVariant = tinyNetlist("m", GateType::Or);
  EXPECT_NE(structuralNetlistHash(andVariant), structuralNetlistHash(orVariant));
}

TEST(CoreClassIndex, ReplicatedSocCollapsesToOneClass) {
  const Soc soc = buildReplicatedSoc("s298", 5, 2);
  const auto before = obs::MetricsRegistry::instance().snapshot();
  const CoreClassIndex index(soc);
  const auto after = obs::MetricsRegistry::instance().snapshot();

  ASSERT_EQ(index.classCount(), 1u);
  EXPECT_EQ(index.representative(0), 0u);
  EXPECT_EQ(index.instancesOf(0).size(), 5u);
  for (std::size_t k = 0; k < soc.coreCount(); ++k) EXPECT_EQ(index.classOf(k), 0u);
  EXPECT_EQ(after.counter(obs::Counter::CoreClassMisses) -
                before.counter(obs::Counter::CoreClassMisses),
            1u);
  EXPECT_EQ(after.counter(obs::Counter::CoreClassHits) -
                before.counter(obs::Counter::CoreClassHits),
            4u);
}

TEST(CoreClassIndex, ReplicatedSocSharesOneNetlistObject) {
  const Soc soc = buildReplicatedSoc("s344", 4, 2);
  for (std::size_t k = 1; k < soc.coreCount(); ++k) {
    EXPECT_EQ(soc.core(0).netlist.get(), soc.core(k).netlist.get());
  }
}

TEST(CoreClassIndex, RepeatedModulesInMixedSocShareAClass) {
  const Soc soc = buildSocFromModules("mix", {"s298", "s344", "s298", "s344", "s298"}, 2);
  const CoreClassIndex index(soc);
  ASSERT_EQ(index.classCount(), 2u);
  EXPECT_EQ(index.classOf(0), index.classOf(2));
  EXPECT_EQ(index.classOf(0), index.classOf(4));
  EXPECT_EQ(index.classOf(1), index.classOf(3));
  EXPECT_NE(index.classOf(0), index.classOf(1));
  EXPECT_EQ(index.instancesOf(index.classOf(0)), (std::vector<std::size_t>{0, 2, 4}));
}

TEST(CoreClassIndex, InstancePermutationPreservesClassesAndHashes) {
  const Soc forward = buildSocFromModules("fwd", {"s298", "s344", "s298"}, 2);
  const Soc reversed = buildSocFromModules("rev", {"s344", "s298", "s298"}, 2);
  const CoreClassIndex fi(forward);
  const CoreClassIndex ri(reversed);
  ASSERT_EQ(fi.classCount(), 2u);
  ASSERT_EQ(ri.classCount(), 2u);
  // Ordinals follow first appearance, so they swap — but the hash of the
  // class holding each module is permutation-invariant.
  EXPECT_EQ(fi.classHash(fi.classOf(0)), ri.classHash(ri.classOf(1)));
  EXPECT_EQ(fi.classHash(fi.classOf(1)), ri.classHash(ri.classOf(0)));
}

TEST(CoreClassIndex, HashMatchDedupsWithoutSharedPointers) {
  // Two instances built from separate generator calls: distinct Netlist
  // objects, same structure. The identity fast path cannot fire; the hash
  // match must.
  std::vector<CoreInstance> cores(2);
  cores[0].name = "a";
  cores[0].netlist = std::make_shared<const Netlist>(generateNamedCircuit("s298"));
  cores[1].name = "b";
  cores[1].netlist = std::make_shared<const Netlist>(generateNamedCircuit("s298"));
  ASSERT_NE(cores[0].netlist.get(), cores[1].netlist.get());

  std::size_t offset = 0;
  std::vector<std::size_t> cellCounts;
  for (auto& c : cores) {
    c.cellOffset = offset;
    offset += c.numCells();
    cellCounts.push_back(c.numCells());
  }
  const Soc soc("two-copies", std::move(cores), buildMetaChains(cellCounts, 1));
  const CoreClassIndex index(soc);
  EXPECT_EQ(index.classCount(), 1u);
}

}  // namespace
}  // namespace scandiag
