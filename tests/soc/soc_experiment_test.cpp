#include "soc/soc_experiment_driver.hpp"

#include <gtest/gtest.h>

#include "soc/soc_builder.hpp"

namespace scandiag {
namespace {

Soc miniSoc(std::size_t tamWidth = 1) {
  return buildSocFromModules("mini", {"s298", "s344", "s526"}, tamWidth);
}

WorkloadConfig quickWorkload() {
  WorkloadConfig wc;
  wc.numPatterns = 64;
  wc.numFaults = 40;
  return wc;
}

TEST(SocExperiment, ResponsesAreGlobalAndConfinedToFailingCore) {
  const Soc soc = miniSoc();
  const std::size_t coreIdx = 1;
  const auto responses = socResponsesForFailingCore(soc, coreIdx, quickWorkload());
  ASSERT_FALSE(responses.empty());
  const CoreInstance& core = soc.core(coreIdx);
  for (const FaultResponse& r : responses) {
    EXPECT_TRUE(r.detected());
    EXPECT_EQ(r.failingCells.size(), soc.totalCells());
    for (std::size_t cell : r.failingCells.toIndices()) {
      EXPECT_GE(cell, core.cellOffset);
      EXPECT_LT(cell, core.cellOffset + core.numCells());
    }
    // Parallel arrays consistent.
    ASSERT_EQ(r.failingCellOrdinals.size(), r.errorStreams.size());
    for (std::size_t ord : r.failingCellOrdinals) EXPECT_TRUE(r.failingCells.test(ord));
  }
}

TEST(SocExperiment, DifferentCoresGetDifferentFaultSamples) {
  const Soc soc = miniSoc();
  const auto r0 = socResponsesForFailingCore(soc, 0, quickWorkload());
  const auto r2 = socResponsesForFailingCore(soc, 2, quickWorkload());
  ASSERT_FALSE(r0.empty());
  ASSERT_FALSE(r2.empty());
  EXPECT_FALSE(r0[0].failingCells.intersects(r2[0].failingCells));
}

TEST(SocExperiment, DiagnosisOnSocIsSound) {
  const Soc soc = miniSoc();
  DiagnosisConfig config;
  config.scheme = SchemeKind::TwoStep;
  config.numPartitions = 4;
  config.groupsPerPartition = 8;
  config.numPatterns = 64;
  const DiagnosisPipeline pipeline(soc.topology(), config);
  for (std::size_t k = 0; k < soc.coreCount(); ++k) {
    for (const FaultResponse& r : socResponsesForFailingCore(soc, k, quickWorkload())) {
      const FaultDiagnosis d = pipeline.diagnose(r);
      EXPECT_TRUE(r.failingCells.isSubsetOf(d.candidates.cells));
    }
  }
}

TEST(SocExperiment, EvaluateSocDrCoversEveryCore) {
  const Soc soc = miniSoc();
  DiagnosisConfig config;
  config.scheme = SchemeKind::TwoStep;
  config.numPartitions = 4;
  config.groupsPerPartition = 8;
  config.numPatterns = 64;
  const auto rows = evaluateSocDr(soc, quickWorkload(), config);
  ASSERT_EQ(rows.size(), soc.coreCount());
  for (std::size_t k = 0; k < rows.size(); ++k) {
    EXPECT_EQ(rows[k].failingCore, soc.core(k).name);
    EXPECT_GT(rows[k].report.faults, 0u);
    EXPECT_GE(rows[k].report.dr, 0.0);
  }
}

TEST(SocExperiment, MultiChainSocWorks) {
  const Soc soc = miniSoc(4);
  EXPECT_EQ(soc.topology().numChains(), 4u);
  DiagnosisConfig config;
  config.scheme = SchemeKind::TwoStep;
  config.numPartitions = 4;
  config.groupsPerPartition = 4;
  config.numPatterns = 64;
  const DiagnosisPipeline pipeline(soc.topology(), config);
  const auto responses = socResponsesForFailingCore(soc, 0, quickWorkload());
  const DrReport report = pipeline.evaluate(responses);
  EXPECT_GT(report.faults, 0u);
}

TEST(SocExperiment, InvalidCoreIndexRejected) {
  const Soc soc = miniSoc();
  EXPECT_THROW(socResponsesForFailingCore(soc, 99, quickWorkload()), std::invalid_argument);
}

}  // namespace
}  // namespace scandiag
