// merge-journals corruption suite (test_soc).
//
// Merging hides exactly the failures a single journal's digest check would
// catch, so every refusal documented in journal_merge.hpp gets a test. The
// journals are crafted record by record through the same SweepCheckpoint
// writer the shard driver uses — real frames, real CRCs.

#include "soc/journal_merge.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/journal.hpp"
#include "soc/soc_report.hpp"

namespace scandiag {
namespace {

constexpr std::uint64_t kBase = 0xBA5ED157ULL;
constexpr std::uint64_t kSweep = 42;

std::string tempPath(const std::string& name) {
  const std::string path = ::testing::TempDir() + "/" + name;
  std::filesystem::remove(path);
  return path;
}

SweepManifestRecord manifest(std::uint32_t responseCount = 4) {
  SweepManifestRecord m;
  m.sweepId = kSweep;
  m.classHash = 7;
  m.classOrdinal = 0;
  m.responseCount = responseCount;
  m.instanceCount = 2;
  m.className = "s298#0";
  return m;
}

FaultRecord fault(std::uint32_t index, std::uint64_t candidates = 10) {
  FaultRecord f;
  f.sweepId = kSweep;
  f.faultIndex = index;
  f.candidateCount = candidates;
  f.actualCount = 1;
  f.verdictDigest = 0xD16E57 + index;
  f.counterDeltas = {{0, 3}, {2, 1}};
  return f;
}

/// Writes one shard journal: meta + manifest + the given fault records.
std::string writeShard(const std::string& name, std::uint32_t shardIndex,
                       std::uint32_t shardCount, const std::vector<FaultRecord>& faults,
                       std::uint64_t baseDigest = kBase,
                       const SweepManifestRecord& m = manifest(),
                       const std::string& spec = "rep:s298x2:w1") {
  const std::string path = tempPath(name);
  SweepCheckpoint checkpoint(path, baseDigest + shardIndex, "merge test", false);
  ShardMetaRecord meta;
  meta.shardIndex = shardIndex;
  meta.shardCount = shardCount;
  meta.baseDigest = baseDigest;
  meta.socSpec = spec;
  checkpoint.appendAux(kShardMetaRecordType, encodeShardMetaRecord(meta));
  checkpoint.appendAux(kSweepManifestRecordType, encodeSweepManifestRecord(m));
  for (const FaultRecord& f : faults) checkpoint.record(f);
  return path;
}

TEST(JournalMerge, MergesACleanShardSet) {
  const std::string a = writeShard("clean-0.journal", 0, 2, {fault(0), fault(1)});
  const std::string b = writeShard("clean-1.journal", 1, 2, {fault(2), fault(3)});
  const MergedJournals merged = mergeShardJournals({b, a});  // order-independent
  EXPECT_EQ(merged.shardCount, 2u);
  EXPECT_EQ(merged.baseDigest, kBase);
  EXPECT_EQ(merged.socSpec, "rep:s298x2:w1");
  EXPECT_EQ(merged.faultRecordsMerged, 4u);
  ASSERT_EQ(merged.manifests.size(), 1u);
  EXPECT_EQ(merged.manifests[0].className, "s298#0");
  SocReportMeta meta{merged.socSpec, merged.baseDigest};
  const std::string report = renderSocReport(meta, merged.manifests, merged.records);
  EXPECT_NE(report.find("\"soc\": \"rep:s298x2:w1\""), std::string::npos);
}

TEST(JournalMerge, TornShardTailIsRefused) {
  const std::string a = writeShard("torn-0.journal", 0, 2, {fault(0), fault(1)});
  const std::string b = writeShard("torn-1.journal", 1, 2, {fault(2), fault(3)});
  {
    std::ofstream out(b, std::ios::binary | std::ios::app);
    out.write("\xde\xad\xbe", 3);  // half a frame: the shard died mid-append
  }
  EXPECT_THROW(mergeShardJournals({a, b}), JournalCorruptError);
}

TEST(JournalMerge, OverlappingFaultRangesAreRefused) {
  const std::string a = writeShard("overlap-0.journal", 0, 2, {fault(0), fault(1)});
  const std::string b = writeShard("overlap-1.journal", 1, 2, {fault(1), fault(2)});
  EXPECT_THROW(mergeShardJournals({a, b}), JournalCorruptError);
}

TEST(JournalMerge, ForeignBaseDigestIsRefused) {
  const std::string a = writeShard("foreign-0.journal", 0, 2, {fault(0)});
  const std::string b = writeShard("foreign-1.journal", 1, 2, {fault(2)}, kBase + 1);
  EXPECT_THROW(mergeShardJournals({a, b}), JournalDigestMismatchError);
}

TEST(JournalMerge, MissingShardIsRefused) {
  const std::string a = writeShard("missing-0.journal", 0, 2, {fault(0), fault(1)});
  EXPECT_THROW(mergeShardJournals({a}), JournalCorruptError);
}

TEST(JournalMerge, ShardCountDisagreementIsRefused) {
  const std::string a = writeShard("count-0.journal", 0, 2, {fault(0)});
  const std::string b = writeShard("count-1.journal", 1, 3, {fault(2)});
  EXPECT_THROW(mergeShardJournals({a, b}), JournalCorruptError);
}

TEST(JournalMerge, DuplicateShardIndexIsRefused) {
  const std::string a = writeShard("dup-a.journal", 0, 2, {fault(0)});
  const std::string b = writeShard("dup-b.journal", 0, 2, {fault(1)});
  EXPECT_THROW(mergeShardJournals({a, b}), JournalCorruptError);
}

TEST(JournalMerge, JournalWithoutShardMetaIsRefused) {
  const std::string path = tempPath("no-meta.journal");
  {
    SweepCheckpoint checkpoint(path, kBase, "merge test", false);
    checkpoint.appendAux(kSweepManifestRecordType, encodeSweepManifestRecord(manifest()));
    checkpoint.record(fault(0));
  }
  EXPECT_THROW(mergeShardJournals({path}), JournalFormatError);
}

TEST(JournalMerge, ManifestDisagreementIsRefused) {
  const std::string a = writeShard("mandis-0.journal", 0, 2, {fault(0)});
  const std::string b =
      writeShard("mandis-1.journal", 1, 2, {fault(2)}, kBase, manifest(/*responseCount=*/8));
  EXPECT_THROW(mergeShardJournals({a, b}), JournalCorruptError);
}

TEST(JournalMerge, WithinJournalDuplicatesResolveLastWriteWins) {
  // Crash/resume residue: the same fault journaled twice in ONE journal is
  // legal and the later record wins — exactly SweepCheckpoint's replay rule.
  const std::string a =
      writeShard("dupfault-0.journal", 0, 2, {fault(0, 10), fault(1), fault(0, 99)});
  const std::string b = writeShard("dupfault-1.journal", 1, 2, {fault(2), fault(3)});
  const MergedJournals merged = mergeShardJournals({a, b});
  EXPECT_EQ(merged.records.at({kSweep, 0}).candidateCount, 99u);
  EXPECT_EQ(merged.faultRecordsMerged, 4u);
}

TEST(JournalMerge, FaultIndexBeyondManifestRangeIsRefused) {
  const std::string a = writeShard("range-0.journal", 0, 2, {fault(0), fault(9)});
  const std::string b = writeShard("range-1.journal", 1, 2, {fault(2)});
  EXPECT_THROW(mergeShardJournals({a, b}), JournalCorruptError);
}

TEST(JournalMerge, RecordForUnknownSweepIsRefused) {
  FaultRecord stray = fault(0);
  stray.sweepId = 99;  // no manifest for sweep 99
  const std::string a = writeShard("stray-0.journal", 0, 2, {fault(0), stray});
  const std::string b = writeShard("stray-1.journal", 1, 2, {fault(2), fault(3)});
  EXPECT_THROW(mergeShardJournals({a, b}), JournalCorruptError);
}

TEST(JournalMerge, IncompleteSweepFailsAtRender) {
  // A missing fault index is not a merge error (the journals are internally
  // consistent) — but rendering must refuse to invent partial numbers.
  const std::string a = writeShard("hole-0.journal", 0, 2, {fault(0)});  // fault 1 never ran
  const std::string b = writeShard("hole-1.journal", 1, 2, {fault(2), fault(3)});
  const MergedJournals merged = mergeShardJournals({a, b});
  SocReportMeta meta{merged.socSpec, merged.baseDigest};
  EXPECT_THROW(renderSocReport(meta, merged.manifests, merged.records), JournalCorruptError);
}

TEST(JournalMerge, NoJournalsIsRefused) {
  EXPECT_THROW(mergeShardJournals({}), JournalFormatError);
}

}  // namespace
}  // namespace scandiag
