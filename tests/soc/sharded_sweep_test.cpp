// Class-sweep sharding contract tests (test_soc).
//
// The load-bearing claim of the sharded driver: N shard processes, each
// journaling its own fault range, merge back into a report BYTE-identical to
// the unsharded run — including after one shard is killed mid-run and
// resumed. These tests run the whole loop in-process (shard runs are
// independent SweepCheckpoint instances, exactly what separate processes
// would hold) so the identity is asserted on real journals, not mocks.

#include "soc/sharded_sweep.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/journal.hpp"
#include "soc/journal_merge.hpp"
#include "soc/soc_builder.hpp"
#include "soc/soc_report.hpp"

namespace scandiag {
namespace {

std::string tempPath(const std::string& name) {
  const std::string path = ::testing::TempDir() + "/" + name;
  std::filesystem::remove(path);
  return path;
}

DiagnosisConfig sweepConfig() {
  DiagnosisConfig c;
  c.scheme = SchemeKind::TwoStep;
  c.numPartitions = 4;
  c.groupsPerPartition = 4;
  c.numPatterns = 48;
  return c;
}

WorkloadConfig sweepWorkload() {
  WorkloadConfig w;
  w.numPatterns = 48;
  w.numFaults = 24;
  return w;
}

constexpr std::uint64_t kBaseDigest = 0x50C0FFEEBA5ED157ULL;
constexpr const char* kSpec = "rep:s298x3:w2";

SocSweepOptions shardOptions(std::uint32_t index, std::uint32_t count) {
  SocSweepOptions options;
  options.shard.index = index;
  options.shard.count = count;
  options.baseDigest = kBaseDigest;
  options.socSpec = kSpec;
  return options;
}

/// Unsharded reference report, rendered from a live MemoryRecordSink.
std::string unshardedReport(const Soc& soc) {
  MemoryRecordSink collector;
  const SocSweepResult result = runSocClassSweep(soc, sweepWorkload(), sweepConfig(),
                                                 shardOptions(0, 1), {}, nullptr, &collector);
  SocReportMeta meta{kSpec, kBaseDigest};
  return renderSocReport(meta, result.manifests, collector.records());
}

TEST(ParseShardSpec, AcceptsAndRejects) {
  EXPECT_EQ(parseShardSpec("0/4").index, 0u);
  EXPECT_EQ(parseShardSpec("3/4").index, 3u);
  EXPECT_EQ(parseShardSpec("3/4").count, 4u);
  EXPECT_THROW(parseShardSpec("4/4"), std::invalid_argument);
  EXPECT_THROW(parseShardSpec("4"), std::invalid_argument);
  EXPECT_THROW(parseShardSpec("/4"), std::invalid_argument);
  EXPECT_THROW(parseShardSpec("a/b"), std::invalid_argument);
  EXPECT_THROW(parseShardSpec("0/0"), std::invalid_argument);
}

TEST(ShardedSweep, ShardRangesTileTheSweep) {
  const Soc soc = buildReplicatedSoc("s298", 3, 2);
  MemoryRecordSink whole;
  runSocClassSweep(soc, sweepWorkload(), sweepConfig(), shardOptions(0, 1), {}, nullptr, &whole);

  MemoryRecordSink parts;
  for (std::uint32_t s = 0; s < 3; ++s) {
    runSocClassSweep(soc, sweepWorkload(), sweepConfig(), shardOptions(s, 3), {}, nullptr,
                     &parts);
  }
  ASSERT_EQ(parts.records().size(), whole.records().size());
  for (const auto& [key, record] : whole.records()) {
    const auto it = parts.records().find(key);
    ASSERT_NE(it, parts.records().end());
    EXPECT_EQ(it->second.candidateCount, record.candidateCount);
    EXPECT_EQ(it->second.actualCount, record.actualCount);
    EXPECT_EQ(it->second.verdictDigest, record.verdictDigest);
    EXPECT_EQ(it->second.counterDeltas, record.counterDeltas);
  }
}

TEST(ShardedSweep, MergedShardJournalsReproduceUnshardedReportByteForByte) {
  const Soc soc = buildReplicatedSoc("s298", 3, 2);
  const std::string reference = unshardedReport(soc);

  std::vector<std::string> journals;
  for (std::uint32_t s = 0; s < 4; ++s) {
    const std::string path = tempPath("shard4-" + std::to_string(s) + ".journal");
    journals.push_back(path);
    SweepCheckpoint checkpoint(path, kBaseDigest + s, "shard test", false);
    runSocClassSweep(soc, sweepWorkload(), sweepConfig(), shardOptions(s, 4), {}, &checkpoint,
                     nullptr);
  }

  const MergedJournals merged = mergeShardJournals(journals);
  EXPECT_EQ(merged.socSpec, kSpec);
  SocReportMeta meta{merged.socSpec, merged.baseDigest};
  EXPECT_EQ(renderSocReport(meta, merged.manifests, merged.records), reference);
}

TEST(ShardedSweep, KilledShardResumedThenMergedStillByteIdentical) {
  const Soc soc = buildReplicatedSoc("s298", 3, 2);
  const std::string reference = unshardedReport(soc);

  std::vector<std::string> journals;
  for (std::uint32_t s = 0; s < 2; ++s) {
    const std::string path = tempPath("kill-" + std::to_string(s) + ".journal");
    journals.push_back(path);
    SweepCheckpoint checkpoint(path, kBaseDigest + 100 + s, "kill test", false);
    runSocClassSweep(soc, sweepWorkload(), sweepConfig(), shardOptions(s, 2), {}, &checkpoint,
                     nullptr);
  }

  // Simulate shard 1 dying mid-append: keep a prefix of its journal plus a
  // torn half-record tail, then "restart the process" (fresh SweepCheckpoint
  // with resume=true) and re-run the shard.
  {
    std::ifstream in(journals[1], std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
    ASSERT_GT(bytes.size(), 200u);
    std::ofstream out(journals[1], std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 2));
    out.write("\x13\x37", 2);
  }
  {
    SweepCheckpoint resumed(journals[1], kBaseDigest + 101, "kill test", true);
    EXPECT_TRUE(resumed.hadTruncatedTail());
    runSocClassSweep(soc, sweepWorkload(), sweepConfig(), shardOptions(1, 2), {}, &resumed,
                     nullptr);
  }

  const MergedJournals merged = mergeShardJournals(journals);
  SocReportMeta meta{merged.socSpec, merged.baseDigest};
  EXPECT_EQ(renderSocReport(meta, merged.manifests, merged.records), reference);
}

TEST(ShardedSweep, NoDedupEvaluatesEveryInstanceUnderDistinctSweeps) {
  const Soc soc = buildReplicatedSoc("s298", 3, 2);
  SocSweepOptions options = shardOptions(0, 1);
  options.dedupClasses = false;
  MemoryRecordSink collector;
  const SocSweepResult result =
      runSocClassSweep(soc, sweepWorkload(), sweepConfig(), options, {}, nullptr, &collector);
  EXPECT_EQ(result.classCount, 3u);
  ASSERT_EQ(result.classes.size(), 3u);
  // Identical structure → identical class hash, but the ordinal keeps the
  // sweep ids (and so the journal keys) distinct.
  EXPECT_EQ(result.classes[0].classHash, result.classes[1].classHash);
  EXPECT_NE(socClassSweepId(sweepConfig(), result.classes[0].classHash, 0),
            socClassSweepId(sweepConfig(), result.classes[1].classHash, 1));
  // Same class workload → the per-instance reports agree with each other.
  EXPECT_EQ(result.classes[0].report.sumCandidates, result.classes[1].report.sumCandidates);
  EXPECT_EQ(result.classes[0].report.sumActual, result.classes[2].report.sumActual);
}

TEST(ShardedSweep, DedupReportMatchesNoDedupReportPerInstance) {
  // One class evaluation must stand for every sibling: the deduped class row
  // carries the same DR sums a from-scratch evaluation of any instance gets.
  const Soc soc = buildReplicatedSoc("s298", 4, 2);
  MemoryRecordSink dedupRecords;
  const SocSweepResult dedup = runSocClassSweep(soc, sweepWorkload(), sweepConfig(),
                                                shardOptions(0, 1), {}, nullptr, &dedupRecords);
  SocSweepOptions noDedupOptions = shardOptions(0, 1);
  noDedupOptions.dedupClasses = false;
  const SocSweepResult scratch = runSocClassSweep(soc, sweepWorkload(), sweepConfig(),
                                                  noDedupOptions, {}, nullptr, nullptr);
  ASSERT_EQ(dedup.classCount, 1u);
  ASSERT_EQ(scratch.classCount, 4u);
  for (const SocClassRow& row : scratch.classes) {
    EXPECT_EQ(row.report.sumCandidates, dedup.classes[0].report.sumCandidates);
    EXPECT_EQ(row.report.sumActual, dedup.classes[0].report.sumActual);
    EXPECT_EQ(row.responseCount, dedup.classes[0].responseCount);
  }
  EXPECT_EQ(dedup.classes[0].instanceCount, 4u);
}

}  // namespace
}  // namespace scandiag
