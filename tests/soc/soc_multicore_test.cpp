#include <gtest/gtest.h>

#include "soc/soc_builder.hpp"
#include "soc/soc_experiment_driver.hpp"

namespace scandiag {
namespace {

Soc miniSoc() { return buildSocFromModules("mini", {"s298", "s344", "s526"}, 1); }

WorkloadConfig quickWorkload() {
  WorkloadConfig wc;
  wc.numPatterns = 64;
  wc.numFaults = 30;
  return wc;
}

TEST(SocMulticore, CombinedResponsesUnionFailingCells) {
  const Soc soc = miniSoc();
  const auto combined = socResponsesForFailingCores(soc, {0, 2}, quickWorkload());
  const auto r0 = socResponsesForFailingCore(soc, 0, quickWorkload());
  const auto r2 = socResponsesForFailingCore(soc, 2, quickWorkload());
  ASSERT_FALSE(combined.empty());
  ASSERT_EQ(combined.size(), std::min(r0.size(), r2.size()));
  for (std::size_t i = 0; i < combined.size(); ++i) {
    EXPECT_EQ(combined[i].failingCells, r0[i].failingCells | r2[i].failingCells);
    EXPECT_EQ(combined[i].failingCellOrdinals.size(),
              r0[i].failingCellOrdinals.size() + r2[i].failingCellOrdinals.size());
    EXPECT_EQ(combined[i].errorStreams.size(), combined[i].failingCellOrdinals.size());
  }
}

TEST(SocMulticore, FailingCellsSpanBothCores) {
  const Soc soc = miniSoc();
  const auto combined = socResponsesForFailingCores(soc, {0, 2}, quickWorkload());
  for (const FaultResponse& r : combined) {
    bool inCore0 = false, inCore2 = false;
    for (std::size_t cell : r.failingCells.toIndices()) {
      const std::size_t core = soc.coreOfCell(cell);
      inCore0 |= (core == 0);
      inCore2 |= (core == 2);
      EXPECT_NE(core, 1u) << "cell from a healthy core marked failing";
    }
    EXPECT_TRUE(inCore0);
    EXPECT_TRUE(inCore2);
  }
}

TEST(SocMulticore, DiagnosisStaysSound) {
  const Soc soc = miniSoc();
  DiagnosisConfig config;
  config.scheme = SchemeKind::TwoStep;
  config.numPartitions = 4;
  config.groupsPerPartition = 8;
  config.numPatterns = 64;
  const DiagnosisPipeline pipeline(soc.topology(), config);
  for (const FaultResponse& r : socResponsesForFailingCores(soc, {0, 1}, quickWorkload())) {
    const FaultDiagnosis d = pipeline.diagnose(r);
    EXPECT_TRUE(r.failingCells.isSubsetOf(d.candidates.cells));
  }
}

TEST(SocMulticore, SingleCoreListMatchesSingleCoreDriver) {
  const Soc soc = miniSoc();
  const auto viaList = socResponsesForFailingCores(soc, {1}, quickWorkload());
  const auto direct = socResponsesForFailingCore(soc, 1, quickWorkload());
  ASSERT_EQ(viaList.size(), direct.size());
  for (std::size_t i = 0; i < direct.size(); ++i)
    EXPECT_EQ(viaList[i].failingCells, direct[i].failingCells);
}

TEST(SocMulticore, EmptyCoreListRejected) {
  const Soc soc = miniSoc();
  EXPECT_THROW(socResponsesForFailingCores(soc, {}, quickWorkload()), std::invalid_argument);
}

}  // namespace
}  // namespace scandiag
