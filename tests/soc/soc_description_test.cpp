#include "soc/soc_description.hpp"

#include <gtest/gtest.h>

#include "common/errors.hpp"
#include "soc/soc_builder.hpp"

namespace scandiag {
namespace {

const char* kMini = R"(# test soc
soc mini
tam 2
core u_a profile s298
core u_b inputs 4 outputs 2 dffs 10 gates 50
)";

TEST(SocDescription, ParsesNamesTamAndCores) {
  const SocDescription d = parseSocDescriptionString(kMini);
  EXPECT_EQ(d.name, "mini");
  EXPECT_EQ(d.tamWidth, 2u);
  ASSERT_EQ(d.cores.size(), 2u);
  EXPECT_EQ(d.cores[0].instanceName, "u_a");
  EXPECT_EQ(d.cores[0].profile.name, "s298");
  EXPECT_EQ(d.cores[0].profile.numDffs, iscas89Profile("s298").numDffs);
  EXPECT_EQ(d.cores[1].profile.numDffs, 10u);
  EXPECT_EQ(d.cores[1].profile.numGates, 50u);
}

TEST(SocDescription, ErrorsCarryLineNumbers) {
  try {
    parseSocDescriptionString("soc x\ncore bad profile nothere\n");
    FAIL() << "expected parse error";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(SocDescription, RejectsMalformedInput) {
  EXPECT_THROW(parseSocDescriptionString("tam 4\n"), std::invalid_argument);  // no soc
  EXPECT_THROW(parseSocDescriptionString("soc x\n"), std::invalid_argument);  // no cores
  EXPECT_THROW(parseSocDescriptionString("soc x\nsoc y\ncore a profile s27\n"),
               std::invalid_argument);
  EXPECT_THROW(parseSocDescriptionString("soc x\ntam 0\ncore a profile s27\n"),
               std::invalid_argument);
  EXPECT_THROW(parseSocDescriptionString("soc x\ncore a inputs 3 outputs 1\n"),
               std::invalid_argument);  // missing dffs/gates
  EXPECT_THROW(parseSocDescriptionString("soc x\ncore a profile s27\ncore a profile s27\n"),
               std::invalid_argument);  // duplicate instance
  EXPECT_THROW(parseSocDescriptionString("soc x\nbogus 1\ncore a profile s27\n"),
               std::invalid_argument);
}

TEST(SocDescription, RoundTrips) {
  const SocDescription d = parseSocDescriptionString(kMini);
  const SocDescription back = parseSocDescriptionString(writeSocDescription(d));
  EXPECT_EQ(back.name, d.name);
  EXPECT_EQ(back.tamWidth, d.tamWidth);
  ASSERT_EQ(back.cores.size(), d.cores.size());
  for (std::size_t i = 0; i < d.cores.size(); ++i) {
    EXPECT_EQ(back.cores[i].instanceName, d.cores[i].instanceName);
    EXPECT_EQ(back.cores[i].profile.numDffs, d.cores[i].profile.numDffs);
  }
}

TEST(SocDescription, BuildsWorkingSoc) {
  const Soc soc = buildSocFromDescription(parseSocDescriptionString(kMini));
  EXPECT_EQ(soc.name(), "mini");
  EXPECT_EQ(soc.coreCount(), 2u);
  EXPECT_EQ(soc.topology().numChains(), 2u);
  EXPECT_EQ(soc.totalCells(), iscas89Profile("s298").numDffs + 10u);
}

TEST(SocDescription, D695FileMatchesBuiltinBuilder) {
  const SocDescription d = parseSocDescriptionFile("data/d695.soc");
  const Soc fromFile = buildSocFromDescription(d);
  const Soc builtin = buildD695();
  EXPECT_EQ(fromFile.coreCount(), builtin.coreCount());
  EXPECT_EQ(fromFile.totalCells(), builtin.totalCells());
  EXPECT_EQ(fromFile.topology().numChains(), builtin.topology().numChains());
  for (std::size_t k = 0; k < builtin.coreCount(); ++k) {
    EXPECT_EQ(fromFile.core(k).name, builtin.core(k).name);
    EXPECT_EQ(fromFile.core(k).numCells(), builtin.core(k).numCells());
  }
}

TEST(SocDescription, MissingFileThrows) {
  EXPECT_THROW(parseSocDescriptionFile("/nonexistent.soc"), FileNotFoundError);
}

}  // namespace
}  // namespace scandiag
