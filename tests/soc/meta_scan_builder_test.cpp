#include "soc/meta_scan_builder.hpp"

#include <gtest/gtest.h>

namespace scandiag {
namespace {

TEST(MetaScanBuilder, SingleChainConcatenatesCores) {
  const ScanTopology t = buildMetaChains({3, 2, 4}, 1);
  EXPECT_EQ(t.numChains(), 1u);
  EXPECT_EQ(t.numCells(), 9u);
  // Daisy order: core0 cells 0..2, core1 cells 3..4, core2 cells 5..8.
  for (std::size_t cell = 0; cell < 9; ++cell) {
    EXPECT_EQ(t.location(cell).position, cell);
  }
}

TEST(MetaScanBuilder, BalancedChains) {
  const ScanTopology t = buildMetaChains({8, 8}, 4);
  EXPECT_EQ(t.numChains(), 4u);
  for (std::size_t c = 0; c < 4; ++c) EXPECT_EQ(t.chainLength(c), 4u);
}

TEST(MetaScanBuilder, EveryCellPlacedExactlyOnce) {
  const std::vector<std::size_t> counts = {5, 13, 7, 2};
  const ScanTopology t = buildMetaChains(counts, 3);
  EXPECT_EQ(t.numCells(), 27u);
  std::vector<int> seen(27, 0);
  for (std::size_t c = 0; c < t.numChains(); ++c) {
    for (std::size_t cell : t.chain(c)) ++seen[cell];
  }
  for (int s : seen) EXPECT_EQ(s, 1);
}

TEST(MetaScanBuilder, CoreOccupiesContiguousRunPerChain) {
  const std::vector<std::size_t> counts = {10, 20, 30};
  const ScanTopology t = buildMetaChains(counts, 4);
  // On every chain, cells of one core must be consecutive and ordered by core.
  for (std::size_t c = 0; c < t.numChains(); ++c) {
    std::size_t lastCore = 0;
    for (std::size_t i = 1; i < t.chain(c).size(); ++i) {
      const std::size_t cell = t.chain(c)[i];
      const std::size_t core = cell < 10 ? 0 : cell < 30 ? 1 : 2;
      EXPECT_GE(core, lastCore) << "core order broken on chain " << c;
      lastCore = core;
    }
  }
}

TEST(MetaScanBuilder, CoreSpanCoversItsPositions) {
  const std::vector<std::size_t> counts = {10, 20, 30};
  const ScanTopology t = buildMetaChains(counts, 4);
  const CoreSpan span1 = coreSpanOnMetaChains(counts, 4, 1);
  // Verify against actual placements of core 1's cells (ids 10..29).
  std::size_t lo = static_cast<std::size_t>(-1), hi = 0;
  for (std::size_t cell = 10; cell < 30; ++cell) {
    lo = std::min(lo, t.location(cell).position);
    hi = std::max(hi, t.location(cell).position);
  }
  EXPECT_EQ(span1.firstPosition, lo);
  EXPECT_EQ(span1.lastPosition, hi);
}

TEST(MetaScanBuilder, ChainsBalancedWithinOneCell) {
  const ScanTopology t = buildMetaChains({211, 638, 534, 1728, 1636, 1426}, 8);
  std::size_t mn = static_cast<std::size_t>(-1), mx = 0;
  for (std::size_t c = 0; c < t.numChains(); ++c) {
    mn = std::min(mn, t.chainLength(c));
    mx = std::max(mx, t.chainLength(c));
  }
  EXPECT_LE(mx - mn, 6u);  // at most one cell skew per core
}

TEST(MetaScanBuilder, InvalidInputsRejected) {
  EXPECT_THROW(buildMetaChains({}, 1), std::invalid_argument);
  EXPECT_THROW(buildMetaChains({3}, 0), std::invalid_argument);
}

TEST(MetaScanBuilder, TinyCoreSmallerThanTam) {
  // A 2-cell core on an 8-bit TAM occupies only 2 sub-chains.
  const ScanTopology t = buildMetaChains({2, 16}, 8);
  EXPECT_EQ(t.numCells(), 18u);
  EXPECT_EQ(t.numChains(), 8u);
}

}  // namespace
}  // namespace scandiag
