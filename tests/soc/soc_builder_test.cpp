#include "soc/soc_builder.hpp"

#include <gtest/gtest.h>

namespace scandiag {
namespace {

// Small custom SOC used by most tests to keep runtimes low.
Soc smallSoc(std::size_t tamWidth = 1) {
  return buildSocFromModules("mini", {"s298", "s344", "s526"}, tamWidth);
}

TEST(SocBuilder, OffsetsAreContiguous) {
  const Soc soc = smallSoc();
  std::size_t expected = 0;
  for (const CoreInstance& core : soc.cores()) {
    EXPECT_EQ(core.cellOffset, expected);
    expected += core.numCells();
  }
  EXPECT_EQ(soc.totalCells(), expected);
}

TEST(SocBuilder, CoreOfCellMapsBoundariesCorrectly) {
  const Soc soc = smallSoc();
  for (std::size_t k = 0; k < soc.coreCount(); ++k) {
    const CoreInstance& core = soc.core(k);
    EXPECT_EQ(soc.coreOfCell(core.cellOffset), k);
    EXPECT_EQ(soc.coreOfCell(core.cellOffset + core.numCells() - 1), k);
  }
  EXPECT_THROW(soc.coreOfCell(soc.totalCells()), std::invalid_argument);
}

TEST(SocBuilder, CoreIndexByName) {
  const Soc soc = smallSoc();
  EXPECT_EQ(soc.coreIndex("s344"), 1u);
  EXPECT_THROW(soc.coreIndex("sXXX"), std::invalid_argument);
}

TEST(SocBuilder, Soc1IsSixLargestSingleChain) {
  const Soc soc = buildSoc1();
  EXPECT_EQ(soc.coreCount(), 6u);
  EXPECT_EQ(soc.topology().numChains(), 1u);
  std::size_t dffSum = 0;
  for (const std::string& name : sixLargestIscas89()) dffSum += iscas89Profile(name).numDffs;
  EXPECT_EQ(soc.totalCells(), dffSum);
  EXPECT_EQ(soc.topology().maxChainLength(), dffSum);
}

TEST(SocBuilder, D695HasEightCoresOnEightChains) {
  const Soc soc = buildD695();
  EXPECT_EQ(soc.coreCount(), 8u);
  EXPECT_EQ(soc.topology().numChains(), 8u);
  EXPECT_EQ(soc.core(0).name, "s838");  // daisy-chain order of paper Fig. 4
  EXPECT_EQ(soc.core(3).name, "s38584");
}

TEST(SocBuilder, CoresOccupyContiguousPositionRuns) {
  const Soc soc = smallSoc(2);
  for (std::size_t k = 0; k < soc.coreCount(); ++k) {
    const CoreInstance& core = soc.core(k);
    // Collect this core's positions; they must form at most tamWidth runs
    // whose union is an interval per chain. Cheap check: position spread per
    // chain <= core cell count.
    std::vector<std::size_t> minPos(soc.topology().numChains(), static_cast<std::size_t>(-1));
    std::vector<std::size_t> maxPos(soc.topology().numChains(), 0);
    std::vector<std::size_t> perChain(soc.topology().numChains(), 0);
    for (std::size_t cell = core.cellOffset; cell < core.cellOffset + core.numCells(); ++cell) {
      const auto loc = soc.topology().location(cell);
      minPos[loc.chain] = std::min(minPos[loc.chain], loc.position);
      maxPos[loc.chain] = std::max(maxPos[loc.chain], loc.position);
      ++perChain[loc.chain];
    }
    for (std::size_t c = 0; c < perChain.size(); ++c) {
      if (perChain[c] == 0) continue;
      EXPECT_EQ(maxPos[c] - minPos[c] + 1, perChain[c])
          << "core " << core.name << " fragmented on chain " << c;
    }
  }
}

TEST(SocBuilder, ValidatesCoreNetlists) {
  const Soc soc = smallSoc();
  for (const CoreInstance& core : soc.cores()) EXPECT_NO_THROW(core.netlist->validate());
}

TEST(Soc, ConstructionInvariantsEnforced) {
  std::vector<CoreInstance> cores;
  CoreInstance c;
  c.name = "a";
  c.netlist = std::make_shared<const Netlist>(generateNamedCircuit("s298"));
  c.cellOffset = 5;  // wrong: must start at 0
  cores.push_back(std::move(c));
  EXPECT_THROW(Soc("bad", std::move(cores), ScanTopology::singleChain(14)),
               std::invalid_argument);
}

}  // namespace
}  // namespace scandiag
