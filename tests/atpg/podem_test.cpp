#include "atpg/podem.hpp"

#include <gtest/gtest.h>

#include "bist/prpg.hpp"
#include "netlist/cone_analysis.hpp"
#include "netlist/synthetic_generator.hpp"
#include "sim/fault_list.hpp"

namespace scandiag {
namespace {

/// Detection check covering both observation sites (scan cells and POs).
bool cubeDetects(const Netlist& nl, const TestCube& cube, const FaultSite& fault) {
  PatternSet pats = patternsFromCubes(nl, {cube});
  const FaultSimulator fsim(nl, pats);
  if (fsim.simulate(fault).detected()) return true;
  // PO observation.
  const LogicSimulator sim(nl);
  std::vector<SimWord> values(nl.gateCount(), 0);
  for (GateId id = 0; id < nl.gateCount(); ++id)
    if (pats.isSource(id)) values[id] = pats.word(id, 0);
  sim.evaluate(values);
  std::vector<SimWord> good = values;
  const FaultCone cone = computeCone(nl, sim.levelization(), fault.gate);
  sim.evaluateFaulty(fault, cone, values);
  for (GateId po : nl.outputs()) {
    if ((values[po] ^ good[po]) & 1u) return true;
  }
  return false;
}

TEST(Podem, GeneratesTestForEasyFault) {
  // AND(a, b) output SA0: needs a=b=1; observed at the PO.
  Netlist nl;
  const GateId a = nl.addInput("a");
  const GateId b = nl.addInput("b");
  const GateId g = nl.addGate(GateType::And, "g", {a, b});
  const GateId ff = nl.addDff("ff");
  nl.setDffInput(ff, g);
  nl.markOutput(g);
  nl.validate();
  const PodemAtpg atpg(nl);
  const AtpgResult r = atpg.generate({g, FaultSite::kOutputPin, false});
  ASSERT_EQ(r.outcome, AtpgOutcome::Detected);
  EXPECT_TRUE(r.cube.care.test(a));
  EXPECT_TRUE(r.cube.care.test(b));
  EXPECT_TRUE(r.cube.value.test(a));
  EXPECT_TRUE(r.cube.value.test(b));
}

TEST(Podem, ProvesRedundantFaultUntestable) {
  // g = OR(a, NOT(a)) is constant 1: its SA1 is undetectable.
  Netlist nl;
  const GateId a = nl.addInput("a");
  const GateId n = nl.addGate(GateType::Not, "n", {a});
  const GateId g = nl.addGate(GateType::Or, "g", {a, n});
  nl.markOutput(g);
  nl.validate();
  const PodemAtpg atpg(nl);
  EXPECT_EQ(atpg.generate({g, FaultSite::kOutputPin, true}).outcome, AtpgOutcome::Untestable);
  // ...while its SA0 needs just any input value.
  EXPECT_EQ(atpg.generate({g, FaultSite::kOutputPin, false}).outcome, AtpgOutcome::Detected);
}

TEST(Podem, UnobservableFaultUntestable) {
  // A gate driving nothing marked as output is unobservable.
  Netlist nl;
  const GateId a = nl.addInput("a");
  const GateId dead = nl.addGate(GateType::Not, "dead", {a});
  const GateId live = nl.addGate(GateType::Buf, "live", {a});
  (void)dead;
  nl.markOutput(live);
  nl.validate();
  const PodemAtpg atpg(nl);
  EXPECT_EQ(atpg.generate({dead, FaultSite::kOutputPin, false}).outcome,
            AtpgOutcome::Untestable);
}

TEST(Podem, PropagatesThroughReconvergence) {
  // Classic reconvergent structure: fault must propagate through one branch
  // while the other is held non-controlling.
  Netlist nl;
  const GateId a = nl.addInput("a");
  const GateId b = nl.addInput("b");
  const GateId c = nl.addInput("c");
  const GateId g1 = nl.addGate(GateType::And, "g1", {a, b});
  const GateId g2 = nl.addGate(GateType::Or, "g2", {g1, c});
  const GateId g3 = nl.addGate(GateType::Nand, "g3", {g2, b});
  nl.markOutput(g3);
  nl.validate();
  const PodemAtpg atpg(nl);
  const FaultSite fault{g1, FaultSite::kOutputPin, true};
  const AtpgResult r = atpg.generate(fault);
  ASSERT_EQ(r.outcome, AtpgOutcome::Detected);
  EXPECT_TRUE(cubeDetects(nl, r.cube, fault));
}

class PodemSweep : public ::testing::TestWithParam<const char*> {};

TEST_P(PodemSweep, EveryGeneratedCubeVerifiesBySimulation) {
  const Netlist nl = generateNamedCircuit(GetParam());
  const PodemAtpg atpg(nl);
  const FaultList universe = FaultList::enumerateCollapsed(nl);
  std::size_t detected = 0;
  for (const FaultSite& f : universe.sample(120, 0xA791)) {
    const AtpgResult r = atpg.generate(f);
    if (r.outcome != AtpgOutcome::Detected) continue;
    ++detected;
    EXPECT_TRUE(cubeDetects(nl, r.cube, f)) << describeFault(nl, f);
  }
  EXPECT_GT(detected, 60u) << "suspiciously low ATPG detection on " << GetParam();
}

TEST_P(PodemSweep, UntestableVerdictsConsistentWithRandomPatterns) {
  // Soundness of 'untestable': no random pattern may detect such a fault at
  // a scan cell (PO observation is checked inside cubeDetects-style logic
  // implicitly: scan detection is a subset of full detection, so we check
  // scan only — a scan detection alone already contradicts the verdict).
  const Netlist nl = generateNamedCircuit(GetParam());
  const PodemAtpg atpg(nl);
  const PatternSet pats = generatePatterns(nl, 256);
  const FaultSimulator fsim(nl, pats);
  for (const FaultSite& f : FaultList::enumerateCollapsed(nl).sample(120, 0xA791)) {
    if (atpg.generate(f).outcome != AtpgOutcome::Untestable) continue;
    EXPECT_FALSE(fsim.simulate(f).detected())
        << describeFault(nl, f) << " proven untestable but randomly detected";
  }
}

INSTANTIATE_TEST_SUITE_P(Circuits, PodemSweep, ::testing::Values("s298", "s526", "s953"));

TEST(Podem, CompactSetCoversItsFaults) {
  const Netlist nl = generateNamedCircuit("s526");
  const PodemAtpg atpg(nl);
  const FaultList universe = FaultList::enumerateCollapsed(nl);
  const auto faults = universe.sample(100, 0xC0DE);
  const std::vector<TestCube> cubes = atpg.generateCompactSet(faults);
  ASSERT_FALSE(cubes.empty());
  EXPECT_LT(cubes.size(), faults.size());  // dropping must compact

  // Every fault is either covered by the set (at scan cells or POs, which
  // cubeDetects checks per-cube) or untestable/aborted.
  const PatternSet pats = patternsFromCubes(nl, cubes);
  const FaultSimulator fsim(nl, pats);
  std::size_t uncovered = 0;
  for (const FaultSite& f : faults) {
    if (fsim.simulate(f).detected()) continue;
    const AtpgOutcome outcome = atpg.generate(f).outcome;
    if (outcome == AtpgOutcome::Detected) {
      // Detected faults may still be PO-only observable; accept if any
      // individual cube detects them.
      bool anyCube = false;
      for (const TestCube& cube : cubes) anyCube |= cubeDetects(nl, cube, f);
      if (!anyCube) ++uncovered;
    }
  }
  EXPECT_EQ(uncovered, 0u);
}

TEST(Podem, CubeApplyFillsDeterministically) {
  const Netlist nl = generateNamedCircuit("s298");
  const PodemAtpg atpg(nl);
  const FaultList universe = FaultList::enumerateCollapsed(nl);
  AtpgResult r;
  for (const FaultSite& f : universe.sample(20, 3)) {
    r = atpg.generate(f);
    if (r.outcome == AtpgOutcome::Detected) break;
  }
  ASSERT_EQ(r.outcome, AtpgOutcome::Detected);
  const PatternSet a = patternsFromCubes(nl, {r.cube}, 42);
  const PatternSet b = patternsFromCubes(nl, {r.cube}, 42);
  const PatternSet c = patternsFromCubes(nl, {r.cube}, 43);
  bool sameAb = true, anyDiffAc = false;
  for (GateId id = 0; id < nl.gateCount(); ++id) {
    if (!a.isSource(id)) continue;
    sameAb &= (a.stream(id) == b.stream(id));
    anyDiffAc |= (a.stream(id) != c.stream(id));
  }
  EXPECT_TRUE(sameAb);
  EXPECT_TRUE(anyDiffAc);  // different fill seed changes only X bits
}

}  // namespace
}  // namespace scandiag
