// Randomized-input smoke: 100 seeded corruptions of each external format
// (tester session logs, .soc descriptions, .bench netlists) must come back
// as a clean typed error or a structurally valid parse — never a crash, an
// over-allocation, or a half-built object. Complements the mutation sweep in
// tests/netlist/parser_robustness_test.cpp by checking the *typed* error
// contract (ParseError with a line number, FileNotFoundError for bad paths).

#include <gtest/gtest.h>

#include "common/errors.hpp"
#include "common/rng.hpp"
#include "diagnosis/interval_partitioner.hpp"
#include "diagnosis/session_engine.hpp"
#include "diagnosis/tester_log.hpp"
#include "netlist/bench_parser.hpp"
#include "netlist/bench_writer.hpp"
#include "netlist/synthetic_generator.hpp"
#include "soc/soc_description.hpp"

namespace scandiag {
namespace {

std::string corrupt(const std::string& base, Xoroshiro128& rng) {
  std::string s = base;
  const std::size_t edits = 1 + rng.nextBelow(8);
  for (std::size_t e = 0; e < edits && !s.empty(); ++e) {
    const std::size_t pos = rng.nextBelow(s.size());
    switch (rng.nextBelow(5)) {
      case 0:  // flip a byte (printable range)
        s[pos] = static_cast<char>(' ' + rng.nextBelow(95));
        break;
      case 1:  // truncate the record mid-line
        s.erase(pos);
        break;
      case 2:  // delete a span
        s.erase(pos, 1 + rng.nextBelow(16));
        break;
      case 3:  // blow up an embedded number (out-of-range indices)
        s.insert(pos, "99999999999");
        break;
      default:  // inject garbage tokens
        s.insert(pos, " -7 0x zz\nverdict 9 9 maybe\n");
        break;
    }
  }
  return s;
}

std::string sampleTesterLog() {
  const ScanTopology topo = ScanTopology::singleChain(16);
  const SessionEngine engine(topo, SessionConfig{SignatureMode::Exact, 4});
  const std::vector<Partition> parts{IntervalPartitioner::fromLengths({4, 4, 4, 4}, 16),
                                     IntervalPartitioner::fromLengths({8, 8}, 16)};
  FaultResponse r;
  r.failingCells = BitVector(16);
  r.failingCells.set(5);
  r.failingCellOrdinals.push_back(5);
  BitVector stream(4);
  stream.set(0);
  r.errorStreams.push_back(stream);
  return writeTesterLog(engine.run(parts, r));
}

TEST(ParserFuzz, HundredCorruptTesterLogs) {
  const std::string base = sampleTesterLog();
  std::size_t rejected = 0;
  for (std::uint64_t seed = 0; seed < 100; ++seed) {
    Xoroshiro128 rng(0x10600 + seed);
    const std::string text = corrupt(base, rng);
    try {
      const TesterLog log = parseTesterLogString(text);
      // Anything accepted must be self-consistent.
      EXPECT_EQ(log.verdicts.failing.size(), log.numPartitions);
    } catch (const ParseError& e) {
      EXPECT_EQ(e.format(), "session log");
      EXPECT_GE(e.line(), 0);
      ++rejected;
    }
  }
  EXPECT_GT(rejected, 20u);  // the mutations are not gentle
}

TEST(ParserFuzz, HundredCorruptSocDescriptions) {
  const std::string base =
      "soc fuzz\ntam 4\ncore a profile s298\ncore b inputs 4 outputs 2 dffs 8 gates 40\n";
  std::size_t rejected = 0;
  for (std::uint64_t seed = 0; seed < 100; ++seed) {
    Xoroshiro128 rng(0x50C + seed);
    try {
      const SocDescription d = parseSocDescriptionString(corrupt(base, rng));
      EXPECT_FALSE(d.cores.empty());
    } catch (const ParseError& e) {
      EXPECT_EQ(e.format(), ".soc");
      ++rejected;
    }
  }
  EXPECT_GT(rejected, 20u);
}

TEST(ParserFuzz, HundredCorruptBenchFiles) {
  const std::string base = writeBenchString(generateNamedCircuit("s298"));
  std::size_t rejected = 0;
  for (std::uint64_t seed = 0; seed < 100; ++seed) {
    Xoroshiro128 rng(0xBE2C4 + seed);
    try {
      const Netlist nl = parseBenchString(corrupt(base, rng), "fuzz");
      nl.validate();
    } catch (const std::invalid_argument&) {
      // ParseError or a validate()-level SCANDIAG_REQUIRE; both are clean.
      ++rejected;
    }
  }
  EXPECT_GT(rejected, 20u);
}

TEST(ParserFuzz, MissingFilesThrowTypedError) {
  EXPECT_THROW(parseTesterLogFile("/nonexistent/tester.log"), FileNotFoundError);
  EXPECT_THROW(parseSocDescriptionFile("/nonexistent/chip.soc"), FileNotFoundError);
  EXPECT_THROW(parseBenchFile("/nonexistent/c17.bench"), FileNotFoundError);
  try {
    parseTesterLogFile("/nonexistent/tester.log");
    FAIL() << "expected FileNotFoundError";
  } catch (const FileNotFoundError& e) {
    EXPECT_EQ(e.path(), "/nonexistent/tester.log");
  }
}

TEST(ParserFuzz, OversizedSessionHeaderRejectedBeforeAllocating) {
  EXPECT_THROW(parseTesterLogString("sessions 99999999 99999999\n"), ParseError);
  EXPECT_THROW(parseTesterLogString("sessions 1048577 1\n"), ParseError);
}

TEST(ParserFuzz, TrailingTokensRejected) {
  EXPECT_THROW(parseTesterLogString("sessions 2 4 junk\n"), ParseError);
  EXPECT_THROW(parseTesterLogString("sessions 2 4\nverdict 0 0 fail sig 1f junk\n"),
               ParseError);
  EXPECT_THROW(parseTesterLogString("sessions 2 4\nverdict 0 0 fail sig 1fzz\n"), ParseError);
}

TEST(ParserFuzz, NegativeSocCountsRejected) {
  EXPECT_THROW(parseSocDescriptionString("soc x\ntam 4\ncore a inputs -3 outputs 2 dffs 8 gates 40\n"),
               ParseError);
  EXPECT_THROW(parseSocDescriptionString("soc x\ntam 4\ncore a inputs 4 outputs 2 dffs 8 gates 99999999999\n"),
               ParseError);
}

TEST(ParserFuzz, ParseErrorCarriesLineNumber) {
  try {
    parseTesterLogString("sessions 2 4\nverdict 0 9 fail\n");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 2);
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos) << e.what();
  }
}

TEST(ParserFuzz, DffFaninArityEnforced) {
  EXPECT_THROW(parseBenchString("OUTPUT(x)\nx = DFF(a, b)\nINPUT(a)\nINPUT(b)\n", "p"),
               ParseError);
}

}  // namespace
}  // namespace scandiag
