// Chaos harness for `scandiag serve` (runs in the ASan/UBSan and TSan CI
// matrices): a live server fed protocol garbage, slowloris half-frames,
// saturation, and drains must keep every robustness invariant from
// docs/ARCHITECTURE.md §12 — typed rejections (never a crash), bounded time
// on slow clients, BUSY at the admission edge, exit code 6 with a balanced
// ledger on drain. Plus a 100-seed offline fuzz of the frame decoder: every
// corruption is a frame, "wait for more", or a typed FrameError.

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "netlist/synthetic_generator.hpp"
#include "serve/client.hpp"
#include "serve/frame.hpp"
#include "serve/server.hpp"

namespace scandiag::serve {
namespace {

// ---- offline: 100-seed frame-decoder fuzz ---------------------------------

std::string corruptBytes(const std::string& base, Xoroshiro128& rng) {
  std::string s = base;
  const std::size_t edits = 1 + rng.nextBelow(6);
  for (std::size_t e = 0; e < edits && !s.empty(); ++e) {
    const std::size_t pos = rng.nextBelow(s.size());
    switch (rng.nextBelow(4)) {
      case 0:  // flip a byte anywhere (header, CRC, payload)
        s[pos] = static_cast<char>(s[pos] ^ (1 + rng.nextBelow(255)));
        break;
      case 1:  // truncate
        s.erase(pos);
        break;
      case 2:  // delete a span
        s.erase(pos, 1 + rng.nextBelow(8));
        break;
      default:  // inject garbage
        s.insert(pos, std::string(1 + rng.nextBelow(8),
                                  static_cast<char>(rng.nextBelow(256))));
        break;
    }
  }
  return s;
}

TEST(ServeChaos, HundredCorruptFramesNeverEscapeTypedErrors) {
  const std::string base =
      encodeFrame(kDiagnoseRequestFrame, encodeDiagnoseRequest([] {
                    DiagnoseRequest request;
                    request.kind = DiagnoseRequest::Kind::InjectFault;
                    request.gateName = "g123";
                    return request;
                  }()));
  std::size_t rejected = 0;
  for (std::uint64_t seed = 0; seed < 100; ++seed) {
    Xoroshiro128 rng(0x5E2EC + seed);
    const std::string bytes = corruptBytes(base, rng);
    try {
      std::size_t consumed = 0;
      const auto frame = decodeFrame(bytes, &consumed);
      if (frame.has_value()) {
        // A frame that decoded intact must have a sane, CRC-true payload; the
        // message layer is fuzzed the same way below.
        EXPECT_LE(consumed, bytes.size());
        try {
          (void)decodeDiagnoseRequest(frame->payload);
        } catch (const FrameFormatError&) {
          ++rejected;  // message-level lie behind a valid CRC
        }
      }
    } catch (const FrameFormatError&) {
      ++rejected;
    } catch (const FrameCorruptError&) {
      ++rejected;
    }
  }
  EXPECT_GT(rejected, 20u);  // byte-level mutations rarely keep the CRC true
}

// ---- live-server chaos ----------------------------------------------------

std::string chaosSocketPath(const char* tag) {
  return "/tmp/scandiag_chaos_" + std::to_string(::getpid()) + "_" + tag + ".sock";
}

std::string chaosJournalPath(const char* tag) {
  const std::string path =
      ::testing::TempDir() + "/chaos_" + std::to_string(::getpid()) + "_" + tag + ".journal";
  std::filesystem::remove(path);
  return path;
}

int rawConnect(const std::string& path) {
  struct sockaddr_un addr;
  std::memset(&addr, 0, sizeof addr);
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0 || ::connect(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof addr) != 0) {
    if (fd >= 0) ::close(fd);
    throw std::runtime_error("chaos: raw connect to " + path + " failed");
  }
  return fd;
}

void sendAll(int fd, const std::string& bytes) {
  std::size_t done = 0;
  while (done < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + done, bytes.size() - done, MSG_NOSIGNAL);
    if (n <= 0) return;  // peer severed us — a valid chaos outcome
    done += static_cast<std::size_t>(n);
  }
}

/// Reads until the peer closes; returns bytes seen. A short recv timeout
/// bounds the wait so a misbehaving server fails the test, not the suite.
std::size_t drainUntilClose(int fd) {
  struct timeval tv{10, 0};
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  std::size_t total = 0;
  char buf[512];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) return total;
    total += static_cast<std::size_t>(n);
  }
}

template <typename Pred>
bool settle(Pred ready) {
  for (int i = 0; i < 1000; ++i) {
    if (ready()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return ready();
}

/// The warm service all live tests share; construction dominates runtime.
const DiagnosisService& chaosService() {
  static const DiagnosisService service(generateNamedCircuit("s953"), ServiceConfig{});
  return service;
}

class RunningServer {
 public:
  explicit RunningServer(ServeOptions options, const DiagnosisService& service = chaosService())
      : server_(service, std::move(options)),
        thread_([this] { exitCode_ = server_.run(); }) {
    if (!server_.waitUntilListening(10000)) {
      stopAndJoin();
      throw std::runtime_error("chaos: server did not start listening");
    }
  }
  ~RunningServer() { stopAndJoin(); }

  DiagnosisServer& server() { return server_; }
  /// Stops (if still running) and returns run()'s exit code.
  int finish() {
    stopAndJoin();
    return exitCode_;
  }

 private:
  void stopAndJoin() {
    server_.stop();
    if (thread_.joinable()) thread_.join();
  }

  DiagnosisServer server_;
  std::thread thread_;
  int exitCode_ = -1;
};

TEST(ServeChaos, ProtocolGarbageIsRejectedAndSevered) {
  ServeOptions options;
  options.socketPath = chaosSocketPath("garbage");
  RunningServer running(options);

  // Wild length prefix, CRC-corrupt frame, valid frame with unknown type,
  // and pure noise: each must bump framesRejected and cost one connection.
  std::vector<std::string> attacks;
  {
    std::string wild(8, '\0');
    wild[0] = static_cast<char>(0xFF);
    wild[1] = static_cast<char>(0xFF);
    wild[2] = static_cast<char>(0xFF);
    wild[3] = static_cast<char>(0x7F);
    attacks.push_back(wild);
  }
  {
    std::string corrupt = encodeFrame(kPingRequestFrame, "payload");
    corrupt[kFrameHeaderBytes] ^= 0x01;
    attacks.push_back(corrupt);
  }
  attacks.push_back(encodeFrame(0x7777, ""));
  attacks.push_back(std::string("\x01\x02\x03garbage that is not a frame at all", 38));

  std::uint64_t expected = 0;
  for (const std::string& attack : attacks) {
    const int fd = rawConnect(options.socketPath);
    sendAll(fd, attack);
    // The server replies nothing intelligible and closes; wait for the close
    // so the next attack cannot be shed by a still-occupied handler.
    (void)drainUntilClose(fd);
    ::close(fd);
    ++expected;
    ASSERT_TRUE(settle([&] {
      return running.server().stats().snapshot().framesRejected >= expected;
    })) << "frame rejection " << expected << " never booked";
  }

  // The server survived four attacks: a well-formed ping still answers.
  EXPECT_NO_THROW((void)ping({.socketPath = options.socketPath}));
}

TEST(ServeChaos, SlowlorisIsSeveredByTheIoTimeout) {
  ServeOptions options;
  options.socketPath = chaosSocketPath("slowloris");
  options.handlers = 1;
  options.ioTimeoutMs = 200;  // the whole point: a short whole-frame budget
  RunningServer running(options);

  // Half a frame, then silence: the single handler must get the connection
  // back via the I/O timeout instead of hanging forever.
  const std::string frame = encodeFrame(kPingRequestFrame, "slow");
  const int slow = rawConnect(options.socketPath);
  sendAll(slow, frame.substr(0, 5));
  const auto start = std::chrono::steady_clock::now();
  (void)drainUntilClose(slow);  // server severs us when the timeout trips
  const auto waited = std::chrono::steady_clock::now() - start;
  ::close(slow);
  EXPECT_LT(waited, std::chrono::seconds(8)) << "slowloris held the handler too long";

  // The freed handler serves honest clients again.
  EXPECT_NO_THROW((void)ping({.socketPath = options.socketPath}));
}

TEST(ServeChaos, SaturationShedsBusyInsteadOfQueueingUnboundedly) {
  ServeOptions options;
  options.socketPath = chaosSocketPath("saturate");
  options.queueCapacity = 1;
  options.handlers = 1;
  RunningServer running(options);

  // Pin the only handler: the pong proves it owns this connection and is now
  // blocked reading our next frame. Then fill the 1-deep queue. Everything
  // after that must be shed BUSY at admission — deterministically.
  const int held = rawConnect(options.socketPath);
  sendAll(held, encodeFrame(kPingRequestFrame, ""));
  char pong[64];
  ASSERT_GT(::recv(held, pong, sizeof pong, 0), 0) << "ping reply missing";
  const int filler = rawConnect(options.socketPath);

  // requestDiagnosis (not ping): it folds every shed-adjacent failure mode —
  // BUSY reply, or the close racing our write — into ClientError at
  // maxAttempts=1, so the assertion has no timing window.
  ClientOptions oneShot;
  oneShot.socketPath = options.socketPath;
  oneShot.maxAttempts = 1;
  DiagnoseRequest probe;
  probe.kind = DiagnoseRequest::Kind::InjectFault;
  probe.gateName = "unimportant";
  for (int i = 0; i < 3; ++i) {
    EXPECT_THROW((void)requestDiagnosis(oneShot, probe), ClientError)
        << "request " << i << " was not shed";
  }
  EXPECT_TRUE(settle([&] { return running.server().stats().snapshot().shed >= 3; }));
  ::close(filler);
  ::close(held);
}

TEST(ServeChaos, DefectRequestUnderDeadlinePressureRepliesSupersetNotError) {
  // Defect-zoo degrade-never-lie at the wire: a k-fault scenario request
  // whose 1 ms deadline trips mid-work must come back as a typed DEADLINE
  // reply carrying a non-empty candidate superset (all cells if no partition
  // ran) — never an Error, never a crash, never an empty candidate list.
  // A service heavy enough that scenario generation alone outlives the 1 ms
  // budget: s9234 with a 2048-pattern set means each of the four components
  // is fault-simulated over 2048 patterns before any partition can run.
  ServiceConfig heavy;
  heavy.diagnosis.numPatterns = 2048;
  const DiagnosisService service(generateNamedCircuit("s9234"), heavy);

  ServeOptions options;
  options.socketPath = chaosSocketPath("defect_deadline");
  options.requestDeadlineMs = 1;
  RunningServer running(options, service);

  ClientOptions client;
  client.socketPath = options.socketPath;
  DiagnoseRequest request;
  request.kind = DiagnoseRequest::Kind::DefectScenario;
  // k=4 with every permanent kind plus intermittent sampling: the heaviest
  // generation path, so the deadline trips during the request, not before.
  request.defectSpec = "4,bridge,open,intermittent:0.5";
  request.defectIndex = 1;

  const DiagnoseReply reply = requestDiagnosis(client, request);
  ASSERT_EQ(reply.status, ReplyStatus::Deadline) << reply.message;
  EXPECT_TRUE(reply.detected);
  EXPECT_FALSE(reply.resolved);
  EXPECT_FALSE(reply.candidateCells.empty()) << "degraded reply lost the superset";
  EXPECT_LT(reply.confidence, 1.0);

  // The handler survived the degraded request: an honest ping still answers.
  EXPECT_NO_THROW((void)ping(client));
}

TEST(ServeChaos, DrainReturnsExitSixAndBalancesTheLedger) {
  ServeOptions options;
  options.socketPath = chaosSocketPath("drain");
  options.journalPath = chaosJournalPath("drain");
  RunningServer running(options);

  ClientOptions client;
  client.socketPath = options.socketPath;
  for (int i = 0; i < 3; ++i) (void)ping(client);
  DiagnoseRequest bad;
  bad.kind = DiagnoseRequest::Kind::InjectFault;
  bad.gateName = "no_such_gate";
  const DiagnoseReply reply = requestDiagnosis(client, bad);
  EXPECT_EQ(reply.status, ReplyStatus::Error);

  EXPECT_EQ(running.finish(), 6);

  // Replay after the drain: the ledger balances exactly (pings are not
  // requests; the one Error reply books as aborted — no diagnosis ran).
  const ServeLedger ledger = replayLedger(options.journalPath);
  EXPECT_TRUE(ledger.balanced());
  EXPECT_EQ(ledger.accepted, 1u);
  EXPECT_EQ(ledger.abortedInFlight, 0u);
  std::filesystem::remove(options.journalPath);
}

TEST(ServeChaos, AbruptDisconnectsLeaveTheServerServing) {
  ServeOptions options;
  options.socketPath = chaosSocketPath("hangup");
  options.handlers = 2;
  RunningServer running(options);

  // Clients that connect and vanish — before, during, and after a frame.
  for (int i = 0; i < 8; ++i) {
    const int fd = rawConnect(options.socketPath);
    if (i % 3 == 1) sendAll(fd, encodeFrame(kPingRequestFrame, "").substr(0, 3));
    if (i % 3 == 2) sendAll(fd, encodeFrame(kPingRequestFrame, ""));
    ::close(fd);  // no goodbye
  }
  // The server must still answer a patient, honest client.
  ClientOptions client;
  client.socketPath = options.socketPath;
  EXPECT_NO_THROW((void)ping(client));
  EXPECT_NO_THROW((void)fetchStats(client));
}

TEST(ServeChaos, RestartedServerContinuesTheLedgerWithoutReusingIds) {
  ServeOptions options;
  options.socketPath = chaosSocketPath("restart");
  options.journalPath = chaosJournalPath("restart");

  DiagnoseRequest bad;
  bad.kind = DiagnoseRequest::Kind::InjectFault;
  bad.gateName = "still_no_such_gate";

  std::uint64_t firstId = 0;
  {
    RunningServer running(options);
    ClientOptions client;
    client.socketPath = options.socketPath;
    firstId = requestDiagnosis(client, bad).requestId;
    EXPECT_EQ(running.finish(), 6);
  }
  {
    RunningServer running(options);
    ClientOptions client;
    client.socketPath = options.socketPath;
    const std::uint64_t secondId = requestDiagnosis(client, bad).requestId;
    EXPECT_GT(secondId, firstId) << "restart reused a journaled request id";
    EXPECT_EQ(running.finish(), 6);
  }
  const ServeLedger ledger = replayLedger(options.journalPath);
  EXPECT_TRUE(ledger.balanced());
  EXPECT_EQ(ledger.accepted, 2u);
  std::filesystem::remove(options.journalPath);
}

}  // namespace
}  // namespace scandiag::serve
