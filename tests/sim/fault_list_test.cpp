#include "sim/fault_list.hpp"

#include <gtest/gtest.h>

#include <set>

#include "netlist/synthetic_generator.hpp"

namespace scandiag {
namespace {

// a,b both fan out to g (AND) and h (OR).
struct FanoutFixture {
  Netlist nl;
  GateId a, b, g, h;
  FanoutFixture() {
    a = nl.addInput("a");
    b = nl.addInput("b");
    g = nl.addGate(GateType::And, "g", {a, b});
    h = nl.addGate(GateType::Or, "h", {a, b});
    nl.markOutput(g);
    nl.markOutput(h);
  }
};

std::size_t countFaults(const FaultList& list, GateId gate, bool output) {
  std::size_t n = 0;
  for (const FaultSite& f : list.faults())
    if (f.gate == gate && f.isOutputFault() == output) ++n;
  return n;
}

TEST(FaultList, StemFaultsOnEveryObservedGate) {
  FanoutFixture f;
  const FaultList list = FaultList::enumerateAll(f.nl);
  EXPECT_EQ(countFaults(list, f.a, true), 2u);
  EXPECT_EQ(countFaults(list, f.g, true), 2u);
}

TEST(FaultList, BranchFaultsOnlyAtFanoutStems) {
  Netlist nl;
  const GateId a = nl.addInput("a");
  const GateId g = nl.addGate(GateType::Not, "g", {a});  // a has fanout 1
  const GateId h = nl.addGate(GateType::Buf, "h", {g});
  const GateId k = nl.addGate(GateType::Not, "k", {g});  // g has fanout 2
  nl.markOutput(h);
  nl.markOutput(k);
  const FaultList list = FaultList::enumerateAll(nl);
  EXPECT_EQ(countFaults(list, g, false), 0u);  // no branch faults on g's input
  EXPECT_EQ(countFaults(list, h, false), 2u);  // branches on h's input (from g)
  EXPECT_EQ(countFaults(list, k, false), 2u);
}

TEST(FaultList, CollapsingDropsControlledInputFaults) {
  FanoutFixture f;
  const FaultList all = FaultList::enumerateAll(f.nl);
  const FaultList collapsed = FaultList::enumerateCollapsed(f.nl);
  EXPECT_LT(collapsed.size(), all.size());
  // AND input SA0 collapses into the stem; SA1 branches survive.
  for (const FaultSite& fault : collapsed.faults()) {
    if (fault.gate == f.g && !fault.isOutputFault()) {
      EXPECT_TRUE(fault.stuckAt);
    }
    if (fault.gate == f.h && !fault.isOutputFault()) {
      EXPECT_FALSE(fault.stuckAt);
    }
  }
}

TEST(FaultList, UnobservedStemSkipped) {
  Netlist nl;
  const GateId a = nl.addInput("a");
  const GateId g = nl.addGate(GateType::Not, "g", {a});  // dangling
  (void)g;
  const FaultList list = FaultList::enumerateAll(nl);
  EXPECT_EQ(countFaults(list, g, true), 0u);
  EXPECT_EQ(countFaults(list, a, true), 2u);  // a is observed (drives g)
}

TEST(FaultList, DffPinsGetBranchFaultsWhenDriverFansOut) {
  Netlist nl;
  const GateId a = nl.addInput("a");
  const GateId ff1 = nl.addDff("ff1");
  const GateId ff2 = nl.addDff("ff2");
  nl.setDffInput(ff1, a);
  nl.setDffInput(ff2, a);
  nl.markOutput(ff1);
  nl.markOutput(ff2);
  const FaultList list = FaultList::enumerateCollapsed(nl);
  EXPECT_EQ(countFaults(list, ff1, false), 2u);
  EXPECT_EQ(countFaults(list, ff2, false), 2u);
}

TEST(FaultList, SampleIsDeterministicAndDistinct) {
  const Netlist nl = generateNamedCircuit("s526");
  const FaultList list = FaultList::enumerateCollapsed(nl);
  const auto s1 = list.sample(50, 123);
  const auto s2 = list.sample(50, 123);
  ASSERT_EQ(s1.size(), 50u);
  EXPECT_TRUE(std::equal(s1.begin(), s1.end(), s2.begin()));
  std::set<std::tuple<GateId, int, bool>> distinct;
  for (const FaultSite& f : s1) distinct.insert({f.gate, f.pin, f.stuckAt});
  EXPECT_EQ(distinct.size(), 50u);
  const auto s3 = list.sample(50, 124);
  EXPECT_FALSE(std::equal(s1.begin(), s1.end(), s3.begin()));
}

TEST(FaultList, SampleLargerThanUniverseReturnsAll) {
  FanoutFixture f;
  const FaultList list = FaultList::enumerateCollapsed(f.nl);
  const auto s = list.sample(100000, 7);
  EXPECT_EQ(s.size(), list.size());
}

TEST(FaultList, UniverseScalesWithCircuit) {
  const Netlist small = generateNamedCircuit("s298");
  const Netlist large = generateNamedCircuit("s5378");
  EXPECT_GT(FaultList::enumerateCollapsed(large).size(),
            FaultList::enumerateCollapsed(small).size() * 10);
}

// The streaming enumerator exists so million-cell sweeps never materialize a
// fault vector; its one correctness obligation is exact agreement — order
// included — with the materialized lists (which are now built THROUGH it, so
// a disagreement would be a self-inconsistency, caught here directly).
TEST(FaultEnumerator, StreamsExactlyTheCollapsedUniverseInOrder) {
  const Netlist nl = generateNamedCircuit("s1488");
  const FaultList list = FaultList::enumerateCollapsed(nl);
  FaultEnumerator en(nl, /*collapse=*/true);
  for (const FaultSite& expected : list.faults()) {
    const auto got = en.next();
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->gate, expected.gate);
    EXPECT_EQ(got->pin, expected.pin);
    EXPECT_EQ(got->stuckAt, expected.stuckAt);
  }
  EXPECT_FALSE(en.next().has_value());
  EXPECT_FALSE(en.next().has_value());  // exhausted stays exhausted
  EXPECT_EQ(en.yielded(), list.size());
}

TEST(FaultEnumerator, StreamsExactlyTheUncollapsedUniverseInOrder) {
  FanoutFixture f;
  const FaultList list = FaultList::enumerateAll(f.nl);
  FaultEnumerator en(f.nl, /*collapse=*/false);
  std::size_t n = 0;
  while (const auto got = en.next()) {
    ASSERT_LT(n, list.size());
    EXPECT_EQ(got->gate, list.faults()[n].gate);
    EXPECT_EQ(got->pin, list.faults()[n].pin);
    EXPECT_EQ(got->stuckAt, list.faults()[n].stuckAt);
    ++n;
  }
  EXPECT_EQ(n, list.size());
}

TEST(FaultEnumerator, StateIsFlatPerFault) {
  // The whole point: advancing costs O(1) memory. The cursor is a handful of
  // scalars — if someone adds a per-fault vector to it, this breaks loudly.
  static_assert(sizeof(FaultEnumerator) <= 64,
                "FaultEnumerator must hold a flat cursor, not materialized state");
  const Netlist nl = generateNamedCircuit("s298");
  FaultEnumerator en(nl, true);
  while (en.next()) {
  }
  EXPECT_EQ(en.yielded(), FaultList::enumerateCollapsed(nl).size());
}

}  // namespace
}  // namespace scandiag
