#include "sim/fault_coverage.hpp"

#include <gtest/gtest.h>

#include "bist/prpg.hpp"
#include "netlist/synthetic_generator.hpp"
#include "sim/fault_list.hpp"

namespace scandiag {
namespace {

TEST(FaultCoverage, ReportCountsDetectedFaults) {
  const Netlist nl = generateNamedCircuit("s526");
  const PatternSet pats = generatePatterns(nl, 128);
  const FaultSimulator sim(nl, pats);
  const auto faults = FaultList::enumerateCollapsed(nl).sample(200, 7);
  const CoverageReport report = measureCoverage(sim, faults);
  EXPECT_EQ(report.totalFaults, 200u);
  EXPECT_GT(report.scanCoverage(), 0.5);
  EXPECT_LE(report.scanCoverage(), 1.0);
}

TEST(FaultCoverage, FirstDetectingPattern) {
  FaultResponse r;
  BitVector s1(16), s2(16);
  s1.set(9);
  s2.set(4);
  s2.set(12);
  r.errorStreams = {s1, s2};
  r.failingCellOrdinals = {0, 1};
  EXPECT_EQ(firstDetectingPattern(r), 4u);
  FaultResponse empty;
  EXPECT_EQ(firstDetectingPattern(empty), BitVector::npos);
}

TEST(FaultCoverage, CurveIsMonotone) {
  const Netlist nl = generateNamedCircuit("s526");
  const PatternSet pats = generatePatterns(nl, 256);
  const FaultSimulator sim(nl, pats);
  const auto faults = FaultList::enumerateCollapsed(nl).sample(150, 7);
  const std::vector<std::size_t> checkpoints = {1, 8, 32, 128, 256};
  const auto curve = coverageCurve(sim, faults, checkpoints);
  ASSERT_EQ(curve.size(), checkpoints.size());
  for (std::size_t i = 1; i < curve.size(); ++i) EXPECT_GE(curve[i], curve[i - 1]);
  // Pseudorandom coverage saturates: most detection happens early.
  EXPECT_GT(curve[2], curve.back() * 3 / 4);
  // The full-window count equals measureCoverage's detected count.
  EXPECT_EQ(curve.back(), measureCoverage(sim, faults).scanDetected);
}

TEST(FaultCoverage, UnsortedCheckpointsRejected) {
  const Netlist nl = generateNamedCircuit("s298");
  const PatternSet pats = generatePatterns(nl, 32);
  const FaultSimulator sim(nl, pats);
  EXPECT_THROW(coverageCurve(sim, {}, {8, 4}), std::invalid_argument);
}

}  // namespace
}  // namespace scandiag
