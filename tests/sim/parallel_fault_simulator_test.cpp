#include "sim/parallel_fault_simulator.hpp"

#include <gtest/gtest.h>

#include "bist/prpg.hpp"
#include "netlist/synthetic_generator.hpp"
#include "sim/fault_coverage.hpp"
#include "sim/fault_list.hpp"

namespace scandiag {
namespace {

class EngineEquivalence : public ::testing::TestWithParam<const char*> {};

TEST_P(EngineEquivalence, DetectionMatchesSerialFaultSimulator) {
  const Netlist nl = generateNamedCircuit(GetParam());
  const PatternSet pats = generatePatterns(nl, 96);
  const FaultSimulator serial(nl, pats);
  const ParallelFaultSimulator parallel(nl, pats);
  const auto faults = FaultList::enumerateCollapsed(nl).sample(200, 0xF0F);
  const std::vector<bool> detected = parallel.detectFaults(faults);
  ASSERT_EQ(detected.size(), faults.size());
  for (std::size_t i = 0; i < faults.size(); ++i) {
    EXPECT_EQ(detected[i], serial.simulate(faults[i]).detected())
        << describeFault(nl, faults[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(Circuits, EngineEquivalence,
                         ::testing::Values("s27", "s298", "s526", "s953", "s1423"));

TEST(ParallelFaultSimulator, BatchBoundariesHandled) {
  // Exercise a fault count that is not a multiple of 64.
  const Netlist nl = generateNamedCircuit("s526");
  const PatternSet pats = generatePatterns(nl, 64);
  const FaultSimulator serial(nl, pats);
  const ParallelFaultSimulator parallel(nl, pats);
  const auto faults = FaultList::enumerateCollapsed(nl).sample(65, 0xB0B);
  const auto detected = parallel.detectFaults(faults);
  for (std::size_t i = 0; i < faults.size(); ++i) {
    EXPECT_EQ(detected[i], serial.simulate(faults[i]).detected());
  }
}

TEST(ParallelFaultSimulator, CountMatchesCoverageReport) {
  const Netlist nl = generateNamedCircuit("s953");
  const PatternSet pats = generatePatterns(nl, 64);
  const FaultSimulator serial(nl, pats);
  const ParallelFaultSimulator parallel(nl, pats);
  const auto faults = FaultList::enumerateCollapsed(nl).sample(300, 0xC0);
  EXPECT_EQ(parallel.countDetected(faults), measureCoverage(serial, faults).scanDetected);
}

TEST(ParallelFaultSimulator, EmptyFaultList) {
  const Netlist nl = generateNamedCircuit("s27");
  const PatternSet pats = generatePatterns(nl, 16);
  const ParallelFaultSimulator parallel(nl, pats);
  EXPECT_TRUE(parallel.detectFaults({}).empty());
  EXPECT_EQ(parallel.countDetected({}), 0u);
}

}  // namespace
}  // namespace scandiag
