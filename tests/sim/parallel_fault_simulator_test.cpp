#include "sim/parallel_fault_simulator.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "bist/prpg.hpp"
#include "common/thread_pool.hpp"
#include "netlist/synthetic_generator.hpp"
#include "sim/fault_coverage.hpp"
#include "sim/fault_list.hpp"

namespace scandiag {
namespace {

class EngineEquivalence : public ::testing::TestWithParam<const char*> {};

TEST_P(EngineEquivalence, DetectionMatchesSerialFaultSimulator) {
  const Netlist nl = generateNamedCircuit(GetParam());
  const PatternSet pats = generatePatterns(nl, 96);
  const FaultSimulator serial(nl, pats);
  const ParallelFaultSimulator parallel(nl, pats);
  const auto faults = FaultList::enumerateCollapsed(nl).sample(200, 0xF0F);
  const std::vector<bool> detected = parallel.detectFaults(faults);
  ASSERT_EQ(detected.size(), faults.size());
  for (std::size_t i = 0; i < faults.size(); ++i) {
    EXPECT_EQ(detected[i], serial.simulate(faults[i]).detected())
        << describeFault(nl, faults[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(Circuits, EngineEquivalence,
                         ::testing::Values("s27", "s298", "s526", "s953", "s1423"));

TEST(ParallelFaultSimulator, BatchBoundariesHandled) {
  // Exercise a fault count that is not a multiple of 64.
  const Netlist nl = generateNamedCircuit("s526");
  const PatternSet pats = generatePatterns(nl, 64);
  const FaultSimulator serial(nl, pats);
  const ParallelFaultSimulator parallel(nl, pats);
  const auto faults = FaultList::enumerateCollapsed(nl).sample(65, 0xB0B);
  const auto detected = parallel.detectFaults(faults);
  for (std::size_t i = 0; i < faults.size(); ++i) {
    EXPECT_EQ(detected[i], serial.simulate(faults[i]).detected());
  }
}

TEST(ParallelFaultSimulator, CountMatchesCoverageReport) {
  const Netlist nl = generateNamedCircuit("s953");
  const PatternSet pats = generatePatterns(nl, 64);
  const FaultSimulator serial(nl, pats);
  const ParallelFaultSimulator parallel(nl, pats);
  const auto faults = FaultList::enumerateCollapsed(nl).sample(300, 0xC0);
  EXPECT_EQ(parallel.countDetected(faults), measureCoverage(serial, faults).scanDetected);
}

TEST(ParallelFaultSimulator, EmptyFaultList) {
  const Netlist nl = generateNamedCircuit("s27");
  const PatternSet pats = generatePatterns(nl, 16);
  const ParallelFaultSimulator parallel(nl, pats);
  EXPECT_TRUE(parallel.detectFaults({}).empty());
  EXPECT_EQ(parallel.countDetected({}), 0u);
}

TEST(ParallelStress, ThousandsOfFaultsAcrossEightThreadsMatchSerialGolden) {
  // Race/ordering regression guard: ~2k faults (dozens of 64-lane batches)
  // graded repeatedly with 8 pool threads must reproduce the serial
  // FaultSimulator's verdicts identically on every repetition. Under TSan
  // this is also the data-race probe for the batch fan-out.
  const Netlist nl = generateNamedCircuit("s1423");
  const PatternSet pats = generatePatterns(nl, 96);
  const FaultSimulator serial(nl, pats);
  const ParallelFaultSimulator parallel(nl, pats);
  const FaultList universe = FaultList::enumerateCollapsed(nl);
  const auto faults = universe.sample(std::min<std::size_t>(universe.size(), 2000), 0x57E5);
  ASSERT_GT(faults.size(), 1000u);

  std::vector<bool> golden(faults.size());
  for (std::size_t i = 0; i < faults.size(); ++i) {
    golden[i] = serial.simulate(faults[i]).detected();
  }

  setGlobalThreadCount(8);
  for (int rep = 0; rep < 5; ++rep) {
    const std::vector<bool> detected = parallel.detectFaults(faults);
    ASSERT_EQ(detected.size(), golden.size());
    for (std::size_t i = 0; i < faults.size(); ++i) {
      ASSERT_EQ(detected[i], golden[i])
          << "rep " << rep << ": " << describeFault(nl, faults[i]);
    }
  }
  setGlobalThreadCount(0);
}

}  // namespace
}  // namespace scandiag
