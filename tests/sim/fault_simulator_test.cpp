#include "sim/fault_simulator.hpp"

#include <gtest/gtest.h>

#include "bist/prpg.hpp"
#include "netlist/synthetic_generator.hpp"
#include "sim/fault_list.hpp"

namespace scandiag {
namespace {

// Reference implementation: full (non-cone) re-simulation in level order with
// the fault forced at its site. Any divergence from FaultSimulator's
// cone-restricted evaluation is a bug in one of them.
std::vector<BitVector> referenceCaptures(const Netlist& nl, const PatternSet& pats,
                                         const FaultSite& fault) {
  const LogicSimulator sim(nl);
  const std::size_t words = pats.wordCount();
  const std::size_t numDffs = nl.dffs().size();
  const SimWord stuck = fault.stuckAt ? ~SimWord{0} : SimWord{0};
  std::vector<BitVector> captures(numDffs, BitVector(pats.numPatterns()));
  for (std::size_t w = 0; w < words; ++w) {
    std::vector<SimWord> values(nl.gateCount(), 0);
    for (GateId id = 0; id < nl.gateCount(); ++id)
      if (pats.isSource(id)) values[id] = pats.word(id, w);
    if (fault.isOutputFault() && isSourceType(nl.gate(fault.gate).type))
      values[fault.gate] = stuck;
    // Single level-order pass with the fault forced at its site: every
    // downstream gate reads the faulty value.
    for (GateId id : sim.levelization().order) {
      if (id == fault.gate && fault.isOutputFault()) {
        values[id] = stuck;
      } else if (id == fault.gate && !fault.isOutputFault()) {
        const Gate& g = nl.gate(id);
        const SimWord orig = values[g.fanins[fault.pin]];
        values[g.fanins[fault.pin]] = stuck;
        values[id] = sim.evalGate(id, values);
        values[g.fanins[fault.pin]] = orig;
      } else {
        values[id] = sim.evalGate(id, values);
      }
    }
    for (std::size_t k = 0; k < numDffs; ++k) {
      const GateId dff = nl.dffs()[k];
      const bool dffPinFault = !fault.isOutputFault() && fault.gate == dff;
      const SimWord captured = dffPinFault ? stuck : values[nl.gate(dff).fanins[0]];
      captures[k].setWord(w, captured);
    }
  }
  return captures;
}

class FaultSimAgainstReference : public ::testing::TestWithParam<const char*> {};

TEST_P(FaultSimAgainstReference, ErrorStreamsMatchFullResimulation) {
  const Netlist nl = generateNamedCircuit(GetParam());
  const PatternSet pats = generatePatterns(nl, 96);
  const FaultSimulator fsim(nl, pats);
  const FaultList universe = FaultList::enumerateCollapsed(nl);
  const auto faults = universe.sample(40, 0x5EED);
  for (const FaultSite& fault : faults) {
    const FaultResponse resp = fsim.simulate(fault);
    const std::vector<BitVector> faulty = referenceCaptures(nl, pats, fault);
    for (std::size_t k = 0; k < nl.dffs().size(); ++k) {
      const BitVector expectedErr = faulty[k] ^ fsim.goodCaptures()[k];
      EXPECT_EQ(resp.failingCells.test(k), expectedErr.any())
          << describeFault(nl, fault) << " cell " << k;
      if (resp.failingCells.test(k)) {
        // Find the stream for cell k.
        bool found = false;
        for (std::size_t i = 0; i < resp.failingCellOrdinals.size(); ++i) {
          if (resp.failingCellOrdinals[i] == k) {
            EXPECT_EQ(resp.errorStreams[i], expectedErr) << describeFault(nl, fault);
            found = true;
          }
        }
        EXPECT_TRUE(found);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Circuits, FaultSimAgainstReference,
                         ::testing::Values("s27", "s298", "s344", "s526"));

TEST(FaultSimulator, GoodCapturesConsistentWithPlainSimulation) {
  const Netlist nl = generateNamedCircuit("s298");
  const PatternSet pats = generatePatterns(nl, 64);
  const FaultSimulator fsim(nl, pats);
  const LogicSimulator sim(nl);
  std::vector<SimWord> values(nl.gateCount(), 0);
  for (GateId id = 0; id < nl.gateCount(); ++id)
    if (pats.isSource(id)) values[id] = pats.word(id, 0);
  sim.evaluate(values);
  for (std::size_t k = 0; k < nl.dffs().size(); ++k) {
    EXPECT_EQ(fsim.goodCaptures()[k].word(0), values[nl.gate(nl.dffs()[k]).fanins[0]]);
  }
}

TEST(FaultSimulator, UndetectedFaultHasEmptyResponse) {
  // A fault whose cone reaches only primary outputs is scan-undetectable.
  Netlist nl;
  const GateId a = nl.addInput("a");
  const GateId ff = nl.addDff("ff");
  const GateId po = nl.addGate(GateType::Not, "po", {a});
  nl.setDffInput(ff, a);
  nl.markOutput(po);
  nl.validate();
  const PatternSet pats = generatePatterns(nl, 32);
  const FaultSimulator fsim(nl, pats);
  const FaultResponse r = fsim.simulate({po, FaultSite::kOutputPin, true});
  EXPECT_FALSE(r.detected());
  EXPECT_TRUE(r.failingCells.none());
}

TEST(FaultSimulator, DffPinFaultFailsExactlyThatCell) {
  Netlist nl;
  const GateId a = nl.addInput("a");
  const GateId ff1 = nl.addDff("ff1");
  const GateId ff2 = nl.addDff("ff2");
  nl.setDffInput(ff1, a);
  nl.setDffInput(ff2, a);
  nl.markOutput(ff1);
  nl.markOutput(ff2);
  const PatternSet pats = generatePatterns(nl, 64);
  const FaultSimulator fsim(nl, pats);
  const FaultResponse r = fsim.simulate({ff1, 0, true});
  ASSERT_TRUE(r.detected());
  EXPECT_EQ(r.failingCellCount(), 1u);
  EXPECT_EQ(r.failingCellOrdinals[0], 0u);
  // Error stream: patterns where a == 0.
  const BitVector& aStream = pats.stream(a);
  for (std::size_t t = 0; t < 64; ++t)
    EXPECT_EQ(r.errorStreams[0].test(t), !aStream.test(t)) << "pattern " << t;
}

TEST(FaultSimulator, ErrorStreamsMaskedToPatternCount) {
  Netlist nl;
  const GateId a = nl.addInput("a");
  const GateId ff = nl.addDff("ff");
  nl.setDffInput(ff, a);
  nl.markOutput(ff);
  const PatternSet pats = generatePatterns(nl, 10);  // non-multiple of 64
  const FaultSimulator fsim(nl, pats);
  const FaultResponse r = fsim.simulate({a, FaultSite::kOutputPin, true});
  if (r.detected()) {
    EXPECT_EQ(r.errorStreams[0].size(), 10u);
    EXPECT_LE(r.errorStreams[0].count(), 10u);
  }
}

TEST(FaultSimulator, CollectDetectedStopsAtTarget) {
  const Netlist nl = generateNamedCircuit("s953");
  const PatternSet pats = generatePatterns(nl, 64);
  const FaultSimulator fsim(nl, pats);
  const FaultList universe = FaultList::enumerateCollapsed(nl);
  const auto candidates = universe.sample(universe.size(), 1);
  const auto responses = fsim.collectDetected(candidates, 20);
  EXPECT_EQ(responses.size(), 20u);
  for (const FaultResponse& r : responses) EXPECT_TRUE(r.detected());
}

TEST(PatternSet, StreamsOnlyForSources) {
  const Netlist nl = generateNamedCircuit("s27");
  PatternSet pats(nl, 16);
  for (GateId id = 0; id < nl.gateCount(); ++id) {
    const GateType t = nl.gate(id).type;
    EXPECT_EQ(pats.isSource(id), t == GateType::Input || t == GateType::Dff);
  }
  EXPECT_THROW(pats.stream(nl.findByName("g0")), std::invalid_argument);
}

}  // namespace
}  // namespace scandiag
