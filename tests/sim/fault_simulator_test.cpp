#include "sim/fault_simulator.hpp"

#include <gtest/gtest.h>

#include "bist/prpg.hpp"
#include "netlist/synthetic_generator.hpp"
#include "sim/fault_list.hpp"

namespace scandiag {
namespace {

// Reference implementation: full (non-cone) re-simulation in level order with
// the fault forced at its site. Any divergence from FaultSimulator's
// cone-restricted evaluation is a bug in one of them.
std::vector<BitVector> referenceCaptures(const Netlist& nl, const PatternSet& pats,
                                         const FaultSite& fault) {
  const LogicSimulator sim(nl);
  const std::size_t words = pats.wordCount();
  const std::size_t numDffs = nl.dffs().size();
  const SimWord stuck = fault.stuckAt ? ~SimWord{0} : SimWord{0};
  std::vector<BitVector> captures(numDffs, BitVector(pats.numPatterns()));
  for (std::size_t w = 0; w < words; ++w) {
    std::vector<SimWord> values(nl.gateCount(), 0);
    for (GateId id = 0; id < nl.gateCount(); ++id)
      if (pats.isSource(id)) values[id] = pats.word(id, w);
    if (fault.isOutputFault() && isSourceType(nl.gate(fault.gate).type))
      values[fault.gate] = stuck;
    // Single level-order pass with the fault forced at its site: every
    // downstream gate reads the faulty value.
    for (GateId id : sim.levelization().order) {
      if (id == fault.gate && fault.isOutputFault()) {
        values[id] = stuck;
      } else if (id == fault.gate && !fault.isOutputFault()) {
        const Gate& g = nl.gate(id);
        const SimWord orig = values[g.fanins[fault.pin]];
        values[g.fanins[fault.pin]] = stuck;
        values[id] = sim.evalGate(id, values);
        values[g.fanins[fault.pin]] = orig;
      } else {
        values[id] = sim.evalGate(id, values);
      }
    }
    for (std::size_t k = 0; k < numDffs; ++k) {
      const GateId dff = nl.dffs()[k];
      const bool dffPinFault = !fault.isOutputFault() && fault.gate == dff;
      const SimWord captured = dffPinFault ? stuck : values[nl.gate(dff).fanins[0]];
      captures[k].setWord(w, captured);
    }
  }
  return captures;
}

class FaultSimAgainstReference : public ::testing::TestWithParam<const char*> {};

TEST_P(FaultSimAgainstReference, ErrorStreamsMatchFullResimulation) {
  const Netlist nl = generateNamedCircuit(GetParam());
  const PatternSet pats = generatePatterns(nl, 96);
  const FaultSimulator fsim(nl, pats);
  const FaultList universe = FaultList::enumerateCollapsed(nl);
  const auto faults = universe.sample(40, 0x5EED);
  for (const FaultSite& fault : faults) {
    const FaultResponse resp = fsim.simulate(fault);
    const std::vector<BitVector> faulty = referenceCaptures(nl, pats, fault);
    for (std::size_t k = 0; k < nl.dffs().size(); ++k) {
      const BitVector expectedErr = faulty[k] ^ fsim.goodCaptures()[k];
      EXPECT_EQ(resp.failingCells.test(k), expectedErr.any())
          << describeFault(nl, fault) << " cell " << k;
      if (resp.failingCells.test(k)) {
        // Find the stream for cell k.
        bool found = false;
        for (std::size_t i = 0; i < resp.failingCellOrdinals.size(); ++i) {
          if (resp.failingCellOrdinals[i] == k) {
            EXPECT_EQ(resp.errorStreams[i], expectedErr) << describeFault(nl, fault);
            found = true;
          }
        }
        EXPECT_TRUE(found);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Circuits, FaultSimAgainstReference,
                         ::testing::Values("s27", "s298", "s344", "s526"));

TEST(FaultSimulator, GoodCapturesConsistentWithPlainSimulation) {
  const Netlist nl = generateNamedCircuit("s298");
  const PatternSet pats = generatePatterns(nl, 64);
  const FaultSimulator fsim(nl, pats);
  const LogicSimulator sim(nl);
  std::vector<SimWord> values(nl.gateCount(), 0);
  for (GateId id = 0; id < nl.gateCount(); ++id)
    if (pats.isSource(id)) values[id] = pats.word(id, 0);
  sim.evaluate(values);
  for (std::size_t k = 0; k < nl.dffs().size(); ++k) {
    EXPECT_EQ(fsim.goodCaptures()[k].word(0), values[nl.gate(nl.dffs()[k]).fanins[0]]);
  }
}

TEST(FaultSimulator, UndetectedFaultHasEmptyResponse) {
  // A fault whose cone reaches only primary outputs is scan-undetectable.
  Netlist nl;
  const GateId a = nl.addInput("a");
  const GateId ff = nl.addDff("ff");
  const GateId po = nl.addGate(GateType::Not, "po", {a});
  nl.setDffInput(ff, a);
  nl.markOutput(po);
  nl.validate();
  const PatternSet pats = generatePatterns(nl, 32);
  const FaultSimulator fsim(nl, pats);
  const FaultResponse r = fsim.simulate({po, FaultSite::kOutputPin, true});
  EXPECT_FALSE(r.detected());
  EXPECT_TRUE(r.failingCells.none());
}

TEST(FaultSimulator, DffPinFaultFailsExactlyThatCell) {
  Netlist nl;
  const GateId a = nl.addInput("a");
  const GateId ff1 = nl.addDff("ff1");
  const GateId ff2 = nl.addDff("ff2");
  nl.setDffInput(ff1, a);
  nl.setDffInput(ff2, a);
  nl.markOutput(ff1);
  nl.markOutput(ff2);
  const PatternSet pats = generatePatterns(nl, 64);
  const FaultSimulator fsim(nl, pats);
  const FaultResponse r = fsim.simulate({ff1, 0, true});
  ASSERT_TRUE(r.detected());
  EXPECT_EQ(r.failingCellCount(), 1u);
  EXPECT_EQ(r.failingCellOrdinals[0], 0u);
  // Error stream: patterns where a == 0.
  const BitVector& aStream = pats.stream(a);
  for (std::size_t t = 0; t < 64; ++t)
    EXPECT_EQ(r.errorStreams[0].test(t), !aStream.test(t)) << "pattern " << t;
}

TEST(FaultSimulator, ErrorStreamsMaskedToPatternCount) {
  Netlist nl;
  const GateId a = nl.addInput("a");
  const GateId ff = nl.addDff("ff");
  nl.setDffInput(ff, a);
  nl.markOutput(ff);
  const PatternSet pats = generatePatterns(nl, 10);  // non-multiple of 64
  const FaultSimulator fsim(nl, pats);
  const FaultResponse r = fsim.simulate({a, FaultSite::kOutputPin, true});
  if (r.detected()) {
    EXPECT_EQ(r.errorStreams[0].size(), 10u);
    EXPECT_LE(r.errorStreams[0].count(), 10u);
  }
}

TEST(FaultSimulator, CollectDetectedStopsAtTarget) {
  const Netlist nl = generateNamedCircuit("s953");
  const PatternSet pats = generatePatterns(nl, 64);
  const FaultSimulator fsim(nl, pats);
  const FaultList universe = FaultList::enumerateCollapsed(nl);
  const auto candidates = universe.sample(universe.size(), 1);
  const auto responses = fsim.collectDetected(candidates, 20);
  EXPECT_EQ(responses.size(), 20u);
  for (const FaultResponse& r : responses) EXPECT_TRUE(r.detected());
}

void expectResponsesEqual(const Netlist& nl, const FaultResponse& a, const FaultResponse& b) {
  ASSERT_EQ(a.fault, b.fault);
  EXPECT_EQ(a.failingCells, b.failingCells) << describeFault(nl, a.fault);
  ASSERT_EQ(a.failingCellOrdinals, b.failingCellOrdinals) << describeFault(nl, a.fault);
  ASSERT_EQ(a.errorStreams.size(), b.errorStreams.size());
  for (std::size_t i = 0; i < a.errorStreams.size(); ++i) {
    EXPECT_EQ(a.errorStreams[i], b.errorStreams[i])
        << describeFault(nl, a.fault) << " stream " << i;
  }
}

class ScratchParity : public ::testing::TestWithParam<const char*> {};

TEST_P(ScratchParity, ConeScratchPathMatchesReferenceSimulator) {
  // The cone-cached save/evaluate/restore hot path must be bit-identical to
  // the full-copy reference (the pre-cache algorithm), over every collapsed
  // fault — stem, pin, DFF D-pin, and source-output faults alike. A second
  // pass re-simulates with the cone cache warm and the good-value store
  // already cycled through save/restore once.
  const Netlist nl = generateNamedCircuit(GetParam());
  const PatternSet pats = generatePatterns(nl, 96);  // non-multiple of 64: tail mask
  const FaultSimulator fsim(nl, pats);
  const FaultList universe = FaultList::enumerateCollapsed(nl);
  const auto faults = universe.sample(universe.size(), 0xBEEF);
  for (int pass = 0; pass < 2; ++pass) {
    for (const FaultSite& fault : faults) {
      expectResponsesEqual(nl, fsim.simulate(fault), fsim.simulateReference(fault));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Circuits, ScratchParity, ::testing::Values("s298", "s953"));

TEST(FaultSimulator, ScratchRestoresGoodValuesExactly) {
  // After any number of simulate() calls, the good-value store must be
  // byte-identical to its fault-free state: the read-only accessors and
  // every later call depend on a perfect restore.
  const Netlist nl = generateNamedCircuit("s526");
  const PatternSet pats = generatePatterns(nl, 80);
  const FaultSimulator fsim(nl, pats);
  std::vector<std::vector<SimWord>> before;
  for (std::size_t w = 0; w < pats.wordCount(); ++w) before.push_back(fsim.goodBatch(w));
  const FaultList universe = FaultList::enumerateCollapsed(nl);
  for (const FaultSite& fault : universe.sample(50, 0xD1CE)) fsim.simulate(fault);
  for (std::size_t w = 0; w < pats.wordCount(); ++w) {
    EXPECT_EQ(fsim.goodBatch(w), before[w]) << "word " << w;
  }
}

TEST(FaultSimulator, RepeatedSimulationOfOneFaultIsStable) {
  // Same fault through a warm cone cache: responses never drift.
  const Netlist nl = generateNamedCircuit("s344");
  const PatternSet pats = generatePatterns(nl, 64);
  const FaultSimulator fsim(nl, pats);
  const FaultList universe = FaultList::enumerateCollapsed(nl);
  const FaultSite fault = universe.sample(1, 7).front();
  const FaultResponse first = fsim.simulate(fault);
  for (int i = 0; i < 3; ++i) expectResponsesEqual(nl, first, fsim.simulate(fault));
  expectResponsesEqual(nl, first, fsim.simulateReference(fault));
}

TEST(PatternSet, StreamsOnlyForSources) {
  const Netlist nl = generateNamedCircuit("s27");
  PatternSet pats(nl, 16);
  for (GateId id = 0; id < nl.gateCount(); ++id) {
    const GateType t = nl.gate(id).type;
    EXPECT_EQ(pats.isSource(id), t == GateType::Input || t == GateType::Dff);
  }
  EXPECT_THROW(pats.stream(nl.findByName("g0")), std::invalid_argument);
}

}  // namespace
}  // namespace scandiag
