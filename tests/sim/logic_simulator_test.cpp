#include "sim/logic_simulator.hpp"

#include <gtest/gtest.h>

namespace scandiag {
namespace {

// Exhaustive two-input truth tables, evaluated bit-parallel: bit t of the
// input words encodes pattern t of (a, b) = (t&1, t>>1).
TEST(LogicSimulator, TwoInputTruthTables) {
  struct Case {
    GateType type;
    std::uint64_t expected;  // 4-bit truth table for patterns 00,01,10,11 (a=LSB)
  };
  const Case cases[] = {
      {GateType::And, 0b1000},  {GateType::Nand, 0b0111}, {GateType::Or, 0b1110},
      {GateType::Nor, 0b0001},  {GateType::Xor, 0b0110},  {GateType::Xnor, 0b1001},
  };
  for (const Case& c : cases) {
    Netlist nl;
    const GateId a = nl.addInput("a");
    const GateId b = nl.addInput("b");
    const GateId g = nl.addGate(c.type, "g", {a, b});
    nl.markOutput(g);
    const LogicSimulator sim(nl);
    std::vector<SimWord> values(nl.gateCount(), 0);
    values[a] = 0b1010;  // a = pattern bit 0
    values[b] = 0b1100;  // b = pattern bit 1
    sim.evaluate(values);
    EXPECT_EQ(values[g] & 0xF, c.expected) << gateTypeName(c.type);
  }
}

TEST(LogicSimulator, NotBufConst) {
  Netlist nl;
  const GateId a = nl.addInput("a");
  const GateId n = nl.addGate(GateType::Not, "n", {a});
  const GateId buf = nl.addGate(GateType::Buf, "buf", {a});
  const GateId c0 = nl.addGate(GateType::Const0, "c0", {});
  const GateId c1 = nl.addGate(GateType::Const1, "c1", {});
  nl.markOutput(n);
  const LogicSimulator sim(nl);
  std::vector<SimWord> values(nl.gateCount(), 0);
  values[a] = 0xDEADBEEF;
  sim.evaluate(values);
  EXPECT_EQ(values[n], ~SimWord{0xDEADBEEF});
  EXPECT_EQ(values[buf], SimWord{0xDEADBEEF});
  EXPECT_EQ(values[c0], SimWord{0});
  EXPECT_EQ(values[c1], ~SimWord{0});
}

TEST(LogicSimulator, WideGates) {
  Netlist nl;
  const GateId a = nl.addInput("a");
  const GateId b = nl.addInput("b");
  const GateId c = nl.addInput("c");
  const GateId g = nl.addGate(GateType::Nand, "g", {a, b, c});
  nl.markOutput(g);
  const LogicSimulator sim(nl);
  std::vector<SimWord> values(nl.gateCount(), 0);
  values[a] = 0b10101010;
  values[b] = 0b11001100;
  values[c] = 0b11110000;
  sim.evaluate(values);
  EXPECT_EQ(values[g] & 0xFF, 0b01111111u);
}

TEST(LogicSimulator, S27SingleCycleHandCheck) {
  // One functional cycle of s27 with known state/input values.
  Netlist nl;
  const GateId g0 = nl.addInput("G0");
  const GateId g1 = nl.addInput("G1");
  const GateId g2 = nl.addInput("G2");
  const GateId g3 = nl.addInput("G3");
  const GateId g5 = nl.addDff("G5");
  const GateId g6 = nl.addDff("G6");
  const GateId g7 = nl.addDff("G7");
  const GateId g14 = nl.addGate(GateType::Not, "G14", {g0});
  const GateId g8 = nl.addGate(GateType::And, "G8", {g14, g6});
  const GateId g12 = nl.addGate(GateType::Nor, "G12", {g1, g7});
  const GateId g15 = nl.addGate(GateType::Or, "G15", {g12, g8});
  const GateId g16 = nl.addGate(GateType::Or, "G16", {g3, g8});
  const GateId g9 = nl.addGate(GateType::Nand, "G9", {g16, g15});
  const GateId g11 = nl.addGate(GateType::Nor, "G11", {g5, g9});
  const GateId g10 = nl.addGate(GateType::Nor, "G10", {g14, g11});
  const GateId g13 = nl.addGate(GateType::Nor, "G13", {g2, g12});
  const GateId g17 = nl.addGate(GateType::Not, "G17", {g11});
  nl.setDffInput(g5, g10);
  nl.setDffInput(g6, g11);
  nl.setDffInput(g7, g13);
  nl.markOutput(g17);
  nl.validate();

  const LogicSimulator sim(nl);
  std::vector<SimWord> values(nl.gateCount(), 0);
  // Pattern (bit 0): G0=1 G1=0 G2=1 G3=0, state G5=0 G6=1 G7=0.
  values[g0] = 1;
  values[g2] = 1;
  values[g6] = 1;
  sim.evaluate(values);
  // Hand evaluation: G14=!1=0, G8=0&1=0, G12=!(0|0)=1, G15=1|0=1, G16=0|0=0,
  // G9=!(0&1)=1, G11=!(0|1)=0, G10=!(0|0)=1, G13=!(1|1)=0, G17=!0=1.
  EXPECT_EQ(values[g14] & 1, 0u);
  EXPECT_EQ(values[g8] & 1, 0u);
  EXPECT_EQ(values[g12] & 1, 1u);
  EXPECT_EQ(values[g15] & 1, 1u);
  EXPECT_EQ(values[g16] & 1, 0u);
  EXPECT_EQ(values[g9] & 1, 1u);
  EXPECT_EQ(values[g11] & 1, 0u);
  EXPECT_EQ(values[g10] & 1, 1u);
  EXPECT_EQ(values[g13] & 1, 0u);
  EXPECT_EQ(values[g17] & 1, 1u);
}

TEST(LogicSimulator, OutputFaultForcesValue) {
  Netlist nl;
  const GateId a = nl.addInput("a");
  const GateId g = nl.addGate(GateType::Not, "g", {a});
  const GateId h = nl.addGate(GateType::Buf, "h", {g});
  const GateId ff = nl.addDff("ff");
  nl.setDffInput(ff, h);
  nl.markOutput(h);
  const LogicSimulator sim(nl);
  const Levelization lev = levelize(nl);
  std::vector<SimWord> values(nl.gateCount(), 0);
  values[a] = 0xFFFF;
  sim.evaluate(values);
  EXPECT_EQ(values[h] & 0xFFFF, 0u);

  const FaultSite sa1{g, FaultSite::kOutputPin, true};
  const FaultCone cone = computeCone(nl, lev, g);
  sim.evaluateFaulty(sa1, cone, values);
  EXPECT_EQ(values[g], ~SimWord{0});
  EXPECT_EQ(values[h], ~SimWord{0});
}

TEST(LogicSimulator, PinFaultAffectsOnlyOwningGate) {
  // b drives both g and h; a pin fault on g's b-input must leave h untouched.
  Netlist nl;
  const GateId a = nl.addInput("a");
  const GateId b = nl.addInput("b");
  const GateId g = nl.addGate(GateType::And, "g", {a, b});
  const GateId h = nl.addGate(GateType::And, "h", {a, b});
  nl.markOutput(g);
  nl.markOutput(h);
  const LogicSimulator sim(nl);
  const Levelization lev = levelize(nl);
  std::vector<SimWord> values(nl.gateCount(), 0);
  values[a] = ~SimWord{0};
  values[b] = 0;
  sim.evaluate(values);
  EXPECT_EQ(values[g], SimWord{0});

  const FaultSite pinFault{g, /*pin=*/1, /*stuckAt=*/true};
  const FaultCone cone = computeCone(nl, lev, g);
  sim.evaluateFaulty(pinFault, cone, values);
  EXPECT_EQ(values[g], ~SimWord{0});  // b seen as 1 inside g
  EXPECT_EQ(values[h], SimWord{0});   // h still sees the real b
}

TEST(LogicSimulator, SourceOutputFault) {
  Netlist nl;
  const GateId a = nl.addInput("a");
  const GateId g = nl.addGate(GateType::Buf, "g", {a});
  nl.markOutput(g);
  const LogicSimulator sim(nl);
  const Levelization lev = levelize(nl);
  std::vector<SimWord> values(nl.gateCount(), 0);
  values[a] = ~SimWord{0};
  sim.evaluate(values);
  const FaultSite sa0{a, FaultSite::kOutputPin, false};
  const FaultCone cone = computeCone(nl, lev, a);
  sim.evaluateFaulty(sa0, cone, values);
  EXPECT_EQ(values[a], SimWord{0});
  EXPECT_EQ(values[g], SimWord{0});
}

TEST(DescribeFault, Formats) {
  Netlist nl;
  const GateId a = nl.addInput("sig");
  const GateId g = nl.addGate(GateType::Not, "inv", {a});
  (void)g;
  EXPECT_EQ(describeFault(nl, {a, FaultSite::kOutputPin, true}), "sig/SA1");
  EXPECT_EQ(describeFault(nl, {g, 0, false}), "inv.in0/SA0");
}

}  // namespace
}  // namespace scandiag
