#include "sim/bridge_faults.hpp"

#include <gtest/gtest.h>

#include "bist/prpg.hpp"
#include "diagnosis/experiment_driver.hpp"
#include "netlist/synthetic_generator.hpp"

namespace scandiag {
namespace {

// a = BUF(x), b = BUF(y); ffa <- a, ffb <- b. Bridging a and b has fully
// predictable semantics per pattern.
struct Fixture {
  Netlist nl;
  GateId x, y, a, b, ffa, ffb;

  Fixture() {
    x = nl.addInput("x");
    y = nl.addInput("y");
    a = nl.addGate(GateType::Buf, "a", {x});
    b = nl.addGate(GateType::Buf, "b", {y});
    ffa = nl.addDff("ffa");
    ffb = nl.addDff("ffb");
    nl.setDffInput(ffa, a);
    nl.setDffInput(ffb, b);
    nl.markOutput(a);
    nl.validate();
  }
};

TEST(BridgeFaults, WiredAndSemantics) {
  Fixture f;
  const PatternSet pats = generatePatterns(f.nl, 64);
  const FaultSimulator sim(f.nl, pats);
  const FaultResponse r = simulateBridge(sim, {f.a, f.b, BridgeKind::WiredAnd});
  // Cell ffa errs exactly when x=1 & y=0 (a reads 0 instead of 1); ffb when
  // x=0 & y=1.
  const BitVector& xs = pats.stream(f.x);
  const BitVector& ys = pats.stream(f.y);
  for (std::size_t i = 0; i < r.failingCellOrdinals.size(); ++i) {
    const bool isFfa = r.failingCellOrdinals[i] == 0;
    for (std::size_t t = 0; t < 64; ++t) {
      const bool expect = isFfa ? (xs.test(t) && !ys.test(t)) : (!xs.test(t) && ys.test(t));
      EXPECT_EQ(r.errorStreams[i].test(t), expect) << "t=" << t << " ffa=" << isFfa;
    }
  }
}

TEST(BridgeFaults, DominantSemantics) {
  Fixture f;
  const PatternSet pats = generatePatterns(f.nl, 64);
  const FaultSimulator sim(f.nl, pats);
  const FaultResponse r = simulateBridge(sim, {f.a, f.b, BridgeKind::ADominatesB});
  // Only ffb can err (b reads a), exactly when x != y.
  ASSERT_EQ(r.failingCellCount(), 1u);
  EXPECT_EQ(r.failingCellOrdinals[0], 1u);
  const BitVector expected = pats.stream(f.x) ^ pats.stream(f.y);
  EXPECT_EQ(r.errorStreams[0], expected);
}

TEST(BridgeFaults, FeedbackFreeCheck) {
  Netlist nl;
  const GateId p = nl.addInput("p");
  const GateId g1 = nl.addGate(GateType::Not, "g1", {p});
  const GateId g2 = nl.addGate(GateType::Not, "g2", {g1});
  const GateId g3 = nl.addGate(GateType::Not, "g3", {p});
  nl.markOutput(g2);
  nl.markOutput(g3);
  EXPECT_FALSE(isFeedbackFree(nl, g1, g2));  // g1 -> g2 path
  EXPECT_FALSE(isFeedbackFree(nl, g2, g1));
  EXPECT_TRUE(isFeedbackFree(nl, g2, g3));   // parallel branches
}

TEST(BridgeFaults, EnumerationIsFeedbackFreeAndDeterministic) {
  const Netlist nl = generateNamedCircuit("s953");
  const auto a = enumerateBridgeCandidates(nl, 50, 7);
  const auto b = enumerateBridgeCandidates(nl, 50, 7);
  ASSERT_EQ(a.size(), 50u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(isFeedbackFree(nl, a[i].a, a[i].b));
    EXPECT_EQ(a[i].a, b[i].a);
    EXPECT_EQ(a[i].b, b[i].b);
    EXPECT_EQ(a[i].kind, b[i].kind);
  }
}

TEST(BridgeFaults, DiagnosisStackConsumesBridgeResponses) {
  // The whole point: FaultResponse is model-agnostic, so partition diagnosis
  // runs unchanged and stays sound on bridges.
  const Netlist nl = generateNamedCircuit("s9234");
  const PatternSet pats = generatePatterns(nl, 128);
  const FaultSimulator sim(nl, pats);
  const ScanTopology topology = ScanTopology::singleChain(nl.dffs().size());
  DiagnosisConfig config;
  config.scheme = SchemeKind::TwoStep;
  config.numPartitions = 8;
  config.groupsPerPartition = 16;
  config.numPatterns = 128;
  const DiagnosisPipeline pipeline(topology, config);

  std::size_t detected = 0;
  for (const BridgeFault& bridge : enumerateBridgeCandidates(nl, 60, 0xB1d)) {
    const FaultResponse r = simulateBridge(sim, bridge);
    if (!r.detected()) continue;
    ++detected;
    const FaultDiagnosis d = pipeline.diagnose(r);
    EXPECT_TRUE(r.failingCells.isSubsetOf(d.candidates.cells))
        << bridgeKindName(bridge.kind) << " " << nl.gateName(bridge.a) << "~"
        << nl.gateName(bridge.b);
  }
  EXPECT_GT(detected, 20u);
}

TEST(BridgeFaults, InvalidBridgesRejected) {
  Fixture f;
  const PatternSet pats = generatePatterns(f.nl, 16);
  const FaultSimulator sim(f.nl, pats);
  EXPECT_THROW(simulateBridge(sim, {f.a, f.a, BridgeKind::WiredAnd}), std::invalid_argument);
  EXPECT_THROW(simulateBridge(sim, {f.a, static_cast<GateId>(999), BridgeKind::WiredAnd}),
               std::invalid_argument);
}

}  // namespace
}  // namespace scandiag
