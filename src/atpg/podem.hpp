// PODEM — deterministic test pattern generation for single stuck-at faults.
//
// The paper drives diagnosis with pseudorandom PRPG patterns; a deterministic
// ATPG substrate lets the benches ask how diagnosis behaves under the *other*
// industrial regime (compact deterministic test sets detect each fault with
// far fewer patterns, so each fault produces far fewer error bits — see
// bench_ext_atpg). It also provides exact testability data: a fault PODEM
// proves untestable can never produce failing cells.
//
// Classic PODEM (Goel 1981) over the full-scan combinational frame:
//  * values are pairs of 3-valued planes (good, faulty); (1,0) = D, (0,1) = D̄;
//  * decisions are made only at sources (PIs and scan cells), chosen by
//    backtracing the current objective through X-valued gates;
//  * the objective is fault activation first, then D-frontier propagation;
//  * implication is full levelized 3-valued evaluation of both planes, with
//    the faulty plane forced at the fault site;
//  * success when a D/D̄ reaches an observation point (PO or a DFF D input);
//    exhausting the decision tree (within the backtrack limit) proves the
//    fault untestable.
#pragma once

#include <optional>

#include "common/bitvector.hpp"
#include "sim/fault_simulator.hpp"

namespace scandiag {

/// A generated test: source assignments with explicit care bits. Unassigned
/// (X) sources may take any value without losing detection.
struct TestCube {
  /// Indexed by GateId; meaningful only for source gates with care set.
  BitVector care;
  BitVector value;

  /// Materializes the cube into pattern `t` of `patterns`, filling X bits
  /// from `fillSeed`'s bit stream (deterministic).
  void applyTo(PatternSet& patterns, std::size_t t, const Netlist& netlist,
               std::uint64_t fillSeed) const;
};

struct AtpgStats {
  std::size_t decisions = 0;
  std::size_t backtracks = 0;
};

enum class AtpgOutcome {
  Detected,     // cube generated
  Untestable,   // decision tree exhausted: no test exists
  Aborted,      // backtrack limit hit
};

struct AtpgResult {
  AtpgOutcome outcome = AtpgOutcome::Aborted;
  TestCube cube;  // valid iff outcome == Detected
  AtpgStats stats;
};

class PodemAtpg {
 public:
  explicit PodemAtpg(const Netlist& netlist);

  /// Generates a test observing the fault at a scan cell or primary output.
  AtpgResult generate(const FaultSite& fault, std::size_t backtrackLimit = 5000) const;

  /// Deterministic test set for a fault list with reverse-order fault
  /// dropping: later faults already detected by earlier cubes get no new
  /// cube. Returns the cubes in generation order.
  std::vector<TestCube> generateCompactSet(const std::vector<FaultSite>& faults,
                                           std::size_t backtrackLimit = 5000) const;

 private:
  const Netlist* netlist_;
  Levelization lev_;
};

/// PatternSet assembled from cubes (one pattern per cube, X filled
/// pseudorandomly), ready for the fault simulator / diagnosis stack.
PatternSet patternsFromCubes(const Netlist& netlist, const std::vector<TestCube>& cubes,
                             std::uint64_t fillSeed = 0xF1LL);

}  // namespace scandiag
