#include "atpg/podem.hpp"

#include <array>
#include <memory>

#include "common/assert.hpp"
#include "common/rng.hpp"

namespace scandiag {

namespace {

// 3-valued logic: 0, 1, X.
enum V3 : std::uint8_t { V0 = 0, V1 = 1, VX = 2 };

V3 v3Not(V3 a) { return a == VX ? VX : (a == V0 ? V1 : V0); }

V3 evalGate3(GateType type, const std::vector<GateId>& fanins,
             const std::vector<V3>& values, int faultPin, V3 forced) {
  auto in = [&](std::size_t k) -> V3 {
    return static_cast<int>(k) == faultPin ? forced : values[fanins[k]];
  };
  switch (type) {
    case GateType::Buf:
      return in(0);
    case GateType::Not:
      return v3Not(in(0));
    case GateType::And:
    case GateType::Nand: {
      bool anyX = false;
      for (std::size_t k = 0; k < fanins.size(); ++k) {
        const V3 v = in(k);
        if (v == V0) return type == GateType::And ? V0 : V1;
        anyX |= (v == VX);
      }
      if (anyX) return VX;
      return type == GateType::And ? V1 : V0;
    }
    case GateType::Or:
    case GateType::Nor: {
      bool anyX = false;
      for (std::size_t k = 0; k < fanins.size(); ++k) {
        const V3 v = in(k);
        if (v == V1) return type == GateType::Or ? V1 : V0;
        anyX |= (v == VX);
      }
      if (anyX) return VX;
      return type == GateType::Or ? V0 : V1;
    }
    case GateType::Xor:
    case GateType::Xnor: {
      std::uint8_t parity = type == GateType::Xnor ? 1 : 0;
      for (std::size_t k = 0; k < fanins.size(); ++k) {
        const V3 v = in(k);
        if (v == VX) return VX;
        parity ^= v;
      }
      return parity ? V1 : V0;
    }
    case GateType::Const0:
      return V0;
    case GateType::Const1:
      return V1;
    case GateType::Input:
    case GateType::Dff:
      break;
  }
  throw std::logic_error("evalGate3 on a source gate");
}

/// Non-controlling input value that lets a D pass through the gate.
V3 nonControlling(GateType type) {
  switch (type) {
    case GateType::And:
    case GateType::Nand:
      return V1;
    case GateType::Or:
    case GateType::Nor:
      return V0;
    default:
      return V0;  // XOR family propagates under any value
  }
}

bool invertingType(GateType type) {
  return type == GateType::Nand || type == GateType::Nor || type == GateType::Not ||
         type == GateType::Xnor;
}

struct Decision {
  GateId source;
  bool value;
  bool flipped;
};

}  // namespace

void TestCube::applyTo(PatternSet& patterns, std::size_t t, const Netlist& netlist,
                       std::uint64_t fillSeed) const {
  Xoroshiro128 rng(fillSeed ^ (0x9e3779b97f4a7c15ULL * (t + 1)));
  for (GateId id = 0; id < netlist.gateCount(); ++id) {
    if (!patterns.isSource(id)) continue;
    const bool bit = (id < care.size() && care.test(id)) ? value.test(id) : rng.nextBool();
    patterns.stream(id).set(t, bit);
  }
}

PodemAtpg::PodemAtpg(const Netlist& netlist) : netlist_(&netlist), lev_(levelize(netlist)) {}

AtpgResult PodemAtpg::generate(const FaultSite& fault, std::size_t backtrackLimit) const {
  const Netlist& nl = *netlist_;
  SCANDIAG_REQUIRE(fault.gate < nl.gateCount(), "fault site out of range");
  AtpgResult result;

  // The "fault line" whose good value must be the complement of the stuck
  // value: the site's output, or the driver seen by the faulted pin.
  const GateId faultLine =
      fault.isOutputFault() ? fault.gate : nl.gate(fault.gate).fanins[fault.pin];
  const V3 stuck = fault.stuckAt ? V1 : V0;
  const V3 activate = v3Not(stuck);
  const bool dffPinFault =
      !fault.isOutputFault() && nl.gate(fault.gate).type == GateType::Dff;

  std::vector<V3> good(nl.gateCount(), VX);
  std::vector<V3> faulty(nl.gateCount(), VX);
  std::vector<Decision> decisions;

  // Observation points: primary outputs and DFF D drivers.
  std::vector<std::pair<GateId, GateId>> obs;  // (line in good/faulty planes, owner)
  for (GateId po : nl.outputs()) obs.push_back({po, po});
  for (GateId dff : nl.dffs()) obs.push_back({nl.gate(dff).fanins[0], dff});

  auto imply = [&] {
    for (GateId id = 0; id < nl.gateCount(); ++id) {
      const GateType t = nl.gate(id).type;
      if (t == GateType::Const0) good[id] = faulty[id] = V0;
      if (t == GateType::Const1) good[id] = faulty[id] = V1;
      if (t == GateType::Input || t == GateType::Dff) {
        good[id] = VX;
        faulty[id] = VX;
      }
    }
    for (const Decision& d : decisions) good[d.source] = faulty[d.source] = d.value ? V1 : V0;
    if (fault.isOutputFault() && isSourceType(nl.gate(fault.gate).type))
      faulty[fault.gate] = stuck;
    for (GateId id : lev_.order) {
      const Gate& g = nl.gate(id);
      good[id] = evalGate3(g.type, g.fanins, good, FaultSite::kOutputPin, VX);
      if (id == fault.gate && fault.isOutputFault()) {
        faulty[id] = stuck;
      } else if (id == fault.gate && !fault.isOutputFault()) {
        faulty[id] = evalGate3(g.type, g.fanins, faulty, fault.pin, stuck);
      } else {
        faulty[id] = evalGate3(g.type, g.fanins, faulty, FaultSite::kOutputPin, VX);
      }
    }
  };

  auto isD = [&](GateId line) {
    return good[line] != VX && faulty[line] != VX && good[line] != faulty[line];
  };

  auto observed = [&] {
    // A DFF D-pin fault is observed at its own cell once activated.
    if (dffPinFault) return good[faultLine] == activate;
    for (const auto& [line, owner] : obs) {
      (void)owner;
      if (isD(line)) return true;
    }
    return false;
  };

  auto dFrontierPick = [&]() -> std::optional<std::pair<GateId, V3>> {
    for (GateId id : lev_.order) {
      if (good[id] != VX && faulty[id] != VX) continue;  // output already set
      const Gate& g = nl.gate(id);
      // For a pin fault, the D is injected *inside* the owning gate's
      // evaluation, so the owner belongs to the frontier as soon as the
      // fault is activated even though no fanin carries a plane-level D.
      bool hasD = !fault.isOutputFault() && id == fault.gate && good[faultLine] == activate;
      GateId xInput = kInvalidGate;
      for (GateId f : g.fanins) {
        if (isD(f)) hasD = true;
        if (good[f] == VX && xInput == kInvalidGate) xInput = f;
      }
      if (hasD && xInput != kInvalidGate)
        return std::make_pair(xInput, nonControlling(g.type));
    }
    return std::nullopt;
  };

  // Backtrace an objective to a source decision through X-valued gates.
  auto backtrace = [&](GateId line, V3 target) -> std::optional<std::pair<GateId, bool>> {
    while (!isSourceType(nl.gate(line).type)) {
      const Gate& g = nl.gate(line);
      if (invertingType(g.type)) target = v3Not(target);
      GateId next = kInvalidGate;
      for (GateId f : g.fanins) {
        if (good[f] == VX) {
          next = f;
          break;
        }
      }
      if (next == kInvalidGate) return std::nullopt;  // no X path: conflict
      line = next;
    }
    return std::make_pair(line, target == V1);
  };

  auto backtrack = [&]() -> bool {
    while (!decisions.empty()) {
      Decision& d = decisions.back();
      if (!d.flipped) {
        d.flipped = true;
        d.value = !d.value;
        ++result.stats.backtracks;
        return true;
      }
      decisions.pop_back();
    }
    return false;
  };

  while (true) {
    imply();
    if (good[faultLine] == activate && observed()) {
      result.outcome = AtpgOutcome::Detected;
      result.cube.care = BitVector(nl.gateCount());
      result.cube.value = BitVector(nl.gateCount());
      for (const Decision& d : decisions) {
        result.cube.care.set(d.source);
        if (d.value) result.cube.value.set(d.source);
      }
      return result;
    }

    // Choose the next objective.
    std::optional<std::pair<GateId, V3>> objective;
    bool conflict = false;
    if (good[faultLine] == stuck) {
      conflict = true;  // fault can no longer be activated
    } else if (good[faultLine] == VX) {
      objective = std::make_pair(faultLine, activate);
    } else if (!dffPinFault) {
      objective = dFrontierPick();
      conflict = !objective.has_value();  // activated but D-frontier dead
    } else {
      conflict = true;  // dff pin fault activated implies observed; unreachable
    }

    std::optional<std::pair<GateId, bool>> decision;
    if (!conflict) {
      decision = backtrace(objective->first, objective->second);
      conflict = !decision.has_value();
    }
    if (conflict) {
      if (result.stats.backtracks >= backtrackLimit) {
        result.outcome = AtpgOutcome::Aborted;
        return result;
      }
      if (!backtrack()) {
        result.outcome = AtpgOutcome::Untestable;
        return result;
      }
      continue;
    }
    decisions.push_back(Decision{decision->first, decision->second, false});
    ++result.stats.decisions;
  }
}

std::vector<TestCube> PodemAtpg::generateCompactSet(const std::vector<FaultSite>& faults,
                                                    std::size_t backtrackLimit) const {
  std::vector<TestCube> cubes;
  // Fault dropping: a fault already detected by the accumulated patterns gets
  // no new cube. The simulator is rebuilt in blocks to amortize its setup.
  std::unique_ptr<PatternSet> patterns;
  std::unique_ptr<FaultSimulator> sim;
  std::size_t patternsInSim = 0;
  auto rebuild = [&] {
    if (cubes.empty()) return;
    patterns = std::make_unique<PatternSet>(*netlist_, cubes.size());
    for (std::size_t t = 0; t < cubes.size(); ++t)
      cubes[t].applyTo(*patterns, t, *netlist_, 0xF111);
    sim = std::make_unique<FaultSimulator>(*netlist_, *patterns);
    patternsInSim = cubes.size();
  };
  for (const FaultSite& fault : faults) {
    if (sim && sim->simulate(fault).detected()) continue;  // dropped
    const AtpgResult r = generate(fault, backtrackLimit);
    if (r.outcome != AtpgOutcome::Detected) continue;
    cubes.push_back(r.cube);
    if (cubes.size() - patternsInSim >= 32 || !sim) rebuild();
  }
  return cubes;
}

PatternSet patternsFromCubes(const Netlist& netlist, const std::vector<TestCube>& cubes,
                             std::uint64_t fillSeed) {
  SCANDIAG_REQUIRE(!cubes.empty(), "no cubes to assemble");
  PatternSet patterns(netlist, cubes.size());
  for (std::size_t t = 0; t < cubes.size(); ++t)
    cubes[t].applyTo(patterns, t, netlist, fillSeed);
  return patterns;
}

}  // namespace scandiag
