#include "soc/soc_experiment_driver.hpp"

#include "bist/prpg.hpp"
#include "common/assert.hpp"
#include "common/thread_pool.hpp"
#include "sim/fault_list.hpp"

namespace scandiag {

std::vector<FaultResponse> socResponsesForFailingCore(const Soc& soc, std::size_t coreIndex,
                                                      const WorkloadConfig& config) {
  SCANDIAG_REQUIRE(coreIndex < soc.coreCount(), "core index out of range");
  const CoreInstance& core = soc.core(coreIndex);

  WorkloadConfig local = config;
  local.prpg.seed = config.prpg.seed ^ (0x9e3779b97f4a7c15ULL * (coreIndex + 1));
  local.faultSeed = config.faultSeed ^ (0xc2b2ae3d27d4eb4fULL * (coreIndex + 1));

  const PatternSet patterns = generatePatterns(*core.netlist, local.numPatterns, local.prpg);
  const FaultSimulator sim(*core.netlist, patterns);
  const FaultList universe = FaultList::enumerateCollapsed(*core.netlist);
  const std::vector<FaultSite> candidates =
      universe.sample(std::min(universe.size(), local.numFaults * 4), local.faultSeed);
  std::vector<FaultResponse> responses = sim.collectDetected(candidates, local.numFaults);

  // Lift local DFF ordinals to global cell ids.
  const std::size_t total = soc.totalCells();
  for (FaultResponse& r : responses) {
    BitVector global(total);
    for (std::size_t& ord : r.failingCellOrdinals) {
      ord += core.cellOffset;
      global.set(ord);
    }
    r.failingCells = std::move(global);
  }
  return responses;
}

std::vector<FaultResponse> socResponsesForFailingCores(
    const Soc& soc, const std::vector<std::size_t>& coreIndices, const WorkloadConfig& config) {
  SCANDIAG_REQUIRE(!coreIndices.empty(), "need at least one failing core");
  std::vector<std::vector<FaultResponse>> perCore;
  std::size_t count = static_cast<std::size_t>(-1);
  for (std::size_t k : coreIndices) {
    perCore.push_back(socResponsesForFailingCore(soc, k, config));
    count = std::min(count, perCore.back().size());
  }
  std::vector<FaultResponse> combined;
  combined.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    FaultResponse merged = perCore[0][i];
    for (std::size_t c = 1; c < perCore.size(); ++c) {
      const FaultResponse& other = perCore[c][i];
      merged.failingCells |= other.failingCells;
      merged.failingCellOrdinals.insert(merged.failingCellOrdinals.end(),
                                        other.failingCellOrdinals.begin(),
                                        other.failingCellOrdinals.end());
      merged.errorStreams.insert(merged.errorStreams.end(), other.errorStreams.begin(),
                                 other.errorStreams.end());
    }
    combined.push_back(std::move(merged));
  }
  return combined;
}

std::uint64_t socSweepIdFor(const DiagnosisConfig& config, std::size_t coreIndex) {
  return setupDigestPiece("core", coreIndex, sweepIdFor(config));
}

std::vector<SocDrRow> evaluateSocDr(const Soc& soc, const WorkloadConfig& workload,
                                    const DiagnosisConfig& config,
                                    const RunControl& control,
                                    SweepCheckpoint* checkpoint) {
  // Cores are independent experiments (each derives its own seeds from the
  // core index), so they fan out across the pool into per-core row slots;
  // the nested pipeline.evaluate() parallelism runs inline on the worker
  // (thread_pool nested-use guard). Row k never depends on scheduling.
  const DiagnosisPipeline pipeline(soc.topology(), config);
  std::vector<SocDrRow> rows(soc.coreCount());
  globalPool().parallelFor(soc.coreCount(), [&](std::size_t k) {
    control.throwIfStopped();
    const std::vector<FaultResponse> responses = socResponsesForFailingCore(soc, k, workload);
    rows[k] = SocDrRow{soc.core(k).name,
                       evaluateWithCheckpoint(pipeline, responses, checkpoint,
                                              socSweepIdFor(config, k), control)};
  });
  return rows;
}

}  // namespace scandiag
