// Builders for the paper's two evaluation SOCs (§5) plus replicated SOCs.
//
//  * SOC-1: the six largest ISCAS-89 circuits stitched behind a single meta
//    scan chain (one TestRail wire). 32 groups per partition in the paper.
//  * d695 variant: the eight full-scan ISCAS-89 modules of the ITC'02 d695
//    benchmark on an 8-bit TAM with 8 balanced meta chains, cores daisy-
//    chained in Fig. 4 order. 8 groups per partition in the paper.
//  * Replicated SOCs ("rep:<module>x<R>[:w<W>]"): R instances of one module —
//    the distributed-identical-blocks shape of Wang/Wu/Ivanov — used by the
//    million-cell dedup sweeps. All R instances share ONE arena-owned netlist
//    (memory is flat in R), and buildSocFromModules likewise generates each
//    distinct module name once and aliases repeats.
//
// Core netlists come from the synthetic generator (DESIGN.md §5); pass a
// custom module list to build any other core mix.
#pragma once

#include "netlist/synthetic_generator.hpp"
#include "soc/core_instance.hpp"

namespace scandiag {

/// Generic builder: generates one netlist per *distinct* ISCAS-89 profile
/// name (repeated names alias the same arena netlist) and threads `tamWidth`
/// meta chains through the instances in daisy-chain order.
Soc buildSocFromModules(const std::string& socName, const std::vector<std::string>& modules,
                        std::size_t tamWidth, const GeneratorOptions& options = {});

/// Six largest ISCAS-89 circuits, single meta scan chain.
Soc buildSoc1(const GeneratorOptions& options = {});

/// d695 variant: 8 ISCAS-89 modules, 8-bit TAM.
Soc buildD695(const GeneratorOptions& options = {}, std::size_t tamWidth = 8);

/// `replication` instances of one module (named "<module>#<k>") sharing a
/// single generated netlist, behind a `tamWidth`-bit TAM.
Soc buildReplicatedSoc(const std::string& module, std::size_t replication,
                       std::size_t tamWidth, const GeneratorOptions& options = {});

/// SOC spec grammar shared by the CLI and benches:
///   "soc1" | "d695" | "rep:<module>x<R>[:w<W>]"  (e.g. "rep:s38584x702:w8").
/// Throws std::invalid_argument on a malformed spec or unknown module.
Soc buildSocFromSpec(const std::string& spec, const GeneratorOptions& options = {});

}  // namespace scandiag
