// Builders for the paper's two evaluation SOCs (§5).
//
//  * SOC-1: the six largest ISCAS-89 circuits stitched behind a single meta
//    scan chain (one TestRail wire). 32 groups per partition in the paper.
//  * d695 variant: the eight full-scan ISCAS-89 modules of the ITC'02 d695
//    benchmark on an 8-bit TAM with 8 balanced meta chains, cores daisy-
//    chained in Fig. 4 order. 8 groups per partition in the paper.
//
// Core netlists come from the synthetic generator (DESIGN.md §5); pass a
// custom module list to build any other core mix.
#pragma once

#include "netlist/synthetic_generator.hpp"
#include "soc/core_instance.hpp"

namespace scandiag {

/// Generic builder: generates one core per named ISCAS-89 profile (daisy-
/// chain order as given) and threads `tamWidth` meta chains through them.
Soc buildSocFromModules(const std::string& socName, const std::vector<std::string>& modules,
                        std::size_t tamWidth, const GeneratorOptions& options = {});

/// Six largest ISCAS-89 circuits, single meta scan chain.
Soc buildSoc1(const GeneratorOptions& options = {});

/// d695 variant: 8 ISCAS-89 modules, 8-bit TAM.
Soc buildD695(const GeneratorOptions& options = {}, std::size_t tamWidth = 8);

}  // namespace scandiag
