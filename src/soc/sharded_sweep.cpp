#include "soc/sharded_sweep.hpp"

#include <algorithm>
#include <stdexcept>

#include "bist/prpg.hpp"
#include "common/assert.hpp"
#include "obs/metrics.hpp"
#include "sim/fault_list.hpp"
#include "sim/fault_simulator.hpp"
#include "soc/core_class.hpp"
#include "soc/meta_scan_builder.hpp"

namespace scandiag {

SocShardSpec parseShardSpec(const std::string& text) {
  const std::size_t slash = text.find('/');
  if (slash == std::string::npos || slash == 0 || slash + 1 == text.size()) {
    throw std::invalid_argument("bad shard spec '" + text + "': expected i/N (0-based)");
  }
  SocShardSpec spec;
  try {
    spec.index = static_cast<std::uint32_t>(std::stoul(text.substr(0, slash)));
    spec.count = static_cast<std::uint32_t>(std::stoul(text.substr(slash + 1)));
  } catch (const std::exception&) {
    throw std::invalid_argument("bad shard spec '" + text + "': not numbers");
  }
  if (spec.count == 0 || spec.index >= spec.count) {
    throw std::invalid_argument("bad shard spec '" + text + "': need index < count");
  }
  return spec;
}

std::uint64_t socClassSweepId(const DiagnosisConfig& config, std::uint64_t classHash,
                              std::size_t classOrdinal) {
  std::uint64_t d = setupDigestPiece("class", classHash, sweepIdFor(config));
  return setupDigestPiece("class_ordinal", classOrdinal, d);
}

SocSweepResult runSocClassSweep(const Soc& soc, const WorkloadConfig& workload,
                                const DiagnosisConfig& config, const SocSweepOptions& options,
                                const RunControl& control, SweepCheckpoint* checkpoint,
                                MemoryRecordSink* collector) {
  SCANDIAG_REQUIRE(options.shard.count >= 1 && options.shard.index < options.shard.count,
                   "invalid shard spec");

  // Class layout. With dedup off every instance is its own class (one
  // core_class_miss each — artifacts built from scratch, no sharing).
  struct ClassPlan {
    std::size_t representative;
    std::uint64_t hash;
    std::vector<std::size_t> instances;
  };
  std::vector<ClassPlan> plans;
  if (options.dedupClasses) {
    const CoreClassIndex index(soc);
    plans.reserve(index.classCount());
    for (std::size_t c = 0; c < index.classCount(); ++c) {
      plans.push_back(ClassPlan{index.representative(c), index.classHash(c),
                                index.instancesOf(c)});
    }
  } else {
    plans.reserve(soc.coreCount());
    for (std::size_t k = 0; k < soc.coreCount(); ++k) {
      obs::count(obs::Counter::CoreClassMisses);
      plans.push_back(
          ClassPlan{k, structuralNetlistHash(*soc.core(k).netlist), {k}});
    }
  }

  if (checkpoint) {
    ShardMetaRecord meta;
    meta.shardIndex = options.shard.index;
    meta.shardCount = options.shard.count;
    meta.baseDigest = options.baseDigest;
    meta.socSpec = options.socSpec;
    checkpoint->appendAux(kShardMetaRecordType, encodeShardMetaRecord(meta));
  }

  TeeRecordSink tee(checkpoint, collector);
  FaultRecordSink* sink = nullptr;
  if (checkpoint || collector) sink = &tee;

  const std::size_t tamWidth = soc.topology().numChains();
  SocSweepResult result;
  result.coreCount = soc.coreCount();
  result.classCount = plans.size();
  result.totalCells = soc.totalCells();
  result.classes.reserve(plans.size());
  result.manifests.reserve(plans.size());

  for (std::size_t c = 0; c < plans.size(); ++c) {
    control.throwIfStopped();
    const ClassPlan& plan = plans[c];
    const CoreInstance& rep = soc.core(plan.representative);

    // Class-keyed seeds: every instance of the class — in any SOC — gets the
    // same patterns and fault sample, which is what makes one evaluation
    // transferable to all siblings.
    WorkloadConfig local = workload;
    local.prpg.seed = workload.prpg.seed ^ fnv1a64(plan.hash, 0x9e3779b97f4a7c15ULL);
    local.faultSeed = workload.faultSeed ^ fnv1a64(plan.hash, 0xc2b2ae3d27d4eb4fULL);

    const PatternSet patterns = generatePatterns(*rep.netlist, local.numPatterns, local.prpg);
    const FaultSimulator sim(*rep.netlist, patterns);
    const FaultList universe = FaultList::enumerateCollapsed(*rep.netlist);
    const std::vector<FaultSite> candidates =
        universe.sample(std::min(universe.size(), local.numFaults * 4), local.faultSeed);
    const std::vector<FaultResponse> responses =
        sim.collectDetected(candidates, local.numFaults);

    // Diagnosis runs on the class's core-local topology — identical for
    // every sibling, so partitions, group tables, and verdicts transfer.
    const ScanTopology topology = coreLocalTopology(rep.numCells(), tamWidth);
    const DiagnosisPipeline pipeline(topology, config);

    const std::uint64_t sweepId = socClassSweepId(config, plan.hash, c);
    SweepManifestRecord manifest;
    manifest.sweepId = sweepId;
    manifest.classHash = plan.hash;
    manifest.classOrdinal = static_cast<std::uint32_t>(c);
    manifest.responseCount = static_cast<std::uint32_t>(responses.size());
    manifest.instanceCount = static_cast<std::uint32_t>(plan.instances.size());
    manifest.className = rep.name;
    if (checkpoint) {
      checkpoint->appendAux(kSweepManifestRecordType, encodeSweepManifestRecord(manifest));
    }

    // Shard i owns the contiguous fault range [i*R/N, (i+1)*R/N). The split
    // is over the (deterministic, shard-invariant) response count, so the N
    // ranges tile [0, R) exactly.
    const std::size_t r = responses.size();
    const std::size_t lo = r * options.shard.index / options.shard.count;
    const std::size_t hi = r * (options.shard.index + 1) / options.shard.count;

    SocClassRow row;
    row.classOrdinal = c;
    row.className = rep.name;
    row.classHash = plan.hash;
    row.instanceCount = plan.instances.size();
    row.responseCount = r;
    row.report = evaluateWithCheckpointRange(pipeline, responses, sink, sweepId, lo, hi, control);
    result.classes.push_back(std::move(row));
    result.manifests.push_back(std::move(manifest));
  }
  return result;
}

}  // namespace scandiag
