#include "soc/journal_merge.hpp"

#include <algorithm>

#include "common/journal.hpp"

namespace scandiag {

namespace {

bool sameManifest(const SweepManifestRecord& a, const SweepManifestRecord& b) {
  return a.sweepId == b.sweepId && a.classHash == b.classHash &&
         a.classOrdinal == b.classOrdinal && a.responseCount == b.responseCount &&
         a.instanceCount == b.instanceCount && a.className == b.className;
}

}  // namespace

MergedJournals mergeShardJournals(const std::vector<std::string>& paths) {
  if (paths.empty()) throw JournalFormatError("merge: no journals given");

  MergedJournals merged;
  std::map<std::uint64_t, SweepManifestRecord> manifestsBySweep;
  std::vector<bool> shardSeen;
  bool first = true;

  for (const std::string& path : paths) {
    const JournalContents contents = readJournal(path);
    if (contents.truncatedTail) {
      throw JournalCorruptError("merge: '" + path +
                                "' has a torn tail — the shard died mid-append; resume it to "
                                "completion before merging");
    }

    // Pass 1: shard meta + manifests (shard-invariant metadata).
    bool haveMeta = false;
    ShardMetaRecord meta;
    for (const JournalRecord& rec : contents.records) {
      if (rec.type == kShardMetaRecordType) {
        const ShardMetaRecord m = decodeShardMetaRecord(rec.payload);
        if (haveMeta && (m.shardIndex != meta.shardIndex || m.shardCount != meta.shardCount ||
                         m.baseDigest != meta.baseDigest || m.socSpec != meta.socSpec)) {
          throw JournalCorruptError("merge: '" + path +
                                    "' carries conflicting shard meta records");
        }
        meta = m;
        haveMeta = true;
      }
    }
    if (!haveMeta) {
      throw JournalFormatError("merge: '" + path +
                               "' has no shard meta record — not a sharded-sweep journal");
    }
    if (first) {
      merged.baseDigest = meta.baseDigest;
      merged.shardCount = meta.shardCount;
      merged.socSpec = meta.socSpec;
      shardSeen.assign(meta.shardCount, false);
      first = false;
    } else {
      if (meta.baseDigest != merged.baseDigest || meta.socSpec != merged.socSpec) {
        throw JournalDigestMismatchError(
            "merge: '" + path + "' belongs to a different sweep (base digest mismatch)");
      }
      if (meta.shardCount != merged.shardCount) {
        throw JournalCorruptError("merge: '" + path + "' says " +
                                  std::to_string(meta.shardCount) + " shards; earlier journals said " +
                                  std::to_string(merged.shardCount));
      }
    }
    if (shardSeen[meta.shardIndex]) {
      throw JournalCorruptError("merge: shard " + std::to_string(meta.shardIndex) +
                                " appears in more than one journal ('" + path + "')");
    }
    shardSeen[meta.shardIndex] = true;

    for (const JournalRecord& rec : contents.records) {
      if (rec.type != kSweepManifestRecordType) continue;
      SweepManifestRecord m = decodeSweepManifestRecord(rec.payload);
      const auto it = manifestsBySweep.find(m.sweepId);
      if (it == manifestsBySweep.end()) {
        manifestsBySweep.emplace(m.sweepId, std::move(m));
      } else if (!sameManifest(it->second, m)) {
        throw JournalCorruptError("merge: '" + path + "' disagrees about sweep manifest for class '" +
                                  m.className + "'");
      }
    }

    // Pass 2: fault records. Within this journal duplicates are legal
    // (crash/resume residue, last write wins); a key already merged from a
    // DIFFERENT journal means overlapping shard ranges.
    std::map<std::pair<std::uint64_t, std::uint32_t>, FaultRecord> local;
    for (const JournalRecord& rec : contents.records) {
      if (rec.type != kFaultRecordType) continue;
      FaultRecord fault = decodeFaultRecord(rec.payload);
      local[std::make_pair(fault.sweepId, fault.faultIndex)] = std::move(fault);
    }
    for (auto& [key, fault] : local) {
      if (merged.records.count(key) != 0) {
        throw JournalCorruptError("merge: fault " + std::to_string(key.second) +
                                  " of sweep " + std::to_string(key.first) +
                                  " appears in more than one journal — overlapping shard ranges");
      }
      merged.records.emplace(key, std::move(fault));
      ++merged.faultRecordsMerged;
    }
  }

  for (std::uint32_t s = 0; s < merged.shardCount; ++s) {
    if (!shardSeen[s]) {
      throw JournalCorruptError("merge: shard " + std::to_string(s) + " of " +
                                std::to_string(merged.shardCount) +
                                " is missing from the given journals");
    }
  }

  // Validate record keys against the manifests before anyone renders.
  for (const auto& [key, fault] : merged.records) {
    const auto it = manifestsBySweep.find(key.first);
    if (it == manifestsBySweep.end()) {
      throw JournalCorruptError("merge: fault record for unknown sweep " +
                                std::to_string(key.first));
    }
    if (key.second >= it->second.responseCount) {
      throw JournalCorruptError("merge: fault index " + std::to_string(key.second) +
                                " out of range for class '" + it->second.className + "' (" +
                                std::to_string(it->second.responseCount) + " faults)");
    }
  }

  merged.manifests.reserve(manifestsBySweep.size());
  for (auto& [sweepId, m] : manifestsBySweep) merged.manifests.push_back(std::move(m));
  std::sort(merged.manifests.begin(), merged.manifests.end(),
            [](const SweepManifestRecord& a, const SweepManifestRecord& b) {
              return a.classOrdinal < b.classOrdinal;
            });
  return merged;
}

}  // namespace scandiag
