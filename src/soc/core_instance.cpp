#include "soc/core_instance.hpp"

#include "common/assert.hpp"

namespace scandiag {

Soc::Soc(std::string name, std::vector<CoreInstance> cores, ScanTopology topology)
    : name_(std::move(name)), cores_(std::move(cores)), topology_(std::move(topology)) {
  SCANDIAG_REQUIRE(!cores_.empty(), "SOC needs at least one core");
  std::size_t expectedOffset = 0;
  for (const CoreInstance& c : cores_) {
    SCANDIAG_REQUIRE(c.netlist != nullptr, "core instance has no netlist");
    SCANDIAG_REQUIRE(c.cellOffset == expectedOffset, "core cell offsets must be contiguous");
    expectedOffset += c.numCells();
  }
  SCANDIAG_REQUIRE(expectedOffset == topology_.numCells(),
                   "meta scan topology does not cover all core cells");
}

std::size_t Soc::coreOfCell(std::size_t globalCell) const {
  SCANDIAG_REQUIRE(globalCell < totalCells(), "global cell id out of range");
  for (std::size_t k = cores_.size(); k-- > 0;) {
    if (globalCell >= cores_[k].cellOffset) return k;
  }
  SCANDIAG_ASSERT(false, "unreachable: offsets start at 0");
}

std::size_t Soc::coreIndex(std::string_view name) const {
  for (std::size_t k = 0; k < cores_.size(); ++k) {
    if (cores_[k].name == name) return k;
  }
  SCANDIAG_REQUIRE(false, "unknown core name: " + std::string(name));
}

}  // namespace scandiag
