#include "soc/soc_builder.hpp"

#include <map>
#include <stdexcept>

#include "common/assert.hpp"
#include "soc/meta_scan_builder.hpp"

namespace scandiag {

namespace {

Soc assembleSoc(const std::string& socName, std::vector<CoreInstance> cores,
                std::size_t tamWidth) {
  std::vector<std::size_t> cellCounts;
  cellCounts.reserve(cores.size());
  std::size_t offset = 0;
  for (CoreInstance& core : cores) {
    core.cellOffset = offset;
    offset += core.numCells();
    cellCounts.push_back(core.numCells());
  }
  return Soc(socName, std::move(cores), buildMetaChains(cellCounts, tamWidth));
}

}  // namespace

Soc buildSocFromModules(const std::string& socName, const std::vector<std::string>& modules,
                        std::size_t tamWidth, const GeneratorOptions& options) {
  // Arena: one generated netlist per distinct module name; repeated names
  // alias it (the generator is deterministic, so the dedup is exact).
  std::map<std::string, std::shared_ptr<const Netlist>> arena;
  std::vector<CoreInstance> cores;
  cores.reserve(modules.size());
  for (const std::string& m : modules) {
    auto it = arena.find(m);
    if (it == arena.end()) {
      it = arena.emplace(m, std::make_shared<const Netlist>(generateNamedCircuit(m, options)))
               .first;
    }
    cores.push_back(CoreInstance{m, it->second, 0});
  }
  return assembleSoc(socName, std::move(cores), tamWidth);
}

Soc buildSoc1(const GeneratorOptions& options) {
  return buildSocFromModules("soc1", sixLargestIscas89(), /*tamWidth=*/1, options);
}

Soc buildD695(const GeneratorOptions& options, std::size_t tamWidth) {
  return buildSocFromModules("d695", d695Iscas89Modules(), tamWidth, options);
}

Soc buildReplicatedSoc(const std::string& module, std::size_t replication,
                       std::size_t tamWidth, const GeneratorOptions& options) {
  SCANDIAG_REQUIRE(replication >= 1, "replication must be >= 1");
  const auto shared =
      std::make_shared<const Netlist>(generateNamedCircuit(module, options));
  std::vector<CoreInstance> cores;
  cores.reserve(replication);
  for (std::size_t k = 0; k < replication; ++k) {
    cores.push_back(CoreInstance{module + "#" + std::to_string(k), shared, 0});
  }
  return assembleSoc("rep-" + module + "x" + std::to_string(replication), std::move(cores),
                     tamWidth);
}

Soc buildSocFromSpec(const std::string& spec, const GeneratorOptions& options) {
  if (spec == "soc1") return buildSoc1(options);
  if (spec == "d695") return buildD695(options);
  if (spec.rfind("rep:", 0) == 0) {
    // rep:<module>x<R>[:w<W>]
    std::string body = spec.substr(4);
    std::size_t tamWidth = 1;
    const std::size_t colon = body.find(':');
    if (colon != std::string::npos) {
      const std::string w = body.substr(colon + 1);
      if (w.size() < 2 || w[0] != 'w') {
        throw std::invalid_argument("bad SOC spec '" + spec + "': expected ':w<W>' suffix");
      }
      tamWidth = std::stoul(w.substr(1));
      body = body.substr(0, colon);
    }
    const std::size_t x = body.rfind('x');
    if (x == std::string::npos || x == 0 || x + 1 == body.size()) {
      throw std::invalid_argument("bad SOC spec '" + spec +
                                  "': expected rep:<module>x<R>[:w<W>]");
    }
    const std::string module = body.substr(0, x);
    std::size_t replication = 0;
    try {
      replication = std::stoul(body.substr(x + 1));
    } catch (const std::exception&) {
      throw std::invalid_argument("bad SOC spec '" + spec + "': replication is not a number");
    }
    if (replication == 0) {
      throw std::invalid_argument("bad SOC spec '" + spec + "': replication must be >= 1");
    }
    return buildReplicatedSoc(module, replication, tamWidth, options);
  }
  throw std::invalid_argument("unknown SOC spec '" + spec +
                              "' (expected soc1, d695, or rep:<module>x<R>[:w<W>])");
}

}  // namespace scandiag
