#include "soc/soc_builder.hpp"

#include "soc/meta_scan_builder.hpp"

namespace scandiag {

Soc buildSocFromModules(const std::string& socName, const std::vector<std::string>& modules,
                        std::size_t tamWidth, const GeneratorOptions& options) {
  std::vector<CoreInstance> cores;
  cores.reserve(modules.size());
  std::vector<std::size_t> cellCounts;
  cellCounts.reserve(modules.size());
  std::size_t offset = 0;
  for (const std::string& m : modules) {
    CoreInstance core;
    core.name = m;
    core.netlist = generateNamedCircuit(m, options);
    core.cellOffset = offset;
    offset += core.numCells();
    cellCounts.push_back(core.numCells());
    cores.push_back(std::move(core));
  }
  return Soc(socName, std::move(cores), buildMetaChains(cellCounts, tamWidth));
}

Soc buildSoc1(const GeneratorOptions& options) {
  return buildSocFromModules("soc1", sixLargestIscas89(), /*tamWidth=*/1, options);
}

Soc buildD695(const GeneratorOptions& options, std::size_t tamWidth) {
  return buildSocFromModules("d695", d695Iscas89Modules(), tamWidth, options);
}

}  // namespace scandiag
