// Class-deduped, shardable SOC fault sweeps.
//
// The class-sweep protocol diagnoses each structural core class ONCE on its
// *core-local* topology (the W balanced sub-chains every instance of the
// class contributes to the TAM — see coreLocalTopology). Because siblings
// are structurally identical and the class workload is keyed by the class's
// structural hash (not the instance index), the representative's patterns,
// fault list, responses, PreparedPartitionSet, and per-fault diagnoses are
// *exactly* what any sibling would produce — one class evaluation is the
// diagnosis of every instance, and the report carries the instance
// multiplicity. This is deliberately a different protocol from
// evaluateSocDr (paper §5, Tables 3-4), which diagnoses each core through
// the global meta-chain partitions with per-index seeds; that path is
// unchanged.
//
// Sharding: a sweep over F faults splits into N contiguous fault ranges
// (shard i owns [i*F/N, (i+1)*F/N) of every class). Each shard process runs
// with its own journal; every shard writes the same shard-invariant metadata
// (one ShardMetaRecord carrying the sweep's unsharded base digest, one
// SweepManifestRecord per class) plus fault records for its range only.
// merge-journals (journal_merge.*) reassembles N such journals into the
// complete record set and renders the same report an unsharded `--report`
// run writes, byte for byte.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "diagnosis/checkpoint.hpp"
#include "diagnosis/experiment_driver.hpp"
#include "soc/core_instance.hpp"

namespace scandiag {

struct SocShardSpec {
  std::uint32_t index = 0;
  std::uint32_t count = 1;
};

/// Parses "i/N" (0-based, i < N). Throws std::invalid_argument on nonsense.
SocShardSpec parseShardSpec(const std::string& text);

struct SocSweepOptions {
  SocShardSpec shard{};
  /// False disables structural dedup: every instance becomes its own class
  /// and is evaluated from scratch (the A/B baseline bench_soc_scale times
  /// dedup speedup against).
  bool dedupClasses = true;
  /// Digest of the unsharded setup (no shard pieces) — stamped into the
  /// shard meta record so merge-journals can prove sibling journals belong
  /// to one sweep.
  std::uint64_t baseDigest = 0;
  /// SOC spec string (e.g. "rep:s5378x32:w8") — stamped into the shard meta
  /// record so merged reports carry the same label as live ones.
  std::string socSpec;
};

/// One structural class's sweep outcome for this run's fault range.
struct SocClassRow {
  std::size_t classOrdinal = 0;
  std::string className;  // representative instance's name
  std::uint64_t classHash = 0;
  std::size_t instanceCount = 0;
  std::size_t responseCount = 0;  // full (unsharded) fault count of the class sweep
  DrReport report;                // this shard's range only
};

struct SocSweepResult {
  std::vector<SocClassRow> classes;             // class-ordinal order
  std::vector<SweepManifestRecord> manifests;   // class-ordinal order
  std::size_t coreCount = 0;
  std::size_t classCount = 0;
  std::size_t totalCells = 0;
};

/// Sweep id of one class's fault sweep. Mixes the class's structural hash
/// AND its ordinal, so a no-dedup run (N identical-hash classes) still
/// journals each instance under a distinct sweep.
std::uint64_t socClassSweepId(const DiagnosisConfig& config, std::uint64_t classHash,
                              std::size_t classOrdinal);

/// Runs the class sweep. `checkpoint` (optional) journals shard meta +
/// manifests + this range's fault records and replays on resume;
/// `collector` (optional) accumulates the complete record set in memory for
/// live report rendering. `control` is polled per fault.
SocSweepResult runSocClassSweep(const Soc& soc, const WorkloadConfig& workload,
                                const DiagnosisConfig& config, const SocSweepOptions& options,
                                const RunControl& control = {},
                                SweepCheckpoint* checkpoint = nullptr,
                                MemoryRecordSink* collector = nullptr);

}  // namespace scandiag
