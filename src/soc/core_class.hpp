// Structural isomorphism classes over SOC core netlists.
//
// Real SOCs replicate identical cores many times (Wang/Wu/Ivanov's
// distributed identical blocks, PAPERS.md). Everything the diagnosis stack
// derives from a core's *structure* — cone analysis, collapsed fault lists,
// PreparedPartitionSets, fault-simulation responses — is identical for every
// instance of a structural class, so it should be computed once per class and
// shared read-only across instances.
//
// structuralNetlistHash() fingerprints a netlist's structure and nothing
// else: gate types, fanin wiring, and the input/DFF/output orderings, all in
// construction-id space. Instance names never enter the hash (two copies of
// s38584 hash equal regardless of what the SOC calls them); changing one gate
// type or one fanin changes the hash. The synthetic generator is
// deterministic, so equal (module, options) implies equal ids and therefore
// equal hashes — and unequal hashes always mean structurally different
// netlists. Equal hashes for *different* structures would need an FNV-1a
// collision; CoreClassIndex additionally short-circuits on shared-pointer
// identity, which is how replicated SOCs (soc_builder arena) dedup without
// hashing every sibling.
//
// Class ordinals are assigned in order of first appearance over ascending
// core index — permuting instances of existing classes never changes which
// class a module maps to, and the per-class counters core_class_misses (new
// class built) / core_class_hits (instance served by an existing class) are
// deterministic for a given SOC.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "soc/core_instance.hpp"

namespace scandiag {

/// Order-sensitive structural fingerprint of `netlist` (names excluded).
std::uint64_t structuralNetlistHash(const Netlist& netlist);

class CoreClassIndex {
 public:
  /// Partitions `soc`'s cores into structural classes. Counts one
  /// core_class_miss per class and one core_class_hit per additional
  /// instance beyond its class representative.
  explicit CoreClassIndex(const Soc& soc);

  std::size_t classCount() const { return classes_.size(); }
  /// Class ordinal of core `coreIndex` (first-appearance order).
  std::size_t classOf(std::size_t coreIndex) const { return classOf_.at(coreIndex); }
  /// Lowest core index of the class — the instance whose artifacts all
  /// siblings share.
  std::size_t representative(std::size_t classId) const {
    return classes_.at(classId).instances.front();
  }
  /// Ascending core indices belonging to the class.
  const std::vector<std::size_t>& instancesOf(std::size_t classId) const {
    return classes_.at(classId).instances;
  }
  /// Structural hash of the class's netlist.
  std::uint64_t classHash(std::size_t classId) const { return classes_.at(classId).hash; }

 private:
  struct ClassInfo {
    std::uint64_t hash = 0;
    const Netlist* netlist = nullptr;  // representative's netlist (identity fast path)
    std::vector<std::size_t> instances;
  };
  std::vector<ClassInfo> classes_;
  std::vector<std::size_t> classOf_;
};

}  // namespace scandiag
