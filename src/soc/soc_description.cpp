#include "soc/soc_description.hpp"

#include <cctype>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>

#include "common/assert.hpp"
#include "common/errors.hpp"
#include "soc/meta_scan_builder.hpp"

namespace scandiag {

namespace {

[[noreturn]] void fail(int line, const std::string& msg) {
  throw ParseError(".soc", line, msg);
}

// Descriptions come from disk; a corrupted count must not be able to request a
// billion-gate synthetic circuit. The largest ISCAS-89 profile is ~24k gates.
constexpr unsigned long long kMaxCount = 1ull << 24;

std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream is(line);
  std::string t;
  while (is >> t) tokens.push_back(t);
  return tokens;
}

std::size_t parseCount(const std::string& text, int line, const std::string& what) {
  // std::stoull silently wraps negative input; reject it explicitly.
  if (!text.empty() && text[0] == '-') fail(line, what + " must be positive, got '" + text + "'");
  try {
    std::size_t consumed = 0;
    const unsigned long long v = std::stoull(text, &consumed);
    if (consumed != text.size())
      fail(line, "expected a number for " + what + ", got '" + text + "'");
    if (v == 0) fail(line, what + " must be positive");
    if (v > kMaxCount) fail(line, what + " out of range: '" + text + "'");
    return static_cast<std::size_t>(v);
  } catch (const ParseError&) {
    throw;
  } catch (const std::invalid_argument&) {
    fail(line, "expected a number for " + what + ", got '" + text + "'");
  } catch (const std::out_of_range&) {
    fail(line, what + " out of range: '" + text + "'");
  }
}

}  // namespace

SocDescription parseSocDescription(std::istream& in) {
  SocDescription desc;
  std::string raw;
  int lineNo = 0;
  bool sawSoc = false;
  while (std::getline(in, raw)) {
    ++lineNo;
    const std::size_t hash = raw.find('#');
    if (hash != std::string::npos) raw.erase(hash);
    const std::vector<std::string> tokens = tokenize(raw);
    if (tokens.empty()) continue;

    if (tokens[0] == "soc") {
      if (tokens.size() != 2) fail(lineNo, "soc takes exactly one name");
      if (sawSoc) fail(lineNo, "duplicate soc line");
      desc.name = tokens[1];
      sawSoc = true;
    } else if (tokens[0] == "tam") {
      if (tokens.size() != 2) fail(lineNo, "tam takes exactly one width");
      desc.tamWidth = parseCount(tokens[1], lineNo, "tam width");
    } else if (tokens[0] == "core") {
      if (tokens.size() < 4) fail(lineNo, "core needs a name and attributes");
      CoreDescription core;
      core.instanceName = tokens[1];
      for (const CoreDescription& existing : desc.cores) {
        if (existing.instanceName == core.instanceName)
          fail(lineNo, "duplicate core instance '" + core.instanceName + "'");
      }
      if (tokens[2] == "profile") {
        if (tokens.size() != 4) fail(lineNo, "core ... profile takes one library name");
        try {
          core.profile = iscas89Profile(tokens[3]);
        } catch (const ParseError&) {
          throw;
        } catch (const std::invalid_argument& e) {
          fail(lineNo, e.what());
        }
      } else {
        // Explicit counts: inputs N outputs N dffs N gates N (any order).
        core.profile.name = core.instanceName;
        bool gotIn = false, gotOut = false, gotFf = false, gotGates = false;
        for (std::size_t i = 2; i + 1 < tokens.size(); i += 2) {
          const std::string& key = tokens[i];
          const std::size_t value = parseCount(tokens[i + 1], lineNo, key);
          if (key == "inputs") {
            core.profile.numInputs = value;
            gotIn = true;
          } else if (key == "outputs") {
            core.profile.numOutputs = value;
            gotOut = true;
          } else if (key == "dffs") {
            core.profile.numDffs = value;
            gotFf = true;
          } else if (key == "gates") {
            core.profile.numGates = value;
            gotGates = true;
          } else {
            fail(lineNo, "unknown core attribute '" + key + "'");
          }
        }
        if (tokens.size() % 2 != 0) fail(lineNo, "core attribute without a value");
        if (!(gotIn && gotOut && gotFf && gotGates))
          fail(lineNo, "explicit core needs inputs, outputs, dffs, and gates");
      }
      desc.cores.push_back(std::move(core));
    } else {
      fail(lineNo, "unknown directive '" + tokens[0] + "'");
    }
  }
  if (!sawSoc) fail(lineNo, "missing 'soc <name>' line");
  if (desc.cores.empty()) fail(lineNo, "SOC has no cores");
  return desc;
}

SocDescription parseSocDescriptionString(const std::string& text) {
  std::istringstream in(text);
  return parseSocDescription(in);
}

SocDescription parseSocDescriptionFile(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) throw FileNotFoundError(path);
  return parseSocDescription(in);
}

std::string writeSocDescription(const SocDescription& description) {
  std::ostringstream os;
  os << "# scandiag SOC description\n";
  os << "soc " << description.name << "\n";
  os << "tam " << description.tamWidth << "\n";
  for (const CoreDescription& core : description.cores) {
    os << "core " << core.instanceName;
    bool isLibrary = false;
    try {
      const Iscas89Profile& lib = iscas89Profile(core.profile.name);
      isLibrary = lib.numInputs == core.profile.numInputs &&
                  lib.numOutputs == core.profile.numOutputs &&
                  lib.numDffs == core.profile.numDffs && lib.numGates == core.profile.numGates;
    } catch (const std::invalid_argument&) {
    }
    if (isLibrary) {
      os << " profile " << core.profile.name;
    } else {
      os << " inputs " << core.profile.numInputs << " outputs " << core.profile.numOutputs
         << " dffs " << core.profile.numDffs << " gates " << core.profile.numGates;
    }
    os << "\n";
  }
  return os.str();
}

Soc buildSocFromDescription(const SocDescription& description,
                            const GeneratorOptions& options) {
  std::vector<CoreInstance> cores;
  std::vector<std::size_t> cellCounts;
  std::size_t offset = 0;
  // Arena: instances referencing the same library profile share one netlist
  // (generateCircuit is deterministic in (profile, options)).
  std::map<std::string, std::shared_ptr<const Netlist>> arena;
  for (const CoreDescription& cd : description.cores) {
    CoreInstance core;
    core.name = cd.instanceName;
    auto it = arena.find(cd.profile.name);
    if (it == arena.end()) {
      it = arena
               .emplace(cd.profile.name,
                        std::make_shared<const Netlist>(generateCircuit(cd.profile, options)))
               .first;
    }
    core.netlist = it->second;
    core.cellOffset = offset;
    offset += core.numCells();
    cellCounts.push_back(core.numCells());
    cores.push_back(std::move(core));
  }
  return Soc(description.name, std::move(cores),
             buildMetaChains(cellCounts, description.tamWidth));
}

}  // namespace scandiag
