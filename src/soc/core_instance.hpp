// Embedded cores and the SOC under diagnosis.
//
// An SOC here is a set of cores (each a full-scan netlist) plus a TestRail-
// style test access mechanism: W meta scan chains threaded through the cores
// in daisy-chain order (Marinissen et al. [10]). Scan cells get *global* ids —
// core k's local DFF ordinal j becomes global id offset(k) + j — and the meta
// scan topology is expressed over global ids, so the entire diagnosis stack
// (partitions, sessions, pruning, DR) runs unchanged on an SOC.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "bist/scan_topology.hpp"
#include "netlist/netlist.hpp"

namespace scandiag {

struct CoreInstance {
  std::string name;
  /// Shared read-only: replicated instances of one module alias a single
  /// arena-owned netlist (soc_builder dedups by module name), so SOC memory
  /// scales with distinct modules, not instance count. The shared pointer is
  /// also the core-class fast path — pointer equality proves isomorphism
  /// without hashing.
  std::shared_ptr<const Netlist> netlist;
  /// Global id of this core's scan cell 0.
  std::size_t cellOffset = 0;

  std::size_t numCells() const { return netlist->dffs().size(); }
};

class Soc {
 public:
  Soc(std::string name, std::vector<CoreInstance> cores, ScanTopology topology);

  const std::string& name() const { return name_; }
  const std::vector<CoreInstance>& cores() const { return cores_; }
  const CoreInstance& core(std::size_t k) const { return cores_.at(k); }
  std::size_t coreCount() const { return cores_.size(); }

  const ScanTopology& topology() const { return topology_; }
  std::size_t totalCells() const { return topology_.numCells(); }

  /// Core owning a global cell id.
  std::size_t coreOfCell(std::size_t globalCell) const;

  /// Index of the core named `name`; throws if absent.
  std::size_t coreIndex(std::string_view name) const;

 private:
  std::string name_;
  std::vector<CoreInstance> cores_;
  ScanTopology topology_;
};

}  // namespace scandiag
