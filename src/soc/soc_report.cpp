#include "soc/soc_report.hpp"

#include <array>
#include <sstream>

#include "common/json.hpp"
#include "diagnosis/metrics.hpp"
#include "obs/metrics.hpp"

namespace scandiag {

std::string renderSocReport(const SocReportMeta& meta,
                            const std::vector<SweepManifestRecord>& manifests,
                            const std::map<std::pair<std::uint64_t, std::uint32_t>,
                                           FaultRecord>& records) {
  std::array<std::uint64_t, obs::kNumCounters> counterSums{};
  std::ostringstream os;
  {
    JsonWriter writer(os);
    writer.beginObject();
    writer.field("schema_version", std::uint64_t{1});
    writer.field("report", "soc-class-sweep");
    writer.field("soc", meta.soc);
    writer.field("setup_digest", meta.baseDigest);
    writer.key("classes");
    writer.beginArray();
    for (const SweepManifestRecord& m : manifests) {
      DrAccumulator acc;
      for (std::uint32_t f = 0; f < m.responseCount; ++f) {
        const auto it = records.find(std::make_pair(m.sweepId, f));
        if (it == records.end()) {
          throw JournalCorruptError("soc report: class '" + m.className + "' is missing fault " +
                                    std::to_string(f) + " of " +
                                    std::to_string(m.responseCount));
        }
        const FaultRecord& rec = it->second;
        acc.add(static_cast<std::size_t>(rec.candidateCount),
                static_cast<std::size_t>(rec.actualCount));
        for (const auto& [counter, delta] : rec.counterDeltas) counterSums[counter] += delta;
      }
      writer.beginObject();
      writer.field("class", std::uint64_t{m.classOrdinal});
      writer.field("name", m.className);
      writer.field("class_hash", m.classHash);
      writer.field("instances", std::uint64_t{m.instanceCount});
      writer.field("faults", std::uint64_t{m.responseCount});
      writer.field("sum_candidates", acc.sumCandidates());
      writer.field("sum_actual", acc.sumActual());
      writer.field("dr", acc.dr());
      writer.endObject();
    }
    writer.endArray();
    // Summed per-fault counter deltas — the shard-invariant counter view.
    writer.key("counters");
    writer.beginObject();
    for (std::size_t i = 0; i < obs::kNumCounters; ++i) {
      writer.field(obs::counterName(static_cast<obs::Counter>(i)), counterSums[i]);
    }
    writer.endObject();
    writer.endObject();
  }
  os << "\n";
  return os.str();
}

}  // namespace scandiag
