// Canonical SOC class-sweep report rendering.
//
// ONE function renders the report JSON from (manifests, per-fault records) —
// `scandiag soc-dr --report` feeds it the records its MemoryRecordSink
// collected live, `scandiag merge-journals` feeds it the records reassembled
// from N shard journals. Byte-identity of the two outputs is therefore a
// property of the *data*, not of two renderers staying in sync: if the
// merged record set equals the live record set, the bytes are equal.
//
// Everything in the report is deterministic: DR is an exact function of the
// journaled candidate/actual sums, and the counters section is the sum of
// the per-fault counter deltas (NOT a registry snapshot — a shard process's
// registry also counts its own workload prep, which legitimately differs
// between a 1-process and an N-process sweep).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "diagnosis/checkpoint.hpp"

namespace scandiag {

struct SocReportMeta {
  std::string soc;                // SOC spec/name
  std::uint64_t baseDigest = 0;   // unsharded setup digest
};

/// Renders the report. `manifests` must be in class-ordinal order; `records`
/// is the complete (sweepId, faultIndex) → FaultRecord map covering
/// [0, responseCount) for every manifest. Throws JournalCorruptError when a
/// manifest's coverage is incomplete or a record's index is out of range —
/// rendering never invents partial numbers.
std::string renderSocReport(const SocReportMeta& meta,
                            const std::vector<SweepManifestRecord>& manifests,
                            const std::map<std::pair<std::uint64_t, std::uint32_t>,
                                           FaultRecord>& records);

}  // namespace scandiag
