// Meta scan chain construction for a daisy-chain TestRail.
//
// With a W-bit TAM, each core's internal scan cells are reorganized into W
// balanced sub-chains; meta chain c is the concatenation of every core's
// sub-chain c in daisy-chain order (paper Fig. 4). With W = 1 this degenerates
// to one meta chain threading all cores back to back (the paper's first SOC).
// Either way a core occupies a *contiguous run of shift positions* on every
// meta chain — the clustering property that makes interval-based partitioning
// effective for SOC diagnosis (paper §5).
#pragma once

#include <cstddef>
#include <vector>

#include "bist/scan_topology.hpp"

namespace scandiag {

/// cellCounts[k] = number of scan cells of core k (daisy-chain order); cells
/// of core k get global ids [Σ_{i<k} cellCounts[i], ...). Returns the meta
/// topology over all cells.
ScanTopology buildMetaChains(const std::vector<std::size_t>& cellCounts, std::size_t tamWidth);

/// Shift-position interval [first, last] occupied by core k on the meta
/// chains (for reporting and tests).
struct CoreSpan {
  std::size_t firstPosition;
  std::size_t lastPosition;
};
CoreSpan coreSpanOnMetaChains(const std::vector<std::size_t>& cellCounts, std::size_t tamWidth,
                              std::size_t coreIndex);

/// The topology one core contributes to a W-bit TAM, in *local* cell ids:
/// the same W balanced sub-chains buildMetaChains would thread through it
/// (empty sub-chains dropped). Every instance of a structural class yields
/// the same local topology, which is what lets the class-deduped sweep
/// diagnose once per class and transfer the result to all siblings.
ScanTopology coreLocalTopology(std::size_t cellCount, std::size_t tamWidth);

}  // namespace scandiag
