// Merging sharded sweep journals back into one report.
//
// Input: the N journals of one sharded class sweep (any order). The merge is
// pure validation + reassembly — no diagnosis reruns — and is deliberately
// paranoid, because combining shards hides exactly the failures a single
// journal's digest check would catch:
//
//  * torn tail          → refused (JournalCorruptError). A torn tail means
//                         the shard died mid-append; resume that shard to
//                         completion first (resume truncates the tail), then
//                         merge. Merging would silently drop its last fault.
//  * missing shard meta → refused (not a shard journal).
//  * foreign digest     → refused (JournalDigestMismatchError) when base
//                         digests differ across journals — the shards come
//                         from different sweeps.
//  * duplicate shard    → refused; so are shardCount disagreements, a
//                         missing shard index, and manifest disagreements.
//  * overlapping ranges → refused: the same (sweepId, faultIndex) appearing
//                         in two *different* journals means the shard ranges
//                         overlapped — records could disagree, and which one
//                         wins would be input-order-dependent. Within ONE
//                         journal duplicates are the normal crash/resume
//                         artifact and resolve last-write-wins, exactly as
//                         SweepCheckpoint replays them.
//  * range overflow     → refused when a fault index is outside its
//                         manifest's [0, responseCount).
//  * incomplete sweep   → renderSocReport throws when a manifest's fault
//                         range has holes (a shard was never run/finished).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "diagnosis/checkpoint.hpp"

namespace scandiag {

struct MergedJournals {
  std::uint64_t baseDigest = 0;
  std::uint32_t shardCount = 0;
  std::string socSpec;
  std::vector<SweepManifestRecord> manifests;  // class-ordinal order
  std::map<std::pair<std::uint64_t, std::uint32_t>, FaultRecord> records;
  std::uint64_t faultRecordsMerged = 0;
};

/// Reads, validates, and merges `paths` (one complete shard set). Throws the
/// typed journal errors documented above.
MergedJournals mergeShardJournals(const std::vector<std::string>& paths);

}  // namespace scandiag
