// SOC fault-diagnosis experiments (paper §5, Tables 3-4, Fig. 5).
//
// Protocol: assume one faulty core per experiment (a spot defect hits a small
// die area). For the failing core, sample and fault-simulate stuck-at faults
// with that core's own BIST patterns, then lift the responses to global cell
// ids so the SOC-wide diagnosis pipeline — partitions over the meta scan
// chains — sees each fault as a set of failing cells clustered inside the
// faulty core's run of shift positions.
#pragma once

#include "diagnosis/checkpoint.hpp"
#include "diagnosis/experiment_driver.hpp"
#include "soc/core_instance.hpp"

namespace scandiag {

/// Fault-simulates `config.numFaults` detected faults inside core
/// `coreIndex` and returns their responses with global cell ids (sized
/// soc.totalCells()). The PRPG seed is mixed with the core index so each
/// core's scan slice gets distinct pseudorandom data, as a shared TestRail
/// PRPG stream would provide.
std::vector<FaultResponse> socResponsesForFailingCore(const Soc& soc, std::size_t coreIndex,
                                                      const WorkloadConfig& config);

struct SocDrRow {
  std::string failingCore;
  DrReport report;
};

/// DR per failing core under one diagnosis configuration (the topology in
/// `config` is ignored; the SOC's meta topology is used). `control` is
/// polled at fault granularity inside every core's evaluation (inert by
/// default); `checkpoint` — when non-null — journals and replays each core's
/// completed faults under a per-core sweep id derived from `config` and the
/// core index, so a killed SOC sweep resumes from the first missing fault.
std::vector<SocDrRow> evaluateSocDr(const Soc& soc, const WorkloadConfig& workload,
                                    const DiagnosisConfig& config,
                                    const RunControl& control = {},
                                    SweepCheckpoint* checkpoint = nullptr);

/// The per-core sweep id evaluateSocDr journals core `coreIndex` under.
std::uint64_t socSweepIdFor(const DiagnosisConfig& config, std::size_t coreIndex);

/// Multiple faulty cores (paper §5: "the effect of multiple faults can be
/// viewed similarly"): pairs the i-th detected fault of every listed core
/// into one combined response whose failing cells are the union across cores
/// — the spot-defect-per-core model with several defective dies' worth of
/// cores failing in one test session. Response count = min over cores.
std::vector<FaultResponse> socResponsesForFailingCores(const Soc& soc,
                                                       const std::vector<std::size_t>& coreIndices,
                                                       const WorkloadConfig& config);

}  // namespace scandiag
