#include "soc/core_class.hpp"

#include "common/journal.hpp"
#include "obs/metrics.hpp"

namespace scandiag {

namespace {

std::uint64_t foldU64(std::uint64_t value, std::uint64_t h) { return fnv1a64(value, h); }

std::uint64_t foldIdList(const std::vector<GateId>& ids, std::uint64_t h) {
  h = foldU64(ids.size(), h);
  // GateId is a fixed-width integer, so the raw array is a platform-stable
  // byte sequence (little-endian everywhere this project builds).
  static_assert(sizeof(GateId) == 4);
  if (!ids.empty()) h = fnv1a64(ids.data(), ids.size() * sizeof(GateId), h);
  return h;
}

}  // namespace

std::uint64_t structuralNetlistHash(const Netlist& netlist) {
  std::uint64_t h = fnv1a64(std::string("netlist-structure-v1"));
  h = foldU64(netlist.gateCount(), h);
  for (GateId id = 0; id < netlist.gateCount(); ++id) {
    const Gate& g = netlist.gate(id);
    h = foldU64(static_cast<std::uint64_t>(g.type), h);
    h = foldIdList(g.fanins, h);
  }
  h = foldIdList(netlist.inputs(), h);
  h = foldIdList(netlist.dffs(), h);
  h = foldIdList(netlist.outputs(), h);
  return h;
}

CoreClassIndex::CoreClassIndex(const Soc& soc) {
  classOf_.reserve(soc.coreCount());
  for (std::size_t k = 0; k < soc.coreCount(); ++k) {
    const Netlist* netlist = soc.core(k).netlist.get();
    // Identity fast path: the soc_builder arena aliases replicated modules,
    // so siblings match by pointer without rehashing a million-cell SOC.
    std::size_t found = classes_.size();
    for (std::size_t c = 0; c < classes_.size(); ++c) {
      if (classes_[c].netlist == netlist) {
        found = c;
        break;
      }
    }
    if (found == classes_.size()) {
      const std::uint64_t hash = structuralNetlistHash(*netlist);
      for (std::size_t c = 0; c < classes_.size(); ++c) {
        if (classes_[c].hash == hash) {
          found = c;
          break;
        }
      }
      if (found == classes_.size()) {
        classes_.push_back(ClassInfo{hash, netlist, {}});
        obs::count(obs::Counter::CoreClassMisses);
      }
    }
    if (!classes_[found].instances.empty()) obs::count(obs::Counter::CoreClassHits);
    classes_[found].instances.push_back(k);
    classOf_.push_back(found);
  }
}

}  // namespace scandiag
