#include "soc/meta_scan_builder.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace scandiag {

namespace {

/// Length of core sub-chain c when n cells are split into W balanced blocks.
std::size_t subChainLength(std::size_t n, std::size_t tamWidth, std::size_t c) {
  return n / tamWidth + (c < n % tamWidth ? 1 : 0);
}

}  // namespace

ScanTopology buildMetaChains(const std::vector<std::size_t>& cellCounts, std::size_t tamWidth) {
  SCANDIAG_REQUIRE(tamWidth >= 1, "TAM width must be >= 1");
  SCANDIAG_REQUIRE(!cellCounts.empty(), "no cores");
  std::vector<std::vector<std::size_t>> chains(tamWidth);
  std::size_t offset = 0;
  for (std::size_t n : cellCounts) {
    // Contiguous local blocks per sub-chain keep each core's structural
    // locality intact within every meta chain.
    std::size_t local = 0;
    for (std::size_t c = 0; c < tamWidth; ++c) {
      const std::size_t len = subChainLength(n, tamWidth, c);
      for (std::size_t i = 0; i < len; ++i) chains[c].push_back(offset + local++);
    }
    SCANDIAG_ASSERT(local == n, "sub-chain split lost cells");
    offset += n;
  }
  // Drop empty meta chains (possible when some tiny core is the only one and
  // tamWidth exceeds every core's cell count — pathological but legal input).
  chains.erase(std::remove_if(chains.begin(), chains.end(),
                              [](const auto& c) { return c.empty(); }),
               chains.end());
  return ScanTopology::fromChains(std::move(chains));
}

ScanTopology coreLocalTopology(std::size_t cellCount, std::size_t tamWidth) {
  SCANDIAG_REQUIRE(tamWidth >= 1, "TAM width must be >= 1");
  SCANDIAG_REQUIRE(cellCount >= 1, "core has no scan cells");
  std::vector<std::vector<std::size_t>> chains(tamWidth);
  std::size_t local = 0;
  for (std::size_t c = 0; c < tamWidth; ++c) {
    const std::size_t len = subChainLength(cellCount, tamWidth, c);
    for (std::size_t i = 0; i < len; ++i) chains[c].push_back(local++);
  }
  SCANDIAG_ASSERT(local == cellCount, "sub-chain split lost cells");
  chains.erase(std::remove_if(chains.begin(), chains.end(),
                              [](const auto& c) { return c.empty(); }),
               chains.end());
  return ScanTopology::fromChains(std::move(chains));
}

CoreSpan coreSpanOnMetaChains(const std::vector<std::size_t>& cellCounts, std::size_t tamWidth,
                              std::size_t coreIndex) {
  SCANDIAG_REQUIRE(coreIndex < cellCounts.size(), "core index out of range");
  SCANDIAG_REQUIRE(cellCounts[coreIndex] > 0, "core has no scan cells");
  CoreSpan span{static_cast<std::size_t>(-1), 0};
  for (std::size_t c = 0; c < tamWidth; ++c) {
    std::size_t start = 0;
    for (std::size_t k = 0; k < coreIndex; ++k)
      start += subChainLength(cellCounts[k], tamWidth, c);
    const std::size_t len = subChainLength(cellCounts[coreIndex], tamWidth, c);
    if (len == 0) continue;
    span.firstPosition = std::min(span.firstPosition, start);
    span.lastPosition = std::max(span.lastPosition, start + len - 1);
  }
  return span;
}

}  // namespace scandiag
