// JSON export/import for metrics snapshots. The schema is stable and
// versioned so CI goldens and external tooling can rely on it:
//
//   {
//     "schema_version": 1,
//     "circuit": "s38584",          // context, "" when unknown
//     "scheme": "interval",
//     "threads": 4,
//     "counters": { "sessions_run": 123, ... },      // deterministic section
//     "phases": { "faulty_sim": {"nanos": N, "calls": C}, ... },
//     "workers": [ {"worker": 0, "busy_nanos": N, "tasks": T}, ... ]
//   }
//
// "counters" is the only section with cross-run/cross-thread-count guarantees
// (see metrics.hpp); "phases"/"workers" are wall-clock and excluded from CI
// comparison.
#pragma once

#include <iosfwd>
#include <string>

#include "obs/metrics.hpp"

namespace scandiag {
class JsonWriter;
class JsonValue;
}  // namespace scandiag

namespace scandiag::obs {

inline constexpr int kMetricsSchemaVersion = 1;

/// Run description attached to an exported snapshot.
struct MetricsContext {
  std::string circuit;
  std::string scheme;
  std::size_t threads = 0;
};

/// Emits just the {"name": value, ...} counters object (reused by bench
/// reports, which embed it next to their own rows).
void writeCountersObject(JsonWriter& writer, const MetricsSnapshot& snap);

/// Emits the {"name": {"nanos":..,"calls":..}, ...} phases object.
void writePhasesObject(JsonWriter& writer, const MetricsSnapshot& snap);

/// Emits the [{"worker":..,"busy_nanos":..,"tasks":..}, ...] array.
void writeWorkersArray(JsonWriter& writer, const MetricsSnapshot& snap);

/// Emits one complete schema-versioned metrics object (see header comment).
void writeMetricsObject(JsonWriter& writer, const MetricsSnapshot& snap,
                        const MetricsContext& context);

/// Snapshots the global registry and writes a full document to `path`.
/// Throws std::runtime_error if the file cannot be opened.
void writeMetricsFile(const std::string& path, const MetricsContext& context);

/// Rebuilds a snapshot from a parsed metrics document (full document or any
/// object with "counters"/"phases"/"workers" members). Unknown counter/phase
/// names throw (schema mismatch should be loud); missing sections are zero.
MetricsSnapshot snapshotFromJson(const JsonValue& root);

}  // namespace scandiag::obs
