// Pipeline observability: a process-wide, thread-safe metrics registry.
//
// Two kinds of measurements, with very different contracts:
//
//  * **Deterministic counters** — monotonic tallies of *work items* (sessions
//    run, partitions evaluated, faults simulated, ...). Every increment is
//    attached to a unit of work whose existence does not depend on
//    scheduling, so counter totals are bit-identical for every thread count
//    (the same contract as the DR outputs; enforced by
//    parallel_determinism_test and the CI bench-regression gate).
//  * **Timings** — scoped phase timers (nanoseconds per pipeline phase) and
//    per-worker thread-pool busy time. Wall-clock measurements are never
//    deterministic; exporters keep them in a separate section that CI
//    explicitly excludes from golden comparison.
//
// Cost model:
//  * `SCANDIAG_METRICS=OFF` CMake build: SCANDIAG_METRICS_ENABLED is 0 and
//    every shim below (count(), PhaseScope, WorkerScope) compiles to nothing
//    — zero instructions on the hot paths. The registry class itself stays
//    available (a few hundred bytes) so exporters and tests still link.
//  * Enabled build, runtime off (`SCANDIAG_METRICS=off` environment variable
//    or setEnabled(false)): one relaxed atomic load + branch per site.
//  * Enabled: one relaxed CAS per counter add — into the calling thread's own
//    cache-line-padded counter stripe (kCounterStripes round-robin lanes), so
//    concurrent adds from pool workers neither contend nor false-share — and
//    two steady_clock reads per scope. Counters sit at per-fault / per-partition
//    granularity, never
//    inside bit-level inner loops. PhaseScope/WorkerScope are costlier (the
//    clock reads) and are therefore kept OFF the per-fault bodies of the
//    batch DR loops — they wrap single-fault APIs, per-batch regions, and
//    per-partition retry paths only. That split keeps metrics-on overhead
//    under the 2% budget bench_perf is checked against.
//
// The registry is a header-inline singleton so that low-level code (e.g. the
// thread pool in scandiag_common) can record into it without a link-time
// dependency on the obs library; obs/export.* (JSON snapshot I/O) is the only
// part that needs linking against scandiag_obs.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <vector>

#ifndef SCANDIAG_METRICS_ENABLED
#define SCANDIAG_METRICS_ENABLED 1
#endif

namespace scandiag::obs {

/// True when the instrumentation shims compile to real code.
inline constexpr bool kMetricsCompiled = SCANDIAG_METRICS_ENABLED != 0;

// ---------------------------------------------------------------------------
// Taxonomy. Counter values are deterministic across thread counts; phases and
// worker stats are wall-clock.

enum class Counter : unsigned {
  SessionsRun = 0,          // BIST sessions emulated (one per group per partition)
  PartitionsEvaluated,      // partition verdict rows computed
  PartitionsGenerated,      // partitions produced by any partitioner
  FaultsSimulated,          // single-fault cone simulations (FaultSimulator)
  FaultsGraded,             // 64-way batch gradings (ParallelFaultSimulator)
  FaultsDiagnosed,          // full diagnose() invocations (clean + noisy)
  SignatureWordsHashed,     // 64-bit error-stream words folded into signatures
  RetrySessionsSpent,       // extra sessions charged to the recovery budget
  InconsistenciesDetected,  // impossible verdict patterns flagged by recovery
  NoiseEventsInjected,      // verdict corruptions applied by the injector
  ConeCacheHits,            // cone-path simulate() calls served by the cone cache
  ScratchGatesTouched,      // gate slots saved+restored by the scratch faulty sim
  JournalRecordsWritten,    // checkpoint records appended by this process
  JournalRecordsReplayed,   // checkpoint records replayed from a prior run
  WatchdogCancels,          // watchdog deadline trips (cancellation requested)
  BatchedGroupScores,       // group verdicts produced by the batched scorer
  BatchContribCells,        // per-cell contributions folded by the batched scorer
  ServeRequestsOk,          // serve: diagnosis requests answered Ok
  ServeRequestsShed,        // serve: connections shed BUSY at admission
  ServeDeadlineDegraded,    // serve: requests degraded to a partial DEADLINE reply
  ServeFramesRejected,      // serve: malformed/corrupt protocol frames rejected
  CoreClassHits,            // SOC core instances served by an existing class
  CoreClassMisses,          // SOC core isomorphism classes built from scratch
  AdaptiveSessionsSaved,    // budgeted sessions the adaptive planner left unspent
  AdaptiveCandidatesPruned, // candidate positions eliminated by adaptive steps
  DefectScenariosRun,       // defect-zoo scenarios diagnosed (k-fault unions)
  UnionSplits,              // interval splits spent resolving union candidates
  AtpgPatternsGenerated,    // PODEM distinguishing patterns applied to a stall
  DegradedSupersets,        // diagnoses that fell back to a superset-only answer
  kCount,
};

enum class Phase : unsigned {
  GoodMachineSim = 0,     // fault-free simulation of the pattern set
  FaultySim,              // faulty-machine simulation (single + batch)
  PartitionGen,           // partition/interval-seed generation
  SignatureCompare,       // session verdicts + signature hashing
  CandidateIntersection,  // inclusion-exclusion + pruning
  Recovery,               // inconsistency analysis + retry + degradation
  kCount,
};

inline constexpr std::size_t kNumCounters = static_cast<std::size_t>(Counter::kCount);
inline constexpr std::size_t kNumPhases = static_cast<std::size_t>(Phase::kCount);

/// Worker lanes beyond this many share no utilization slot (counters are
/// unaffected; only the per-worker busy-time breakdown truncates).
inline constexpr std::size_t kMaxTrackedWorkers = 128;

constexpr const char* counterName(Counter c) {
  switch (c) {
    case Counter::SessionsRun: return "sessions_run";
    case Counter::PartitionsEvaluated: return "partitions_evaluated";
    case Counter::PartitionsGenerated: return "partitions_generated";
    case Counter::FaultsSimulated: return "faults_simulated";
    case Counter::FaultsGraded: return "faults_graded";
    case Counter::FaultsDiagnosed: return "faults_diagnosed";
    case Counter::SignatureWordsHashed: return "signature_words_hashed";
    case Counter::RetrySessionsSpent: return "retry_sessions_spent";
    case Counter::InconsistenciesDetected: return "inconsistencies_detected";
    case Counter::NoiseEventsInjected: return "noise_events_injected";
    case Counter::ConeCacheHits: return "cone_cache_hits";
    case Counter::ScratchGatesTouched: return "scratch_gates_touched";
    case Counter::JournalRecordsWritten: return "journal_records_written";
    case Counter::JournalRecordsReplayed: return "journal_records_replayed";
    case Counter::WatchdogCancels: return "watchdog_cancels";
    case Counter::BatchedGroupScores: return "batched_group_scores";
    case Counter::BatchContribCells: return "batch_contrib_cells";
    case Counter::ServeRequestsOk: return "serve_requests_ok";
    case Counter::ServeRequestsShed: return "serve_requests_shed";
    case Counter::ServeDeadlineDegraded: return "serve_deadline_degraded";
    case Counter::ServeFramesRejected: return "serve_frames_rejected";
    case Counter::CoreClassHits: return "core_class_hits";
    case Counter::CoreClassMisses: return "core_class_misses";
    case Counter::AdaptiveSessionsSaved: return "adaptive_sessions_saved";
    case Counter::AdaptiveCandidatesPruned: return "adaptive_candidates_pruned";
    case Counter::DefectScenariosRun: return "defect_scenarios_run";
    case Counter::UnionSplits: return "union_splits";
    case Counter::AtpgPatternsGenerated: return "atpg_patterns_generated";
    case Counter::DegradedSupersets: return "degraded_supersets";
    case Counter::kCount: break;
  }
  return "unknown_counter";
}

constexpr const char* phaseName(Phase p) {
  switch (p) {
    case Phase::GoodMachineSim: return "good_machine_sim";
    case Phase::FaultySim: return "faulty_sim";
    case Phase::PartitionGen: return "partition_gen";
    case Phase::SignatureCompare: return "signature_compare";
    case Phase::CandidateIntersection: return "candidate_intersection";
    case Phase::Recovery: return "recovery";
    case Phase::kCount: break;
  }
  return "unknown_phase";
}

// ---------------------------------------------------------------------------
// Snapshot: a plain-value copy of the registry, safe to compare/serialize.

struct PhaseStat {
  std::uint64_t nanos = 0;
  std::uint64_t calls = 0;
  bool operator==(const PhaseStat&) const = default;
};

struct WorkerStat {
  std::size_t worker = 0;  // lane index: 0 = calling thread, 1..N = pool workers
  std::uint64_t busyNanos = 0;
  std::uint64_t tasks = 0;
  bool operator==(const WorkerStat&) const = default;
};

struct MetricsSnapshot {
  std::array<std::uint64_t, kNumCounters> counters{};
  std::array<PhaseStat, kNumPhases> phases{};
  /// Only lanes that recorded any activity, ascending by lane index.
  std::vector<WorkerStat> workers;
  bool operator==(const MetricsSnapshot&) const = default;

  std::uint64_t counter(Counter c) const {
    return counters[static_cast<std::size_t>(c)];
  }
  const PhaseStat& phase(Phase p) const { return phases[static_cast<std::size_t>(p)]; }
};

// ---------------------------------------------------------------------------
// Registry.

/// Counter stripes: each stripe is a cache-line-aligned block of counter
/// cells, and every thread is pinned (round-robin at first use) to one
/// stripe. Two threads therefore never contend on — or false-share — a
/// counter cache line unless more than kCounterStripes threads are live, and
/// totals stay exact: each increment lands in exactly one stripe, snapshot()
/// sums the stripes, so the aggregate is the same deterministic tally the
/// single-array design produced (the bit-identical-across-thread-counts
/// contract is unchanged).
inline constexpr std::size_t kCounterStripes = 16;

class MetricsRegistry {
 public:
  /// Process-wide instance. First use decides the initial runtime state from
  /// the SCANDIAG_METRICS environment variable (off|0|false disable).
  static MetricsRegistry& instance() {
    static MetricsRegistry registry;
    return registry;
  }

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void setEnabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }

  /// Saturating add: the counter sticks at UINT64_MAX instead of wrapping, so
  /// a long-running service degrades to "at least this many" rather than
  /// resetting to a small lie. Exact (never loses increments) below the cap.
  /// Lands in the calling thread's stripe — uncontended in the steady state.
  void add(Counter c, std::uint64_t n = 1) {
    saturatingAdd(stripes_[threadStripe()].cells[static_cast<std::size_t>(c)], n);
  }

  void addPhase(Phase p, std::uint64_t nanos) {
    const std::size_t i = static_cast<std::size_t>(p);
    saturatingAdd(phaseNanos_[i], nanos);
    saturatingAdd(phaseCalls_[i], 1);
  }

  void recordWorker(std::size_t lane, std::uint64_t busyNanos) {
    if (lane >= kMaxTrackedWorkers) return;
    saturatingAdd(workers_[lane].busy, busyNanos);
    saturatingAdd(workers_[lane].tasks, 1);
  }

  /// Zeroes every counter/timer. Not linearizable against concurrent adds —
  /// call it only while no instrumented work is in flight (bench setup, test
  /// fixtures), same rule as setGlobalThreadCount().
  void reset() {
    for (auto& stripe : stripes_)
      for (auto& c : stripe.cells) c.store(0, std::memory_order_relaxed);
    for (auto& p : phaseNanos_) p.store(0, std::memory_order_relaxed);
    for (auto& p : phaseCalls_) p.store(0, std::memory_order_relaxed);
    for (auto& w : workers_) {
      w.busy.store(0, std::memory_order_relaxed);
      w.tasks.store(0, std::memory_order_relaxed);
    }
  }

  /// Plain-value copy. Exact when no instrumented work is in flight. Counter
  /// totals are the saturating sum over the stripes.
  MetricsSnapshot snapshot() const {
    MetricsSnapshot snap;
    for (std::size_t i = 0; i < kNumCounters; ++i) {
      std::uint64_t total = 0;
      for (const CounterStripe& stripe : stripes_) {
        const std::uint64_t part = stripe.cells[i].load(std::memory_order_relaxed);
        total = part > UINT64_MAX - total ? UINT64_MAX : total + part;
      }
      snap.counters[i] = total;
    }
    for (std::size_t i = 0; i < kNumPhases; ++i) {
      snap.phases[i].nanos = phaseNanos_[i].load(std::memory_order_relaxed);
      snap.phases[i].calls = phaseCalls_[i].load(std::memory_order_relaxed);
    }
    for (std::size_t lane = 0; lane < kMaxTrackedWorkers; ++lane) {
      const std::uint64_t tasks = workers_[lane].tasks.load(std::memory_order_relaxed);
      if (tasks == 0) continue;
      snap.workers.push_back(
          WorkerStat{lane, workers_[lane].busy.load(std::memory_order_relaxed), tasks});
    }
    return snap;
  }

 private:
  MetricsRegistry() { enabled_.store(initialEnabled(), std::memory_order_relaxed); }

  static bool initialEnabled() {
    const char* env = std::getenv("SCANDIAG_METRICS");
    if (env == nullptr) return true;
    return !(std::strcmp(env, "off") == 0 || std::strcmp(env, "OFF") == 0 ||
             std::strcmp(env, "0") == 0 || std::strcmp(env, "false") == 0);
  }

  static void saturatingAdd(std::atomic<std::uint64_t>& cell, std::uint64_t n) {
    std::uint64_t cur = cell.load(std::memory_order_relaxed);
    for (;;) {
      std::uint64_t next = cur + n;
      if (next < cur) next = UINT64_MAX;  // overflow: clamp, don't wrap
      if (cell.compare_exchange_weak(cur, next, std::memory_order_relaxed,
                                     std::memory_order_relaxed)) {
        return;
      }
    }
  }

  /// One block of counter cells, padded out to its own cache line(s) so
  /// stripes never share a line with each other (or with enabled_, which
  /// every count() reads).
  struct alignas(64) CounterStripe {
    std::array<std::atomic<std::uint64_t>, kNumCounters> cells{};
  };

  /// Per-worker utilization slot, one cache line each: pool workers record
  /// into their own lane concurrently, so adjacent lanes must not share.
  struct alignas(64) WorkerLane {
    std::atomic<std::uint64_t> busy{0};
    std::atomic<std::uint64_t> tasks{0};
  };

  /// Stripe of the calling thread, assigned round-robin on first use. The
  /// assignment is scheduling-dependent, but only *placement* varies — every
  /// increment still lands exactly once, so summed totals stay deterministic.
  static std::size_t threadStripe() {
    static std::atomic<std::size_t> next{0};
    thread_local const std::size_t stripe =
        next.fetch_add(1, std::memory_order_relaxed) % kCounterStripes;
    return stripe;
  }

  std::atomic<bool> enabled_{true};
  std::array<CounterStripe, kCounterStripes> stripes_{};
  // Phase timers are low-frequency (per-batch / single-fault API scopes
  // only), so a shared array is fine; worker lanes are padded above.
  std::array<std::atomic<std::uint64_t>, kNumPhases> phaseNanos_{};
  std::array<std::atomic<std::uint64_t>, kNumPhases> phaseCalls_{};
  std::array<WorkerLane, kMaxTrackedWorkers> workers_{};
};

// ---------------------------------------------------------------------------
// Instrumentation shims. These — not the registry methods — are what the hot
// paths call, so a SCANDIAG_METRICS=OFF build erases the instrumentation
// entirely while the registry/exporter API keeps compiling.

#if SCANDIAG_METRICS_ENABLED

namespace detail {
/// Per-thread capture sink for DeltaCapture (below). Naked pointer, not an
/// object, so the common no-capture path costs one thread-local load.
inline thread_local std::array<std::uint64_t, kNumCounters>* tlsDeltaSink = nullptr;
}  // namespace detail

inline void count(Counter c, std::uint64_t n = 1) {
  MetricsRegistry& registry = MetricsRegistry::instance();
  if (registry.enabled()) {
    registry.add(c, n);
    if (detail::tlsDeltaSink) (*detail::tlsDeltaSink)[static_cast<std::size_t>(c)] += n;
  }
}

/// Captures the counter increments made by the current thread while in scope.
/// The checkpoint layer wraps each single-fault diagnose in one of these and
/// journals the nonzero deltas, so a resumed run can replay a fault's exact
/// counter contribution and keep totals bit-identical to an uninterrupted
/// run. Captures nest (the inner scope shadows, then merges into the outer).
class DeltaCapture {
 public:
  DeltaCapture() : outer_(detail::tlsDeltaSink) { detail::tlsDeltaSink = &deltas_; }
  ~DeltaCapture() {
    detail::tlsDeltaSink = outer_;
    if (outer_) {
      for (std::size_t i = 0; i < kNumCounters; ++i) (*outer_)[i] += deltas_[i];
    }
  }
  DeltaCapture(const DeltaCapture&) = delete;
  DeltaCapture& operator=(const DeltaCapture&) = delete;

  /// Increments recorded so far, indexed by Counter.
  const std::array<std::uint64_t, kNumCounters>& deltas() const { return deltas_; }

 private:
  std::array<std::uint64_t, kNumCounters> deltas_{};
  std::array<std::uint64_t, kNumCounters>* outer_;
};

/// RAII phase timer: accumulates the scope's wall time into one Phase.
class PhaseScope {
 public:
  explicit PhaseScope(Phase phase)
      : phase_(phase), active_(MetricsRegistry::instance().enabled()) {
    if (active_) start_ = std::chrono::steady_clock::now();
  }
  ~PhaseScope() {
    if (!active_) return;
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    MetricsRegistry::instance().addPhase(
        phase_,
        static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count()));
  }
  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;

 private:
  Phase phase_;
  bool active_;
  std::chrono::steady_clock::time_point start_;
};

/// RAII busy-time tracker for one thread-pool lane (0 = calling thread).
class WorkerScope {
 public:
  explicit WorkerScope(std::size_t lane)
      : lane_(lane), active_(MetricsRegistry::instance().enabled()) {
    if (active_) start_ = std::chrono::steady_clock::now();
  }
  ~WorkerScope() {
    if (!active_) return;
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    MetricsRegistry::instance().recordWorker(
        lane_,
        static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count()));
  }
  WorkerScope(const WorkerScope&) = delete;
  WorkerScope& operator=(const WorkerScope&) = delete;

 private:
  std::size_t lane_;
  bool active_;
  std::chrono::steady_clock::time_point start_;
};

#else  // SCANDIAG_METRICS_ENABLED == 0: instrumentation compiles to nothing.

inline void count(Counter, std::uint64_t = 1) {}

class DeltaCapture {
 public:
  DeltaCapture() = default;
  DeltaCapture(const DeltaCapture&) = delete;
  DeltaCapture& operator=(const DeltaCapture&) = delete;
  const std::array<std::uint64_t, kNumCounters>& deltas() const { return deltas_; }

 private:
  std::array<std::uint64_t, kNumCounters> deltas_{};
};

class PhaseScope {
 public:
  explicit PhaseScope(Phase) {}
  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;
};

class WorkerScope {
 public:
  explicit WorkerScope(std::size_t) {}
  WorkerScope(const WorkerScope&) = delete;
  WorkerScope& operator=(const WorkerScope&) = delete;
};

#endif  // SCANDIAG_METRICS_ENABLED

}  // namespace scandiag::obs
