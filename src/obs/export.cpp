#include "obs/export.hpp"

#include <sstream>
#include <stdexcept>

#include "common/assert.hpp"
#include "common/journal.hpp"
#include "common/json.hpp"

namespace scandiag::obs {

void writeCountersObject(JsonWriter& writer, const MetricsSnapshot& snap) {
  writer.beginObject();
  for (std::size_t i = 0; i < kNumCounters; ++i) {
    writer.field(counterName(static_cast<Counter>(i)), snap.counters[i]);
  }
  writer.endObject();
}

void writePhasesObject(JsonWriter& writer, const MetricsSnapshot& snap) {
  writer.beginObject();
  for (std::size_t i = 0; i < kNumPhases; ++i) {
    writer.key(phaseName(static_cast<Phase>(i)));
    writer.beginObject();
    writer.field("nanos", snap.phases[i].nanos);
    writer.field("calls", snap.phases[i].calls);
    writer.endObject();
  }
  writer.endObject();
}

void writeWorkersArray(JsonWriter& writer, const MetricsSnapshot& snap) {
  writer.beginArray();
  for (const WorkerStat& w : snap.workers) {
    writer.beginObject();
    writer.field("worker", static_cast<std::uint64_t>(w.worker));
    writer.field("busy_nanos", w.busyNanos);
    writer.field("tasks", w.tasks);
    writer.endObject();
  }
  writer.endArray();
}

void writeMetricsObject(JsonWriter& writer, const MetricsSnapshot& snap,
                        const MetricsContext& context) {
  writer.beginObject();
  writer.field("schema_version", kMetricsSchemaVersion);
  writer.field("circuit", context.circuit);
  writer.field("scheme", context.scheme);
  writer.field("threads", static_cast<std::uint64_t>(context.threads));
  writer.key("counters");
  writeCountersObject(writer, snap);
  writer.key("phases");
  writePhasesObject(writer, snap);
  writer.key("workers");
  writeWorkersArray(writer, snap);
  writer.endObject();
}

void writeMetricsFile(const std::string& path, const MetricsContext& context) {
  // Serialize to memory, then commit atomically (temp + rename, parent dirs
  // created): a crash mid-export can never leave a torn metrics snapshot.
  std::ostringstream out;
  JsonWriter writer(out);
  writeMetricsObject(writer, MetricsRegistry::instance().snapshot(), context);
  out << '\n';
  atomicWriteFile(path, out.str());
}

namespace {

std::size_t counterIndex(const std::string& name) {
  for (std::size_t i = 0; i < kNumCounters; ++i) {
    if (name == counterName(static_cast<Counter>(i))) return i;
  }
  throw std::invalid_argument("unknown metrics counter: " + name);
}

std::size_t phaseIndex(const std::string& name) {
  for (std::size_t i = 0; i < kNumPhases; ++i) {
    if (name == phaseName(static_cast<Phase>(i))) return i;
  }
  throw std::invalid_argument("unknown metrics phase: " + name);
}

}  // namespace

MetricsSnapshot snapshotFromJson(const JsonValue& root) {
  SCANDIAG_REQUIRE(root.isObject(), "metrics document must be a JSON object");
  MetricsSnapshot snap;
  if (root.has("counters")) {
    for (const auto& [name, value] : root.at("counters").members()) {
      snap.counters[counterIndex(name)] = value.asUint();
    }
  }
  if (root.has("phases")) {
    for (const auto& [name, value] : root.at("phases").members()) {
      PhaseStat& stat = snap.phases[phaseIndex(name)];
      stat.nanos = value.at("nanos").asUint();
      stat.calls = value.at("calls").asUint();
    }
  }
  if (root.has("workers")) {
    for (const JsonValue& entry : root.at("workers").items()) {
      WorkerStat w;
      w.worker = static_cast<std::size_t>(entry.at("worker").asUint());
      w.busyNanos = entry.at("busy_nanos").asUint();
      w.tasks = entry.at("tasks").asUint();
      snap.workers.push_back(w);
    }
  }
  return snap;
}

}  // namespace scandiag::obs
