// Deterministic error injection: the "noisy tester" between SessionEngine
// and the diagnosers.
//
// The paper's DR tables assume every per-group session verdict is correct.
// Silicon testers are not that kind: MISR aliasing compacts a nonzero error
// stream to signature 0, intermittent faults fire in one session but not its
// sibling, X-states get masked out of capture, and raw pass/fail bits get
// flipped by marginal timing or corrupted logs. VerdictCorruptor perturbs a
// GroupVerdicts with exactly those four noise models, each at an independent
// configurable rate, and records every event it injected so tests and
// benches can compare diagnosis output against the known injection.
//
// Reproducibility contract: the corruption applied to partition p of fault
// `faultKey` on attempt `a` is a pure function of (seed, faultKey, a, p) —
// independent of thread count, evaluation order, and the other partitions.
// A noisy run is therefore exactly replayable from its seed, and a retry
// (attempt >= 1) draws a fresh independent stream, as a real re-run would.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bitvector.hpp"
#include "diagnosis/partition.hpp"
#include "diagnosis/session_engine.hpp"

namespace scandiag {

struct NoiseConfig {
  /// Raw verdict flip (pass <-> fail) per session.
  double flipRate = 0.0;
  /// Chance a failing session reads pass because the fault's error stream
  /// re-drew empty in that session (intermittent fault; fail -> pass only —
  /// a passing group holds no failing cell, so a re-draw cannot fail it).
  double intermittentRate = 0.0;
  /// Per-position chance of X-masking: a failing session whose failing
  /// positions are all masked reads pass.
  double xMaskRate = 0.0;
  /// Chance a failing session's error stream aliases in the MISR (signature
  /// forced to 0, verdict reads pass). Compare misrAliasingProbability().
  double aliasRate = 0.0;
  std::uint64_t seed = 0x7E57ED;

  bool enabled() const {
    return flipRate > 0.0 || intermittentRate > 0.0 || xMaskRate > 0.0 || aliasRate > 0.0;
  }
};

struct CorruptionEvent {
  enum class Kind { VerdictFlip, Intermittent, XMask, Aliasing };
  Kind kind;
  std::size_t partition = 0;
  std::size_t group = 0;
  /// Verdict after the event (false = now reads pass).
  bool nowFailing = false;
};

const char* corruptionKindName(CorruptionEvent::Kind kind);

struct CorruptionTrace {
  std::vector<CorruptionEvent> events;

  bool any() const { return !events.empty(); }
  std::size_t count() const { return events.size(); }
};

class VerdictCorruptor {
 public:
  explicit VerdictCorruptor(const NoiseConfig& config);

  const NoiseConfig& config() const { return config_; }

  /// Perturbs every partition row of `verdicts` in place (no-op when the
  /// config has all rates zero — the zero-noise path stays bit-identical).
  /// `failingPositions` is the ground-truth collapse of the fault's failing
  /// cells (drives the X-masking model). `attempt` 0 is the first run;
  /// retries pass 1, 2, ... for independent streams.
  CorruptionTrace corrupt(GroupVerdicts& verdicts, const std::vector<Partition>& partitions,
                          const BitVector& failingPositions, std::uint64_t faultKey,
                          std::size_t attempt = 0) const;

  /// Single-partition variant for session re-runs; `partitionIndex` selects
  /// the same per-partition stream corrupt() would use.
  CorruptionTrace corruptRow(PartitionVerdictRow& row, const Partition& partition,
                             std::size_t partitionIndex, const BitVector& failingPositions,
                             std::uint64_t faultKey, std::size_t attempt) const;

 private:
  NoiseConfig config_;
};

}  // namespace scandiag
