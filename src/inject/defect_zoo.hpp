// Defect zoo: k-fault union scenarios and robust multi-defect diagnosis.
//
// The paper's pipeline — and every diagnosis experiment before this layer —
// assumes exactly one permanent stuck-at fault per sweep. Real silicon
// violates that model with multi-site defects, and this module makes the
// violations first-class:
//
//  * **Scenarios** compose k simultaneous defects drawn from four models:
//    stuck-at faults, two-line bridges (src/sim/bridge_faults), stuck-opens
//    (src/sim/open_faults), and intermittents (a component active per pattern
//    with probability p). Every component is simulated alone on
//    FaultSimulator's cone-restricted fast path, and the scenario's observed
//    response is the *union overlay*: the OR of the per-component error
//    streams. (The overlay is the standard fault-union model — single-fault
//    superposition, ignoring inter-fault masking; the MISR-linearity
//    property test pins down exactly where it is exact.)
//  * **Intermittents** follow VerdictCorruptor's reproducibility contract:
//    the per-pattern activation mask is a pure function of
//    (seed, scenario, component, attempt, partition), so every re-run of a
//    partition draws an independent but replayable stream.
//  * **Diagnosis** (DefectZooPipeline) layers the checked union mode and
//    recovery short-circuit (src/diagnosis/recovery) under an active
//    refinement stage (src/diagnosis/union_diagnoser) and a PODEM stall
//    breaker, with the degrade-never-lie contract throughout: when k
//    exceeds the resolvable budget or intermittency starves the majority
//    vote, the result is a guaranteed-superset candidate set with a
//    calibrated confidence — never an error, never an exonerated true
//    failing cell. PODEM distinguishing patterns can only *confirm*
//    candidates (cheaply, one mini-session per stalled position); they never
//    exonerate, because a targeted pattern pair cannot prove an upstream
//    defect silent.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "diagnosis/experiment_driver.hpp"
#include "diagnosis/recovery.hpp"
#include "diagnosis/union_diagnoser.hpp"
#include "sim/bridge_faults.hpp"

namespace scandiag {

class PodemAtpg;

enum class DefectKind : std::uint8_t {
  StuckAt,
  Bridge,
  StuckOpen,
};

const char* defectKindName(DefectKind kind);

/// Parsed form of the CLI's `--defects k[,bridge][,open][,intermittent:p]`.
struct DefectMix {
  /// Simultaneous defects per scenario.
  std::size_t k = 2;
  /// Include bridge / stuck-open components in the draw pool (stuck-at is
  /// always in the pool).
  bool bridges = false;
  bool opens = false;
  /// > 0: alternate components are intermittent with this per-pattern
  /// activation probability (component 0 is always intermittent, so every
  /// scenario of an intermittent mix exercises the degradation path).
  double intermittentP = 0.0;
  std::uint64_t seed = 0xDEFEC7;

  bool enabled() const { return k > 0; }
};

/// Parses "k[,bridge][,open][,intermittent:p]" (e.g. "2,bridge,open" or
/// "3,intermittent:0.5"). Throws std::invalid_argument with a message
/// suitable for stderr on malformed input.
DefectMix parseDefectSpec(const std::string& spec);
std::string describeDefectMix(const DefectMix& mix);

struct DefectComponent {
  DefectKind kind = DefectKind::StuckAt;
  FaultSite fault{};     // StuckAt / StuckOpen site (opens: output fault site)
  BridgeFault bridge{};  // kind == Bridge only
  /// Per-pattern activation probability; 1.0 = permanent.
  double activation = 1.0;
  /// The component's full (permanent, unmasked) response.
  FaultResponse response;

  bool intermittent() const { return activation < 1.0; }
};

struct DefectScenario {
  std::size_t index = 0;
  std::uint64_t seed = 0;
  std::vector<DefectComponent> components;
  /// Union overlay of the components' permanent responses: every cell the
  /// defect set can manifest on, with the OR'd error streams.
  FaultResponse composed;

  std::size_t k() const { return components.size(); }
  bool intermittent() const;
};

/// OR-composition of per-component responses (the union overlay).
FaultResponse composeUnionResponse(const std::vector<const FaultResponse*>& parts);

/// Replayable per-pattern activation mask for one intermittent component:
/// a pure function of its arguments (same contract as VerdictCorruptor's
/// noise streams), bit t set iff the component is active during pattern t.
BitVector intermittentActivationMask(std::uint64_t seed, std::size_t scenario,
                                     std::size_t component, std::size_t attempt,
                                     std::size_t partition, double p,
                                     std::size_t numPatterns);

/// `response` with every error stream masked to the active patterns;
/// cells whose masked stream is empty are dropped.
FaultResponse maskResponse(const FaultResponse& response, const BitVector& activation);

/// Draws deterministic scenarios from a fault simulator's circuit. The
/// simulator reference must outlive the generator. generate() calls
/// simulate() and therefore follows FaultSimulator's one-thread-at-a-time
/// ownership rule — generate scenarios serially, diagnose them in parallel.
class DefectScenarioGenerator {
 public:
  DefectScenarioGenerator(const FaultSimulator& simulator, const DefectMix& mix);

  const DefectMix& mix() const { return mix_; }

  /// Scenario `index`, deterministic per (mix.seed, index); every component
  /// is detected (nonempty permanent response) and sites are distinct.
  DefectScenario generate(std::size_t index) const;

 private:
  const FaultSimulator* sim_;
  DefectMix mix_;
  std::vector<FaultSite> stuckPool_;
  std::vector<BridgeFault> bridgePool_;
  std::vector<GateId> openPool_;
};

struct DefectPolicy {
  /// Recovery budget for the detection → retry → union short-circuit ladder.
  RetryPolicy retry{/*maxRetriesPerSession=*/2, /*sessionBudget=*/256,
                    /*maxUnionFaults=*/4};
  /// Active-refinement interval sessions per scenario (0 disables).
  std::size_t refineSessionBudget = 96;
  /// Simultaneous-fault budget for refinement cluster accounting.
  std::size_t maxFaults = 4;
  /// PODEM mini-sessions per scenario when refinement stalls (0 disables).
  std::size_t atpgSessionBudget = 16;
  std::size_t atpgBacktrackLimit = 2000;
  /// Full-schedule samples for intermittent scenarios (>= 1).
  std::size_t intermittentSamples = 3;
};

struct DefectDiagnosis {
  CandidateSet candidates;
  std::size_t candidateCount = 0;
  /// Permanent scenarios: composed failing cells. Intermittent scenarios:
  /// cells that actually manifested in the observed (masked) sessions.
  std::size_t actualCount = 0;
  /// Ground truth: some true failing cell missing from the candidates — the
  /// violation the degrade-never-lie contract forbids.
  bool misdiagnosed = false;
  /// False = superset-only answer (CLI exit code 8): refinement incomplete,
  /// union clusters over budget, or intermittency degradation.
  bool resolved = true;
  bool degraded = false;
  double confidence = 1.0;
  std::size_t inconsistencies = 0;
  std::size_t unionSplits = 0;
  std::size_t atpgPatterns = 0;
  /// Sessions beyond the base schedule (retries + refinement + ATPG).
  std::size_t extraSessions = 0;
  DiagnosisCost cost;
};

struct DefectZooReport {
  double dr = 0.0;
  std::size_t scenarios = 0;
  std::uint64_t sumCandidates = 0;
  std::uint64_t sumActual = 0;
  double misdiagnosisRate = 0.0;
  double meanConfidence = 1.0;
  /// Scenarios answered superset-only (resolved == false).
  std::size_t degraded = 0;
  std::size_t totalInconsistencies = 0;
  std::size_t totalUnionSplits = 0;
  std::size_t totalAtpgPatterns = 0;
  std::size_t totalExtraSessions = 0;
};

class DefectZooPipeline {
 public:
  /// `simulator` must outlive the pipeline (PODEM and the ADI prior read its
  /// netlist and good captures). The diagnosis config must use a fixed
  /// scheme (not Adaptive).
  DefectZooPipeline(const FaultSimulator& simulator, const ScanTopology& topology,
                    const DiagnosisConfig& config, const DefectPolicy& policy);
  ~DefectZooPipeline();
  DefectZooPipeline(DefectZooPipeline&&) = default;

  const DiagnosisPipeline& base() const { return base_; }
  const DefectPolicy& policy() const { return policy_; }

  /// One scenario through detection → union analysis → refinement → PODEM →
  /// degradation. Thread-safe const (parallel evaluate workers share it).
  DefectDiagnosis diagnose(const DefectScenario& scenario) const;

  /// Diagnoses `scenarios`; bit-identical at every thread count.
  DefectZooReport evaluate(const std::vector<DefectScenario>& scenarios) const;

 private:
  DefectDiagnosis diagnosePermanent(const DefectScenario& scenario) const;
  DefectDiagnosis diagnoseIntermittent(const DefectScenario& scenario) const;
  /// Composed response a tester observing (attempt, partition) would see:
  /// permanent components plus activation-masked intermittent components.
  FaultResponse effectiveResponse(const DefectScenario& scenario, std::size_t attempt,
                                  std::size_t partition) const;

  const FaultSimulator* sim_;
  const ScanTopology* topology_;
  DiagnosisPipeline base_;
  DiagnosisRecovery recovery_;
  UnionDiagnoser refiner_;
  DefectPolicy policy_;
  std::vector<double> adiPrior_;
  std::unique_ptr<PodemAtpg> atpg_;
};

}  // namespace scandiag
