#include "inject/noisy_pipeline.hpp"

#include "common/assert.hpp"
#include "common/thread_pool.hpp"
#include "diagnosis/adaptive_planner.hpp"
#include "diagnosis/metrics.hpp"
#include "obs/metrics.hpp"

namespace scandiag {

NoisyPipeline::NoisyPipeline(const ScanTopology& topology, const DiagnosisConfig& config,
                             const NoiseConfig& noise, const RetryPolicy& retry)
    : topology_(&topology),
      base_(topology, config),
      corruptor_(noise),
      recovery_(topology, retry) {}

ResilientDiagnosis NoisyPipeline::diagnose(const FaultResponse& response,
                                           std::uint64_t faultKey) const {
  const DiagnosisConfig& config = base_.config();
  const std::size_t chainLength = topology_->maxChainLength();
  ResilientDiagnosis out;
  out.actualCount = response.failingCellCount();
  out.cost = partitionRunCost(config.numPartitions, config.groupsPerPartition,
                              config.numPatterns, chainLength);

  if (!corruptor_.config().enabled()) {
    // Zero noise: the resilience layer is bit-identical to the base pipeline.
    FaultDiagnosis clean = base_.diagnose(response);
    if (base_.adaptive()) {
      // The adaptive spend is data-dependent; charge what actually ran.
      out.cost = adaptiveRunCost(clean.sessionsSpent, config.numPatterns, chainLength);
    }
    out.candidates = std::move(clean.candidates);
    out.candidateCount = clean.candidateCount;
    out.emptyCandidates = out.candidateCount == 0;
    out.misdiagnosed = !response.failingCells.isSubsetOf(out.candidates.cells);
    return out;
  }

  if (const AdaptivePlanner* planner = base_.adaptive()) {
    // Adaptive under noise: the planner decides on the *corrupted* rows,
    // exactly as a scheduler driving a real noisy tester would — then the
    // standard recovery pass (detect, bounded retry, degrade) runs over the
    // realized schedule. Noise streams key on the step ordinal of that
    // schedule, so a retry of step p (attempt >= 1) draws the stream a fixed
    // schedule's partition p would.
    obs::count(obs::Counter::FaultsDiagnosed);
    const SessionEngine& engine = planner->engine();
    const BitVector failingPositions = topology_->collapseCells(response.failingCells);
    const AdaptivePlanner::RowObserver observer = [&](std::size_t step, std::size_t poolIndex,
                                                      PartitionVerdictRow& row) {
      const CorruptionTrace trace =
          corruptor_.corruptRow(row, planner->pool().partition(poolIndex), step,
                                failingPositions, faultKey, /*attempt=*/0);
      out.injected.events.insert(out.injected.events.end(), trace.events.begin(),
                                 trace.events.end());
    };
    const AdaptiveOutcome outcome = planner->run(response, observer);
    if (out.injected.count() > 0) {
      obs::count(obs::Counter::NoiseEventsInjected, out.injected.count());
    }
    const std::vector<Partition> schedule = planner->schedule(outcome);
    const PartitionRerun rerun = [&](std::size_t p, std::size_t attempt) {
      PartitionVerdictRow row = engine.runPartition(planner->pool(), outcome.chosen[p], response);
      const CorruptionTrace trace =
          corruptor_.corruptRow(row, schedule[p], p, failingPositions, faultKey, attempt);
      if (trace.count() > 0) {
        obs::count(obs::Counter::NoiseEventsInjected, trace.count());
      }
      return row;
    };
    RecoveredDiagnosis recovered = recovery_.recover(schedule, outcome.verdicts, rerun);
    out.candidates = std::move(recovered.candidates);
    out.candidateCount = out.candidates.cellCount();
    out.confidence = recovered.confidence;
    out.resolved = recovered.resolved;
    out.inconsistencies = recovered.inconsistencies.size();
    out.retrySessions = recovered.retrySessions;
    out.cost = adaptiveRunCost(outcome.sessionsUsed, config.numPatterns, chainLength);
    out.cost += repeatedSessionsCost(recovered.retrySessions, config.numPatterns, chainLength);
    out.emptyCandidates = out.candidateCount == 0;
    out.misdiagnosed = !response.failingCells.isSubsetOf(out.candidates.cells);
    return out;
  }

  obs::count(obs::Counter::FaultsDiagnosed);
  const PreparedPartitionSet& prepared = base_.prepared();
  const std::vector<Partition>& partitions = prepared.partitions();
  const SessionEngine& engine = base_.engine();
  const BitVector failingPositions = topology_->collapseCells(response.failingCells);

  GroupVerdicts verdicts = engine.run(prepared, response);
  out.injected = corruptor_.corrupt(verdicts, partitions, failingPositions, faultKey,
                                    /*attempt=*/0);
  if (out.injected.count() > 0) {
    obs::count(obs::Counter::NoiseEventsInjected, out.injected.count());
  }

  // A retry re-runs the partition's sessions on the same noisy tester: fresh
  // capture, fresh independent noise stream (attempt >= 1).
  const PartitionRerun rerun = [&](std::size_t p, std::size_t attempt) {
    PartitionVerdictRow row = engine.runPartition(prepared, p, response);
    const CorruptionTrace trace =
        corruptor_.corruptRow(row, partitions[p], p, failingPositions, faultKey, attempt);
    if (trace.count() > 0) {
      obs::count(obs::Counter::NoiseEventsInjected, trace.count());
    }
    return row;
  };

  RecoveredDiagnosis recovered = recovery_.recover(prepared, verdicts, rerun);
  out.candidates = std::move(recovered.candidates);
  out.candidateCount = out.candidates.cellCount();
  out.confidence = recovered.confidence;
  out.resolved = recovered.resolved;
  out.inconsistencies = recovered.inconsistencies.size();
  out.retrySessions = recovered.retrySessions;
  out.cost += repeatedSessionsCost(recovered.retrySessions, config.numPatterns, chainLength);
  out.emptyCandidates = out.candidateCount == 0;
  out.misdiagnosed = !response.failingCells.isSubsetOf(out.candidates.cells);
  return out;
}

NoisyDrReport NoisyPipeline::evaluate(const std::vector<FaultResponse>& responses) const {
  // Same ordered-reduction contract as DiagnosisPipeline::evaluate: slot i
  // depends only on responses[i] and the fault-index-keyed noise stream, so
  // the report is bit-identical for every thread count.
  struct Slot {
    std::size_t candidates = 0;
    std::size_t actual = 0;
    bool detected = false;
    bool misdiagnosed = false;
    bool empty = false;
    bool unresolved = false;
    double confidence = 1.0;
    std::size_t inconsistencies = 0;
    std::size_t retrySessions = 0;
  };
  std::vector<Slot> slots(responses.size());
  globalPool().parallelFor(responses.size(), [&](std::size_t i) {
    const FaultResponse& r = responses[i];
    if (!r.detected()) return;
    const ResilientDiagnosis d = diagnose(r, static_cast<std::uint64_t>(i));
    slots[i] = Slot{d.candidateCount,    d.actualCount, true,        d.misdiagnosed,
                    d.emptyCandidates,   !d.resolved,   d.confidence, d.inconsistencies,
                    d.retrySessions};
  });

  DrAccumulator acc;
  NoisyDrReport report;
  double confidenceSum = 0.0;
  std::size_t misdiagnosed = 0, empty = 0;
  for (const Slot& s : slots) {
    if (!s.detected) continue;
    acc.add(s.candidates, s.actual);
    confidenceSum += s.confidence;
    misdiagnosed += s.misdiagnosed ? 1 : 0;
    empty += s.empty ? 1 : 0;
    report.unresolved += s.unresolved ? 1 : 0;
    report.totalInconsistencies += s.inconsistencies;
    report.totalRetrySessions += s.retrySessions;
  }
  report.dr = acc.dr();
  report.faults = acc.faults();
  report.sumCandidates = acc.sumCandidates();
  report.sumActual = acc.sumActual();
  const double n = static_cast<double>(report.faults);
  SCANDIAG_REQUIRE(report.faults > 0, "no detected responses");
  report.misdiagnosisRate = static_cast<double>(misdiagnosed) / n;
  report.emptyRate = static_cast<double>(empty) / n;
  report.meanConfidence = confidenceSum / n;
  return report;
}

}  // namespace scandiag
