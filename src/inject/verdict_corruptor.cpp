#include "inject/verdict_corruptor.hpp"

#include "common/assert.hpp"
#include "common/rng.hpp"

namespace scandiag {

namespace {

/// Stream seed for (config seed, fault, attempt, partition): distinct odd
/// multipliers keep the four coordinates from cancelling; Xoroshiro128's
/// splitmix64 expansion does the real mixing.
std::uint64_t streamSeed(std::uint64_t seed, std::uint64_t faultKey, std::size_t attempt,
                         std::size_t partition) {
  std::uint64_t s = seed;
  s ^= faultKey * 0x9e3779b97f4a7c15ULL;
  s ^= static_cast<std::uint64_t>(attempt) * 0xc2b2ae3d27d4eb4fULL;
  s ^= static_cast<std::uint64_t>(partition) * 0x165667b19e3779f9ULL;
  return s;
}

void checkRate(double rate, const char* name) {
  SCANDIAG_REQUIRE(rate >= 0.0 && rate <= 1.0, std::string(name) + " must be in [0, 1]");
}

}  // namespace

const char* corruptionKindName(CorruptionEvent::Kind kind) {
  switch (kind) {
    case CorruptionEvent::Kind::VerdictFlip:
      return "verdict-flip";
    case CorruptionEvent::Kind::Intermittent:
      return "intermittent";
    case CorruptionEvent::Kind::XMask:
      return "x-mask";
    case CorruptionEvent::Kind::Aliasing:
      return "misr-aliasing";
  }
  return "unknown";
}

VerdictCorruptor::VerdictCorruptor(const NoiseConfig& config) : config_(config) {
  checkRate(config.flipRate, "flipRate");
  checkRate(config.intermittentRate, "intermittentRate");
  checkRate(config.xMaskRate, "xMaskRate");
  checkRate(config.aliasRate, "aliasRate");
}

CorruptionTrace VerdictCorruptor::corruptRow(PartitionVerdictRow& row,
                                             const Partition& partition,
                                             std::size_t partitionIndex,
                                             const BitVector& failingPositions,
                                             std::uint64_t faultKey,
                                             std::size_t attempt) const {
  CorruptionTrace trace;
  if (!config_.enabled()) return trace;
  SCANDIAG_REQUIRE(row.failing.size() == partition.groupCount(),
                   "verdict row does not match partition");

  Xoroshiro128 rng(streamSeed(config_.seed, faultKey, attempt, partitionIndex));
  const std::size_t groups = partition.groupCount();
  const bool hasSig = !row.errorSig.empty();

  auto readPass = [&](std::size_t g, CorruptionEvent::Kind kind) {
    row.failing.reset(g);
    if (hasSig) row.errorSig[g] = 0;
    trace.events.push_back({kind, partitionIndex, g, false});
  };

  // 1. X-masking: a random position subset drops out of capture; a failing
  //    group loses its verdict iff all its failing positions are masked.
  if (config_.xMaskRate > 0.0) {
    BitVector unmasked(partition.length(), true);
    for (std::size_t pos = 0; pos < partition.length(); ++pos) {
      if (rng.nextDouble() < config_.xMaskRate) unmasked.reset(pos);
    }
    const BitVector observable = failingPositions & unmasked;
    for (std::size_t g = 0; g < groups; ++g) {
      if (row.failing.test(g) && !partition.groups[g].intersects(observable)) {
        readPass(g, CorruptionEvent::Kind::XMask);
      }
    }
  }

  // 2. Intermittency: a failing session's error stream re-draws empty.
  if (config_.intermittentRate > 0.0) {
    for (std::size_t g = 0; g < groups; ++g) {
      if (row.failing.test(g) && rng.nextDouble() < config_.intermittentRate) {
        readPass(g, CorruptionEvent::Kind::Intermittent);
      }
    }
  }

  // 3. Forced MISR aliasing: nonzero error stream, signature 0.
  if (config_.aliasRate > 0.0) {
    for (std::size_t g = 0; g < groups; ++g) {
      if (row.failing.test(g) && rng.nextDouble() < config_.aliasRate) {
        readPass(g, CorruptionEvent::Kind::Aliasing);
      }
    }
  }

  // 4. Raw verdict flips, both directions (logged last so flips can undo the
  //    models above, exactly as a corrupted log line would).
  if (config_.flipRate > 0.0) {
    for (std::size_t g = 0; g < groups; ++g) {
      if (rng.nextDouble() < config_.flipRate) {
        const bool nowFailing = !row.failing.test(g);
        row.failing.set(g, nowFailing);
        if (hasSig) row.errorSig[g] = nowFailing ? (rng.next() | 1) : 0;
        trace.events.push_back(
            {CorruptionEvent::Kind::VerdictFlip, partitionIndex, g, nowFailing});
      }
    }
  }

  return trace;
}

CorruptionTrace VerdictCorruptor::corrupt(GroupVerdicts& verdicts,
                                          const std::vector<Partition>& partitions,
                                          const BitVector& failingPositions,
                                          std::uint64_t faultKey, std::size_t attempt) const {
  CorruptionTrace trace;
  if (!config_.enabled()) return trace;
  SCANDIAG_REQUIRE(verdicts.failing.size() == partitions.size(),
                   "verdicts do not match partitions");

  for (std::size_t p = 0; p < partitions.size(); ++p) {
    PartitionVerdictRow row;
    row.failing = std::move(verdicts.failing[p]);
    if (verdicts.hasSignatures) row.errorSig = std::move(verdicts.errorSig[p]);
    CorruptionTrace rowTrace =
        corruptRow(row, partitions[p], p, failingPositions, faultKey, attempt);
    verdicts.failing[p] = std::move(row.failing);
    if (verdicts.hasSignatures) verdicts.errorSig[p] = std::move(row.errorSig);
    trace.events.insert(trace.events.end(), rowTrace.events.begin(), rowTrace.events.end());
  }
  return trace;
}

}  // namespace scandiag
