#include "inject/defect_zoo.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>

#include "atpg/podem.hpp"
#include "common/assert.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "obs/metrics.hpp"
#include "sim/fault_list.hpp"
#include "sim/open_faults.hpp"

namespace scandiag {

namespace {

// Seed-mixing constants for the activation streams: the VerdictCorruptor
// idiom (distinct odd multipliers per coordinate, splitmix-expanded by the
// Xoroshiro constructor) so every (scenario, component, attempt, partition)
// tuple draws an independent, replayable stream.
constexpr std::uint64_t kScenarioMix = 0x9e3779b97f4a7c15ULL;
constexpr std::uint64_t kComponentMix = 0xc2b2ae3d27d4eb4fULL;
constexpr std::uint64_t kAttemptMix = 0x165667b19e3779f9ULL;
constexpr std::uint64_t kPartitionMix = 0x27d4eb2f165667c5ULL;

constexpr std::size_t kPoolSize = 256;     // bridge / open candidate pools
constexpr std::size_t kMaxDrawTries = 64;  // draws per component before giving up

double parseProbability(const std::string& token) {
  std::size_t consumed = 0;
  double p = 0.0;
  try {
    p = std::stod(token, &consumed);
  } catch (const std::exception&) {
    consumed = 0;
  }
  if (consumed != token.size() || !(p > 0.0) || !(p < 1.0)) {
    throw std::invalid_argument("defect spec: intermittent probability must be in (0,1), got '" +
                                token + "'");
  }
  return p;
}

}  // namespace

const char* defectKindName(DefectKind kind) {
  switch (kind) {
    case DefectKind::StuckAt: return "stuck-at";
    case DefectKind::Bridge: return "bridge";
    case DefectKind::StuckOpen: return "stuck-open";
  }
  return "?";
}

DefectMix parseDefectSpec(const std::string& spec) {
  DefectMix mix;
  mix.bridges = false;
  mix.opens = false;
  mix.intermittentP = 0.0;
  std::vector<std::string> tokens;
  std::string token;
  std::istringstream in(spec);
  while (std::getline(in, token, ',')) tokens.push_back(token);
  if (tokens.empty()) throw std::invalid_argument("defect spec: empty (expected k[,bridge][,open][,intermittent:p])");

  // First token: k.
  {
    const std::string& first = tokens.front();
    std::size_t consumed = 0;
    unsigned long k = 0;
    try {
      k = std::stoul(first, &consumed);
    } catch (const std::exception&) {
      consumed = 0;
    }
    if (consumed != first.size() || k == 0) {
      throw std::invalid_argument("defect spec: first field must be a fault count k >= 1, got '" +
                                  first + "'");
    }
    mix.k = static_cast<std::size_t>(k);
  }
  for (std::size_t i = 1; i < tokens.size(); ++i) {
    const std::string& t = tokens[i];
    if (t == "bridge" || t == "bridges") {
      mix.bridges = true;
    } else if (t == "open" || t == "opens") {
      mix.opens = true;
    } else if (t.rfind("intermittent:", 0) == 0) {
      mix.intermittentP = parseProbability(t.substr(std::string("intermittent:").size()));
    } else if (t.rfind("seed:", 0) == 0) {
      const std::string value = t.substr(5);
      std::size_t consumed = 0;
      unsigned long long seed = 0;
      try {
        seed = std::stoull(value, &consumed, 0);
      } catch (const std::exception&) {
        consumed = 0;
      }
      if (consumed != value.size()) {
        throw std::invalid_argument("defect spec: bad seed '" + value + "'");
      }
      mix.seed = seed;
    } else {
      throw std::invalid_argument(
          "defect spec: unknown field '" + t +
          "' (expected bridge, open, intermittent:p, or seed:n)");
    }
  }
  return mix;
}

std::string describeDefectMix(const DefectMix& mix) {
  std::ostringstream out;
  out << mix.k;
  if (mix.bridges) out << ",bridge";
  if (mix.opens) out << ",open";
  if (mix.intermittentP > 0.0) out << ",intermittent:" << mix.intermittentP;
  return out.str();
}

bool DefectScenario::intermittent() const {
  for (const DefectComponent& c : components) {
    if (c.intermittent()) return true;
  }
  return false;
}

FaultResponse composeUnionResponse(const std::vector<const FaultResponse*>& parts) {
  FaultResponse out;
  std::size_t cellUniverse = 0;
  // Ordinal-keyed merge keeps the parallel arrays sorted, matching the
  // simulator's output convention.
  std::map<std::size_t, BitVector> streams;
  for (const FaultResponse* part : parts) {
    if (part == nullptr) continue;
    if (out.failingCellOrdinals.empty() && streams.empty()) out.fault = part->fault;
    cellUniverse = std::max(cellUniverse, part->failingCells.size());
    for (std::size_t i = 0; i < part->failingCellOrdinals.size(); ++i) {
      const std::size_t ordinal = part->failingCellOrdinals[i];
      const BitVector& stream = part->errorStreams[i];
      auto [it, fresh] = streams.emplace(ordinal, stream);
      if (!fresh) {
        SCANDIAG_REQUIRE(it->second.size() == stream.size(),
                         "union overlay: mismatched error-stream lengths");
        it->second |= stream;
      }
    }
  }
  out.failingCells = BitVector(cellUniverse);
  for (auto& [ordinal, stream] : streams) {
    if (stream.none()) continue;
    out.failingCells.set(ordinal);
    out.failingCellOrdinals.push_back(ordinal);
    out.errorStreams.push_back(std::move(stream));
  }
  return out;
}

BitVector intermittentActivationMask(std::uint64_t seed, std::size_t scenario,
                                     std::size_t component, std::size_t attempt,
                                     std::size_t partition, double p,
                                     std::size_t numPatterns) {
  std::uint64_t s = seed;
  s ^= (static_cast<std::uint64_t>(scenario) + 1) * kScenarioMix;
  s ^= (static_cast<std::uint64_t>(component) + 1) * kComponentMix;
  s ^= (static_cast<std::uint64_t>(attempt) + 1) * kAttemptMix;
  s ^= (static_cast<std::uint64_t>(partition) + 1) * kPartitionMix;
  Xoroshiro128 rng(s);
  BitVector mask(numPatterns);
  for (std::size_t t = 0; t < numPatterns; ++t) {
    if (rng.nextDouble() < p) mask.set(t);
  }
  return mask;
}

FaultResponse maskResponse(const FaultResponse& response, const BitVector& activation) {
  FaultResponse out;
  out.fault = response.fault;
  out.failingCells = BitVector(response.failingCells.size());
  for (std::size_t i = 0; i < response.failingCellOrdinals.size(); ++i) {
    SCANDIAG_REQUIRE(response.errorStreams[i].size() == activation.size(),
                     "activation mask does not match the pattern count");
    BitVector masked = response.errorStreams[i] & activation;
    if (masked.none()) continue;
    out.failingCells.set(response.failingCellOrdinals[i]);
    out.failingCellOrdinals.push_back(response.failingCellOrdinals[i]);
    out.errorStreams.push_back(std::move(masked));
  }
  return out;
}

// ---------------------------------------------------------------------------
// Scenario generation.

DefectScenarioGenerator::DefectScenarioGenerator(const FaultSimulator& simulator,
                                                 const DefectMix& mix)
    : sim_(&simulator), mix_(mix) {
  SCANDIAG_REQUIRE(mix.k >= 1, "defect mix needs k >= 1");
  stuckPool_ = FaultList::enumerateCollapsed(simulator.netlist()).faults();
  SCANDIAG_REQUIRE(!stuckPool_.empty(), "empty stuck-at fault universe");
  if (mix.bridges) {
    bridgePool_ = enumerateBridgeCandidates(simulator.netlist(), kPoolSize, mix.seed ^ 0xB21D6EULL);
  }
  if (mix.opens) {
    openPool_ = enumerateOpenSites(simulator.netlist(), kPoolSize, mix.seed ^ 0x00BE5ULL);
  }
}

DefectScenario DefectScenarioGenerator::generate(std::size_t index) const {
  DefectScenario out;
  out.index = index;
  out.seed = mix_.seed ^ ((static_cast<std::uint64_t>(index) + 1) * kScenarioMix);
  Xoroshiro128 rng(out.seed ^ 0xD15EA5EULL);

  std::vector<DefectKind> kinds{DefectKind::StuckAt};
  if (!bridgePool_.empty()) kinds.push_back(DefectKind::Bridge);
  if (!openPool_.empty()) kinds.push_back(DefectKind::StuckOpen);

  std::set<GateId> usedSites;
  for (std::size_t c = 0; c < mix_.k; ++c) {
    DefectComponent comp;
    bool drawn = false;
    for (std::size_t tries = 0; tries < kMaxDrawTries && !drawn; ++tries) {
      const DefectKind kind = kinds[rng.nextBelow(kinds.size())];
      switch (kind) {
        case DefectKind::StuckAt: {
          const FaultSite site = stuckPool_[rng.nextBelow(stuckPool_.size())];
          if (usedSites.count(site.gate) != 0) break;
          FaultResponse resp = sim_->simulate(site);
          if (!resp.detected()) break;
          comp.kind = kind;
          comp.fault = site;
          comp.response = std::move(resp);
          usedSites.insert(site.gate);
          drawn = true;
          break;
        }
        case DefectKind::Bridge: {
          const BridgeFault bridge = bridgePool_[rng.nextBelow(bridgePool_.size())];
          if (usedSites.count(bridge.a) != 0 || usedSites.count(bridge.b) != 0) break;
          FaultResponse resp = simulateBridge(*sim_, bridge);
          if (!resp.detected()) break;
          comp.kind = kind;
          comp.bridge = bridge;
          comp.fault = resp.fault;
          comp.response = std::move(resp);
          usedSites.insert(bridge.a);
          usedSites.insert(bridge.b);
          drawn = true;
          break;
        }
        case DefectKind::StuckOpen: {
          const GateId site = openPool_[rng.nextBelow(openPool_.size())];
          if (usedSites.count(site) != 0) break;
          FaultResponse resp = simulateOpen(*sim_, site);
          if (!resp.detected()) break;
          comp.kind = kind;
          comp.fault = resp.fault;
          comp.response = std::move(resp);
          usedSites.insert(site);
          drawn = true;
          break;
        }
      }
    }
    SCANDIAG_REQUIRE(drawn, "could not draw a detected defect component (pool too sparse)");
    out.components.push_back(std::move(comp));
  }

  if (mix_.intermittentP > 0.0) {
    // Even components are intermittent: component 0 always is (every scenario
    // of an intermittent mix exercises degradation), and with k >= 2 at least
    // one permanent component remains to anchor the union.
    for (std::size_t i = 0; i < out.components.size(); i += 2) {
      out.components[i].activation = mix_.intermittentP;
    }
  }

  std::vector<const FaultResponse*> parts;
  parts.reserve(out.components.size());
  for (const DefectComponent& comp : out.components) parts.push_back(&comp.response);
  out.composed = composeUnionResponse(parts);
  return out;
}

// ---------------------------------------------------------------------------
// Diagnosis.

DefectZooPipeline::DefectZooPipeline(const FaultSimulator& simulator,
                                     const ScanTopology& topology,
                                     const DiagnosisConfig& config, const DefectPolicy& policy)
    : sim_(&simulator),
      topology_(&topology),
      base_(topology, config),
      recovery_(topology, policy.retry),
      refiner_(topology, UnionRefineConfig{policy.refineSessionBudget, policy.maxFaults},
               simulator.patterns().numPatterns()),
      policy_(policy),
      adiPrior_(adiPriorFromGoodCaptures(topology, simulator.goodCaptures())),
      atpg_(policy.atpgSessionBudget > 0 ? std::make_unique<PodemAtpg>(simulator.netlist())
                                         : nullptr) {
  SCANDIAG_REQUIRE(config.scheme != SchemeKind::Adaptive,
                   "defect-zoo diagnosis needs a fixed partition schedule");
}

DefectZooPipeline::~DefectZooPipeline() = default;

DefectDiagnosis DefectZooPipeline::diagnose(const DefectScenario& scenario) const {
  obs::count(obs::Counter::DefectScenariosRun);
  SCANDIAG_REQUIRE(!scenario.components.empty(), "empty defect scenario");
  if (scenario.intermittent()) return diagnoseIntermittent(scenario);
  return diagnosePermanent(scenario);
}

DefectDiagnosis DefectZooPipeline::diagnosePermanent(const DefectScenario& scenario) const {
  const FaultResponse& response = scenario.composed;
  const DiagnosisConfig& config = base_.config();
  const std::size_t numPatterns = sim_->patterns().numPatterns();
  const std::size_t chainLength = topology_->maxChainLength();

  DefectDiagnosis out;
  out.actualCount = response.failingCellCount();
  out.cost = partitionRunCost(config.numPartitions, config.groupsPerPartition, numPatterns,
                              chainLength);

  // Detection + bounded recovery. A genuine permanent union replays
  // bit-identically, so any DisjointFailingUnion report short-circuits into
  // the checked union mode after one confirming re-run (satellite fix).
  const PreparedPartitionSet& prepared = base_.prepared();
  const GroupVerdicts verdicts = base_.engine().run(prepared, response);
  const PartitionRerun rerun = [&](std::size_t partition, std::size_t) {
    return base_.engine().runPartition(prepared, partition, response);
  };
  const RecoveredDiagnosis recovered = recovery_.recover(prepared, verdicts, rerun);
  out.inconsistencies = recovered.inconsistencies.size();
  out.extraSessions = recovered.retrySessions;
  out.cost += repeatedSessionsCost(recovered.retrySessions, numPatterns, chainLength);
  out.confidence = recovered.confidence;
  if (recovered.unionDiagnosis && recovered.unionClusters > 1) {
    out.unionSplits += recovered.unionClusters - 1;
  }

  CandidateSet candidates = recovered.candidates;
  bool degraded = !recovered.resolved;
  // Recovery counts DegradedSupersets itself on the over-budget union path;
  // remember so the final accounting does not double-count.
  const bool recoveryCounted = recovered.unionDiagnosis && !recovered.resolved;

  // Active refinement: interval sessions shrink the passive superset's
  // accidental survivors, highest-ADI segments first.
  std::size_t unresolvedLeft = 0;
  std::size_t clusters = recovered.unionDiagnosis ? recovered.unionClusters : 1;
  if (policy_.refineSessionBudget > 0 && candidates.positions.any()) {
    const BitVector truePositions = topology_->collapseCells(response.failingCells);
    const IntervalOracle oracle = [&](std::size_t lo, std::size_t hi, std::size_t) {
      for (std::size_t p = lo; p < hi; ++p) {
        if (truePositions.test(p)) return true;
      }
      return false;
    };
    const UnionRefinement refined = refiner_.refine(candidates.positions, adiPrior_, oracle);
    out.unionSplits += refined.splits;
    out.extraSessions += refined.sessions;
    out.cost += refined.cost;
    candidates = refined.candidates;

    BitVector confirmed = refined.confirmed;
    BitVector pendingMask = refined.unresolved;
    // PODEM stall breaker: distinguishing mini-sessions targeted at the
    // unresolved positions. A manifested error CONFIRMS a position; a silent
    // mini-session proves nothing (the defect may simply not have been
    // excited), so the position stays an unresolved candidate — refinement
    // never exonerates on ATPG evidence (degrade-never-lie).
    if (atpg_ != nullptr && !refined.complete) {
      std::vector<std::size_t> pending = pendingMask.toIndices();
      std::stable_sort(pending.begin(), pending.end(), [&](std::size_t a, std::size_t b) {
        if (adiPrior_[a] != adiPrior_[b]) return adiPrior_[a] > adiPrior_[b];
        return a < b;
      });
      const Netlist& netlist = sim_->netlist();
      const std::vector<GateId>& dffs = netlist.dffs();
      std::size_t atpgSessions = 0;
      for (const std::size_t pos : pending) {
        if (atpgSessions >= policy_.atpgSessionBudget) break;
        std::vector<TestCube> cubes;
        for (std::size_t chain = 0; chain < topology_->numChains(); ++chain) {
          if (pos >= topology_->chainLength(chain)) continue;
          const GateId dff = dffs.at(topology_->chain(chain)[pos]);
          for (const bool stuckAt : {false, true}) {
            const AtpgResult result =
                atpg_->generate(FaultSite{dff, 0, stuckAt}, policy_.atpgBacktrackLimit);
            if (result.outcome == AtpgOutcome::Detected) cubes.push_back(result.cube);
          }
        }
        if (cubes.empty()) continue;  // untestable capture path: stays unresolved
        obs::count(obs::Counter::AtpgPatternsGenerated, cubes.size());
        out.atpgPatterns += cubes.size();
        ++atpgSessions;
        ++out.extraSessions;
        const PatternSet distinguishing =
            patternsFromCubes(netlist, cubes, 0xF1ULL ^ scenario.seed);
        out.cost += distinguishingSessionCost(distinguishing.numPatterns(), chainLength);
        // Local simulator: the shared instance is not thread-safe, and the
        // distinguishing patterns need their own good machine anyway.
        const FaultSimulator local(netlist, distinguishing);
        std::vector<FaultResponse> partResponses;
        partResponses.reserve(scenario.components.size());
        for (const DefectComponent& comp : scenario.components) {
          switch (comp.kind) {
            case DefectKind::StuckAt: partResponses.push_back(local.simulate(comp.fault)); break;
            case DefectKind::Bridge: partResponses.push_back(simulateBridge(local, comp.bridge)); break;
            case DefectKind::StuckOpen:
              partResponses.push_back(simulateOpen(local, comp.fault.gate));
              break;
          }
        }
        std::vector<const FaultResponse*> parts;
        parts.reserve(partResponses.size());
        for (const FaultResponse& r : partResponses) parts.push_back(&r);
        const FaultResponse mini = composeUnionResponse(parts);
        if (mini.failingCells.size() == topology_->numCells() &&
            topology_->collapseCells(mini.failingCells).test(pos)) {
          confirmed.set(pos);
          BitVector cleared(pendingMask.size());
          cleared.set(pos);
          pendingMask.andNot(cleared);
        }
      }
    }

    unresolvedLeft = pendingMask.count();
    // Cluster accounting over everything confirmed failing (refinement +
    // ATPG confirmations): maximal runs = isolated per-fault segments.
    clusters = 0;
    bool inRun = false;
    for (std::size_t p = 0; p < confirmed.size(); ++p) {
      const bool c = confirmed.test(p);
      if (c && !inRun) ++clusters;
      inRun = c;
    }
    if (unresolvedLeft > 0 || clusters > policy_.maxFaults) degraded = true;
  }

  if (clusters > policy_.maxFaults) out.confidence *= 0.5;
  if (unresolvedLeft > 0) out.confidence *= std::pow(0.97, static_cast<double>(unresolvedLeft));
  out.confidence = std::clamp(out.confidence, kConfidenceFloor, 1.0);

  out.candidates = std::move(candidates);
  out.candidates.cells = topology_->expandPositions(out.candidates.positions);
  out.candidateCount = out.candidates.cellCount();
  out.resolved = !degraded;
  out.degraded = degraded;
  out.misdiagnosed = !response.failingCells.isSubsetOf(out.candidates.cells);
  if (degraded && !recoveryCounted) obs::count(obs::Counter::DegradedSupersets);
  return out;
}

DefectDiagnosis DefectZooPipeline::diagnoseIntermittent(const DefectScenario& scenario) const {
  const DiagnosisConfig& config = base_.config();
  const std::size_t numPatterns = sim_->patterns().numPatterns();
  const std::size_t chainLength = topology_->maxChainLength();
  const PreparedPartitionSet& prepared = base_.prepared();
  const std::vector<Partition>& partitions = prepared.partitions();
  const std::size_t numPartitions = partitions.size();
  const std::size_t samples = std::max<std::size_t>(1, policy_.intermittentSamples);

  DefectDiagnosis out;

  // Observe `samples` full schedules; each (attempt, partition) draws its own
  // replayable activation stream, exactly like a tester re-running sessions
  // against a flaky defect.
  GroupVerdicts all;
  all.failing.reserve(numPartitions * samples);
  std::vector<Partition> allPartitions;
  allPartitions.reserve(numPartitions * samples);
  GroupVerdicts firstSample;
  BitVector manifested(scenario.composed.failingCells.size());
  for (std::size_t attempt = 0; attempt < samples; ++attempt) {
    for (std::size_t p = 0; p < numPartitions; ++p) {
      const FaultResponse effective = effectiveResponse(scenario, attempt, p);
      manifested |= effective.failingCells;
      PartitionVerdictRow row = base_.engine().runPartition(prepared, p, effective);
      all.failing.push_back(std::move(row.failing));
      allPartitions.push_back(partitions[p]);
      if (attempt == 0) firstSample.failing.push_back(all.failing.back());
    }
  }
  out.actualCount = manifested.count();
  out.cost = partitionRunCost(numPartitions * samples, config.groupsPerPartition, numPatterns,
                              chainLength);
  out.extraSessions = (samples - 1) * numPartitions * config.groupsPerPartition;

  const CheckedAnalysis checked = base_.analyzer().analyzeChecked(partitions, firstSample);
  out.inconsistencies = checked.inconsistencies.size();

  // Intermittency starves the intersection (a pass no longer exonerates), so
  // even the union mode's per-cluster intersections are unsound — take the
  // superset floor across every observed session: a guaranteed superset of
  // everything that manifested, by construction (degrade-never-lie).
  const UnionAnalysis unions =
      base_.analyzer().analyzeUnion(allPartitions, all, policy_.maxFaults);
  if (unions.clusters > 1) {
    out.unionSplits = unions.clusters - 1;
    obs::count(obs::Counter::UnionSplits, out.unionSplits);
  }
  out.candidates = unions.supersetFloor;
  out.candidateCount = out.candidates.cellCount();
  out.resolved = false;
  out.degraded = true;
  obs::count(obs::Counter::DegradedSupersets);

  // Calibrated confidence: estimate the activation rate from group-verdict
  // stability across samples; the miss probability (an intermittent component
  // silent in every sample) bounds how much of the defect we can have seen.
  std::size_t everFailing = 0;
  double fractionSum = 0.0;
  for (std::size_t p = 0; p < numPartitions; ++p) {
    const std::size_t groups = all.failing[p].size();
    for (std::size_t g = 0; g < groups; ++g) {
      std::size_t fails = 0;
      for (std::size_t attempt = 0; attempt < samples; ++attempt) {
        if (all.failing[attempt * numPartitions + p].test(g)) ++fails;
      }
      if (fails > 0) {
        ++everFailing;
        fractionSum += static_cast<double>(fails) / static_cast<double>(samples);
      }
    }
  }
  const double activationEstimate = everFailing > 0 ? fractionSum / static_cast<double>(everFailing) : 0.0;
  const double missProbability = std::pow(1.0 - activationEstimate, static_cast<double>(samples));
  out.confidence = std::clamp((1.0 - missProbability) * 0.95, kConfidenceFloor, 0.95);

  out.misdiagnosed = manifested.size() == out.candidates.cells.size() &&
                             manifested.any()
                         ? !manifested.isSubsetOf(out.candidates.cells)
                         : false;
  return out;
}

FaultResponse DefectZooPipeline::effectiveResponse(const DefectScenario& scenario,
                                                   std::size_t attempt,
                                                   std::size_t partition) const {
  const std::size_t numPatterns = sim_->patterns().numPatterns();
  std::vector<FaultResponse> masked;
  masked.reserve(scenario.components.size());
  for (std::size_t i = 0; i < scenario.components.size(); ++i) {
    const DefectComponent& comp = scenario.components[i];
    if (!comp.intermittent()) continue;
    const BitVector activation = intermittentActivationMask(
        scenario.seed, scenario.index, i, attempt, partition, comp.activation, numPatterns);
    masked.push_back(maskResponse(comp.response, activation));
  }
  std::vector<const FaultResponse*> parts;
  parts.reserve(scenario.components.size());
  for (const DefectComponent& comp : scenario.components) {
    if (!comp.intermittent()) parts.push_back(&comp.response);
  }
  for (const FaultResponse& m : masked) parts.push_back(&m);
  return composeUnionResponse(parts);
}

DefectZooReport DefectZooPipeline::evaluate(const std::vector<DefectScenario>& scenarios) const {
  DefectZooReport report;
  const std::size_t n = scenarios.size();
  std::vector<DefectDiagnosis> slots(n);
  // Index-partitioned workers + index-ordered fold: bit-identical at every
  // thread count (diagnose() is thread-safe const — the shared FaultSimulator
  // is only read, never simulated on).
  globalPool().parallelFor(n, [&](std::size_t i) { slots[i] = diagnose(scenarios[i]); });

  DrAccumulator acc;
  double confidenceSum = 0.0;
  std::size_t misdiagnosed = 0;
  for (const DefectDiagnosis& d : slots) {
    acc.add(d.candidateCount, d.actualCount);
    confidenceSum += d.confidence;
    if (d.misdiagnosed) ++misdiagnosed;
    if (!d.resolved) ++report.degraded;
    report.totalInconsistencies += d.inconsistencies;
    report.totalUnionSplits += d.unionSplits;
    report.totalAtpgPatterns += d.atpgPatterns;
    report.totalExtraSessions += d.extraSessions;
  }
  report.scenarios = n;
  report.sumCandidates = acc.sumCandidates();
  report.sumActual = acc.sumActual();
  report.dr = acc.sumActual() > 0 ? acc.dr() : 0.0;
  report.misdiagnosisRate = n > 0 ? static_cast<double>(misdiagnosed) / static_cast<double>(n) : 0.0;
  report.meanConfidence = n > 0 ? confidenceSum / static_cast<double>(n) : 1.0;
  return report;
}

}  // namespace scandiag
