// Noise-injected, recovery-enabled diagnosis pipeline.
//
// Binds DiagnosisPipeline + VerdictCorruptor + DiagnosisRecovery into the
// end-to-end resilience experiment: sessions run, the corruptor perturbs the
// verdicts (attempt 0), detection flags physically impossible schedules, and
// suspect partitions are re-run — through the corruptor again, with fresh
// independent streams, as on a real noisy tester — under the RetryPolicy
// budget, falling back to dropping inconsistent partitions.
//
// Contracts:
//   * noise.enabled() == false delegates to DiagnosisPipeline::diagnose
//     verbatim — the zero-noise path is bit-identical to the base pipeline
//     (golden values + parallel determinism hold unchanged).
//   * evaluate() keys each fault's noise stream by its index, so the report
//     is bit-identical at every thread count.
//   * Superposition pruning is skipped whenever noise is enabled: corrupted
//     or majority-voted verdicts break the XOR-additive signature algebra
//     the pruner relies on, and pruning against a fictitious GF(2) system
//     can exonerate true failing cells.
#pragma once

#include <cstdint>
#include <vector>

#include "diagnosis/experiment_driver.hpp"
#include "diagnosis/recovery.hpp"
#include "inject/verdict_corruptor.hpp"

namespace scandiag {

struct ResilientDiagnosis {
  CandidateSet candidates;
  std::size_t candidateCount = 0;
  std::size_t actualCount = 0;
  /// Ground truth (simulation side): some true failing cell missing from the
  /// candidate set — the misdiagnosis the DR tables assume cannot happen.
  bool misdiagnosed = false;
  bool emptyCandidates = false;
  double confidence = 1.0;
  bool resolved = true;
  std::size_t inconsistencies = 0;
  std::size_t retrySessions = 0;
  /// Base schedule plus retry re-runs.
  DiagnosisCost cost;
  /// Ground truth of what the corruptor injected on attempt 0.
  CorruptionTrace injected;
};

struct NoisyDrReport {
  double dr = 0.0;
  std::size_t faults = 0;
  std::uint64_t sumCandidates = 0;
  std::uint64_t sumActual = 0;
  /// Fraction of faults with at least one exonerated true failing cell.
  double misdiagnosisRate = 0.0;
  /// Fraction of faults whose candidate set came back empty.
  double emptyRate = 0.0;
  double meanConfidence = 1.0;
  std::size_t totalInconsistencies = 0;
  std::size_t totalRetrySessions = 0;
  /// Faults still inconsistent after the retry budget (degraded results).
  std::size_t unresolved = 0;
};

class NoisyPipeline {
 public:
  NoisyPipeline(const ScanTopology& topology, const DiagnosisConfig& config,
                const NoiseConfig& noise, const RetryPolicy& retry);

  const DiagnosisPipeline& base() const { return base_; }
  const NoiseConfig& noise() const { return corruptor_.config(); }
  const RetryPolicy& retry() const { return recovery_.policy(); }

  /// One fault through sessions → corruption → detection → bounded retry.
  /// `faultKey` seeds the fault's noise streams (evaluate() uses the index).
  ResilientDiagnosis diagnose(const FaultResponse& response, std::uint64_t faultKey) const;

  /// Noisy DR + misdiagnosis report over detected responses; bit-identical
  /// at every thread count.
  NoisyDrReport evaluate(const std::vector<FaultResponse>& responses) const;

 private:
  const ScanTopology* topology_;
  DiagnosisPipeline base_;
  VerdictCorruptor corruptor_;
  DiagnosisRecovery recovery_;
};

}  // namespace scandiag
