// Named presets for every experiment in the paper's evaluation (DESIGN.md §3).
//
// Each preset pins workload (pattern count, fault count) and diagnosis
// parameters (partitions, groups, LFSR degree, pruning) to the values the
// paper states; the bench binaries consume these so EXPERIMENTS.md rows are
// reproducible from one place.
#pragma once

#include "diagnosis/experiment_driver.hpp"

namespace scandiag::presets {

/// Table 1: s953, 200 patterns, 500 faults, 4 groups/partition, 1..8
/// partitions, all three schemes.
WorkloadConfig table1Workload();
DiagnosisConfig table1(SchemeKind scheme, std::size_t numPartitions);

/// Table 2: six largest ISCAS-89, 128 patterns, 500 faults, degree-16
/// selection LFSR, 8 partitions x 16 groups, random vs two-step, +/- pruning.
WorkloadConfig table2Workload();
DiagnosisConfig table2(SchemeKind scheme, bool pruning);

/// Tables 3 & 4 / Fig. 5: SOC runs, 128 patterns, 500 faults per failing
/// core, 8 partitions; 32 groups on SOC-1's long single meta chain, 8 groups
/// on d695's shorter meta chains.
WorkloadConfig socWorkload();
DiagnosisConfig soc1Config(SchemeKind scheme, bool pruning);
DiagnosisConfig d695Config(SchemeKind scheme, bool pruning);

/// Figure 5 sweep: like soc1Config without pruning, numPartitions = maxP.
DiagnosisConfig fig5Config(SchemeKind scheme, std::size_t maxPartitions);

}  // namespace scandiag::presets
