#include "core/diagnoser.hpp"

#include "common/assert.hpp"
#include "sim/fault_list.hpp"

namespace scandiag {

namespace {

ScanTopology makeTopology(const Netlist& netlist, std::size_t numChains) {
  SCANDIAG_REQUIRE(!netlist.dffs().empty(), "circuit has no scan cells");
  return numChains <= 1 ? ScanTopology::singleChain(netlist.dffs().size())
                        : ScanTopology::blockChains(netlist.dffs().size(), numChains);
}

}  // namespace

Diagnoser::Diagnoser(Netlist netlist, DiagnoserOptions options)
    : netlist_(std::move(netlist)),
      options_(std::move(options)),
      topology_(makeTopology(netlist_, options_.numChains)),
      patterns_(generatePatterns(netlist_, options_.diagnosis.numPatterns, options_.prpg)),
      faultSim_(netlist_, patterns_),
      pipeline_(topology_, options_.diagnosis) {}

const std::vector<Partition>& Diagnoser::partitions() const { return pipeline_.partitions(); }

std::size_t Diagnoser::sessionCount() const {
  return options_.diagnosis.numPartitions * options_.diagnosis.groupsPerPartition;
}

Diagnoser::Result Diagnoser::diagnoseInjectedFault(const FaultSite& fault) const {
  const FaultResponse response = faultSim_.simulate(fault);
  Result result;
  result.detected = response.detected();
  result.actualFailingCells = response.failingCells.toIndices();
  if (!result.detected) return result;
  const FaultDiagnosis d = pipeline_.diagnose(response);
  result.candidateCells = d.candidates.cells.toIndices();
  return result;
}

const std::string& Diagnoser::cellName(std::size_t cell) const {
  SCANDIAG_REQUIRE(cell < netlist_.dffs().size(), "cell ordinal out of range");
  return netlist_.gateName(netlist_.dffs()[cell]);
}

DrReport Diagnoser::evaluateResolution(std::size_t numFaults, std::uint64_t seed,
                                       const RunControl& control,
                                       SweepCheckpoint* checkpoint) const {
  const FaultList universe = FaultList::enumerateCollapsed(netlist_);
  const std::vector<FaultSite> candidates =
      universe.sample(std::min(universe.size(), numFaults * 4), seed);
  const std::vector<FaultResponse> responses = faultSim_.collectDetected(candidates, numFaults);
  return evaluateWithCheckpoint(pipeline_, responses, checkpoint,
                                sweepIdFor(options_.diagnosis), control);
}

}  // namespace scandiag
