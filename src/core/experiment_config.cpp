#include "core/experiment_config.hpp"

namespace scandiag::presets {

namespace {

DiagnosisConfig base(SchemeKind scheme, std::size_t partitions, std::size_t groups,
                     std::size_t patterns, bool pruning) {
  DiagnosisConfig c;
  c.scheme = scheme;
  c.numPartitions = partitions;
  c.groupsPerPartition = groups;
  c.numPatterns = patterns;
  c.pruning = pruning;
  c.schemeConfig.lfsr = LfsrConfig{/*degree=*/16, /*tapMask=*/0};  // paper: degree-16 primitive
  return c;
}

}  // namespace

WorkloadConfig table1Workload() {
  WorkloadConfig w;
  w.numPatterns = 200;
  w.numFaults = 500;
  return w;
}

DiagnosisConfig table1(SchemeKind scheme, std::size_t numPartitions) {
  return base(scheme, numPartitions, /*groups=*/4, /*patterns=*/200, /*pruning=*/false);
}

WorkloadConfig table2Workload() {
  WorkloadConfig w;
  w.numPatterns = 128;
  w.numFaults = 500;
  return w;
}

DiagnosisConfig table2(SchemeKind scheme, bool pruning) {
  return base(scheme, /*partitions=*/8, /*groups=*/16, /*patterns=*/128, pruning);
}

WorkloadConfig socWorkload() { return table2Workload(); }

DiagnosisConfig soc1Config(SchemeKind scheme, bool pruning) {
  return base(scheme, /*partitions=*/8, /*groups=*/32, /*patterns=*/128, pruning);
}

DiagnosisConfig d695Config(SchemeKind scheme, bool pruning) {
  return base(scheme, /*partitions=*/8, /*groups=*/8, /*patterns=*/128, pruning);
}

DiagnosisConfig fig5Config(SchemeKind scheme, std::size_t maxPartitions) {
  return base(scheme, maxPartitions, /*groups=*/32, /*patterns=*/128, /*pruning=*/false);
}

}  // namespace scandiag::presets
