// Diagnoser — the one-stop public API.
//
// Binds a full-scan circuit to a complete scan-BIST diagnosis setup (scan
// stitching, PRPG, partition scheme, session/signature model, pruning) and
// answers the question the paper poses: *which scan cells captured errors?*
//
//   Netlist circuit = parseBenchFile("s953.bench");   // or generateNamedCircuit
//   Diagnoser diag(circuit, {});                      // defaults: two-step
//   auto result = diag.diagnoseInjectedFault({gate, FaultSite::kOutputPin, true});
//   // result.candidateCells ⊇ result.actualFailingCells (exact mode)
//
// For evaluation, evaluateResolution() reproduces the paper's DR metric over
// a deterministic sample of stuck-at faults.
#pragma once

#include <memory>
#include <optional>

#include "core/experiment_config.hpp"
#include "diagnosis/checkpoint.hpp"
#include "diagnosis/experiment_driver.hpp"

namespace scandiag {

struct DiagnoserOptions {
  DiagnosisConfig diagnosis{};
  /// Number of internal scan chains the DFFs are stitched into.
  std::size_t numChains = 1;
  PrpgConfig prpg{};
};

class Diagnoser {
 public:
  /// Copies `netlist`; the Diagnoser is self-contained afterwards.
  Diagnoser(Netlist netlist, DiagnoserOptions options = {});

  const Netlist& netlist() const { return netlist_; }
  const ScanTopology& topology() const { return topology_; }
  const std::vector<Partition>& partitions() const;
  const DiagnoserOptions& options() const { return options_; }

  /// Total BIST sessions a full diagnosis run costs (partitions x groups) —
  /// the paper's diagnosis-time proxy.
  std::size_t sessionCount() const;

  struct Result {
    std::vector<std::size_t> candidateCells;       // DFF ordinals, ascending
    std::vector<std::size_t> actualFailingCells;   // ground truth (simulation)
    bool detected = false;

    /// candidates == actual (perfect resolution)?
    bool exact() const { return candidateCells == actualFailingCells; }
  };

  /// Simulates the fault on the DUT model and runs the full multi-session
  /// diagnosis on the (virtual) tester responses.
  Result diagnoseInjectedFault(const FaultSite& fault) const;

  /// Scan-cell name (the DFF's netlist name) for a cell ordinal.
  const std::string& cellName(std::size_t cell) const;

  /// DR over `numFaults` detected faults sampled with `seed`. `control` is
  /// polled at fault granularity (inert by default); `checkpoint` — when
  /// non-null — journals/replays completed faults so a killed run resumes
  /// bit-identically (see diagnosis/checkpoint.hpp).
  DrReport evaluateResolution(std::size_t numFaults, std::uint64_t seed = 0xFA17,
                              const RunControl& control = {},
                              SweepCheckpoint* checkpoint = nullptr) const;

 private:
  Netlist netlist_;
  DiagnoserOptions options_;
  ScanTopology topology_;
  PatternSet patterns_;
  FaultSimulator faultSim_;
  DiagnosisPipeline pipeline_;
};

}  // namespace scandiag
