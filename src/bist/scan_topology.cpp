#include "bist/scan_topology.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace scandiag {

ScanTopology ScanTopology::singleChain(std::size_t numCells) {
  std::vector<std::size_t> chain(numCells);
  for (std::size_t i = 0; i < numCells; ++i) chain[i] = i;
  return fromChains({std::move(chain)});
}

ScanTopology ScanTopology::blockChains(std::size_t numCells, std::size_t numChains) {
  SCANDIAG_REQUIRE(numChains >= 1, "need at least one chain");
  SCANDIAG_REQUIRE(numChains <= numCells, "more chains than cells");
  std::vector<std::vector<std::size_t>> chains(numChains);
  const std::size_t base = numCells / numChains;
  const std::size_t extra = numCells % numChains;
  std::size_t next = 0;
  for (std::size_t c = 0; c < numChains; ++c) {
    const std::size_t len = base + (c < extra ? 1 : 0);
    chains[c].reserve(len);
    for (std::size_t i = 0; i < len; ++i) chains[c].push_back(next++);
  }
  return fromChains(std::move(chains));
}

ScanTopology ScanTopology::fromChains(std::vector<std::vector<std::size_t>> chains) {
  SCANDIAG_REQUIRE(!chains.empty(), "need at least one chain");
  std::size_t total = 0;
  for (const auto& c : chains) total += c.size();
  SCANDIAG_REQUIRE(total > 0, "topology must contain at least one cell");

  ScanTopology t;
  t.chains_ = std::move(chains);
  t.loc_.assign(total, CellLoc{0, 0});
  std::vector<bool> seen(total, false);
  for (std::size_t c = 0; c < t.chains_.size(); ++c) {
    t.maxLen_ = std::max(t.maxLen_, t.chains_[c].size());
    for (std::size_t p = 0; p < t.chains_[c].size(); ++p) {
      const std::size_t cell = t.chains_[c][p];
      SCANDIAG_REQUIRE(cell < total, "cell id out of range in chain stitching");
      SCANDIAG_REQUIRE(!seen[cell], "cell id repeated in chain stitching");
      seen[cell] = true;
      t.loc_[cell] = CellLoc{c, p};
    }
  }
  return t;
}

ScanTopology::CellLoc ScanTopology::location(std::size_t cell) const {
  SCANDIAG_REQUIRE(cell < loc_.size(), "cell id out of range");
  return loc_[cell];
}

BitVector ScanTopology::expandPositions(const BitVector& positions) const {
  SCANDIAG_REQUIRE(positions.size() == maxLen_, "position mask size mismatch");
  BitVector cells(numCells());
  for (std::size_t cell = 0; cell < loc_.size(); ++cell) {
    if (positions.test(loc_[cell].position)) cells.set(cell);
  }
  return cells;
}

BitVector ScanTopology::collapseCells(const BitVector& cells) const {
  SCANDIAG_REQUIRE(cells.size() == numCells(), "cell mask size mismatch");
  BitVector positions(maxLen_);
  for (std::size_t cell = cells.findFirst(); cell != BitVector::npos;
       cell = cells.findNext(cell)) {
    positions.set(loc_[cell].position);
  }
  return positions;
}

}  // namespace scandiag
