#include "bist/interval_seed_search.hpp"

#include <cmath>

#include "common/assert.hpp"

namespace scandiag {

std::size_t intervalLengthFromBits(std::uint64_t bits, unsigned rlen) {
  const std::uint64_t mask = (std::uint64_t{1} << rlen) - 1;
  const std::uint64_t v = bits & mask;
  return v == 0 ? (std::size_t{1} << rlen) : static_cast<std::size_t>(v);
}

std::vector<std::size_t> intervalLengths(const LfsrConfig& config, std::uint64_t seed,
                                         unsigned rlen, std::size_t groups,
                                         std::size_t chainLength) {
  SCANDIAG_REQUIRE(rlen >= 1 && rlen <= config.degree, "interval field exceeds LFSR degree");
  SCANDIAG_REQUIRE(groups >= 1, "need at least one group");
  SCANDIAG_REQUIRE(chainLength >= groups, "chain shorter than group count");
  Lfsr lfsr(config, seed);
  std::vector<std::size_t> lengths;
  std::size_t covered = 0;
  for (std::size_t i = 0; i < groups && covered < chainLength; ++i) {
    std::size_t len = intervalLengthFromBits(lfsr.lowBits(rlen), rlen);
    // rlen shifts per boundary give a fresh (decorrelated) window for the
    // next interval; a single shift would make successive lengths sliding
    // windows of each other (l' ~ 2l mod 2^rlen). The hardware cost is nil:
    // the carry pulse gates rlen clock cycles instead of one while the next
    // interval's first cells shift.
    for (unsigned s = 0; s < rlen; ++s) lfsr.step();
    if (i + 1 == groups || covered + len > chainLength) len = chainLength - covered;
    lengths.push_back(len);
    covered += len;
  }
  return lengths;
}

unsigned defaultIntervalBits(std::size_t chainLength, std::size_t groups, unsigned degree) {
  SCANDIAG_REQUIRE(groups >= 1 && chainLength >= groups, "bad chain/group sizes");
  const double target = 1.15 * static_cast<double>(chainLength) / static_cast<double>(groups);
  unsigned rlen = 1;
  // Expected interval length for an rlen-bit field is 2^(rlen-1) + 0.5.
  while (rlen < degree && std::pow(2.0, rlen - 1) + 0.5 < target) ++rlen;
  return rlen;
}

std::optional<IntervalSeedResult> findIntervalSeed(const LfsrConfig& config, unsigned rlen,
                                                   std::size_t groups, std::size_t chainLength,
                                                   std::uint64_t startSeed,
                                                   std::size_t maxTries) {
  const std::uint64_t stateMask = (std::uint64_t{1} << config.degree) - 1;
  // Two passes: first insist on every group nonempty (no wasted sessions);
  // if the configuration makes that statistically infeasible (many groups,
  // coarse length field), accept any covering seed — the chain is then
  // covered by fewer than `groups` intervals and the trailing groups are
  // empty (their sessions observe nothing, which the diagnosis layer treats
  // as trivially passing).
  for (const bool strict : {true, false}) {
    std::uint64_t seed = startSeed & stateMask;
    const std::size_t tries = std::min<std::size_t>(maxTries, stateMask);
    for (std::size_t t = 0; t < tries; ++t, seed = (seed + 1) & stateMask) {
      if (seed == 0) continue;
      Lfsr lfsr(config, seed);
      std::size_t covered = 0;
      bool earlyCover = false;
      for (std::size_t i = 0; i + 1 < groups; ++i) {
        covered += intervalLengthFromBits(lfsr.lowBits(rlen), rlen);
        for (unsigned st = 0; st < rlen; ++st) lfsr.step();
        if (covered >= chainLength) {
          earlyCover = true;
          break;
        }
      }
      if (strict && earlyCover) continue;
      if (!earlyCover) covered += intervalLengthFromBits(lfsr.lowBits(rlen), rlen);
      if (covered < chainLength) continue;
      IntervalSeedResult result;
      result.seed = seed;
      result.lengths = intervalLengths(config, seed, rlen, groups, chainLength);
      result.lengths.resize(groups, 0);  // trailing empty groups when earlyCover
      return result;
    }
  }
  return std::nullopt;
}

std::vector<IntervalSeedResult> findIntervalSeeds(const LfsrConfig& config, unsigned rlen,
                                                  std::size_t groups, std::size_t chainLength,
                                                  std::uint64_t startSeed, std::size_t count) {
  std::vector<IntervalSeedResult> results;
  std::uint64_t seed = startSeed;
  while (results.size() < count) {
    auto r = findIntervalSeed(config, rlen, groups, chainLength, seed);
    SCANDIAG_REQUIRE(r.has_value(),
                     "no covering interval seed exists for this chain/group configuration");
    seed = r->seed + 1;
    results.push_back(std::move(*r));
  }
  return results;
}

}  // namespace scandiag
