#include "bist/lfsr.hpp"

#include <bit>

#include "common/assert.hpp"

namespace scandiag {

Lfsr::Lfsr(const LfsrConfig& config, std::uint64_t seed)
    : degree_(config.degree),
      tapMask_(config.effectiveTapMask()),
      stateMask_(degree_ >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << degree_) - 1) {
  SCANDIAG_REQUIRE(degree_ >= 2 && degree_ <= 63, "LFSR degree must be in [2, 63]");
  SCANDIAG_REQUIRE((tapMask_ & ~stateMask_) == 0, "tap mask exceeds degree");
  SCANDIAG_REQUIRE(tapMask_ >> (degree_ - 1), "tap mask must include the top stage");
  setState(seed);
}

void Lfsr::setState(std::uint64_t state) {
  state &= stateMask_;
  SCANDIAG_REQUIRE(state != 0, "LFSR state must be nonzero");
  state_ = state;
}

bool Lfsr::step() {
  // Left-shift Fibonacci form: with stage i holding s_{k-1-i}, the new bit is
  // s_k = XOR over taps t of s_{k-t} = parity(state & tapMask) (tap exponent t
  // maps to stage t-1). The bit falling out of the top stage is the output.
  const bool out = (state_ >> (degree_ - 1)) & 1u;
  const std::uint64_t feedback =
      static_cast<std::uint64_t>(std::popcount(state_ & tapMask_) & 1);
  state_ = ((state_ << 1) | feedback) & stateMask_;
  return out;
}

std::uint64_t Lfsr::stepBits(unsigned n) {
  SCANDIAG_REQUIRE(n <= 64, "at most 64 bits per call");
  std::uint64_t bits = 0;
  for (unsigned i = 0; i < n; ++i) bits |= static_cast<std::uint64_t>(step()) << i;
  return bits;
}

std::uint64_t Lfsr::lowBits(unsigned r) const {
  SCANDIAG_REQUIRE(r >= 1 && r <= degree_, "label width must be in [1, degree]");
  return state_ & ((std::uint64_t{1} << r) - 1);
}

GaloisLfsr::GaloisLfsr(const LfsrConfig& config, std::uint64_t seed)
    : degree_(config.degree),
      tapMask_(config.effectiveTapMask()),
      stateMask_(degree_ >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << degree_) - 1) {
  SCANDIAG_REQUIRE(degree_ >= 2 && degree_ <= 63, "LFSR degree must be in [2, 63]");
  SCANDIAG_REQUIRE((tapMask_ & ~stateMask_) == 0, "tap mask exceeds degree");
  SCANDIAG_REQUIRE(tapMask_ >> (degree_ - 1), "tap mask must include the top stage");
  // The Fibonacci form's recurrence s_k = XOR_t s_{k-t} has the RECIPROCAL of
  // p(x) as its characteristic polynomial; build the Galois feedback from the
  // reciprocal too so both forms emit the same m-sequence (up to phase).
  // p(x) terms below x^d are the taps t < d plus the implicit x^0; the
  // reciprocal maps x^t -> x^(d-t).
  feedbackMask_ = 0;
  for (unsigned t = 1; t < degree_; ++t) {
    if ((tapMask_ >> (t - 1)) & 1u) feedbackMask_ |= std::uint64_t{1} << (degree_ - t);
  }
  feedbackMask_ |= 1u;  // reciprocal of the leading x^d term
  setState(seed);
}

void GaloisLfsr::setState(std::uint64_t state) {
  state &= stateMask_;
  SCANDIAG_REQUIRE(state != 0, "LFSR state must be nonzero");
  state_ = state;
}

bool GaloisLfsr::step() {
  // Internal-XOR form: when the top stage is 1, the polynomial (minus its
  // leading term) is XORed into the shifted state — the standard "multiply by
  // x modulo p(x)" update. Left-shift direction matches the Fibonacci form.
  const bool out = (state_ >> (degree_ - 1)) & 1u;
  state_ = (state_ << 1) & stateMask_;
  if (out) state_ ^= feedbackMask_;  // multiply by x modulo the reciprocal polynomial
  return out;
}

std::uint64_t GaloisLfsr::stepBits(unsigned n) {
  SCANDIAG_REQUIRE(n <= 64, "at most 64 bits per call");
  std::uint64_t bits = 0;
  for (unsigned i = 0; i < n; ++i) bits |= static_cast<std::uint64_t>(step()) << i;
  return bits;
}

}  // namespace scandiag
