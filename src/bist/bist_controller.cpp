#include "bist/bist_controller.hpp"

#include "bist/primitive_polys.hpp"
#include "common/assert.hpp"
#include "netlist/cone_analysis.hpp"

namespace scandiag {

BistController::BistController(const Netlist& netlist, const ScanTopology& topology,
                               const BistControllerConfig& config)
    : netlist_(&netlist), topology_(&topology), config_(config), sim_(netlist) {
  SCANDIAG_REQUIRE(topology.numCells() == netlist.dffs().size(),
                   "topology does not match the netlist's scan cells");
  SCANDIAG_REQUIRE(config.numPatterns >= 1, "session needs at least one pattern");
}

std::uint64_t BistController::runSession(const PatternSet& patterns,
                                         const BitVector& selectedPositions,
                                         const std::optional<FaultSite>& fault) const {
  const std::size_t W = topology_->numChains();
  const std::size_t L = topology_->maxChainLength();
  SCANDIAG_REQUIRE(selectedPositions.size() == L, "selection mask size mismatch");
  SCANDIAG_REQUIRE(patterns.numPatterns() >= config_.numPatterns,
                   "pattern set shorter than the session");

  // Note on fault semantics: a stuck scan-cell Q corrupts what the logic
  // sees at capture; shift-path integrity is assumed (chain flush tests are a
  // separate concern), matching the analytic engine's model.
  std::optional<FaultCone> cone;
  if (fault) cone = computeCone(*netlist_, sim_.levelization(), fault->gate);
  const bool dffPinFault =
      fault && !fault->isOutputFault() && netlist_->gate(fault->gate).type == GateType::Dff;

  const std::uint64_t taps =
      config_.misrTapMask ? config_.misrTapMask : primitiveTapMask(config_.misrDegree);
  const std::size_t lines = config_.compactor ? config_.compactor->outputLines() : W;
  if (config_.compactor) {
    SCANDIAG_REQUIRE(config_.compactor->inputChains() == W,
                     "compactor width does not match topology");
  }
  Misr misr(config_.misrDegree, taps, static_cast<unsigned>(lines));

  // Chain contents; padded positions (beyond a chain's length) stay 0.
  std::vector<std::vector<std::uint8_t>> chain(W, std::vector<std::uint8_t>(L, 0));
  auto cellAt = [&](std::size_t c, std::size_t p) -> std::size_t {
    return p < topology_->chainLength(c) ? topology_->chain(c)[p]
                                         : static_cast<std::size_t>(-1);
  };

  auto shiftCycle = [&](std::size_t posIndex, bool clockMisr,
                        const std::optional<std::size_t>& loadPattern) {
    if (clockMisr) {
      std::uint64_t inputs = 0;
      if (selectedPositions.test(posIndex)) {
        for (std::size_t c = 0; c < W; ++c)
          inputs |= static_cast<std::uint64_t>(chain[c][0]) << c;
      }
      misr.clock(config_.compactor ? config_.compactor->apply(inputs) : inputs);
    }
    for (std::size_t c = 0; c < W; ++c) {
      for (std::size_t p = 0; p + 1 < L; ++p) chain[c][p] = chain[c][p + 1];
      std::uint8_t in = 0;
      if (loadPattern) {
        // The bit fed at cycle j lands at position j after the load finishes.
        const std::size_t cell = cellAt(c, posIndex);
        if (cell != static_cast<std::size_t>(-1)) {
          const GateId dff = netlist_->dffs()[cell];
          in = patterns.stream(dff).test(*loadPattern);
        }
      }
      chain[c][L - 1] = in;
    }
  };

  std::vector<SimWord> values(netlist_->gateCount(), 0);
  for (std::size_t t = 0; t < config_.numPatterns; ++t) {
    // Load pattern t (unloading pattern t-1's capture; the MISR idles during
    // the very first load so clock t*L + p consumes capture t at position p).
    for (std::size_t j = 0; j < L; ++j) shiftCycle(j, /*clockMisr=*/t > 0, t);

    // Capture cycle: evaluate one functional cycle with the loaded state.
    for (GateId pi : netlist_->inputs())
      values[pi] = patterns.stream(pi).test(t) ? ~SimWord{0} : SimWord{0};
    for (std::size_t c = 0; c < W; ++c) {
      for (std::size_t p = 0; p < topology_->chainLength(c); ++p) {
        values[netlist_->dffs()[topology_->chain(c)[p]]] =
            chain[c][p] ? ~SimWord{0} : SimWord{0};
      }
    }
    sim_.evaluate(values);
    if (fault && !dffPinFault) sim_.evaluateFaulty(*fault, *cone, values);
    for (std::size_t c = 0; c < W; ++c) {
      for (std::size_t p = 0; p < topology_->chainLength(c); ++p) {
        const GateId dff = netlist_->dffs()[topology_->chain(c)[p]];
        bool captured = values[netlist_->gate(dff).fanins[0]] & 1u;
        if (dffPinFault && dff == fault->gate) captured = fault->stuckAt;
        chain[c][p] = captured;
      }
    }
  }
  // Final unload of the last capture.
  for (std::size_t j = 0; j < L; ++j) shiftCycle(j, /*clockMisr=*/true, std::nullopt);

  return misr.signature();
}

std::uint64_t BistController::sessionErrorSignature(const PatternSet& patterns,
                                                    const BitVector& selectedPositions,
                                                    const FaultSite& fault) const {
  const std::uint64_t good = runSession(patterns, selectedPositions);
  const std::uint64_t bad = runSession(patterns, selectedPositions, fault);
  return good ^ bad;
}

}  // namespace scandiag
