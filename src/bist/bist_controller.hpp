// Cycle-accurate scan-BIST session controller — hardware-in-the-loop
// validation for the fast analytic engine.
//
// Everything else in scandiag reasons about sessions algebraically (per-cell
// error streams, linear MISR weights). This model instead runs a session the
// way the silicon does, clock by clock:
//
//   for each pattern t:
//     L shift cycles: the PRPG feeds the scan-in ends, chains shift toward
//       scan-out, and the bits leaving the scan-out ends pass the selection
//       AND gate (masked to 0 outside the active group) into the MISR —
//       simultaneously unloading pattern t-1's capture;
//     1 capture cycle: the combinational logic evaluates with the loaded
//       state + this pattern's PI values, and every DFF captures its D.
//   L final shift cycles unload the last capture.
//
// The MISR clocks only on unload cycles, so the cell at position p of pattern
// t enters on clock t*L + p — exactly the cycle map SessionEngine's linear
// model assumes. Tests assert the two agree bit-for-bit on signatures, which
// pins every ordering convention (scan-out direction, chain/line mapping,
// masking) to physical behaviour.
#pragma once

#include <optional>

#include "bist/misr.hpp"
#include "bist/prpg.hpp"
#include "bist/space_compactor.hpp"
#include "bist/scan_topology.hpp"
#include "sim/logic_simulator.hpp"

namespace scandiag {

struct BistControllerConfig {
  std::size_t numPatterns = 16;
  unsigned misrDegree = 16;
  std::uint64_t misrTapMask = 0;  // 0 = primitive polynomial
  /// Optional space compactor between scan-out and MISR (must outlive the
  /// controller). Null = one MISR input per chain.
  const SpaceCompactor* compactor = nullptr;
};

class BistController {
 public:
  BistController(const Netlist& netlist, const ScanTopology& topology,
                 const BistControllerConfig& config);

  /// Runs one full session: only cells at selected positions reach the MISR.
  /// With `fault`, the DUT carries that stuck-at fault. `patterns` supplies
  /// the scan-load and PI data (same object the analytic engine uses).
  /// Returns the final MISR signature.
  std::uint64_t runSession(const PatternSet& patterns, const BitVector& selectedPositions,
                           const std::optional<FaultSite>& fault = std::nullopt) const;

  /// Error signature of a session: faulty XOR fault-free run.
  std::uint64_t sessionErrorSignature(const PatternSet& patterns,
                                      const BitVector& selectedPositions,
                                      const FaultSite& fault) const;

 private:
  const Netlist* netlist_;
  const ScanTopology* topology_;
  BistControllerConfig config_;
  LogicSimulator sim_;
};

}  // namespace scandiag
