// Scan-chain integrity fault diagnosis.
//
// The paper's method assumes the scan chains themselves shift correctly and
// diagnoses *capture* errors. In practice a defect can sit in the shift path
// itself — a scan cell whose output is stuck — and then every bit passing
// through the faulty cell is corrupted, which breaks the capture-diagnosis
// preconditions. This module implements the standard companion flow:
//
//  1. Flush test: shift a 0/1 toggle sequence straight through (no capture).
//     A stuck cell makes the tail of the output constant, revealing the
//     faulty chain and the stuck value — but not the position, because the
//     *load* is corrupted too.
//  2. Hypothesis-based localization (Guo & Venkataraman style): one capture
//     test writes cells downstream of the fault through their D inputs, i.e.
//     from the combinational side, bypassing the broken shift path. For each
//     candidate position p̂ the model predicts the observation under "stuck
//     at p̂" (load corrupts positions <= p̂, unload corrupts positions >= p̂)
//     and keeps the hypotheses consistent with silicon.
//
// Shift-path fault model: cell at `position` of `chain` presents `stuckAt`
// to its shift successor and to the combinational logic.
#pragma once

#include <optional>
#include <vector>

#include "bist/scan_topology.hpp"
#include "sim/fault_simulator.hpp"

namespace scandiag {

struct ChainFault {
  std::size_t chain = 0;
  std::size_t position = 0;
  bool stuckAt = false;

  friend bool operator==(const ChainFault&, const ChainFault&) = default;
};

class ChainIntegrityModel {
 public:
  ChainIntegrityModel(const Netlist& netlist, const ScanTopology& topology);

  const ScanTopology& topology() const { return *topology_; }

  /// Flush test on one chain: shifts 2L toggle bits (0101...) through with
  /// capture disabled and returns the 2L observed output bits (initial chain
  /// contents are 0). With `fault` on this chain the tail goes constant.
  BitVector flushObservation(std::size_t chain,
                             const std::optional<ChainFault>& fault = std::nullopt) const;

  struct FlushVerdict {
    bool pass = true;            // toggle sequence came through intact
    bool stuckValue = false;     // meaningful when !pass
  };
  /// Interprets a flush observation (presence + stuck polarity).
  FlushVerdict judgeFlush(const BitVector& observation) const;

  /// One capture test under an optional chain fault: load pattern t, one
  /// functional capture, unload. Returns the observed bits per chain,
  /// position-indexed (bit p = what the tester sees at unload cycle p).
  std::vector<BitVector> captureObservation(const PatternSet& patterns, std::size_t t,
                                            const std::optional<ChainFault>& fault) const;

  /// Positions on `chain` whose stuck-at-`stuckValue` hypothesis reproduces
  /// `observed` exactly. The true position is always included; with several
  /// capture tests the set typically collapses to one.
  std::vector<std::size_t> locateFault(const PatternSet& patterns, std::size_t t,
                                       const std::vector<BitVector>& observed,
                                       std::size_t chain, bool stuckValue) const;

 private:
  const Netlist* netlist_;
  const ScanTopology* topology_;
  LogicSimulator sim_;
};

}  // namespace scandiag
