#include "bist/chain_diagnosis.hpp"

#include "common/assert.hpp"

namespace scandiag {

ChainIntegrityModel::ChainIntegrityModel(const Netlist& netlist, const ScanTopology& topology)
    : netlist_(&netlist), topology_(&topology), sim_(netlist) {
  SCANDIAG_REQUIRE(topology.numCells() == netlist.dffs().size(),
                   "topology does not match the netlist's scan cells");
}

BitVector ChainIntegrityModel::flushObservation(std::size_t chain,
                                                const std::optional<ChainFault>& fault) const {
  SCANDIAG_REQUIRE(chain < topology_->numChains(), "chain index out of range");
  const std::size_t len = topology_->chainLength(chain);
  const bool faulty = fault && fault->chain == chain;
  if (faulty)
    SCANDIAG_REQUIRE(fault->position < len, "chain fault position out of range");

  std::vector<std::uint8_t> cells(len, 0);
  BitVector out(2 * len);
  for (std::size_t cycle = 0; cycle < 2 * len; ++cycle) {
    // The bit leaving position 0; a fault at position 0 masks even that.
    bool exiting = cells[0];
    if (faulty && fault->position == 0) exiting = fault->stuckAt;
    out.set(cycle, exiting);
    // Shift toward position 0; the faulty cell presents its stuck value.
    for (std::size_t p = 0; p + 1 < len; ++p) {
      bool incoming = cells[p + 1];
      if (faulty && fault->position == p + 1) incoming = fault->stuckAt;
      cells[p] = incoming;
    }
    cells[len - 1] = cycle & 1;  // 0101... toggle flush sequence
  }
  return out;
}

ChainIntegrityModel::FlushVerdict ChainIntegrityModel::judgeFlush(
    const BitVector& observation) const {
  FlushVerdict verdict;
  // An intact chain reproduces the toggle in the second half of the unload;
  // a stuck chain's second half is constant at the stuck value.
  const std::size_t len = observation.size() / 2;
  bool allZero = true, allOne = true;
  for (std::size_t i = len; i < observation.size(); ++i) {
    allZero &= !observation.test(i);
    allOne &= observation.test(i);
  }
  if (allZero || allOne) {
    verdict.pass = false;
    verdict.stuckValue = allOne;
  }
  return verdict;
}

std::vector<BitVector> ChainIntegrityModel::captureObservation(
    const PatternSet& patterns, std::size_t t, const std::optional<ChainFault>& fault) const {
  SCANDIAG_REQUIRE(t < patterns.numPatterns(), "pattern index out of range");
  const std::size_t W = topology_->numChains();
  if (fault) {
    SCANDIAG_REQUIRE(fault->chain < W, "chain fault chain out of range");
    SCANDIAG_REQUIRE(fault->position < topology_->chainLength(fault->chain),
                     "chain fault position out of range");
  }

  // Loaded state: intended bits, except positions <= p on the faulty chain
  // (their bits passed through the stuck cell on the way in).
  std::vector<SimWord> values(netlist_->gateCount(), 0);
  for (GateId pi : netlist_->inputs())
    values[pi] = patterns.stream(pi).test(t) ? ~SimWord{0} : SimWord{0};
  for (std::size_t c = 0; c < W; ++c) {
    for (std::size_t p = 0; p < topology_->chainLength(c); ++p) {
      bool bit = patterns.stream(netlist_->dffs()[topology_->chain(c)[p]]).test(t);
      if (fault && fault->chain == c && p <= fault->position) bit = fault->stuckAt;
      values[netlist_->dffs()[topology_->chain(c)[p]]] = bit ? ~SimWord{0} : SimWord{0};
    }
  }
  sim_.evaluate(values);

  // Unload: captured D values; positions >= p on the faulty chain read back
  // as the stuck value (they cross the faulty cell on the way out).
  std::vector<BitVector> observed;
  observed.reserve(W);
  for (std::size_t c = 0; c < W; ++c) {
    const std::size_t len = topology_->chainLength(c);
    BitVector bits(len);
    for (std::size_t p = 0; p < len; ++p) {
      const GateId dff = netlist_->dffs()[topology_->chain(c)[p]];
      bool bit = values[netlist_->gate(dff).fanins[0]] & 1u;
      if (fault && fault->chain == c && p >= fault->position) bit = fault->stuckAt;
      bits.set(p, bit);
    }
    observed.push_back(std::move(bits));
  }
  return observed;
}

std::vector<std::size_t> ChainIntegrityModel::locateFault(const PatternSet& patterns,
                                                          std::size_t t,
                                                          const std::vector<BitVector>& observed,
                                                          std::size_t chain,
                                                          bool stuckValue) const {
  SCANDIAG_REQUIRE(chain < topology_->numChains(), "chain index out of range");
  SCANDIAG_REQUIRE(observed.size() == topology_->numChains(), "observation arity mismatch");
  std::vector<std::size_t> candidates;
  for (std::size_t p = 0; p < topology_->chainLength(chain); ++p) {
    const ChainFault hypothesis{chain, p, stuckValue};
    if (captureObservation(patterns, t, hypothesis) == observed) candidates.push_back(p);
  }
  return candidates;
}

}  // namespace scandiag
