#include "bist/space_compactor.hpp"

#include <bit>

#include "common/assert.hpp"

namespace scandiag {

SpaceCompactor SpaceCompactor::moduloFanin(std::size_t chains, std::size_t lines) {
  SCANDIAG_REQUIRE(lines >= 1 && lines <= chains, "lines must be in [1, chains]");
  std::vector<std::uint64_t> rows(lines, 0);
  for (std::size_t c = 0; c < chains; ++c) rows[c % lines] |= std::uint64_t{1} << c;
  return SpaceCompactor(std::move(rows), chains);
}

SpaceCompactor::SpaceCompactor(std::vector<std::uint64_t> rowMasks, std::size_t chains)
    : rows_(std::move(rowMasks)), chains_(chains) {
  SCANDIAG_REQUIRE(!rows_.empty(), "compactor needs at least one output line");
  SCANDIAG_REQUIRE(chains >= 1 && chains <= 64, "chain count out of range");
  const std::uint64_t chainSpace =
      chains >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << chains) - 1;
  std::uint64_t observed = 0;
  for (std::uint64_t row : rows_) {
    SCANDIAG_REQUIRE((row & ~chainSpace) == 0, "row mask references missing chain");
    observed |= row;
  }
  SCANDIAG_REQUIRE(observed == chainSpace, "some chain feeds no compactor line");
}

std::uint64_t SpaceCompactor::columnMask(std::size_t chain) const {
  SCANDIAG_REQUIRE(chain < chains_, "chain index out of range");
  std::uint64_t column = 0;
  for (std::size_t m = 0; m < rows_.size(); ++m) {
    if ((rows_[m] >> chain) & 1u) column |= std::uint64_t{1} << m;
  }
  return column;
}

std::uint64_t SpaceCompactor::apply(std::uint64_t chainWord) const {
  std::uint64_t out = 0;
  for (std::size_t m = 0; m < rows_.size(); ++m) {
    out |= static_cast<std::uint64_t>(std::popcount(chainWord & rows_[m]) & 1)
           << m;
  }
  return out;
}

}  // namespace scandiag
