#include "bist/prpg.hpp"

namespace scandiag {

PatternSet generatePatterns(const Netlist& netlist, std::size_t numPatterns,
                            const PrpgConfig& config) {
  PatternSet patterns(netlist, numPatterns);
  Lfsr lfsr(config.lfsr, config.seed);
  for (std::size_t t = 0; t < numPatterns; ++t) {
    for (GateId dff : netlist.dffs()) patterns.stream(dff).set(t, lfsr.step());
    for (GateId pi : netlist.inputs()) patterns.stream(pi).set(t, lfsr.step());
  }
  return patterns;
}

}  // namespace scandiag
