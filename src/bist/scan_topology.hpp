// Scan chain topology: which scan cell sits where.
//
// A topology maps dense cell ids [0, numCells) — for a single circuit these
// are DFF ordinals, for an SOC they are global cell ids across all cores —
// onto W scan chains with per-chain positions. Position 0 is the scan-out
// end: the cell at position p of any chain leaves the chain at unload cycle p.
//
// The scan-cell selection hardware (paper Fig. 1) has ONE compare logic fed
// by the shift clock, so selection is by *shift position*: when position p is
// selected, the cells at position p of every chain enter the compactor
// together. Partitions therefore live on [0, maxChainLength) (the "selection
// axis"), and expandPositions() translates a set of positions back into the
// set of cells diagnosed together.
#pragma once

#include <cstddef>
#include <vector>

#include "common/bitvector.hpp"

namespace scandiag {

class ScanTopology {
 public:
  struct CellLoc {
    std::size_t chain;
    std::size_t position;
  };

  /// One chain containing cells 0..numCells-1 in order.
  static ScanTopology singleChain(std::size_t numCells);

  /// numChains chains of (near-)equal length; cells split into contiguous
  /// blocks so structural locality maps to positional locality per chain.
  static ScanTopology blockChains(std::size_t numCells, std::size_t numChains);

  /// Arbitrary stitching: chains[c] lists cell ids from scan-out to scan-in.
  /// Every cell id in [0, numCells) must appear exactly once, where numCells
  /// is the total count across chains.
  static ScanTopology fromChains(std::vector<std::vector<std::size_t>> chains);

  std::size_t numCells() const { return loc_.size(); }
  std::size_t numChains() const { return chains_.size(); }
  std::size_t chainLength(std::size_t chain) const { return chains_[chain].size(); }
  /// Length of the selection axis (= unload cycles per pattern).
  std::size_t maxChainLength() const { return maxLen_; }

  CellLoc location(std::size_t cell) const;
  const std::vector<std::size_t>& chain(std::size_t c) const { return chains_[c]; }

  /// Cells sitting at the given selection positions (positions.size() ==
  /// maxChainLength()); result sized numCells().
  BitVector expandPositions(const BitVector& positions) const;

  /// Selection positions occupied by at least one of the given cells
  /// (cells.size() == numCells()); result sized maxChainLength().
  BitVector collapseCells(const BitVector& cells) const;

 private:
  std::vector<std::vector<std::size_t>> chains_;
  std::vector<CellLoc> loc_;
  std::size_t maxLen_ = 0;
};

}  // namespace scandiag
