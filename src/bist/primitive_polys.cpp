#include "bist/primitive_polys.hpp"

#include <array>
#include <stdexcept>

namespace scandiag {

namespace {
// One primitive polynomial per degree (XAPP 052 table).
const std::array<std::vector<unsigned>, 33>& tapTable() {
  static const std::array<std::vector<unsigned>, 33> kTaps = {{
      {}, {}, {},                 // degrees 0..2 unsupported
      {3, 2},
      {4, 3},
      {5, 3},
      {6, 5},
      {7, 6},
      {8, 6, 5, 4},
      {9, 5},
      {10, 7},
      {11, 9},
      {12, 6, 4, 1},
      {13, 4, 3, 1},
      {14, 5, 3, 1},
      {15, 14},
      {16, 15, 13, 4},
      {17, 14},
      {18, 11},
      {19, 6, 2, 1},
      {20, 17},
      {21, 19},
      {22, 21},
      {23, 18},
      {24, 23, 22, 17},
      {25, 22},
      {26, 6, 2, 1},
      {27, 5, 2, 1},
      {28, 25},
      {29, 27},
      {30, 6, 4, 1},
      {31, 28},
      {32, 22, 2, 1},
  }};
  return kTaps;
}
}  // namespace

const std::vector<unsigned>& primitiveTaps(unsigned degree) {
  if (degree < 3 || degree > 32)
    throw std::invalid_argument("primitive polynomial table covers degrees 3..32");
  return tapTable()[degree];
}

std::uint64_t primitiveTapMask(unsigned degree) {
  std::uint64_t mask = 0;
  for (unsigned t : primitiveTaps(degree)) mask |= std::uint64_t{1} << (t - 1);
  return mask;
}

}  // namespace scandiag
