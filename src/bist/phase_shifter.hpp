// STUMPS-style parallel PRPG: one LFSR + an XOR phase shifter feeding W scan
// chains, one bit per chain per shift clock.
//
// Feeding W chains directly from W taps of one LFSR gives each chain a
// shifted copy of the same m-sequence — adjacent chains would load nearly
// identical (structurally correlated) data. The classic fix (Bardell's phase
// shifter) drives each channel with an XOR of several LFSR stages, i.e. a
// distinct linear combination, which places each channel's sequence at a
// large, distinct phase offset of the m-sequence. generateStumpsPatterns()
// is the drop-in alternative to the serialized PRPG in prpg.hpp and fills
// the same PatternSet; the BistController consumes either.
#pragma once

#include <vector>

#include "bist/lfsr.hpp"
#include "bist/scan_topology.hpp"
#include "sim/fault_simulator.hpp"

namespace scandiag {

class PhaseShifter {
 public:
  /// One XOR tap set per channel. Deterministically derived from (degree,
  /// channels, seed): each channel XORs `tapsPerChannel` distinct stages,
  /// chosen so no two channels share a tap set.
  PhaseShifter(unsigned lfsrDegree, std::size_t channels, std::uint64_t seed = 0x5F17,
               unsigned tapsPerChannel = 3);

  std::size_t channels() const { return masks_.size(); }
  std::uint64_t channelMask(std::size_t c) const { return masks_.at(c); }

  /// Output bit of channel c for the given LFSR state (parity of the taps).
  bool channelBit(std::size_t c, std::uint64_t lfsrState) const;

 private:
  std::vector<std::uint64_t> masks_;
};

struct StumpsConfig {
  LfsrConfig lfsr{/*degree=*/24, /*tapMask=*/0};
  std::uint64_t seed = 0x5eed;
  unsigned tapsPerChannel = 3;
};

/// Fills a PatternSet the way the parallel hardware does: per pattern, L
/// shift clocks load all chains simultaneously (channel c feeds chain c; the
/// bit at clock j lands at position j), then the PI channels are sampled once
/// per pattern from additional phase-shifter channels.
PatternSet generateStumpsPatterns(const Netlist& netlist, const ScanTopology& topology,
                                  std::size_t numPatterns, const StumpsConfig& config = {});

}  // namespace scandiag
