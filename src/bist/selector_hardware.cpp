#include "bist/selector_hardware.hpp"

#include "bist/interval_seed_search.hpp"
#include "common/assert.hpp"

namespace scandiag {

SelectorHardware::SelectorHardware(const LfsrConfig& config, std::size_t chainLength)
    : config_(config), chainLength_(chainLength) {
  SCANDIAG_REQUIRE(chainLength >= 1, "empty scan chain");
}

void SelectorHardware::loadIvr(std::uint64_t seed) {
  Lfsr check(config_, seed);  // validates nonzero / in-range
  ivr_ = check.state();
  lfsrState_ = ivr_;
}

BitVector SelectorHardware::unloadRandomSelection(unsigned r, std::uint64_t group) {
  SCANDIAG_REQUIRE(group < (std::uint64_t{1} << r), "group number exceeds label width");
  Lfsr lfsr(config_, ivr_);  // LFSR reloaded from IVR for every unload
  BitVector mask(chainLength_);
  for (std::size_t pos = 0; pos < chainLength_; ++pos) {
    if (lfsr.lowBits(r) == group) mask.set(pos);
    lfsr.step();
  }
  lfsrState_ = lfsr.state();
  return mask;
}

void SelectorHardware::advancePartition() { ivr_ = lfsrState_; }

BitVector SelectorHardware::unloadInterval(unsigned rlen, std::uint64_t group) {
  Lfsr lfsr(config_, ivr_);
  BitVector mask(chainLength_);
  // Test Counter 2 starts at the group number and decrements at each interval
  // boundary; the compare logic selects while it reads 0. Shift Counter 2
  // holds the cells remaining in the current interval.
  std::int64_t tc2 = static_cast<std::int64_t>(group);
  std::size_t sc2 = intervalLengthFromBits(lfsr.lowBits(rlen), rlen);
  for (std::size_t pos = 0; pos < chainLength_; ++pos) {
    if (tc2 == 0) mask.set(pos);
    if (--sc2 == 0) {
      --tc2;  // end of interval; carry gates rlen LFSR shifts (fresh window)
      for (unsigned s = 0; s < rlen; ++s) lfsr.step();
      sc2 = intervalLengthFromBits(lfsr.lowBits(rlen), rlen);
    }
  }
  lfsrState_ = lfsr.state();
  return mask;
}

}  // namespace scandiag
