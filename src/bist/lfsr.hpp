// Fibonacci linear-feedback shift register, the randomness source of every
// on-chip structure in the paper's Figure 1: the PRPG, the per-cell group
// labels of random-selection partitioning, and the interval lengths of
// interval-based partitioning.
//
// Convention: the register is `degree` stages, stage 0 is the output end.
// One step shifts right (stage i+1 -> stage i); the feedback bit — the XOR of
// the stages in the tap mask — enters at stage degree-1; the bit that fell
// out of stage 0 is the output. With a primitive tap mask the state sequence
// has period 2^degree - 1 over the nonzero states.
#pragma once

#include <cstdint>

#include "bist/primitive_polys.hpp"

namespace scandiag {

struct LfsrConfig {
  unsigned degree = 16;
  std::uint64_t tapMask = 0;  // 0 => use primitiveTapMask(degree)

  std::uint64_t effectiveTapMask() const {
    return tapMask ? tapMask : primitiveTapMask(degree);
  }
};

class Lfsr {
 public:
  /// seed must be nonzero in the low `degree` bits (the all-zero state is the
  /// stuck state of any LFSR).
  Lfsr(const LfsrConfig& config, std::uint64_t seed);

  unsigned degree() const { return degree_; }
  std::uint64_t tapMask() const { return tapMask_; }
  std::uint64_t state() const { return state_; }
  void setState(std::uint64_t state);

  /// One shift; returns the output bit (old stage 0).
  bool step();

  /// n output bits, LSB-first packed (n <= 64).
  std::uint64_t stepBits(unsigned n);

  /// The low r stage values as an r-bit label, without stepping. This models
  /// "the output of any r stages of the LFSR ... regarded as an r-bit binary
  /// label" (paper §2.1).
  std::uint64_t lowBits(unsigned r) const;

 private:
  unsigned degree_;
  std::uint64_t tapMask_;
  std::uint64_t stateMask_;
  std::uint64_t state_;
};

/// Galois (internal-XOR) form of the same polynomial: one shift plus one
/// conditional XOR per step instead of a parity computation — the form
/// software PRPGs use when raw bit throughput matters. For the same
/// polynomial it emits the same maximal-length output sequence as the
/// Fibonacci form (up to a state-mapping / phase shift), which the tests
/// verify; the two are interchangeable as bit sources but NOT as state
/// machines (lowBits labels differ), so the selector hardware models stay on
/// the Fibonacci form the paper describes.
class GaloisLfsr {
 public:
  GaloisLfsr(const LfsrConfig& config, std::uint64_t seed);

  unsigned degree() const { return degree_; }
  std::uint64_t state() const { return state_; }
  void setState(std::uint64_t state);

  /// One shift; returns the output bit (top stage before the shift).
  bool step();

  /// n output bits, LSB-first packed (n <= 64).
  std::uint64_t stepBits(unsigned n);

 private:
  unsigned degree_;
  std::uint64_t tapMask_;
  std::uint64_t feedbackMask_ = 0;
  std::uint64_t stateMask_;
  std::uint64_t state_;
};

}  // namespace scandiag
