// Primitive polynomials over GF(2) for maximal-length LFSRs, degrees 3..32.
//
// Taps follow the common LFSR tables (e.g. Xilinx XAPP 052): the polynomial
// x^16 + x^15 + x^13 + x^4 + 1 is listed as taps {16, 15, 13, 4}. A Fibonacci
// LFSR with these feedback taps cycles through all 2^n - 1 nonzero states,
// which the test suite verifies exhaustively for the smaller degrees.
#pragma once

#include <cstdint>
#include <vector>

namespace scandiag {

/// Feedback taps (polynomial exponents, descending, first == degree).
/// Throws std::invalid_argument outside [3, 32].
const std::vector<unsigned>& primitiveTaps(unsigned degree);

/// Same taps as a stage bitmask: bit (t-1) set for each tap exponent t.
/// Stage i of the LFSR holds the coefficient of x^(i+1)'s register slot; the
/// Lfsr/Misr classes consume this mask directly.
std::uint64_t primitiveTapMask(unsigned degree);

}  // namespace scandiag
