// Space compaction ahead of the MISR.
//
// Wide designs do not give every scan chain its own MISR input: an XOR
// network first folds W scan-out lines into M < W compactor outputs. The
// compactor is linear over GF(2), so the whole session-signature algebra
// (superposition, per-cell error signatures) survives — but cells of chains
// that share a compactor line at the same shift position become mutually
// indistinguishable, and an even number of simultaneous errors on one line
// cancels outright. bench_ablation_compactor measures what that costs the
// diagnosis. Both the analytic session engine and the cycle-accurate
// controller accept a compactor, and the tests hold them equal.
#pragma once

#include <cstdint>
#include <vector>

namespace scandiag {

class SpaceCompactor {
 public:
  /// Modulo-fanin network: output line m = XOR of chains {c : c mod lines == m}.
  static SpaceCompactor moduloFanin(std::size_t chains, std::size_t lines);

  /// Arbitrary network: rowMasks[m] = bitmask of chains feeding line m.
  /// Every chain must feed at least one line (nothing silently unobserved).
  explicit SpaceCompactor(std::vector<std::uint64_t> rowMasks, std::size_t chains);

  std::size_t inputChains() const { return chains_; }
  std::size_t outputLines() const { return rows_.size(); }

  /// Chains feeding output line m.
  std::uint64_t lineMask(std::size_t m) const { return rows_.at(m); }
  /// Output lines fed by `chain` (the cell-signature fanout of that chain).
  std::uint64_t columnMask(std::size_t chain) const;

  /// One clock's worth of scan-out bits (bit c = chain c) -> compacted word.
  std::uint64_t apply(std::uint64_t chainWord) const;

 private:
  std::vector<std::uint64_t> rows_;
  std::size_t chains_;
};

}  // namespace scandiag
