// Pseudorandom pattern generation (the PRPG of a STUMPS-style scan-BIST).
//
// One LFSR supplies, per test pattern, a scan-load bit for every scan cell
// and a stimulus bit for every primary input. The mapping from LFSR output
// stream to (cell, pattern) is fixed and deterministic, so every BIST session
// of a diagnosis run applies the *same* patterns — the precondition for
// comparing per-group signatures across sessions and partitions.
#pragma once

#include <cstdint>

#include "bist/lfsr.hpp"
#include "sim/fault_simulator.hpp"

namespace scandiag {

struct PrpgConfig {
  LfsrConfig lfsr{/*degree=*/24, /*tapMask=*/0};
  std::uint64_t seed = 0x5eed;
};

/// Fills a PatternSet for `netlist`: for each pattern, first the scan-load
/// bits of all DFFs (netlist DFF order), then the primary-input bits.
PatternSet generatePatterns(const Netlist& netlist, std::size_t numPatterns,
                            const PrpgConfig& config = {});

}  // namespace scandiag
