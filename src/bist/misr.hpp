// Multiple-input signature register (MISR) and its GF(2)-linear model.
//
// The MISR compacts the scan-out stream(s) into a short signature. Its next-
// state function is linear over GF(2):
//     s' = A·s ⊕ x          A = shift ⊕ feedback, x = input word
// so after K clocks from the zero state the signature is
//     sig = Σ_k A^(K-1-k) · x_k                                    (XOR sum)
// Two consequences the diagnosis engine exploits (the superposition principle
// of Bayraktaroglu & Orailoglu):
//   * sig(good ⊕ error) ⊕ sig(good) = sig(error): a session's *error
//     signature* depends only on the error bits, not on the good data;
//   * the error signature of a set of failing cells is the XOR of the cells'
//     individual error signatures.
// MisrLinearModel precomputes the impulse weights A^(K-1-k)·e_c so a cell's
// error signature costs one XOR per error bit.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bitvector.hpp"

namespace scandiag {

class Misr {
 public:
  /// degree = register length (signature width); tapMask as in Lfsr;
  /// inputWidth = number of parallel scan-out lines (<= degree).
  Misr(unsigned degree, std::uint64_t tapMask, unsigned inputWidth);

  unsigned degree() const { return degree_; }
  unsigned inputWidth() const { return inputWidth_; }

  void reset(std::uint64_t state = 0);
  /// One clock with `inputs` (low inputWidth bits XOR into stages 0..w-1).
  void clock(std::uint64_t inputs);
  std::uint64_t signature() const { return state_; }

  /// The linear map A applied to an arbitrary state vector.
  std::uint64_t transition(std::uint64_t state) const;

 private:
  unsigned degree_;
  unsigned inputWidth_;
  std::uint64_t tapMask_;
  std::uint64_t stateMask_;
  std::uint64_t state_ = 0;
};

/// Precomputed impulse responses of a Misr over a fixed session length.
/// weight(line, cycle) is the final-signature contribution of a single 1 bit
/// entering input `line` at clock `cycle` (0-based, K clocks total).
class MisrLinearModel {
 public:
  MisrLinearModel(unsigned degree, std::uint64_t tapMask, unsigned inputWidth,
                  std::size_t totalCycles);

  std::size_t totalCycles() const { return totalCycles_; }
  unsigned degree() const { return degree_; }

  std::uint64_t weight(unsigned line, std::size_t cycle) const;

  /// Contiguous weight row of one input line (totalCycles() entries, indexed
  /// by cycle). The batched scorer's per-cell contribution tables gather from
  /// these rows directly, skipping the per-lookup range checks of weight().
  const std::uint64_t* lineWeights(unsigned line) const;

  /// Error signature of one cell: XOR of weight(line, cycleOf(pattern)) over
  /// the set bits of `errorStream`. `cycleOfPattern(t)` must give the clock at
  /// which the cell's bit of pattern t enters the MISR.
  template <typename CycleOf>
  std::uint64_t cellSignature(unsigned line, const BitVector& errorStream,
                              CycleOf&& cycleOfPattern) const {
    std::uint64_t sig = 0;
    for (std::size_t t = errorStream.findFirst(); t != BitVector::npos;
         t = errorStream.findNext(t)) {
      sig ^= weight(line, cycleOfPattern(t));
    }
    return sig;
  }

 private:
  unsigned degree_;
  unsigned inputWidth_;
  std::size_t totalCycles_;
  /// weights_[line * totalCycles + cycle]
  std::vector<std::uint64_t> weights_;
};

/// Theoretical aliasing probability of a degree-bit MISR: the chance that a
/// random nonzero error stream compacts to signature 0 is 1/(2^degree - 1)
/// (2^-degree for degree >= 64). The noise injector's forced-aliasing rate
/// and bench_noise report against this reference.
double misrAliasingProbability(unsigned degree);

}  // namespace scandiag
