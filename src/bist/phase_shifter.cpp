#include "bist/phase_shifter.hpp"

#include <bit>
#include <set>

#include "common/assert.hpp"
#include "common/rng.hpp"

namespace scandiag {

PhaseShifter::PhaseShifter(unsigned lfsrDegree, std::size_t channels, std::uint64_t seed,
                           unsigned tapsPerChannel) {
  SCANDIAG_REQUIRE(lfsrDegree >= 2 && lfsrDegree <= 63, "LFSR degree out of range");
  SCANDIAG_REQUIRE(channels >= 1, "need at least one channel");
  SCANDIAG_REQUIRE(tapsPerChannel >= 1 && tapsPerChannel <= lfsrDegree,
                   "taps per channel out of range");
  // With t taps from d stages there are C(d, t) distinct masks; require
  // comfortably more than the channel count so the draw below terminates.
  Xoroshiro128 rng(seed);
  std::set<std::uint64_t> used;
  masks_.reserve(channels);
  for (std::size_t c = 0; c < channels; ++c) {
    std::uint64_t mask = 0;
    std::size_t guard = 0;
    do {
      mask = 0;
      while (static_cast<unsigned>(std::popcount(mask)) < tapsPerChannel)
        mask |= std::uint64_t{1} << rng.nextBelow(lfsrDegree);
      SCANDIAG_REQUIRE(++guard < 10000,
                       "cannot draw enough distinct phase-shifter tap sets");
    } while (!used.insert(mask).second);
    masks_.push_back(mask);
  }
}

bool PhaseShifter::channelBit(std::size_t c, std::uint64_t lfsrState) const {
  SCANDIAG_REQUIRE(c < masks_.size(), "channel index out of range");
  return std::popcount(lfsrState & masks_[c]) & 1;
}

PatternSet generateStumpsPatterns(const Netlist& netlist, const ScanTopology& topology,
                                  std::size_t numPatterns, const StumpsConfig& config) {
  SCANDIAG_REQUIRE(topology.numCells() == netlist.dffs().size(),
                   "topology does not match the netlist's scan cells");
  const std::size_t W = topology.numChains();
  const std::size_t numPis = netlist.inputs().size();
  const PhaseShifter shifter(config.lfsr.degree, W + numPis, config.seed,
                             config.tapsPerChannel);
  Lfsr lfsr(config.lfsr, config.seed);

  PatternSet patterns(netlist, numPatterns);
  const std::size_t L = topology.maxChainLength();
  for (std::size_t t = 0; t < numPatterns; ++t) {
    // L parallel shift clocks: channel c feeds chain c; the bit produced at
    // clock j ends up at position j after the load completes.
    for (std::size_t j = 0; j < L; ++j) {
      for (std::size_t c = 0; c < W; ++c) {
        if (j >= topology.chainLength(c)) continue;
        const GateId dff = netlist.dffs()[topology.chain(c)[j]];
        patterns.stream(dff).set(t, shifter.channelBit(c, lfsr.state()));
      }
      lfsr.step();
    }
    // PI channels sampled once per pattern (held during the capture cycle).
    for (std::size_t k = 0; k < numPis; ++k) {
      patterns.stream(netlist.inputs()[k]).set(t, shifter.channelBit(W + k, lfsr.state()));
    }
    lfsr.step();
  }
  return patterns;
}

}  // namespace scandiag
