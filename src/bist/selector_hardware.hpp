// Cycle-accurate model of the scan-cell selection hardware (paper Fig. 1).
//
// Registers: IVR (initial value register), the selection LFSR, Test Counter 1
// (current group number), and — for two-step partitioning, the shaded blocks —
// Shift Counter 2 (remaining cells in the current interval) and Test Counter 2
// (intervals until the selected one). The compare logic gates the scan-out
// stream into the compactor; everything else is masked to constant 0.
//
// This model exists to validate the algorithmic partition generators in
// src/diagnosis: tests assert that the masks produced here, shift by shift,
// equal the group masks those generators emit. It also documents the exact
// register protocol (when the LFSR reloads from the IVR, when the IVR is
// updated) that the diagnosis layer's seed chaining mirrors.
#pragma once

#include <cstdint>

#include "bist/lfsr.hpp"
#include "common/bitvector.hpp"

namespace scandiag {

class SelectorHardware {
 public:
  SelectorHardware(const LfsrConfig& config, std::size_t chainLength);

  /// Loads the IVR (start of a diagnosis run or of a new interval partition).
  void loadIvr(std::uint64_t seed);
  std::uint64_t ivr() const { return ivr_; }

  /// Random-selection session: unloads one pattern with Test Counter 1 ==
  /// group; returns the per-position select mask. The LFSR is (re)loaded from
  /// the IVR at the start of the unload, as in [5]. r = label width (log2 of
  /// the group count).
  BitVector unloadRandomSelection(unsigned r, std::uint64_t group);

  /// "At the end of each partition, the IVR is updated with the current value
  /// of the LFSR to create a different partition."
  void advancePartition();

  /// Interval session: unloads one pattern with Test Counter 1 == group using
  /// Shift Counter 2 / Test Counter 2; returns the per-position select mask.
  /// rlen = interval-length field width.
  BitVector unloadInterval(unsigned rlen, std::uint64_t group);

 private:
  LfsrConfig config_;
  std::size_t chainLength_;
  std::uint64_t ivr_ = 1;
  std::uint64_t lfsrState_ = 1;  // running state, snapshotted into the IVR
};

}  // namespace scandiag
