#include "bist/misr.hpp"

#include <bit>
#include <cmath>

#include "common/assert.hpp"

namespace scandiag {

Misr::Misr(unsigned degree, std::uint64_t tapMask, unsigned inputWidth)
    : degree_(degree),
      inputWidth_(inputWidth),
      tapMask_(tapMask),
      stateMask_(degree >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << degree) - 1) {
  SCANDIAG_REQUIRE(degree_ >= 2 && degree_ <= 63, "MISR degree must be in [2, 63]");
  SCANDIAG_REQUIRE(inputWidth_ >= 1 && inputWidth_ <= degree_,
                   "MISR input width must be in [1, degree]");
  SCANDIAG_REQUIRE((tapMask_ & ~stateMask_) == 0, "tap mask exceeds degree");
  SCANDIAG_REQUIRE(tapMask_ >> (degree_ - 1), "tap mask must include the top stage");
}

void Misr::reset(std::uint64_t state) { state_ = state & stateMask_; }

std::uint64_t Misr::transition(std::uint64_t state) const {
  // Same left-shift Fibonacci form as Lfsr::step — linear over GF(2).
  const std::uint64_t feedback =
      static_cast<std::uint64_t>(std::popcount(state & tapMask_) & 1);
  return ((state << 1) | feedback) & stateMask_;
}

void Misr::clock(std::uint64_t inputs) {
  const std::uint64_t inMask = (std::uint64_t{1} << inputWidth_) - 1;
  state_ = transition(state_) ^ (inputs & inMask);
}

MisrLinearModel::MisrLinearModel(unsigned degree, std::uint64_t tapMask, unsigned inputWidth,
                                 std::size_t totalCycles)
    : degree_(degree), inputWidth_(inputWidth), totalCycles_(totalCycles) {
  SCANDIAG_REQUIRE(totalCycles > 0, "session must have at least one cycle");
  Misr reference(degree, tapMask, inputWidth);
  weights_.assign(static_cast<std::size_t>(inputWidth) * totalCycles, 0);
  // v = A^j · e_line; cycle k = K-1-j receives weight v.
  for (unsigned line = 0; line < inputWidth; ++line) {
    std::uint64_t v = std::uint64_t{1} << line;
    for (std::size_t j = 0; j < totalCycles; ++j) {
      weights_[static_cast<std::size_t>(line) * totalCycles + (totalCycles - 1 - j)] = v;
      v = reference.transition(v);
    }
  }
}

std::uint64_t MisrLinearModel::weight(unsigned line, std::size_t cycle) const {
  SCANDIAG_REQUIRE(line < inputWidth_, "MISR line out of range");
  SCANDIAG_REQUIRE(cycle < totalCycles_, "MISR cycle out of range");
  return weights_[static_cast<std::size_t>(line) * totalCycles_ + cycle];
}

const std::uint64_t* MisrLinearModel::lineWeights(unsigned line) const {
  SCANDIAG_REQUIRE(line < inputWidth_, "MISR line out of range");
  return weights_.data() + static_cast<std::size_t>(line) * totalCycles_;
}

double misrAliasingProbability(unsigned degree) {
  SCANDIAG_REQUIRE(degree >= 1, "MISR degree must be at least 1");
  if (degree >= 64) return std::ldexp(1.0, -static_cast<int>(degree));
  return 1.0 / (std::ldexp(1.0, static_cast<int>(degree)) - 1.0);
}

}  // namespace scandiag
