// Adaptive binary-search diagnosis — the baseline of Ghosh-Dastidar & Touba
// [6], contrasted in paper §2.2.
//
// Instead of a precommitted partition schedule, the tester runs a session
// observing one half of a known-failing interval of the selection axis; if
// the half fails it is split further, and when a half passes its sibling is
// known to fail without a session (the parent failed). Recursion bottoms out
// at single positions, so the result is the *exact* set of failing positions
// — perfect positional resolution — at a data-dependent session cost, and
// with the operational drawback the paper highlights: "test application must
// be frequently interrupted to execute a binary search procedure", i.e. the
// schedule cannot be precomputed and burned into the BIST controller.
#pragma once

#include <functional>

#include "bist/scan_topology.hpp"
#include "diagnosis/candidate_analyzer.hpp"
#include "diagnosis/cost_model.hpp"
#include "diagnosis/recovery.hpp"
#include "sim/fault_simulator.hpp"

namespace scandiag {

struct BinarySearchResult {
  CandidateSet candidates;
  /// Sessions actually executed (inferred verdicts are free).
  std::size_t sessions = 0;
  DiagnosisCost cost;
  /// Resilient path only: impossible verdict patterns seen (parent failed,
  /// both halves passed), re-query sessions spent, and whether every
  /// inconsistency was repaired within the budget.
  std::size_t inconsistencies = 0;
  std::size_t retrySessions = 0;
  bool resolved = true;
};

/// Session verdict for the interval [lo, hi) of the selection axis.
/// `attempt` is 0 for the first query and increments per retry of the same
/// interval, so noisy oracles can draw independent reproducible streams.
using IntervalOracle =
    std::function<bool(std::size_t lo, std::size_t hi, std::size_t attempt)>;

class BinarySearchDiagnoser {
 public:
  BinarySearchDiagnoser(const ScanTopology& topology, std::size_t numPatterns);

  /// Exact-verdict adaptive diagnosis of one fault's responses.
  BinarySearchResult diagnose(const FaultResponse& response) const;

  /// Adaptive diagnosis against an untrusted oracle (noisy tester). Unlike
  /// diagnose(), a passing left half no longer implies the right half fails
  /// — both halves are queried — and the impossible pattern "parent failed,
  /// both halves pass" triggers majority-voted re-queries under `policy`;
  /// when the budget runs out the whole parent interval is kept as
  /// candidates (superset) instead of silently losing the fault.
  BinarySearchResult diagnoseWithOracle(const IntervalOracle& oracle,
                                        const RetryPolicy& policy) const;

  /// Mean sessions over a set of responses (for the baselines bench).
  double meanSessions(const std::vector<FaultResponse>& responses) const;

 private:
  const ScanTopology* topology_;
  std::size_t numPatterns_;
};

}  // namespace scandiag
