// Adaptive binary-search diagnosis — the baseline of Ghosh-Dastidar & Touba
// [6], contrasted in paper §2.2.
//
// Instead of a precommitted partition schedule, the tester runs a session
// observing one half of a known-failing interval of the selection axis; if
// the half fails it is split further, and when a half passes its sibling is
// known to fail without a session (the parent failed). Recursion bottoms out
// at single positions, so the result is the *exact* set of failing positions
// — perfect positional resolution — at a data-dependent session cost, and
// with the operational drawback the paper highlights: "test application must
// be frequently interrupted to execute a binary search procedure", i.e. the
// schedule cannot be precomputed and burned into the BIST controller.
#pragma once

#include "bist/scan_topology.hpp"
#include "diagnosis/candidate_analyzer.hpp"
#include "diagnosis/cost_model.hpp"
#include "sim/fault_simulator.hpp"

namespace scandiag {

struct BinarySearchResult {
  CandidateSet candidates;
  /// Sessions actually executed (inferred verdicts are free).
  std::size_t sessions = 0;
  DiagnosisCost cost;
};

class BinarySearchDiagnoser {
 public:
  BinarySearchDiagnoser(const ScanTopology& topology, std::size_t numPatterns);

  /// Exact-verdict adaptive diagnosis of one fault's responses.
  BinarySearchResult diagnose(const FaultResponse& response) const;

  /// Mean sessions over a set of responses (for the baselines bench).
  double meanSessions(const std::vector<FaultResponse>& responses) const;

 private:
  const ScanTopology* topology_;
  std::size_t numPatterns_;
};

}  // namespace scandiag
