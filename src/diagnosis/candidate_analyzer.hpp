// Candidate derivation by inclusion–exclusion over group verdicts.
//
// A passing group exonerates every cell it selects; a failing group merely
// keeps its cells suspect. After all sessions the candidate set is therefore
//     ∩ over partitions of ( ∪ failing groups of that partition ),
// computed on the selection axis and then expanded to cells. In exact mode
// this is sound: every truly failing cell lies in a failing group of every
// partition, so it always survives (tested as the soundness invariant).
//
// analyzeChecked() adds the noisy-tester invariants. For a real (permanent)
// fault and a correct tester, three things can never happen, because each
// partition's groups cover every position:
//   * a partition with zero failing groups while another partition fails
//     (the fault fired somewhere, so every partition must see it);
//   * a partition whose failing union is disjoint from the intersection of
//     the preceding partitions (the true cells lie in that intersection);
//   * a failing group disjoint from the final candidate set (every failing
//     group contains at least one true failing cell).
// Each violation is reported as an InconsistencyReport — which partition,
// which session (group) is suspect — instead of silently emptying the
// candidate set; partitions that would empty it are excluded so the returned
// candidates stay a meaningful superset for the recovery layer to refine.
#pragma once

#include <string>
#include <vector>

#include "bist/scan_topology.hpp"
#include "diagnosis/partition.hpp"
#include "diagnosis/session_engine.hpp"

namespace scandiag {

struct CandidateSet {
  /// Suspect positions on the selection axis (size = maxChainLength()).
  BitVector positions;
  /// Suspect cells (size = numCells()); expandPositions(positions).
  BitVector cells;

  std::size_t cellCount() const { return cells.count(); }
};

enum class InconsistencyKind {
  /// Every group of this partition passed while another partition failed:
  /// some fail verdict of this partition was lost (flip, aliasing,
  /// intermittency, or X-masking of all its failing cells).
  AllGroupsPassing,
  /// This partition's failing union shares no position with the running
  /// intersection of the preceding partitions: either one of its fail
  /// verdicts was lost or an earlier pass verdict was spurious.
  DisjointFailingUnion,
  /// A failing group shares no position with the final candidate set: its
  /// fail verdict is almost certainly a spurious pass→fail flip.
  PhantomFailingGroup,
};

const char* inconsistencyKindName(InconsistencyKind kind);

struct InconsistencyReport {
  InconsistencyKind kind;
  std::size_t partition = 0;
  /// Suspect session within the partition (BitVector::npos when unknown).
  std::size_t group = BitVector::npos;

  /// "partition 3 session 7: phantom-failing-group ..." for logs/stderr.
  std::string describe() const;
};

struct CheckedAnalysis {
  CandidateSet candidates;
  std::vector<InconsistencyReport> inconsistencies;
  /// Partitions whose verdicts entered the intersection (ascending).
  std::vector<std::size_t> usedPartitions;

  bool consistent() const { return inconsistencies.empty(); }
};

/// Result of the checked union mode (analyzeUnion): failing-group patterns
/// interpreted as unions of per-fault cones instead of one cone.
struct UnionAnalysis {
  /// Union of the per-cluster intersections (see analyzeUnion).
  CandidateSet candidates;
  /// Per-cluster intersections on the selection axis, in formation order.
  std::vector<BitVector> clusterPositions;
  /// Union over partitions of the failing unions — contains every position
  /// that ever manifested an error, whatever the defect count. This is the
  /// degrade-never-lie floor: candidates ⊆ supersetFloor always holds, and
  /// for observed (manifested) failing cells supersetFloor is a guaranteed
  /// superset with no modeling assumption at all.
  CandidateSet supersetFloor;
  std::size_t clusters = 0;
  /// clusters <= the maxFaults budget passed in. When false the clustering
  /// explanation needs more simultaneous faults than the caller is willing
  /// to resolve — degrade to supersetFloor.
  bool withinBudget = true;
};

class CandidateAnalyzer {
 public:
  explicit CandidateAnalyzer(const ScanTopology& topology) : topology_(&topology) {}

  CandidateSet analyze(const std::vector<Partition>& partitions,
                       const GroupVerdicts& verdicts) const;

  /// Inclusion–exclusion with the impossibility checks above. On clean
  /// verdicts this returns exactly analyze()'s candidates and no reports.
  CheckedAnalysis analyzeChecked(const std::vector<Partition>& partitions,
                                 const GroupVerdicts& verdicts) const;

  /// Checked union mode: each partition's failing union is attributed to a
  /// cluster of co-observed faults by greedy intersection — a partition
  /// joins the first cluster its union overlaps (shrinking that cluster's
  /// intersection) and otherwise opens a new cluster. Candidates are the
  /// union of the cluster intersections. For a single permanent fault this
  /// collapses to exactly analyze()'s intersection (one cluster); for a
  /// k-fault union whose partitions each saw every fault it likewise
  /// collapses to the plain intersection, while partitions that saw only a
  /// subset of the faults (intermittency, aliasing) form their own clusters
  /// instead of wrongly exonerating the other faults' cells. Fully passing
  /// partitions contribute nothing (with an intermittent defect a pass does
  /// not exonerate).
  UnionAnalysis analyzeUnion(const std::vector<Partition>& partitions,
                             const GroupVerdicts& verdicts, std::size_t maxFaults) const;

 private:
  const ScanTopology* topology_;
};

}  // namespace scandiag
