// Candidate derivation by inclusion–exclusion over group verdicts.
//
// A passing group exonerates every cell it selects; a failing group merely
// keeps its cells suspect. After all sessions the candidate set is therefore
//     ∩ over partitions of ( ∪ failing groups of that partition ),
// computed on the selection axis and then expanded to cells. In exact mode
// this is sound: every truly failing cell lies in a failing group of every
// partition, so it always survives (tested as the soundness invariant).
//
// analyzeChecked() adds the noisy-tester invariants. For a real (permanent)
// fault and a correct tester, three things can never happen, because each
// partition's groups cover every position:
//   * a partition with zero failing groups while another partition fails
//     (the fault fired somewhere, so every partition must see it);
//   * a partition whose failing union is disjoint from the intersection of
//     the preceding partitions (the true cells lie in that intersection);
//   * a failing group disjoint from the final candidate set (every failing
//     group contains at least one true failing cell).
// Each violation is reported as an InconsistencyReport — which partition,
// which session (group) is suspect — instead of silently emptying the
// candidate set; partitions that would empty it are excluded so the returned
// candidates stay a meaningful superset for the recovery layer to refine.
#pragma once

#include <string>
#include <vector>

#include "bist/scan_topology.hpp"
#include "diagnosis/partition.hpp"
#include "diagnosis/session_engine.hpp"

namespace scandiag {

struct CandidateSet {
  /// Suspect positions on the selection axis (size = maxChainLength()).
  BitVector positions;
  /// Suspect cells (size = numCells()); expandPositions(positions).
  BitVector cells;

  std::size_t cellCount() const { return cells.count(); }
};

enum class InconsistencyKind {
  /// Every group of this partition passed while another partition failed:
  /// some fail verdict of this partition was lost (flip, aliasing,
  /// intermittency, or X-masking of all its failing cells).
  AllGroupsPassing,
  /// This partition's failing union shares no position with the running
  /// intersection of the preceding partitions: either one of its fail
  /// verdicts was lost or an earlier pass verdict was spurious.
  DisjointFailingUnion,
  /// A failing group shares no position with the final candidate set: its
  /// fail verdict is almost certainly a spurious pass→fail flip.
  PhantomFailingGroup,
};

const char* inconsistencyKindName(InconsistencyKind kind);

struct InconsistencyReport {
  InconsistencyKind kind;
  std::size_t partition = 0;
  /// Suspect session within the partition (BitVector::npos when unknown).
  std::size_t group = BitVector::npos;

  /// "partition 3 session 7: phantom-failing-group ..." for logs/stderr.
  std::string describe() const;
};

struct CheckedAnalysis {
  CandidateSet candidates;
  std::vector<InconsistencyReport> inconsistencies;
  /// Partitions whose verdicts entered the intersection (ascending).
  std::vector<std::size_t> usedPartitions;

  bool consistent() const { return inconsistencies.empty(); }
};

class CandidateAnalyzer {
 public:
  explicit CandidateAnalyzer(const ScanTopology& topology) : topology_(&topology) {}

  CandidateSet analyze(const std::vector<Partition>& partitions,
                       const GroupVerdicts& verdicts) const;

  /// Inclusion–exclusion with the impossibility checks above. On clean
  /// verdicts this returns exactly analyze()'s candidates and no reports.
  CheckedAnalysis analyzeChecked(const std::vector<Partition>& partitions,
                                 const GroupVerdicts& verdicts) const;

 private:
  const ScanTopology* topology_;
};

}  // namespace scandiag
