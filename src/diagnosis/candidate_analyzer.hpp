// Candidate derivation by inclusion–exclusion over group verdicts.
//
// A passing group exonerates every cell it selects; a failing group merely
// keeps its cells suspect. After all sessions the candidate set is therefore
//     ∩ over partitions of ( ∪ failing groups of that partition ),
// computed on the selection axis and then expanded to cells. In exact mode
// this is sound: every truly failing cell lies in a failing group of every
// partition, so it always survives (tested as the soundness invariant).
#pragma once

#include "bist/scan_topology.hpp"
#include "diagnosis/partition.hpp"
#include "diagnosis/session_engine.hpp"

namespace scandiag {

struct CandidateSet {
  /// Suspect positions on the selection axis (size = maxChainLength()).
  BitVector positions;
  /// Suspect cells (size = numCells()); expandPositions(positions).
  BitVector cells;

  std::size_t cellCount() const { return cells.count(); }
};

class CandidateAnalyzer {
 public:
  explicit CandidateAnalyzer(const ScanTopology& topology) : topology_(&topology) {}

  CandidateSet analyze(const std::vector<Partition>& partitions,
                       const GroupVerdicts& verdicts) const;

 private:
  const ScanTopology* topology_;
};

}  // namespace scandiag
