// Journaled checkpoint/resume for the long-running DR sweeps.
//
// A sweep is hundreds of independent single-fault diagnoses whose results
// reduce in fault-index order. That structure makes crash-safety cheap: each
// *completed* fault is journaled as one durable record, and a resumed run
// replays journaled faults into the accumulator and diagnoses only the
// missing ones. Because the reduction was already ordered (PR 1) and every
// counter increment is per-fault-scoped, the resumed run's DR values,
// deterministic counters, and BENCH JSON are bit-identical to an
// uninterrupted run at any thread count.
//
// Record schema (journal record type 1, little-endian):
//   u64 sweepId       — which sweep within the journal (a bench run sweeps
//                       many (scheme, partitions) configs over one journal;
//                       sweepId is an FNV-1a digest of that per-sweep config)
//   u32 faultIndex    — index into the sweep's response vector
//   u64 candidateCount, u64 actualCount — the FaultDiagnosis numbers
//   u64 verdictDigest — FNV-1a of the per-partition group verdict words
//                       (audit fingerprint; lets tests prove a replayed fault
//                       matches what a fresh diagnosis would produce)
//   u32 deltaCount, then (u16 counterIndex, u64 delta) pairs — the counter
//                       increments this fault's diagnosis made (captured via
//                       obs::DeltaCapture), replayed on resume so counter
//                       totals stay bit-identical
//
// The journal header digest binds the file to one experiment setup (circuit,
// workload seed/size, topology, metrics schema — NOT thread count); resuming
// against anything else throws JournalDigestMismatchError.
//
// Duplicate records for the same (sweepId, faultIndex) are legal — a crash
// can land between the append and the caller observing it, and a re-run
// re-appends — and resolve last-write-wins on replay.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/journal.hpp"
#include "common/watchdog.hpp"
#include "diagnosis/experiment_driver.hpp"

namespace scandiag {

/// Journal record types used by the checkpoint layer. Readers skip unknown
/// types, so adding a type is backwards compatible.
inline constexpr std::uint16_t kFaultRecordType = 1;
inline constexpr std::uint16_t kShardMetaRecordType = 2;
inline constexpr std::uint16_t kSweepManifestRecordType = 3;

/// One journaled completed-fault result.
struct FaultRecord {
  std::uint64_t sweepId = 0;
  std::uint32_t faultIndex = 0;
  std::uint64_t candidateCount = 0;
  std::uint64_t actualCount = 0;
  std::uint64_t verdictDigest = 0;
  /// (counter index, increment) pairs captured during this fault's diagnosis.
  std::vector<std::pair<std::uint16_t, std::uint64_t>> counterDeltas;
};

std::string encodeFaultRecord(const FaultRecord& record);
/// Throws JournalCorruptError when the payload is structurally invalid.
FaultRecord decodeFaultRecord(const std::string& payload);

/// Shard identity of a sharded-sweep journal (record type 2, written once per
/// run). `baseDigest` is the digest of the *unsharded* setup — identical
/// across sibling shards, which is how merge-journals proves N journals
/// belong to the same sweep while each journal's own header digest (which
/// additionally mixes the shard spec) refuses cross-shard resumes.
struct ShardMetaRecord {
  std::uint32_t shardIndex = 0;
  std::uint32_t shardCount = 1;
  std::uint64_t baseDigest = 0;
  /// SOC spec of the sweep (e.g. "rep:s38584x702:w8") — lets merge-journals
  /// label its report without being told the spec out of band.
  std::string socSpec;
};

std::string encodeShardMetaRecord(const ShardMetaRecord& record);
ShardMetaRecord decodeShardMetaRecord(const std::string& payload);

/// Per-sweep manifest (record type 3): what a sweepId means and how many
/// fault indices a *complete* merged sweep must cover. Every shard writes the
/// same manifests (they all see the full workload; only the diagnosed range
/// differs), so the merge tool can verify coverage and label report rows
/// without re-running anything.
struct SweepManifestRecord {
  std::uint64_t sweepId = 0;
  std::uint64_t classHash = 0;
  std::uint32_t classOrdinal = 0;
  std::uint32_t responseCount = 0;
  std::uint32_t instanceCount = 0;
  std::string className;
};

std::string encodeSweepManifestRecord(const SweepManifestRecord& record);
SweepManifestRecord decodeSweepManifestRecord(const std::string& payload);

/// Digest of an experiment setup, mixed from the pieces that must match for
/// a resume to be valid. Chain calls: digest = setupDigestPiece(name, value,
/// digest). Thread count is deliberately never mixed in — resume across
/// thread counts is supported and bit-identical.
std::uint64_t setupDigestPiece(const std::string& name, std::uint64_t value,
                               std::uint64_t digest);
std::uint64_t setupDigestPiece(const std::string& name, const std::string& value,
                               std::uint64_t digest);

/// Digest identifying one sweep configuration inside a journal.
std::uint64_t sweepIdFor(const DiagnosisConfig& config);

/// Where completed-fault records go and where replays come from. The sweep
/// evaluators are written against this interface so the same loop serves a
/// durable journal (SweepCheckpoint), an in-memory collector
/// (MemoryRecordSink — the live-report path), or both (TeeRecordSink).
/// Implementations must make record() thread-safe (pool workers publish
/// completed faults concurrently); find() is called before any record() for
/// the same key.
class FaultRecordSink {
 public:
  virtual ~FaultRecordSink() = default;
  /// Previously-completed record for (sweepId, faultIndex), or nullptr when
  /// the fault must run.
  virtual const FaultRecord* find(std::uint64_t sweepId, std::uint32_t faultIndex) const = 0;
  /// Publishes one completed fault.
  virtual void record(const FaultRecord& record) = 0;
};

class SweepCheckpoint : public FaultRecordSink {
 public:
  /// Creates a fresh journal at `path` (refuses an existing file) or, when
  /// `resume` is true, reopens it, verifies `setupDigest`, truncates a torn
  /// tail, and indexes all prior records for replay.
  SweepCheckpoint(const std::string& path, std::uint64_t setupDigest,
                  const std::string& setupInfo, bool resume);

  /// Record found in the journal at open (nullptr when this fault must run).
  const FaultRecord* find(std::uint64_t sweepId, std::uint32_t faultIndex) const override;

  /// Journals one completed fault (durable on return; thread-safe) and
  /// counts journal_records_written.
  void record(const FaultRecord& record) override;

  /// Journals one auxiliary record (shard meta, sweep manifest — durable on
  /// return; thread-safe) and counts journal_records_written. Re-appending
  /// the same aux record on resume is legal; readers dedup.
  void appendAux(std::uint16_t type, const std::string& payload);

  std::size_t loadedRecords() const { return loaded_.size(); }
  bool hadTruncatedTail() const { return hadTruncatedTail_; }
  const std::string& path() const { return writer_->path(); }

 private:
  std::unique_ptr<JournalWriter> writer_;
  std::map<std::pair<std::uint64_t, std::uint32_t>, FaultRecord> loaded_;
  bool hadTruncatedTail_ = false;
};

/// Thread-safe in-memory sink. Never replays (find() is always null — every
/// fault runs); collects each published record keyed by (sweepId,
/// faultIndex), last write wins. The `soc-dr --report` path renders its
/// report from this collection through the same renderer merge-journals
/// uses, which is what makes the two byte-identical.
class MemoryRecordSink : public FaultRecordSink {
 public:
  const FaultRecord* find(std::uint64_t, std::uint32_t) const override { return nullptr; }
  void record(const FaultRecord& record) override;

  /// All collected records. Only call after the sweep has finished (no
  /// internal synchronization on read).
  const std::map<std::pair<std::uint64_t, std::uint32_t>, FaultRecord>& records() const {
    return records_;
  }

 private:
  mutable std::mutex mutex_;
  std::map<std::pair<std::uint64_t, std::uint32_t>, FaultRecord> records_;
};

/// Fans one sink pair out: finds hit `primary` (a checkpoint), and every
/// record — fresh or replayed-from-primary — is copied into `collector`, so
/// after the sweep the collector holds the complete record set regardless of
/// how much the checkpoint replayed.
class TeeRecordSink : public FaultRecordSink {
 public:
  TeeRecordSink(FaultRecordSink* primary, MemoryRecordSink* collector)
      : primary_(primary), collector_(collector) {}

  const FaultRecord* find(std::uint64_t sweepId, std::uint32_t faultIndex) const override;
  void record(const FaultRecord& record) override;

 private:
  FaultRecordSink* primary_;
  MemoryRecordSink* collector_;
};

/// DiagnosisPipeline::evaluate with checkpointing: journaled faults are
/// replayed (counters re-applied, journal_records_replayed counted), missing
/// faults are diagnosed, published to `sink`, and reduced — output
/// bit-identical to an uninterrupted pipeline.evaluate(responses) at any
/// thread count. `sink` may be null (degenerates to pipeline.evaluate).
/// `control` is polled per fault; cancellation unwinds as OperationCancelled
/// *between* faults, so every published record is a completed fault.
DrReport evaluateWithCheckpoint(const DiagnosisPipeline& pipeline,
                                const std::vector<FaultResponse>& responses,
                                FaultRecordSink* sink, std::uint64_t sweepId,
                                const RunControl& control = {});

/// Range form: diagnoses only responses[rangeLo, min(rangeHi, size)), each
/// fault published under its *absolute* index — shard i of N runs its
/// fault-range slice through this and merge-journals reassembles the full
/// sweep. The returned DrReport covers only the range.
DrReport evaluateWithCheckpointRange(const DiagnosisPipeline& pipeline,
                                     const std::vector<FaultResponse>& responses,
                                     FaultRecordSink* sink, std::uint64_t sweepId,
                                     std::size_t rangeLo, std::size_t rangeHi,
                                     const RunControl& control = {});

}  // namespace scandiag
