// Journaled checkpoint/resume for the long-running DR sweeps.
//
// A sweep is hundreds of independent single-fault diagnoses whose results
// reduce in fault-index order. That structure makes crash-safety cheap: each
// *completed* fault is journaled as one durable record, and a resumed run
// replays journaled faults into the accumulator and diagnoses only the
// missing ones. Because the reduction was already ordered (PR 1) and every
// counter increment is per-fault-scoped, the resumed run's DR values,
// deterministic counters, and BENCH JSON are bit-identical to an
// uninterrupted run at any thread count.
//
// Record schema (journal record type 1, little-endian):
//   u64 sweepId       — which sweep within the journal (a bench run sweeps
//                       many (scheme, partitions) configs over one journal;
//                       sweepId is an FNV-1a digest of that per-sweep config)
//   u32 faultIndex    — index into the sweep's response vector
//   u64 candidateCount, u64 actualCount — the FaultDiagnosis numbers
//   u64 verdictDigest — FNV-1a of the per-partition group verdict words
//                       (audit fingerprint; lets tests prove a replayed fault
//                       matches what a fresh diagnosis would produce)
//   u32 deltaCount, then (u16 counterIndex, u64 delta) pairs — the counter
//                       increments this fault's diagnosis made (captured via
//                       obs::DeltaCapture), replayed on resume so counter
//                       totals stay bit-identical
//
// The journal header digest binds the file to one experiment setup (circuit,
// workload seed/size, topology, metrics schema — NOT thread count); resuming
// against anything else throws JournalDigestMismatchError.
//
// Duplicate records for the same (sweepId, faultIndex) are legal — a crash
// can land between the append and the caller observing it, and a re-run
// re-appends — and resolve last-write-wins on replay.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/journal.hpp"
#include "common/watchdog.hpp"
#include "diagnosis/experiment_driver.hpp"

namespace scandiag {

/// One journaled completed-fault result.
struct FaultRecord {
  std::uint64_t sweepId = 0;
  std::uint32_t faultIndex = 0;
  std::uint64_t candidateCount = 0;
  std::uint64_t actualCount = 0;
  std::uint64_t verdictDigest = 0;
  /// (counter index, increment) pairs captured during this fault's diagnosis.
  std::vector<std::pair<std::uint16_t, std::uint64_t>> counterDeltas;
};

std::string encodeFaultRecord(const FaultRecord& record);
/// Throws JournalCorruptError when the payload is structurally invalid.
FaultRecord decodeFaultRecord(const std::string& payload);

/// Digest of an experiment setup, mixed from the pieces that must match for
/// a resume to be valid. Chain calls: digest = setupDigestPiece(name, value,
/// digest). Thread count is deliberately never mixed in — resume across
/// thread counts is supported and bit-identical.
std::uint64_t setupDigestPiece(const std::string& name, std::uint64_t value,
                               std::uint64_t digest);
std::uint64_t setupDigestPiece(const std::string& name, const std::string& value,
                               std::uint64_t digest);

/// Digest identifying one sweep configuration inside a journal.
std::uint64_t sweepIdFor(const DiagnosisConfig& config);

class SweepCheckpoint {
 public:
  /// Creates a fresh journal at `path` (refuses an existing file) or, when
  /// `resume` is true, reopens it, verifies `setupDigest`, truncates a torn
  /// tail, and indexes all prior records for replay.
  SweepCheckpoint(const std::string& path, std::uint64_t setupDigest,
                  const std::string& setupInfo, bool resume);

  /// Record found in the journal at open (nullptr when this fault must run).
  const FaultRecord* find(std::uint64_t sweepId, std::uint32_t faultIndex) const;

  /// Journals one completed fault (durable on return; thread-safe) and
  /// counts journal_records_written.
  void record(const FaultRecord& record);

  std::size_t loadedRecords() const { return loaded_.size(); }
  bool hadTruncatedTail() const { return hadTruncatedTail_; }
  const std::string& path() const { return writer_->path(); }

 private:
  std::unique_ptr<JournalWriter> writer_;
  std::map<std::pair<std::uint64_t, std::uint32_t>, FaultRecord> loaded_;
  bool hadTruncatedTail_ = false;
};

/// DiagnosisPipeline::evaluate with checkpointing: journaled faults are
/// replayed (counters re-applied, journal_records_replayed counted), missing
/// faults are diagnosed, journaled, and reduced — output bit-identical to an
/// uninterrupted pipeline.evaluate(responses) at any thread count.
/// `checkpoint` may be null (degenerates to pipeline.evaluate). `control` is
/// polled per fault; cancellation unwinds as OperationCancelled *between*
/// faults, so every journaled record is a completed fault.
DrReport evaluateWithCheckpoint(const DiagnosisPipeline& pipeline,
                                const std::vector<FaultResponse>& responses,
                                SweepCheckpoint* checkpoint, std::uint64_t sweepId,
                                const RunControl& control = {});

}  // namespace scandiag
