// Random-selection partitioning (Rajski & Tyszer [5]) — the baseline scheme.
//
// Every shift position gets an r-bit label read from the selection LFSR;
// group g of the partition is the set of positions labelled g, so the 2^r
// groups are non-overlapping and cover the chain by construction. For the
// next partition the IVR is reloaded with the LFSR's running state, exactly
// as the hardware does, so the generator reproduces the silicon's partition
// sequence bit for bit (verified against SelectorHardware in the tests).
#pragma once

#include <cstdint>

#include "bist/lfsr.hpp"
#include "diagnosis/partition.hpp"

namespace scandiag {

struct RandomSelectionConfig {
  LfsrConfig lfsr{/*degree=*/16, /*tapMask=*/0};
  std::uint64_t seed = 0xACE1;
};

class RandomSelectionPartitioner final : public PartitionScheme {
 public:
  /// groupCount must be a power of two (the label is a bit field).
  RandomSelectionPartitioner(const RandomSelectionConfig& config, std::size_t chainLength,
                             std::size_t groupCount);

  Partition next() override;
  std::string name() const override { return "random-selection"; }

  unsigned labelWidth() const { return r_; }
  std::uint64_t currentIvr() const { return ivr_; }

 private:
  LfsrConfig config_;
  std::size_t chainLength_;
  std::size_t groupCount_;
  unsigned r_;
  std::uint64_t ivr_;
};

}  // namespace scandiag
