// Bounded-budget recovery from inconsistent session verdicts.
//
// Detection (CandidateAnalyzer::analyzeChecked) tells us *that* a schedule's
// verdicts are physically impossible and *which* partition is suspect; this
// module decides what to do about it under a tester-time budget:
//
//   1. Retry: re-run only the suspect partitions' sessions (each re-run
//      costs groupCount sessions against RetryPolicy::sessionBudget) and
//      majority-vote each group verdict across the original row and the
//      re-runs. Ties vote "fail" — the superset-preserving direction, since
//      a wrong fail verdict only inflates candidates while a wrong pass
//      verdict exonerates true failing cells.
//      Exception: a DisjointFailingUnion partition whose first re-run
//      reproduces the original row bit-for-bit is a *deterministic* model
//      violation (a genuine multi-fault union), not noise — retrying it
//      further is wasted budget. Recovery short-circuits after that single
//      confirming re-run and re-analyzes the whole schedule in the checked
//      union mode (CandidateAnalyzer::analyzeUnion), degrading to the
//      superset floor when the cluster count exceeds
//      RetryPolicy::maxUnionFaults.
//   2. Graceful degradation: partitions still inconsistent after the budget
//      are excluded from the intersection entirely (analyzeChecked's skip),
//      widening the candidate set instead of emptying it. If phantom groups
//      survive the budget, the intersection itself is suspect (a lost fail
//      verdict in a used partition shrinks it below the true cells while
//      pointing the phantom reports at the honest partitions), so the
//      candidates are replaced by the leave-one-out widening over the used
//      partitions — a guaranteed superset whenever at most one of them lies.
//
// The result always contains every position that survives the consistent
// partitions — for a single verdict flip on a clean schedule this is a
// superset of the true failing cells — plus a confidence score that decays
// with each repair and each dropped partition, and the session count spent
// on re-runs so CostModel accounting stays exact.
#pragma once

#include <functional>
#include <vector>

#include "diagnosis/candidate_analyzer.hpp"
#include "diagnosis/cost_model.hpp"
#include "diagnosis/prepared_partitions.hpp"

namespace scandiag {

/// Lower bound on RecoveredDiagnosis::confidence. The degradation penalties
/// are multiplicative (0.95 per repaired partition, 0.9 per surviving
/// phantom), so a large SOC schedule with hundreds of repairs would underflow
/// to 0.0 — indistinguishable from "no diagnosis at all", even though the
/// result is still a guaranteed superset under the single-liar assumption.
/// Any produced diagnosis therefore reports at least this much confidence;
/// a value at the floor means "maximally degraded, treat as a superset only".
/// The scale: 1.0 = clean and consistent; ~0.9 = one repair or one phantom;
/// the floor (1e-6, ~130 compounded penalties) = take nothing but the
/// superset guarantee.
inline constexpr double kConfidenceFloor = 1e-6;

struct RetryPolicy {
  /// Re-runs per suspect partition; verdicts are majority-voted across the
  /// original row plus these re-runs (2 gives a clean 1-of-3 vote).
  std::size_t maxRetriesPerSession = 2;
  /// Total extra sessions allowed across the whole diagnosis (each partition
  /// re-run costs its groupCount). 0 disables retrying: inconsistent
  /// partitions are dropped immediately.
  std::size_t sessionBudget = 0;
  /// Simultaneous-fault budget for the checked union mode: when a
  /// disjoint-failing-union partition replays bit-identically (a model
  /// violation, not noise), recovery re-analyzes the schedule as a union of
  /// up to this many per-fault cone clusters instead of burning the retry
  /// budget. More clusters than this degrade to the superset floor.
  std::size_t maxUnionFaults = 4;

  bool enabled() const { return sessionBudget > 0 && maxRetriesPerSession > 0; }
};

/// Re-executes the sessions of `partition` and returns the fresh verdict row.
/// `attempt` is 1-based per partition so noise models can draw independent,
/// reproducible streams per re-run.
using PartitionRerun =
    std::function<PartitionVerdictRow(std::size_t partition, std::size_t attempt)>;

struct RecoveredDiagnosis {
  CandidateSet candidates;
  /// Inconsistencies detected on the *initial* verdicts (pre-retry).
  std::vector<InconsistencyReport> inconsistencies;
  std::vector<std::size_t> retriedPartitions;  // re-run at least once
  std::vector<std::size_t> droppedPartitions;  // excluded from the intersection
  /// Sessions spent on re-runs (feed through sessionCost for cycle totals).
  std::size_t retrySessions = 0;
  /// 1.0 for a clean, consistent diagnosis; multiplied by 0.95 per repaired
  /// partition, by 0.9 per unresolved phantom group, and scaled by the
  /// fraction of partitions that stayed in the intersection — never below
  /// kConfidenceFloor (see above for the scale).
  double confidence = 1.0;
  /// False when degradation was needed (a partition was dropped, a phantom
  /// group survived the budget, or a union analysis exceeded maxUnionFaults)
  /// — the CLI maps this to its own exit code.
  bool resolved = true;
  /// Suspect partitions whose re-run reproduced the original row bit-for-bit
  /// — a deterministic model violation (multi-fault union), not tester noise.
  std::size_t deterministicPartitions = 0;
  /// True when the candidates came from the checked union mode
  /// (CandidateAnalyzer::analyzeUnion) instead of the single-fault
  /// intersection; unionClusters is the cluster count it settled on.
  bool unionDiagnosis = false;
  std::size_t unionClusters = 0;

  bool consistent() const { return inconsistencies.empty(); }
};

class DiagnosisRecovery {
 public:
  DiagnosisRecovery(const ScanTopology& topology, const RetryPolicy& policy)
      : topology_(&topology), analyzer_(topology), policy_(policy) {}

  const RetryPolicy& policy() const { return policy_; }

  /// Runs detection on `verdicts`; if inconsistent, retries suspect
  /// partitions via `rerun` within the budget and falls back to dropping
  /// them. `rerun` may be null when retrying is impossible (offline logs) —
  /// detection then goes straight to degradation.
  RecoveredDiagnosis recover(const std::vector<Partition>& partitions,
                             const GroupVerdicts& verdicts,
                             const PartitionRerun& rerun) const;

  /// Prepared-schedule entry point used by the per-fault hot path. Recovery
  /// itself only reads group bit-vectors, so this delegates — the prepared
  /// tables pay off inside `rerun` closures that call
  /// SessionEngine::runPartition(prepared, p, ...).
  RecoveredDiagnosis recover(const PreparedPartitionSet& prepared, const GroupVerdicts& verdicts,
                             const PartitionRerun& rerun) const;

 private:
  const ScanTopology* topology_;
  CandidateAnalyzer analyzer_;
  RetryPolicy policy_;
};

}  // namespace scandiag
